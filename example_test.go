package heapgossip_test

import (
	"fmt"
	"log"
	"time"

	heapgossip "repro"
)

// ExampleRunScenario runs the paper's headline comparison at reduced scale:
// HEAP vs standard gossip on ms-691, where 85% of the nodes have less
// upload capacity than the stream rate.
func ExampleRunScenario() {
	for _, protocol := range []heapgossip.Protocol{heapgossip.StandardGossip, heapgossip.HEAP} {
		res, err := heapgossip.RunScenario(heapgossip.Scenario{
			Nodes:    120,
			Protocol: protocol,
			Dist:     heapgossip.MS691,
			Windows:  10,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Fraction of FEC windows viewable at a 10-second playback lag,
		// averaged over nodes.
		var share float64
		n := 0
		for i := range res.Run.Nodes {
			node := &res.Run.Nodes[i]
			if node.Excluded {
				continue
			}
			share += res.Run.JitterFreeShare(node, 10*time.Second)
			n++
		}
		fmt.Printf("%s: %.0f%% jitter-free\n", protocol, 100*share/float64(n))
	}
}

// ExampleRun_playback inspects the viewer experience of a single node: how
// long must the player buffer before pressing play to avoid rebuffering?
func ExampleRun_playback() {
	res, err := heapgossip.RunScenario(heapgossip.Scenario{
		Nodes:    80,
		Protocol: heapgossip.HEAP,
		Dist:     heapgossip.Ref724,
		Windows:  6,
		Seed:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	node := &res.Run.Nodes[1]
	for _, startup := range []time.Duration{time.Second, 10 * time.Second} {
		rep := res.Run.Playback(node, startup)
		fmt.Printf("startup %v: %d stalls\n", startup, rep.Stalls)
	}
	min := res.Run.MinStartupForSmoothPlayback(node)
	fmt.Printf("smooth playback needs %v of buffering\n", min.Round(time.Second))
}

package heapgossip

// Benchmarks regenerating the paper's figures and tables at a reduced scale
// (120 nodes, ~19 s of stream vs. the paper's 270 nodes and 180 s), so that
// `go test -bench=.` exercises every experiment pipeline in minutes.
// cmd/heapbench runs the same code at full scale; EXPERIMENTS.md records the
// full-scale numbers next to the paper's.
//
// Each benchmark runs the complete simulated experiment once per iteration
// and reports the figure's headline quantity via b.ReportMetric, so regress-
// ions in either performance (ns/op) or protocol behaviour (domain metrics)
// are visible.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/metrics"
)

const (
	benchNodes   = 120
	benchWindows = 10
	benchSeed    = 17
)

func benchConfig(proto Protocol, dist Distribution) Scenario {
	return Scenario{
		Nodes:       benchNodes,
		Protocol:    proto,
		Dist:        dist,
		Windows:     benchWindows,
		Seed:        benchSeed,
		StreamStart: 5 * time.Second,
		Drain:       30 * time.Second,
	}
}

func mustRun(b *testing.B, cfg Scenario) *ScenarioResult {
	b.Helper()
	res, err := RunScenario(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// meanJitterFree is the average fraction of viewable windows at the lag.
func meanJitterFree(res *ScenarioResult, lag time.Duration) float64 {
	return metrics.Mean(res.Run.PerNode(func(n *NodeRecord) float64 {
		return res.Run.JitterFreeShare(n, lag)
	}))
}

// lagP is the p-th percentile over nodes of the min lag for 99% delivery.
func lagP(res *ScenarioResult, p float64) float64 {
	cdf := metrics.NewCDF(res.Run.PerNode(func(n *NodeRecord) float64 {
		return Seconds(res.Run.LagForDeliveryRatio(n, 0.99))
	}))
	return cdf.ValueAtPercentile(p)
}

// BenchmarkFig01UnconstrainedGossip reproduces Figure 1: standard gossip
// with fanout 7 and no upload caps delivers 99% of the stream with low lag.
func BenchmarkFig01UnconstrainedGossip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(StandardGossip, nil)
		cfg.Unconstrained = true
		res := mustRun(b, cfg)
		b.ReportMetric(lagP(res, 50), "p50-lag-s")
		b.ReportMetric(lagP(res, 90), "p90-lag-s")
	}
}

// BenchmarkFig02FanoutSweep reproduces Figure 2: fixed-fanout standard
// gossip on the skewed (dist1) and uniform (dist2) distributions.
func BenchmarkFig02FanoutSweep(b *testing.B) {
	cases := []struct {
		name   string
		dist   Distribution
		fanout float64
	}{
		{"ms691-f7", MS691, 7},
		{"ms691-f15", MS691, 15},
		{"ms691-f20", MS691, 20},
		{"ms691-f25", MS691, 25},
		{"ms691-f30", MS691, 30},
		{"uniform-f7", Uniform691, 7},
		{"uniform-f15", Uniform691, 15},
		{"uniform-f20", Uniform691, 20},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(StandardGossip, tc.dist)
				cfg.Fanout = tc.fanout
				res := mustRun(b, cfg)
				b.ReportMetric(lagP(res, 50), "p50-lag-s")
				b.ReportMetric(meanJitterFree(res, 10*time.Second), "jitterfree@10s")
			}
		})
	}
}

// BenchmarkFig03HEAP reproduces Figure 3: HEAP on ms-691 with average
// fanout 7.
func BenchmarkFig03HEAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := mustRun(b, benchConfig(HEAP, MS691))
		b.ReportMetric(lagP(res, 50), "p50-lag-s")
		b.ReportMetric(lagP(res, 90), "p90-lag-s")
	}
}

// BenchmarkFig04BandwidthUsage reproduces Figure 4: per-class upload
// utilization under both protocols.
func BenchmarkFig04BandwidthUsage(b *testing.B) {
	for _, proto := range []Protocol{StandardGossip, HEAP} {
		for _, dist := range []Distribution{Ref691, MS691} {
			b.Run(string(proto)+"-"+dist.Name(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := mustRun(b, benchConfig(proto, dist))
					richClass := res.Run.Classes()[len(res.Run.Classes())-1]
					var sum float64
					var n int
					for j := 1; j < len(res.CapsKbps); j++ {
						if dist.ClassOf(res.CapsKbps[j]) == richClass {
							sum += res.Usage[j]
							n++
						}
					}
					b.ReportMetric(100*sum/float64(n), "rich-usage-%")
				}
			})
		}
	}
}

// BenchmarkFig05StreamQuality reproduces Figure 5: jitter-free share by
// class on ref-691 at a 10 s playback lag.
func BenchmarkFig05StreamQuality(b *testing.B) {
	for _, proto := range []Protocol{StandardGossip, HEAP} {
		b.Run(string(proto), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchConfig(proto, Ref691))
				b.ReportMetric(100*meanJitterFree(res, 10*time.Second), "jitterfree@10s-%")
			}
		})
	}
}

// BenchmarkFig06StreamQuality reproduces Figure 6: ms-691 at 20 s lag and
// ref-724 at 10 s lag.
func BenchmarkFig06StreamQuality(b *testing.B) {
	cases := []struct {
		dist Distribution
		lag  time.Duration
	}{
		{MS691, 20 * time.Second},
		{Ref724, 10 * time.Second},
	}
	for _, tc := range cases {
		for _, proto := range []Protocol{StandardGossip, HEAP} {
			b.Run(tc.dist.Name()+"-"+string(proto), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := mustRun(b, benchConfig(proto, tc.dist))
					b.ReportMetric(100*meanJitterFree(res, tc.lag), "jitterfree-%")
				}
			})
		}
	}
}

// BenchmarkFig07JitterCDF reproduces Figure 7: the share of nodes with at
// most 10% jitter at a 10 s lag on ref-691.
func BenchmarkFig07JitterCDF(b *testing.B) {
	for _, proto := range []Protocol{StandardGossip, HEAP} {
		b.Run(string(proto), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchConfig(proto, Ref691))
				cdf := metrics.NewCDF(res.Run.PerNode(func(n *NodeRecord) float64 {
					return 100 * (1 - res.Run.JitterFreeShare(n, 10*time.Second))
				}))
				b.ReportMetric(100*cdf.FractionAtOrBelow(10), "nodes<=10%jitter-%")
			}
		})
	}
}

// BenchmarkFig08StreamLag reproduces Figure 8: mean lag to a jitter-free
// stream.
func BenchmarkFig08StreamLag(b *testing.B) {
	for _, dist := range []Distribution{Ref691, MS691} {
		for _, proto := range []Protocol{StandardGossip, HEAP} {
			b.Run(dist.Name()+"-"+string(proto), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := mustRun(b, benchConfig(proto, dist))
					lags := res.Run.PerNode(func(n *NodeRecord) float64 {
						return Seconds(res.Run.MinLagForJitterFree(n, 0))
					})
					b.ReportMetric(metrics.Mean(lags), "mean-lag-s")
				}
			})
		}
	}
}

// BenchmarkFig09StreamLagCDF reproduces Figure 9: the lag by which 80% of
// nodes view a jitter-free stream.
func BenchmarkFig09StreamLagCDF(b *testing.B) {
	for _, proto := range []Protocol{StandardGossip, HEAP} {
		b.Run(string(proto), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchConfig(proto, Ref691))
				cdf := metrics.NewCDF(res.Run.PerNode(func(n *NodeRecord) float64 {
					return Seconds(res.Run.MinLagForJitterFree(n, 0))
				}))
				b.ReportMetric(cdf.ValueAtPercentile(80), "p80-lag-s")
			}
		})
	}
}

// BenchmarkFig10Churn reproduces Figure 10: catastrophic failures of 20%
// and 50% of the nodes; the metric is the post-failure coverage at the
// paper's lags (HEAP@12s vs standard@20s).
func BenchmarkFig10Churn(b *testing.B) {
	for _, fraction := range []float64{0.2, 0.5} {
		for _, tc := range []struct {
			proto Protocol
			lag   time.Duration
		}{{HEAP, 12 * time.Second}, {StandardGossip, 20 * time.Second}} {
			name := fmt.Sprintf("%s-crash%d", tc.proto, int(fraction*100))
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := benchConfig(tc.proto, Ref691)
					cfg.Windows = 20 // failure mid-stream needs a longer run
					cfg.Churn = &Catastrophic{
						At:         cfg.StreamStart + 15*time.Second,
						Fraction:   fraction,
						NotifyMean: 10 * time.Second,
					}
					res := mustRun(b, cfg)
					cov := res.Run.PerWindowCoverage(tc.lag)
					b.ReportMetric(100*cov[len(cov)-1], "lastwindow-coverage-%")
				}
			})
		}
	}
}

// BenchmarkTable2JitteredWindows reproduces Table 2: mean delivery ratio
// inside jittered windows.
func BenchmarkTable2JitteredWindows(b *testing.B) {
	for _, proto := range []Protocol{StandardGossip, HEAP} {
		b.Run(string(proto), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchConfig(proto, Ref691))
				var sum float64
				var n int
				for j := range res.Run.Nodes {
					node := &res.Run.Nodes[j]
					if node.Excluded {
						continue
					}
					if ratio, any := res.Run.DeliveryRatioInJitteredWindows(node, 10*time.Second); any {
						sum += ratio
						n++
					}
				}
				if n > 0 {
					b.ReportMetric(100*sum/float64(n), "jittered-delivery-%")
				}
			}
		})
	}
}

// BenchmarkTable3JitterFree reproduces Table 3: the share of nodes with a
// fully jitter-free stream.
func BenchmarkTable3JitterFree(b *testing.B) {
	for _, proto := range []Protocol{StandardGossip, HEAP} {
		b.Run(string(proto), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchConfig(proto, MS691))
				var ok, n int
				for j := range res.Run.Nodes {
					node := &res.Run.Nodes[j]
					if node.Excluded {
						continue
					}
					n++
					if res.Run.JitterFreeShare(node, 20*time.Second) >= 1 {
						ok++
					}
				}
				b.ReportMetric(100*float64(ok)/float64(n), "jitterfree-nodes-%")
			}
		})
	}
}

// --- Ablations (design choices called out in DESIGN.md §6) ---

// BenchmarkAblationRetransmission compares retransmission policies: off,
// the paper-literal same-proposer policy, and alternate-proposer cycling.
func BenchmarkAblationRetransmission(b *testing.B) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"off", func(c *Scenario) { c.RetMaxAttempts = 1 }},
		{"same-proposer", func(c *Scenario) { c.RetSameProposer = true }},
		{"alternates", func(c *Scenario) {}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(HEAP, MS691)
				tc.mutate(&cfg)
				res := mustRun(b, cfg)
				b.ReportMetric(100*meanJitterFree(res, 10*time.Second), "jitterfree@10s-%")
			}
		})
	}
}

// BenchmarkAblationSourceBias measures the §5 idea of biasing the source's
// first hop toward rich nodes.
func BenchmarkAblationSourceBias(b *testing.B) {
	for _, bias := range []bool{false, true} {
		name := "uniform"
		if bias {
			name = "rich-biased"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(HEAP, MS691)
				cfg.SourceBias = bias
				res := mustRun(b, cfg)
				b.ReportMetric(lagP(res, 50), "p50-lag-s")
			}
		})
	}
}

// BenchmarkAblationPeriodAdaptation compares HEAP's fanout knob against the
// §5 period knob.
func BenchmarkAblationPeriodAdaptation(b *testing.B) {
	for _, period := range []bool{false, true} {
		name := "fanout-knob"
		if period {
			name = "period-knob"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(HEAP, MS691)
				cfg.AdaptPeriod = period
				res := mustRun(b, cfg)
				b.ReportMetric(100*meanJitterFree(res, 10*time.Second), "jitterfree@10s-%")
			}
		})
	}
}

// BenchmarkAblationAggregation varies the aggregation gossip parameters and
// reports the accuracy of the resulting bbar estimates.
func BenchmarkAblationAggregation(b *testing.B) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"paper-200ms-k10", func(c *Scenario) {}},
		{"slow-1s", func(c *Scenario) { c.AggPeriod = time.Second }},
		{"k3", func(c *Scenario) { c.AggFreshestK = 3 }},
		{"fanout3", func(c *Scenario) { c.AggFanout = 3 }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(HEAP, MS691)
				tc.mutate(&cfg)
				res := mustRun(b, cfg)
				truth := MS691.MeanKbps()
				var errSum float64
				var n int
				for j := 1; j < len(res.EstimatesKbps); j++ {
					if res.EstimatesKbps[j] > 0 {
						errSum += abs(res.EstimatesKbps[j]-truth) / truth
						n++
					}
				}
				b.ReportMetric(100*errSum/float64(n), "bbar-err-%")
				b.ReportMetric(100*meanJitterFree(res, 10*time.Second), "jitterfree@10s-%")
			}
		})
	}
}

// BenchmarkAblationFreeriders measures dissemination quality as more nodes
// under-advertise their capability (§5 freeriding threat).
func BenchmarkAblationFreeriders(b *testing.B) {
	for _, frac := range []float64{0, 0.1, 0.3, 0.5} {
		b.Run(fmt.Sprintf("%d%%", int(frac*100)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(HEAP, MS691)
				cfg.FreeriderFraction = frac
				res := mustRun(b, cfg)
				b.ReportMetric(100*meanJitterFree(res, 10*time.Second), "jitterfree@10s-%")
			}
		})
	}
}

// BenchmarkAblationPSS compares full-membership sampling against the Cyclon
// peer-sampling service.
func BenchmarkAblationPSS(b *testing.B) {
	for _, pss := range []bool{false, true} {
		name := "full-view"
		if pss {
			name = "cyclon-pss"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(HEAP, Ref691)
				cfg.UsePSS = pss
				res := mustRun(b, cfg)
				b.ReportMetric(100*meanJitterFree(res, 10*time.Second), "jitterfree@10s-%")
			}
		})
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// --- Sweep engine (parallel scenario grids) ---

// sweepBenchGrid is the 4-cell grid shared by the sweep benchmarks:
// {standard, HEAP} x {ref-691, ms-691} at the reduced benchmark scale.
func sweepBenchGrid(workers int) Sweep {
	return Sweep{
		Base: Scenario{
			Nodes:       benchNodes,
			Windows:     benchWindows,
			StreamStart: 5 * time.Second,
			Drain:       30 * time.Second,
		},
		Protocols: []Protocol{StandardGossip, HEAP},
		Dists:     []Distribution{Ref691, MS691},
		BaseSeed:  benchSeed,
		Workers:   workers,
		DropRuns:  true,
	}
}

// benchSweep runs the grid once per iteration and reports the HEAP/ms-691
// cell's stream quality; the value must be identical between the Parallel
// and Serial variants (deterministic seed derivation), while ns/op shows
// the wall-clock gap — on an N-core machine the parallel variant approaches
// min(N, 4)x faster.
func benchSweep(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		res, err := RunSweep(sweepBenchGrid(workers))
		if err != nil {
			b.Fatal(err)
		}
		cell := res.Find(func(k CellKey) bool {
			return k.Protocol == HEAP && k.Dist == MS691.Name()
		})
		b.ReportMetric(100*cell.Summary.JFMean, "heap-ms691-jitterfree-%")
	}
}

// BenchmarkSweepParallel runs the 4-cell grid with GOMAXPROCS workers.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkSweepSerial runs the identical grid on a single worker; comparing
// its ns/op against BenchmarkSweepParallel measures the sweep engine's
// multi-core speedup, and the identical domain metric proves worker count
// does not leak into results.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkScenarioThroughput measures raw simulator speed on a constrained
// HEAP run — the performance-critical path of the repository.
func BenchmarkScenarioThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := mustRun(b, benchConfig(HEAP, Ref691))
		b.ReportMetric(float64(res.NetStats.MsgsSent), "msgs/run")
	}
}

// --- Hot-path allocation guard ---

// headlineAllocCeiling bounds the headline scenario's allocation count.
// History: the map-backed engine + unpooled simulator allocated 1,424,074
// objects per run; the pooled event heap, dense protocol tables, and
// fire-and-forget timers brought it to ~446k. The ceiling leaves ~35%
// headroom for benign drift while still failing loudly if pooling ever
// silently regresses toward the old figure.
const headlineAllocCeiling = 600_000

// BenchmarkHeadline is the canonical headline scenario (HEAP on ref-691 at
// the reduced benchmark scale) instrumented for the performance work this
// repository cares about: allocs/op via ReportAllocs, plus the simulator's
// events-per-run and ns-per-event.
func BenchmarkHeadline(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, benchConfig(HEAP, Ref691))
		events = res.NetStats.EventsProcessed
	}
	b.ReportMetric(float64(events), "events/run")
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
	}
}

// TestHeadlineAllocBudget fails when the headline scenario allocates more
// than the checked-in ceiling — the regression guard for the zero-allocation
// hot path. Skipped under -short (it runs a full simulated experiment).
func TestHeadlineAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget check runs a full experiment; skipped in -short")
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := RunScenario(benchConfig(HEAP, Ref691))
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	t.Logf("headline scenario: %d allocs, %d events (%.2f allocs/event), %d msgs",
		allocs, res.NetStats.EventsProcessed,
		float64(allocs)/float64(res.NetStats.EventsProcessed), res.NetStats.MsgsSent)
	if allocs > headlineAllocCeiling {
		t.Fatalf("headline scenario allocated %d objects, ceiling %d — the pooled hot path has regressed",
			allocs, headlineAllocCeiling)
	}
}

// --- LargeScale family (1k+ nodes) ---

// benchLargeScale runs one LargeScale variant per iteration and reports
// simulator throughput at scale.
func benchLargeScale(b *testing.B, n int, mutate func(*Scenario)) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		cfg := LargeScale(n, benchSeed)
		cfg.Windows = 3
		cfg.Drain = 20 * time.Second
		if mutate != nil {
			mutate(&cfg)
		}
		res := mustRun(b, cfg)
		events = res.NetStats.EventsProcessed
		b.ReportMetric(float64(res.NetStats.MsgsSent), "msgs/run")
	}
	b.ReportMetric(float64(events), "events/run")
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
	}
}

// BenchmarkLargeScale1k is the steady-state 1000-node HEAP run.
func BenchmarkLargeScale1k(b *testing.B) { benchLargeScale(b, 1000, nil) }

// BenchmarkLargeScale1kFlashCrowd adds a flash crowd joining mid-stream.
func BenchmarkLargeScale1kFlashCrowd(b *testing.B) {
	benchLargeScale(b, 1000, func(c *Scenario) {
		c.JoinWaves = []JoinWave{{At: 7 * time.Second, Count: 250}}
	})
}

// BenchmarkLargeScale1kChurnBursts adds two correlated failure bursts.
func BenchmarkLargeScale1kChurnBursts(b *testing.B) {
	benchLargeScale(b, 1000, func(c *Scenario) {
		c.ChurnBursts = []ChurnBurst{
			{At: 7 * time.Second, Fraction: 0.05},
			{At: 9 * time.Second, Fraction: 0.10},
		}
	})
}

// BenchmarkMultiStream1k runs four concurrent broadcasters over 1000 HEAP
// nodes (Cyclon sampling, bimodal capabilities): the multi-source regime at
// scale, where the fanout-budget allocator divides every node's uplink
// across the competing streams. Reports simulator throughput plus the
// pooled delivery quality across all four streams.
func BenchmarkMultiStream1k(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		cfg := LargeScale(1000, benchSeed)
		cfg.Windows = 2
		cfg.Drain = 20 * time.Second
		cfg.Streams = []StreamSpec{
			{},
			{Start: 6 * time.Second},
			{Start: 7 * time.Second},
			{Start: 8 * time.Second},
		}
		res := mustRun(b, cfg)
		events = res.NetStats.EventsProcessed
		b.ReportMetric(float64(res.NetStats.MsgsSent), "msgs/run")
		var delivered float64
		for _, sum := range res.StreamSummaries(20 * time.Second) {
			delivered += sum.DeliveryMean
		}
		b.ReportMetric(100*delivered/4, "delivered-%")
	}
	b.ReportMetric(float64(events), "events/run")
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
	}
}

// --- XL scale (sharded simulator) ---

// benchLargeScaleXL runs one LargeScaleXL configuration per iteration:
// single-window stream, capped capability tables, the sharded event loop.
// Reports ns/event — the number the sharding work is judged by.
func benchLargeScaleXL(b *testing.B, n, shards int) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, LargeScaleXL(n, benchSeed, shards))
		events = res.NetStats.EventsProcessed
		b.ReportMetric(float64(res.NetStats.MsgsSent), "msgs/run")
	}
	b.ReportMetric(float64(events), "events/run")
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
	}
}

// BenchmarkLargeScale100k is the 100,000-node single-window run at
// GOMAXPROCS shards.
func BenchmarkLargeScale100k(b *testing.B) { benchLargeScaleXL(b, 100_000, 0) }

// BenchmarkLargeScale1M is the million-node run — the scale this simulator
// is built to reach. Under -short (the CI smoke) it drops to 100k nodes:
// the full run needs several GB and minutes of wall clock, which belongs on
// a workstation, not in the PR gate.
func BenchmarkLargeScale1M(b *testing.B) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	benchLargeScaleXL(b, n, 0)
}

// --- Telemetry overhead ---

// BenchmarkTelemetryOverhead measures what dissemination tracing costs the
// simulator. The disabled variant is the exact pre-telemetry hot path (the
// Trace hook is a nil-interface check, the same zero-cost pattern as
// core.Monitor) and must stay within noise of BenchmarkHeadline; the traced
// variant runs every-4th-packet sampling and reports the observed record
// volume so the enabled cost in EXPERIMENTS.md is tied to a known workload.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mustRun(b, benchConfig(HEAP, MS691))
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		var records int
		for i := 0; i < b.N; i++ {
			cfg := benchConfig(HEAP, MS691)
			cfg.Trace = &TraceConfig{SampleEvery: 4, RingCap: 4096}
			res := mustRun(b, cfg)
			records = len(res.TraceStats.Hops)
		}
		b.ReportMetric(float64(records), "hop-records/run")
	})
}

// BenchmarkIntroStaticTree reproduces the introduction's observation: the
// static-tree baseline trails gossip badly even among 30 nodes.
func BenchmarkIntroStaticTree(b *testing.B) {
	for _, proto := range []Protocol{StaticTree, StandardGossip} {
		b.Run(string(proto), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Scenario{
					Nodes:    30,
					Protocol: proto,
					Dist:     MS691,
					Windows:  benchWindows,
					Seed:     benchSeed,
					LossRate: 0.01,
				}
				res := mustRun(b, cfg)
				b.ReportMetric(100*meanJitterFree(res, 10*time.Second), "jitterfree@10s-%")
			}
		})
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadPeers(t *testing.T) {
	path := writeTemp(t, `
# comment line
0 127.0.0.1:7000
1 127.0.0.1:7001

2 10.0.0.5:9999
`)
	peers, err := loadPeers(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 {
		t.Fatalf("loaded %d peers, want 3", len(peers))
	}
	if peers[1] != "127.0.0.1:7001" {
		t.Fatalf("peer 1 = %q", peers[1])
	}
	if peers[2] != "10.0.0.5:9999" {
		t.Fatalf("peer 2 = %q", peers[2])
	}
}

func TestLoadPeersErrors(t *testing.T) {
	cases := []struct {
		name    string
		content string
	}{
		{"malformed line", "0 host:1 extra"},
		{"bad id", "abc host:1"},
		{"empty", "\n# only comments\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := loadPeers(writeTemp(t, tc.content)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	if _, err := loadPeers("/nonexistent/path/peers.txt"); err == nil {
		t.Fatal("missing file accepted")
	}
}

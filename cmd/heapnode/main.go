// Command heapnode runs one HEAP node on a real UDP socket — a peer in a
// live dissemination session, optionally the stream source.
//
// A deployment is described by a peers file with one "id host:port" pair
// per line. Start each node with its id, the shared peers file, and its
// upload capability:
//
//	heapnode -id 0 -peers peers.txt -cap 10000 -source -windows 10
//	heapnode -id 1 -peers peers.txt -cap 512
//	heapnode -id 2 -peers peers.txt -cap 3000
//
// With -adapt the node runs congestion-driven capability re-estimation: a
// controller watches the paced sender's real pressure (queue backlog, tail
// drops, achieved throughput) and re-advertises an effective capability when
// the node cannot sustain its configured -cap — fanout sheds load before the
// queue sheds packets. Pair it with -netem captrace-silent, whose traced
// nodes lose real capacity while their advertisement goes stale, to watch
// the loop close on live sockets (the adv= field of the status line).
//
// With -detect the node runs the misbehavior detector (internal/misbehave):
// contribution evidence is collected per peer on the engine's message paths,
// and peers convicted of freeriding (never serving what they are asked) or
// dropping (total silence) are quarantined — dropped from gossip target
// draws, their proposals ignored, their capability claims expelled from the
// HEAP average. The status line grows a quar= field with the current
// quarantine set.
//
// With -netem PROFILE every node emulates adverse network conditions on its
// real sockets — bursty loss, partitions with heal, latency spikes,
// asymmetric degradation, capability traces — using the same models the
// simulator runs (see internal/netem). Every node of the deployment must
// use the same profile and the same -seed if any (the default already
// materializes identical partition groups and traced node sets on every
// node); for schedule-driven profiles (partition, spike, captrace) also
// share one -epoch so the windows open and heal simultaneously everywhere
// even when nodes start at different times:
//
//	EPOCH=$(date +%s)
//	heapnode -id 1 -peers peers.txt -cap 512  -netem partition -epoch $EPOCH
//	heapnode -id 2 -peers peers.txt -cap 3000 -netem partition -epoch $EPOCH
//
// Every node prints live delivery statistics once per second, including
// send-queue overflow drops (qdrop) and, under -netem, the model's outbound
// drop/delay counters. With -json the tick becomes one JSON object per line
// on stdout — the node's full telemetry snapshot, machine-readable for log
// shippers — and human messages move to stderr.
//
// With -http ADDR the node serves its introspection endpoints: Prometheus
// text on /metrics (every subsystem's counters in one conservation-checkable
// scrape), Go profiling on /debug/pprof/*, a liveness probe on /healthz, and
// a JSON state snapshot on /statusz:
//
//	heapnode -id 1 -peers peers.txt -cap 512 -http 127.0.0.1:9101
//	curl -s 127.0.0.1:9101/metrics | grep udp_
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	heapgossip "repro"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id       = flag.Int("id", -1, "this node's id (must appear in the peers file)")
		peersPth = flag.String("peers", "", "peers file: one 'id host:port' per line")
		capKbps  = flag.Uint("cap", 1000, "advertised upload capability (kbps)")
		adaptive = flag.Bool("heap", true, "enable HEAP fanout adaptation (false = standard gossip)")
		adaptCap = flag.Bool("adapt", false,
			"re-estimate the advertised capability from real send-queue pressure (requires -heap)")
		detect = flag.Bool("detect", false,
			"run the misbehavior detector: quarantine peers convicted of freeriding or dropping")
		fanout   = flag.Float64("fanout", 7, "average fanout fbar")
		isSource = flag.Bool("source", false, "act as a stream source")
		streamID = flag.Uint("stream", 0, "stream id this source broadcasts (source only); "+
			"multi-source deployments give every broadcaster its own id")
		windows  = flag.Int("windows", 10, "stream length in FEC windows (source only)")
		duration = flag.Duration("duration", 2*time.Minute, "how long to run before exiting")
		netemPro = flag.String("netem", "", "adverse-network profile emulated on this node's sockets "+
			fmt.Sprintf("(%s)", strings.Join(heapgossip.NetemProfileNames(), ", ")))
		sockBuf = flag.Int("sockbuf", 0, "kernel socket buffer bytes, SO_RCVBUF and SO_SNDBUF "+
			"(0 = 1 MiB default, negative = leave kernel defaults)")
		seed    = flag.Int64("seed", 0, "protocol/netem randomness seed (default: derived from -id)")
		epoch   = flag.Int64("epoch", 0, "shared unix-seconds time base for lag stamps and netem schedules (default: node start)")
		jsonOut = flag.Bool("json", false,
			"emit the periodic status as one JSON object per tick (the full telemetry snapshot) instead of the human-readable line")
		httpAddr = flag.String("http", "",
			"serve the introspection endpoints (/metrics, /debug/pprof/*, /healthz, /statusz) on this address, e.g. 127.0.0.1:9100")
	)
	flag.Parse()
	if *id < 0 || *peersPth == "" {
		fmt.Fprintln(os.Stderr, "heapnode: -id and -peers are required")
		flag.Usage()
		return 2
	}
	peers, err := loadPeers(*peersPth)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heapnode: %v\n", err)
		return 1
	}
	self := heapgossip.NodeID(*id)
	listen, ok := peers[self]
	if !ok {
		fmt.Fprintf(os.Stderr, "heapnode: id %d not in peers file\n", *id)
		return 1
	}

	// The node's registry is created up front so the application-level
	// instruments (delivery counters, lag histogram) land on the same scrape
	// surface as the subsystem collectors StartNode registers.
	reg := heapgossip.NewTelemetryRegistry()
	delivered := reg.Counter("app_delivered_total")
	bytes := reg.Counter("app_delivered_bytes_total")
	streamsSeen := reg.Gauge("app_streams_seen")
	lagHist := reg.Histogram("app_delivery_lag_seconds",
		[]float64{0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 60})
	var seenMu sync.Mutex
	seen := make(map[heapgossip.StreamID]bool) // streams observed (status line)
	cfg := heapgossip.NodeConfig{
		ID:                self,
		Listen:            listen,
		UploadKbps:        uint32(*capKbps),
		SocketBufferBytes: *sockBuf,
		Adaptive:          *adaptive,
		Fanout:            *fanout,
		Peers:             peers,
		Telemetry:         reg,
		OnDeliver: func(stream heapgossip.StreamID, _ heapgossip.PacketID, payload []byte, lag time.Duration) {
			delivered.Inc()
			bytes.Add(int64(len(payload)))
			lagHist.Observe(lag.Seconds())
			seenMu.Lock()
			if !seen[stream] {
				seen[stream] = true
				streamsSeen.Set(float64(len(seen)))
			}
			seenMu.Unlock()
		},
	}
	if *isSource {
		cfg.Source = &heapgossip.SourceConfig{
			Stream:  heapgossip.StreamID(*streamID),
			Windows: *windows,
		}
	}
	cfg.Seed = *seed
	if *adaptCap {
		cfg.Adapt = &heapgossip.AdaptConfig{}
	}
	if *detect {
		cfg.Misbehave = &heapgossip.MisbehaveConfig{Armed: true}
	}
	if *epoch != 0 {
		cfg.Epoch = time.Unix(*epoch, 0)
	}
	if *netemPro != "" {
		profile, err := heapgossip.NetemProfile(*netemPro)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapnode: %v\n", err)
			return 1
		}
		cfg.Netem = &profile
	}
	node, err := heapgossip.StartNode(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heapnode: %v\n", err)
		return 1
	}
	defer node.Close()
	if *httpAddr != "" {
		srv, err := node.StartTelemetry(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapnode: telemetry listener: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", srv.Addr())
	}
	banner := fmt.Sprintf("node %d up on %s (cap %d kbps, heap=%v, source=%v, %d peers)",
		self, node.Addr(), *capKbps, *adaptive, *isSource, len(peers)-1)
	if *jsonOut {
		fmt.Fprintln(os.Stderr, banner) // stdout stays pure JSONL
	} else {
		fmt.Println(banner)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	deadline := time.After(*duration)
	start := time.Now()
	for {
		select {
		case <-ticker.C:
			if *jsonOut {
				// One JSON object per tick, straight from the telemetry
				// snapshot (json.Marshal sorts the keys, so the stream is
				// stable for line-oriented consumers).
				snap := node.Telemetry().Snapshot()
				obj := make(map[string]any, len(snap)+3)
				for _, s := range snap {
					obj[s.Name] = s.Value
				}
				obj["node"] = *id
				obj["uptime_s"] = time.Since(start).Round(time.Millisecond).Seconds()
				if *isSource {
					obj["source_done"] = node.SourceDone()
				}
				b, err := json.Marshal(obj)
				if err != nil {
					fmt.Fprintf(os.Stderr, "heapnode: %v\n", err)
					return 1
				}
				fmt.Println(string(b))
				break
			}
			st := node.Stats()
			// qdrop is the paced sender's tail-drop count: non-zero means
			// the node is trying to send past its upload capability and the
			// bounded application queue is shedding load. backlog is the
			// drain time of what is queued right now — congestion building
			// up before anything is dropped.
			line := fmt.Sprintf("delivered=%d (%.1f MB, %.0f streams) served=%d proposes=%d bbar=%.0f kbps qdrop=%d backlog=%s",
				delivered.Value(), float64(bytes.Value())/1e6, streamsSeen.Value(),
				st.EventsServed, st.ProposesSent, node.EstimateKbps(), node.SendQueueDropped(),
				node.SendQueueBacklog().Round(time.Millisecond))
			if *detect {
				line += fmt.Sprintf(" quar=%v", node.QuarantinedPeers())
			}
			if *adaptCap {
				line += fmt.Sprintf(" adv=%d/%d kbps (%d re-adv)",
					node.AdvertisedKbps(), *capKbps, node.AdaptReadvertisements())
			}
			if *netemPro != "" {
				nd, nl := node.NetemCounters()
				line += fmt.Sprintf(" netem[%s] out-drop=%d out-delay=%d adv=%d kbps",
					*netemPro, nd, nl, node.AdvertisedKbps())
			}
			fmt.Println(line)
			if *isSource && node.SourceDone() {
				fmt.Println("stream complete")
			}
		case <-sig:
			if *jsonOut {
				fmt.Fprintln(os.Stderr, "shutting down")
			} else {
				fmt.Println("shutting down")
			}
			return 0
		case <-deadline:
			return 0
		}
	}
}

func loadPeers(path string) (map[heapgossip.NodeID]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	peers := make(map[heapgossip.NodeID]string)
	scanner := bufio.NewScanner(f)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'id host:port', got %q", path, lineNo, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad id %q", path, lineNo, fields[0])
		}
		peers[heapgossip.NodeID(id)] = fields[1]
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("%s: no peers", path)
	}
	return peers, nil
}

// Command heapsim runs simulated streaming experiments and prints a
// summary: per-class bandwidth usage, stream quality at a playback lag, and
// the lag distribution across nodes.
//
// With one protocol and one replica it runs a single experiment; a
// comma-separated -protocol list and/or -replicas > 1 drive the parallel
// sweep engine instead, printing one summary row per cell.
//
// Examples:
//
//	heapsim -protocol heap -dist ms-691 -nodes 270 -windows 31
//	heapsim -protocol standard -dist ref-691 -fanout 15
//	heapsim -protocol heap -dist ref-691 -churn 0.2
//	heapsim -protocol heap,standard -replicas 3      # 6 runs, all cores
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/churn"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		protocol  = flag.String("protocol", "heap", "protocol, or a comma-separated list to sweep (heap, standard, tree)")
		distName  = flag.String("dist", "ms-691", "ref-691, ref-724, ms-691, uniform-691, or none (unconstrained)")
		nodes     = flag.Int("nodes", 270, "system size incl. source")
		windows   = flag.Int("windows", 31, "stream length in FEC windows (~1.93s each)")
		fanout    = flag.Float64("fanout", 7, "average fanout fbar")
		seed      = flag.Int64("seed", 1, "run seed")
		lagFlag   = flag.Duration("lag", 10*time.Second, "playback lag for quality metrics")
		churnFrac = flag.Float64("churn", 0, "fraction of nodes crashing at t=60s (0 disables)")
		sameRetry = flag.Bool("same-proposer-retry", false, "paper-literal retransmission (ablation)")
		bias      = flag.Bool("source-bias", false, "bias the source's first hop toward rich nodes (extension)")
		replicas  = flag.Int("replicas", 1, "seed replicas (> 1 switches to the sweep engine)")
		workers   = flag.Int("workers", 0, "sweep worker pool size (default GOMAXPROCS)")
		csvDir    = flag.String("csv", "", "write delivery.csv and nodes.csv into this directory (single run only)")
		shards    = flag.Int("shards", runtime.GOMAXPROCS(0), "simulator shards (cores); results are identical at any count")
	)
	flag.Parse()

	cfg := scenario.Config{
		Name:            "heapsim",
		Nodes:           *nodes,
		Fanout:          *fanout,
		Windows:         *windows,
		Seed:            *seed,
		RetSameProposer: *sameRetry,
		SourceBias:      *bias,
		Shards:          *shards,
	}
	if *distName != "none" {
		dist, ok := scenario.Distributions[*distName]
		if !ok {
			fmt.Fprintf(os.Stderr, "heapsim: unknown distribution %q\n", *distName)
			return 1
		}
		cfg.Dist = dist
	} else {
		cfg.Unconstrained = true
	}
	if *churnFrac > 0 {
		cfg.Churn = &churn.Catastrophic{
			At:         cfg.StreamStart + 60*time.Second,
			Fraction:   *churnFrac,
			NotifyMean: 10 * time.Second,
		}
	}

	var protocols []scenario.Protocol
	for _, p := range strings.Split(*protocol, ",") {
		if p = strings.TrimSpace(p); p != "" {
			protocols = append(protocols, scenario.Protocol(p))
		}
	}
	if len(protocols) == 0 {
		fmt.Fprintf(os.Stderr, "heapsim: no protocol given\n")
		return 1
	}

	// Several protocols or replicas: hand the grid to the sweep engine.
	if len(protocols) > 1 || *replicas > 1 {
		if *csvDir != "" {
			fmt.Fprintf(os.Stderr, "heapsim: -csv writes per-run delivery matrices and needs a single run; use heapsweep -csv for sweep grids\n")
			return 1
		}
		res, err := scenario.RunSweep(scenario.Sweep{
			Base:       cfg,
			Protocols:  protocols,
			Replicas:   *replicas,
			BaseSeed:   *seed,
			Workers:    *workers,
			SummaryLag: *lagFlag,
			DropRuns:   true,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapsim: %v\n", err)
			return 1
		}
		fmt.Printf("swept %d runs on %d worker(s) in %.1fs\n\n",
			len(res.Cells)**replicas, res.Workers, res.Elapsed.Seconds())
		fmt.Print(res.Table().Render())
		return 0
	}

	cfg.Protocol = protocols[0]
	start := time.Now()
	res, err := scenario.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heapsim: %v\n", err)
		return 1
	}
	printSummary(res, *lagFlag, time.Since(start))
	if *csvDir != "" {
		if err := writeCSVs(res, *csvDir, *lagFlag); err != nil {
			fmt.Fprintf(os.Stderr, "heapsim: %v\n", err)
			return 1
		}
		fmt.Printf("\nwrote %s/delivery.csv and %s/nodes.csv\n", *csvDir, *csvDir)
	}
	return 0
}

// writeCSVs exports the run's raw delivery matrix and per-node metrics for
// external replotting.
func writeCSVs(res *scenario.Result, dir string, lag time.Duration) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	deliveryFile, err := os.Create(filepath.Join(dir, "delivery.csv"))
	if err != nil {
		return err
	}
	defer deliveryFile.Close()
	if err := metrics.WriteDeliveryCSV(deliveryFile, res.Run); err != nil {
		return err
	}
	nodesFile, err := os.Create(filepath.Join(dir, "nodes.csv"))
	if err != nil {
		return err
	}
	defer nodesFile.Close()
	return metrics.WriteNodeMetricsCSV(nodesFile, res.Run, map[string]func(*metrics.NodeRecord) float64{
		"jitterfree": func(n *metrics.NodeRecord) float64 {
			return res.Run.JitterFreeShare(n, lag)
		},
		"minlag_jitterfree_s": func(n *metrics.NodeRecord) float64 {
			return metrics.Seconds(res.Run.MinLagForJitterFree(n, 0))
		},
		"lag99_s": func(n *metrics.NodeRecord) float64 {
			return metrics.Seconds(res.Run.LagForDeliveryRatio(n, 0.99))
		},
		"min_startup_s": func(n *metrics.NodeRecord) float64 {
			return metrics.Seconds(res.Run.MinStartupForSmoothPlayback(n))
		},
	})
}

func printSummary(res *scenario.Result, lag, elapsed time.Duration) {
	cfg := res.Config
	fmt.Printf("protocol=%s dist=%s nodes=%d windows=%d (stream %.0fs) fanout=%g seed=%d\n",
		cfg.Protocol, distName(cfg), cfg.Nodes, cfg.Windows,
		cfg.StreamDuration().Seconds(), cfg.Fanout, cfg.Seed)
	fmt.Printf("simulated in %.1fs: %d messages, %.1f MB sent, %d lost, %d dead-dropped\n\n",
		elapsed.Seconds(), res.NetStats.MsgsSent,
		float64(res.NetStats.BytesSent)/1e6, res.NetStats.MsgsLost, res.NetStats.MsgsDeadDrop)

	if len(res.Victims) > 0 {
		fmt.Printf("churn: %d nodes crashed\n\n", len(res.Victims))
	}

	// Per-class summary.
	tbl := &metrics.Table{Headers: []string{"class", "nodes", "usage",
		fmt.Sprintf("jitter-free@%s", lag), "min-lag jitter-free (mean)"}}
	classes := res.Run.Classes()
	for _, cl := range classes {
		var usage, jf float64
		var lags []float64
		var n int
		for i := 1; i < len(res.CapsKbps); i++ {
			node := &res.Run.Nodes[i]
			if node.Class != cl || node.Crashed {
				continue
			}
			n++
			usage += res.Usage[i]
			jf += res.Run.JitterFreeShare(node, lag)
			lags = append(lags, metrics.Seconds(res.Run.MinLagForJitterFree(node, 0)))
		}
		if n == 0 {
			continue
		}
		tbl.AddRow(cl, fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f%%", 100*usage/float64(n)),
			fmt.Sprintf("%.1f%%", 100*jf/float64(n)),
			fmt.Sprintf("%.1fs (%d never)", metrics.Mean(lags), countInf(lags)))
	}
	fmt.Print(tbl.Render())

	// Lag CDF.
	vals := res.Run.PerNode(func(n *metrics.NodeRecord) float64 {
		return metrics.Seconds(res.Run.LagForDeliveryRatio(n, 0.99))
	})
	cdf := metrics.NewCDF(vals)
	fmt.Printf("\nlag to receive 99%% of the stream: P50=%.1fs P75=%.1fs P90=%.1fs\n",
		cdf.ValueAtPercentile(50), cdf.ValueAtPercentile(75), cdf.ValueAtPercentile(90))
}

func distName(cfg scenario.Config) string {
	if cfg.Dist == nil {
		return "unconstrained"
	}
	return cfg.Dist.Name()
}

func countInf(vals []float64) int {
	n := 0
	for _, v := range vals {
		if v > 1e12 {
			n++
		}
	}
	return n
}

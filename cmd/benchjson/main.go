// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so benchmark numbers can be archived as CI artifacts and diffed
// across commits without scraping free-form logs.
//
// It reads benchmark output on stdin and writes JSON to stdout (or -o FILE):
//
//	go test -bench LargeScale -benchtime 1x . | benchjson -o BENCH_simnet.json
//
// Every benchmark line becomes one record carrying the benchmark name, the
// GOMAXPROCS suffix, the iteration count, and all reported metrics — the
// standard ns/op / B/op / allocs/op plus every custom b.ReportMetric unit
// (ns/event, events/run, msgs/run, ...). Context lines (goos, goarch, pkg,
// cpu) are captured into the header. Non-benchmark lines pass through to
// stderr so progress stays visible when benchjson sits at the end of a pipe.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Doc is the output document.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

// Record is one benchmark result line.
type Record struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	flag.Parse()

	doc := Doc{Benchmarks: []Record{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if rec, ok := parseBenchLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, rec)
			} else {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `BenchmarkName-P  N  value unit  value unit ...`
// line. Returns ok=false for anything that does not look like one.
func parseBenchLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	// The rest alternates value/unit; bail unless at least one pair parses,
	// so prose lines starting with "Benchmark" never produce junk records.
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return Record{}, false
	}
	return Record{Name: name, Procs: procs, Iterations: iters, Metrics: metrics}, true
}

// Command heapbench regenerates the paper's figures and tables by running
// the corresponding experiments on the simulated network.
//
// Usage:
//
//	heapbench [-artifact all|fig1..fig10|table2|table3]
//	          [-nodes 270] [-windows 93] [-seed 1] [-o report.txt]
//
// The default scale matches the paper (270 nodes, ~180 s of stream); the
// full suite takes several minutes. Scale down with -nodes/-windows for a
// quick look.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		artifact = flag.String("artifact", "all",
			"artifact to generate: all, "+strings.Join(report.Artifacts(), ", "))
		nodes   = flag.Int("nodes", 270, "system size incl. source")
		windows = flag.Int("windows", 93, "stream length in FEC windows (~1.93s each)")
		seed    = flag.Int64("seed", 1, "run seed")
		outPath = flag.String("o", "", "write the report to this file (default stdout)")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapbench: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
	}

	suite := report.NewSuite(out, *nodes, *windows, *seed)
	if !*quiet {
		suite.Progress = func(name string, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "  ran %-28s in %6.1fs\n", name, elapsed.Seconds())
		}
	}

	start := time.Now()
	var err error
	if *artifact == "all" {
		err = suite.GenerateAll()
	} else {
		err = suite.Generate(*artifact)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "heapbench: %v\n", err)
		return 1
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "done in %.1fs (%d scenario runs)\n",
			time.Since(start).Seconds(), len(suite.CachedRuns()))
	}
	return 0
}

// Command heapsweep runs a grid of simulated experiments in parallel and
// aggregates them into the paper's headline tables, one summary row per
// (protocol, distribution, node count, fanout, churn) cell.
//
// The default grid is the paper's central comparison — standard gossip vs.
// HEAP on the three Table 1 distributions at the paper's scale — i.e. the
// data behind Figures 3-9 and Tables 2-3 of EXPERIMENTS.md:
//
//	heapsweep                                   # the headline grid (~minutes)
//	heapsweep -nodes 120 -windows 10            # scaled-down quick look
//	heapsweep -dists ms-691 -fanouts 7,15,20,25,30 -protocols standard  # Figure 2
//	heapsweep -churn 0,0.2,0.5 -dists ref-691   # Figure 10's failure grid
//	heapsweep -replicas 5 -csv out/             # 5 seeds per cell + CSV export
//
// With -largescale it runs the LargeScale family instead: HEAP over Cyclon
// peer sampling on the bimodal distribution at 1k-20k nodes, with steady,
// flash-crowd, churn-burst, and mixed variants per size (the -protocols,
// -dists, -fanouts, -churn and -windows flags are ignored; -nodes picks the
// sizes):
//
//	heapsweep -largescale                       # 1k and 5k nodes, 4 variants each
//	heapsweep -largescale -nodes 10000          # one 10k-node grid
//
// With -netem it adds an adverse-network axis (internal/netem profiles):
// every cell runs once per profile on top of a clean baseline cell, so the
// summary table reads as a robustness comparison. -netem all selects every
// stock profile; a comma list picks some:
//
//	heapsweep -netem all -dists ms-691                    # HEAP vs standard under adversity
//	heapsweep -netem bursty,partition -protocols heap
//	heapsweep -largescale -netem bursty                   # adversity at 1k-5k nodes
//
// With -streams K every run carries K concurrent streams from K distinct
// broadcasters (stream k starts k·stagger after the first), competing for
// each node's upload budget through the fanout-budget allocator; cell
// summaries pool node samples across all K streams. Ignored by -largescale.
//
//	heapsweep -streams 2 -dists ms-691 -windows 10     # 2-source contention grid
//	heapsweep -streams 4 -stagger 1s -protocols heap   # 4 broadcasters, 1 s apart
//
// With -adapt every constrained node runs the congestion-driven capability
// re-estimation controller (internal/adapt): real uplink pressure rewrites
// the advertised capability with hysteresis. Pair it with degraded nodes or
// the captrace-silent netem profile for the A/B the adapt report artifact
// renders:
//
//	heapsweep -adapt -netem captrace-silent -protocols heap -dists ms-691
//
// With -topology P every cell runs twice on the clustered topology profile P
// (internal/topo: wan3, wan5, hubspoke): once topology-blind (the flat
// protocol on the clustered network) and once topology-aware (the fanout
// budget split into -fintra intra-cluster and -finter inter-cluster draws),
// so the summary table reads as a WAN-traffic A/B. Ignored by -largescale.
//
//	heapsweep -topology wan3 -dists ms-691 -protocols heap
//	heapsweep -topology hubspoke -fintra 6 -finter 1 -replicas 3
//
// With -adversary F every cell runs three times — honest baseline, F
// freeriders with detectors observe-only, and the same mix with the
// misbehavior detector armed (internal/misbehave) — so the summary table
// reads as a detection A/B. Freeriders keep the axis protocol-agnostic
// (capability liars need HEAP; use the report suite's adversary artifact
// for the full class mix). Ignored by -largescale.
//
//	heapsweep -adversary 0.1 -dists ms-691 -protocols heap
//	heapsweep -adversary 0.1 -replicas 3 -csv out/
//
// With -csv DIR it writes DIR/sweep.csv (one row per cell, byte-identical
// for a fixed grid and seed regardless of -workers) and DIR/lagcdf.csv (the
// pooled per-cell lag CDFs in long series format for replotting).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/scenario"
	"repro/internal/topo"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		protocols = flag.String("protocols", "standard,heap",
			"comma-separated protocols (standard, heap, tree)")
		dists = flag.String("dists", "ref-691,ref-724,ms-691",
			"comma-separated distributions (ref-691, ref-724, ms-691, uniform-691, none)")
		nodesFlag   = flag.String("nodes", "270", "comma-separated system sizes incl. source")
		fanoutsFlag = flag.String("fanouts", "7", "comma-separated average fanouts fbar")
		churnFlag   = flag.String("churn", "0",
			"comma-separated fractions of nodes crashing mid-stream (0 disables)")
		windows    = flag.Int("windows", 93, "stream length in FEC windows (~1.93s each)")
		replicas   = flag.Int("replicas", 1, "seed replicas per cell")
		seed       = flag.Int64("seed", 1, "base seed for deterministic per-run derivation")
		workers    = flag.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		lag        = flag.Duration("lag", 10*time.Second, "playback lag for stream-quality summaries")
		csvDir     = flag.String("csv", "", "write sweep.csv and lagcdf.csv into this directory")
		plots      = flag.Bool("plots", false, "render the pooled lag CDF of every cell as an ASCII plot")
		quiet      = flag.Bool("q", false, "suppress per-run progress output")
		largeScale = flag.Bool("largescale", false,
			"run the LargeScale family (1k-20k nodes, flash crowds, churn bursts) instead of the paper grid")
		netemFlag = flag.String("netem", "",
			"adverse-network variant axis: 'all' or a comma list of netem profiles ("+
				strings.Join(netem.ProfileNames(), ", ")+")")
		streams = flag.Int("streams", 1,
			"number of concurrent broadcasters per run (multi-source: stream k starts 2s after stream k-1 "+
				"from its own source node; cell summaries pool all streams)")
		stagger   = flag.Duration("stagger", 2*time.Second, "start offset between consecutive streams (with -streams > 1)")
		adaptFlag = flag.Bool("adapt", false,
			"enable congestion-driven capability re-estimation on every constrained node (internal/adapt)")
		advFlag = flag.Float64("adversary", 0,
			"fraction of non-source nodes freeriding; adds a honest/detector-off/detector-on variant axis (internal/misbehave)")
		topoFlag = flag.String("topology", "",
			"clustered topology profile ("+strings.Join(topo.ProfileNames(), ", ")+
				"); adds a topo-blind/topo-aware variant axis (internal/topo)")
		fintra = flag.Float64("fintra", 5, "intra-cluster fanout budget for the topo-aware variant (with -topology)")
		finter = flag.Float64("finter", 2, "inter-cluster fanout budget for the topo-aware variant (with -topology)")
		shards = flag.Int("shards", runtime.GOMAXPROCS(0),
			"simulator shards per run (results are identical at any count); prefer -shards 1 with many -workers when the grid has more cells than cores")
	)
	flag.Parse()
	if *streams < 1 {
		fmt.Fprintln(os.Stderr, "heapsweep: -streams must be >= 1")
		return 1
	}
	if *advFlag < 0 || *advFlag >= 1 {
		fmt.Fprintln(os.Stderr, "heapsweep: -adversary must be in [0, 1)")
		return 1
	}

	var netemNames []string
	if *netemFlag == "all" {
		netemNames = []string{} // empty list = every stock profile
	} else if *netemFlag != "" {
		netemNames = splitList(*netemFlag)
	}
	var adaptCfg *adapt.Config
	if *adaptFlag {
		adaptCfg = &adapt.Config{}
	}

	if *largeScale {
		// The paper-grid -nodes default is not a large-N size; only an
		// explicitly passed -nodes overrides the family's own defaults.
		nodesSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "nodes" {
				nodesSet = true
			}
		})
		var sizes []int
		if nodesSet {
			var err error
			if sizes, err = parseInts(*nodesFlag); err != nil {
				fmt.Fprintf(os.Stderr, "heapsweep: -nodes: %v\n", err)
				return 1
			}
		}
		sw := scenario.LargeScaleSweep(sizes, *replicas, *seed, *workers)
		sw.Base.Adapt = adaptCfg
		sw.Base.Shards = *shards
		sw.SummaryLag = *lag
		if netemNames != nil {
			adv, err := scenario.LargeScaleAdverseVariants(netemNames...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "heapsweep: -netem: %v\n", err)
				return 1
			}
			sw.Variants = append(sw.Variants, adv...)
		}
		if !*quiet {
			sw.Progress = func(cell string, replica int, elapsed time.Duration) {
				fmt.Fprintf(os.Stderr, "  ran %-40s rep %d in %6.1fs\n", cell, replica, elapsed.Seconds())
			}
		}
		res, err := scenario.RunSweep(sw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapsweep: %v\n", err)
			return 1
		}
		return report(res, *replicas, *plots, *csvDir)
	}

	sw := scenario.Sweep{
		Base: scenario.Config{
			Windows:     *windows,
			StreamStart: 5 * time.Second,
			Drain:       120 * time.Second,
			Streams:     multiSourceSpecs(*streams, 5*time.Second, *stagger),
			Adapt:       adaptCfg,
			Shards:      *shards,
		},
		Replicas:   *replicas,
		BaseSeed:   *seed,
		Workers:    *workers,
		SummaryLag: *lag,
		// Full Results at paper scale are large; the tables, plots and
		// CSVs all come from the per-cell aggregates.
		DropRuns: true,
	}
	if !*quiet {
		sw.Progress = func(cell string, replica int, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "  ran %-40s rep %d in %6.1fs\n", cell, replica, elapsed.Seconds())
		}
	}

	for _, p := range splitList(*protocols) {
		proto := scenario.Protocol(p)
		if proto != scenario.StandardGossip && proto != scenario.HEAP && proto != scenario.StaticTree {
			fmt.Fprintf(os.Stderr, "heapsweep: unknown protocol %q\n", p)
			return 1
		}
		sw.Protocols = append(sw.Protocols, proto)
	}
	for _, d := range splitList(*dists) {
		if d == "none" {
			sw.Dists = append(sw.Dists, nil) // unconstrained
			continue
		}
		dist, ok := scenario.Distributions[d]
		if !ok {
			fmt.Fprintf(os.Stderr, "heapsweep: unknown distribution %q\n", d)
			return 1
		}
		sw.Dists = append(sw.Dists, dist)
	}
	var err error
	if sw.Nodes, err = parseInts(*nodesFlag); err != nil {
		fmt.Fprintf(os.Stderr, "heapsweep: -nodes: %v\n", err)
		return 1
	}
	if sw.Fanouts, err = parseFloats(*fanoutsFlag); err != nil {
		fmt.Fprintf(os.Stderr, "heapsweep: -fanouts: %v\n", err)
		return 1
	}
	if sw.ChurnFractions, err = parseFloats(*churnFlag); err != nil {
		fmt.Fprintf(os.Stderr, "heapsweep: -churn: %v\n", err)
		return 1
	}
	if netemNames != nil {
		adv, err := scenario.AdverseVariants(netemNames...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapsweep: -netem: %v\n", err)
			return 1
		}
		sw.Variants = append([]scenario.Variant{{Name: "baseline"}}, adv...)
	}
	if *advFlag > 0 {
		vars := scenario.AdversaryVariants(scenario.AdversarySpec{FreeriderFraction: *advFlag})
		if len(sw.Variants) > 0 {
			vars = vars[1:] // the netem axis already carries a clean baseline cell
		}
		sw.Variants = append(sw.Variants, vars...)
	}
	if *topoFlag != "" {
		tc, err := topo.Profile(*topoFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heapsweep: -topology: %v\n", err)
			return 1
		}
		sw.Variants = append(sw.Variants, scenario.TopologyVariants(tc, *fintra, *finter)...)
	}

	res, err := scenario.RunSweep(sw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heapsweep: %v\n", err)
		return 1
	}
	return report(res, *replicas, *plots, *csvDir)
}

// report renders the sweep outcome: summary table, optional ASCII CDF plots,
// optional CSV export. Returns the process exit code.
func report(res *scenario.SweepResult, replicas int, plots bool, csvDir string) int {
	fmt.Printf("%d cells x %d replica(s) on %d worker(s) in %.1fs (sum of runs %.1fs)\n\n",
		len(res.Cells), replicas, res.Workers, res.Elapsed.Seconds(), sumRunTime(res).Seconds())
	fmt.Print(res.Table().Render())

	if plots {
		for i := range res.Cells {
			c := &res.Cells[i]
			plot := metrics.Plot{
				Title:  fmt.Sprintf("%s — lag to receive 99%% of the stream", c.Key),
				XLabel: "stream lag (s)",
				YLabel: "% of nodes (CDF)",
				XMax:   60, YMax: 100,
			}
			plot.Add("99% delivery", metrics.CDFSeries(c.Summary.LagCDF.Values))
			fmt.Printf("\n%s", plot.Render())
		}
	}

	if csvDir != "" {
		if err := writeCSVs(res, csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "heapsweep: %v\n", err)
			return 1
		}
		fmt.Printf("\nwrote %s/sweep.csv and %s/lagcdf.csv\n", csvDir, csvDir)
	}
	return 0
}

// writeCSVs exports the per-cell summary rows and the pooled lag CDFs.
func writeCSVs(res *scenario.SweepResult, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sweepFile, err := os.Create(filepath.Join(dir, "sweep.csv"))
	if err != nil {
		return err
	}
	defer sweepFile.Close()
	if err := res.WriteCSV(sweepFile); err != nil {
		return err
	}
	cdfFile, err := os.Create(filepath.Join(dir, "lagcdf.csv"))
	if err != nil {
		return err
	}
	defer cdfFile.Close()
	series := make([]metrics.Series, 0, len(res.Cells))
	for i := range res.Cells {
		c := &res.Cells[i]
		series = append(series, metrics.Series{
			Name:   c.Key.String(),
			Points: metrics.CDFSeries(c.Summary.LagCDF.Values),
		})
	}
	return metrics.WriteSeriesCSV(cdfFile, series)
}

func sumRunTime(res *scenario.SweepResult) time.Duration {
	var sum time.Duration
	for i := range res.Cells {
		sum += res.Cells[i].Summary.Elapsed
	}
	return sum
}

// multiSourceSpecs builds the -streams axis: k staggered broadcasters, each
// from its own source node (stream k from node k, starting k*stagger after
// the first). Returns nil for k <= 1: the legacy single-stream run.
func multiSourceSpecs(k int, start, stagger time.Duration) []scenario.StreamSpec {
	if k <= 1 {
		return nil
	}
	specs := make([]scenario.StreamSpec, k)
	for i := range specs {
		specs[i].Start = start + time.Duration(i)*stagger
	}
	return specs
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

package heapgossip

import (
	"runtime"
	"time"

	"repro/internal/adapt"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/misbehave"
	"repro/internal/netem"
	"repro/internal/scenario"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/wire"
)

// Identifiers shared across the public API.
type (
	// NodeID identifies a node.
	NodeID = wire.NodeID
	// PacketID identifies one stream packet in publish order (dense per
	// stream).
	PacketID = wire.PacketID
	// StreamID identifies one dissemination stream. Stream 0 is the
	// default single stream; multi-source deployments run several
	// concurrent streams over one membership and aggregation layer.
	StreamID = wire.StreamID
)

// Protocol selects the dissemination protocol.
type Protocol = scenario.Protocol

// The protocols under evaluation.
const (
	// StandardGossip is Algorithm 1 with a fixed per-node fanout.
	StandardGossip = scenario.StandardGossip
	// HEAP adapts each node's fanout to its relative upload capability.
	HEAP = scenario.HEAP
	// StaticTree is the introduction's baseline: a k-ary push tree with no
	// repair protocol.
	StaticTree = scenario.StaticTree
)

// Scenario describes a simulated experiment; see scenario.Config for every
// knob. The zero value of most fields selects the paper's §3.1 parameters.
type Scenario = scenario.Config

// ScenarioResult carries the measurements of a simulated run.
type ScenarioResult = scenario.Result

// RunScenario executes a simulated experiment and returns its measurements.
func RunScenario(cfg Scenario) (*ScenarioResult, error) {
	return scenario.Run(cfg)
}

// Sweep describes a grid of scenarios (protocol × distribution × node count
// × fanout × churn × seed replicas) executed by RunSweep on a bounded worker
// pool with deterministic per-run seed derivation.
type Sweep = scenario.Sweep

// Variant is a named arbitrary config mutation used as a sweep axis.
type Variant = scenario.Variant

// SweepResult aggregates a sweep's runs into per-cell summary statistics.
type SweepResult = scenario.SweepResult

// CellResult is one sweep grid cell's outcome.
type CellResult = scenario.CellResult

// CellKey identifies one cell of a sweep grid.
type CellKey = scenario.CellKey

// CellSummary holds one cell's pooled summary statistics.
type CellSummary = scenario.CellSummary

// RunSweep executes a sweep grid in parallel (Workers goroutines, default
// GOMAXPROCS) and aggregates per-cell statistics. Results are byte-for-byte
// reproducible for a fixed sweep definition, independent of worker count.
func RunSweep(sw Sweep) (*SweepResult, error) {
	return scenario.RunSweep(sw)
}

// StreamSpec describes one stream of a multi-source scenario: its id,
// broadcasting node, (staggered) start, length, and geometry. Set
// Scenario.Streams to run K concurrent broadcasters competing for every
// node's upload budget; the fanout-budget allocator divides each node's
// capability across the streams, weighted by stream rate, so aggregate
// sends never exceed the node's capacity.
type StreamSpec = scenario.StreamSpec

// StreamSummary is one stream's headline statistics in a multi-source run
// (per-stream lag CDF percentiles); see ScenarioResult.StreamSummaries.
type StreamSummary = scenario.StreamSummary

// Distribution assigns upload capabilities to nodes.
type Distribution = scenario.Distribution

// The paper's capability distributions (Table 1) plus the uniform dist2 of
// Figure 2 and the LargeScale family's bimodal distribution.
var (
	Ref691     = scenario.Ref691
	Ref724     = scenario.Ref724
	MS691      = scenario.MS691
	Uniform691 = scenario.Uniform691
	Bimodal700 = scenario.Bimodal700
)

// JoinWave is one flash-crowd join: Count nodes join together at At
// (LargeScale family).
type JoinWave = scenario.JoinWave

// ChurnBurst is one correlated failure burst: a fraction of the then-alive
// nodes crash within a short spread (LargeScale family).
type ChurnBurst = scenario.ChurnBurst

// LargeScale builds the large-N base scenario for n nodes: HEAP over Cyclon
// peer sampling on the bimodal distribution with fanout ln(n)+1.4. Add
// JoinWaves / ChurnBursts for the dynamic variants.
func LargeScale(n int, seed int64) Scenario { return scenario.LargeScaleBase(n, seed) }

// LargeScaleVariants returns the family's standard sweep axis: steady,
// flashcrowd, churnbursts, mixed.
func LargeScaleVariants() []Variant { return scenario.LargeScaleVariants() }

// LargeScaleXL builds the 100k-1M scenario: LargeScale plus the two knobs
// that matter at that size — a sharded simulator (Scenario.Shards; results
// are byte-identical at any shard count) and a capped per-node capability
// table (Scenario.AggTrackLimit). Pass shards <= 0 for runtime.GOMAXPROCS.
func LargeScaleXL(n int, seed int64, shards int) Scenario {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	return scenario.LargeScaleXL(n, seed, shards)
}

// LargeScaleSweep builds the large-N grid (sizes × variants); empty sizes
// default to 1k and 5k nodes.
func LargeScaleSweep(nodes []int, replicas int, seed int64, workers int) Sweep {
	return scenario.LargeScaleSweep(nodes, replicas, seed, workers)
}

// Catastrophic describes the simultaneous mass-failure scenario of §3.6.
type Catastrophic = churn.Catastrophic

// Netem is a declarative description of adverse network conditions —
// Gilbert-Elliott bursty loss, scheduled partitions with heal, latency
// spikes, asymmetric per-direction degradation, and time-varying capability
// traces. Set Scenario.Netem to run a simulation under it, or
// NodeConfig.Netem to apply the same models to real UDP datagrams; with it
// unset both substrates keep their near-ideal default network.
type Netem = netem.Config

// NetemModelStats counts one netem model's per-run drop/delay verdicts
// (ScenarioResult.NetemStats).
type NetemModelStats = netem.ModelStats

// NetemProfile returns a named stock adverse profile ("bursty",
// "partition", "spike", "asym", "captrace", "mixed").
func NetemProfile(name string) (Netem, error) { return netem.Profile(name) }

// NetemProfileNames lists the stock adverse profiles.
func NetemProfileNames() []string { return netem.ProfileNames() }

// AdverseVariants returns one sweep variant per named netem profile (all
// stock profiles when names is empty), for grids that compare protocols
// across network adversity.
func AdverseVariants(names ...string) ([]Variant, error) {
	return scenario.AdverseVariants(names...)
}

// Topology describes a clustered WAN/LAN geometry (internal/topo): a cluster
// count with optional size weights, split intra-/inter-cluster latency bands,
// and jitter. Set Scenario.Topology to embed a run in it; the cluster
// assignment and every pair latency are pure hashes of the run seed.
type Topology = topo.Config

// TopoStats carries a topology-embedded run's cluster layout and WAN traffic
// accounting (ScenarioResult.TopoStats).
type TopoStats = scenario.TopoStats

// TopologyProfile returns a named stock topology ("wan3", "wan5",
// "hubspoke").
func TopologyProfile(name string) (Topology, error) { return topo.Profile(name) }

// TopologyProfileNames lists the stock topologies.
func TopologyProfileNames() []string { return topo.ProfileNames() }

// TopologyVariants returns the topology A/B sweep axis: the clustered
// network under the flat protocol ("topo-blind") and under the split
// intra/inter fanout ("topo-aware").
func TopologyVariants(tc Topology, intra, inter float64) []Variant {
	return scenario.TopologyVariants(tc, intra, inter)
}

// AdaptConfig parameterizes congestion-driven capability re-estimation
// (internal/adapt): a per-node controller that observes real transmit
// pressure — uplink queue backlog, tail drops, achieved throughput — and
// re-advertises an effective capability with hysteresis (multiplicative
// decrease under sustained backlog, slow additive probe upward when
// drained). The zero value selects the stock policy. Set Scenario.Adapt to
// run simulations with the loop closed, or NodeConfig.Adapt to run it on a
// real socket's paced sender.
type AdaptConfig = adapt.Config

// AdaptReadvertisement is one effective-capability change in an adaptation
// trace (ScenarioResult.AdaptStats, Node.AdaptTrace).
type AdaptReadvertisement = adapt.Readvertisement

// AdaptStats carries a simulated run's adaptation outcomes: per-node
// re-advertisement traces, final effective capabilities, and the
// effective-to-configured ratio CDF (CapRatioCDF).
type AdaptStats = scenario.AdaptStats

// MisbehaveConfig parameterizes the deterministic misbehavior detector
// (internal/misbehave): per-peer contribution evidence collected on the
// engine's hot paths feeds two verdict rules — serve deficit (freeriders and
// saturated capability liars) and total unresponsiveness (message droppers) —
// with quarantine wired through peer sampling, proposal handling, and (under
// HEAP) the capability average. The zero value selects the stock thresholds
// in observe-only mode; set Armed for verdicts. Set Scenario.Adversary to
// study detection in simulation, or NodeConfig.Misbehave to run the detector
// on a real socket.
type MisbehaveConfig = misbehave.Config

// MisbehaveEvidence is one peer's monotone contribution record.
type MisbehaveEvidence = misbehave.Evidence

// AdversarySpec configures adversarial node classes (freeriders, capability
// liars, message droppers) and the detector for a simulated run
// (Scenario.Adversary).
type AdversarySpec = scenario.AdversarySpec

// AdversaryStats carries an adversarial run's measurements: detection rates
// and latency per class, the false-positive record on the honest cohort, and
// the observer-coalition source-anonymity probe
// (ScenarioResult.AdversaryStats).
type AdversaryStats = scenario.AdversaryStats

// AdversaryVariants returns the three-way sweep axis of adversary studies:
// honest baseline, the adversary mix with detectors observe-only, and the
// same mix with detectors armed.
func AdversaryVariants(spec AdversarySpec) []Variant {
	return scenario.AdversaryVariants(spec)
}

// Geometry describes stream packetization and FEC window structure.
type Geometry = stream.Geometry

// PaperGeometry returns the stream parameters of §3.1 (551 kbps, 1316-byte
// packets, 101+9 FEC windows).
func PaperGeometry() Geometry { return stream.PaperGeometry() }

// Run is the raw measurement record of a run; its methods compute every
// metric in the paper's evaluation.
type Run = metrics.Run

// NodeRecord is one node's delivery record inside a Run.
type NodeRecord = metrics.NodeRecord

// Never marks "not received" / "never decodable" in metric results.
const Never = metrics.Never

// PlaybackReport describes the viewer experience (stalls, skips, final lag)
// of one node for a chosen startup delay; see Run.Playback.
type PlaybackReport = metrics.PlaybackReport

// EngineStats counts one node's protocol activity.
type EngineStats = core.Stats

// TelemetryRegistry is the unified metric registry (internal/telemetry):
// lock-free named counters, gauges and histograms plus subsystem collectors,
// scrapeable as one snapshot or in the Prometheus text format. Every Node
// carries one (Node.Telemetry); pass NodeConfig.Telemetry to add your own
// instruments to the same scrape surface.
type TelemetryRegistry = telemetry.Registry

// TelemetrySample is one named value of a registry snapshot.
type TelemetrySample = telemetry.Sample

// TelemetryServer is a running introspection HTTP listener (Prometheus-text
// /metrics, /debug/pprof/*, /healthz, /statusz); see Node.StartTelemetry.
type TelemetryServer = telemetry.Server

// NewTelemetryRegistry returns an empty metric registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// TraceConfig enables dissemination-path tracing: sampled per-packet hop
// records (publish, first request, delivery) captured at every node through
// the engine's zero-cost hook, rng-free and byte-deterministic under the
// simulator's virtual clock. Set Scenario.Trace to collect hop-count and
// per-hop-latency distributions (ScenarioResult.TraceStats).
type TraceConfig = telemetry.TraceConfig

// HopRecord is one traced dissemination step observed at one node.
type HopRecord = telemetry.HopRecord

// TraceStats carries a traced run's dissemination-path analysis: the merged
// time-ordered hop records (exportable as JSONL), the offline-joined
// hop-count distribution, and the per-hop request→delivery latency CDF.
type TraceStats = scenario.TraceStats

// Seconds converts a metric lag to float seconds (Never maps to +Inf).
func Seconds(d time.Duration) float64 { return metrics.Seconds(d) }

package heapgossip

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/aggregation"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/membership"
	"repro/internal/misbehave"
	"repro/internal/netem"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/udpnet"
	"repro/internal/wire"
)

// DeliverFunc receives every stream packet exactly once as it is delivered.
// stream identifies which of the node's concurrent streams the packet
// belongs to (0 for single-stream deployments); lag is the time between the
// packet's publication (per its stamp) and its local delivery, assuming
// loosely synchronized clocks across nodes.
type DeliverFunc func(stream StreamID, id PacketID, payload []byte, lag time.Duration)

// NodeConfig assembles one real-UDP HEAP node.
type NodeConfig struct {
	// ID is this node's identity; it must be unique within the deployment.
	ID NodeID
	// Listen is the UDP listen address (default "127.0.0.1:0").
	Listen string
	// UploadKbps is the node's advertised upload capability; it throttles
	// the socket (token bucket + queue) and feeds HEAP's aggregation.
	// Required.
	UploadKbps uint32
	// SocketBufferBytes sizes the kernel socket buffers (SO_RCVBUF and
	// SO_SNDBUF) at bind. 0 selects udpnet's 1 MiB default — kernel-default
	// receive buffers drop inbound bursts well below a node's capability,
	// which reads as network loss — and a negative value leaves the kernel
	// defaults untouched.
	SocketBufferBytes int
	// Adaptive enables HEAP; false runs standard fixed-fanout gossip.
	Adaptive bool
	// Fanout is fbar, the target average fanout (ln(n)+c). Default 7.
	Fanout float64
	// GossipPeriod is the propose batching period. Default 200 ms.
	GossipPeriod time.Duration
	// Peers maps every node id (including self) to its UDP address,
	// "host:port". More peers can join later via Node.AddPeer.
	Peers map[NodeID]string
	// OnDeliver, if non-nil, receives every delivered packet.
	OnDeliver DeliverFunc
	// Source, if non-nil, makes this node the stream broadcaster.
	Source *SourceConfig
	// Seed drives the node's protocol randomness (default: derived from ID).
	Seed int64
	// Epoch is the shared time base for lag stamps and netem schedules
	// (default: this node's start time). For schedule-driven netem
	// profiles — partitions, spikes, capability traces — give every node
	// of a deployment the same Epoch (heapnode's -epoch flag), or start
	// them near-simultaneously: schedules are relative to the epoch, so
	// staggered per-node epochs would open the same window at different
	// wall-clock times on each node.
	Epoch time.Time
	// Netem, if non-nil, emulates adverse network conditions on this node:
	// every datagram it sends passes through the profile's models (bursty
	// loss, partitions, spikes, asymmetric degradation) at the same
	// transmit-time point the simulator consults them, and capability
	// traces that cover this node's id rewrite its advertised capability
	// on schedule. Give every node of a deployment the same profile, and
	// either the same Seed or none (the engine materializes its random
	// node sets from the configured seed before any per-ID derivation, so
	// the zero default is already coherent across nodes).
	Netem *Netem
	// Adapt, if non-nil, closes the congestion feedback loop on this node:
	// a controller observes the paced sender's real pressure — queue
	// backlog, tail drops, achieved throughput — and re-advertises an
	// effective capability (with hysteresis) when the node cannot sustain
	// its configured UploadKbps. The zero AdaptConfig selects the stock
	// policy. Requires Adaptive (there is no advertisement to adapt under
	// standard gossip). While adaptation runs, SetAdvertisedKbps calls
	// race it and should be avoided; AdvertisedKbps tracks the adapted
	// value.
	Adapt *AdaptConfig
	// Misbehave, if non-nil, runs the misbehavior detector on this node:
	// per-peer contribution evidence is collected on the engine's message
	// paths, and — when Armed — peers convicted of freeriding or dropping
	// are quarantined: excluded from gossip target draws, their proposals
	// ignored, and (under Adaptive) their capability claims expelled from
	// the average. The zero MisbehaveConfig observes without verdicts.
	// Leave Alive nil on real deployments: there is no liveness oracle, and
	// quarantining a dead peer is harmless.
	Misbehave *MisbehaveConfig
	// Telemetry, if non-nil, is the metric registry this node registers its
	// subsystem collectors into; nil gives the node a fresh private
	// registry (Node.Telemetry). Supplying one lets an embedding program
	// add its own instruments to the same scrape surface before the node
	// starts (heapnode's delivery counters and lag histogram).
	Telemetry *TelemetryRegistry
}

// SourceConfig describes one stream a node broadcasts.
type SourceConfig struct {
	// Stream is the dissemination stream id this source broadcasts on.
	// Single-stream deployments use the default 0; multi-source
	// deployments give every broadcaster its own id (Node.OpenStream).
	Stream StreamID
	// Geometry of the stream. Default PaperGeometry().
	Geometry Geometry
	// Windows is the stream length in FEC windows. Required.
	Windows int
	// StartDelay postpones the first packet (lets aggregation warm up).
	// Default 2 s.
	StartDelay time.Duration
}

// Node is a running HEAP node on a real UDP socket.
type Node struct {
	id        NodeID
	udp       *udpnet.Node
	engine    *core.Engine
	estimator *aggregation.Estimator
	adapt     *adapt.Controller
	detector  *misbehave.Detector
	view      *membership.View
	source    *stream.Source
	telemetry *telemetry.Registry
	capKbps   atomic.Uint32
	capTimers []*time.Timer
}

// StreamHandle controls one locally sourced stream on a running Node,
// opened with Node.OpenStream (or implicitly for NodeConfig.Source).
type StreamHandle struct {
	node *Node
	id   StreamID
	src  *stream.Source
}

// ID returns the handle's stream id.
func (h *StreamHandle) ID() StreamID { return h.id }

// Done reports whether the stream's last packet has been published.
func (h *StreamHandle) Done() bool {
	done := false
	h.node.udp.Execute(func() { done = h.src.Done })
	return done
}

// Published returns how many packets (source + parity) the stream has
// handed to the dissemination engine so far.
func (h *StreamHandle) Published() int {
	n := 0
	h.node.udp.Execute(func() { n = h.src.Published })
	return n
}

// StartNode binds a socket, wires the protocol stack (dissemination engine,
// capability aggregation when Adaptive, optional stream source) and starts
// it. Close the returned node to shut down.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.UploadKbps == 0 {
		return nil, fmt.Errorf("heapgossip: UploadKbps is required")
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = 7
	}
	if cfg.GossipPeriod == 0 {
		cfg.GossipPeriod = 200 * time.Millisecond
	}
	// Netem node-set materialization (partition groups, asym/captrace node
	// selections) must come out identical on every node of the deployment,
	// so the engine builds from the seed as configured — shared explicitly,
	// or the common zero default — *before* the per-ID protocol-seed
	// derivation below.
	netemSeed := cfg.Seed
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.ID) + 1
	}

	peerIDs := make([]wire.NodeID, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		peerIDs = append(peerIDs, id)
	}
	view := membership.NewView(cfg.ID, peerIDs)

	n := &Node{id: cfg.ID, view: view, telemetry: cfg.Telemetry}
	if n.telemetry == nil {
		n.telemetry = telemetry.NewRegistry()
	}
	n.capKbps.Store(cfg.UploadKbps)
	mux := env.NewMux()

	var sampler membership.Sampler = view
	if cfg.Misbehave != nil {
		det, err := misbehave.New(*cfg.Misbehave)
		if err != nil {
			return nil, err
		}
		n.detector = det
		sampler = &misbehave.QuarantineSampler{Inner: view, Detector: det}
	}

	engCfg := core.Config{
		Fanout:       cfg.Fanout,
		GossipPeriod: cfg.GossipPeriod,
		// The fanout-budget allocator divides this across concurrent
		// streams; with a single stream it is inert.
		UploadKbps: cfg.UploadKbps,
		Sampler:    sampler,
	}
	if n.detector != nil {
		engCfg.Monitor = n.detector
	}
	if cfg.OnDeliver != nil {
		deliver := cfg.OnDeliver
		engCfg.OnDeliver = func(ev wire.Event, at time.Duration) {
			lag := at - time.Duration(ev.Stamp)
			if lag < 0 {
				lag = 0
			}
			deliver(ev.Stream, ev.ID, ev.Payload, lag)
		}
	}
	if cfg.Adaptive {
		aggCfg := aggregation.Config{
			SelfCapKbps: cfg.UploadKbps,
			Sampler:     sampler,
		}
		if n.detector != nil {
			// The fanout penalty: a quarantined peer's capability claim
			// leaves the average, returning its fanout share to honest nodes.
			aggCfg.Exclude = n.detector.Quarantined
		}
		est := aggregation.NewEstimator(aggCfg)
		n.estimator = est
		engCfg.Adaptive = true
		engCfg.Capabilities = est
		mux.Register(est, wire.KindAggregate)
	}
	if cfg.Adapt != nil {
		if !cfg.Adaptive {
			return nil, fmt.Errorf("heapgossip: Adapt requires Adaptive (standard gossip has no advertisement to adapt)")
		}
		ctrl, err := adapt.NewController(*cfg.Adapt, cfg.UploadKbps)
		if err != nil {
			return nil, err
		}
		n.adapt = ctrl
		engCfg.Adapt = ctrl
		// The signal reads the paced sender's lock-free counters; the engine
		// samples it from the node's execution context on its gossip rounds.
		// SentBytes must be the enqueue-counted accumulator (AcceptedBytes):
		// the controller derives drained bytes as ΔSentBytes − ΔQueuedBytes,
		// which only holds when both counters sit on the enqueue side — the
		// same convention as the simulator's NodeStats.SentBytes.
		engCfg.AdaptSignal = func() adapt.Sample {
			return adapt.Sample{
				Backlog:     n.udp.SendBacklog(),
				SentBytes:   n.udp.AcceptedBytes(),
				QueuedBytes: n.udp.QueuedBytes(),
				Dropped:     n.udp.SendDropped(),
			}
		}
		// Keep the public AdvertisedKbps mirror current (the engine
		// advertises through the estimator internally).
		engCfg.OnAdapt = func(effKbps uint32) { n.capKbps.Store(effKbps) }
	}
	eng, err := core.New(engCfg)
	if err != nil {
		return nil, err
	}
	n.engine = eng
	mux.Register(eng, wire.KindPropose, wire.KindRequest, wire.KindServe)

	if cfg.Source != nil {
		sc := *cfg.Source
		applySourceDefaults(&sc)
		src, err := stream.NewSource(stream.SourceConfig{
			Stream:    sc.Stream,
			Geometry:  sc.Geometry,
			Windows:   sc.Windows,
			StartAt:   sc.StartDelay,
			Publisher: eng,
			// Release the budget weight when production ends, so a
			// long-lived node's past broadcasts stop throttling future ones.
			OnDone: func() { eng.RetireStream(sc.Stream) },
		})
		if err != nil {
			return nil, err
		}
		// Register the stream with its rate so the fanout-budget allocator
		// weighs it when further streams open alongside.
		if err := eng.OpenStream(sc.Stream, core.StreamConfig{
			ExpectedPackets: sc.Geometry.TotalPackets(sc.Windows),
			RateKbps:        float64(sc.Geometry.EffectiveRateBps()) / 1000,
		}); err != nil {
			return nil, err
		}
		n.source = src
		mux.Register(src)
	}

	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Now()
	}
	udpCfg := udpnet.Config{
		Listen:            cfg.Listen,
		UploadBps:         int64(cfg.UploadKbps) * 1000,
		SocketBufferBytes: cfg.SocketBufferBytes,
		Seed:              cfg.Seed,
		Epoch:             cfg.Epoch,
	}
	type capStep struct {
		netem.CapStep
		silent bool
	}
	var capSteps []capStep
	if cfg.Netem != nil {
		// Materialize over the actual deployment ids (peers files need not
		// be dense), so partition groups and traced node sets land on nodes
		// that exist — identically on every host sharing the peers file.
		engine, err := cfg.Netem.BuildForNodes(peerIDs, netemSeed, 0)
		if err != nil {
			return nil, err
		}
		udpCfg.Netem = engine
		// Capability traces apply node-locally: collect the steps covering
		// this id; they are scheduled on the wall clock once the node runs.
		for _, tr := range engine.CapTraces() {
			for _, id := range tr.Nodes {
				if id == cfg.ID {
					for _, st := range tr.Steps {
						capSteps = append(capSteps, capStep{CapStep: st, silent: tr.Silent})
					}
				}
			}
		}
	}
	udpNode, err := udpnet.NewNode(cfg.ID, mux, udpCfg)
	if err != nil {
		return nil, err
	}
	n.udp = udpNode
	// Two collectors back the scrape surface: the transport one reads only
	// lock-free sender counters and the node's own mutex (safe from any
	// goroutine, truthful after Close), while the protocol one serializes
	// with the execution context — falling back to an unserialized read once
	// the node is closed, like the statistics accessors.
	n.telemetry.RegisterCollector(func(emit telemetry.EmitFunc) { n.udp.Collect(emit) })
	n.telemetry.RegisterCollector(n.collectProtocol)

	peers := make(map[wire.NodeID]*net.UDPAddr, len(cfg.Peers))
	for id, addrStr := range cfg.Peers {
		addr, err := net.ResolveUDPAddr("udp", addrStr)
		if err != nil {
			udpNode.Close()
			return nil, fmt.Errorf("heapgossip: peer %d address %q: %w", id, addrStr, err)
		}
		peers[id] = addr
	}
	udpNode.SetPeers(peers)
	if err := udpNode.Start(); err != nil {
		udpNode.Close()
		return nil, err
	}
	// Trace steps are scheduled relative to the (possibly shared) epoch. Of
	// the steps already in the past — a node starting or restarting late
	// into the schedule — only the latest applies, synchronously, so racing
	// zero-delay timers cannot leave a stale factor advertised. Each step
	// rewrites both the advertised capability and the real pacer rate, the
	// same pair the simulator's cap-trace application touches, so a traced
	// deployment actually loses (and regains) throughput. Silent steps
	// rewrite only the pacer: the node keeps claiming full capability and
	// only the adaptation loop (Adapt) can discover the gap — exactly the
	// simulator's silent-trace semantics.
	applyStep := func(factor float64, silent bool) {
		adv := uint32(float64(cfg.UploadKbps) * factor)
		if adv == 0 {
			adv = 1
		}
		if !silent {
			n.SetAdvertisedKbps(adv)
		}
		n.udp.SetUploadBps(int64(adv) * 1000)
	}
	elapsed := time.Since(cfg.Epoch)
	latestPast := -1
	for i, step := range capSteps {
		if step.At <= elapsed && (latestPast < 0 || step.At >= capSteps[latestPast].At) {
			latestPast = i
		}
	}
	if latestPast >= 0 {
		applyStep(capSteps[latestPast].Factor, capSteps[latestPast].silent)
	}
	for _, step := range capSteps {
		if step.At <= elapsed {
			continue
		}
		factor, silent := step.Factor, step.silent
		n.capTimers = append(n.capTimers, time.AfterFunc(step.At-elapsed, func() {
			applyStep(factor, silent)
		}))
	}
	return n, nil
}

// Addr returns the node's bound UDP address.
func (n *Node) Addr() *net.UDPAddr { return n.udp.Addr() }

// AddPeer registers a peer that joined after startup. Safe to call while
// the node runs: the view mutation is serialized with protocol callbacks.
func (n *Node) AddPeer(id NodeID, addr *net.UDPAddr) {
	n.udp.AddPeer(id, addr)
	n.udp.Execute(func() { n.view.Add(id) })
}

// RemovePeer drops a peer (e.g., on failure notification).
func (n *Node) RemovePeer(id NodeID) {
	n.udp.Execute(func() { n.view.Remove(id) })
}

// Close shuts the node down.
func (n *Node) Close() {
	for _, t := range n.capTimers {
		t.Stop()
	}
	n.udp.Close()
}

// SetAdvertisedKbps rewrites the capability this node advertises to the
// aggregation protocol (capability re-measurement, netem traces). The upload
// throttle is unchanged — advertising is a claim, not a cap. No-op for
// standard-gossip nodes.
func (n *Node) SetAdvertisedKbps(kbps uint32) {
	n.capKbps.Store(kbps)
	n.udp.Execute(func() {
		if n.estimator != nil {
			n.estimator.SetSelfCapKbps(kbps)
		}
	})
}

// AdvertisedKbps returns the capability the node currently advertises.
// Truthful after Close, like the statistics accessors. With Adapt enabled
// it tracks the controller's effective estimate.
func (n *Node) AdvertisedKbps() uint32 { return n.capKbps.Load() }

// AdaptTrace returns the adaptation controller's re-advertisement history
// (nil without an Adapt config; bounded to the controller's most recent
// entries), serialized with protocol activity and — like the other
// statistics accessors — truthful after Close. Times are durations since
// the node's Epoch.
func (n *Node) AdaptTrace() []AdaptReadvertisement {
	var out []AdaptReadvertisement
	read := func() {
		if n.adapt != nil {
			out = append(out, n.adapt.Trace()...)
		}
	}
	if !n.udp.Execute(read) {
		// Node closed: no callback can mutate the controller anymore, so an
		// unserialized read is safe — the trace survives Close.
		read()
	}
	return out
}

// AdaptReadvertisements returns how many times the adaptation controller
// changed the advertised capability (0 without an Adapt config). Truthful
// after Close.
func (n *Node) AdaptReadvertisements() int {
	count := 0
	read := func() {
		if n.adapt != nil {
			count = n.adapt.Readvertisements()
		}
	}
	if !n.udp.Execute(read) {
		read()
	}
	return count
}

// SendQueueDropped returns how many outgoing datagrams were tail-dropped by
// the paced sender's bounded queue — the first symptom of this node trying
// to send past its upload capability.
func (n *Node) SendQueueDropped() int64 { return n.udp.SendDropped() }

// SendQueueBacklog returns how long the paced sender's queued bytes take to
// drain at the current rate — the live congestion signal (0 when idle or
// unthrottled). Safe to poll from any goroutine, like SendQueueDropped.
func (n *Node) SendQueueBacklog() time.Duration { return n.udp.SendBacklog() }

// QuarantinedPeers returns the peers this node's misbehavior detector
// currently holds quarantined, ascending (nil without a Misbehave config, or
// with an unarmed one). Truthful after Close, like the other statistics
// accessors.
func (n *Node) QuarantinedPeers() []NodeID {
	var out []NodeID
	read := func() {
		if n.detector != nil {
			out = n.detector.QuarantinedPeers()
		}
	}
	if !n.udp.Execute(read) {
		read()
	}
	return out
}

// MisbehaveEvidence returns the detector's contribution evidence for one
// peer (zero record and false without a Misbehave config or for a peer never
// observed). Truthful after Close.
func (n *Node) MisbehaveEvidence(peer NodeID) (MisbehaveEvidence, bool) {
	var (
		ev MisbehaveEvidence
		ok bool
	)
	read := func() {
		if n.detector != nil {
			ev, ok = n.detector.EvidenceOf(peer)
		}
	}
	if !n.udp.Execute(read) {
		read()
	}
	return ev, ok
}

// NetemCounters returns how many outbound datagrams this node's netem model
// dropped and delayed (zeros without a Netem config). Truthful after Close.
func (n *Node) NetemCounters() (dropped, delayed int) {
	return n.udp.NetemCounters()
}

// Stats returns the node's dissemination counters, serialized with protocol
// activity.
func (n *Node) Stats() EngineStats {
	var st EngineStats
	n.udp.Execute(func() { st = n.engine.Stats() })
	return st
}

// EstimateKbps returns the node's current estimate of the system-wide mean
// upload capability (HEAP only; 0 for standard gossip nodes).
func (n *Node) EstimateKbps() float64 {
	var est float64
	n.udp.Execute(func() {
		if n.estimator != nil {
			est = n.estimator.EstimateKbps()
		}
	})
	return est
}

// collectProtocol emits the serialized subsystems' samples (engine counters,
// capability estimate, adaptation controller, misbehavior detector) plus the
// advertised capability.
func (n *Node) collectProtocol(emit telemetry.EmitFunc) {
	emit("node_advertised_kbps", float64(n.capKbps.Load()))
	read := func() {
		n.engine.Collect(emit)
		if n.estimator != nil {
			emit("heap_bbar_kbps", n.estimator.EstimateKbps())
		}
		if n.adapt != nil {
			n.adapt.Collect(emit)
		}
		if n.detector != nil {
			n.detector.Collect(emit)
		}
	}
	if !n.udp.Execute(read) {
		read() // node closed: nothing mutates the subsystems anymore
	}
}

// Telemetry returns the node's metric registry — every subsystem's counters
// as one conservation-checkable snapshot (Registry.Snapshot), also the
// backing store for the introspection listener. Safe to scrape from any
// goroutine, truthful after Close.
func (n *Node) Telemetry() *TelemetryRegistry { return n.telemetry }

// StartTelemetry binds an introspection HTTP listener on addr serving
// Prometheus-text /metrics, /debug/pprof/*, /healthz (503 once the node is
// closed), and a /statusz JSON snapshot. Close the returned server when
// done; it is not stopped by Node.Close (post-shutdown scrapes stay
// truthful).
func (n *Node) StartTelemetry(addr string) (*TelemetryServer, error) {
	return telemetry.StartServer(telemetry.ServerConfig{
		Addr:     addr,
		Registry: n.telemetry,
		Healthy:  func() bool { return n.udp.Execute(func() {}) },
		Status: func() map[string]any {
			return map[string]any{
				"node":            int64(n.id),
				"addr":            n.Addr().String(),
				"advertised_kbps": n.capKbps.Load(),
			}
		},
	})
}

// SourceDone reports whether this node's stream (if any) finished.
func (n *Node) SourceDone() bool {
	done := false
	n.udp.Execute(func() { done = n.source != nil && n.source.Done })
	return done
}

func applySourceDefaults(sc *SourceConfig) {
	if sc.Geometry == (Geometry{}) {
		sc.Geometry = PaperGeometry()
	}
	if sc.StartDelay == 0 {
		sc.StartDelay = 2 * time.Second
	}
}

// OpenStream starts broadcasting an additional stream from this running
// node: the stream is registered with the dissemination engine (its rate
// joins the fanout-budget competition for the node's uplink) and a source
// begins publishing after cfg.StartDelay. The stream id must not collide
// with a stream the engine already carries (including a NodeConfig.Source
// stream). Receiving nodes need no configuration — they track new streams
// on first contact.
func (n *Node) OpenStream(id StreamID, cfg SourceConfig) (*StreamHandle, error) {
	cfg.Stream = id
	applySourceDefaults(&cfg)
	var (
		src    *stream.Source
		srcErr error
	)
	ok := n.udp.Execute(func() {
		src, srcErr = stream.NewSource(stream.SourceConfig{
			Stream:    cfg.Stream,
			Geometry:  cfg.Geometry,
			Windows:   cfg.Windows,
			StartAt:   cfg.StartDelay,
			Publisher: n.engine,
			// Sequential broadcasts on one node must not accumulate budget
			// weight: retire the stream when its production finishes.
			OnDone: func() { n.engine.RetireStream(id) },
		})
		if srcErr != nil {
			return
		}
		srcErr = n.engine.OpenStream(id, core.StreamConfig{
			ExpectedPackets: cfg.Geometry.TotalPackets(cfg.Windows),
			RateKbps:        float64(cfg.Geometry.EffectiveRateBps()) / 1000,
		})
	})
	if !ok {
		return nil, fmt.Errorf("heapgossip: node is closed")
	}
	if srcErr != nil {
		return nil, srcErr
	}
	if !n.udp.Attach(src) {
		return nil, fmt.Errorf("heapgossip: node is closed")
	}
	return &StreamHandle{node: n, id: id, src: src}, nil
}

package heapgossip

import (
	"fmt"
	"net"
	"time"

	"repro/internal/aggregation"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/membership"
	"repro/internal/stream"
	"repro/internal/udpnet"
	"repro/internal/wire"
)

// DeliverFunc receives every stream packet exactly once as it is delivered.
// lag is the time between the packet's publication (per its stamp) and its
// local delivery, assuming loosely synchronized clocks across nodes.
type DeliverFunc func(id PacketID, payload []byte, lag time.Duration)

// NodeConfig assembles one real-UDP HEAP node.
type NodeConfig struct {
	// ID is this node's identity; it must be unique within the deployment.
	ID NodeID
	// Listen is the UDP listen address (default "127.0.0.1:0").
	Listen string
	// UploadKbps is the node's advertised upload capability; it throttles
	// the socket (token bucket + queue) and feeds HEAP's aggregation.
	// Required.
	UploadKbps uint32
	// Adaptive enables HEAP; false runs standard fixed-fanout gossip.
	Adaptive bool
	// Fanout is fbar, the target average fanout (ln(n)+c). Default 7.
	Fanout float64
	// GossipPeriod is the propose batching period. Default 200 ms.
	GossipPeriod time.Duration
	// Peers maps every node id (including self) to its UDP address,
	// "host:port". More peers can join later via Node.AddPeer.
	Peers map[NodeID]string
	// OnDeliver, if non-nil, receives every delivered packet.
	OnDeliver DeliverFunc
	// Source, if non-nil, makes this node the stream broadcaster.
	Source *SourceConfig
	// Seed drives the node's protocol randomness (default: derived from ID).
	Seed int64
}

// SourceConfig describes the stream a source node produces.
type SourceConfig struct {
	// Geometry of the stream. Default PaperGeometry().
	Geometry Geometry
	// Windows is the stream length in FEC windows. Required.
	Windows int
	// StartDelay postpones the first packet (lets aggregation warm up).
	// Default 2 s.
	StartDelay time.Duration
}

// Node is a running HEAP node on a real UDP socket.
type Node struct {
	udp       *udpnet.Node
	engine    *core.Engine
	estimator *aggregation.Estimator
	view      *membership.View
	source    *stream.Source
}

// StartNode binds a socket, wires the protocol stack (dissemination engine,
// capability aggregation when Adaptive, optional stream source) and starts
// it. Close the returned node to shut down.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.UploadKbps == 0 {
		return nil, fmt.Errorf("heapgossip: UploadKbps is required")
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = 7
	}
	if cfg.GossipPeriod == 0 {
		cfg.GossipPeriod = 200 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.ID) + 1
	}

	peerIDs := make([]wire.NodeID, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		peerIDs = append(peerIDs, id)
	}
	view := membership.NewView(cfg.ID, peerIDs)

	n := &Node{view: view}
	mux := env.NewMux()

	engCfg := core.Config{
		Fanout:       cfg.Fanout,
		GossipPeriod: cfg.GossipPeriod,
		Sampler:      view,
	}
	if cfg.OnDeliver != nil {
		deliver := cfg.OnDeliver
		engCfg.OnDeliver = func(ev wire.Event, at time.Duration) {
			lag := at - time.Duration(ev.Stamp)
			if lag < 0 {
				lag = 0
			}
			deliver(ev.ID, ev.Payload, lag)
		}
	}
	if cfg.Adaptive {
		est := aggregation.NewEstimator(aggregation.Config{
			SelfCapKbps: cfg.UploadKbps,
			Sampler:     view,
		})
		n.estimator = est
		engCfg.Adaptive = true
		engCfg.Capabilities = est
		mux.Register(est, wire.KindAggregate)
	}
	eng, err := core.New(engCfg)
	if err != nil {
		return nil, err
	}
	n.engine = eng
	mux.Register(eng, wire.KindPropose, wire.KindRequest, wire.KindServe)

	if cfg.Source != nil {
		sc := *cfg.Source
		if sc.Geometry == (Geometry{}) {
			sc.Geometry = PaperGeometry()
		}
		if sc.StartDelay == 0 {
			sc.StartDelay = 2 * time.Second
		}
		src, err := stream.NewSource(stream.SourceConfig{
			Geometry:  sc.Geometry,
			Windows:   sc.Windows,
			StartAt:   sc.StartDelay,
			Publisher: eng,
		})
		if err != nil {
			return nil, err
		}
		n.source = src
		mux.Register(src)
	}

	udpNode, err := udpnet.NewNode(cfg.ID, mux, udpnet.Config{
		Listen:    cfg.Listen,
		UploadBps: int64(cfg.UploadKbps) * 1000,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	n.udp = udpNode

	peers := make(map[wire.NodeID]*net.UDPAddr, len(cfg.Peers))
	for id, addrStr := range cfg.Peers {
		addr, err := net.ResolveUDPAddr("udp", addrStr)
		if err != nil {
			udpNode.Close()
			return nil, fmt.Errorf("heapgossip: peer %d address %q: %w", id, addrStr, err)
		}
		peers[id] = addr
	}
	udpNode.SetPeers(peers)
	if err := udpNode.Start(); err != nil {
		udpNode.Close()
		return nil, err
	}
	return n, nil
}

// Addr returns the node's bound UDP address.
func (n *Node) Addr() *net.UDPAddr { return n.udp.Addr() }

// AddPeer registers a peer that joined after startup. Safe to call while
// the node runs: the view mutation is serialized with protocol callbacks.
func (n *Node) AddPeer(id NodeID, addr *net.UDPAddr) {
	n.udp.AddPeer(id, addr)
	n.udp.Execute(func() { n.view.Add(id) })
}

// RemovePeer drops a peer (e.g., on failure notification).
func (n *Node) RemovePeer(id NodeID) {
	n.udp.Execute(func() { n.view.Remove(id) })
}

// Close shuts the node down.
func (n *Node) Close() { n.udp.Close() }

// Stats returns the node's dissemination counters, serialized with protocol
// activity.
func (n *Node) Stats() EngineStats {
	var st EngineStats
	n.udp.Execute(func() { st = n.engine.Stats() })
	return st
}

// EstimateKbps returns the node's current estimate of the system-wide mean
// upload capability (HEAP only; 0 for standard gossip nodes).
func (n *Node) EstimateKbps() float64 {
	var est float64
	n.udp.Execute(func() {
		if n.estimator != nil {
			est = n.estimator.EstimateKbps()
		}
	})
	return est
}

// SourceDone reports whether this node's stream (if any) finished.
func (n *Node) SourceDone() bool {
	done := false
	n.udp.Execute(func() { done = n.source != nil && n.source.Done })
	return done
}

# Development entry points. `make check` is the fast CI gate; `make test`
# adds the full-scale experiments (the ~1 min TestFullScaleHeadline).

GO ?= go

.PHONY: check vet build test-short test bench sweep fmt

check: vet build test-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

# One iteration of every paper-figure benchmark (reduced scale).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# The paper's headline grid on all cores, CSV into out/.
sweep:
	$(GO) run ./cmd/heapsweep -csv out/

fmt:
	gofmt -l -w .

# Development entry points. `make check` is the CI gate: vet, the docs
# link-checker, the race detector over the short suite, and the plain short
# suite. `make test` adds the full-scale experiments (the ~1 min
# TestFullScaleHeadline); `make full` chains everything and briefly runs the
# wire-codec fuzzers.

GO ?= go

.PHONY: check fmtcheck vet build linkcheck race race-detect test-short testshort test bench bench-json bench-udp bench-telemetry sweep largescale fuzz full fmt

check: fmtcheck vet build linkcheck race race-detect testshort

# gofmt gate: fail (and list the offenders) if any file is unformatted.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Every relative link in README/EXPERIMENTS/ROADMAP/docs must resolve.
linkcheck:
	$(GO) test -run '^TestDocsRelativeLinks$$' .

# Race-detect the short suite: the sweep engine is the only concurrent code,
# but pooled-event regressions would also surface here first.
race:
	$(GO) test -race -short ./...

# Full (not -short) race pass over the detection and adaptation loops plus
# the paced sender they poll: the misbehavior oracle/property suite, the
# adapt controller, and the ratelimit concurrency regressions run with their
# complete iteration counts under the race detector. The simnet cross-shard
# exchange storm and the shard-count determinism oracles run here too — the
# sharded event loop is the one place simulation results depend on goroutine
# discipline — plus the cluster-sampler storm (concurrent split draws against
# the brute-force oracle).
race-detect:
	$(GO) test -race ./internal/misbehave ./internal/adapt ./internal/ratelimit
	$(GO) test -race -run 'TestCrossShardExchangeRace|TestHeapCancelRescheduleStorm' ./internal/simnet
	$(GO) test -race -run 'TestClusterSamplerStorm' ./internal/membership
	$(GO) test -race -run 'TestDeterminismShardCounts|TestDeterminismTopologyShardCounts' ./internal/scenario

test-short: testshort
testshort:
	$(GO) test -short ./...

test:
	$(GO) test ./...

# One iteration of every paper-figure benchmark (reduced scale).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Simulator-scale benchmarks as a machine-readable artifact: the headline
# hot path and the LargeScale family (including the sharded 100k/1M runs;
# -short keeps the 1M cell at CI scale) parsed into BENCH_simnet.json.
bench-json:
	$(GO) test -short -bench 'Headline$$|LargeScale' -benchtime 1x -timeout 60m -run '^$$' . \
		| $(GO) run ./cmd/benchjson -o BENCH_simnet.json
	@echo wrote BENCH_simnet.json

# The UDP fast-path saturation benchmark: loopback pps and allocs/datagram,
# batched syscalls (sendmmsg/recvmmsg) vs the portable single-syscall path.
bench-udp:
	$(GO) test -bench 'UDPLoopbackSaturation' -benchtime 2s -run '^$$' ./internal/udpnet

# The telemetry overhead benchmark: the disabled variant must stay within
# noise of BenchmarkHeadline (the Trace hook is a nil-interface check), the
# traced variant prices every-4th-packet hop recording.
bench-telemetry:
	$(GO) test -bench 'TelemetryOverhead' -benchtime 3x -run '^$$' .

# The paper's headline grid on all cores, CSV into out/.
sweep:
	$(GO) run ./cmd/heapsweep -csv out/

# The LargeScale family (1k/5k nodes, flash crowds, churn bursts).
largescale:
	$(GO) run ./cmd/heapsweep -largescale -csv out/largescale/

# Brief fuzzing of the wire codec and the topology-config decoder (one
# target per invocation is a Go toolchain constraint). The wire corpora cover
# both the legacy single-stream encodings and the stream-id-tagged
# multi-stream forms; the topo target drives Validate/Build agreement and
# rebuild stability over arbitrary config bytes.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzRoundTrip$$' -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzTopologyConfig$$' -fuzztime 10s ./internal/topo

full: check test fuzz

fmt:
	gofmt -l -w .

// Multisource example: four broadcasters stream simultaneously through one
// HEAP deployment at paper scale (ms-691, 270 nodes). The aggregate stream
// rate (4 x 600 kbps effective) is ~3.5x the mean upload capability, so the
// four streams genuinely compete for every node's uplink: the fanout-budget
// allocator divides each node's capability across the streams (weighted by
// stream rate), keeping every node's aggregate send rate within its
// UploadKbps while degrading all four streams uniformly instead of letting
// queues collapse.
//
// The report prints one row per stream (source node, start, p50/p90 lag to
// 99% delivery, jitter-free share) plus the budget evidence: maximum upload
// utilization and maximum uplink backlog across the run.
//
// Run with: go run ./examples/multisource
package main

import (
	"fmt"
	"log"
	"time"

	heapgossip "repro"
)

func main() {
	cfg := heapgossip.Scenario{
		Nodes:    270,
		Protocol: heapgossip.HEAP,
		Dist:     heapgossip.MS691,
		Seed:     11,
		Windows:  6, // ~11.6 s per stream
		Streams: []heapgossip.StreamSpec{
			{}, // stream 0 from node 0, starting at StreamStart (5 s)
			{Start: 6 * time.Second},
			{Start: 7 * time.Second},
			{Start: 8 * time.Second},
		},
		Drain:              45 * time.Second,
		BacklogProbePeriod: time.Second,
	}

	fmt.Println("Running 4 concurrent broadcasters over 270 ms-691 nodes...")
	res, err := heapgossip.RunScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-7s %-7s %-7s %10s %10s %8s %10s %10s\n",
		"stream", "source", "start", "p50lag(s)", "p90lag(s)", "never%", "deliver%", "jf@20s")
	for _, s := range res.StreamSummaries(20 * time.Second) {
		fmt.Printf("%-7d %-7d %-7s %10.1f %10.1f %7.0f%% %9.1f%% %9.1f%%\n",
			s.Spec.ID, s.Spec.Source, s.Spec.Start,
			s.LagP50, s.LagP90, 100*s.NeverFrac, 100*s.DeliveryMean, 100*s.JFMean)
	}

	maxUsage, maxBacklog := 0.0, 0.0
	for _, u := range res.Usage {
		if u > maxUsage {
			maxUsage = u
		}
	}
	for _, b := range res.BacklogSamples {
		if b.Max > maxBacklog {
			maxBacklog = b.Max
		}
	}
	fmt.Printf("\nbudget: max upload utilization %.0f%% (allocator headroom caps serve traffic at 80%%),"+
		" max uplink backlog %.1fs\n", 100*maxUsage, maxBacklog)
	fmt.Println("every node's aggregate send rate stayed within its advertised UploadKbps")
}

// Sweep example: run the paper's central comparison — standard gossip vs.
// HEAP on two capability distributions — as one parallel scenario sweep
// instead of four serial runs, then print the per-cell summary table.
//
// The sweep engine derives every run's seed from its grid position, so the
// numbers below are identical no matter how many workers execute them
// (try it: set Workers to 1).
//
// Run with: go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	heapgossip "repro"
)

func main() {
	sweep := heapgossip.Sweep{
		Base: heapgossip.Scenario{
			Nodes:       120,
			Windows:     10, // ~19 s of stream, scaled down from the paper's 180 s
			StreamStart: 5 * time.Second,
			Drain:       30 * time.Second,
		},
		Protocols:  []heapgossip.Protocol{heapgossip.StandardGossip, heapgossip.HEAP},
		Dists:      []heapgossip.Distribution{heapgossip.Ref691, heapgossip.MS691},
		Replicas:   2, // two seeds per cell; summaries pool both runs
		BaseSeed:   1,
		SummaryLag: 10 * time.Second,
	}

	fmt.Println("Sweeping 2 protocols x 2 distributions x 2 seeds (8 runs)...")
	res, err := heapgossip.RunSweep(sweep)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("done in %.1fs on %d worker(s); the runs alone sum to %.1fs\n\n",
		res.Elapsed.Seconds(), res.Workers, totalRunTime(res).Seconds())
	fmt.Print(res.Table().Render())

	fmt.Println()
	fmt.Println("HEAP holds its stream quality on the skewed ms-691 distribution")
	fmt.Println("where standard gossip collapses — the paper's headline result.")

	// The aggregated summary is reproducible byte-for-byte: write the CSV
	// yourself and diff it against a workers=1 rerun.
	fmt.Println()
	if err := res.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func totalRunTime(res *heapgossip.SweepResult) time.Duration {
	var sum time.Duration
	for i := range res.Cells {
		sum += res.Cells[i].Summary.Elapsed
	}
	return sum
}

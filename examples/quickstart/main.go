// Quickstart: compare HEAP against standard gossip on the paper's most
// skewed bandwidth distribution (ms-691) in a scaled-down simulated run,
// and print the stream quality both protocols achieve.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	heapgossip "repro"
)

func main() {
	lag := 10 * time.Second
	fmt.Println("Streaming 600 kbps to 180 nodes where 85% have only 512 kbps upload...")
	fmt.Println()

	for _, protocol := range []heapgossip.Protocol{heapgossip.StandardGossip, heapgossip.HEAP} {
		res, err := heapgossip.RunScenario(heapgossip.Scenario{
			Nodes:    180,
			Protocol: protocol,
			Dist:     heapgossip.MS691, // 5% @3Mbps, 10% @1Mbps, 85% @512kbps
			Windows:  15,               // ~29 s of stream
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Average fraction of FEC windows viewable at a 10 s playback lag.
		var jitterFree float64
		nodes := 0
		for i := range res.Run.Nodes {
			n := &res.Run.Nodes[i]
			if n.Excluded {
				continue
			}
			jitterFree += res.Run.JitterFreeShare(n, lag)
			nodes++
		}
		jitterFree /= float64(nodes)

		fmt.Printf("%-16s jitter-free windows @%v lag: %5.1f%%\n",
			protocol, lag, 100*jitterFree)
	}

	fmt.Println()
	fmt.Println("HEAP lets the few high-capacity nodes carry a proportional share of")
	fmt.Println("the dissemination (fanout ∝ capability), so the 512 kbps majority is")
	fmt.Println("never pushed past its upload capacity.")
}

// Streaming: the paper's headline experiment (Figures 3-9 in miniature) —
// stream video over gossip to a bandwidth-constrained, heterogeneous
// network and compare HEAP with standard gossip on stream lag, quality and
// per-class bandwidth usage.
//
// Run with: go run ./examples/streaming [-nodes 180] [-windows 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	heapgossip "repro"
	"repro/internal/metrics"
)

func main() {
	nodes := flag.Int("nodes", 180, "system size")
	windows := flag.Int("windows", 20, "stream length in ~1.93s FEC windows")
	seed := flag.Int64("seed", 7, "run seed")
	flag.Parse()

	results := map[heapgossip.Protocol]*heapgossip.ScenarioResult{}
	for _, protocol := range []heapgossip.Protocol{heapgossip.StandardGossip, heapgossip.HEAP} {
		fmt.Printf("running %s on ms-691 (%d nodes, %d windows)...\n", protocol, *nodes, *windows)
		res, err := heapgossip.RunScenario(heapgossip.Scenario{
			Nodes:    *nodes,
			Protocol: protocol,
			Dist:     heapgossip.MS691,
			Windows:  *windows,
			Seed:     *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		results[protocol] = res
	}
	fmt.Println()

	// Per-class bandwidth usage (the Figure 4 view).
	usage := &metrics.Table{Headers: []string{"class", "standard usage", "HEAP usage"}}
	std, heap := results[heapgossip.StandardGossip], results[heapgossip.HEAP]
	for _, class := range std.Run.Classes() {
		usage.AddRow(class,
			fmt.Sprintf("%.1f%%", 100*meanUsageByClass(std, class)),
			fmt.Sprintf("%.1f%%", 100*meanUsageByClass(heap, class)))
	}
	fmt.Println("Average upload utilization by capability class:")
	fmt.Println(usage.Render())

	// Stream lag CDF (the Figures 3/9 view).
	plot := metrics.Plot{
		Title:  "Stream lag to receive 99% of the stream (CDF over nodes)",
		XLabel: "lag (s)", YLabel: "% of nodes",
		XMax: 40, YMax: 100,
	}
	for proto, res := range results {
		lags := res.Run.PerNode(func(n *heapgossip.NodeRecord) float64 {
			return heapgossip.Seconds(res.Run.LagForDeliveryRatio(n, 0.99))
		})
		plot.Add(string(proto), metrics.CDFSeries(lags))
	}
	fmt.Println(plot.Render())

	// Quality at a 10s playback lag (the Figures 5-6 view).
	lag := 10 * time.Second
	quality := &metrics.Table{Headers: []string{"class", "standard jitter-free", "HEAP jitter-free"}}
	stdJF := std.Run.ClassMeans(func(n *heapgossip.NodeRecord) float64 {
		return std.Run.JitterFreeShare(n, lag)
	})
	heapJF := heap.Run.ClassMeans(func(n *heapgossip.NodeRecord) float64 {
		return heap.Run.JitterFreeShare(n, lag)
	})
	for _, class := range std.Run.Classes() {
		quality.AddRow(class,
			fmt.Sprintf("%.1f%%", 100*stdJF[class]),
			fmt.Sprintf("%.1f%%", 100*heapJF[class]))
	}
	fmt.Printf("Jitter-free windows at %v playback lag:\n", lag)
	fmt.Println(quality.Render())
}

func meanUsageByClass(res *heapgossip.ScenarioResult, class string) float64 {
	var sum float64
	var n int
	for i := 1; i < len(res.CapsKbps); i++ {
		if res.Config.Dist.ClassOf(res.CapsKbps[i]) == class {
			sum += res.Usage[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Adverse-network example: the paper evaluates gossip on a nearly ideal
// network (independent 0.1% loss, stable latencies). This example runs the
// same HEAP-vs-standard comparison on hostile ground instead — bursty
// Gilbert-Elliott loss, a partition that cuts off a quarter of the system
// mid-stream and heals, and capability traces that silently degrade nodes —
// using the stock profiles of internal/netem as a sweep variant axis.
//
// The same profile data drives the real-UDP runtime: pass it as
// NodeConfig.Netem (or `heapnode -netem bursty`) and identical models rule
// on real datagrams.
//
// Run with: go run ./examples/adverse
package main

import (
	"fmt"
	"log"
	"time"

	heapgossip "repro"
)

func main() {
	adverse, err := heapgossip.AdverseVariants("bursty", "partition", "captrace")
	if err != nil {
		log.Fatal(err)
	}
	variants := append([]heapgossip.Variant{{Name: "baseline"}}, adverse...)

	sweep := heapgossip.Sweep{
		Base: heapgossip.Scenario{
			Nodes:       120,
			Dist:        heapgossip.MS691,
			Windows:     10, // ~19 s of stream, scaled down from the paper's 180 s
			StreamStart: 5 * time.Second,
			Drain:       30 * time.Second,
		},
		Protocols:  []heapgossip.Protocol{heapgossip.StandardGossip, heapgossip.HEAP},
		Variants:   variants,
		BaseSeed:   1,
		SummaryLag: 10 * time.Second,
	}

	fmt.Printf("Sweeping 2 protocols x %d network conditions (%d runs)...\n",
		len(variants), 2*len(variants))
	res, err := heapgossip.RunSweep(sweep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table().Render())

	fmt.Println()
	fmt.Println("Reading the table: bursty loss stretches everyone's lag tail;")
	fmt.Println("the partition shows up as nodes that never reach 99% delivery")
	fmt.Println("(packets aired behind the split are gone for good); capability")
	fmt.Println("traces hurt standard gossip's fixed fanout more than HEAP,")
	fmt.Println("which re-learns the degraded capabilities through aggregation")
	fmt.Println("and shifts serving load back onto healthy nodes.")

	// Single runs expose the per-model accounting directly.
	profile, err := heapgossip.NetemProfile("mixed")
	if err != nil {
		log.Fatal(err)
	}
	single, err := heapgossip.RunScenario(heapgossip.Scenario{
		Nodes:    120,
		Protocol: heapgossip.HEAP,
		Dist:     heapgossip.MS691,
		Windows:  10,
		Seed:     1,
		Netem:    &profile,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("netem accounting of one HEAP run under the 'mixed' profile:")
	for _, st := range single.NetemStats {
		fmt.Printf("  %-16s judged=%-7d dropped=%-6d delayed=%d\n",
			st.Name, st.Judged, st.Drops, st.Delayed)
	}
}

// Churn: the paper's catastrophic-failure experiment (Figure 10) — half the
// nodes crash one minute into the stream, survivors learn of each failure
// after ~10 s on average, and HEAP keeps delivering while standard gossip
// struggles.
//
// Run with: go run ./examples/churn [-fraction 0.5]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	heapgossip "repro"
	"repro/internal/metrics"
)

func main() {
	fraction := flag.Float64("fraction", 0.5, "fraction of nodes to crash")
	nodes := flag.Int("nodes", 150, "system size")
	windows := flag.Int("windows", 60, "stream length in ~1.93s FEC windows")
	flag.Parse()

	plot := metrics.Plot{
		Title: fmt.Sprintf("Failure of %.0f%% of the nodes at t=60s (ref-691)",
			*fraction*100),
		XLabel: "stream time (s)", YLabel: "% of nodes decoding each window",
		YMax: 100,
	}

	type curve struct {
		protocol heapgossip.Protocol
		lag      time.Duration
	}
	for _, c := range []curve{
		{heapgossip.HEAP, 12 * time.Second},
		{heapgossip.StandardGossip, 20 * time.Second},
	} {
		fmt.Printf("running %s...\n", c.protocol)
		res, err := heapgossip.RunScenario(heapgossip.Scenario{
			Nodes:    *nodes,
			Protocol: c.protocol,
			Dist:     heapgossip.Ref691,
			Windows:  *windows,
			Churn: &heapgossip.Catastrophic{
				At:         65 * time.Second, // stream starts at t=5s
				Fraction:   *fraction,
				NotifyMean: 10 * time.Second,
			},
			Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		coverage := res.Run.PerWindowCoverage(c.lag)
		windowSecs := res.Config.Geometry.WindowDuration().Seconds()
		points := make([]metrics.Point, len(coverage))
		for w, v := range coverage {
			points[w] = metrics.Point{X: float64(w) * windowSecs, Y: 100 * v}
		}
		plot.Add(fmt.Sprintf("%s @%ds lag", c.protocol, int(c.lag.Seconds())), points)
		fmt.Printf("  %d nodes crashed; last-window coverage at %v lag: %.0f%%\n",
			len(res.Victims), c.lag, 100*coverage[len(coverage)-1])
	}
	fmt.Println()
	fmt.Println(plot.Render())
	fmt.Println("The dip at t=60s is packets that crashed nodes had received but not")
	fmt.Println("yet forwarded; coverage recovers to the survivor fraction within a")
	fmt.Println("couple of windows because gossip needs no repair protocol.")
}

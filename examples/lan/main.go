// LAN: run a real HEAP deployment on loopback UDP sockets — one source and
// a handful of peers with heterogeneous (throttled) upload capacities —
// and watch the stream arrive. This exercises the exact protocol code the
// simulator runs, over real sockets with real timers.
//
// Run with: go run ./examples/lan
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	heapgossip "repro"
)

func main() {
	const peers = 10
	geometry := heapgossip.Geometry{
		RateBps:         400_000, // scaled-down stream so the demo lasts seconds
		PacketBytes:     1000,
		DataPerWindow:   20,
		ParityPerWindow: 3,
	}
	const windows = 6

	// Heterogeneous capabilities: two rich peers, the rest modest.
	caps := make([]uint32, peers)
	for i := range caps {
		caps[i] = 600
		if i != 0 && i <= 2 {
			caps[i] = 4000
		}
	}
	caps[0] = 10_000 // the source is well provisioned

	var mu sync.Mutex
	received := make([]int, peers)
	var lagSum time.Duration
	var lagN int

	// Start everyone on ephemeral loopback ports, then exchange addresses.
	nodes := make([]*heapgossip.Node, peers)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	for i := 0; i < peers; i++ {
		i := i
		cfg := heapgossip.NodeConfig{
			ID:           heapgossip.NodeID(i),
			UploadKbps:   caps[i],
			Adaptive:     true,
			Fanout:       5,
			GossipPeriod: 50 * time.Millisecond,
			OnDeliver: func(_ heapgossip.StreamID, _ heapgossip.PacketID, _ []byte, lag time.Duration) {
				mu.Lock()
				received[i]++
				lagSum += lag
				lagN++
				mu.Unlock()
			},
		}
		if i == 0 {
			cfg.Source = &heapgossip.SourceConfig{
				Geometry:   geometry,
				Windows:    windows,
				StartDelay: time.Second,
			}
		}
		n, err := heapgossip.StartNode(cfg)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = n
	}
	for i, n := range nodes {
		for j, m := range nodes {
			if i != j {
				n.AddPeer(heapgossip.NodeID(j), m.Addr())
			}
		}
	}
	fmt.Printf("%d nodes up on loopback; source streams %d windows of %d+%d packets\n\n",
		peers, windows, geometry.DataPerWindow, geometry.ParityPerWindow)

	total := geometry.TotalPackets(windows)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(time.Second)
		mu.Lock()
		sum := 0
		for i := 1; i < peers; i++ {
			sum += received[i]
		}
		meanLag := time.Duration(0)
		if lagN > 0 {
			meanLag = lagSum / time.Duration(lagN)
		}
		mu.Unlock()
		fmt.Printf("delivered %4d / %4d packets across peers (mean lag %v, bbar est. %.0f kbps)\n",
			sum, (peers-1)*total, meanLag.Round(time.Millisecond), nodes[1].EstimateKbps())
		if sum >= (peers-1)*total*97/100 {
			break
		}
	}
	fmt.Println("\nper-peer delivery:")
	mu.Lock()
	for i := 1; i < peers; i++ {
		fmt.Printf("  node %2d (cap %4d kbps): %d/%d\n", i, caps[i], received[i], total)
	}
	mu.Unlock()
}

// Player: connect stream lag to what a viewer actually experiences. For a
// range of player startup delays, report how often playback stalls
// (rebuffers) under standard gossip vs HEAP on a constrained network.
//
// Run with: go run ./examples/player
package main

import (
	"fmt"
	"log"
	"time"

	heapgossip "repro"
	"repro/internal/metrics"
)

func main() {
	startups := []time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second, 20 * time.Second}

	for _, protocol := range []heapgossip.Protocol{heapgossip.StandardGossip, heapgossip.HEAP} {
		fmt.Printf("running %s on ms-691...\n", protocol)
		res, err := heapgossip.RunScenario(heapgossip.Scenario{
			Nodes:    180,
			Protocol: protocol,
			Dist:     heapgossip.MS691,
			Windows:  15,
			Seed:     9,
		})
		if err != nil {
			log.Fatal(err)
		}
		tbl := &metrics.Table{Headers: []string{"startup delay",
			"smooth viewers", "mean stalls", "mean rebuffer time", "mean final lag"}}
		for _, startup := range startups {
			var smooth, stalls int
			var stallTime, finalLag time.Duration
			var viewers int
			for i := range res.Run.Nodes {
				n := &res.Run.Nodes[i]
				if n.Excluded {
					continue
				}
				rep := res.Run.Playback(n, startup)
				viewers++
				if rep.Stalls == 0 && rep.SkippedWindows == 0 {
					smooth++
				}
				stalls += rep.Stalls
				stallTime += rep.StallTime
				finalLag += rep.FinalLag
			}
			tbl.AddRow(
				startup.String(),
				fmt.Sprintf("%.0f%%", 100*float64(smooth)/float64(viewers)),
				fmt.Sprintf("%.1f", float64(stalls)/float64(viewers)),
				(stallTime / time.Duration(viewers)).Round(10*time.Millisecond).String(),
				(finalLag / time.Duration(viewers)).Round(10*time.Millisecond).String(),
			)
		}
		fmt.Println(tbl.Render())
	}
	fmt.Println("A viewer who waits long enough before pressing play never rebuffers;")
	fmt.Println("HEAP shrinks that wait from tens of seconds to a few.")
}

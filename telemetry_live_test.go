package heapgossip

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTelemetryLiveScrape runs a small dissemination session over real UDP
// sockets with one node serving its introspection endpoints, then scrapes
// /metrics and asserts the paced sender's conservation invariant from the
// Prometheus text alone: after Close every byte the transport accepted was
// either put on the wire or discarded, and the queue drained to zero.
func TestTelemetryLiveScrape(t *testing.T) {
	const nodes = 5
	geom := Geometry{RateBps: 400_000, PacketBytes: 200, DataPerWindow: 6, ParityPerWindow: 2}
	const windows = 2

	started := make([]*Node, 0, nodes)
	defer func() {
		for _, n := range started {
			n.Close()
		}
	}()

	var mu sync.Mutex
	received := make(map[NodeID]int, nodes)

	for i := 0; i < nodes; i++ {
		id := NodeID(i)
		cfg := NodeConfig{
			ID:           id,
			UploadKbps:   5000,
			Adaptive:     true,
			Fanout:       4,
			GossipPeriod: 30 * time.Millisecond,
			OnDeliver: func(StreamID, PacketID, []byte, time.Duration) {
				mu.Lock()
				received[id]++
				mu.Unlock()
			},
		}
		if i == 0 {
			cfg.Source = &SourceConfig{
				Geometry:   geom,
				Windows:    windows,
				StartDelay: 300 * time.Millisecond,
			}
		}
		n, err := StartNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		started = append(started, n)
	}
	for i, n := range started {
		for j, peer := range started {
			if i != j {
				n.AddPeer(NodeID(j), peer.Addr())
			}
		}
	}

	// Node 1 (a relay, so its paced sender carries serve traffic) exposes the
	// introspection endpoints on an ephemeral port.
	srv, err := started[1].StartTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	total := geom.TotalPackets(windows)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		sum := 0
		for id, c := range received {
			if id != 0 {
				sum += c
			}
		}
		mu.Unlock()
		if sum >= (nodes-1)*total*90/100 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A live scrape must succeed while the node is running.
	if code, body := httpGet(t, srv.Addr(), "/metrics"); code != 200 ||
		!strings.Contains(body, "udp_accepted_bytes_total") {
		t.Fatalf("live /metrics = %d:\n%s", code, body)
	}
	if code, _ := httpGet(t, srv.Addr(), "/healthz"); code != 200 {
		t.Fatalf("live /healthz = %d, want 200", code)
	}

	// Close every node: the paced senders drain and the books freeze, so the
	// conservation identity must hold exactly — not approximately — in the
	// post-Close scrape. The telemetry server outlives Node.Close by design.
	for _, n := range started {
		n.Close()
	}
	started = started[:0]

	_, body := httpGet(t, srv.Addr(), "/metrics")
	vals := parsePromText(t, body)
	need := func(name string) float64 {
		v, ok := vals[name]
		if !ok {
			t.Fatalf("metric %q missing from scrape:\n%s", name, body)
		}
		return v
	}
	accepted := need("udp_accepted_bytes_total")
	sent := need("udp_sent_bytes_total")
	discarded := need("udp_discarded_bytes_total")
	if accepted == 0 {
		t.Fatal("relay node accepted no bytes — no traffic flowed")
	}
	if accepted != sent+discarded {
		t.Fatalf("conservation violated: accepted %v != sent %v + discarded %v",
			accepted, sent, discarded)
	}
	if q := need("udp_queued_bytes"); q != 0 {
		t.Fatalf("queued bytes after Close = %v, want 0", q)
	}
	if d := need("udp_decode_errors_total"); d != 0 {
		t.Fatalf("decode errors = %v, want 0", d)
	}
	if need("engine_events_delivered_total") == 0 {
		t.Fatal("engine delivered nothing")
	}

	// After Close the liveness probe must fail …
	if code, _ := httpGet(t, srv.Addr(), "/healthz"); code != 503 {
		t.Fatalf("post-Close /healthz = %d, want 503", code)
	}
	// … but /statusz still reports the node's identity and metrics.
	code, body := httpGet(t, srv.Addr(), "/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	var status struct {
		Node    int                `json:"node"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("statusz JSON: %v\n%s", err, body)
	}
	if status.Node != 1 {
		t.Fatalf("statusz node = %d, want 1", status.Node)
	}
	if status.Metrics["udp_accepted_bytes_total"] != accepted {
		t.Fatalf("statusz metrics disagree with /metrics: %v vs %v",
			status.Metrics["udp_accepted_bytes_total"], accepted)
	}
}

func httpGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// parsePromText parses the "name value" subset of the Prometheus text format
// the registry emits (histogram buckets appear as name_bucket{le="x"}).
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[fields[0]] = v
	}
	return out
}

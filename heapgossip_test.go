package heapgossip

import (
	"sync"
	"testing"
	"time"
)

func TestRunScenarioThroughPublicAPI(t *testing.T) {
	geom := PaperGeometry()
	geom.DataPerWindow = 20
	geom.ParityPerWindow = 2
	res, err := RunScenario(Scenario{
		Nodes:         40,
		Protocol:      HEAP,
		Dist:          Ref691,
		Windows:       5,
		Geometry:      geom,
		Seed:          1,
		StreamStart:   2 * time.Second,
		Drain:         20 * time.Second,
		Unconstrained: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	share := res.Run.JitterFreeShare(&res.Run.Nodes[1], Never)
	if share <= 0 {
		t.Fatalf("node 1 decoded no windows (share=%v)", share)
	}
	if len(res.CapsKbps) != 40 {
		t.Fatalf("caps length %d", len(res.CapsKbps))
	}
}

func TestStartNodeValidation(t *testing.T) {
	if _, err := StartNode(NodeConfig{ID: 1}); err == nil {
		t.Fatal("missing UploadKbps accepted")
	}
	if _, err := StartNode(NodeConfig{ID: 1, UploadKbps: 1000,
		Peers: map[NodeID]string{2: "not-an-address"}}); err == nil {
		t.Fatal("bad peer address accepted")
	}
}

func TestUDPNodesStreamThroughPublicAPI(t *testing.T) {
	const nodes = 8
	geom := Geometry{RateBps: 500_000, PacketBytes: 200, DataPerWindow: 8, ParityPerWindow: 2}
	const windows = 3

	// Start nodes on ephemeral ports first, then distribute the directory.
	started := make([]*Node, 0, nodes)
	defer func() {
		for _, n := range started {
			n.Close()
		}
	}()

	var mu sync.Mutex
	received := make(map[NodeID]int, nodes)

	addrs := make(map[NodeID]string, nodes)
	for i := 0; i < nodes; i++ {
		id := NodeID(i)
		cfg := NodeConfig{
			ID:           id,
			UploadKbps:   5000,
			Adaptive:     true,
			Fanout:       4,
			GossipPeriod: 30 * time.Millisecond,
			OnDeliver: func(StreamID, PacketID, []byte, time.Duration) {
				mu.Lock()
				received[id]++
				mu.Unlock()
			},
		}
		if i == 0 {
			cfg.Source = &SourceConfig{
				Geometry:   geom,
				Windows:    windows,
				StartDelay: 500 * time.Millisecond,
			}
		}
		n, err := StartNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		started = append(started, n)
		addrs[id] = n.Addr().String()
	}
	// Late directory distribution: AddPeer after startup.
	for i, n := range started {
		for id, addr := range addrs {
			if id == NodeID(i) {
				continue
			}
			udpAddr := started[id].Addr()
			n.AddPeer(id, udpAddr)
			_ = addr
		}
	}

	total := geom.TotalPackets(windows) // 30 packets
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		sum := 0
		for id, c := range received {
			if id != 0 {
				sum += c
			}
		}
		mu.Unlock()
		if sum >= (nodes-1)*total*90/100 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	sum := 0
	for id, c := range received {
		if id != 0 {
			sum += c
		}
	}
	if sum < (nodes-1)*total*90/100 {
		t.Fatalf("system delivered %d of %d", sum, (nodes-1)*total)
	}
	if !started[0].SourceDone() {
		t.Fatal("source did not finish")
	}
	if est := started[1].EstimateKbps(); est <= 0 {
		t.Fatalf("HEAP node has no capability estimate: %v", est)
	}
}

// TestUDPMultiSourceStreams drives the multi-source public API over real
// sockets: node 0 broadcasts stream 0 via NodeConfig.Source, node 1 opens
// stream 1 mid-run with Node.OpenStream, and every other node must deliver
// both streams (tracking stream 1 lazily, with no configuration).
func TestUDPMultiSourceStreams(t *testing.T) {
	const nodes = 5
	geom := Geometry{RateBps: 400_000, PacketBytes: 200, DataPerWindow: 6, ParityPerWindow: 2}
	const windows = 2

	started := make([]*Node, 0, nodes)
	defer func() {
		for _, n := range started {
			n.Close()
		}
	}()

	var mu sync.Mutex
	perStream := make(map[StreamID]map[NodeID]int)

	for i := 0; i < nodes; i++ {
		id := NodeID(i)
		cfg := NodeConfig{
			ID:           id,
			UploadKbps:   5000,
			Adaptive:     true,
			Fanout:       3,
			GossipPeriod: 30 * time.Millisecond,
			OnDeliver: func(stream StreamID, _ PacketID, _ []byte, _ time.Duration) {
				mu.Lock()
				if perStream[stream] == nil {
					perStream[stream] = make(map[NodeID]int)
				}
				perStream[stream][id]++
				mu.Unlock()
			},
		}
		if i == 0 {
			cfg.Source = &SourceConfig{
				Geometry:   geom,
				Windows:    windows,
				StartDelay: 400 * time.Millisecond,
			}
		}
		n, err := StartNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		started = append(started, n)
	}
	for i, n := range started {
		for j, m := range started {
			if i != j {
				n.AddPeer(NodeID(j), m.Addr())
			}
		}
	}

	// Node 1 becomes the second broadcaster while the deployment runs.
	h, err := started[1].OpenStream(1, SourceConfig{
		Geometry:   geom,
		Windows:    windows,
		StartDelay: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != 1 {
		t.Fatalf("handle id = %d", h.ID())
	}
	// A colliding stream id must be rejected.
	if _, err := started[0].OpenStream(0, SourceConfig{Geometry: geom, Windows: 1}); err == nil {
		t.Fatal("OpenStream accepted the id of the NodeConfig.Source stream")
	}

	total := geom.TotalPackets(windows)
	want := func(stream StreamID, srcID NodeID) int {
		// Every non-broadcaster node should get ~all packets of the stream.
		return int(float64((nodes-1)*total) * 0.9)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		s0, s1 := 0, 0
		for nid, c := range perStream[0] {
			if nid != 0 {
				s0 += c
			}
		}
		for nid, c := range perStream[1] {
			if nid != 1 {
				s1 += c
			}
		}
		mu.Unlock()
		if s0 >= want(0, 0) && s1 >= want(1, 1) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, tc := range []struct {
		stream StreamID
		src    NodeID
	}{{0, 0}, {1, 1}} {
		sum := 0
		for nid, c := range perStream[tc.stream] {
			if nid != tc.src {
				sum += c
			}
		}
		if sum < want(tc.stream, tc.src) {
			t.Fatalf("stream %d delivered %d of %d across receivers", tc.stream, sum, (nodes-1)*total)
		}
	}
	if !h.Done() {
		t.Fatal("stream handle not done after full delivery")
	}
	if h.Published() != total {
		t.Fatalf("handle published %d of %d", h.Published(), total)
	}
}

func TestStandardUDPNodeBasics(t *testing.T) {
	// A standard (non-adaptive) node: no estimator, EstimateKbps reports 0.
	a, err := StartNode(NodeConfig{ID: 0, UploadKbps: 5000, Adaptive: false,
		GossipPeriod: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := StartNode(NodeConfig{ID: 1, UploadKbps: 5000, Adaptive: false,
		GossipPeriod: 50 * time.Millisecond,
		Peers:        map[NodeID]string{0: a.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(1, b.Addr())
	if est := a.EstimateKbps(); est != 0 {
		t.Fatalf("standard node estimate = %v, want 0", est)
	}
	if a.SourceDone() {
		t.Fatal("node without source reports SourceDone")
	}
	a.RemovePeer(1)
	a.AddPeer(1, b.Addr())
	st := a.Stats()
	if st.EventsDelivered != 0 {
		t.Fatalf("unexpected deliveries: %+v", st)
	}
}

func TestPublicAPISurface(t *testing.T) {
	// The facade re-exports the Table 1 distributions and geometry.
	if Ref691.Name() != "ref-691" || MS691.Name() != "ms-691" ||
		Ref724.Name() != "ref-724" || Uniform691.Name() != "uniform-691" {
		t.Fatal("distribution re-exports broken")
	}
	g := PaperGeometry()
	if g.DataPerWindow != 101 || g.ParityPerWindow != 9 {
		t.Fatalf("paper geometry = %+v", g)
	}
	if Seconds(Never) < 1e18 {
		t.Fatal("Seconds(Never) should be +Inf-ish")
	}
	if Seconds(2*time.Second) != 2 {
		t.Fatal("Seconds conversion broken")
	}
}

// TestUDPNodeMisbehaveDetector runs a small live-UDP deployment with the
// misbehavior detector armed on every non-source node: honest cooperating
// peers must never be quarantined (a zero-false-positive check over real
// socket timing), evidence must accumulate for the source, and the detector
// accessors must stay truthful after Close.
func TestUDPNodeMisbehaveDetector(t *testing.T) {
	const nodes = 5
	geom := Geometry{RateBps: 400_000, PacketBytes: 200, DataPerWindow: 6, ParityPerWindow: 2}
	const windows = 2

	started := make([]*Node, 0, nodes)
	defer func() {
		for _, n := range started {
			n.Close()
		}
	}()

	var mu sync.Mutex
	received := make(map[NodeID]int, nodes)

	for i := 0; i < nodes; i++ {
		id := NodeID(i)
		cfg := NodeConfig{
			ID:           id,
			UploadKbps:   5000,
			Adaptive:     true,
			Fanout:       4,
			GossipPeriod: 30 * time.Millisecond,
			OnDeliver: func(StreamID, PacketID, []byte, time.Duration) {
				mu.Lock()
				received[id]++
				mu.Unlock()
			},
		}
		if i == 0 {
			cfg.Source = &SourceConfig{
				Geometry:   geom,
				Windows:    windows,
				StartDelay: 500 * time.Millisecond,
			}
		} else {
			cfg.Misbehave = &MisbehaveConfig{Armed: true}
		}
		n, err := StartNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		started = append(started, n)
	}
	for i, n := range started {
		for j, peer := range started {
			if i != j {
				n.AddPeer(NodeID(j), peer.Addr())
			}
		}
	}

	total := geom.TotalPackets(windows)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		sum := 0
		for id, c := range received {
			if id != 0 {
				sum += c
			}
		}
		mu.Unlock()
		if sum >= (nodes-1)*total*90/100 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	sum := 0
	for id, c := range received {
		if id != 0 {
			sum += c
		}
	}
	mu.Unlock()
	if sum < (nodes-1)*total*90/100 {
		t.Fatalf("system delivered %d of %d with detectors armed", sum, (nodes-1)*total)
	}

	// All peers cooperated: an armed detector must hold nobody.
	for i := 1; i < nodes; i++ {
		if q := started[i].QuarantinedPeers(); len(q) != 0 {
			t.Fatalf("node %d quarantined honest peers %v", i, q)
		}
	}
	// The source proposed packets to everyone; at least one detector saw it.
	ev, ok := started[1].MisbehaveEvidence(0)
	if !ok {
		t.Fatal("node 1 collected no evidence about the source")
	}
	if ev.ProposesSeen == 0 && ev.ServedEvents == 0 {
		t.Fatalf("source evidence empty: %+v", ev)
	}
	// A node without a Misbehave config reports nothing, not garbage.
	if _, ok := started[0].MisbehaveEvidence(1); ok {
		t.Fatal("detector-less source returned evidence")
	}
	if started[0].QuarantinedPeers() != nil {
		t.Fatal("detector-less source returned a quarantine set")
	}
	if started[1].SendQueueBacklog() < 0 {
		t.Fatal("negative send-queue backlog")
	}

	// Accessors stay truthful after Close.
	started[1].Close()
	if q := started[1].QuarantinedPeers(); len(q) != 0 {
		t.Fatalf("post-Close quarantine set %v", q)
	}
	if _, ok := started[1].MisbehaveEvidence(0); !ok {
		t.Fatal("evidence lost after Close")
	}
}

package heapgossip

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsRelativeLinks is the docs link-checker `make check` runs: every
// relative link in the repo's markdown files must resolve to a file that
// exists, so the README / EXPERIMENTS / ARCHITECTURE cross-reference web
// cannot rot silently. External (http/https/mailto) links and pure anchors
// are out of scope.
func TestDocsRelativeLinks(t *testing.T) {
	docs := []string{
		"README.md",
		"EXPERIMENTS.md",
		"ROADMAP.md",
		filepath.Join("docs", "ARCHITECTURE.md"),
	}
	linkRe := regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip a trailing anchor: FILE.md#section checks FILE.md.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", doc, m[1], err)
			}
		}
	}
}

// Package heapgossip is a from-scratch Go implementation of HEAP, the
// HEterogeneity-Aware gossip Protocol of Frey, Guerraoui, Kermarrec, Monod,
// Koldehofe, Mogensen and Quéma (Middleware 2009), together with everything
// needed to reproduce the paper's evaluation: the standard three-phase
// gossip baseline, the gossip-based capability aggregation protocol, a
// systematic Reed-Solomon FEC codec, a streaming workload, a deterministic
// discrete-event network simulator standing in for the paper's PlanetLab
// testbed, and a real-UDP runtime that runs the identical protocol code on
// sockets.
//
// # The protocol in one paragraph
//
// Standard gossip dissemination pushes packet identifiers to f random peers
// per period ([Propose]), peers pull what they miss ([Request]), and
// payloads flow back ([Serve]); each node proposes each id exactly once
// (infect-and-die). Reliability needs only the *average* fanout to reach
// ln(n)+c, so HEAP lets every node scale its own fanout by its relative
// upload capability, f_i = fbar·b_i/bbar, where bbar is continuously
// estimated by gossiping the freshest capability values. Rich nodes then
// propose more, get pulled more, and carry a share of the stream
// proportional to their bandwidth, while the fanout average — and thus
// epidemic reliability — is preserved.
//
// # Package layout
//
//   - Simulation API (this package): Scenario, RunScenario, the Table 1
//     capability distributions, and the metric helpers used to regenerate
//     every figure and table of the paper. See EXPERIMENTS.md.
//   - Sweep API (this package): Sweep, RunSweep executes whole grids of
//     scenarios (protocol x distribution x nodes x fanout x churn x seed
//     replicas) on a bounded worker pool with deterministic per-run seeds,
//     aggregating per-cell summary statistics and merged lag CDFs.
//   - Deployment API (this package): StartNode runs a HEAP node (optionally
//     a stream source) on a real UDP socket.
//   - internal/core: the dissemination engine (Algorithms 1 and 2).
//   - internal/aggregation: capability aggregation and push-pull averaging.
//   - internal/adapt: congestion-driven capability re-estimation.
//   - internal/misbehave: adversarial node classes and the deterministic
//     misbehavior detector.
//   - internal/fec, internal/gf256: systematic Reed-Solomon erasure coding.
//   - internal/simnet: the discrete-event network simulator.
//   - internal/udpnet, internal/ratelimit: the real-UDP runtime with
//     application-level upload throttling. On Linux it batches syscalls
//     (sendmmsg/recvmmsg) behind the pacer; elsewhere a portable
//     one-syscall-per-datagram path delivers identically.
//   - internal/membership: full-view sampling and a Cyclon-style PSS.
//   - internal/telemetry: the metrics registry, dissemination tracer, and
//     introspection HTTP server (see "Observability" below).
//   - internal/stream, internal/metrics, internal/scenario, internal/churn:
//     workload, measurement, experiment assembly, failure injection.
//
// # Quick start
//
// Run a scaled-down version of the paper's headline experiment:
//
//	res, err := heapgossip.RunScenario(heapgossip.Scenario{
//	    Nodes:    180,
//	    Protocol: heapgossip.HEAP,
//	    Dist:     heapgossip.MS691,
//	    Windows:  15,
//	    Seed:     1,
//	})
//
// and inspect res.Run with the metrics helpers (JitterFreeShare,
// MinLagForJitterFree, ...). See examples/ for complete programs.
//
// # Sweeps
//
// Grids of scenarios run in parallel through RunSweep — every run's seed is
// derived from its grid position, so results are identical for any worker
// count:
//
//	sweep, err := heapgossip.RunSweep(heapgossip.Sweep{
//	    Base:      heapgossip.Scenario{Nodes: 180, Windows: 15},
//	    Protocols: []heapgossip.Protocol{heapgossip.StandardGossip, heapgossip.HEAP},
//	    Dists:     []heapgossip.Distribution{heapgossip.Ref691, heapgossip.MS691},
//	    Replicas:  3,
//	    BaseSeed:  1,
//	})
//	fmt.Print(sweep.Table().Render())
//
// Each of the four cells pools its three replicas into summary statistics
// (mean jitter-free share, merged lag CDF percentiles); cmd/heapsweep is
// the command-line front end, and EXPERIMENTS.md maps each paper artifact
// to the sweep that regenerates it.
//
// # Large-scale runs
//
// The paper stops at 270 nodes; the LargeScale family goes to 1k-20k with
// the dynamics that only exist at that scale — flash-crowd join waves
// (JoinWaves), correlated churn bursts (ChurnBursts), and a bimodal
// capability distribution (Bimodal700):
//
//	res, err := heapgossip.RunScenario(heapgossip.LargeScale(10000, 1))
//
// or the whole grid via LargeScaleSweep / `heapsweep -largescale`. See the
// "Large-N grid" section of EXPERIMENTS.md.
//
// # Multi-source streams
//
// Several broadcasters can stream simultaneously through one deployment.
// Each engine keeps per-stream dissemination state (pending/buffer tables,
// retransmission) over a single shared membership view and capability
// aggregation layer, and a fanout-budget allocator divides every node's
// upload capability across the active streams, weighted by stream rate, so
// aggregate sends never exceed the node's UploadKbps — several simultaneous
// broadcasters competing for one uplink is where HEAP's bandwidth
// accounting gets genuinely hard. In simulation, set Scenario.Streams to a
// list of StreamSpec (K sources, staggered starts); results then carry one
// measurement record per stream (ScenarioResult.StreamRuns) and per-stream
// lag summaries (StreamSummaries). Over real sockets, configure
// NodeConfig.Source with a Stream id, or open additional streams on a
// running node with Node.OpenStream; receivers track new streams on first
// contact with no configuration. Stream 0 encodes exactly as the legacy
// single-stream wire format, so multi-stream nodes interoperate with old
// ones on the default stream. See the "Multi-source streams" section of
// EXPERIMENTS.md and examples/multisource.
//
// # Adaptive capability re-estimation
//
// The paper assumes capabilities are "user-provided or measured at join
// time" and trusts them for the rest of the run — the degraded-node
// sensitivity study shows how a few percent of nodes silently delivering
// less than they advertise absorb the whole capability margin. internal/adapt
// closes that loop: a per-node controller observes real transmit pressure
// (uplink queue backlog, tail drops, achieved throughput over a sliding
// window) and re-advertises an effective capability with hysteresis —
// multiplicative decrease under sustained backlog (cutting straight to the
// measured throughput when that is lower), slow additive probing back up
// once the queue drains, always clamped to [floor, configured]. The adapted
// value feeds both HEAP's aggregation (fanout tracks the measured
// capability) and the multi-stream fanout-budget allocator. Enable it with
// Scenario.Adapt (simulation; results in ScenarioResult.AdaptStats with
// per-node re-advertisement traces), NodeConfig.Adapt (real sockets,
// `heapnode -adapt`), or `heapsweep -adapt`. The zero AdaptConfig selects
// the stock policy. The controller runs on the engine's existing gossip
// ticker, draws no randomness, and with Adapt unset the whole path is a
// single nil check, so the determinism guarantees below hold byte-for-byte
// either way. The netem profile "captrace-silent" is its natural sparring
// partner: traced nodes lose real capacity while their advertisement goes
// stale, and only the controller can discover the gap (`heapbench -artifact
// adapt` renders the on/off comparison).
//
// # Adversarial nodes and misbehavior detection
//
// HEAP also trusts peers to behave. internal/misbehave models the peers
// that don't — freeriders consume the stream but drop the Requests sent to
// them, capability liars over-advertise so HEAP routes them serve load
// they never carry, droppers swallow proposals — and the deterministic
// detector that answers them: per-peer contribution evidence collected on
// the engine's message paths feeds two conservative verdict rules (serve
// deficit; total unresponsiveness), and a convicted peer is dropped from
// gossip target draws, has its proposals ignored, and loses its vote in
// the capability average. Verdicts heal when contribution recovers.
// Configure adversaries and detection in simulation with Scenario.Adversary
// (AdversarySpec; results in ScenarioResult.AdversaryStats with per-class
// detection rates, the false-positive record, and an observer-coalition
// source-anonymity probe), sweep the honest/observe-only/armed A/B with
// AdversaryVariants or `heapsweep -adversary`, render the measured tables
// with `heapbench -artifact adversary`, and run the detector on a real
// socket with NodeConfig.Misbehave (`heapnode -detect`; inspect it via
// Node.QuarantinedPeers and Node.MisbehaveEvidence). The detector draws no
// randomness and evaluates on the engine's existing ticker, so adversarial
// runs keep every determinism guarantee below. See the "Adversarial nodes"
// section of EXPERIMENTS.md.
//
// # Adverse networks
//
// internal/netem turns the near-ideal default network hostile: a Netem
// profile describes Gilbert-Elliott bursty loss, scheduled partitions with
// heal, latency spikes/drift, asymmetric per-direction degradation, and
// capability traces that rewrite advertised upload capabilities mid-run.
// Profiles are data: the same value drives the simulator (Scenario.Netem),
// sweep grids (AdverseVariants, `heapsweep -netem`), and real sockets
// (NodeConfig.Netem, `heapnode -netem`), where identical models rule on
// every datagram a node sends — the simulator's transmit-time consultation
// point, reproduced on the wire. Model verdicts are deterministic functions of the
// run's seed, so adverse runs keep every reproducibility guarantee below;
// with Netem unset the plain loss path is untouched draw for draw.
// Per-model drop/delay counters land in ScenarioResult.NetemStats, and
// `heapbench -artifact robustness` renders the HEAP-vs-standard comparison
// under each stock profile.
//
// # Clustered topologies and hierarchical dissemination
//
// internal/topo embeds a run in a clustered WAN/LAN geometry instead of the
// paper's uniform pairwise-latency band. A Topology value declares the
// cluster count (optionally size-weighted), intra/inter-cluster latency
// bands, and jitter; set Scenario.Topology and the run's cluster assignment
// and every pair latency become pure hashes of the seed (no rng consumed, so
// sharded runs stay byte-identical). Netem partitions and spikes can target
// topology regions (PartitionSpec.Regions, RegionSpikes), cutting along real
// cluster boundaries, and ScenarioResult.TopoStats accounts the run's
// inter-cluster (WAN) bytes. Scenario.FanoutIntra/FanoutInter then split the
// gossip fanout budget by locality — cluster-biased peer selection with
// separate intra and inter draws, still scaled by HEAP's relative
// capability — to cut WAN traffic without hurting delivery.
// TopologyVariants (`heapsweep -topology wan3`) gives sweeps the
// topo-blind/topo-aware A/B on the same clustered network, and `heapbench
// -artifact topology` renders the WAN-bytes/stream-quality comparison; see
// the "Topology-aware dissemination" section of EXPERIMENTS.md. With
// Topology unset every path is untouched and results are byte-identical to
// pre-topology builds.
//
// # Observability
//
// internal/telemetry gives every subsystem one reporting surface. A
// lock-free Registry of named counters, gauges and histograms collects the
// transport pacer's byte accounting, the engine's message counters, the
// adaptation controller's capability state, and the detector's quarantine
// counts into a single conservation-checkable snapshot — after shutdown,
// udp_accepted_bytes_total equals udp_sent_bytes_total plus
// udp_discarded_bytes_total exactly. Supply a registry via
// NodeConfig.Telemetry to add application instruments to the same scrape
// (cmd/heapnode does), read it with Node.Telemetry, and serve it with
// Node.StartTelemetry: Prometheus text on /metrics, Go profiling on
// /debug/pprof/*, a liveness probe on /healthz, and a JSON snapshot on
// /statusz (`heapnode -http ADDR`; `heapnode -json` prints the snapshot
// per status tick).
//
// Dissemination tracing records the propose→request→serve path of sampled
// packets. Set Scenario.Trace (a TraceConfig) and every node records hop
// events — publish, first request, serve-path delivery — for the id-modulo
// sampled packet ids into a bounded ring; an offline join then reconstructs
// per-packet hop counts and per-hop latencies (ScenarioResult.TraceStats,
// exportable as JSONL). The engine hook is a nil-interface check (the
// core.Monitor pattern), so untraced runs are byte-identical to pre-trace
// builds, and the tracer itself draws no randomness: traced runs fingerprint
// deterministically and tracing provably never perturbs protocol results
// (TestDeterminismTrace*). `heapbench -artifact trace` renders hop-count and
// per-hop-latency distributions; see the "Observability" section of
// EXPERIMENTS.md for measured paper-scale tables and the overhead benchmark.
//
// # Capacity and determinism guarantees
//
// The simulator's hot path is allocation-free in steady state: events are
// pooled through a free list, timers are recycled slots behind
// generation-checked handles, canceled timers are removed from the indexed
// event heap rather than tombstoned, and the dissemination engine keeps its
// per-packet state in dense slice/bitset tables sized from the stream
// geometry. A 10,000-node HEAP run is routine on one core (minutes of wall
// clock, a few GB peak); the practical ceiling is memory for per-node
// receive records, roughly O(nodes × packets). Full-membership views cost
// O(n²) memory across the system, so past ~1k nodes use the Cyclon peer
// sampler (UsePSS, the LargeScale default).
//
// Determinism: a run is a pure function of its Config — one event loop,
// virtual time, per-node seeded rngs, (time, sequence)-ordered dispatch —
// and a sweep's per-run seeds are derived from grid position before
// scheduling, so results (including every CDF and exported CSV byte) are
// identical for any worker count and across repeated runs. The
// `go test -run Determinism ./...` layer enforces both properties, and
// property tests cross-check the pooled heap and dense tables against
// map-based oracles.
package heapgossip

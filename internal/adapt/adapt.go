// Package adapt implements congestion-driven capability re-estimation: the
// closed loop between a node's *observed* transmit pressure and the upload
// capability it advertises to HEAP's aggregation protocol.
//
// The paper assumes capabilities are "user-provided or measured at join
// time" (§2.2) and trusts them for the rest of the run. That trust is
// exactly what the degraded-node sensitivity study breaks: a node whose real
// capacity silently falls below its advertised value keeps attracting serve
// load proportional to its claim, its uplink queue grows without bound, and
// a few percent of such nodes absorb the whole capability margin. The
// controller here watches the symptoms the paper itself names (§3.6: "upload
// queues tend to grow larger"), plus tail drops and achieved-vs-advertised
// throughput, and rewrites the advertisement so fanout sheds load *before*
// the queue sheds packets.
//
// # Control law
//
// The controller is a deterministic AIMD-style state machine sampled at a
// fixed interval from the node's execution context (no goroutines, no
// wall-clock reads, no randomness — adapt-enabled runs stay bit-reproducible):
//
//   - Multiplicative decrease: after SustainWindows consecutive observation
//     windows with the uplink backlog above HighWater (or any tail drops),
//     the effective capability is cut to Beta times its value — or directly
//     to the achieved throughput measured over the last window, when that is
//     lower still (a saturated uplink's drain rate *is* its real capacity).
//   - Additive probe: after DrainedWindows consecutive windows with the
//     backlog below LowWater and no drops, the estimate climbs by
//     ProbeFraction of the configured capability per window, so a recovered
//     node works its way back to its full advertisement.
//   - Hysteresis: a decrease starts a cooldown during which congestion
//     evidence is ignored (the queue needs time to drain at the lower
//     fanout), and decrease/probe streaks reset each other. The estimate
//     never leaves [FloorFraction·configured, configured], so adaptation can
//     neither advertise beyond the operator's claim nor shrink a node out of
//     the dissemination graph.
//
// The effective value feeds two consumers: aggregation.Estimator.SetSelfCapKbps
// (HEAP's fanout then tracks the *measured* capability) and the engine's
// fanout-budget allocator (multi-stream sends rebalance off the same value).
// See internal/core for the wiring and docs/ARCHITECTURE.md for the layer map.
package adapt

import (
	"fmt"
	"time"
)

// Config parameterizes the controller. The zero value selects the defaults
// listed on each field; Validate checks a fully defaulted copy, so a zero
// Config is always valid.
type Config struct {
	// Interval is the observation cadence. The engine quantizes it to its
	// gossip rounds (samples are taken on the first round at or after each
	// interval boundary). Default 500 ms.
	Interval time.Duration
	// HighWater is the uplink backlog (queued serialization time) above
	// which a window counts as congested. The default (1 s) sits above the
	// sub-second transients a healthy gossip round produces — the paper's
	// §3.6 symptom is queues of *seconds* — so well-provisioned nodes never
	// trip the controller.
	HighWater time.Duration
	// LowWater is the backlog below which a window counts as drained.
	// Must stay below HighWater (the gap is the hysteresis band).
	// Default 200 ms.
	LowWater time.Duration
	// SustainWindows is how many consecutive congested windows trigger a
	// multiplicative decrease. Default 3.
	SustainWindows int
	// DrainedWindows is how many consecutive drained windows arm the upward
	// probe; once armed, the estimate climbs every further drained window.
	// Default 10.
	DrainedWindows int
	// CooldownWindows is how many windows after a decrease congestion
	// evidence is ignored, giving the queue time to drain at the lower
	// fanout before the next verdict. Default 4.
	CooldownWindows int
	// Beta is the multiplicative decrease factor in (0, 1). Default 0.7.
	Beta float64
	// ProbeFraction is the additive probe step as a fraction of the
	// configured capability. Default 0.05.
	ProbeFraction float64
	// FloorFraction bounds the estimate from below at
	// FloorFraction·configured, in (0, 1). Default 0.1.
	FloorFraction float64
}

// withDefaults returns a copy with every zero field filled in.
func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.HighWater == 0 {
		c.HighWater = time.Second
	}
	if c.LowWater == 0 {
		c.LowWater = 200 * time.Millisecond
	}
	if c.SustainWindows == 0 {
		c.SustainWindows = 3
	}
	if c.DrainedWindows == 0 {
		c.DrainedWindows = 10
	}
	if c.CooldownWindows == 0 {
		c.CooldownWindows = 4
	}
	if c.Beta == 0 {
		c.Beta = 0.7
	}
	if c.ProbeFraction == 0 {
		c.ProbeFraction = 0.05
	}
	if c.FloorFraction == 0 {
		c.FloorFraction = 0.1
	}
	return c
}

// Validate checks the configuration (after applying defaults, so the zero
// value passes).
func (c *Config) Validate() error {
	d := c.withDefaults()
	if d.Interval <= 0 {
		return fmt.Errorf("adapt: interval %v must be positive", d.Interval)
	}
	if d.HighWater <= 0 || d.LowWater <= 0 || d.LowWater >= d.HighWater {
		return fmt.Errorf("adapt: watermarks low %v / high %v must satisfy 0 < low < high",
			d.LowWater, d.HighWater)
	}
	if d.SustainWindows < 1 || d.DrainedWindows < 1 || d.CooldownWindows < 0 {
		return fmt.Errorf("adapt: window counts (sustain %d, drained %d, cooldown %d) out of range",
			d.SustainWindows, d.DrainedWindows, d.CooldownWindows)
	}
	if d.Beta <= 0 || d.Beta >= 1 {
		return fmt.Errorf("adapt: beta %v outside (0, 1)", d.Beta)
	}
	if d.ProbeFraction <= 0 || d.ProbeFraction > 1 {
		return fmt.Errorf("adapt: probe fraction %v outside (0, 1]", d.ProbeFraction)
	}
	if d.FloorFraction <= 0 || d.FloorFraction >= 1 {
		return fmt.Errorf("adapt: floor fraction %v outside (0, 1)", d.FloorFraction)
	}
	return nil
}

// Sample is one observation of a node's transmit pressure. The substrate
// fills it from whatever models the uplink: the simulator's per-node queue
// (simnet.QueueBacklog / QueueBacklogBytes / NodeStats.SentBytes) or the
// real-socket paced sender (ratelimit.Sender.QueueBacklog / QueuedBytes /
// AcceptedBytes / Dropped). Both SentBytes and QueuedBytes must sit on the
// enqueue side of the queue — never feed a transmit-counted total into
// SentBytes.
type Sample struct {
	// At is when the sample was taken (the node's clock). Filled in by the
	// engine, not the signal function.
	At time.Duration
	// Backlog is the time until the uplink queue drains at the current real
	// capacity — the paper's §3.6 congestion symptom.
	Backlog time.Duration
	// SentBytes is the monotonic count of bytes handed to the uplink
	// (enqueue side, UDP overhead included).
	SentBytes int64
	// QueuedBytes is the bytes currently waiting in the uplink queue.
	// Achieved throughput over a window is ΔSentBytes − ΔQueuedBytes: what
	// actually left the node, immune to enqueue-side inflation.
	QueuedBytes int64
	// Dropped is the monotonic count of datagrams tail-dropped by a bounded
	// send queue (0 on substrates with unbounded queues).
	Dropped int64
}

// Readvertisement is one effective-capability change, for traces.
type Readvertisement struct {
	At      time.Duration
	EffKbps uint32
}

// Controller is one node's re-estimation state machine. Not safe for
// concurrent use: all access happens on the node's execution context,
// like every protocol handler.
type Controller struct {
	cfg        Config
	configured uint32
	floor      uint32
	eff        uint32

	primed   bool
	last     Sample
	highRun  int
	lowRun   int
	cooldown int

	achievedKbps float64
	readv        int
	trace        []Readvertisement
}

// maxTraceEntries bounds the re-advertisement trace a controller retains: a
// long-lived node on a flappy uplink re-advertises indefinitely, and the
// trace must not grow with it. When full, the oldest half is dropped, so
// the most recent history always survives; Readvertisements keeps the true
// total.
const maxTraceEntries = 4096

// NewController builds a controller for a node whose configured (advertised)
// capability is configuredKbps. The estimate starts at the configured value
// and stays within [FloorFraction·configured, configured] forever.
func NewController(cfg Config, configuredKbps uint32) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if configuredKbps == 0 {
		return nil, fmt.Errorf("adapt: zero configured capability")
	}
	d := cfg.withDefaults()
	floor := uint32(d.FloorFraction * float64(configuredKbps))
	if floor == 0 {
		floor = 1
	}
	return &Controller{
		cfg:        d,
		configured: configuredKbps,
		floor:      floor,
		eff:        configuredKbps,
	}, nil
}

// Interval returns the observation cadence.
func (c *Controller) Interval() time.Duration { return c.cfg.Interval }

// ConfiguredKbps returns the configured (ceiling) capability.
func (c *Controller) ConfiguredKbps() uint32 { return c.configured }

// FloorKbps returns the lower clamp of the estimate.
func (c *Controller) FloorKbps() uint32 { return c.floor }

// EffectiveKbps returns the current effective capability estimate.
func (c *Controller) EffectiveKbps() uint32 { return c.eff }

// AchievedKbps returns the throughput measured over the last observation
// window (0 before the second sample) — diagnostics only.
func (c *Controller) AchievedKbps() float64 { return c.achievedKbps }

// Trace returns the re-advertisement history (excluding the initial
// configured value), bounded to the most recent maxTraceEntries changes.
// The returned slice is owned by the controller.
func (c *Controller) Trace() []Readvertisement { return c.trace }

// Readvertisements returns how many times the estimate changed (the true
// total, even past the trace bound).
func (c *Controller) Readvertisements() int { return c.readv }

// Collect emits the controller's state as named samples — the registration
// surface for a telemetry registry. Must run serialized with Observe, like
// the other accessors.
func (c *Controller) Collect(emit func(name string, value float64)) {
	emit("adapt_configured_kbps", float64(c.configured))
	emit("adapt_effective_kbps", float64(c.eff))
	emit("adapt_achieved_kbps", c.achievedKbps)
	emit("adapt_readvertisements_total", float64(c.readv))
}

// Observe feeds one pressure sample and returns the effective capability
// plus whether it changed. The first sample only primes the deltas.
func (c *Controller) Observe(s Sample) (uint32, bool) {
	if !c.primed {
		c.primed = true
		c.last = s
		return c.eff, false
	}
	dt := s.At - c.last.At
	if dt <= 0 {
		return c.eff, false
	}
	drained := (s.SentBytes - c.last.SentBytes) - (s.QueuedBytes - c.last.QueuedBytes)
	c.achievedKbps = float64(drained) * 8 / dt.Seconds() / 1000
	droppedDelta := s.Dropped - c.last.Dropped
	c.last = s

	congested := s.Backlog >= c.cfg.HighWater || droppedDelta > 0
	idle := s.Backlog <= c.cfg.LowWater && droppedDelta == 0

	if c.cooldown > 0 {
		c.cooldown--
		c.highRun = 0
	} else if congested {
		c.highRun++
	} else {
		c.highRun = 0
	}
	if idle {
		c.lowRun++
	} else {
		c.lowRun = 0
	}

	switch {
	case c.highRun >= c.cfg.SustainWindows:
		// A saturated uplink's drain rate is its real capacity: cut straight
		// to the measured throughput when that undercuts the Beta step — but
		// never below Beta² per decision, so one distorted window (a rate
		// rewrite revaluing the queue mid-measurement, a clock hiccup)
		// cannot collapse the estimate; a genuinely lower capacity just
		// takes one more cut to reach.
		target := float64(c.eff) * c.cfg.Beta
		if guard := float64(c.eff) * c.cfg.Beta * c.cfg.Beta; c.achievedKbps > 0 && c.achievedKbps < target {
			target = c.achievedKbps
			if target < guard {
				target = guard
			}
		}
		c.highRun, c.lowRun = 0, 0
		c.cooldown = c.cfg.CooldownWindows
		return c.set(s.At, uint32(target))
	case c.lowRun >= c.cfg.DrainedWindows && c.eff < c.configured:
		// Probe upward every drained window once the streak is established;
		// lowRun keeps counting, so recovery is ProbeFraction·configured per
		// interval after the initial DrainedWindows delay.
		step := uint32(c.cfg.ProbeFraction * float64(c.configured))
		if step == 0 {
			step = 1
		}
		return c.set(s.At, c.eff+step)
	}
	return c.eff, false
}

// set clamps kbps into [floor, configured] and records the change, if any.
func (c *Controller) set(at time.Duration, kbps uint32) (uint32, bool) {
	if kbps < c.floor {
		kbps = c.floor
	}
	if kbps > c.configured {
		kbps = c.configured
	}
	if kbps == c.eff {
		return c.eff, false
	}
	c.eff = kbps
	c.readv++
	if len(c.trace) >= maxTraceEntries {
		n := copy(c.trace, c.trace[len(c.trace)-maxTraceEntries/2:])
		c.trace = c.trace[:n]
	}
	c.trace = append(c.trace, Readvertisement{At: at, EffKbps: kbps})
	return c.eff, true
}

package adapt

import (
	"math/rand"
	"testing"
	"time"
)

// sampler builds a monotone Sample stream with a helper for feeding the
// controller evenly spaced windows of a given backlog.
type sampler struct {
	t         *testing.T
	c         *Controller
	now       time.Duration
	sent      int64
	queued    int64
	dropped   int64
	rateKbps  int64 // enqueue rate backing SentBytes between samples
	drainKbps int64 // drain rate backing QueuedBytes evolution
}

// step advances one interval with the given instantaneous backlog and
// returns Observe's outcome. SentBytes grows by the enqueue rate; QueuedBytes
// is set so the implied achieved throughput equals drainKbps.
func (s *sampler) step(backlog time.Duration) (uint32, bool) {
	s.t.Helper()
	dt := s.c.Interval()
	s.now += dt
	enq := s.rateKbps * 1000 / 8 * int64(dt) / int64(time.Second)
	drain := s.drainKbps * 1000 / 8 * int64(dt) / int64(time.Second)
	s.sent += enq
	s.queued += enq - drain
	if s.queued < 0 {
		s.queued = 0
	}
	return s.c.Observe(Sample{
		At:          s.now,
		Backlog:     backlog,
		SentBytes:   s.sent,
		QueuedBytes: s.queued,
		Dropped:     s.dropped,
	})
}

func newSampler(t *testing.T, c *Controller, enqueueKbps, drainKbps int64) *sampler {
	t.Helper()
	s := &sampler{t: t, c: c, rateKbps: enqueueKbps, drainKbps: drainKbps}
	// Prime the delta state: the first sample never changes the estimate.
	if _, changed := s.step(0); changed {
		t.Fatal("first sample changed the estimate")
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	zero := Config{}
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero config must validate (defaults): %v", err)
	}
	bad := []Config{
		{Beta: 1.5},
		{Beta: -0.1},
		{FloorFraction: 1},
		{ProbeFraction: 2},
		{LowWater: time.Second, HighWater: time.Millisecond},
		{SustainWindows: -1},
		{Interval: -time.Second},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if _, err := NewController(Config{}, 0); err == nil {
		t.Error("zero configured capability accepted")
	}
}

func TestDecreaseOnSustainedBacklog(t *testing.T) {
	c, err := NewController(Config{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	s := newSampler(t, c, 1000, 500) // enqueueing 1000 kbps, draining 500
	// Below SustainWindows consecutive congested windows: no change.
	for i := 0; i < c.cfg.SustainWindows-1; i++ {
		if _, changed := s.step(time.Second); changed {
			t.Fatalf("decreased after only %d congested windows", i+1)
		}
	}
	eff, changed := s.step(time.Second)
	if !changed {
		t.Fatal("no decrease after SustainWindows congested windows")
	}
	// Achieved (500) is below the Beta step (700), so the cut lands on the
	// measured throughput.
	if eff != 500 {
		t.Fatalf("eff = %d, want 500 (cut to achieved throughput)", eff)
	}
	if got := c.EffectiveKbps(); got != eff {
		t.Fatalf("EffectiveKbps() = %d, want %d", got, eff)
	}
	if len(c.Trace()) != 1 || c.Trace()[0].EffKbps != 500 {
		t.Fatalf("trace = %+v, want one entry at 500", c.Trace())
	}
}

func TestBetaCutWhenAchievedIsHigher(t *testing.T) {
	c, err := NewController(Config{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Achieved 900 kbps exceeds the Beta target (700): the Beta step wins.
	s := newSampler(t, c, 1000, 900)
	var eff uint32
	var changed bool
	for i := 0; i < c.cfg.SustainWindows; i++ {
		eff, changed = s.step(time.Second)
	}
	if !changed || eff != 700 {
		t.Fatalf("eff = %d (changed=%v), want the beta cut 700", eff, changed)
	}
}

func TestDropsCountAsCongestion(t *testing.T) {
	c, err := NewController(Config{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	s := newSampler(t, c, 100, 100)
	for i := 0; i < c.cfg.SustainWindows; i++ {
		s.dropped++ // backlog stays zero, but the bounded queue is shedding
		if _, changed := s.step(0); changed {
			if i < c.cfg.SustainWindows-1 {
				t.Fatalf("decreased after %d dropping windows", i+1)
			}
			return
		}
	}
	t.Fatal("tail drops never triggered a decrease")
}

func TestCooldownBlocksBackToBackDecreases(t *testing.T) {
	c, err := NewController(Config{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	s := newSampler(t, c, 1000, 500)
	for i := 0; i < c.cfg.SustainWindows; i++ {
		s.step(time.Second)
	}
	first := c.EffectiveKbps()
	// During the cooldown, continued congestion must not cut again.
	for i := 0; i < c.cfg.CooldownWindows; i++ {
		if _, changed := s.step(time.Second); changed {
			t.Fatalf("decrease during cooldown window %d", i+1)
		}
	}
	// After the cooldown, a fresh sustained streak is required.
	for i := 0; i < c.cfg.SustainWindows-1; i++ {
		if _, changed := s.step(time.Second); changed {
			t.Fatalf("decrease before a fresh sustained streak (window %d)", i+1)
		}
	}
	if _, changed := s.step(time.Second); !changed {
		t.Fatal("no decrease after cooldown plus a fresh sustained streak")
	}
	if c.EffectiveKbps() >= first {
		t.Fatalf("second cut did not lower the estimate: %d -> %d", first, c.EffectiveKbps())
	}
}

func TestProbeRecoversTowardConfigured(t *testing.T) {
	c, err := NewController(Config{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	s := newSampler(t, c, 1000, 400)
	for i := 0; i < c.cfg.SustainWindows; i++ {
		s.step(time.Second)
	}
	low := c.EffectiveKbps()
	if low >= 1000 {
		t.Fatalf("setup: no decrease happened (eff %d)", low)
	}
	// Drained stream: after DrainedWindows the probe starts and then climbs
	// every window until the configured ceiling.
	s.rateKbps, s.drainKbps = 100, 100
	for i := 0; i < c.cfg.DrainedWindows-1; i++ {
		if _, changed := s.step(0); changed {
			t.Fatalf("probe before the drained streak completed (window %d)", i+1)
		}
	}
	eff, changed := s.step(0)
	if !changed || eff != low+50 { // ProbeFraction 0.05 of 1000
		t.Fatalf("first probe: eff=%d changed=%v, want %d", eff, changed, low+50)
	}
	for i := 0; i < 100 && c.EffectiveKbps() < 1000; i++ {
		s.step(0)
	}
	if c.EffectiveKbps() != 1000 {
		t.Fatalf("probe stalled at %d, want full recovery to 1000", c.EffectiveKbps())
	}
	// At the ceiling, further drained windows change nothing.
	if _, changed := s.step(0); changed {
		t.Fatal("estimate changed past the configured ceiling")
	}
}

func TestBetaSquaredGuardsOneNoisyWindow(t *testing.T) {
	c, err := NewController(Config{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Achieved collapses to ~1% of the estimate (the shape of a distorted
	// window: a queue revalued mid-measurement). One decision may cut at
	// most to Beta² of the estimate, not to the bogus measurement.
	s := newSampler(t, c, 1000, 10)
	var eff uint32
	var changed bool
	for i := 0; i < c.cfg.SustainWindows; i++ {
		eff, changed = s.step(time.Second)
	}
	if !changed {
		t.Fatal("no decrease after the sustained streak")
	}
	if want := uint32(float64(1000) * c.cfg.Beta * c.cfg.Beta); eff != want {
		t.Fatalf("eff = %d, want the beta-squared guard %d", eff, want)
	}
}

func TestTraceBoundedCountExact(t *testing.T) {
	c, err := NewController(Config{DrainedWindows: 1, ProbeFraction: 0.001}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate saturation and drain so the estimate changes far more often
	// than the trace bound.
	s := newSampler(t, c, 1000, 500)
	changes := 0
	for i := 0; i < 3*maxTraceEntries; i++ {
		var changed bool
		if i%8 < 4 {
			_, changed = s.step(10 * time.Second)
		} else {
			_, changed = s.step(0)
		}
		if changed {
			changes++
		}
	}
	if changes <= maxTraceEntries {
		t.Fatalf("setup produced only %d changes; need more than the %d bound", changes, maxTraceEntries)
	}
	if got := c.Readvertisements(); got != changes {
		t.Fatalf("Readvertisements() = %d, want the true total %d", got, changes)
	}
	if got := len(c.Trace()); got > maxTraceEntries {
		t.Fatalf("trace holds %d entries, bound is %d", got, maxTraceEntries)
	}
	// The retained suffix is the most recent history.
	last := c.Trace()[len(c.Trace())-1]
	if last.EffKbps != c.EffectiveKbps() {
		t.Fatalf("trace tail %d does not match the current estimate %d", last.EffKbps, c.EffectiveKbps())
	}
}

func TestFloorClamp(t *testing.T) {
	c, err := NewController(Config{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Drain rate ~0: achieved throughput collapses, but the estimate must
	// stop at the floor.
	s := newSampler(t, c, 1000, 1)
	for i := 0; i < 200; i++ {
		s.step(10 * time.Second)
	}
	if got, want := c.EffectiveKbps(), c.FloorKbps(); got != want {
		t.Fatalf("eff = %d, want the floor %d", got, want)
	}
	if c.FloorKbps() != 100 { // FloorFraction 0.1 of 1000
		t.Fatalf("floor = %d, want 100", c.FloorKbps())
	}
}

// TestPropertyEstimateStaysWithinBounds is the satellite's property test:
// under arbitrary (seeded-random) signal sequences the estimate never
// exceeds the configured capability and never drops below the floor, and
// the trace records exactly the changes.
func TestPropertyEstimateStaysWithinBounds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		configured := uint32(1 + rng.Intn(5000))
		c, err := NewController(Config{}, configured)
		if err != nil {
			t.Fatal(err)
		}
		var now time.Duration
		var sent int64
		var dropped int64
		prev := c.EffectiveKbps()
		changes := 0
		for i := 0; i < 500; i++ {
			// Irregular cadence, bursty backlogs, arbitrary byte growth,
			// occasional drops — and deliberately inconsistent queued bytes.
			now += time.Duration(1+rng.Intn(2000)) * time.Millisecond
			sent += int64(rng.Intn(1 << 20))
			if rng.Intn(10) == 0 {
				dropped += int64(rng.Intn(5))
			}
			eff, changed := c.Observe(Sample{
				At:          now,
				Backlog:     time.Duration(rng.Intn(20_000)) * time.Millisecond,
				SentBytes:   sent,
				QueuedBytes: int64(rng.Intn(1 << 22)),
				Dropped:     dropped,
			})
			if eff > configured {
				t.Fatalf("seed %d step %d: eff %d exceeds configured %d", seed, i, eff, configured)
			}
			if eff < c.FloorKbps() {
				t.Fatalf("seed %d step %d: eff %d below floor %d", seed, i, eff, c.FloorKbps())
			}
			if changed != (eff != prev) {
				t.Fatalf("seed %d step %d: changed=%v but eff %d -> %d", seed, i, changed, prev, eff)
			}
			if changed {
				changes++
				last := c.Trace()[len(c.Trace())-1]
				if last.EffKbps != eff || last.At != now {
					t.Fatalf("seed %d step %d: trace tail %+v does not match change to %d at %v",
						seed, i, last, eff, now)
				}
			}
			prev = eff
		}
		if got := c.Readvertisements(); got != changes {
			t.Fatalf("seed %d: %d trace entries, observed %d changes", seed, got, changes)
		}
	}
}

// TestObserveIgnoresNonMonotonicTime guards the delta math: a sample with a
// time at or before the previous one must be inert.
func TestObserveIgnoresNonMonotonicTime(t *testing.T) {
	c, err := NewController(Config{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(Sample{At: time.Second})
	if _, changed := c.Observe(Sample{At: time.Second, Backlog: time.Hour}); changed {
		t.Fatal("zero-dt sample changed the estimate")
	}
	if _, changed := c.Observe(Sample{At: time.Millisecond, Backlog: time.Hour}); changed {
		t.Fatal("backwards sample changed the estimate")
	}
}

package udpnet

import (
	"net"
	"testing"
	"time"

	"repro/internal/aggregation"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/membership"
	"repro/internal/netem"
	"repro/internal/stream"
	"repro/internal/wire"
)

// TestNetemDropsOutbound pins the interceptor mechanics: a drop-everything
// model on the sender silences it, and the sender's counter records it.
func TestNetemDropsOutbound(t *testing.T) {
	recv := &collector{}
	b, err := NewNode(1, recv, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewNode(0, &sendOnStart{to: 1}, Config{Seed: 1, Netem: netem.Bernoulli{P: 0.999999999}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	peers := map[wire.NodeID]*net.UDPAddr{0: a.Addr(), 1: b.Addr()}
	a.SetPeers(peers)
	b.SetPeers(peers)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		dropped := 0
		a.Execute(func() { dropped = a.NetemDropped })
		return dropped >= 1
	})
	if recv.count() != 0 {
		t.Fatalf("dropped datagram was delivered (%d messages)", recv.count())
	}
}

// TestNetemDelayDefersDelivery pins the delay path: a fixed 200 ms model on
// the sender defers delivery without losing the datagram.
func TestNetemDelayDefersDelivery(t *testing.T) {
	recv := &collector{}
	b, err := NewNode(1, recv, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := NewNode(0, &sendOnStart{to: 1}, Config{Seed: 3, Netem: netem.FixedDelay(200 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	peers := map[wire.NodeID]*net.UDPAddr{0: a.Addr(), 1: b.Addr()}
	a.SetPeers(peers)
	b.SetPeers(peers)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return recv.count() >= 1 })
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("delivered after %v, want >= 200ms of netem delay", elapsed)
	}
	delayed := 0
	a.Execute(func() { delayed = a.NetemDelayed })
	if delayed != 1 {
		t.Fatalf("NetemDelayed = %d, want 1", delayed)
	}
}

// TestSharedEpochAlignsSchedules pins the staggered-start story: nodes
// given one shared Epoch agree on Runtime.Now (and therefore on when
// schedule-driven netem windows open) no matter when each process started.
func TestSharedEpochAlignsSchedules(t *testing.T) {
	epoch := time.Now().Add(-42 * time.Second)
	nowCh := make(chan time.Duration, 2)
	mk := func(id wire.NodeID) *Node {
		n, err := NewNode(id, &nowOnStart{ch: nowCh}, Config{Seed: int64(id), Epoch: epoch})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mk(0)
	defer a.Close()
	time.Sleep(50 * time.Millisecond) // a staggered start
	b := mk(1)
	defer b.Close()
	na, nb := <-nowCh, <-nowCh
	if na < 42*time.Second || nb < 42*time.Second {
		t.Fatalf("Now() ignored the shared epoch: %v / %v", na, nb)
	}
	if diff := nb - na; diff < 0 || diff > 5*time.Second {
		t.Fatalf("staggered nodes disagree on the epoch clock by %v", diff)
	}
}

type nowOnStart struct{ ch chan time.Duration }

func (h *nowOnStart) Start(rt env.Runtime)              { h.ch <- rt.Now() }
func (h *nowOnStart) Receive(wire.NodeID, wire.Message) {}
func (h *nowOnStart) Stop()                             {}

// TestStreamingUnderAdverseNetem runs the full stack over loopback sockets
// while every node's outbound path suffers Gilbert-Elliott bursty loss
// (~11% average, arriving in per-sender bursts) and a partition isolates
// three nodes shortly after the stream airs, healing ~0.75 s later.
// Retransmission and FEC must still complete the stream — the same recovery
// story the paper tells for PlanetLab, now reproducible on an emulated WAN.
func TestStreamingUnderAdverseNetem(t *testing.T) {
	const nodes = 10
	geom := stream.Geometry{RateBps: 200_000, PacketBytes: 200, DataPerWindow: 10, ParityPerWindow: 2}
	const windows = 6

	adverse := netem.Config{
		Name: "test-adverse",
		GE:   &netem.GEParams{PGoodBad: 0.05, PBadGood: 0.2, LossGood: 0.01, LossBad: 0.5},
		Partitions: []netem.PartitionSpec{{
			From:   850 * time.Millisecond,
			Until:  1600 * time.Millisecond,
			Groups: [][]wire.NodeID{{7, 8, 9}},
		}},
	}

	dir := membership.NewDirectory(nodes)
	receivers := make([]*stream.Receiver, nodes)
	udpNodes := make([]*Node, nodes)
	engines := make([]*netem.Engine, nodes)
	addrs := make(map[wire.NodeID]*net.UDPAddr, nodes)

	for i := 0; i < nodes; i++ {
		id := wire.NodeID(i)
		rcv, err := stream.NewReceiver(geom, windows, true)
		if err != nil {
			t.Fatal(err)
		}
		receivers[i] = rcv
		eng, err := core.New(core.Config{
			Fanout:         5,
			GossipPeriod:   30 * time.Millisecond,
			RetPeriod:      250 * time.Millisecond,
			RetMaxAttempts: 12,
			Sampler:        dir.ViewFor(id),
			OnDeliver:      rcv.OnDeliver,
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := env.NewMux()
		mux.Register(eng, wire.KindPropose, wire.KindRequest, wire.KindServe)
		// The aggregation protocol keeps background traffic flowing across
		// the split for its whole duration, so the partition provably bites.
		est := aggregation.NewEstimator(aggregation.Config{
			SelfCapKbps: 1000,
			Sampler:     dir.ViewFor(id),
		})
		mux.Register(est, wire.KindAggregate)
		if i == 0 {
			src, err := stream.NewSource(stream.SourceConfig{
				Geometry:  geom,
				Windows:   windows,
				StartAt:   300 * time.Millisecond,
				Publisher: eng,
			})
			if err != nil {
				t.Fatal(err)
			}
			mux.Register(src)
		}
		// Every node materializes the same adverse profile from the same
		// seed — the shared lab conditions, with identical partition groups
		// — but owns its instance (models are stateful, and each node only
		// steps its own outbound chains).
		engines[i] = adverse.MustBuild(nodes, 77, 0)
		n, err := NewNode(id, mux, Config{Seed: int64(100 + i), Netem: engines[i]})
		if err != nil {
			t.Fatal(err)
		}
		udpNodes[i] = n
		addrs[id] = n.Addr()
	}
	defer func() {
		for _, n := range udpNodes {
			n.Close()
		}
	}()
	for _, n := range udpNodes {
		n.SetPeers(addrs)
	}
	for _, n := range udpNodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}

	// The stream must complete despite bursts and the split: as in the
	// clean-network loopback test, assert strong system-wide delivery (the
	// residual per-(node,packet) miss rate of gossip is ~e^-f).
	total := geom.TotalPackets(windows)
	waitFor(t, 30*time.Second, func() bool {
		sum := 0
		for i := 1; i < nodes; i++ {
			udpNodes[i].Execute(func() { sum += receivers[i].Received() })
		}
		return sum >= (nodes-1)*total*92/100
	})

	for i := 1; i < nodes; i++ {
		udpNodes[i].Execute(func() {
			if receivers[i].VerifyFailures != 0 {
				t.Errorf("node %d: payload verification failed under netem", i)
			}
		})
	}
	// Both adverse models must have actually ruled. The stream usually
	// completes before the split opens at 0.85 s, so wait for it: the
	// aggregation chatter (one message per node per 200 ms, forever)
	// guarantees traffic crosses the split while it is up.
	perModel := func() map[string]int64 {
		sums := map[string]int64{}
		for i := range udpNodes {
			udpNodes[i].Execute(func() {
				for _, st := range engines[i].Stats() {
					sums[st.Name] += st.Drops
				}
			})
		}
		return sums
	}
	waitFor(t, 10*time.Second, func() bool { return perModel()["partition"] > 0 })
	if perModel()["gilbert-elliott"] == 0 {
		t.Error("bursty-loss model never dropped a datagram")
	}
}

package udpnet

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/membership"
	"repro/internal/stream"
	"repro/internal/wire"
)

// collector records received messages thread-safely via the node mutex
// (callbacks are serialized; the test reads after synchronization points).
type collector struct {
	mu  sync.Mutex
	got []wire.Message
}

func (c *collector) Start(env.Runtime) {}
func (c *collector) Stop()             {}
func (c *collector) Receive(_ wire.NodeID, m wire.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, m)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

func TestBasicExchange(t *testing.T) {
	recv := &collector{}
	a, err := NewNode(0, &sendOnStart{to: 1}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(1, recv, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	peers := map[wire.NodeID]*net.UDPAddr{0: a.Addr(), 1: b.Addr()}
	a.SetPeers(peers)
	b.SetPeers(peers)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return recv.count() >= 1 })
}

// sendOnStart sends one propose to a fixed peer when started.
type sendOnStart struct {
	to wire.NodeID
}

func (s *sendOnStart) Start(rt env.Runtime) {
	rt.Send(s.to, &wire.Propose{IDs: []wire.PacketID{7}})
}
func (s *sendOnStart) Receive(wire.NodeID, wire.Message) {}
func (s *sendOnStart) Stop()                             {}

func TestStartTwiceFails(t *testing.T) {
	n, err := NewNode(0, &collector{}, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestCloseIdempotentAndStopsHandler(t *testing.T) {
	h := &lifecycle{}
	n, err := NewNode(0, h, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close()
	if h.stops != 1 {
		t.Fatalf("handler stopped %d times, want 1", h.stops)
	}
}

type lifecycle struct {
	mu     sync.Mutex
	stops  int
	starts int
}

func (l *lifecycle) Start(env.Runtime) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.starts++
}
func (l *lifecycle) Receive(wire.NodeID, wire.Message) {}
func (l *lifecycle) Stop() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stops++
}

func TestGarbageDatagramsIgnored(t *testing.T) {
	recv := &collector{}
	n, err := NewNode(0, recv, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	// Fire raw garbage at the socket.
	conn, err := net.DialUDP("udp", nil, n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payloads := [][]byte{
		{},
		{1, 2},                 // short frame
		{0, 0, 0, 9, 99, 1, 2}, // unknown kind
		{0, 0, 0, 9, 1},        // truncated propose
	}
	for _, p := range payloads {
		if _, err := conn.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	// Then a valid message to prove the loop survived.
	valid := make([]byte, 4)
	valid = (&wire.Propose{IDs: []wire.PacketID{1}}).MarshalBinary(valid)
	if _, err := conn.Write(valid); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return recv.count() >= 1 })
}

func TestTimersRunUnderMutex(t *testing.T) {
	fired := make(chan time.Duration, 2)
	h := timerHandler{fired: fired}
	n, err := NewNode(0, h, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(3 * time.Second):
		t.Fatal("timer did not fire")
	}
}

type timerHandler struct {
	fired chan time.Duration
}

func (h timerHandler) Start(rt env.Runtime) {
	rt.After(20*time.Millisecond, func() {
		select {
		case h.fired <- rt.Now():
		default:
		}
	})
	// A stopped timer must not fire.
	tm := rt.After(30*time.Millisecond, func() { h.fired <- -1 })
	tm.Stop()
}
func (h timerHandler) Receive(wire.NodeID, wire.Message) {}
func (h timerHandler) Stop()                             {}

// TestStreamingOverLoopback runs the full stack — engines, source, FEC
// receivers — over real UDP sockets on localhost.
func TestStreamingOverLoopback(t *testing.T) {
	const nodes = 12
	geom := stream.Geometry{RateBps: 800_000, PacketBytes: 200, DataPerWindow: 10, ParityPerWindow: 2}
	const windows = 4

	dir := membership.NewDirectory(nodes)
	receivers := make([]*stream.Receiver, nodes)
	udpNodes := make([]*Node, nodes)
	addrs := make(map[wire.NodeID]*net.UDPAddr, nodes)

	for i := 0; i < nodes; i++ {
		id := wire.NodeID(i)
		rcv, err := stream.NewReceiver(geom, windows, true)
		if err != nil {
			t.Fatal(err)
		}
		receivers[i] = rcv
		eng, err := core.New(core.Config{
			Fanout:       5,
			GossipPeriod: 30 * time.Millisecond,
			RetPeriod:    300 * time.Millisecond,
			Sampler:      dir.ViewFor(id),
			OnDeliver:    rcv.OnDeliver,
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := env.NewMux()
		mux.Register(eng, wire.KindPropose, wire.KindRequest, wire.KindServe)
		if i == 0 {
			src, err := stream.NewSource(stream.SourceConfig{
				Geometry:  geom,
				Windows:   windows,
				StartAt:   300 * time.Millisecond,
				Publisher: eng,
			})
			if err != nil {
				t.Fatal(err)
			}
			mux.Register(src)
		}
		n, err := NewNode(id, mux, Config{Seed: int64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		udpNodes[i] = n
		addrs[id] = n.Addr()
	}
	defer func() {
		for _, n := range udpNodes {
			n.Close()
		}
	}()
	for _, n := range udpNodes {
		n.SetPeers(addrs)
	}
	for _, n := range udpNodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}

	// Gossip leaves a small per-(node,packet) residual miss rate (~e^-f),
	// so assert strong system-wide delivery rather than perfection at every
	// node.
	total := geom.TotalPackets(windows)
	waitFor(t, 20*time.Second, func() bool {
		sum := 0
		for i := 1; i < nodes; i++ {
			udpNodes[i].mu.Lock()
			sum += receivers[i].Received()
			udpNodes[i].mu.Unlock()
		}
		return sum >= (nodes-1)*total*92/100
	})
	// Synchronize before reading verify counters.
	for i := 1; i < nodes; i++ {
		udpNodes[i].mu.Lock()
		if receivers[i].VerifyFailures != 0 {
			udpNodes[i].mu.Unlock()
			t.Fatalf("node %d: payload verification failed over UDP", i)
		}
		udpNodes[i].mu.Unlock()
	}
}

func TestThrottledNodePacesUploads(t *testing.T) {
	// A throttled sender pushing 20 large proposes at 256 kbps must take
	// noticeably longer than an unthrottled one.
	run := func(bps int64) time.Duration {
		recv := &collector{}
		b, err := NewNode(1, recv, Config{Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		h := &burstSender{to: 1, n: 20}
		a, err := NewNode(0, h, Config{Seed: 9, UploadBps: bps})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		peers := map[wire.NodeID]*net.UDPAddr{0: a.Addr(), 1: b.Addr()}
		a.SetPeers(peers)
		b.SetPeers(peers)
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := a.Start(); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 10*time.Second, func() bool { return recv.count() >= 20 })
		return time.Since(start)
	}
	unthrottled := run(0)
	throttled := run(256_000) // 20 x ~830B x 8 / 256k ~= 520ms
	if throttled < unthrottled+200*time.Millisecond {
		t.Fatalf("throttling had no effect: %v vs %v", throttled, unthrottled)
	}
}

type burstSender struct {
	to wire.NodeID
	n  int
}

func (s *burstSender) Start(rt env.Runtime) {
	ids := make([]wire.PacketID, 100) // ~807B message
	for i := 0; i < s.n; i++ {
		rt.Send(s.to, &wire.Propose{IDs: ids})
	}
}
func (s *burstSender) Receive(wire.NodeID, wire.Message) {}
func (s *burstSender) Stop()                             {}

//go:build !linux

// Portable half of the batched-syscall split: platforms without
// sendmmsg/recvmmsg report no batchIO and the node runs the original
// one-datagram-per-syscall read loop and paced sender (batch size 1). The
// Linux fast path lives behind the inverse build tag in batch_linux.go.

package udpnet

import "net"

// newBatchIO reports that this platform has no batched-syscall path.
func newBatchIO(*net.UDPConn) (batchIO, error) { return nil, nil }

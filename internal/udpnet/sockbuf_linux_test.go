//go:build linux

package udpnet

import (
	"syscall"
	"testing"
)

func sockBuf(t *testing.T, n *Node, opt int) int {
	t.Helper()
	rc, err := n.conn.SyscallConn()
	if err != nil {
		t.Fatal(err)
	}
	var val int
	var soerr error
	if err := rc.Control(func(fd uintptr) {
		val, soerr = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, opt)
	}); err != nil {
		t.Fatal(err)
	}
	if soerr != nil {
		t.Fatal(soerr)
	}
	return val
}

// TestSocketBufferBytesApplied checks that the SO_RCVBUF/SO_SNDBUF request
// reaches the socket. The kernel doubles the requested value (bookkeeping
// overhead) and clamps to rmem_max/wmem_max, so assert the buffers grew
// past a kernel-default-sized baseline rather than an exact value.
func TestSocketBufferBytesApplied(t *testing.T) {
	baseline, err := NewNode(0, &collector{}, Config{Seed: 31, SocketBufferBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer baseline.Close()
	sized, err := NewNode(1, &collector{}, Config{Seed: 32, SocketBufferBytes: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer sized.Close()

	for _, opt := range []int{syscall.SO_RCVBUF, syscall.SO_SNDBUF} {
		base, got := sockBuf(t, baseline, opt), sockBuf(t, sized, opt)
		// The kernel reports 2x the request; even clamped by rmem_max the
		// result must be at least the unclamped kernel default and reflect
		// the request when the ceiling allows.
		want := 2 * (512 << 10)
		if got < base && got < want {
			t.Errorf("sockopt %d = %d after requesting 512 KiB, below kernel default %d", opt, got, base)
		}
	}

	// The default (SocketBufferBytes == 0 → 1 MiB) must also take effect.
	def, err := NewNode(2, &collector{}, Config{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	if got, base := sockBuf(t, def, syscall.SO_RCVBUF), sockBuf(t, baseline, syscall.SO_RCVBUF); got < base {
		t.Errorf("default SO_RCVBUF = %d, below kernel default %d", got, base)
	}
}

package udpnet

import (
	"bytes"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/wire"
)

// retainingCollector records every message and, for Serves, keeps the
// payload slices it was handed — exactly what the engine's buffer table and
// the stream receiver do. Retained payloads must stay intact while the read
// loop keeps receiving into its reusable staging buffers.
type retainingCollector struct {
	mu       sync.Mutex
	frames   []string // marshaled form of every received message
	payloads [][]byte // Serve payloads, retained as delivered (no copy)
}

func (c *retainingCollector) Start(env.Runtime) {}
func (c *retainingCollector) Stop()             {}
func (c *retainingCollector) Receive(_ wire.NodeID, m wire.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = append(c.frames, string(m.MarshalBinary(nil)))
	if sv, ok := m.(*wire.Serve); ok {
		for _, e := range sv.Events {
			c.payloads = append(c.payloads, e.Payload)
		}
	}
}

func (c *retainingCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// servePayload is the deterministic content of event id, so retained slices
// can be re-verified long after delivery.
func servePayload(id int) []byte {
	p := make([]byte, 64)
	for j := range p {
		p[j] = byte(id + j)
	}
	return p
}

type equivalenceSender struct {
	to wire.NodeID
	n  int
}

func (s *equivalenceSender) Start(rt env.Runtime) {
	for i := 0; i < s.n; i++ {
		rt.Send(s.to, &wire.Serve{
			Stream: 1,
			Events: []wire.Event{{ID: wire.PacketID(i), Stamp: int64(i), Payload: servePayload(i)}},
		})
		rt.Send(s.to, &wire.Propose{Stream: 1, IDs: []wire.PacketID{wire.PacketID(i), wire.PacketID(i + 1000)}})
	}
}
func (s *equivalenceSender) Receive(wire.NodeID, wire.Message) {}
func (s *equivalenceSender) Stop()                             {}

// TestBatchAndFallbackDeliverIdentically runs the same burst over loopback
// with the batched-syscall path and with DisableBatch, and requires
// byte-identical delivery (as a multiset of marshaled messages), zero
// decode errors, and retained Serve payloads that survive continued
// receive-buffer reuse. On platforms without a batch path the two runs
// coincide — the test then simply pins the portable semantics.
func TestBatchAndFallbackDeliverIdentically(t *testing.T) {
	const msgs = 40 // 40 Serves + 40 Proposes per run
	run := func(disable bool) []string {
		recv := &retainingCollector{}
		b, err := NewNode(1, recv, Config{Seed: 21, DisableBatch: disable})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		a, err := NewNode(0, &equivalenceSender{to: 1, n: msgs}, Config{Seed: 22, DisableBatch: disable})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		peers := map[wire.NodeID]*net.UDPAddr{0: a.Addr(), 1: b.Addr()}
		a.SetPeers(peers)
		b.SetPeers(peers)
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}
		if err := a.Start(); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 5*time.Second, func() bool { return recv.count() >= 2*msgs })

		// A second burst forces the read loop to refill its staging buffers;
		// the payloads retained from the first burst must not change.
		a.Execute(func() {
			(&equivalenceSender{to: 1, n: msgs}).Start(&nodeRuntime{n: a})
		})
		waitFor(t, 5*time.Second, func() bool { return recv.count() >= 4*msgs })

		recv.mu.Lock()
		defer recv.mu.Unlock()
		seen := make(map[int]int)
		for _, p := range recv.payloads {
			if len(p) != 64 {
				t.Fatalf("retained payload has length %d, want 64", len(p))
			}
			id := int(p[0])
			if !bytes.Equal(p, servePayload(id)) {
				t.Fatalf("retained payload for event %d corrupted by buffer reuse (disable=%v)", id, disable)
			}
			seen[id]++
		}
		for id, n := range seen {
			if n != 2 {
				t.Fatalf("event %d delivered %d times, want 2 (disable=%v)", id, n, disable)
			}
		}
		b.mu.Lock()
		decodeErrs := b.DecodeErrors
		b.mu.Unlock()
		if decodeErrs != 0 {
			t.Fatalf("DecodeErrors = %d with disable=%v, want 0", decodeErrs, disable)
		}
		out := append([]string(nil), recv.frames...)
		sort.Strings(out)
		return out
	}

	batched := run(false)
	fallback := run(true)
	if len(batched) != len(fallback) {
		t.Fatalf("batched delivered %d messages, fallback %d", len(batched), len(fallback))
	}
	for i := range batched {
		if batched[i] != fallback[i] {
			t.Fatalf("delivery multisets diverge at sorted index %d:\n  batched:  %x\n  fallback: %x",
				i, batched[i], fallback[i])
		}
	}
}

// TestSpoofedSenderRejectedOnBatchPath pins the source-address check the
// batch read loop performs on raw sockaddrs: a datagram claiming a known
// peer's id from the wrong source address must not reach the handler, on
// either path.
func TestSpoofedSenderRejectedOnBatchPath(t *testing.T) {
	for _, disable := range []bool{false, true} {
		t.Run(fmt.Sprintf("disable=%v", disable), func(t *testing.T) {
			recv := &collector{}
			n, err := NewNode(0, recv, Config{Seed: 23, DisableBatch: disable})
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			if err := n.Start(); err != nil {
				t.Fatal(err)
			}
			// Register peer 7 at an address nobody sends from.
			n.AddPeer(7, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9})

			conn, err := net.DialUDP("udp", nil, n.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			spoofed := []byte{0, 0, 0, 7}
			spoofed = (&wire.Propose{IDs: []wire.PacketID{1}}).MarshalBinary(spoofed)
			honest := []byte{0, 0, 0, 42} // unknown id: accepted (late directory)
			honest = (&wire.Propose{IDs: []wire.PacketID{2}}).MarshalBinary(honest)
			for i := 0; i < 5; i++ {
				if _, err := conn.Write(spoofed); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := conn.Write(honest); err != nil {
				t.Fatal(err)
			}
			waitFor(t, 3*time.Second, func() bool { return recv.count() >= 1 })
			time.Sleep(50 * time.Millisecond) // let any spoofed stragglers land
			recv.mu.Lock()
			defer recv.mu.Unlock()
			for _, m := range recv.got {
				if p, ok := m.(*wire.Propose); ok && len(p.IDs) == 1 && p.IDs[0] == 1 {
					t.Fatal("spoofed datagram reached the handler")
				}
			}
		})
	}
}

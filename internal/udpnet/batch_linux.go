//go:build linux

// Batched-syscall I/O for Linux: sendmmsg(2)/recvmmsg(2) over the socket's
// raw file descriptor, amortizing one syscall across up to ioBatchMax
// datagrams in each direction. The syscalls are issued directly via
// syscall.Syscall6 with a hand-rolled mmsghdr layout (struct msghdr plus
// the kernel-written msg_len) so the module stays free of dependencies
// outside the standard library; the portable one-syscall-per-datagram path
// remains behind the inverse build tag (batch_fallback.go) and behind
// Config.DisableBatch.

package udpnet

import (
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

// sysSendmmsg is sendmmsg(2)'s number for this GOARCH. The std syscall
// package's tables were frozen before sendmmsg landed on several
// architectures (linux/amd64 has SYS_RECVMMSG but not SYS_SENDMMSG), so the
// number is carried here. Zero — an architecture not listed — disables the
// batched path entirely rather than issuing a wrong syscall.
var sysSendmmsg = map[string]uintptr{
	"amd64":   307,
	"386":     345,
	"arm":     374,
	"arm64":   269, // asm-generic table, shared by the modern ports
	"riscv64": 269,
	"loong64": 269,
	"ppc64":   349,
	"ppc64le": 349,
	"s390x":   358,
}[runtime.GOARCH]

// mmsghdr mirrors the kernel's struct mmsghdr: the embedded msghdr plus the
// per-message byte count the kernel writes back. Go's trailing struct
// padding matches C's on every GOARCH because syscall.Msghdr carries the
// arch-correct field layout.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
}

// mmsgIO implements batchIO over one UDP socket's raw descriptor. The
// receive staging buffers are the free list the read loop recycles: they
// are filled by every recvmmsg call and never escape (bodies are copied to
// a per-batch arena before decoding), so one ioBatchMax×maxDatagram
// allocation serves the node's whole lifetime.
type mmsgIO struct {
	rc   syscall.RawConn
	ipv6 bool // socket family: encode destinations to match

	// Receive side, allocated once.
	rhdrs  []mmsghdr
	riov   []syscall.Iovec
	rbufs  [][]byte
	rnames []syscall.RawSockaddrAny

	// Send side, allocated once; headers are rebuilt per WriteBatch.
	shdrs  []mmsghdr
	siov   []syscall.Iovec
	snames []syscall.RawSockaddrAny
}

// newBatchIO wires the batched-syscall path over conn. An error (no raw
// descriptor view) makes the caller fall back to the portable path.
func newBatchIO(conn *net.UDPConn) (batchIO, error) {
	if sysSendmmsg == 0 {
		return nil, nil
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	local, _ := conn.LocalAddr().(*net.UDPAddr)
	m := &mmsgIO{
		rc:     rc,
		ipv6:   local == nil || local.IP.To4() == nil,
		rhdrs:  make([]mmsghdr, ioBatchMax),
		riov:   make([]syscall.Iovec, ioBatchMax),
		rbufs:  make([][]byte, ioBatchMax),
		rnames: make([]syscall.RawSockaddrAny, ioBatchMax),
		shdrs:  make([]mmsghdr, ioBatchMax),
		siov:   make([]syscall.Iovec, ioBatchMax),
		snames: make([]syscall.RawSockaddrAny, ioBatchMax),
	}
	backing := make([]byte, ioBatchMax*maxDatagram)
	for i := range m.rhdrs {
		buf := backing[i*maxDatagram : (i+1)*maxDatagram]
		m.rbufs[i] = buf
		m.riov[i].Base = &buf[0]
		m.riov[i].SetLen(len(buf))
		m.rhdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&m.rnames[i]))
		m.rhdrs[i].hdr.Namelen = syscall.SizeofSockaddrAny
		m.rhdrs[i].hdr.Iov = &m.riov[i]
		m.rhdrs[i].hdr.Iovlen = 1
	}
	return m, nil
}

// ReadBatch implements batchIO: one recvmmsg call per wakeup, blocking (via
// the runtime poller) until at least one datagram is available.
func (m *mmsgIO) ReadBatch() (int, error) {
	var (
		count int
		errno syscall.Errno
	)
	err := m.rc.Read(func(fd uintptr) bool {
		for {
			// The kernel overwrites Namelen with the actual source-address
			// size on each receive; reset it before reusing the headers.
			for i := range m.rhdrs {
				m.rhdrs[i].hdr.Namelen = syscall.SizeofSockaddrAny
			}
			r1, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&m.rhdrs[0])), uintptr(len(m.rhdrs)),
				0, 0, 0)
			switch e {
			case 0:
				count = int(r1)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // runtime poller waits for readability
			default:
				errno = e
				return true
			}
		}
	})
	if err != nil {
		return 0, err // socket closed
	}
	if errno != 0 {
		return 0, errno
	}
	return count, nil
}

// Frame implements batchIO: received datagram i, header included, aliasing
// the staging buffer until the next ReadBatch.
func (m *mmsgIO) Frame(i int) []byte { return m.rbufs[i][:m.rhdrs[i].len] }

// SrcMatches implements batchIO without materializing a net.UDPAddr per
// datagram: the raw source sockaddr is compared in place (net.IP.Equal
// handles the IPv4-in-IPv6 mapped forms both ways).
func (m *mmsgIO) SrcMatches(i int, addr *net.UDPAddr) bool {
	sa := &m.rnames[i]
	switch sa.Addr.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		return int(p[0])<<8|int(p[1]) == addr.Port && net.IP(sa4.Addr[:]).Equal(addr.IP)
	case syscall.AF_INET6:
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa6.Port))
		return int(p[0])<<8|int(p[1]) == addr.Port && net.IP(sa6.Addr[:]).Equal(addr.IP)
	}
	return false
}

// WriteBatch implements batchIO: the frames leave in order through as few
// sendmmsg calls as the socket's write buffer allows. Per-datagram errors
// (unreachable destinations and the like) skip that datagram and press on —
// losing a datagram is normal UDP behaviour, exactly as the portable path
// ignores WriteToUDP errors.
func (m *mmsgIO) WriteBatch(items []outDatagram) {
	for len(items) > 0 {
		chunk := items
		if len(chunk) > len(m.shdrs) {
			chunk = chunk[:len(m.shdrs)]
		}
		items = items[len(chunk):]
		k := 0
		for i := range chunk {
			frame := chunk[i].frame()
			if len(frame) == 0 {
				continue
			}
			namelen := m.putSockaddr(&m.snames[k], chunk[i].addr)
			if namelen == 0 {
				continue // destination unrepresentable on this socket family
			}
			m.siov[k].Base = &frame[0]
			m.siov[k].SetLen(len(frame))
			m.shdrs[k].hdr.Name = (*byte)(unsafe.Pointer(&m.snames[k]))
			m.shdrs[k].hdr.Namelen = namelen
			m.shdrs[k].hdr.Iov = &m.siov[k]
			m.shdrs[k].hdr.Iovlen = 1
			k++
		}
		sent := 0
		m.rc.Write(func(fd uintptr) bool {
			for sent < k {
				r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
					uintptr(unsafe.Pointer(&m.shdrs[sent])), uintptr(k-sent),
					0, 0, 0)
				switch e {
				case 0:
					sent += int(r1)
				case syscall.EINTR:
					continue
				case syscall.EAGAIN:
					return false // wait for writability, then resume
				default:
					sent++ // skip the failing head datagram
				}
			}
			return true
		})
	}
}

// putSockaddr encodes addr into sa in the socket's address family,
// returning the sockaddr length (0 if the address cannot be sent from this
// socket). IPv4 destinations on a dual-stack socket use the v4-mapped form,
// as the net package does.
func (m *mmsgIO) putSockaddr(sa *syscall.RawSockaddrAny, addr *net.UDPAddr) uint32 {
	if !m.ipv6 {
		ip4 := addr.IP.To4()
		if ip4 == nil {
			return 0
		}
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		copy(sa4.Addr[:], ip4)
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		p[0], p[1] = byte(addr.Port>>8), byte(addr.Port)
		return syscall.SizeofSockaddrInet4
	}
	ip16 := addr.IP.To16()
	if ip16 == nil {
		return 0
	}
	sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
	*sa6 = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	copy(sa6.Addr[:], ip16)
	p := (*[2]byte)(unsafe.Pointer(&sa6.Port))
	p[0], p[1] = byte(addr.Port>>8), byte(addr.Port)
	return syscall.SizeofSockaddrInet6
}

package udpnet

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/wire"
)

// countingHandler counts deliveries without retaining anything — the
// receive-side cost it adds to the benchmark is one atomic add.
type countingHandler struct {
	n atomic.Int64
}

func (c *countingHandler) Start(env.Runtime)                 {}
func (c *countingHandler) Stop()                             {}
func (c *countingHandler) Receive(wire.NodeID, wire.Message) { c.n.Add(1) }

// BenchmarkUDPLoopbackSaturation drives b.N small gossip datagrams through
// a sender node to a receiver node over loopback, unthrottled, and reports
// throughput (pps) and allocations per datagram for the batched-syscall
// path versus the portable single-syscall path:
//
//	go test -bench UDPLoopbackSaturation -benchtime 2s -run '^$' ./internal/udpnet
//
// The sender enqueues from the benchmark goroutine through the same pooled
// encode path the runtime uses (nodeRuntime.Send under the node mutex), so
// the measured allocs/op include the full marshal→pace→syscall→decode→
// dispatch pipeline on both sides.
func BenchmarkUDPLoopbackSaturation(b *testing.B) {
	for _, bc := range []struct {
		name    string
		disable bool
	}{
		{"batch", false},
		{"single", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			recv := &countingHandler{}
			dst, err := NewNode(1, recv, Config{Seed: 41, DisableBatch: bc.disable})
			if err != nil {
				b.Fatal(err)
			}
			defer dst.Close()
			src, err := NewNode(0, &collector{}, Config{Seed: 42, DisableBatch: bc.disable, QueueCap: 4096})
			if err != nil {
				b.Fatal(err)
			}
			defer src.Close()
			peers := map[wire.NodeID]*net.UDPAddr{0: src.Addr(), 1: dst.Addr()}
			src.SetPeers(peers)
			dst.SetPeers(peers)
			if err := dst.Start(); err != nil {
				b.Fatal(err)
			}
			if err := src.Start(); err != nil {
				b.Fatal(err)
			}

			msg := &wire.Propose{Stream: 1, IDs: []wire.PacketID{1, 2, 3, 4, 5, 6, 7, 8}}
			rt := &nodeRuntime{n: src}
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			// Bound the in-flight window so the benchmark measures sustainable
			// pipeline throughput: an unchecked sender overruns the receiver's
			// socket buffer (especially on the single-syscall path, which pays
			// one wakeup per datagram) and kernel drops would turn the result
			// into a loss measurement instead.
			const window = 2048
			for i := 0; i < b.N; i++ {
				// Send under the node mutex, as handler callbacks do.
				src.mu.Lock()
				rt.Send(1, msg)
				src.mu.Unlock()
				if (i+1)%512 == 0 {
					limit := time.Now().Add(time.Second)
					for recv.n.Load() < int64(i+1-window) && time.Now().Before(limit) {
						time.Sleep(50 * time.Microsecond)
					}
				}
			}
			// Wait for the tail to land. Loopback can still shed a stray
			// fraction of a percent under pressure, so stop when arrivals
			// stall rather than insisting on 100% — and measure elapsed at
			// the last arrival so a trailing stall window does not dilute
			// the throughput number.
			last, lastChange := recv.n.Load(), time.Now()
			deadline := time.Now().Add(10 * time.Second)
			for last < int64(b.N) && time.Since(lastChange) < 500*time.Millisecond &&
				time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
				if cur := recv.n.Load(); cur != last {
					last, lastChange = cur, time.Now()
				}
			}
			elapsed := lastChange.Sub(start)
			b.StopTimer()
			received := recv.n.Load()
			b.ReportMetric(float64(received)/elapsed.Seconds(), "pps")
			b.ReportMetric(float64(received)/float64(b.N)*100, "delivered%")
			if received < int64(b.N)*9/10 {
				b.Fatalf("only %d of %d datagrams delivered", received, b.N)
			}
		})
	}
}

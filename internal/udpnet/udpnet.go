// Package udpnet runs the same protocol handlers that the simulator drives
// (internal/env.Handler) over real UDP sockets, the transport the paper's
// system uses: gossip targets change constantly and messages are small, so
// datagrams fit better than connections (§3.1), combined with
// application-level retransmission and upload throttling.
//
// Each datagram carries a 4-byte sender id followed by one wire message.
// A Node serializes all handler callbacks (socket reads, timers) behind one
// mutex, honoring the env contract that handlers are single-threaded.
package udpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/env"
	"repro/internal/ratelimit"
	"repro/internal/wire"
)

// maxDatagram bounds receive buffers. Serve batches can exceed an Ethernet
// MTU; loopback and most paths handle fragmentation, and the paper's packet
// size (1316 B) keeps single-packet serves under the MTU.
const maxDatagram = 64 * 1024

// frameHeader is the per-datagram overhead: the 4-byte sender id.
const frameHeader = 4

// Config parameterizes a UDP node.
type Config struct {
	// Listen is the UDP listen address, e.g. "127.0.0.1:0".
	Listen string
	// UploadBps throttles outgoing bandwidth (token bucket + app-level
	// queue, §3.1). 0 means unthrottled.
	UploadBps int64
	// QueueCap bounds the application-level send queue. Default 1024.
	QueueCap int
	// Seed drives the node's protocol randomness.
	Seed int64
}

type outDatagram struct {
	buf  []byte
	addr *net.UDPAddr
}

// Node hosts one protocol stack (an env.Handler, typically an env.Mux) on a
// real UDP socket and implements env.Runtime for it.
type Node struct {
	id      wire.NodeID
	handler env.Handler
	conn    *net.UDPConn
	sender  *ratelimit.Sender[outDatagram]
	epoch   time.Time

	mu      sync.Mutex // serializes handler callbacks and guards the fields below
	rng     *rand.Rand
	peers   map[wire.NodeID]*net.UDPAddr
	byAddr  map[string]wire.NodeID
	started bool
	closed  bool

	wg sync.WaitGroup

	// DecodeErrors counts datagrams that failed to parse.
	DecodeErrors int
}

var _ env.Runtime = (*nodeRuntime)(nil)

// NewNode binds a socket and prepares the node. Call SetPeers and Start
// before traffic flows.
func NewNode(id wire.NodeID, handler env.Handler, cfg Config) (*Node, error) {
	if handler == nil {
		return nil, errors.New("udpnet: nil handler")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 1024
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("udpnet: resolve %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %q: %w", cfg.Listen, err)
	}
	n := &Node{
		id:      id,
		handler: handler,
		conn:    conn,
		epoch:   time.Now(),
		rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(id)<<32 ^ 0x7ee1)),
		peers:   make(map[wire.NodeID]*net.UDPAddr),
		byAddr:  make(map[string]wire.NodeID),
	}
	sender, err := ratelimit.NewSender(cfg.UploadBps, cfg.QueueCap,
		func(d outDatagram) int { return len(d.buf) + wire.UDPOverheadBytes },
		func(d outDatagram) {
			// Losing a datagram is normal UDP behaviour; protocols handle it.
			_, _ = n.conn.WriteToUDP(d.buf, d.addr)
		})
	if err != nil {
		conn.Close()
		return nil, err
	}
	n.sender = sender
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() wire.NodeID { return n.id }

// Addr returns the bound UDP address.
func (n *Node) Addr() *net.UDPAddr { return n.conn.LocalAddr().(*net.UDPAddr) }

// SetPeers installs the address directory (replacing any previous one).
func (n *Node) SetPeers(peers map[wire.NodeID]*net.UDPAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = make(map[wire.NodeID]*net.UDPAddr, len(peers))
	n.byAddr = make(map[string]wire.NodeID, len(peers))
	for id, addr := range peers {
		n.peers[id] = addr
		n.byAddr[addr.String()] = id
	}
}

// AddPeer registers one peer address.
func (n *Node) AddPeer(id wire.NodeID, addr *net.UDPAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = addr
	n.byAddr[addr.String()] = id
}

// Start launches the read loop and starts the handler. It must be called at
// most once.
func (n *Node) Start() error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return errors.New("udpnet: already started")
	}
	n.started = true
	n.handler.Start(&nodeRuntime{n: n})
	n.mu.Unlock()

	n.wg.Add(1)
	go n.readLoop()
	return nil
}

// Close stops the node: the socket is closed, the read loop exits, the
// handler is stopped, and the paced sender is shut down. Idempotent.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()

	n.conn.Close() // unblocks the read loop
	n.wg.Wait()
	n.sender.Close()

	n.mu.Lock()
	if n.started {
		n.handler.Stop()
	}
	n.mu.Unlock()
}

// Execute runs fn in the node's execution context (serialized with all
// handler callbacks), so external code can safely touch handler state —
// views, estimators, statistics. It reports false if the node is closed.
func (n *Node) Execute(fn func()) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	fn()
	return true
}

func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		size, from, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if size < frameHeader {
			n.noteDecodeError()
			continue
		}
		senderID := wire.NodeID(int32(binary.BigEndian.Uint32(buf[:4])))
		// Decoded messages alias their input (payloads are sub-slices), so
		// each datagram needs its own copy — the read buffer is reused.
		body := make([]byte, size-frameHeader)
		copy(body, buf[frameHeader:size])
		msg, err := wire.Unmarshal(body)
		if err != nil {
			n.noteDecodeError()
			continue
		}
		n.mu.Lock()
		if !n.closed {
			// Verify the claimed sender against the source address when we
			// know it; unknown peers are accepted (late directory updates).
			if known, ok := n.peers[senderID]; !ok || sameAddr(known, from) {
				n.handler.Receive(senderID, msg)
			}
		}
		n.mu.Unlock()
	}
}

func sameAddr(a, b *net.UDPAddr) bool {
	return a.Port == b.Port && a.IP.Equal(b.IP)
}

func (n *Node) noteDecodeError() {
	n.mu.Lock()
	n.DecodeErrors++
	n.mu.Unlock()
}

// nodeRuntime implements env.Runtime over the node.
type nodeRuntime struct {
	n *Node
}

func (rt *nodeRuntime) ID() wire.NodeID    { return rt.n.id }
func (rt *nodeRuntime) Now() time.Duration { return time.Since(rt.n.epoch) }

// Rand implements env.Runtime. It is only called from handler callbacks,
// which hold the node mutex, so the shared rng is safe.
func (rt *nodeRuntime) Rand() *rand.Rand { return rt.n.rng }

// Send implements env.Runtime: marshal, frame, and hand to the paced sender.
// Unknown destinations are dropped silently (UDP semantics).
func (rt *nodeRuntime) Send(to wire.NodeID, m wire.Message) {
	addr, ok := rt.n.peers[to]
	if !ok {
		return
	}
	buf := make([]byte, frameHeader, frameHeader+m.WireSize())
	binary.BigEndian.PutUint32(buf, uint32(rt.n.id))
	buf = m.MarshalBinary(buf)
	rt.n.sender.Enqueue(outDatagram{buf: buf, addr: addr})
}

// After implements env.Runtime with a wall-clock timer whose callback runs
// under the node mutex.
func (rt *nodeRuntime) After(d time.Duration, fn func()) env.Timer {
	n := rt.n
	t := time.AfterFunc(d, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.closed {
			return
		}
		fn()
	})
	return wallTimer{t}
}

type wallTimer struct {
	t *time.Timer
}

func (w wallTimer) Stop() bool { return w.t.Stop() }

// AfterFunc implements env.Runtime: After without the cancel handle.
func (rt *nodeRuntime) AfterFunc(d time.Duration, fn func()) {
	rt.After(d, fn)
}

// Package udpnet runs the same protocol handlers that the simulator drives
// (internal/env.Handler) over real UDP sockets, the transport the paper's
// system uses: gossip targets change constantly and messages are small, so
// datagrams fit better than connections (§3.1), combined with
// application-level retransmission and upload throttling.
//
// Each datagram carries a 4-byte sender id followed by one wire message.
// A Node serializes all handler callbacks (socket reads, timers) behind one
// mutex, honoring the env contract that handlers are single-threaded.
//
// # Batched-syscall fast path
//
// On Linux the node amortizes syscalls across datagrams: the paced sender
// drains every item the pacing clock has released into one sendmmsg(2), and
// the read loop pulls up to a batch of datagrams per recvmmsg(2) into a
// free list of reusable staging buffers (decoded bodies are copied into one
// arena allocation per batch — handlers may retain payloads, so the staging
// buffers themselves are never handed off). Encode-path buffers are pooled
// and returned after the kernel copy completes. Everywhere else — and on
// Linux under Config.DisableBatch — the portable fallback issues one
// syscall per datagram, with identical delivery and accounting semantics;
// see batch_linux.go / batch_fallback.go for the build-tag split.
package udpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/env"
	"repro/internal/netem"
	"repro/internal/ratelimit"
	"repro/internal/wire"
)

// maxDatagram bounds receive buffers. Serve batches can exceed an Ethernet
// MTU; loopback and most paths handle fragmentation, and the paper's packet
// size (1316 B) keeps single-packet serves under the MTU.
const maxDatagram = 64 * 1024

// frameHeader is the per-datagram overhead: the 4-byte sender id.
const frameHeader = 4

// ioBatchMax is K, the batched-syscall fan-in: at most this many datagrams
// ride one sendmmsg/recvmmsg call, and the paced sender coalesces at most
// this many released items per flush.
const ioBatchMax = 32

// defaultSocketBuffer is the SO_RCVBUF/SO_SNDBUF request applied at bind
// when Config.SocketBufferBytes is zero. The kernel-default rmem (a few
// hundred KiB) silently drops inbound datagrams under bursts well below a
// node's configured capability, which reads as network loss in experiments.
const defaultSocketBuffer = 1 << 20

// Config parameterizes a UDP node.
type Config struct {
	// Listen is the UDP listen address, e.g. "127.0.0.1:0".
	Listen string
	// UploadBps throttles outgoing bandwidth (token bucket + app-level
	// queue, §3.1). 0 means unthrottled.
	UploadBps int64
	// QueueCap bounds the application-level send queue. Default 1024.
	QueueCap int
	// SocketBufferBytes sizes the kernel socket buffers (SO_RCVBUF and
	// SO_SNDBUF) at bind. 0 selects the 1 MiB default; negative leaves the
	// kernel defaults untouched.
	SocketBufferBytes int
	// DisableBatch forces the portable single-syscall I/O path even where
	// batched syscalls (sendmmsg/recvmmsg) are available. The two paths
	// deliver identically; this knob exists for benchmarks comparing them
	// and for diagnosing platform quirks.
	DisableBatch bool
	// Seed drives the node's protocol randomness.
	Seed int64
	// Epoch is the time base for Runtime.Now (and therefore for packet lag
	// stamps and netem schedules). Zero means the node's own start time.
	// Give every node of a deployment the same epoch so that lag
	// measurements share a clock and schedule-driven netem models
	// (partitions, spikes) open and heal their windows simultaneously on
	// all nodes regardless of start order.
	Epoch time.Time
	// Netem, if non-nil, intercepts every outbound datagram before the
	// paced sender — the same transmit-time consultation point as the
	// simulator, so per-sender model state (Gilbert-Elliott uplink chains)
	// behaves identically on sockets: this node's bursts clump across all
	// its receivers. The verdict drops the datagram or defers its enqueue
	// by the extra delay (a tc-netem qdisc in front of the device). The
	// model runs in the node's execution context and needs no internal
	// locking.
	Netem netem.Model
}

// outDatagram is one frame awaiting paced transmission. buf points at
// pooled storage: whoever removes the datagram from flight — the flush
// after the kernel copy, or any drop path — returns it via putSendBuf.
type outDatagram struct {
	buf  *[]byte
	addr *net.UDPAddr
}

func (d outDatagram) frame() []byte { return *d.buf }

// sendBufPool recycles encode-path frame buffers. Buffers grow to fit large
// serve batches and keep their capacity across uses.
var sendBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

func getSendBuf() *[]byte  { return sendBufPool.Get().(*[]byte) }
func putSendBuf(b *[]byte) { sendBufPool.Put(b) }

// batchIO is the platform batched-syscall interface; newBatchIO (see the
// build-tagged batch files) returns nil where only the portable
// one-datagram-per-syscall path exists.
type batchIO interface {
	// WriteBatch transmits the frames in order, blocking on socket
	// writability as needed. Per-datagram errors are UDP-normal and
	// swallowed, like WriteToUDP's on the fallback path.
	WriteBatch(items []outDatagram)
	// ReadBatch blocks until at least one datagram arrives and returns how
	// many were received. The frames are valid until the next ReadBatch.
	ReadBatch() (int, error)
	// Frame returns received datagram i (header included).
	Frame(i int) []byte
	// SrcMatches reports whether datagram i's source address equals addr.
	SrcMatches(i int, addr *net.UDPAddr) bool
}

// Node hosts one protocol stack (an env.Handler, typically an env.Mux) on a
// real UDP socket and implements env.Runtime for it.
type Node struct {
	id      wire.NodeID
	handler env.Handler
	conn    *net.UDPConn
	bio     batchIO // nil: portable single-syscall path
	sender  *ratelimit.Sender[outDatagram]
	epoch   time.Time

	mu      sync.Mutex // serializes handler callbacks and guards the fields below
	rng     *rand.Rand
	peers   map[wire.NodeID]*net.UDPAddr
	byAddr  map[string]wire.NodeID
	netem   netem.Model
	started bool
	closed  bool

	wg sync.WaitGroup

	// DecodeErrors counts datagrams that failed to parse.
	DecodeErrors int
	// NetemDropped / NetemDelayed count outbound datagrams the netem model
	// dropped or deferred. Guarded by mu, like DecodeErrors.
	NetemDropped int
	NetemDelayed int
}

var _ env.Runtime = (*nodeRuntime)(nil)

// NewNode binds a socket and prepares the node. Call SetPeers and Start
// before traffic flows.
func NewNode(id wire.NodeID, handler env.Handler, cfg Config) (*Node, error) {
	if handler == nil {
		return nil, errors.New("udpnet: nil handler")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 1024
	}
	if cfg.SocketBufferBytes == 0 {
		cfg.SocketBufferBytes = defaultSocketBuffer
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("udpnet: resolve %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %q: %w", cfg.Listen, err)
	}
	if cfg.SocketBufferBytes > 0 {
		// The kernel clamps oversized requests (rmem_max/wmem_max) without
		// erroring; real errors here mean a broken socket.
		if err := conn.SetReadBuffer(cfg.SocketBufferBytes); err != nil {
			conn.Close()
			return nil, fmt.Errorf("udpnet: SO_RCVBUF: %w", err)
		}
		if err := conn.SetWriteBuffer(cfg.SocketBufferBytes); err != nil {
			conn.Close()
			return nil, fmt.Errorf("udpnet: SO_SNDBUF: %w", err)
		}
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Now()
	}
	n := &Node{
		id:      id,
		handler: handler,
		conn:    conn,
		epoch:   cfg.Epoch,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(id)<<32 ^ 0x7ee1)),
		peers:   make(map[wire.NodeID]*net.UDPAddr),
		byAddr:  make(map[string]wire.NodeID),
		netem:   cfg.Netem,
	}
	if !cfg.DisableBatch {
		// A nil batchIO (non-Linux platforms, or an exotic socket without a
		// raw-syscall view) selects the portable path.
		if bio, err := newBatchIO(conn); err == nil {
			n.bio = bio
		}
	}
	batchMax := 1
	if n.bio != nil {
		batchMax = ioBatchMax
	}
	sender, err := ratelimit.NewBatchSender(cfg.UploadBps, cfg.QueueCap, batchMax,
		func(d outDatagram) int { return len(d.frame()) + wire.UDPOverheadBytes },
		n.flushBatch)
	if err != nil {
		conn.Close()
		return nil, err
	}
	n.sender = sender
	return n, nil
}

// flushBatch transmits one paced batch and returns the frame buffers to the
// pool — the kernel has copied the data out by the time the syscall returns.
func (n *Node) flushBatch(items []outDatagram) {
	if n.bio != nil {
		n.bio.WriteBatch(items)
	} else {
		for _, d := range items {
			// Losing a datagram is normal UDP behaviour; protocols handle it.
			_, _ = n.conn.WriteToUDP(d.frame(), d.addr)
		}
	}
	for i := range items {
		putSendBuf(items[i].buf)
		items[i].buf = nil
	}
}

// ID returns the node's identity.
func (n *Node) ID() wire.NodeID { return n.id }

// Addr returns the bound UDP address.
func (n *Node) Addr() *net.UDPAddr { return n.conn.LocalAddr().(*net.UDPAddr) }

// SetPeers installs the address directory (replacing any previous one).
func (n *Node) SetPeers(peers map[wire.NodeID]*net.UDPAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = make(map[wire.NodeID]*net.UDPAddr, len(peers))
	n.byAddr = make(map[string]wire.NodeID, len(peers))
	for id, addr := range peers {
		n.peers[id] = addr
		n.byAddr[addr.String()] = id
	}
}

// AddPeer registers one peer address.
func (n *Node) AddPeer(id wire.NodeID, addr *net.UDPAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = addr
	n.byAddr[addr.String()] = id
}

// Start launches the read loop and starts the handler. It must be called at
// most once.
func (n *Node) Start() error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return errors.New("udpnet: already started")
	}
	n.started = true
	n.handler.Start(&nodeRuntime{n: n})
	n.mu.Unlock()

	n.wg.Add(1)
	go n.readLoop()
	return nil
}

// Close stops the node: the socket is closed, the read loop exits, the
// handler is stopped, and the paced sender is shut down. Idempotent.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()

	n.conn.Close() // unblocks the read loop
	n.wg.Wait()
	n.sender.Close()

	n.mu.Lock()
	if n.started {
		n.handler.Stop()
	}
	n.mu.Unlock()
}

// SetUploadBps rewrites the paced sender's rate mid-run (capability drift,
// netem capability traces). <= 0 means unthrottled; takes effect for
// datagrams paced after the call.
func (n *Node) SetUploadBps(bps int64) { n.sender.SetRate(bps) }

// NetemCounters returns how many outbound datagrams the netem model dropped
// and deferred. Unlike Execute-based reads it stays truthful after Close.
func (n *Node) NetemCounters() (dropped, delayed int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.NetemDropped, n.NetemDelayed
}

// SendDropped returns how many outgoing datagrams the paced sender has
// tail-dropped because its bounded queue was full — the real-socket
// equivalent of the simulator's MsgsTailDrop, and the first symptom of a
// node trying to send past its upload capability. Rejections by a closed
// sender are not counted: they are shutdown, not congestion.
func (n *Node) SendDropped() int64 { return n.sender.Dropped() }

// SendBacklog returns the time the paced sender's queue needs to drain at
// the current rate — the real-socket equivalent of the simulator's
// QueueBacklog, and the congestion signal the adaptation layer watches.
// Zero after Close: discarded items leave the gauge.
func (n *Node) SendBacklog() time.Duration { return n.sender.QueueBacklog() }

// SentBytes returns the monotonic count of bytes actually transmitted
// (UDP overhead included), counted at transmit rather than enqueue.
func (n *Node) SentBytes() int64 { return n.sender.BytesSent() }

// AcceptedBytes returns the monotonic count of bytes accepted into the
// paced sender's queue (enqueue-counted, drops excluded) — the adapt.Sample
// SentBytes convention, matching the simulator's enqueue-side accounting.
func (n *Node) AcceptedBytes() int64 { return n.sender.AcceptedBytes() }

// QueuedBytes returns the bytes accepted for transmission but still waiting
// in the paced sender's queue. Zero after Close.
func (n *Node) QueuedBytes() int64 { return n.sender.QueuedBytes() }

// DecodeErrorCount returns how many inbound datagrams failed to parse.
// Like NetemCounters it stays truthful after Close.
func (n *Node) DecodeErrorCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.DecodeErrors
}

// Collect emits the node's transport counters as named samples — the
// registration surface for a telemetry registry: the paced sender's books
// (udp_ prefix, conservation-checkable; see ratelimit.Sender.Collect) plus
// decode errors and, when a netem model runs, its outbound drop/delay
// counters. Safe from any goroutine and truthful after Close.
func (n *Node) Collect(emit func(name string, value float64)) {
	n.sender.Collect(func(name string, v float64) { emit("udp_"+name, v) })
	n.mu.Lock()
	decode, dropped, delayed := n.DecodeErrors, n.NetemDropped, n.NetemDelayed
	hasNetem := n.netem != nil
	n.mu.Unlock()
	emit("udp_decode_errors_total", float64(decode))
	if hasNetem {
		emit("netem_out_dropped_total", float64(dropped))
		emit("netem_out_delayed_total", float64(delayed))
	}
}

// Attach starts an additional lifecycle-only handler on a running node (one
// that receives no messages, like a stream source: its activity is all
// timers). The handler's Start runs in the node's execution context; its
// timers are silenced by Close like every other callback, but its Stop is
// NOT invoked on Close — attached handlers must tolerate that (env.Handler
// already requires timers to guard themselves). Reports false if the node
// is not started or already closed.
func (n *Node) Attach(h env.Handler) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started || n.closed {
		return false
	}
	h.Start(&nodeRuntime{n: n})
	return true
}

// Execute runs fn in the node's execution context (serialized with all
// handler callbacks), so external code can safely touch handler state —
// views, estimators, statistics. It reports false if the node is closed.
func (n *Node) Execute(fn func()) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	fn()
	return true
}

func (n *Node) readLoop() {
	defer n.wg.Done()
	if n.bio != nil {
		n.readLoopBatch()
		return
	}
	buf := make([]byte, maxDatagram)
	for {
		size, from, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if size < frameHeader {
			n.noteDecodeError()
			continue
		}
		senderID := wire.NodeID(int32(binary.BigEndian.Uint32(buf[:4])))
		// Decoded messages alias their input (payloads are sub-slices), so
		// each datagram needs its own copy — the read buffer is reused.
		body := make([]byte, size-frameHeader)
		copy(body, buf[frameHeader:size])
		msg, err := wire.Unmarshal(body)
		if err != nil {
			n.noteDecodeError()
			continue
		}
		n.mu.Lock()
		if !n.closed {
			// Verify the claimed sender against the source address when we
			// know it; unknown peers are accepted (late directory updates).
			if known, ok := n.peers[senderID]; !ok || sameAddr(known, from) {
				n.handler.Receive(senderID, msg)
			}
		}
		n.mu.Unlock()
	}
}

// readLoopBatch is the recvmmsg read loop: up to ioBatchMax datagrams per
// syscall land in the batchIO's reusable staging buffers; their bodies are
// copied into one arena allocation per batch (decoded messages alias their
// input and handlers may retain payloads, so the staging buffers can never
// be handed off — but one arena replaces one allocation per datagram), then
// every decoded message is dispatched under one node-mutex hold, each
// Receive as serialized as on the portable path.
func (n *Node) readLoopBatch() {
	type inMsg struct {
		sender wire.NodeID
		msg    wire.Message
		src    int // staging index, for the source-address check
	}
	msgs := make([]inMsg, 0, ioBatchMax)
	for {
		count, err := n.bio.ReadBatch()
		if err != nil {
			return // closed
		}
		total := 0
		for i := 0; i < count; i++ {
			if f := n.bio.Frame(i); len(f) >= frameHeader {
				total += len(f) - frameHeader
			}
		}
		arena := make([]byte, 0, total)
		msgs = msgs[:0]
		badFrames := 0
		for i := 0; i < count; i++ {
			f := n.bio.Frame(i)
			if len(f) < frameHeader {
				badFrames++
				continue
			}
			start := len(arena)
			arena = append(arena, f[frameHeader:]...)
			body := arena[start:len(arena):len(arena)]
			msg, err := wire.Unmarshal(body)
			if err != nil {
				badFrames++
				continue
			}
			msgs = append(msgs, inMsg{
				sender: wire.NodeID(int32(binary.BigEndian.Uint32(f))),
				msg:    msg,
				src:    i,
			})
		}
		n.mu.Lock()
		n.DecodeErrors += badFrames
		if !n.closed {
			for _, im := range msgs {
				// Same acceptance rule as the portable path: verify claimed
				// senders we know, accept unknown ones (late directory
				// updates).
				if known, ok := n.peers[im.sender]; !ok || n.bio.SrcMatches(im.src, known) {
					n.handler.Receive(im.sender, im.msg)
				}
			}
		}
		n.mu.Unlock()
	}
}

func sameAddr(a, b *net.UDPAddr) bool {
	return a.Port == b.Port && a.IP.Equal(b.IP)
}

func (n *Node) noteDecodeError() {
	n.mu.Lock()
	n.DecodeErrors++
	n.mu.Unlock()
}

// nodeRuntime implements env.Runtime over the node.
type nodeRuntime struct {
	n *Node
}

func (rt *nodeRuntime) ID() wire.NodeID    { return rt.n.id }
func (rt *nodeRuntime) Now() time.Duration { return time.Since(rt.n.epoch) }

// Rand implements env.Runtime. It is only called from handler callbacks,
// which hold the node mutex, so the shared rng is safe.
func (rt *nodeRuntime) Rand() *rand.Rand { return rt.n.rng }

// Send implements env.Runtime: marshal into a pooled frame buffer, pass the
// netem interceptor (if any), and hand to the paced sender. Unknown
// destinations are dropped silently (UDP semantics). Every drop path
// returns the buffer to the pool; accepted frames are returned by the flush
// once the kernel copy completes.
func (rt *nodeRuntime) Send(to wire.NodeID, m wire.Message) {
	n := rt.n
	addr, ok := n.peers[to]
	if !ok {
		return
	}
	bp := getSendBuf()
	buf := append((*bp)[:0], 0, 0, 0, 0)
	binary.BigEndian.PutUint32(buf, uint32(n.id))
	buf = m.MarshalBinary(buf)
	*bp = buf // keep any growth for reuse
	d := outDatagram{buf: bp, addr: addr}
	if n.netem != nil {
		// Send runs in the node's execution context (under mu), so the
		// model and rng need no extra locking — the same single-threaded
		// contract the simulator gives its models. The judged size matches
		// the simulator's: wire size plus UDP/IP overhead, no frame header.
		verdict := n.netem.Judge(n.id, to, len(buf)-frameHeader+wire.UDPOverheadBytes,
			time.Since(n.epoch), n.rng)
		switch {
		case verdict.Drop:
			n.NetemDropped++
			putSendBuf(bp)
			return
		case verdict.Delay > 0:
			n.NetemDelayed++
			time.AfterFunc(verdict.Delay, func() {
				// Delayed datagrams still in flight when the node closes
				// are discarded here rather than hitting the closed sender,
				// which would count them as queue-overflow drops and
				// pollute the SendDropped congestion signal. The check and
				// the (non-blocking) enqueue stay under one mu hold so a
				// concurrent Close cannot slip between them.
				n.mu.Lock()
				if n.closed || !n.sender.Enqueue(d) {
					putSendBuf(bp)
				}
				n.mu.Unlock()
			})
			return
		}
	}
	if !n.sender.Enqueue(d) {
		putSendBuf(bp)
	}
}

// After implements env.Runtime with a wall-clock timer whose callback runs
// under the node mutex.
func (rt *nodeRuntime) After(d time.Duration, fn func()) env.Timer {
	n := rt.n
	t := time.AfterFunc(d, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.closed {
			return
		}
		fn()
	})
	return wallTimer{t}
}

type wallTimer struct {
	t *time.Timer
}

func (w wallTimer) Stop() bool { return w.t.Stop() }

// AfterFunc implements env.Runtime: After without the cancel handle.
func (rt *nodeRuntime) AfterFunc(d time.Duration, fn func()) {
	rt.After(d, fn)
}

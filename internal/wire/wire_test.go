package wire

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	buf := Marshal(m)
	if len(buf) != m.WireSize() {
		t.Fatalf("%s: Marshal produced %d bytes, WireSize says %d", m.Kind(), len(buf), m.WireSize())
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("%s: Unmarshal: %v", m.Kind(), err)
	}
	return out
}

func TestProposeRoundTrip(t *testing.T) {
	cases := []*Propose{
		{IDs: nil},
		{IDs: []PacketID{0}},
		{IDs: []PacketID{1, 2, 3, math.MaxUint64}},
		{IDs: make([]PacketID, 100)},
	}
	for _, m := range cases {
		got := roundTrip(t, m).(*Propose)
		if len(got.IDs) != len(m.IDs) {
			t.Fatalf("id count mismatch: got %d want %d", len(got.IDs), len(m.IDs))
		}
		for i := range m.IDs {
			if got.IDs[i] != m.IDs[i] {
				t.Fatalf("id %d mismatch", i)
			}
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	m := &Request{IDs: []PacketID{42, 7, 9999999}}
	got := roundTrip(t, m).(*Request)
	if !reflect.DeepEqual(got.IDs, m.IDs) {
		t.Fatalf("got %v want %v", got.IDs, m.IDs)
	}
}

func TestServeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 1316)
	rng.Read(payload)
	m := &Serve{Events: []Event{
		{ID: 1, Stamp: 123456789, Payload: payload},
		{ID: 2, Stamp: -5, Payload: []byte{}},
		{ID: math.MaxUint64, Stamp: math.MaxInt64, Payload: []byte{1, 2, 3}},
	}}
	got := roundTrip(t, m).(*Serve)
	if len(got.Events) != 3 {
		t.Fatalf("event count = %d, want 3", len(got.Events))
	}
	for i, e := range m.Events {
		g := got.Events[i]
		if g.ID != e.ID || g.Stamp != e.Stamp || !bytes.Equal(g.Payload, e.Payload) {
			t.Fatalf("event %d mismatch: got %+v", i, g)
		}
	}
}

func TestServeEmptyPayloadVsNil(t *testing.T) {
	m := &Serve{Events: []Event{{ID: 9, Stamp: 1, Payload: nil}}}
	got := roundTrip(t, m).(*Serve)
	if len(got.Events[0].Payload) != 0 {
		t.Fatal("nil payload should decode as empty")
	}
}

func TestAggregateRoundTrip(t *testing.T) {
	m := &Aggregate{Entries: []CapEntry{
		{Node: 0, CapKbps: 512, AgeMs: 0},
		{Node: 269, CapKbps: 3000, AgeMs: 4999},
		{Node: NodeNone, CapKbps: math.MaxUint32, AgeMs: math.MaxUint32},
	}}
	got := roundTrip(t, m).(*Aggregate)
	if !reflect.DeepEqual(got.Entries, m.Entries) {
		t.Fatalf("got %+v want %+v", got.Entries, m.Entries)
	}
}

func TestShuffleRoundTrip(t *testing.T) {
	req := &ShuffleReq{Descriptors: []PeerDescriptor{{Node: 3, Age: 0}, {Node: 9, Age: 65535}}}
	gotReq := roundTrip(t, req).(*ShuffleReq)
	if !reflect.DeepEqual(gotReq.Descriptors, req.Descriptors) {
		t.Fatalf("req: got %+v", gotReq.Descriptors)
	}
	rep := &ShuffleReply{Descriptors: []PeerDescriptor{{Node: 100, Age: 7}}}
	gotRep := roundTrip(t, rep).(*ShuffleReply)
	if !reflect.DeepEqual(gotRep.Descriptors, rep.Descriptors) {
		t.Fatalf("reply: got %+v", gotRep.Descriptors)
	}
}

func TestAvgRoundTrip(t *testing.T) {
	push := &AvgPush{Value: 3.14159, Weight: 0.5}
	gotPush := roundTrip(t, push).(*AvgPush)
	if gotPush.Value != push.Value || gotPush.Weight != push.Weight {
		t.Fatalf("push: got %+v", gotPush)
	}
	reply := &AvgReply{Value: -1e300, Weight: math.SmallestNonzeroFloat64}
	gotReply := roundTrip(t, reply).(*AvgReply)
	if gotReply.Value != reply.Value || gotReply.Weight != reply.Weight {
		t.Fatalf("reply: got %+v", gotReply)
	}
}

func TestWireSizeMatchesMarshalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	check := func(gen func(r *rand.Rand) Message) {
		t.Helper()
		if err := quick.Check(func(seed int64) bool {
			m := gen(rand.New(rand.NewSource(seed)))
			return len(Marshal(m)) == m.WireSize()
		}, cfg); err != nil {
			t.Error(err)
		}
	}
	check(func(r *rand.Rand) Message {
		ids := make([]PacketID, r.Intn(50))
		for i := range ids {
			ids[i] = PacketID(r.Uint64())
		}
		return &Propose{IDs: ids}
	})
	check(func(r *rand.Rand) Message {
		evs := make([]Event, r.Intn(5))
		for i := range evs {
			p := make([]byte, r.Intn(1500))
			r.Read(p)
			evs[i] = Event{ID: PacketID(r.Uint64()), Stamp: r.Int63(), Payload: p}
		}
		return &Serve{Events: evs}
	})
	check(func(r *rand.Rand) Message {
		entries := make([]CapEntry, r.Intn(20))
		for i := range entries {
			entries[i] = CapEntry{Node: NodeID(r.Int31()), CapKbps: r.Uint32(), AgeMs: r.Uint32()}
		}
		return &Aggregate{Entries: entries}
	})
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                               // kind 0 unknown
		{99},                              // unknown kind
		{1},                               // Propose with no count
		{1, 0},                            // Propose with half a count
		{1, 0, 2, 0, 0, 0, 0, 0, 0, 0, 1}, // claims 2 ids, has 1
		{3, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1}, // Serve event truncated
		{7, 1, 2, 3},                      // AvgPush truncated
	}
	for i, buf := range cases {
		if _, err := Unmarshal(buf); err == nil {
			t.Errorf("case %d: Unmarshal(%v) succeeded, want error", i, buf)
		}
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	buf := Marshal(&Propose{IDs: []PacketID{1}})
	buf = append(buf, 0xde, 0xad)
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUnmarshalFuzzNoPanics(t *testing.T) {
	// Random byte soup must never panic, only return errors (or decode).
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		if n > 0 {
			buf[0] = byte(1 + rng.Intn(10)) // bias toward valid kinds
		}
		_, _ = Unmarshal(buf) // must not panic
	}
}

func TestMarshalMutationRoundTrip(t *testing.T) {
	// Flip each byte of a valid encoding: decoder must never panic and the
	// result must either error or decode to *some* message.
	m := &Serve{Events: []Event{{ID: 7, Stamp: 99, Payload: []byte("hello world")}}}
	orig := Marshal(m)
	for i := range orig {
		for _, delta := range []byte{1, 0x80, 0xff} {
			buf := append([]byte(nil), orig...)
			buf[i] ^= delta
			_, _ = Unmarshal(buf) // must not panic
		}
	}
}

func TestPaperProposeSize(t *testing.T) {
	// §3.1: ~11.26 packet ids per propose. Sanity-check the message is small
	// relative to the stream payload, as assumed by HEAP's analysis.
	m := &Propose{IDs: make([]PacketID, 11)}
	if m.WireSize() >= 200 {
		t.Fatalf("11-id propose is %d bytes; expected well under 200", m.WireSize())
	}
	serve := &Serve{Events: []Event{{Payload: make([]byte, 1316)}}}
	if m.WireSize()*5 > serve.WireSize() {
		t.Fatalf("propose (%dB) not small vs serve (%dB)", m.WireSize(), serve.WireSize())
	}
}

func TestAggregateSizeMatchesPaperBudget(t *testing.T) {
	// §3.1: gossiping the 10 freshest capabilities every 200 ms costs
	// ~1 KB/s. One message with 10 entries must therefore be ~200 bytes or
	// less (5 msgs/s incl. 28B UDP overhead).
	m := &Aggregate{Entries: make([]CapEntry, 10)}
	perSecond := 5 * (m.WireSize() + UDPOverheadBytes)
	if perSecond > 1024 {
		t.Fatalf("aggregation costs %d B/s, paper budget is ~1 KB/s", perSecond)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindPropose, KindRequest, KindServe, KindAggregate,
		KindShuffleReq, KindShuffleReply, KindAvgPush, KindAvgReply, Kind(200)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", k)
		}
	}
}

func BenchmarkMarshalServe(b *testing.B) {
	payload := make([]byte, 1316)
	m := &Serve{Events: []Event{{ID: 1, Stamp: 2, Payload: payload}}}
	b.SetBytes(int64(m.WireSize()))
	for i := 0; i < b.N; i++ {
		Marshal(m)
	}
}

func BenchmarkUnmarshalServe(b *testing.B) {
	payload := make([]byte, 1316)
	buf := Marshal(&Serve{Events: []Event{{ID: 1, Stamp: 2, Payload: payload}}})
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

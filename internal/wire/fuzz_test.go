package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal exercises the decoder with arbitrary bytes: it must never
// panic, and anything it accepts must round-trip losslessly through
// Marshal/Unmarshal (canonical encoding).
func FuzzUnmarshal(f *testing.F) {
	seeds := []Message{
		&Propose{IDs: []PacketID{1, 2, 3}},
		&Request{IDs: []PacketID{42}},
		&Serve{Events: []Event{{ID: 7, Stamp: 99, Payload: []byte("payload")}}},
		&Aggregate{Entries: []CapEntry{{Node: 3, CapKbps: 512, AgeMs: 100}}},
		&ShuffleReq{Descriptors: []PeerDescriptor{{Node: 1, Age: 2}}},
		&ShuffleReply{Descriptors: []PeerDescriptor{{Node: 9, Age: 0}}},
		&AvgPush{Value: 1.5, Weight: 1},
		&AvgReply{Value: -2.5, Weight: 1},
	}
	for _, m := range seeds {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Canonical re-encoding must reproduce the input exactly.
		out := Marshal(m)
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical encoding accepted:\n in: %x\nout: %x", data, out)
		}
		if m.WireSize() != len(data) {
			t.Fatalf("WireSize %d != encoded length %d", m.WireSize(), len(data))
		}
	})
}

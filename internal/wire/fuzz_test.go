package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzUnmarshal exercises the decoder with arbitrary bytes: it must never
// panic, and anything it accepts must round-trip losslessly through
// Marshal/Unmarshal (canonical encoding).
func FuzzUnmarshal(f *testing.F) {
	seeds := []Message{
		&Propose{IDs: []PacketID{1, 2, 3}},
		&Request{IDs: []PacketID{42}},
		&Serve{Events: []Event{{ID: 7, Stamp: 99, Payload: []byte("payload")}}},
		// Multi-stream corpus: the same dissemination messages carrying
		// non-zero stream ids (the flagged count + 4-byte field encoding).
		&Propose{Stream: 1, IDs: []PacketID{1, 2, 3}},
		&Request{Stream: 3, IDs: []PacketID{42}},
		&Serve{Stream: 0xffffffff, Events: []Event{{ID: 7, Stream: 0xffffffff, Stamp: 99, Payload: []byte("payload")}}},
		&Aggregate{Entries: []CapEntry{{Node: 3, CapKbps: 512, AgeMs: 100}}},
		&ShuffleReq{Descriptors: []PeerDescriptor{{Node: 1, Age: 2}}},
		&ShuffleReply{Descriptors: []PeerDescriptor{{Node: 9, Age: 0}}},
		&AvgPush{Value: 1.5, Weight: 1},
		&AvgReply{Value: -2.5, Weight: 1},
	}
	for _, m := range seeds {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Canonical re-encoding must reproduce the input exactly.
		out := Marshal(m)
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical encoding accepted:\n in: %x\nout: %x", data, out)
		}
		if m.WireSize() != len(data) {
			t.Fatalf("WireSize %d != encoded length %d", m.WireSize(), len(data))
		}
	})
}

// FuzzRoundTrip starts from structured values instead of raw bytes: it
// builds a message of every kind from fuzzed fields and checks that
// encode → decode → encode is byte-identical (and that WireSize always
// matches the encoder's actual output). Together with FuzzUnmarshal this
// pins the codec from both directions.
func FuzzRoundTrip(f *testing.F) {
	// One seed per message kind, so the corpus reaches every branch of the
	// builder immediately — once on the legacy stream 0 and once on a
	// non-zero stream (the multi-stream corpus for the dissemination kinds).
	for kind := uint8(1); kind <= 8; kind++ {
		f.Add(kind, uint16(3), uint64(0x0123456789abcdef), uint32(512), uint32(0), []byte("payload"))
		f.Add(kind, uint16(3), uint64(0x0123456789abcdef), uint32(512), uint32(kind), []byte("payload"))
	}

	f.Fuzz(func(t *testing.T, kindSel uint8, count uint16, base uint64, v uint32, streamSel uint32, payload []byte) {
		if len(payload) > 256 {
			payload = payload[:256]
		}
		stream := StreamID(streamSel)
		var m Message
		switch Kind(kindSel%8 + 1) {
		case KindPropose:
			m = &Propose{Stream: stream, IDs: fuzzIDs(count%64, base)}
		case KindRequest:
			m = &Request{Stream: stream, IDs: fuzzIDs(count%64, base)}
		case KindServe:
			events := make([]Event, count%8)
			for i := range events {
				events[i] = Event{
					ID:      PacketID(base + uint64(i)),
					Stream:  stream,
					Stamp:   int64(base ^ uint64(v)),
					Payload: payload,
				}
			}
			m = &Serve{Stream: stream, Events: events}
		case KindAggregate:
			entries := make([]CapEntry, count%32)
			for i := range entries {
				entries[i] = CapEntry{Node: NodeID(int32(v) + int32(i)), CapKbps: v, AgeMs: uint32(base)}
			}
			m = &Aggregate{Entries: entries}
		case KindShuffleReq:
			m = &ShuffleReq{Descriptors: fuzzDescriptors(count%32, v)}
		case KindShuffleReply:
			m = &ShuffleReply{Descriptors: fuzzDescriptors(count%32, v)}
		case KindAvgPush:
			m = &AvgPush{Value: math.Float64frombits(base), Weight: float64(v)}
		case KindAvgReply:
			m = &AvgReply{Value: math.Float64frombits(base), Weight: float64(v)}
		}

		enc1 := Marshal(m)
		if len(enc1) != m.WireSize() {
			t.Fatalf("%s: WireSize %d but Marshal wrote %d bytes", m.Kind(), m.WireSize(), len(enc1))
		}
		decoded, err := Unmarshal(enc1)
		if err != nil {
			t.Fatalf("%s: decoding own encoding failed: %v", m.Kind(), err)
		}
		enc2 := Marshal(decoded)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("%s: encode→decode→encode not byte-identical:\n 1: %x\n 2: %x", m.Kind(), enc1, enc2)
		}
	})
}

func fuzzIDs(n uint16, base uint64) []PacketID {
	ids := make([]PacketID, n)
	for i := range ids {
		ids[i] = PacketID(base + uint64(i)*7)
	}
	return ids
}

func fuzzDescriptors(n uint16, v uint32) []PeerDescriptor {
	ds := make([]PeerDescriptor, n)
	for i := range ds {
		ds[i] = PeerDescriptor{Node: NodeID(int32(v) - int32(i)), Age: uint16(v) + uint16(i)}
	}
	return ds
}

package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// legacyPropose hand-encodes the pre-multi-stream Propose format: kind, a
// bare u16 count, and the ids — no stream field.
func legacyPropose(ids []PacketID) []byte {
	buf := []byte{byte(KindPropose)}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ids)))
	for _, id := range ids {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	}
	return buf
}

// TestLegacyEncodingsDecodeAsStreamZero pins backward compatibility: byte
// sequences produced by the single-stream codec decode as stream 0, and
// stream-0 messages re-encode to exactly the legacy bytes.
func TestLegacyEncodingsDecodeAsStreamZero(t *testing.T) {
	legacy := legacyPropose([]PacketID{1, 2, 3})
	m, err := Unmarshal(legacy)
	if err != nil {
		t.Fatalf("legacy encoding rejected: %v", err)
	}
	p, ok := m.(*Propose)
	if !ok {
		t.Fatalf("decoded %T, want *Propose", m)
	}
	if p.Stream != 0 {
		t.Fatalf("legacy encoding decoded as stream %d, want 0", p.Stream)
	}
	if !reflect.DeepEqual(p.IDs, []PacketID{1, 2, 3}) {
		t.Fatalf("ids %v", p.IDs)
	}
	// Stream-0 messages must emit the legacy bytes unchanged (new nodes
	// stay wire-compatible with old ones on the default stream).
	if out := Marshal(p); !bytes.Equal(out, legacy) {
		t.Fatalf("stream-0 encoding diverged from legacy:\nlegacy: %x\n   new: %x", legacy, out)
	}

	// Same for Request and Serve: the stream-0 wire size must not grow.
	req := &Request{IDs: []PacketID{9}}
	if req.WireSize() != 1+2+8 {
		t.Fatalf("stream-0 Request wire size %d, want legacy 11", req.WireSize())
	}
	srv := &Serve{Events: []Event{{ID: 4, Stamp: 5, Payload: []byte("x")}}}
	if srv.WireSize() != 1+2+(8+8+2)+1 {
		t.Fatalf("stream-0 Serve wire size %d, want legacy 22", srv.WireSize())
	}
}

// TestStreamTaggedRoundTrip checks non-zero streams across all three
// dissemination messages: the stream survives the round trip, costs exactly
// 4 bytes, and Serve stamps it onto every decoded event.
func TestStreamTaggedRoundTrip(t *testing.T) {
	p := &Propose{Stream: 5, IDs: []PacketID{1, 2}}
	got := roundTrip(t, p).(*Propose)
	if got.Stream != 5 || !reflect.DeepEqual(got.IDs, p.IDs) {
		t.Fatalf("got stream %d ids %v", got.Stream, got.IDs)
	}
	if p.WireSize() != (&Propose{IDs: p.IDs}).WireSize()+4 {
		t.Fatal("non-zero stream must cost exactly 4 bytes")
	}

	r := &Request{Stream: 1 << 30, IDs: []PacketID{7}}
	if got := roundTrip(t, r).(*Request); got.Stream != r.Stream {
		t.Fatalf("request stream %d, want %d", got.Stream, r.Stream)
	}

	s := &Serve{Stream: 3, Events: []Event{
		{ID: 1, Stream: 3, Stamp: 10, Payload: []byte("a")},
		{ID: 2, Stream: 3, Stamp: 20, Payload: []byte("bb")},
	}}
	gotS := roundTrip(t, s).(*Serve)
	if gotS.Stream != 3 {
		t.Fatalf("serve stream %d, want 3", gotS.Stream)
	}
	for i, ev := range gotS.Events {
		if ev.Stream != 3 {
			t.Fatalf("event %d stream %d, want the message's 3", i, ev.Stream)
		}
	}
}

// TestExplicitZeroStreamRejected: an explicit stream field holding 0 is
// non-canonical (stream 0 encodes field-free) and must be rejected, keeping
// the codec's encode→decode→encode identity.
func TestExplicitZeroStreamRejected(t *testing.T) {
	buf := []byte{byte(KindRequest)}
	buf = binary.BigEndian.AppendUint16(buf, 1|streamFlag)
	buf = binary.BigEndian.AppendUint32(buf, 0) // explicit stream 0
	buf = binary.BigEndian.AppendUint64(buf, 42)
	if _, err := Unmarshal(buf); !errors.Is(err, ErrZeroStream) {
		t.Fatalf("explicit zero stream: err = %v, want ErrZeroStream", err)
	}
}

// TestOversizedCountPanics: item counts that would collide with the
// streamFlag bit must refuse to encode (they would decode as garbage), on
// the legacy and the stream-tagged path alike.
func TestOversizedCountPanics(t *testing.T) {
	for _, m := range []Message{
		&Propose{IDs: make([]PacketID, maxCountItems+1)},
		&Request{Stream: 2, IDs: make([]PacketID, maxCountItems+1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with %d items marshaled without panic", m.Kind(), maxCountItems+1)
				}
			}()
			Marshal(m)
		}()
	}
	// The limit itself still round-trips.
	m := &Propose{IDs: make([]PacketID, maxCountItems)}
	got := roundTrip(t, m).(*Propose)
	if len(got.IDs) != maxCountItems {
		t.Fatalf("decoded %d ids, want %d", len(got.IDs), maxCountItems)
	}
}

// TestTruncatedStreamFieldRejected: a flagged count with fewer than 4 bytes
// of stream id must fail cleanly.
func TestTruncatedStreamFieldRejected(t *testing.T) {
	buf := []byte{byte(KindPropose)}
	buf = binary.BigEndian.AppendUint16(buf, streamFlag)
	buf = append(buf, 0x01, 0x02) // half a stream id
	if _, err := Unmarshal(buf); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("truncated stream field: err = %v, want ErrShortBuffer", err)
	}
}

// Package wire defines the datagram protocol spoken by HEAP nodes: the
// three-phase dissemination messages of Algorithm 1 ([Propose], [Request],
// [Serve]), the capability-aggregation messages of Algorithm 2, and the
// auxiliary messages used by the optional peer-sampling and push-pull
// averaging services.
//
// Every message knows its exact encoded size (WireSize), which the simulated
// network uses for upload-bandwidth accounting, and marshals to a compact
// big-endian binary form, which the real UDP runtime puts on the wire. The
// two are guaranteed to agree (property-tested).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// NodeID identifies a node in the system. In the simulator it is a dense
// index; over real UDP it is assigned by the bootstrap directory.
type NodeID int32

// NodeNone is the zero-value "no node" sentinel.
const NodeNone NodeID = -1

// PacketID identifies one stream packet (source or FEC parity) within its
// stream, monotonically in publish order. Packet ids are dense per stream;
// the (StreamID, PacketID) pair is globally unique.
type PacketID uint64

// StreamID identifies one dissemination stream. A process historically
// carried exactly one stream; multi-source deployments run several
// concurrent streams over one membership and aggregation layer. Stream 0 is
// the default stream: its messages encode exactly as the legacy single-stream
// wire format, and legacy encodings decode as stream 0.
type StreamID uint32

// streamFlag marks, in the item-count field of Propose/Request/Serve, that a
// 4-byte stream id follows the count. Legacy encodings (stream 0) never set
// it, so pre-multi-stream bytes decode unchanged; the flag caps item counts
// at 32767, far above any protocol batch.
const streamFlag = 0x8000

// Streamed is implemented by dissemination messages that belong to one
// stream (Propose, Request, Serve); the simulator uses it for per-stream
// bandwidth accounting.
type Streamed interface {
	StreamOf() StreamID
}

// UDPOverheadBytes is the per-datagram UDP/IPv4 header overhead charged by
// the bandwidth model on top of WireSize.
const UDPOverheadBytes = 28

// Kind enumerates message types. Values are part of the wire format.
type Kind uint8

// Message kinds. Explicit values: these bytes go on the wire.
const (
	KindPropose      Kind = 1 // phase 1: push event ids
	KindRequest      Kind = 2 // phase 2: pull wanted ids
	KindServe        Kind = 3 // phase 3: push payloads
	KindAggregate    Kind = 4 // capability aggregation (Algorithm 2)
	KindShuffleReq   Kind = 5 // peer sampling: shuffle request
	KindShuffleReply Kind = 6 // peer sampling: shuffle reply
	KindAvgPush      Kind = 7 // push-pull averaging: initiator half
	KindAvgReply     Kind = 8 // push-pull averaging: responder half
)

// String returns the human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindPropose:
		return "Propose"
	case KindRequest:
		return "Request"
	case KindServe:
		return "Serve"
	case KindAggregate:
		return "Aggregate"
	case KindShuffleReq:
		return "ShuffleReq"
	case KindShuffleReply:
		return "ShuffleReply"
	case KindAvgPush:
		return "AvgPush"
	case KindAvgReply:
		return "AvgReply"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Codec errors.
var (
	ErrShortBuffer   = errors.New("wire: buffer too short")
	ErrUnknownKind   = errors.New("wire: unknown message kind")
	ErrTrailingBytes = errors.New("wire: trailing bytes after message")
	ErrTooManyItems  = errors.New("wire: item count exceeds encoding limit")
	// ErrZeroStream rejects an explicit stream-id field holding 0: stream 0
	// always encodes in the legacy field-free form, so an explicit zero is
	// non-canonical and would break the encode→decode→encode identity.
	ErrZeroStream = errors.New("wire: explicit stream id 0 (non-canonical)")
)

// Message is implemented by every protocol message.
//
// Received messages must be treated as immutable: the simulator delivers the
// sender's object directly (no copy) to keep large fan-outs cheap.
type Message interface {
	Kind() Kind
	// WireSize returns the exact number of bytes Marshal appends,
	// excluding UDP/IP overhead (see UDPOverheadBytes).
	WireSize() int
	// MarshalBinary appends the encoded message to dst and returns the
	// extended slice.
	MarshalBinary(dst []byte) []byte
}

// Event is one stream packet in flight inside a [Serve] message.
//
// Stream is carried once per Serve message, not per event: MarshalBinary
// writes the enclosing message's Stream, and Unmarshal stamps it onto every
// decoded event, so all events of one Serve share one stream by construction.
type Event struct {
	ID      PacketID
	Stream  StreamID
	Stamp   int64  // publish time, nanoseconds since the run epoch
	Payload []byte // packet content; len must fit in uint16
}

// eventWireSize is the fixed per-event header: id(8) + stamp(8) + len(2).
const eventWireSize = 8 + 8 + 2

// WireSize returns the encoded size of the event.
func (e Event) WireSize() int { return eventWireSize + len(e.Payload) }

// streamWireSize is the encoded size of a non-zero stream id (zero encodes
// as nothing: the legacy format).
func streamWireSize(s StreamID) int {
	if s == 0 {
		return 0
	}
	return 4
}

// Propose carries the identifiers a node offers to serve (Alg. 1 phase 1).
type Propose struct {
	Stream StreamID
	IDs    []PacketID
}

// Kind implements Message.
func (*Propose) Kind() Kind { return KindPropose }

// StreamOf implements Streamed.
func (m *Propose) StreamOf() StreamID { return m.Stream }

// WireSize implements Message.
func (m *Propose) WireSize() int { return 1 + 2 + streamWireSize(m.Stream) + 8*len(m.IDs) }

// Request asks the proposing peer for the listed ids (Alg. 1 phase 2).
type Request struct {
	Stream StreamID
	IDs    []PacketID
}

// Kind implements Message.
func (*Request) Kind() Kind { return KindRequest }

// StreamOf implements Streamed.
func (m *Request) StreamOf() StreamID { return m.Stream }

// WireSize implements Message.
func (m *Request) WireSize() int { return 1 + 2 + streamWireSize(m.Stream) + 8*len(m.IDs) }

// Serve delivers the requested payloads (Alg. 1 phase 3). All events belong
// to Stream (see Event).
type Serve struct {
	Stream StreamID
	Events []Event
}

// Kind implements Message.
func (*Serve) Kind() Kind { return KindServe }

// StreamOf implements Streamed.
func (m *Serve) StreamOf() StreamID { return m.Stream }

// WireSize implements Message.
func (m *Serve) WireSize() int {
	n := 1 + 2 + streamWireSize(m.Stream)
	for _, e := range m.Events {
		n += e.WireSize()
	}
	return n
}

// CapEntry is one node's advertised upload capability, aged like a Cyclon
// descriptor: AgeMs is the time elapsed since the value was (re)measured at
// its owner, so receivers need no synchronized clocks.
type CapEntry struct {
	Node    NodeID
	CapKbps uint32 // advertised upload capability, kilobits per second
	AgeMs   uint32 // staleness at send time, milliseconds
}

// capEntryWireSize is node(4) + cap(4) + age(4).
const capEntryWireSize = 12

// Aggregate carries the freshest capability entries known to the sender
// (Algorithm 2, aggregation phase).
type Aggregate struct {
	Entries []CapEntry
}

// Kind implements Message.
func (*Aggregate) Kind() Kind { return KindAggregate }

// WireSize implements Message.
func (m *Aggregate) WireSize() int { return 1 + 1 + capEntryWireSize*len(m.Entries) }

// PeerDescriptor is a peer-sampling view entry.
type PeerDescriptor struct {
	Node NodeID
	Age  uint16 // shuffle rounds since the descriptor was created
}

const peerDescriptorWireSize = 4 + 2

// ShuffleReq initiates a Cyclon-style view shuffle (peer-sampling service).
type ShuffleReq struct {
	Descriptors []PeerDescriptor
}

// Kind implements Message.
func (*ShuffleReq) Kind() Kind { return KindShuffleReq }

// WireSize implements Message.
func (m *ShuffleReq) WireSize() int { return 1 + 1 + peerDescriptorWireSize*len(m.Descriptors) }

// ShuffleReply answers a ShuffleReq with a sample of the responder's view.
type ShuffleReply struct {
	Descriptors []PeerDescriptor
}

// Kind implements Message.
func (*ShuffleReply) Kind() Kind { return KindShuffleReply }

// WireSize implements Message.
func (m *ShuffleReply) WireSize() int { return 1 + 1 + peerDescriptorWireSize*len(m.Descriptors) }

// AvgPush is the initiator half of a Jelasity-style push-pull averaging
// exchange (used for system-size estimation).
type AvgPush struct {
	Value  float64
	Weight float64
}

// Kind implements Message.
func (*AvgPush) Kind() Kind { return KindAvgPush }

// WireSize implements Message.
func (m *AvgPush) WireSize() int { return 1 + 8 + 8 }

// AvgReply is the responder half of a push-pull averaging exchange.
type AvgReply struct {
	Value  float64
	Weight float64
}

// Kind implements Message.
func (*AvgReply) Kind() Kind { return KindAvgReply }

// WireSize implements Message.
func (m *AvgReply) WireSize() int { return 1 + 8 + 8 }

// Compile-time interface checks.
var (
	_ Streamed = (*Propose)(nil)
	_ Streamed = (*Request)(nil)
	_ Streamed = (*Serve)(nil)

	_ Message = (*Propose)(nil)
	_ Message = (*Request)(nil)
	_ Message = (*Serve)(nil)
	_ Message = (*Aggregate)(nil)
	_ Message = (*ShuffleReq)(nil)
	_ Message = (*ShuffleReply)(nil)
	_ Message = (*AvgPush)(nil)
	_ Message = (*AvgReply)(nil)
)

// maxCountItems is the largest item count the flagged header can carry.
// The protocol never approaches it: dissemination batches are bounded by
// the stream rate times the gossip period (tens of ids), and a maximal
// count would not fit a UDP datagram anyway.
const maxCountItems = streamFlag - 1

// appendCountStream encodes the shared item-count header of the
// dissemination messages: the count with the streamFlag bit set and a 4-byte
// stream id when the stream is non-zero, the bare legacy count otherwise.
// Counts past maxCountItems would collide with the flag bit and decode as
// garbage, so they panic — building such a message is a protocol bug
// (ErrTooManyItems is its decode-side counterpart), never a wire input.
func appendCountStream(dst []byte, count int, stream StreamID) []byte {
	if count > maxCountItems {
		panic(fmt.Sprintf("wire: %d items exceed the %d encoding limit", count, maxCountItems))
	}
	if stream == 0 {
		return binary.BigEndian.AppendUint16(dst, uint16(count))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(count)|streamFlag)
	return binary.BigEndian.AppendUint32(dst, uint32(stream))
}

// MarshalBinary implements Message.
func (m *Propose) MarshalBinary(dst []byte) []byte {
	dst = append(dst, byte(KindPropose))
	dst = appendCountStream(dst, len(m.IDs), m.Stream)
	return appendIDs(dst, m.IDs)
}

// MarshalBinary implements Message.
func (m *Request) MarshalBinary(dst []byte) []byte {
	dst = append(dst, byte(KindRequest))
	dst = appendCountStream(dst, len(m.IDs), m.Stream)
	return appendIDs(dst, m.IDs)
}

// MarshalBinary implements Message.
func (m *Serve) MarshalBinary(dst []byte) []byte {
	dst = append(dst, byte(KindServe))
	dst = appendCountStream(dst, len(m.Events), m.Stream)
	for _, e := range m.Events {
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.ID))
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Stamp))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(e.Payload)))
		dst = append(dst, e.Payload...)
	}
	return dst
}

// MarshalBinary implements Message.
func (m *Aggregate) MarshalBinary(dst []byte) []byte {
	dst = append(dst, byte(KindAggregate))
	dst = append(dst, byte(len(m.Entries)))
	for _, e := range m.Entries {
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.Node))
		dst = binary.BigEndian.AppendUint32(dst, e.CapKbps)
		dst = binary.BigEndian.AppendUint32(dst, e.AgeMs)
	}
	return dst
}

// MarshalBinary implements Message.
func (m *ShuffleReq) MarshalBinary(dst []byte) []byte {
	dst = append(dst, byte(KindShuffleReq))
	return appendDescriptors(dst, m.Descriptors)
}

// MarshalBinary implements Message.
func (m *ShuffleReply) MarshalBinary(dst []byte) []byte {
	dst = append(dst, byte(KindShuffleReply))
	return appendDescriptors(dst, m.Descriptors)
}

// MarshalBinary implements Message.
func (m *AvgPush) MarshalBinary(dst []byte) []byte {
	dst = append(dst, byte(KindAvgPush))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Value))
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Weight))
}

// MarshalBinary implements Message.
func (m *AvgReply) MarshalBinary(dst []byte) []byte {
	dst = append(dst, byte(KindAvgReply))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Value))
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(m.Weight))
}

func appendIDs(dst []byte, ids []PacketID) []byte {
	for _, id := range ids {
		dst = binary.BigEndian.AppendUint64(dst, uint64(id))
	}
	return dst
}

func appendDescriptors(dst []byte, ds []PeerDescriptor) []byte {
	dst = append(dst, byte(len(ds)))
	for _, d := range ds {
		dst = binary.BigEndian.AppendUint32(dst, uint32(d.Node))
		dst = binary.BigEndian.AppendUint16(dst, d.Age)
	}
	return dst
}

// Marshal encodes m into a freshly allocated buffer of exactly WireSize
// bytes.
func Marshal(m Message) []byte {
	return m.MarshalBinary(make([]byte, 0, m.WireSize()))
}

// Unmarshal decodes one message from buf. The whole buffer must be consumed;
// trailing bytes are an error (datagram transports deliver exactly one
// message per datagram).
func Unmarshal(buf []byte) (Message, error) {
	if len(buf) < 1 {
		return nil, ErrShortBuffer
	}
	kind := Kind(buf[0])
	r := reader{buf: buf[1:]}
	var m Message
	var err error
	switch kind {
	case KindPropose:
		stream, ids, e := r.streamIDs()
		m, err = &Propose{Stream: stream, IDs: ids}, e
	case KindRequest:
		stream, ids, e := r.streamIDs()
		m, err = &Request{Stream: stream, IDs: ids}, e
	case KindServe:
		stream, evs, e := r.streamEvents()
		m, err = &Serve{Stream: stream, Events: evs}, e
	case KindAggregate:
		entries, e := r.capEntries()
		m, err = &Aggregate{Entries: entries}, e
	case KindShuffleReq:
		ds, e := r.descriptors()
		m, err = &ShuffleReq{Descriptors: ds}, e
	case KindShuffleReply:
		ds, e := r.descriptors()
		m, err = &ShuffleReply{Descriptors: ds}, e
	case KindAvgPush:
		v, w, e := r.twoFloats()
		m, err = &AvgPush{Value: v, Weight: w}, e
	case KindAvgReply:
		v, w, e := r.twoFloats()
		m, err = &AvgReply{Value: v, Weight: w}, e
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, kind)
	}
	if err != nil {
		return nil, fmt.Errorf("wire: decoding %s: %w", kind, err)
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d bytes after %s", ErrTrailingBytes, len(r.buf), kind)
	}
	return m, nil
}

// reader is a consuming cursor over an encoded message body.
type reader struct {
	buf []byte
}

func (r *reader) u16() (uint16, error) {
	if len(r.buf) < 2 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, ErrShortBuffer
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *reader) u8() (uint8, error) {
	if len(r.buf) < 1 {
		return 0, ErrShortBuffer
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if len(r.buf) < n {
		return nil, ErrShortBuffer
	}
	v := r.buf[:n:n]
	r.buf = r.buf[n:]
	return v, nil
}

// countStream decodes the shared item-count header of the dissemination
// messages: a bare count means the legacy stream 0; the streamFlag bit marks
// a 4-byte stream id following the count.
func (r *reader) countStream() (int, StreamID, error) {
	raw, err := r.u16()
	if err != nil {
		return 0, 0, err
	}
	n := int(raw &^ streamFlag)
	if raw&streamFlag == 0 {
		return n, 0, nil
	}
	s, err := r.u32()
	if err != nil {
		return 0, 0, err
	}
	if s == 0 {
		return 0, 0, ErrZeroStream
	}
	return n, StreamID(s), nil
}

func (r *reader) streamIDs() (StreamID, []PacketID, error) {
	n, stream, err := r.countStream()
	if err != nil {
		return 0, nil, err
	}
	if n*8 > len(r.buf) {
		return 0, nil, ErrShortBuffer
	}
	ids := make([]PacketID, n)
	for i := range ids {
		v, err := r.u64()
		if err != nil {
			return 0, nil, err
		}
		ids[i] = PacketID(v)
	}
	return stream, ids, nil
}

func (r *reader) streamEvents() (StreamID, []Event, error) {
	n, stream, err := r.countStream()
	if err != nil {
		return 0, nil, err
	}
	if n*eventWireSize > len(r.buf) {
		return 0, nil, ErrShortBuffer
	}
	evs := make([]Event, n)
	for i := range evs {
		id, err := r.u64()
		if err != nil {
			return 0, nil, err
		}
		stamp, err := r.u64()
		if err != nil {
			return 0, nil, err
		}
		plen, err := r.u16()
		if err != nil {
			return 0, nil, err
		}
		payload, err := r.take(int(plen))
		if err != nil {
			return 0, nil, err
		}
		evs[i] = Event{ID: PacketID(id), Stream: stream, Stamp: int64(stamp), Payload: payload}
	}
	return stream, evs, nil
}

func (r *reader) capEntries() ([]CapEntry, error) {
	n, err := r.u8()
	if err != nil {
		return nil, err
	}
	if int(n)*capEntryWireSize > len(r.buf) {
		return nil, ErrShortBuffer
	}
	entries := make([]CapEntry, n)
	for i := range entries {
		node, err := r.u32()
		if err != nil {
			return nil, err
		}
		capKbps, err := r.u32()
		if err != nil {
			return nil, err
		}
		age, err := r.u32()
		if err != nil {
			return nil, err
		}
		entries[i] = CapEntry{Node: NodeID(int32(node)), CapKbps: capKbps, AgeMs: age}
	}
	return entries, nil
}

func (r *reader) descriptors() ([]PeerDescriptor, error) {
	n, err := r.u8()
	if err != nil {
		return nil, err
	}
	if int(n)*peerDescriptorWireSize > len(r.buf) {
		return nil, ErrShortBuffer
	}
	ds := make([]PeerDescriptor, n)
	for i := range ds {
		node, err := r.u32()
		if err != nil {
			return nil, err
		}
		age, err := r.u16()
		if err != nil {
			return nil, err
		}
		ds[i] = PeerDescriptor{Node: NodeID(int32(node)), Age: age}
	}
	return ds, nil
}

func (r *reader) twoFloats() (float64, float64, error) {
	v, err := r.u64()
	if err != nil {
		return 0, 0, err
	}
	w, err := r.u64()
	if err != nil {
		return 0, 0, err
	}
	return math.Float64frombits(v), math.Float64frombits(w), nil
}

package stream

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestPaperGeometry(t *testing.T) {
	g := PaperGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.PacketsPerWindow() != 110 {
		t.Fatalf("packets per window = %d, want 110", g.PacketsPerWindow())
	}
	// 1316 B at 551 kbps -> 19.1 ms per packet, ~52.36 packets/s.
	iv := g.Interval()
	if iv < 19*time.Millisecond || iv > 20*time.Millisecond {
		t.Fatalf("interval = %v, want ~19.1ms", iv)
	}
	// Effective rate 600 kbps (§3.1).
	eff := g.EffectiveRateBps()
	if eff < 595_000 || eff > 605_000 {
		t.Fatalf("effective rate = %d, want ~600 kbps", eff)
	}
	// Window covers ~1.93s of stream.
	wd := g.WindowDuration()
	if wd < 1900*time.Millisecond || wd > 2*time.Second {
		t.Fatalf("window duration = %v, want ~1.93s", wd)
	}
	// ~11.26 ids per 200 ms propose round (§3.1) counting parity.
	idsPerRound := float64(200*time.Millisecond) / float64(iv) * 110 / 101
	if idsPerRound < 10.5 || idsPerRound > 12 {
		t.Fatalf("ids per 200ms round = %.2f, want ~11.26", idsPerRound)
	}
}

func TestGeometryValidation(t *testing.T) {
	cases := []Geometry{
		{RateBps: 0, PacketBytes: 100, DataPerWindow: 10, ParityPerWindow: 2},
		{RateBps: 1000, PacketBytes: 4, DataPerWindow: 10, ParityPerWindow: 2},
		{RateBps: 1000, PacketBytes: 100, DataPerWindow: 0, ParityPerWindow: 2},
		{RateBps: 1000, PacketBytes: 100, DataPerWindow: 10, ParityPerWindow: 0},
		{RateBps: 1000, PacketBytes: 100, DataPerWindow: 250, ParityPerWindow: 10},
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted: %+v", i, g)
		}
	}
}

func TestWindowIndexing(t *testing.T) {
	g := PaperGeometry()
	cases := []struct {
		id     wire.PacketID
		window int
		index  int
		parity bool
	}{
		{0, 0, 0, false},
		{100, 0, 100, false},
		{101, 0, 101, true},
		{109, 0, 109, true},
		{110, 1, 0, false},
		{110*5 + 103, 5, 103, true},
	}
	for _, tc := range cases {
		if got := g.WindowOf(tc.id); got != tc.window {
			t.Errorf("WindowOf(%d) = %d, want %d", tc.id, got, tc.window)
		}
		if got := g.IndexInWindow(tc.id); got != tc.index {
			t.Errorf("IndexInWindow(%d) = %d, want %d", tc.id, got, tc.index)
		}
		if got := g.IsParity(tc.id); got != tc.parity {
			t.Errorf("IsParity(%d) = %v, want %v", tc.id, got, tc.parity)
		}
		if got := g.PacketIDAt(tc.window, tc.index); got != tc.id {
			t.Errorf("PacketIDAt(%d,%d) = %d, want %d", tc.window, tc.index, got, tc.id)
		}
	}
}

func TestPublishOffsets(t *testing.T) {
	g := PaperGeometry()
	iv := g.Interval()
	if got := g.PublishOffset(0); got != 0 {
		t.Fatalf("first packet offset %v, want 0", got)
	}
	if got := g.PublishOffset(1); got != iv {
		t.Fatalf("second packet offset %v, want %v", got, iv)
	}
	// Parity of window 0 is published with source packet 100.
	if got, want := g.PublishOffset(105), 100*iv; got != want {
		t.Fatalf("parity offset %v, want %v", got, want)
	}
	// First packet of window 1 follows immediately after.
	if got, want := g.PublishOffset(110), 101*iv; got != want {
		t.Fatalf("window-1 first packet offset %v, want %v", got, want)
	}
}

func TestPayloadForDeterministicAndDistinct(t *testing.T) {
	g := PaperGeometry()
	p1 := g.PayloadFor(42)
	p2 := g.PayloadFor(42)
	if !bytes.Equal(p1, p2) {
		t.Fatal("payload generation not deterministic")
	}
	if len(p1) != g.PacketBytes {
		t.Fatalf("payload size %d, want %d", len(p1), g.PacketBytes)
	}
	p3 := g.PayloadFor(43)
	if bytes.Equal(p1, p3) {
		t.Fatal("different ids produced identical payloads")
	}
	// Header carries the id.
	if p1[7] != 42 {
		t.Fatalf("payload header byte = %d, want 42", p1[7])
	}
}

// collectPublisher gathers published events for inspection.
type collectPublisher struct {
	events []wire.Event
}

func (c *collectPublisher) Publish(ev wire.Event) { c.events = append(c.events, ev) }

func TestNewSourceValidation(t *testing.T) {
	pub := &collectPublisher{}
	g := PaperGeometry()
	if _, err := NewSource(SourceConfig{Geometry: g, Windows: 0, Publisher: pub}); err == nil {
		t.Error("zero windows accepted")
	}
	if _, err := NewSource(SourceConfig{Geometry: g, Windows: 1}); err == nil {
		t.Error("nil publisher accepted")
	}
	bad := g
	bad.RateBps = 0
	if _, err := NewSource(SourceConfig{Geometry: bad, Windows: 1, Publisher: pub}); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestNewReceiverValidation(t *testing.T) {
	g := PaperGeometry()
	if _, err := NewReceiver(g, 0, false); err == nil {
		t.Error("zero windows accepted")
	}
	bad := g
	bad.PacketBytes = 1
	if _, err := NewReceiver(bad, 1, false); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestReceiverRecordsAndDuplicates(t *testing.T) {
	g := PaperGeometry()
	r, err := NewReceiver(g, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	r.OnDeliver(wire.Event{ID: 5, Stamp: 1000, Payload: g.PayloadFor(5)}, 2*time.Second)
	r.OnDeliver(wire.Event{ID: 5, Stamp: 1000, Payload: g.PayloadFor(5)}, 3*time.Second) // dup
	r.OnDeliver(wire.Event{ID: 99999, Stamp: 0, Payload: nil}, time.Second)              // out of range
	if r.Received() != 1 {
		t.Fatalf("received = %d, want 1", r.Received())
	}
	at, ok := r.ReceivedAt(5)
	if !ok || at != 2*time.Second {
		t.Fatalf("ReceivedAt(5) = %v,%v; want 2s,true", at, ok)
	}
	if _, ok := r.ReceivedAt(6); ok {
		t.Fatal("ReceivedAt(6) should be false")
	}
	if r.Stamps()[5] != 1000 {
		t.Fatalf("stamp not recorded")
	}
}

func TestReceiverVerifyModeReconstructs(t *testing.T) {
	// Small geometry so the test is brisk: 5+3 window.
	g := Geometry{RateBps: 100_000, PacketBytes: 64, DataPerWindow: 5, ParityPerWindow: 3}
	src, err := NewSource(SourceConfig{Geometry: g, Windows: 2, Publisher: &collectPublisher{}})
	if err != nil {
		t.Fatal(err)
	}
	_ = src
	// Build window 0's true content via the real encoder path: generate
	// source payloads and parity exactly as the source would.
	r, err := NewReceiver(g, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	pub := &collectPublisher{}
	s2, err := NewSource(SourceConfig{Geometry: g, Windows: 2, Publisher: pub})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s2, g, 2)
	if len(pub.events) != g.TotalPackets(2) {
		t.Fatalf("source produced %d packets, want %d", len(pub.events), g.TotalPackets(2))
	}
	// Deliver window 0 minus 3 source packets (indices 0,2,4): still
	// decodable from 2 source + 3 parity.
	for _, ev := range pub.events {
		w := g.WindowOf(ev.ID)
		idx := g.IndexInWindow(ev.ID)
		if w == 0 && (idx == 0 || idx == 2 || idx == 4) {
			continue
		}
		r.OnDeliver(ev, time.Duration(ev.ID)*time.Millisecond)
	}
	if r.DecodedWindows != 2 {
		t.Fatalf("decoded windows = %d, want 2", r.DecodedWindows)
	}
	if r.VerifyFailures != 0 {
		t.Fatalf("verify failures = %d, want 0", r.VerifyFailures)
	}
}

func TestReceiverVerifyModeUndercodableWindow(t *testing.T) {
	g := Geometry{RateBps: 100_000, PacketBytes: 64, DataPerWindow: 5, ParityPerWindow: 3}
	pub := &collectPublisher{}
	s, err := NewSource(SourceConfig{Geometry: g, Windows: 1, Publisher: pub})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s, g, 1)
	r, err := NewReceiver(g, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver only 4 of 8 packets: window stays undecodable.
	for i, ev := range pub.events {
		if i >= 4 {
			break
		}
		r.OnDeliver(ev, time.Millisecond)
	}
	if r.DecodedWindows != 0 {
		t.Fatalf("decoded windows = %d, want 0", r.DecodedWindows)
	}
}

// drive runs a source over a minimal fake runtime until it finishes.
func drive(t *testing.T, s *Source, g Geometry, windows int) {
	t.Helper()
	rt := &fakeRuntime{}
	s.Start(rt)
	ticks := windows * g.DataPerWindow
	for i := 0; i <= ticks && !s.Done; i++ {
		rt.fire()
	}
	if !s.Done {
		t.Fatal("source did not finish")
	}
	if got, want := s.Published, g.TotalPackets(windows); got != want {
		t.Fatalf("published %d, want %d", got, want)
	}
}

package stream

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/fec"
	"repro/internal/wire"
)

// NotReceived marks a packet that never arrived in a Receiver's record.
const NotReceived = time.Duration(-1)

// Receiver records packet arrivals at one node and, optionally, exercises
// the full FEC decode path, reconstructing missing source packets and
// verifying their content against the deterministic payload generator.
//
// The receiver's records feed the metrics package: every evaluation metric
// of the paper (stream lag, jitter, delivery ratios) derives from
// (publish time, receive time) pairs plus the window geometry.
type Receiver struct {
	geom    Geometry
	windows int

	recvAt []time.Duration // indexed by packet id; NotReceived if missing
	stamps []int64         // publish stamp as carried by the event
	count  int             // distinct packets received

	// verify mode
	verify   bool
	code     *fec.Code
	payloads [][][]byte // per window, per index; nil entries missing
	pending  []int      // per window: distinct packets received
	decoded  []bool     // per window: reconstruction done

	// DecodedWindows counts windows fully reconstructed in verify mode.
	DecodedWindows int
	// VerifyFailures counts reconstructed packets whose content mismatched.
	VerifyFailures int
}

// NewReceiver builds a Receiver for a stream of the given window count.
// With verify set, payloads are retained per window and FEC reconstruction
// plus content verification runs as soon as each window becomes decodable.
func NewReceiver(geom Geometry, windows int, verify bool) (*Receiver, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if windows <= 0 {
		return nil, fmt.Errorf("stream: windows %d must be positive", windows)
	}
	total := geom.TotalPackets(windows)
	r := &Receiver{
		geom:    geom,
		windows: windows,
		recvAt:  make([]time.Duration, total),
		stamps:  make([]int64, total),
		verify:  verify,
	}
	for i := range r.recvAt {
		r.recvAt[i] = NotReceived
	}
	if verify {
		code, err := fec.New(geom.DataPerWindow, geom.ParityPerWindow)
		if err != nil {
			return nil, err
		}
		r.code = code
		r.payloads = make([][][]byte, windows)
		r.pending = make([]int, windows)
		r.decoded = make([]bool, windows)
	}
	return r, nil
}

// OnDeliver is the core.DeliverFunc for this receiver.
func (r *Receiver) OnDeliver(ev wire.Event, at time.Duration) {
	id := int(ev.ID)
	if id < 0 || id >= len(r.recvAt) {
		return // outside the measured stream (e.g., warmup traffic)
	}
	if r.recvAt[id] != NotReceived {
		return // duplicate (the engine prevents these, but be safe)
	}
	r.recvAt[id] = at
	r.stamps[id] = ev.Stamp
	r.count++
	if r.verify {
		r.recordForDecode(ev)
	}
}

func (r *Receiver) recordForDecode(ev wire.Event) {
	w := r.geom.WindowOf(ev.ID)
	idx := r.geom.IndexInWindow(ev.ID)
	if r.payloads[w] == nil {
		r.payloads[w] = make([][]byte, r.geom.PacketsPerWindow())
	}
	if r.payloads[w][idx] != nil {
		return
	}
	r.payloads[w][idx] = ev.Payload
	r.pending[w]++
	if !r.decoded[w] && r.pending[w] >= r.geom.DataPerWindow {
		r.decodeWindow(w)
	}
}

// decodeWindow reconstructs the window's missing source packets and verifies
// every source payload against the generator.
func (r *Receiver) decodeWindow(w int) {
	r.decoded[w] = true
	shards := make([][]byte, r.geom.PacketsPerWindow())
	copy(shards, r.payloads[w])
	if err := r.code.Reconstruct(shards); err != nil {
		r.VerifyFailures++
		return
	}
	for idx := 0; idx < r.geom.DataPerWindow; idx++ {
		id := r.geom.PacketIDAt(w, idx)
		if !bytes.Equal(shards[idx], r.geom.PayloadFor(id)) {
			r.VerifyFailures++
		}
	}
	r.DecodedWindows++
	// Reconstruction done; release window payload references.
	r.payloads[w] = nil
}

// Received returns how many distinct packets arrived.
func (r *Receiver) Received() int { return r.count }

// ReceivedAt returns the arrival time of a packet and whether it arrived.
func (r *Receiver) ReceivedAt(id wire.PacketID) (time.Duration, bool) {
	i := int(id)
	if i < 0 || i >= len(r.recvAt) || r.recvAt[i] == NotReceived {
		return 0, false
	}
	return r.recvAt[i], true
}

// Records exposes the raw arrival times indexed by packet id (NotReceived
// marks gaps). The returned slice is the receiver's own storage; callers
// must not modify it.
func (r *Receiver) Records() []time.Duration { return r.recvAt }

// Stamps exposes the publish stamps of received packets, indexed by id
// (zero for packets that never arrived). Callers must not modify it.
func (r *Receiver) Stamps() []int64 { return r.stamps }

// Geometry returns the stream geometry.
func (r *Receiver) Geometry() Geometry { return r.geom }

// Windows returns the stream length in windows.
func (r *Receiver) Windows() int { return r.windows }

package stream

import (
	"math/rand"
	"time"

	"repro/internal/env"
	"repro/internal/wire"
)

// fakeRuntime is a minimal env.Runtime for driving handlers in unit tests
// without a full simulated network. Timers fire manually via fire().
type fakeRuntime struct {
	now    time.Duration
	timers []*fakeTimer
	sent   []sentMsg
}

type sentMsg struct {
	to wire.NodeID
	m  wire.Message
}

type fakeTimer struct {
	at      time.Duration
	fn      func()
	stopped bool
	fired   bool
}

func (f *fakeTimer) Stop() bool {
	if f.stopped || f.fired {
		return false
	}
	f.stopped = true
	return true
}

var _ env.Runtime = (*fakeRuntime)(nil)

func (f *fakeRuntime) ID() wire.NodeID    { return 0 }
func (f *fakeRuntime) Now() time.Duration { return f.now }
func (f *fakeRuntime) Rand() *rand.Rand   { return rand.New(rand.NewSource(1)) }

func (f *fakeRuntime) Send(to wire.NodeID, m wire.Message) {
	f.sent = append(f.sent, sentMsg{to: to, m: m})
}

func (f *fakeRuntime) After(d time.Duration, fn func()) env.Timer {
	t := &fakeTimer{at: f.now + d, fn: fn}
	f.timers = append(f.timers, t)
	return t
}

func (f *fakeRuntime) AfterFunc(d time.Duration, fn func()) {
	f.After(d, fn)
}

// fire runs the earliest pending timer, advancing the clock to it. It
// returns false when no timer is pending.
func (f *fakeRuntime) fire() bool {
	var best *fakeTimer
	for _, t := range f.timers {
		if t.stopped || t.fired {
			continue
		}
		if best == nil || t.at < best.at {
			best = t
		}
	}
	if best == nil {
		return false
	}
	best.fired = true
	if best.at > f.now {
		f.now = best.at
	}
	best.fn()
	return true
}

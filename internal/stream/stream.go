// Package stream implements the video-streaming workload of the paper's
// evaluation (§3.1): a source produces 1316-byte packets at 551 kbps,
// grouped into FEC windows of 101 source packets plus 9 parity packets
// (600 kbps effective), and receivers reassemble windows, reconstruct
// missing packets when at least 101 of the 110 arrived, and measure
// stream lag and jitter.
package stream

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/wire"
)

// Geometry describes the packetization and FEC window structure of a stream.
type Geometry struct {
	// RateBps is the source data rate in bits per second, counting source
	// packets only (parity overhead comes on top).
	RateBps int64
	// PacketBytes is the payload size of every packet.
	PacketBytes int
	// DataPerWindow is the number of source packets per FEC window.
	DataPerWindow int
	// ParityPerWindow is the number of FEC parity packets per window.
	ParityPerWindow int
}

// PaperGeometry returns the exact parameters of §3.1: 551 kbps, 1316-byte
// packets, windows of 101+9 (600 kbps effective).
func PaperGeometry() Geometry {
	return Geometry{
		RateBps:         551_000,
		PacketBytes:     1316,
		DataPerWindow:   101,
		ParityPerWindow: 9,
	}
}

// Validate checks the geometry is usable.
func (g Geometry) Validate() error {
	if g.RateBps <= 0 {
		return fmt.Errorf("stream: rate %d must be positive", g.RateBps)
	}
	if g.PacketBytes < 8 {
		return fmt.Errorf("stream: packet size %d too small (needs 8-byte header)", g.PacketBytes)
	}
	if g.DataPerWindow <= 0 || g.ParityPerWindow <= 0 {
		return fmt.Errorf("stream: window %d+%d invalid", g.DataPerWindow, g.ParityPerWindow)
	}
	if g.DataPerWindow+g.ParityPerWindow > 256 {
		return fmt.Errorf("stream: window %d+%d exceeds GF(256) erasure-code limit",
			g.DataPerWindow, g.ParityPerWindow)
	}
	return nil
}

// PacketsPerWindow returns DataPerWindow + ParityPerWindow.
func (g Geometry) PacketsPerWindow() int { return g.DataPerWindow + g.ParityPerWindow }

// Interval returns the source packet production period.
func (g Geometry) Interval() time.Duration {
	return time.Duration(int64(g.PacketBytes) * 8 * int64(time.Second) / g.RateBps)
}

// EffectiveRateBps returns the stream rate including parity overhead.
func (g Geometry) EffectiveRateBps() int64 {
	return g.RateBps * int64(g.PacketsPerWindow()) / int64(g.DataPerWindow)
}

// WindowOf returns the FEC window index of a packet.
func (g Geometry) WindowOf(id wire.PacketID) int {
	return int(id) / g.PacketsPerWindow()
}

// IndexInWindow returns the packet's position within its window; positions
// >= DataPerWindow are parity.
func (g Geometry) IndexInWindow(id wire.PacketID) int {
	return int(id) % g.PacketsPerWindow()
}

// IsParity reports whether the packet is an FEC parity packet.
func (g Geometry) IsParity(id wire.PacketID) bool {
	return g.IndexInWindow(id) >= g.DataPerWindow
}

// PacketIDAt returns the global packet id of the given window and
// within-window index.
func (g Geometry) PacketIDAt(window, index int) wire.PacketID {
	return wire.PacketID(window*g.PacketsPerWindow() + index)
}

// PublishOffset returns when a packet is published, relative to the
// production of the first packet. Source packet j of window w is the
// (w·Data + j)-th production tick; parity packets of window w are published
// together with the window's last source packet.
func (g Geometry) PublishOffset(id wire.PacketID) time.Duration {
	w := g.WindowOf(id)
	idx := g.IndexInWindow(id)
	tick := w*g.DataPerWindow + idx
	if idx >= g.DataPerWindow {
		tick = w*g.DataPerWindow + g.DataPerWindow - 1
	}
	return time.Duration(tick) * g.Interval()
}

// TotalPackets returns the number of packets in a stream of the given number
// of windows.
func (g Geometry) TotalPackets(windows int) int {
	return windows * g.PacketsPerWindow()
}

// WindowDuration returns the stream time covered by one window.
func (g Geometry) WindowDuration() time.Duration {
	return time.Duration(g.DataPerWindow) * g.Interval()
}

// PayloadFor deterministically generates the content of a source packet: an
// 8-byte big-endian id header followed by pseudo-random bytes keyed by the
// id. Receivers in verify mode regenerate and compare after FEC
// reconstruction, proving payload integrity end to end.
func (g Geometry) PayloadFor(id wire.PacketID) []byte {
	buf := make([]byte, g.PacketBytes)
	binary.BigEndian.PutUint64(buf, uint64(id))
	state := uint64(id)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for i := 8; i < len(buf); i += 8 {
		state = splitmix64(state)
		var chunk [8]byte
		binary.LittleEndian.PutUint64(chunk[:], state)
		copy(buf[i:], chunk[:])
	}
	return buf
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

package stream

import (
	"fmt"
	"time"

	"repro/internal/env"
	"repro/internal/fec"
	"repro/internal/wire"
)

// Publisher is where the source injects produced packets; core.Engine
// implements it (the broadcaster path of Algorithm 1).
type Publisher interface {
	Publish(ev wire.Event)
}

// SourceConfig parameterizes a stream source.
type SourceConfig struct {
	// Stream is the dissemination stream this source broadcasts on.
	// Multi-source deployments give every broadcaster its own stream id;
	// the zero value is the legacy single stream.
	Stream wire.StreamID
	// Geometry of the stream. Must validate.
	Geometry Geometry
	// Windows is how many complete FEC windows to stream.
	Windows int
	// StartAt delays the first packet relative to node start, giving the
	// aggregation protocol time to warm up.
	StartAt time.Duration
	// Publisher receives the produced events.
	Publisher Publisher
	// OnDone, if non-nil, fires once in the node's execution context when
	// the last packet has been published (e.g. to release the stream's
	// fanout-budget weight).
	OnDone func()
}

// Source produces the stream: one source packet per production tick, the
// window's parity packets immediately after its last source packet. It
// implements env.Handler (lifecycle only; it receives no messages) so it can
// be stacked on the source node next to the dissemination engine.
type Source struct {
	cfg    SourceConfig
	code   *fec.Code
	rt     env.Runtime
	ticker *env.Ticker

	nextTick int      // production tick counter == source packets produced
	window   [][]byte // source payloads of the window being produced

	// Published counts packets handed to the Publisher (source + parity).
	Published int
	// Done reports stream completion.
	Done bool
}

var _ env.Handler = (*Source)(nil)

// NewSource builds a Source. It returns an error for invalid configurations.
func NewSource(cfg SourceConfig) (*Source, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if cfg.Windows <= 0 {
		return nil, fmt.Errorf("stream: windows %d must be positive", cfg.Windows)
	}
	if cfg.Publisher == nil {
		return nil, fmt.Errorf("stream: publisher is required")
	}
	code, err := fec.New(cfg.Geometry.DataPerWindow, cfg.Geometry.ParityPerWindow)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	return &Source{
		cfg:    cfg,
		code:   code,
		window: make([][]byte, 0, cfg.Geometry.DataPerWindow),
	}, nil
}

// Start implements env.Handler.
func (s *Source) Start(rt env.Runtime) {
	s.rt = rt
	s.ticker = env.NewTicker(rt, s.cfg.StartAt, s.cfg.Geometry.Interval(), s.tick)
}

// Stop implements env.Handler.
func (s *Source) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

// Receive implements env.Handler; the source consumes no messages.
func (s *Source) Receive(wire.NodeID, wire.Message) {}

func (s *Source) tick() {
	g := s.cfg.Geometry
	if s.Done {
		return
	}
	w := s.nextTick / g.DataPerWindow
	j := s.nextTick % g.DataPerWindow

	id := g.PacketIDAt(w, j)
	payload := g.PayloadFor(id)
	s.window = append(s.window, payload)
	s.publish(id, payload)
	s.nextTick++

	if j == g.DataPerWindow-1 {
		s.emitParity(w)
		s.window = s.window[:0]
		if w == s.cfg.Windows-1 {
			s.Done = true
			s.ticker.Stop()
			if s.cfg.OnDone != nil {
				s.cfg.OnDone()
			}
		}
	}
}

func (s *Source) emitParity(w int) {
	g := s.cfg.Geometry
	parity, err := s.code.Encode(s.window)
	if err != nil {
		// Cannot happen: the window is complete and uniformly sized by
		// construction.
		panic(fmt.Sprintf("stream: FEC encode failed: %v", err))
	}
	for p, payload := range parity {
		s.publish(g.PacketIDAt(w, g.DataPerWindow+p), payload)
	}
}

func (s *Source) publish(id wire.PacketID, payload []byte) {
	s.cfg.Publisher.Publish(wire.Event{
		ID:      id,
		Stream:  s.cfg.Stream,
		Stamp:   int64(s.rt.Now()),
		Payload: payload,
	})
	s.Published++
}

// Package metrics computes every evaluation metric of the paper from raw
// delivery records: stream lag (§3.2), stream quality / jitter-free window
// percentages (§3.4), minimum lag for a jitter-free stream (§3.5),
// per-window decode coverage under churn (§3.6), per-class bandwidth usage
// (§3.3), and the CDFs the figures plot.
//
// Definitions used throughout (matching §3.2):
//
//   - The lag of a packet at a node is receiveTime − publishTime.
//   - A window is viewable at lag L when at least DataPerWindow of its
//     PacketsPerWindow packets arrived with lag ≤ L (systematic FEC: any 101
//     of 110 reconstruct the window). The window's decode lag is therefore
//     the DataPerWindow-th smallest packet lag within it.
//   - A window is jittered at lag L when its decode lag exceeds L.
//   - A node's stream is jitter-free at lag L when no window is jittered.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/stream"
	"repro/internal/wire"
)

// Never marks "not received" / "never decodable" lags.
const Never = time.Duration(math.MaxInt64)

// NodeRecord is one node's raw measurement data.
type NodeRecord struct {
	Node    wire.NodeID
	Class   string // capability class label, e.g. "512kbps"
	CapKbps uint32
	// Recv holds per-packet arrival times (absolute run time), indexed by
	// packet id; stream.NotReceived marks gaps.
	Recv []time.Duration
	// Excluded nodes (e.g. the source) are skipped by across-node
	// aggregations but kept for completeness.
	Excluded bool
	// Crashed nodes are included in per-window coverage denominators
	// (Fig 10 plots coverage against all original nodes) but skipped in
	// stream-quality aggregates.
	Crashed bool
}

// Run is the complete measurement record of one experiment.
type Run struct {
	Geometry stream.Geometry
	Windows  int
	// PublishAt holds per-packet publish times (absolute run time).
	PublishAt []time.Duration
	Nodes     []NodeRecord
}

// Validate checks structural consistency.
func (r *Run) Validate() error {
	total := r.Geometry.TotalPackets(r.Windows)
	if len(r.PublishAt) != total {
		return fmt.Errorf("metrics: %d publish times for %d packets", len(r.PublishAt), total)
	}
	for i := range r.Nodes {
		if len(r.Nodes[i].Recv) != total {
			return fmt.Errorf("metrics: node %d has %d records for %d packets",
				r.Nodes[i].Node, len(r.Nodes[i].Recv), total)
		}
	}
	return nil
}

// Lag returns packet id's lag at the given node record, or Never.
func (r *Run) Lag(n *NodeRecord, id int) time.Duration {
	at := n.Recv[id]
	if at == stream.NotReceived {
		return Never
	}
	lag := at - r.PublishAt[id]
	if lag < 0 {
		lag = 0
	}
	return lag
}

// LagForDeliveryRatio returns the minimum lag at which the node has received
// at least ratio (e.g. 0.99) of all *source* packets: the quantity plotted
// in Figures 1-3. Returns Never when the node never reaches the ratio.
func (r *Run) LagForDeliveryRatio(n *NodeRecord, ratio float64) time.Duration {
	g := r.Geometry
	lags := make([]time.Duration, 0, r.Windows*g.DataPerWindow)
	totalSource := r.Windows * g.DataPerWindow
	for id := range n.Recv {
		if g.IsParity(wire.PacketID(id)) {
			continue
		}
		if lag := r.Lag(n, id); lag != Never {
			lags = append(lags, lag)
		}
	}
	need := int(math.Ceil(ratio * float64(totalSource)))
	if need <= 0 {
		return 0
	}
	if len(lags) < need {
		return Never
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	return lags[need-1]
}

// WindowDecodeLags returns, for every window, the minimum lag at which the
// node can fully decode it (Never when it never can): the DataPerWindow-th
// smallest packet lag within the window.
func (r *Run) WindowDecodeLags(n *NodeRecord) []time.Duration {
	g := r.Geometry
	ppw := g.PacketsPerWindow()
	out := make([]time.Duration, r.Windows)
	lags := make([]time.Duration, 0, ppw)
	for w := 0; w < r.Windows; w++ {
		lags = lags[:0]
		base := w * ppw
		for i := 0; i < ppw; i++ {
			if lag := r.Lag(n, base+i); lag != Never {
				lags = append(lags, lag)
			}
		}
		if len(lags) < g.DataPerWindow {
			out[w] = Never
			continue
		}
		sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
		out[w] = lags[g.DataPerWindow-1]
	}
	return out
}

// decodableAt reports whether a window with decode lag d is viewable at
// playback lag L. Offline viewing is expressed as L = Never: a window is
// then viewable iff it is ever decodable.
func decodableAt(d, lag time.Duration) bool {
	if d == Never {
		return false
	}
	return d <= lag
}

// JitterFreeShare returns the fraction of the node's windows that are
// viewable at the given playback lag (Figures 5-6 plot its mean per class;
// Figure 7 plots the CDF of 1 minus it).
func (r *Run) JitterFreeShare(n *NodeRecord, lag time.Duration) float64 {
	decodeLags := r.WindowDecodeLags(n)
	ok := 0
	for _, d := range decodeLags {
		if decodableAt(d, lag) {
			ok++
		}
	}
	return float64(ok) / float64(len(decodeLags))
}

// MinLagForJitterFree returns the smallest playback lag at which at most
// maxJitter (fraction, e.g. 0 or 0.01) of the node's windows are jittered:
// the quantity of Figures 8-9. Returns Never when even offline viewing
// leaves more than maxJitter windows undecodable.
func (r *Run) MinLagForJitterFree(n *NodeRecord, maxJitter float64) time.Duration {
	decodeLags := r.WindowDecodeLags(n)
	sort.Slice(decodeLags, func(i, j int) bool { return decodeLags[i] < decodeLags[j] })
	// We may leave up to floor(maxJitter·W) windows jittered; the required
	// lag is the largest decode lag among the windows we must cover.
	allowed := int(math.Floor(maxJitter * float64(len(decodeLags))))
	idx := len(decodeLags) - 1 - allowed
	if idx < 0 {
		return 0
	}
	return decodeLags[idx]
}

// DeliveryRatioInJitteredWindows returns the node's average delivery ratio
// (source packets arrived by their playback deadline / DataPerWindow) over
// the windows that are jittered at the given lag — Table 2. The boolean
// reports whether the node had any jittered window.
func (r *Run) DeliveryRatioInJitteredWindows(n *NodeRecord, lag time.Duration) (float64, bool) {
	g := r.Geometry
	ppw := g.PacketsPerWindow()
	decodeLags := r.WindowDecodeLags(n)
	var sum float64
	var count int
	for w, d := range decodeLags {
		if decodableAt(d, lag) {
			continue
		}
		got := 0
		base := w * ppw
		for i := 0; i < g.DataPerWindow; i++ {
			if l := r.Lag(n, base+i); l != Never && l <= lag {
				got++
			}
		}
		sum += float64(got) / float64(g.DataPerWindow)
		count++
	}
	if count == 0 {
		return 0, false
	}
	return sum / float64(count), true
}

// PerWindowCoverage returns, for each window, the fraction of nodes
// (counting crashed nodes, excluding Excluded ones) that can decode it at
// the given playback lag — Figure 10.
func (r *Run) PerWindowCoverage(lag time.Duration) []float64 {
	out := make([]float64, r.Windows)
	nodes := 0
	for i := range r.Nodes {
		n := &r.Nodes[i]
		if n.Excluded {
			continue
		}
		nodes++
		for w, d := range r.WindowDecodeLags(n) {
			if decodableAt(d, lag) {
				out[w]++
			}
		}
	}
	if nodes == 0 {
		return out
	}
	for w := range out {
		out[w] /= float64(nodes)
	}
	return out
}

// included yields the node records that participate in across-node
// aggregations.
func (r *Run) included() []*NodeRecord {
	out := make([]*NodeRecord, 0, len(r.Nodes))
	for i := range r.Nodes {
		n := &r.Nodes[i]
		if n.Excluded || n.Crashed {
			continue
		}
		out = append(out, n)
	}
	return out
}

// Classes returns the distinct class labels among included nodes, ordered by
// ascending capability.
func (r *Run) Classes() []string {
	type classInfo struct {
		label string
		cap   uint32
	}
	seen := map[string]uint32{}
	for _, n := range r.included() {
		seen[n.Class] = n.CapKbps
	}
	infos := make([]classInfo, 0, len(seen))
	for label, c := range seen {
		infos = append(infos, classInfo{label, c})
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].cap != infos[j].cap {
			return infos[i].cap < infos[j].cap
		}
		return infos[i].label < infos[j].label
	})
	out := make([]string, len(infos))
	for i, ci := range infos {
		out[i] = ci.label
	}
	return out
}

// PerNode maps fn over all included nodes and returns the values.
func (r *Run) PerNode(fn func(n *NodeRecord) float64) []float64 {
	nodes := r.included()
	out := make([]float64, len(nodes))
	for i, n := range nodes {
		out[i] = fn(n)
	}
	return out
}

// PerClass maps fn over included nodes grouped by class label.
func (r *Run) PerClass(fn func(n *NodeRecord) float64) map[string][]float64 {
	out := make(map[string][]float64)
	for _, n := range r.included() {
		out[n.Class] = append(out[n.Class], fn(n))
	}
	return out
}

// ClassMeans returns the per-class mean of fn over included nodes.
func (r *Run) ClassMeans(fn func(n *NodeRecord) float64) map[string]float64 {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, n := range r.included() {
		sums[n.Class] += fn(n)
		counts[n.Class]++
	}
	out := make(map[string]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// Seconds converts a lag to float seconds, mapping Never to +Inf.
func Seconds(d time.Duration) float64 {
	if d == Never {
		return math.Inf(1)
	}
	return d.Seconds()
}

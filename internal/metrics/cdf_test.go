package metrics

import (
	"math"
	"testing"
)

func TestMergeCDFs(t *testing.T) {
	a := NewCDF([]float64{1, 3, 5})
	b := NewCDF([]float64{2, 4, math.Inf(1)})
	m := MergeCDFs(a, b)
	if m.N != 6 {
		t.Fatalf("merged N = %d, want 6", m.N)
	}
	want := []float64{1, 2, 3, 4, 5, math.Inf(1)}
	for i, v := range want {
		if m.Values[i] != v {
			t.Fatalf("merged values %v, want %v", m.Values, want)
		}
	}
	// The merge is the CDF of the pooled population: fractions reweight.
	if got := m.FractionAtOrBelow(3); got != 0.5 {
		t.Fatalf("merged F(3) = %v, want 0.5", got)
	}
	if got := a.FractionAtOrBelow(3); got != 2.0/3 {
		t.Fatalf("input CDF mutated or wrong: F(3) = %v", got)
	}
	// Degenerate cases.
	if empty := MergeCDFs(); empty.N != 0 {
		t.Fatalf("empty merge N = %d", empty.N)
	}
	if one := MergeCDFs(a); one.N != 3 || one.ValueAtPercentile(100) != 5 {
		t.Fatalf("single merge = %+v", one)
	}
}

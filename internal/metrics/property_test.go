package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stream"
	"repro/internal/wire"
)

// randomRun builds a Run with random delivery records.
func randomRun(rng *rand.Rand) *Run {
	g := stream.Geometry{RateBps: 8000, PacketBytes: 100, DataPerWindow: 4, ParityPerWindow: 2}
	windows := 1 + rng.Intn(6)
	total := g.TotalPackets(windows)
	pub := make([]time.Duration, total)
	for id := 0; id < total; id++ {
		pub[id] = g.PublishOffset(wire.PacketID(id))
	}
	run := &Run{Geometry: g, Windows: windows, PublishAt: pub}
	nodes := 1 + rng.Intn(4)
	for n := 0; n < nodes; n++ {
		recv := make([]time.Duration, total)
		for id := 0; id < total; id++ {
			if rng.Float64() < 0.3 {
				recv[id] = stream.NotReceived
			} else {
				recv[id] = pub[id] + time.Duration(rng.Intn(5000))*time.Millisecond
			}
		}
		run.Nodes = append(run.Nodes, NodeRecord{Node: wire.NodeID(n), Class: "c", Recv: recv})
	}
	return run
}

// TestJitterFreeShareMonotoneInLag: allowing more playback lag can only make
// more windows viewable.
func TestJitterFreeShareMonotoneInLag(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(1))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		run := randomRun(rng)
		n := &run.Nodes[0]
		prev := -1.0
		for _, lag := range []time.Duration{0, time.Second, 2 * time.Second, 5 * time.Second, Never} {
			share := run.JitterFreeShare(n, lag)
			if share < prev {
				return false
			}
			prev = share
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestMinLagConsistentWithShare: at the lag MinLagForJitterFree returns, the
// jitter constraint must hold; just below it (when finite), it must not.
func TestMinLagConsistentWithShare(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(2))}
	err := quick.Check(func(seed int64, jitterPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		run := randomRun(rng)
		n := &run.Nodes[0]
		maxJitter := float64(jitterPct%30) / 100
		minLag := run.MinLagForJitterFree(n, maxJitter)
		if minLag == Never {
			// Even offline viewing can't satisfy the constraint.
			return 1-run.JitterFreeShare(n, Never) > maxJitter
		}
		okAt := 1-run.JitterFreeShare(n, minLag) <= maxJitter+1e-9
		if !okAt {
			return false
		}
		if minLag == 0 {
			return true
		}
		// One nanosecond earlier must violate the constraint.
		return 1-run.JitterFreeShare(n, minLag-1) > maxJitter
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestLagForDeliveryRatioMonotoneInRatio: demanding a larger share of the
// stream can only require a larger (or equal) lag.
func TestLagForDeliveryRatioMonotoneInRatio(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(3))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		run := randomRun(rng)
		n := &run.Nodes[0]
		prev := time.Duration(-1)
		for _, ratio := range []float64{0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			lag := run.LagForDeliveryRatio(n, ratio)
			if lag < prev && lag != Never {
				return false
			}
			if prev == Never && lag != Never {
				return false
			}
			prev = lag
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestCoverageBounds: per-window coverage is always a fraction.
func TestCoverageBounds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(4))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		run := randomRun(rng)
		for _, lag := range []time.Duration{0, time.Second, Never} {
			for _, c := range run.PerWindowCoverage(lag) {
				if c < 0 || c > 1 {
					return false
				}
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestCDFPercentileInverse: ValueAtPercentile and FractionAtOrBelow are
// consistent: F(V(p)) >= p/100.
func TestCDFPercentileInverse(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 100
		}
		cdf := NewCDF(samples)
		for _, p := range []float64{1, 25, 50, 75, 99, 100} {
			v := cdf.ValueAtPercentile(p)
			if cdf.FractionAtOrBelow(v)*100 < p-1e-9 {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

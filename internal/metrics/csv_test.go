package metrics

import (
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/wire"
)

func csvRun(t *testing.T) *Run {
	t.Helper()
	g := stream.Geometry{RateBps: 8000, PacketBytes: 100, DataPerWindow: 3, ParityPerWindow: 2}
	total := g.TotalPackets(1)
	pub := make([]time.Duration, total)
	for id := 0; id < total; id++ {
		pub[id] = g.PublishOffset(wire.PacketID(id))
	}
	recv := make([]time.Duration, total)
	for id := range recv {
		recv[id] = pub[id] + 10*time.Millisecond
	}
	recv[4] = stream.NotReceived
	return &Run{
		Geometry:  g,
		Windows:   1,
		PublishAt: pub,
		Nodes: []NodeRecord{
			{Node: 0, Class: "src", CapKbps: 9999, Recv: append([]time.Duration(nil), pub...), Excluded: true},
			{Node: 1, Class: "poor", CapKbps: 256, Recv: recv},
		},
	}
}

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid csv: %v\n%s", err, s)
	}
	return recs
}

func TestWriteSeriesCSV(t *testing.T) {
	var sb strings.Builder
	series := []Series{
		{Name: "heap", Points: []Point{{1, 50}, {2, 90}}},
		{Name: "std", Points: []Point{{3, 10}}},
	}
	if err := WriteSeriesCSV(&sb, series); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 4 {
		t.Fatalf("rows = %d, want 4", len(recs))
	}
	if recs[0][0] != "series" || recs[1][0] != "heap" || recs[3][0] != "std" {
		t.Fatalf("unexpected rows: %v", recs)
	}
}

func TestWriteNodeMetricsCSV(t *testing.T) {
	run := csvRun(t)
	var sb strings.Builder
	err := WriteNodeMetricsCSV(&sb, run, map[string]func(*NodeRecord) float64{
		"received": func(n *NodeRecord) float64 {
			c := 0.0
			for _, at := range n.Recv {
				if at != stream.NotReceived {
					c++
				}
			}
			return c
		},
		"jitterfree": func(n *NodeRecord) float64 { return run.JitterFreeShare(n, time.Second) },
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	// Header + node 1 only (node 0 excluded).
	if len(recs) != 2 {
		t.Fatalf("rows = %d, want 2:\n%v", len(recs), recs)
	}
	// Columns sorted: node,class,cap_kbps,jitterfree,received.
	if recs[0][3] != "jitterfree" || recs[0][4] != "received" {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][1] != "poor" || recs[1][4] != "4" {
		t.Fatalf("row = %v", recs[1])
	}
}

func TestWriteDeliveryCSV(t *testing.T) {
	run := csvRun(t)
	var sb strings.Builder
	if err := WriteDeliveryCSV(&sb, run); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	// Header + 4 received packets of node 1 (packet 4 missing, node 0 excluded).
	if len(recs) != 5 {
		t.Fatalf("rows = %d, want 5:\n%v", len(recs), recs)
	}
	if recs[1][4] != "0.010000" {
		t.Fatalf("lag cell = %q, want 0.010000", recs[1][4])
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	s.Add("p50_lag_s", 4.4)
	s.Add("jitterfree", 0.93)
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, sb.String())
	if len(recs) != 2 || recs[0][0] != "p50_lag_s" || recs[1][1] != "0.93" {
		t.Fatalf("summary csv: %v", recs)
	}
	if got := s.String(); !strings.Contains(got, "p50_lag_s=4.4") {
		t.Fatalf("summary string: %s", got)
	}
}

package metrics

import (
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution: sorted sample values with
// their cumulative fractions.
type CDF struct {
	// Values are the sorted sample values (may include +Inf for Never).
	Values []float64
	// N is the sample count.
	N int
}

// NewCDF builds an empirical CDF from samples (not modified).
func NewCDF(samples []float64) CDF {
	vs := make([]float64, len(samples))
	copy(vs, samples)
	sort.Float64s(vs)
	return CDF{Values: vs, N: len(vs)}
}

// MergeCDFs merges empirical CDFs into one over the union of their samples —
// the exact CDF of the pooled population (sweep replicas merge their per-node
// lag distributions this way).
func MergeCDFs(cdfs ...CDF) CDF {
	total := 0
	for _, c := range cdfs {
		total += c.N
	}
	vs := make([]float64, 0, total)
	for _, c := range cdfs {
		vs = append(vs, c.Values...)
	}
	sort.Float64s(vs)
	return CDF{Values: vs, N: len(vs)}
}

// FractionAtOrBelow returns the fraction of samples <= x.
func (c CDF) FractionAtOrBelow(x float64) float64 {
	if c.N == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.Values, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(c.N)
}

// ValueAtPercentile returns the smallest sample value v such that at least
// pct (in [0,100]) of the samples are <= v. Returns NaN for empty samples.
func (c CDF) ValueAtPercentile(pct float64) float64 {
	if c.N == 0 {
		return math.NaN()
	}
	if pct <= 0 {
		return c.Values[0]
	}
	idx := int(math.Ceil(pct/100*float64(c.N))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= c.N {
		idx = c.N - 1
	}
	return c.Values[idx]
}

// FiniteMax returns the largest finite sample, or 0 if none.
func (c CDF) FiniteMax() float64 {
	for i := c.N - 1; i >= 0; i-- {
		if !math.IsInf(c.Values[i], 1) {
			return c.Values[i]
		}
	}
	return 0
}

// Points samples the CDF at the given x values, returning the cumulative
// percentage (0-100) at each.
func (c CDF) Points(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 100 * c.FractionAtOrBelow(x)
	}
	return out
}

// Mean returns the mean of the finite samples (NaN if none).
func Mean(samples []float64) float64 {
	var sum float64
	var n int
	for _, v := range samples {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/wire"
)

// tinyGeom: windows of 3 source + 2 parity packets, 100 B at 8 kbps
// -> interval = 100ms, window = 5 packets.
func tinyGeom() stream.Geometry {
	return stream.Geometry{RateBps: 8_000, PacketBytes: 100, DataPerWindow: 3, ParityPerWindow: 2}
}

// buildRun constructs a Run with the given per-node lags (in ms); -1 = never
// received. lags[node][packet].
func buildRun(t *testing.T, g stream.Geometry, windows int, lags [][]int) *Run {
	t.Helper()
	total := g.TotalPackets(windows)
	pub := make([]time.Duration, total)
	for id := 0; id < total; id++ {
		pub[id] = g.PublishOffset(wire.PacketID(id))
	}
	run := &Run{Geometry: g, Windows: windows, PublishAt: pub}
	for ni, nodeLags := range lags {
		if len(nodeLags) != total {
			t.Fatalf("node %d: %d lags for %d packets", ni, len(nodeLags), total)
		}
		recv := make([]time.Duration, total)
		for id, ms := range nodeLags {
			if ms < 0 {
				recv[id] = stream.NotReceived
			} else {
				recv[id] = pub[id] + time.Duration(ms)*time.Millisecond
			}
		}
		run.Nodes = append(run.Nodes, NodeRecord{
			Node:  wire.NodeID(ni),
			Class: "test",
			Recv:  recv,
		})
	}
	if err := run.Validate(); err != nil {
		t.Fatal(err)
	}
	return run
}

func TestValidateDimensions(t *testing.T) {
	g := tinyGeom()
	run := &Run{Geometry: g, Windows: 2, PublishAt: make([]time.Duration, 3)}
	if err := run.Validate(); err == nil {
		t.Fatal("wrong publish count accepted")
	}
}

func TestWindowDecodeLags(t *testing.T) {
	g := tinyGeom()
	// One window, 5 packets. Lags 10,20,30,40,50 ms: decodable (3 of 5)
	// once the 3rd-smallest lag (30 ms) is reached.
	run := buildRun(t, g, 1, [][]int{{10, 20, 30, 40, 50}})
	d := run.WindowDecodeLags(&run.Nodes[0])
	if len(d) != 1 || d[0] != 30*time.Millisecond {
		t.Fatalf("decode lags = %v, want [30ms]", d)
	}
	// Only 2 packets received: never decodable.
	run2 := buildRun(t, g, 1, [][]int{{10, 20, -1, -1, -1}})
	d2 := run2.WindowDecodeLags(&run2.Nodes[0])
	if d2[0] != Never {
		t.Fatalf("decode lag = %v, want Never", d2[0])
	}
	// Parity packets count toward decodability: source missing entirely.
	run3 := buildRun(t, g, 1, [][]int{{-1, -1, 5, 15, 25}})
	d3 := run3.WindowDecodeLags(&run3.Nodes[0])
	if d3[0] != 25*time.Millisecond {
		t.Fatalf("decode lag = %v, want 25ms (parity counts)", d3[0])
	}
}

func TestJitterFreeShare(t *testing.T) {
	g := tinyGeom()
	// Two windows: first decodable at 30ms, second never (2 received).
	run := buildRun(t, g, 2, [][]int{{10, 20, 30, 40, 50, 10, 20, -1, -1, -1}})
	n := &run.Nodes[0]
	if got := run.JitterFreeShare(n, 30*time.Millisecond); got != 0.5 {
		t.Fatalf("share at 30ms = %v, want 0.5", got)
	}
	if got := run.JitterFreeShare(n, 20*time.Millisecond); got != 0 {
		t.Fatalf("share at 20ms = %v, want 0", got)
	}
	// Offline: still only window 0 is ever decodable.
	if got := run.JitterFreeShare(n, Never); got != 0.5 {
		t.Fatalf("offline share = %v, want 0.5", got)
	}
}

func TestMinLagForJitterFree(t *testing.T) {
	g := tinyGeom()
	// Four windows with decode lags 30, 60, 90, Never-free? Construct:
	// w0: lags 10,20,30 -> 30ms; w1: 40,50,60 -> 60ms; w2: 70,80,90 -> 90ms;
	// w3: 10,10,10 -> 10ms.
	lags := []int{
		10, 20, 30, -1, -1,
		40, 50, 60, -1, -1,
		70, 80, 90, -1, -1,
		10, 10, 10, -1, -1,
	}
	run := buildRun(t, g, 4, [][]int{lags})
	n := &run.Nodes[0]
	if got := run.MinLagForJitterFree(n, 0); got != 90*time.Millisecond {
		t.Fatalf("min lag (0%% jitter) = %v, want 90ms", got)
	}
	// Allowing 25% jitter drops the worst window (90ms) from the requirement.
	if got := run.MinLagForJitterFree(n, 0.25); got != 60*time.Millisecond {
		t.Fatalf("min lag (25%% jitter) = %v, want 60ms", got)
	}
	// A never-decodable window forces Never at 0% jitter tolerance.
	lags2 := append([]int{}, lags...)
	lags2[0], lags2[1], lags2[2] = -1, -1, -1 // w0 now has only parity... none received
	run2 := buildRun(t, g, 4, [][]int{lags2})
	if got := run2.MinLagForJitterFree(&run2.Nodes[0], 0); got != Never {
		t.Fatalf("min lag with dead window = %v, want Never", got)
	}
	if got := run2.MinLagForJitterFree(&run2.Nodes[0], 0.25); got != 90*time.Millisecond {
		t.Fatalf("min lag (25%%) with dead window = %v, want 90ms", got)
	}
}

func TestLagForDeliveryRatio(t *testing.T) {
	g := tinyGeom()
	// 2 windows = 6 source packets. Lags: 10..60ms. 99% of 6 -> need all 6:
	// lag = 60ms. 50% -> need 3: lag = 30ms.
	lags := []int{10, 20, 30, -1, -1, 40, 50, 60, -1, -1}
	run := buildRun(t, g, 2, [][]int{lags})
	n := &run.Nodes[0]
	if got := run.LagForDeliveryRatio(n, 0.99); got != 60*time.Millisecond {
		t.Fatalf("lag@99%% = %v, want 60ms", got)
	}
	if got := run.LagForDeliveryRatio(n, 0.5); got != 30*time.Millisecond {
		t.Fatalf("lag@50%% = %v, want 30ms", got)
	}
	// Missing a source packet: 99% unreachable.
	lags2 := append([]int{}, lags...)
	lags2[0] = -1
	run2 := buildRun(t, g, 2, [][]int{lags2})
	if got := run2.LagForDeliveryRatio(&run2.Nodes[0], 0.99); got != Never {
		t.Fatalf("lag@99%% with loss = %v, want Never", got)
	}
	// Parity packets must not count toward the stream delivery ratio: with
	// all parity present but only 3 of 6 source, 0.99 is unreachable.
	lags3 := []int{10, 20, 30, 5, 5, -1, -1, -1, 5, 5}
	run3 := buildRun(t, g, 2, [][]int{lags3})
	if got := run3.LagForDeliveryRatio(&run3.Nodes[0], 0.99); got != Never {
		t.Fatalf("parity counted in delivery ratio: %v", got)
	}
}

func TestDeliveryRatioInJitteredWindows(t *testing.T) {
	g := tinyGeom()
	// w0 decodable at 30ms; w1 jittered at 30ms with 2 of 3 source arrived
	// by the deadline (lags 10 and 20; third never).
	lags := []int{10, 20, 30, -1, -1, 10, 20, -1, -1, -1}
	run := buildRun(t, g, 2, [][]int{lags})
	n := &run.Nodes[0]
	ratio, any := run.DeliveryRatioInJitteredWindows(n, 30*time.Millisecond)
	if !any {
		t.Fatal("expected a jittered window")
	}
	if want := 2.0 / 3.0; math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("ratio = %v, want %v", ratio, want)
	}
	// At offline lag the only jittered window is w1 (never decodable).
	ratio, any = run.DeliveryRatioInJitteredWindows(n, Never)
	if !any || math.Abs(ratio-2.0/3.0) > 1e-9 {
		t.Fatalf("offline ratio = %v,%v", ratio, any)
	}
	// Node with everything on time has no jittered windows.
	lags2 := []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	run2 := buildRun(t, g, 2, [][]int{lags2})
	if _, any := run2.DeliveryRatioInJitteredWindows(&run2.Nodes[0], time.Second); any {
		t.Fatal("fully delivered node reported jittered windows")
	}
}

func TestPerWindowCoverage(t *testing.T) {
	g := tinyGeom()
	// Node 0 decodes w0 at 30ms and w1 never; node 1 decodes both at 10ms.
	lags := [][]int{
		{10, 20, 30, -1, -1, 10, 20, -1, -1, -1},
		{10, 10, 10, -1, -1, 10, 10, 10, -1, -1},
	}
	run := buildRun(t, g, 2, lags)
	cov := run.PerWindowCoverage(50 * time.Millisecond)
	if cov[0] != 1.0 {
		t.Fatalf("w0 coverage = %v, want 1", cov[0])
	}
	if cov[1] != 0.5 {
		t.Fatalf("w1 coverage = %v, want 0.5", cov[1])
	}
	// Excluded nodes leave the denominator; crashed nodes stay.
	run.Nodes[1].Excluded = true
	cov = run.PerWindowCoverage(50 * time.Millisecond)
	if cov[1] != 0 {
		t.Fatalf("w1 coverage after exclusion = %v, want 0", cov[1])
	}
}

func TestClassGrouping(t *testing.T) {
	g := tinyGeom()
	lags := [][]int{
		{1, 1, 1, 1, 1},
		{1, 1, 1, 1, 1},
		{1, 1, 1, 1, 1},
	}
	run := buildRun(t, g, 1, lags)
	run.Nodes[0].Class, run.Nodes[0].CapKbps = "poor", 256
	run.Nodes[1].Class, run.Nodes[1].CapKbps = "rich", 2000
	run.Nodes[2].Class, run.Nodes[2].CapKbps = "poor", 256
	classes := run.Classes()
	if len(classes) != 2 || classes[0] != "poor" || classes[1] != "rich" {
		t.Fatalf("classes = %v", classes)
	}
	means := run.ClassMeans(func(n *NodeRecord) float64 {
		if n.Class == "rich" {
			return 10
		}
		return 4
	})
	if means["poor"] != 4 || means["rich"] != 10 {
		t.Fatalf("means = %v", means)
	}
	vals := run.PerClass(func(n *NodeRecord) float64 { return 1 })
	if len(vals["poor"]) != 2 || len(vals["rich"]) != 1 {
		t.Fatalf("per-class = %v", vals)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if got := c.FractionAtOrBelow(2); got != 0.5 {
		t.Fatalf("F(2) = %v, want 0.5", got)
	}
	if got := c.FractionAtOrBelow(0.5); got != 0 {
		t.Fatalf("F(0.5) = %v, want 0", got)
	}
	if got := c.FractionAtOrBelow(4); got != 1 {
		t.Fatalf("F(4) = %v, want 1", got)
	}
	if got := c.ValueAtPercentile(50); got != 2 {
		t.Fatalf("P50 = %v, want 2", got)
	}
	if got := c.ValueAtPercentile(100); got != 4 {
		t.Fatalf("P100 = %v, want 4", got)
	}
	if got := c.ValueAtPercentile(0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
	inf := NewCDF([]float64{1, math.Inf(1)})
	if got := inf.FiniteMax(); got != 1 {
		t.Fatalf("FiniteMax = %v, want 1", got)
	}
	if got := NewCDF(nil).ValueAtPercentile(50); !math.IsNaN(got) {
		t.Fatalf("empty CDF percentile = %v, want NaN", got)
	}
}

func TestMeanSkipsInfinities(t *testing.T) {
	if got := Mean([]float64{1, 3, math.Inf(1)}); got != 2 {
		t.Fatalf("mean = %v, want 2", got)
	}
	if got := Mean([]float64{math.Inf(1)}); !math.IsNaN(got) {
		t.Fatalf("mean of inf = %v, want NaN", got)
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(1500 * time.Millisecond); got != 1.5 {
		t.Fatalf("Seconds = %v", got)
	}
	if got := Seconds(Never); !math.IsInf(got, 1) {
		t.Fatalf("Seconds(Never) = %v, want +Inf", got)
	}
}

func TestPlotRender(t *testing.T) {
	p := Plot{Title: "test plot", XLabel: "seconds", YLabel: "% nodes", XMax: 10, YMax: 100}
	p.Add("heap", []Point{{1, 50}, {2, 90}, {3, 100}})
	p.Add("std", []Point{{5, 50}, {8, 90}})
	out := p.Render()
	for _, want := range []string{"test plot", "heap", "std", "seconds", "% nodes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot output missing %q:\n%s", want, out)
		}
	}
	// Inf points must not panic or appear.
	p2 := Plot{}
	p2.Add("x", []Point{{math.Inf(1), 1}, {1, math.NaN()}})
	_ = p2.Render()
}

func TestTableRender(t *testing.T) {
	tb := Table{Headers: []string{"class", "std", "heap"}}
	tb.AddRow("512kbps", "42.8%", "83.7%")
	tb.AddRow("3Mbps", "64.5%", "90.9%")
	out := tb.Render()
	if !strings.Contains(out, "512kbps") || !strings.Contains(out, "83.7%") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
}

func TestCDFSeries(t *testing.T) {
	pts := CDFSeries([]float64{1, 2, math.Inf(1), 3})
	if len(pts) != 3 {
		t.Fatalf("CDFSeries kept %d finite points, want 3", len(pts))
	}
	if pts[2].Y != 75 {
		t.Fatalf("last finite point at %v%%, want 75", pts[2].Y)
	}
}

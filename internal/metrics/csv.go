package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteSeriesCSV writes named (x, y) series in long format:
// series,x,y — one row per point. Suitable for gnuplot/pandas replotting of
// any figure.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			rec := []string{
				s.Name,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteNodeMetricsCSV writes one row per included node with arbitrary named
// metric columns computed by the supplied functions.
func WriteNodeMetricsCSV(w io.Writer, run *Run, columns map[string]func(*NodeRecord) float64) error {
	cw := csv.NewWriter(w)
	names := make([]string, 0, len(columns))
	for name := range columns {
		names = append(names, name)
	}
	sort.Strings(names)
	header := append([]string{"node", "class", "cap_kbps"}, names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range run.Nodes {
		n := &run.Nodes[i]
		if n.Excluded {
			continue
		}
		rec := make([]string, 0, len(header))
		rec = append(rec,
			strconv.Itoa(int(n.Node)),
			n.Class,
			strconv.FormatUint(uint64(n.CapKbps), 10))
		for _, name := range names {
			rec = append(rec, strconv.FormatFloat(columns[name](n), 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDeliveryCSV dumps the raw delivery matrix (one row per node-packet
// pair that arrived): node,packet,publish_s,recv_s,lag_s. This is the
// complete ground truth of a run; everything else derives from it.
func WriteDeliveryCSV(w io.Writer, run *Run) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node", "packet", "publish_s", "recv_s", "lag_s"}); err != nil {
		return err
	}
	for i := range run.Nodes {
		n := &run.Nodes[i]
		if n.Excluded {
			continue
		}
		for id := range n.Recv {
			lag := run.Lag(n, id)
			if lag == Never {
				continue
			}
			rec := []string{
				strconv.Itoa(int(n.Node)),
				strconv.Itoa(id),
				fmtSeconds(run.PublishAt[id]),
				fmtSeconds(n.Recv[id]),
				fmtSeconds(lag),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 6, 64)
}

// Summary produces the per-run scalar summary used by heapsim and the CSV
// exports: a stable, ordered list of (name, value) pairs.
type Summary struct {
	Fields []SummaryField
}

// SummaryField is one named scalar.
type SummaryField struct {
	Name  string
	Value float64
}

// Add appends a field.
func (s *Summary) Add(name string, value float64) {
	s.Fields = append(s.Fields, SummaryField{Name: name, Value: value})
}

// WriteCSV writes the summary as a two-line CSV (header + values).
func (s *Summary) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	names := make([]string, len(s.Fields))
	vals := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
		vals[i] = strconv.FormatFloat(f.Value, 'g', -1, 64)
	}
	if err := cw.Write(names); err != nil {
		return err
	}
	if err := cw.Write(vals); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// String renders the summary as "name=value" pairs.
func (s *Summary) String() string {
	out := ""
	for i, f := range s.Fields {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%.4g", f.Name, f.Value)
	}
	return out
}

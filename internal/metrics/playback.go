package metrics

import (
	"sort"
	"time"
)

// PlaybackReport describes the viewer experience of one node for a given
// startup delay (the paper's footnote 8 distinguishes startup delay from
// stream lag; this model connects them).
//
// The player starts rendering the first window startup-delay after its
// publication and then consumes one window per window duration. A window
// that is not decodable when its play-out instant arrives either stalls the
// player until it becomes decodable (rebuffering) or, if it never becomes
// decodable, is skipped (jitter).
type PlaybackReport struct {
	// Startup is the startup delay the report was computed for.
	Startup time.Duration
	// Stalls is the number of rebuffering pauses.
	Stalls int
	// StallTime is the total paused time.
	StallTime time.Duration
	// SkippedWindows counts windows never decodable (skipped with jitter).
	SkippedWindows int
	// FinalLag is the effective stream lag at the end: Startup plus all
	// accumulated stall time.
	FinalLag time.Duration
}

// windowDecodeTimes returns, per window, the absolute time the window
// becomes fully decodable (the DataPerWindow-th earliest arrival), or Never.
func (r *Run) windowDecodeTimes(n *NodeRecord) []time.Duration {
	g := r.Geometry
	ppw := g.PacketsPerWindow()
	out := make([]time.Duration, r.Windows)
	arrivals := make([]time.Duration, 0, ppw)
	for w := 0; w < r.Windows; w++ {
		arrivals = arrivals[:0]
		base := w * ppw
		for i := 0; i < ppw; i++ {
			if at := n.Recv[base+i]; at >= 0 {
				arrivals = append(arrivals, at)
			}
		}
		if len(arrivals) < g.DataPerWindow {
			out[w] = Never
			continue
		}
		sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })
		out[w] = arrivals[g.DataPerWindow-1]
	}
	return out
}

// Playback simulates a player with the given startup delay at node n and
// returns its experience. The play-out instant of window w is
//
//	publish(last packet of w) + startup + accumulated stalls
//
// i.e. a window can be rendered only once it could have been fully
// published; stalls push every subsequent window back (live viewing falls
// further behind the broadcast, exactly like real players).
func (r *Run) Playback(n *NodeRecord, startup time.Duration) PlaybackReport {
	g := r.Geometry
	decode := r.windowDecodeTimes(n)
	rep := PlaybackReport{Startup: startup}
	var stallAccum time.Duration
	for w := 0; w < r.Windows; w++ {
		// The window's content is complete at the publish time of its last
		// packet; the player renders it startup (+stalls) later.
		lastID := g.PacketIDAt(w, g.PacketsPerWindow()-1)
		playAt := r.PublishAt[lastID] + startup + stallAccum
		switch {
		case decode[w] == Never:
			rep.SkippedWindows++
		case decode[w] <= playAt:
			// On time.
		default:
			stall := decode[w] - playAt
			rep.Stalls++
			rep.StallTime += stall
			stallAccum += stall
		}
	}
	rep.FinalLag = startup + stallAccum
	return rep
}

// MinStartupForSmoothPlayback returns the smallest startup delay with which
// the player neither stalls nor skips (Never if some window is never
// decodable). This is the viewer-facing equivalent of MinLagForJitterFree.
func (r *Run) MinStartupForSmoothPlayback(n *NodeRecord) time.Duration {
	g := r.Geometry
	decode := r.windowDecodeTimes(n)
	var need time.Duration
	for w := 0; w < r.Windows; w++ {
		if decode[w] == Never {
			return Never
		}
		lastID := g.PacketIDAt(w, g.PacketsPerWindow()-1)
		if d := decode[w] - r.PublishAt[lastID]; d > need {
			need = d
		}
	}
	if need < 0 {
		need = 0
	}
	return need
}

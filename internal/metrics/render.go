package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) sample of a plotted series.
type Point struct {
	X, Y float64
}

// Series is a named line on a Plot.
type Series struct {
	Name   string
	Points []Point
}

// Plot renders simple ASCII line charts, enough to eyeball the paper's CDFs
// and time-series figures in a terminal or EXPERIMENTS.md.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	XMax   float64
	YMax   float64
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 20)
	Series []Series
}

// Add appends a series.
func (p *Plot) Add(name string, pts []Point) {
	p.Series = append(p.Series, Series{Name: name, Points: pts})
}

var seriesMarks = []byte("*o+x#@%&")

// Render draws the plot.
func (p *Plot) Render() string {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	xmax, ymax := p.XMax, p.YMax
	if xmax <= 0 {
		for _, s := range p.Series {
			for _, pt := range s.Points {
				if !math.IsInf(pt.X, 0) && pt.X > xmax {
					xmax = pt.X
				}
			}
		}
	}
	if ymax <= 0 {
		for _, s := range p.Series {
			for _, pt := range s.Points {
				if !math.IsInf(pt.Y, 0) && pt.Y > ymax {
					ymax = pt.Y
				}
			}
		}
	}
	if xmax <= 0 {
		xmax = 1
	}
	if ymax <= 0 {
		ymax = 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for _, pt := range s.Points {
			if math.IsInf(pt.X, 0) || math.IsInf(pt.Y, 0) ||
				math.IsNaN(pt.X) || math.IsNaN(pt.Y) {
				continue
			}
			col := int(pt.X / xmax * float64(width-1))
			row := height - 1 - int(pt.Y/ymax*float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for r, row := range grid {
		yVal := ymax * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%7.1f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "        +%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "         0%s%.4g\n", strings.Repeat(" ", width-len(fmt.Sprintf("%.4g", xmax))-1), xmax)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "         x: %s   y: %s\n", p.XLabel, p.YLabel)
	}
	for si, s := range p.Series {
		fmt.Fprintf(&b, "         %c %s\n", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	return b.String()
}

// Table renders aligned text tables for the paper's tabular results.
type Table struct {
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render draws the table with column alignment.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", widths[i], cell)
		}
		b.WriteString("|\n")
	}
	writeRow(t.Headers)
	for i := 0; i < cols; i++ {
		fmt.Fprintf(&b, "|%s", strings.Repeat("-", widths[i]+2))
	}
	b.WriteString("|\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CDFSeries converts per-node sample values into CDF plot points
// ("percentage of nodes with value <= x"), sampling at each distinct value —
// the staircase the paper's figures draw.
func CDFSeries(samples []float64) []Point {
	c := NewCDF(samples)
	pts := make([]Point, 0, c.N)
	for i, v := range c.Values {
		if math.IsInf(v, 0) {
			break
		}
		pts = append(pts, Point{X: v, Y: 100 * float64(i+1) / float64(c.N)})
	}
	return pts
}

package metrics

import (
	"testing"
	"time"
)

// playbackRun: tinyGeom windows of 3+2 (window duration 300ms at 100ms
// interval; last packet of window w publishes at (3w+2)*100ms).
func playbackRun(t *testing.T, lagsMs [][]int) *Run {
	t.Helper()
	return buildRun(t, tinyGeom(), len(lagsMs[0])/5, lagsMs)
}

func TestPlaybackSmooth(t *testing.T) {
	// Everything arrives 50ms after publish: a 100ms startup plays cleanly.
	run := playbackRun(t, [][]int{{50, 50, 50, 50, 50, 50, 50, 50, 50, 50}})
	rep := run.Playback(&run.Nodes[0], 100*time.Millisecond)
	if rep.Stalls != 0 || rep.SkippedWindows != 0 {
		t.Fatalf("smooth playback reported stalls=%d skips=%d", rep.Stalls, rep.SkippedWindows)
	}
	if rep.FinalLag != 100*time.Millisecond {
		t.Fatalf("final lag %v, want startup 100ms", rep.FinalLag)
	}
}

func TestPlaybackStallsAccumulate(t *testing.T) {
	// Window 0 decodable at its last packet publish +50ms; window 1's
	// packets arrive 400ms late: with a 100ms startup the player stalls.
	lags := []int{50, 50, 50, -1, -1, 400, 400, 400, -1, -1}
	run := playbackRun(t, [][]int{lags})
	n := &run.Nodes[0]
	rep := run.Playback(n, 100*time.Millisecond)
	if rep.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", rep.Stalls)
	}
	if rep.StallTime != 300*time.Millisecond {
		t.Fatalf("stall time = %v, want 300ms (400ms lag - 100ms startup)", rep.StallTime)
	}
	if rep.FinalLag != 400*time.Millisecond {
		t.Fatalf("final lag = %v, want 400ms", rep.FinalLag)
	}
	// A larger startup absorbs the late window entirely.
	rep = run.Playback(n, 500*time.Millisecond)
	if rep.Stalls != 0 || rep.FinalLag != 500*time.Millisecond {
		t.Fatalf("500ms startup: stalls=%d finalLag=%v", rep.Stalls, rep.FinalLag)
	}
}

func TestPlaybackSkipsDeadWindows(t *testing.T) {
	lags := []int{50, 50, 50, -1, -1, -1, -1, -1, -1, -1}
	run := playbackRun(t, [][]int{lags})
	rep := run.Playback(&run.Nodes[0], 100*time.Millisecond)
	if rep.SkippedWindows != 1 {
		t.Fatalf("skipped = %d, want 1", rep.SkippedWindows)
	}
	if rep.Stalls != 0 {
		t.Fatalf("dead window should be skipped, not stalled (stalls=%d)", rep.Stalls)
	}
}

func TestMinStartupForSmoothPlayback(t *testing.T) {
	lags := []int{50, 50, 50, -1, -1, 400, 400, 400, -1, -1}
	run := playbackRun(t, [][]int{lags})
	n := &run.Nodes[0]
	min := run.MinStartupForSmoothPlayback(n)
	if min != 400*time.Millisecond {
		t.Fatalf("min startup = %v, want 400ms", min)
	}
	// Verify the bound is tight: at min no stalls, just below it stalls.
	if rep := run.Playback(n, min); rep.Stalls != 0 {
		t.Fatalf("playback at min startup stalled %d times", rep.Stalls)
	}
	if rep := run.Playback(n, min-time.Millisecond); rep.Stalls == 0 {
		t.Fatal("playback below min startup did not stall")
	}
	// Dead window -> Never.
	dead := playbackRun(t, [][]int{{50, 50, 50, -1, -1, -1, -1, -1, -1, -1}})
	if got := dead.MinStartupForSmoothPlayback(&dead.Nodes[0]); got != Never {
		t.Fatalf("min startup with dead window = %v, want Never", got)
	}
}

// Package aggregation implements the gossip-based aggregation protocol of
// HEAP (Algorithm 2 of the paper): every node periodically gossips the
// freshest upload-capability values it knows, merges what it receives by
// freshness, and maintains a running estimate of the system-wide average
// capability. The ratio between a node's own capability and that estimate
// drives HEAP's fanout adaptation:
//
//	f_i = fbar · b_i / bbar
//
// The paper reports the protocol gossips the 10 freshest capabilities every
// 200 ms at a cost of about 1 KB/s (§3.1), which corresponds to one
// aggregation partner per round; the fanout of the aggregation gossip is
// configurable here (AggFanout).
//
// The package also provides Averager, a Jelasity-style push-pull averaging
// protocol usable for continuous system-size estimation — the paper invokes
// this possibility ([13], §2.2) but assumes n is known; we implement it as
// an extension.
package aggregation

import (
	"time"

	"repro/internal/env"
	"repro/internal/membership"
	"repro/internal/wire"
)

// Config parameterizes the capability estimator.
type Config struct {
	// SelfCapKbps is this node's advertised upload capability. The paper
	// assumes it is either user-provided or measured at join time (§2.2).
	SelfCapKbps uint32
	// Period is the aggregation gossip period. Default 200 ms (§3.1).
	Period time.Duration
	// Fanout is how many peers receive each aggregation message. Default 1,
	// which matches the paper's ~1 KB/s budget.
	Fanout int
	// FreshestK is how many entries each message carries. Default 10 (§3.1).
	FreshestK int
	// EntryTTL ages out capability entries so that crashed nodes stop
	// biasing the average. Default 15 s.
	EntryTTL time.Duration
	// Sampler provides the random peers to gossip with.
	Sampler membership.Sampler
	// Exclude, when non-nil, rejects capability claims owned by the given
	// node: its entries are dropped on merge and purged on the tick path.
	// This is the misbehavior detector's fanout penalty — a quarantined
	// peer's (possibly inflated) claim leaves bbar, handing its stolen
	// fanout share back to honest nodes. Applied to the claim's owner,
	// regardless of which peer relayed it; relaying resumes on release.
	Exclude func(wire.NodeID) bool
	// TrackLimit, when > 0, tracks capability entries only for node ids
	// below the limit. At million-node scale the per-node dense entry table
	// and its O(entries) tick-path scans make the whole system O(n²); a
	// track limit caps both at O(limit) per node. Because node ids carry no
	// capability bias (caps are assigned by seeded rng, not by id), the
	// tracked prefix is an unbiased sample and bbar converges to the same
	// system average. A node whose own id is outside the limit still knows
	// its own capability exactly — the estimate simply comes entirely from
	// the sampled prefix. Zero means track everything.
	TrackLimit int
}

func (c *Config) applyDefaults() {
	if c.Period == 0 {
		c.Period = 200 * time.Millisecond
	}
	if c.Fanout == 0 {
		c.Fanout = 1
	}
	if c.FreshestK == 0 {
		c.FreshestK = 10
	}
	if c.EntryTTL == 0 {
		c.EntryTTL = 15 * time.Second
	}
}

type capEntry struct {
	capKbps uint32
	asOf    time.Duration // local-clock time the value was measured at its owner
	present bool
}

// Estimator is the per-node capability aggregation service. It implements
// env.Handler for wire.Aggregate messages. Not safe for concurrent use; all
// access happens on the node's execution context.
//
// Node ids are dense, so entries live in a flat slice indexed by id, and the
// running sum/count are maintained incrementally: merging a received message
// is O(entries in the message) and reading the estimate is O(1), regardless
// of system size. (The previous map-backed version re-summed every known
// entry on every receive — O(n) per message, ruinous at 10k+ nodes.)
type Estimator struct {
	cfg Config
	rt  env.Runtime

	entries []capEntry // dense by node id
	count   int        // present entries
	sum     uint64     // sum of present capKbps

	// freshHeap (max by asOf) and expHeap (min by asOf) index the entries
	// by freshness with lazy invalidation: every set pushes the new
	// (id, asOf) pair onto both; a pair is live only while it still matches
	// its entry. They turn the tick path's top-k selection and TTL aging
	// from O(entries) scans into O(k log m) pops — the difference between
	// feasible and not at million-node scale, where every node ticks five
	// times a simulated second. Selection results are identical to the
	// scans': same (asOf desc, id asc) order, same expiry instants.
	freshHeap []freshPair
	expHeap   []freshPair

	ticker *env.Ticker

	// cached estimate, refreshed on every mutation
	estimateKbps float64

	// selScratch is freshest's top-k selection scratch, reused across
	// ticks; peerScratch the per-tick sampling buffer.
	selScratch  []selEntry
	peerScratch []wire.NodeID

	// MessagesSent counts aggregation messages (for overhead accounting).
	MessagesSent int
}

type selEntry struct {
	id wire.NodeID
	ce capEntry
}

// freshPair is one lazily-invalidated heap record: the entry for id as of
// the moment it was set. It is live iff the entry is still present with
// exactly this asOf.
type freshPair struct {
	id   wire.NodeID
	asOf time.Duration
}

// fresherPair is the freshness order shared by the heap and the legacy scan:
// newer first, smaller id on ties — a strict total order, so top-k is unique.
func fresherPair(a, b freshPair) bool {
	if a.asOf != b.asOf {
		return a.asOf > b.asOf
	}
	return a.id < b.id
}

func (e *Estimator) live(p freshPair) bool {
	return int(p.id) < len(e.entries) && e.entries[p.id].present && e.entries[p.id].asOf == p.asOf
}

// pushHeap/popHeap are one sift implementation parameterized by order;
// less(a, b) means a belongs nearer the top.
func pushHeap(h []freshPair, p freshPair, less func(a, b freshPair) bool) []freshPair {
	h = append(h, p)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func popHeap(h []freshPair, less func(a, b freshPair) bool) ([]freshPair, freshPair) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		child := 2*i + 1
		if child >= last {
			break
		}
		if r := child + 1; r < last && less(h[r], h[child]) {
			child = r
		}
		if !less(h[child], h[i]) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return h, top
}

// olderPair orders the expiry heap: oldest asOf first. EntryTTL is constant,
// so asOf order is expiry order.
func olderPair(a, b freshPair) bool { return a.asOf < b.asOf }

// maxTrackedNodeID bounds the dense entry slice against hostile wire input:
// node ids are dense, so a million-node ceiling is far beyond any deployment
// this codebase targets while capping what one datagram can make us allocate.
const maxTrackedNodeID = 1 << 20

var _ env.Handler = (*Estimator)(nil)

// NewEstimator builds an Estimator. The sampler must not be nil.
func NewEstimator(cfg Config) *Estimator {
	cfg.applyDefaults()
	if cfg.Sampler == nil {
		panic("aggregation: nil sampler")
	}
	if cfg.SelfCapKbps == 0 {
		panic("aggregation: zero self capability")
	}
	return &Estimator{
		cfg:          cfg,
		estimateKbps: float64(cfg.SelfCapKbps),
	}
}

// tracked reports whether id falls inside the dense entry table. With no
// TrackLimit every valid id is tracked.
func (e *Estimator) tracked(id wire.NodeID) bool {
	return e.cfg.TrackLimit <= 0 || int(id) < e.cfg.TrackLimit
}

// set inserts or replaces the entry for id, keeping sum/count current.
// Callers gate on tracked(id).
func (e *Estimator) set(id wire.NodeID, capKbps uint32, asOf time.Duration) {
	for int(id) >= len(e.entries) {
		e.entries = append(e.entries, capEntry{})
	}
	slot := &e.entries[id]
	if slot.present {
		e.sum -= uint64(slot.capKbps)
	} else {
		slot.present = true
		e.count++
	}
	slot.capKbps = capKbps
	slot.asOf = asOf
	e.sum += uint64(capKbps)
	e.freshHeap = pushHeap(e.freshHeap, freshPair{id, asOf}, fresherPair)
	e.expHeap = pushHeap(e.expHeap, freshPair{id, asOf}, olderPair)
	// Superseded pairs are discarded when they surface at a heap top, but
	// below the surface they pile up (a refreshed entry's old pair sinks in
	// freshHeap and lingers in expHeap until its would-be expiry). Rebuild a
	// heap from the live entries once dead pairs outnumber live ones —
	// amortized O(log) per set, and it bounds both heaps at 2x the entry
	// table, which is what keeps per-node memory flat at million-node scale.
	if len(e.freshHeap) > 64 && len(e.freshHeap) > 2*e.count {
		e.freshHeap = rebuildHeap(e.freshHeap[:0], e.entries, fresherPair)
	}
	if len(e.expHeap) > 64 && len(e.expHeap) > 2*e.count {
		e.expHeap = rebuildHeap(e.expHeap[:0], e.entries, olderPair)
	}
}

// rebuildHeap repopulates h (cleared, capacity retained) with one pair per
// present entry.
func rebuildHeap(h []freshPair, entries []capEntry, less func(a, b freshPair) bool) []freshPair {
	for id := range entries {
		if entries[id].present {
			h = pushHeap(h, freshPair{wire.NodeID(id), entries[id].asOf}, less)
		}
	}
	return h
}

// drop removes the entry for id, keeping sum/count current.
func (e *Estimator) drop(id wire.NodeID) {
	slot := &e.entries[id]
	if !slot.present {
		return
	}
	e.sum -= uint64(slot.capKbps)
	e.count--
	*slot = capEntry{}
}

// Start implements env.Handler.
func (e *Estimator) Start(rt env.Runtime) {
	e.rt = rt
	if e.tracked(rt.ID()) {
		e.set(rt.ID(), e.cfg.SelfCapKbps, rt.Now())
	}
	e.recompute()
	phase := time.Duration(rt.Rand().Int63n(int64(e.cfg.Period)))
	e.ticker = env.NewTicker(rt, phase, e.cfg.Period, e.tick)
}

// Stop implements env.Handler.
func (e *Estimator) Stop() {
	if e.ticker != nil {
		e.ticker.Stop()
	}
}

func (e *Estimator) tick() {
	now := e.rt.Now()
	// Refresh own entry: it is always the freshest thing we know.
	if e.tracked(e.rt.ID()) {
		e.set(e.rt.ID(), e.cfg.SelfCapKbps, now)
	}
	e.prune(now)
	e.recompute()

	fresh := e.freshest(e.cfg.FreshestK, now)
	if len(fresh) == 0 {
		return
	}
	var peers []wire.NodeID
	if ap, ok := e.cfg.Sampler.(membership.PeerAppender); ok {
		e.peerScratch = ap.AppendPeers(e.peerScratch[:0], e.rt.Rand(), e.cfg.Fanout)
		peers = e.peerScratch
	} else {
		peers = e.cfg.Sampler.SelectPeers(e.rt.Rand(), e.cfg.Fanout)
	}
	for _, p := range peers {
		// Each recipient gets its own message value, but entry slices are
		// shared; receivers must not mutate (env contract).
		e.rt.Send(p, &wire.Aggregate{Entries: fresh})
		e.MessagesSent++
	}
}

// Receive implements env.Handler, merging entries by freshness. Merging is
// O(len(msg)); aging out stale entries stays on the tick path.
func (e *Estimator) Receive(_ wire.NodeID, m wire.Message) {
	agg, ok := m.(*wire.Aggregate)
	if !ok {
		return
	}
	now := e.rt.Now()
	for _, entry := range agg.Entries {
		if entry.Node == e.rt.ID() || entry.Node < 0 || entry.Node >= maxTrackedNodeID {
			// Own value is always freshest; negative or absurdly large ids
			// are hostile/corrupt wire input (ids are dense, and the dense
			// entry slice must not grow unboundedly on a peer's say-so).
			continue
		}
		if !e.tracked(entry.Node) {
			continue // outside the sampled prefix, see Config.TrackLimit
		}
		if e.cfg.Exclude != nil && e.cfg.Exclude(entry.Node) {
			continue // quarantined claim owner, see Config.Exclude
		}
		asOf := now - time.Duration(entry.AgeMs)*time.Millisecond
		if int(entry.Node) < len(e.entries) {
			if cur := &e.entries[entry.Node]; cur.present && cur.asOf >= asOf {
				continue // ours is fresher
			}
		}
		e.set(entry.Node, entry.CapKbps, asOf)
	}
	e.recompute()
}

// SetSelfCapKbps rewrites the node's advertised capability mid-run (netem
// capability traces, measured-capacity drift). The new value takes effect
// locally at once and reaches peers through the normal freshness gossip —
// exactly how the paper expects re-measured capabilities to propagate.
// Panics on zero, like NewEstimator.
func (e *Estimator) SetSelfCapKbps(kbps uint32) {
	if kbps == 0 {
		panic("aggregation: zero self capability")
	}
	e.cfg.SelfCapKbps = kbps
	if e.rt != nil {
		if e.tracked(e.rt.ID()) {
			e.set(e.rt.ID(), kbps, e.rt.Now())
		}
		e.recompute()
	}
}

// EstimateKbps returns the current estimate of the system-wide average
// upload capability (bbar), in kbps. Before any exchange it equals the
// node's own capability.
func (e *Estimator) EstimateKbps() float64 { return e.estimateKbps }

// RelativeCapability returns b_i / bbar, the fanout multiplier of HEAP.
func (e *Estimator) RelativeCapability() float64 {
	if e.estimateKbps <= 0 {
		return 1
	}
	return float64(e.cfg.SelfCapKbps) / e.estimateKbps
}

// KnownNodes returns how many nodes currently contribute to the estimate.
func (e *Estimator) KnownNodes() int { return e.count }

func (e *Estimator) prune(now time.Duration) {
	self := e.rt.ID()
	if e.cfg.Exclude != nil {
		// Quarantine purging has no expiry instant to index by, so detector
		// runs keep the full scan (they are small-n by construction).
		for id := range e.entries {
			entry := &e.entries[id]
			if !entry.present || wire.NodeID(id) == self {
				continue
			}
			if now-entry.asOf > e.cfg.EntryTTL {
				e.drop(wire.NodeID(id))
				continue
			}
			if e.cfg.Exclude(wire.NodeID(id)) {
				e.drop(wire.NodeID(id)) // quarantined since merged, see Config.Exclude
			}
		}
		return
	}
	// Lazy expiry: pop oldest-first until the top is inside the TTL. Dead
	// pairs (superseded by a fresher set) are discarded on the way — this is
	// where expHeap self-cleans.
	for len(e.expHeap) > 0 && now-e.expHeap[0].asOf > e.cfg.EntryTTL {
		var p freshPair
		e.expHeap, p = popHeap(e.expHeap, olderPair)
		if e.live(p) && p.id != self {
			e.drop(p.id)
		}
	}
}

func (e *Estimator) recompute() {
	if e.count == 0 {
		e.estimateKbps = float64(e.cfg.SelfCapKbps)
		return
	}
	// sum is maintained with integer arithmetic, so the estimate is
	// independent of merge order — whole-system runs stay bit-reproducible.
	e.estimateKbps = float64(e.sum) / float64(e.count)
}

// freshest returns up to k entries with the most recent asOf, encoded with
// their current age. O(k log m) heap selection with reusable scratch; only
// the returned slice is freshly allocated (it escapes into the outgoing
// message).
func (e *Estimator) freshest(k int, now time.Duration) []wire.CapEntry {
	if k > e.count {
		k = e.count
	}
	if k <= 0 {
		return nil
	}
	// Pop the freshness heap newest-first, discarding dead pairs, until k
	// live distinct entries are in hand; then push the winners back. Pop
	// order is exactly the scan's (asOf desc, id asc) total order, so the
	// selected set — and the message bytes — are unchanged.
	best := e.selScratch[:0]
	for len(e.freshHeap) > 0 && len(best) < k {
		var p freshPair
		e.freshHeap, p = popHeap(e.freshHeap, fresherPair)
		if !e.live(p) {
			continue
		}
		// Two live pairs for one id exist only when an entry was rewritten
		// with an identical asOf (same-instant self refresh); keep the first.
		dup := false
		for i := range best {
			if best[i].id == p.id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		best = append(best, selEntry{p.id, e.entries[p.id]})
	}
	for _, b := range best {
		e.freshHeap = pushHeap(e.freshHeap, freshPair{b.id, b.ce.asOf}, fresherPair)
	}
	out := make([]wire.CapEntry, len(best))
	for i, b := range best {
		age := now - b.ce.asOf
		if age < 0 {
			age = 0
		}
		out[i] = wire.CapEntry{
			Node:    b.id,
			CapKbps: b.ce.capKbps,
			AgeMs:   uint32(age / time.Millisecond),
		}
	}
	e.selScratch = best[:0]
	return out
}

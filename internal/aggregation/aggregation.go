// Package aggregation implements the gossip-based aggregation protocol of
// HEAP (Algorithm 2 of the paper): every node periodically gossips the
// freshest upload-capability values it knows, merges what it receives by
// freshness, and maintains a running estimate of the system-wide average
// capability. The ratio between a node's own capability and that estimate
// drives HEAP's fanout adaptation:
//
//	f_i = fbar · b_i / bbar
//
// The paper reports the protocol gossips the 10 freshest capabilities every
// 200 ms at a cost of about 1 KB/s (§3.1), which corresponds to one
// aggregation partner per round; the fanout of the aggregation gossip is
// configurable here (AggFanout).
//
// The package also provides Averager, a Jelasity-style push-pull averaging
// protocol usable for continuous system-size estimation — the paper invokes
// this possibility ([13], §2.2) but assumes n is known; we implement it as
// an extension.
package aggregation

import (
	"time"

	"repro/internal/env"
	"repro/internal/membership"
	"repro/internal/wire"
)

// Config parameterizes the capability estimator.
type Config struct {
	// SelfCapKbps is this node's advertised upload capability. The paper
	// assumes it is either user-provided or measured at join time (§2.2).
	SelfCapKbps uint32
	// Period is the aggregation gossip period. Default 200 ms (§3.1).
	Period time.Duration
	// Fanout is how many peers receive each aggregation message. Default 1,
	// which matches the paper's ~1 KB/s budget.
	Fanout int
	// FreshestK is how many entries each message carries. Default 10 (§3.1).
	FreshestK int
	// EntryTTL ages out capability entries so that crashed nodes stop
	// biasing the average. Default 15 s.
	EntryTTL time.Duration
	// Sampler provides the random peers to gossip with.
	Sampler membership.Sampler
}

func (c *Config) applyDefaults() {
	if c.Period == 0 {
		c.Period = 200 * time.Millisecond
	}
	if c.Fanout == 0 {
		c.Fanout = 1
	}
	if c.FreshestK == 0 {
		c.FreshestK = 10
	}
	if c.EntryTTL == 0 {
		c.EntryTTL = 15 * time.Second
	}
}

type capEntry struct {
	capKbps uint32
	asOf    time.Duration // local-clock time the value was measured at its owner
}

// Estimator is the per-node capability aggregation service. It implements
// env.Handler for wire.Aggregate messages. Not safe for concurrent use; all
// access happens on the node's execution context.
type Estimator struct {
	cfg     Config
	rt      env.Runtime
	entries map[wire.NodeID]capEntry
	ticker  *env.Ticker

	// cached estimate, refreshed on every mutation
	estimateKbps float64

	// MessagesSent counts aggregation messages (for overhead accounting).
	MessagesSent int
}

var _ env.Handler = (*Estimator)(nil)

// NewEstimator builds an Estimator. The sampler must not be nil.
func NewEstimator(cfg Config) *Estimator {
	cfg.applyDefaults()
	if cfg.Sampler == nil {
		panic("aggregation: nil sampler")
	}
	if cfg.SelfCapKbps == 0 {
		panic("aggregation: zero self capability")
	}
	return &Estimator{
		cfg:          cfg,
		entries:      make(map[wire.NodeID]capEntry),
		estimateKbps: float64(cfg.SelfCapKbps),
	}
}

// Start implements env.Handler.
func (e *Estimator) Start(rt env.Runtime) {
	e.rt = rt
	e.entries[rt.ID()] = capEntry{capKbps: e.cfg.SelfCapKbps, asOf: rt.Now()}
	e.recompute()
	phase := time.Duration(rt.Rand().Int63n(int64(e.cfg.Period)))
	e.ticker = env.NewTicker(rt, phase, e.cfg.Period, e.tick)
}

// Stop implements env.Handler.
func (e *Estimator) Stop() {
	if e.ticker != nil {
		e.ticker.Stop()
	}
}

func (e *Estimator) tick() {
	now := e.rt.Now()
	// Refresh own entry: it is always the freshest thing we know.
	e.entries[e.rt.ID()] = capEntry{capKbps: e.cfg.SelfCapKbps, asOf: now}
	e.prune(now)
	e.recompute()

	fresh := e.freshest(e.cfg.FreshestK, now)
	if len(fresh) == 0 {
		return
	}
	peers := e.cfg.Sampler.SelectPeers(e.rt.Rand(), e.cfg.Fanout)
	for _, p := range peers {
		// Each recipient gets its own message value, but entry slices are
		// shared; receivers must not mutate (env contract).
		e.rt.Send(p, &wire.Aggregate{Entries: fresh})
		e.MessagesSent++
	}
}

// Receive implements env.Handler, merging entries by freshness.
func (e *Estimator) Receive(_ wire.NodeID, m wire.Message) {
	agg, ok := m.(*wire.Aggregate)
	if !ok {
		return
	}
	now := e.rt.Now()
	for _, entry := range agg.Entries {
		if entry.Node == e.rt.ID() {
			continue // we always know our own value best
		}
		asOf := now - time.Duration(entry.AgeMs)*time.Millisecond
		if cur, ok := e.entries[entry.Node]; ok && cur.asOf >= asOf {
			continue // ours is fresher
		}
		e.entries[entry.Node] = capEntry{capKbps: entry.CapKbps, asOf: asOf}
	}
	e.prune(now)
	e.recompute()
}

// EstimateKbps returns the current estimate of the system-wide average
// upload capability (bbar), in kbps. Before any exchange it equals the
// node's own capability.
func (e *Estimator) EstimateKbps() float64 { return e.estimateKbps }

// RelativeCapability returns b_i / bbar, the fanout multiplier of HEAP.
func (e *Estimator) RelativeCapability() float64 {
	if e.estimateKbps <= 0 {
		return 1
	}
	return float64(e.cfg.SelfCapKbps) / e.estimateKbps
}

// KnownNodes returns how many nodes currently contribute to the estimate.
func (e *Estimator) KnownNodes() int { return len(e.entries) }

func (e *Estimator) prune(now time.Duration) {
	for id, entry := range e.entries {
		if id == e.rt.ID() {
			continue
		}
		if now-entry.asOf > e.cfg.EntryTTL {
			delete(e.entries, id)
		}
	}
}

func (e *Estimator) recompute() {
	if len(e.entries) == 0 {
		e.estimateKbps = float64(e.cfg.SelfCapKbps)
		return
	}
	// Integer summation keeps the result independent of map iteration
	// order, which keeps whole-system runs bit-reproducible.
	var sum uint64
	for _, entry := range e.entries {
		sum += uint64(entry.capKbps)
	}
	e.estimateKbps = float64(sum) / float64(len(e.entries))
}

// freshest returns up to k entries with the most recent asOf, encoded with
// their current age. O(n·k) selection is fine for k=10.
func (e *Estimator) freshest(k int, now time.Duration) []wire.CapEntry {
	if k > len(e.entries) {
		k = len(e.entries)
	}
	if k <= 0 {
		return nil
	}
	type kv struct {
		id wire.NodeID
		ce capEntry
	}
	// Freshness order with an id tie-break keeps the selection independent
	// of map iteration order (determinism).
	fresher := func(a, b kv) bool {
		if a.ce.asOf != b.ce.asOf {
			return a.ce.asOf > b.ce.asOf
		}
		return a.id < b.id
	}
	best := make([]kv, 0, k)
	for id, ce := range e.entries {
		cand := kv{id, ce}
		pos := -1
		for i := range best {
			if fresher(cand, best[i]) {
				pos = i
				break
			}
		}
		switch {
		case pos >= 0:
			if len(best) < k {
				best = append(best, kv{})
			}
			copy(best[pos+1:], best[pos:])
			best[pos] = cand
		case len(best) < k:
			best = append(best, cand)
		}
	}
	out := make([]wire.CapEntry, len(best))
	for i, b := range best {
		age := now - b.ce.asOf
		if age < 0 {
			age = 0
		}
		out[i] = wire.CapEntry{
			Node:    b.id,
			CapKbps: b.ce.capKbps,
			AgeMs:   uint32(age / time.Millisecond),
		}
	}
	return out
}

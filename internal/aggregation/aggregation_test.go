package aggregation

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/membership"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// buildEstimators wires n nodes with the given capabilities (kbps) into a
// simulated network running only the aggregation protocol.
func buildEstimators(t *testing.T, caps []uint32, cfgTmpl Config, seed int64) (*simnet.Network, []*Estimator) {
	t.Helper()
	net := simnet.New(simnet.Config{
		Seed:    seed,
		Latency: simnet.ConstantLatency(20 * time.Millisecond),
	})
	dir := membership.NewDirectory(len(caps))
	estimators := make([]*Estimator, len(caps))
	for i, c := range caps {
		cfg := cfgTmpl
		cfg.SelfCapKbps = c
		cfg.Sampler = dir.ViewFor(wire.NodeID(i))
		estimators[i] = NewEstimator(cfg)
		net.AddNode(estimators[i], simnet.NodeConfig{})
	}
	return net, estimators
}

func paperMS691Caps(n int) []uint32 {
	// ms-691: 5% at 3 Mbps, 10% at 1 Mbps, 85% at 512 kbps (Table 1).
	caps := make([]uint32, n)
	for i := range caps {
		switch {
		case i < n*5/100:
			caps[i] = 3000
		case i < n*15/100:
			caps[i] = 1000
		default:
			caps[i] = 512
		}
	}
	return caps
}

func trueMean(caps []uint32) float64 {
	var sum uint64
	for _, c := range caps {
		sum += uint64(c)
	}
	return float64(sum) / float64(len(caps))
}

func TestEstimatorConvergesToTrueMean(t *testing.T) {
	caps := paperMS691Caps(100)
	net, estimators := buildEstimators(t, caps, Config{}, 1)
	net.Run(20 * time.Second)
	want := trueMean(caps)
	for i, e := range estimators {
		got := e.EstimateKbps()
		if math.Abs(got-want)/want > 0.10 {
			t.Fatalf("node %d estimate %.1f, true mean %.1f (>10%% off)", i, got, want)
		}
	}
}

func TestEstimatorInitialEstimateIsOwnCapability(t *testing.T) {
	dir := membership.NewDirectory(2)
	e := NewEstimator(Config{SelfCapKbps: 768, Sampler: dir.ViewFor(0)})
	if got := e.EstimateKbps(); got != 768 {
		t.Fatalf("initial estimate %.1f, want own capability 768", got)
	}
	if got := e.RelativeCapability(); got != 1 {
		t.Fatalf("initial relative capability %.2f, want 1", got)
	}
}

func TestRelativeCapabilityOrdering(t *testing.T) {
	caps := paperMS691Caps(100)
	net, estimators := buildEstimators(t, caps, Config{}, 2)
	net.Run(20 * time.Second)
	// Rich nodes must end with relative capability > 1, poor nodes < 1.
	for i, e := range estimators {
		rel := e.RelativeCapability()
		switch caps[i] {
		case 3000:
			if rel < 2 {
				t.Fatalf("3 Mbps node %d has relative capability %.2f, want > 2", i, rel)
			}
		case 512:
			if rel > 1 {
				t.Fatalf("512 kbps node %d has relative capability %.2f, want < 1", i, rel)
			}
		}
	}
}

func TestEstimatorMessageBudget(t *testing.T) {
	// With default parameters (fanout 1, 10 entries, 200 ms) the paper
	// reports ~1 KB/s. Check the per-node send rate over a simulated minute.
	caps := paperMS691Caps(50)
	net, _ := buildEstimators(t, caps, Config{}, 3)
	net.Run(60 * time.Second)
	st := net.NodeStats(0)
	bytesPerSec := float64(st.SentBytes) / 60
	if bytesPerSec > 1100 {
		t.Fatalf("aggregation costs %.0f B/s, paper budget ~1 KB/s", bytesPerSec)
	}
	if bytesPerSec < 100 {
		t.Fatalf("aggregation suspiciously cheap (%.0f B/s); protocol not running?", bytesPerSec)
	}
}

func TestEstimatorPrunesDeadNodes(t *testing.T) {
	// Crash the single 3 Mbps-class rich minority; estimates must drift
	// down to the new mean once their entries age out.
	caps := []uint32{3000, 3000, 512, 512, 512, 512, 512, 512, 512, 512}
	net, estimators := buildEstimators(t, caps, Config{EntryTTL: 5 * time.Second}, 4)
	net.Run(10 * time.Second)
	net.Crash(0)
	net.Crash(1)
	net.Run(net.Now() + 30*time.Second)
	want := 512.0
	for i := 2; i < len(estimators); i++ {
		got := estimators[i].EstimateKbps()
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("node %d estimate %.1f after crashes, want ~%.0f", i, got, want)
		}
	}
}

func TestEstimatorIgnoresStaleEntriesForSelf(t *testing.T) {
	dir := membership.NewDirectory(3)
	e := NewEstimator(Config{SelfCapKbps: 1000, Sampler: dir.ViewFor(0)})
	net := simnet.New(simnet.Config{Seed: 5})
	net.AddNode(e, simnet.NodeConfig{})
	net.Run(time.Millisecond)
	// A malicious/stale entry about ourselves must not override local truth.
	e.Receive(1, &wire.Aggregate{Entries: []wire.CapEntry{{Node: 0, CapKbps: 1, AgeMs: 0}}})
	if e.EstimateKbps() != 1000 {
		t.Fatalf("self entry was overridden: estimate %.1f", e.EstimateKbps())
	}
}

func TestEstimatorMergesByFreshness(t *testing.T) {
	dir := membership.NewDirectory(3)
	e := NewEstimator(Config{SelfCapKbps: 1000, Sampler: dir.ViewFor(0)})
	net := simnet.New(simnet.Config{Seed: 6})
	net.AddNode(e, simnet.NodeConfig{})
	net.Run(time.Second)
	// Entry about node 1, 100ms old.
	e.Receive(1, &wire.Aggregate{Entries: []wire.CapEntry{{Node: 1, CapKbps: 500, AgeMs: 100}}})
	// Staler entry (5s old) about the same node must not win.
	e.Receive(2, &wire.Aggregate{Entries: []wire.CapEntry{{Node: 1, CapKbps: 9999, AgeMs: 5000}}})
	if got := e.EstimateKbps(); got != (1000+500)/2 {
		t.Fatalf("estimate %.1f, want 750 (stale entry must lose)", got)
	}
	// Fresher entry must win.
	e.Receive(2, &wire.Aggregate{Entries: []wire.CapEntry{{Node: 1, CapKbps: 700, AgeMs: 0}}})
	if got := e.EstimateKbps(); got != (1000+700)/2 {
		t.Fatalf("estimate %.1f, want 850 (fresh entry must win)", got)
	}
}

func TestEstimatorKnownNodesGrows(t *testing.T) {
	caps := paperMS691Caps(40)
	net, estimators := buildEstimators(t, caps, Config{}, 7)
	net.Run(15 * time.Second)
	// With 10 entries/msg spreading epidemically, nodes should know a large
	// fraction of the system within seconds.
	for i, e := range estimators {
		if e.KnownNodes() < 20 {
			t.Fatalf("node %d knows only %d nodes after 15s", i, e.KnownNodes())
		}
	}
}

func TestEstimatorTrackLimitConvergesAndBounds(t *testing.T) {
	// Capabilities shuffled by seeded rng so the tracked id-prefix is an
	// unbiased sample of the distribution — the same property scenario runs
	// have, where caps are rng-assigned rather than id-correlated.
	caps := paperMS691Caps(120)
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(caps), func(i, j int) { caps[i], caps[j] = caps[j], caps[i] })
	const limit = 40
	net, estimators := buildEstimators(t, caps, Config{TrackLimit: limit}, 3)
	net.Run(20 * time.Second)

	// The limited estimate converges to the tracked prefix's mean, which for
	// a shuffled assignment tracks the system mean closely.
	want := trueMean(caps[:limit])
	for i, e := range estimators {
		if e.KnownNodes() > limit {
			t.Fatalf("node %d tracks %d nodes, limit %d", i, e.KnownNodes(), limit)
		}
		got := e.EstimateKbps()
		if math.Abs(got-want)/want > 0.10 {
			t.Fatalf("node %d estimate %.1f, tracked-prefix mean %.1f (>10%% off)", i, got, want)
		}
	}
	// A node outside the limit still knows its own capability exactly and
	// computes a sensible relative capability from the sampled estimate.
	out := estimators[limit+5]
	if rel := out.RelativeCapability(); rel <= 0 {
		t.Fatalf("untracked node relative capability %.2f", rel)
	}
}

func TestAveragerConvergesToMeanAndSize(t *testing.T) {
	const n = 64
	net := simnet.New(simnet.Config{Seed: 8, Latency: simnet.ConstantLatency(10 * time.Millisecond)})
	dir := membership.NewDirectory(n)
	avgs := make([]*Averager, n)
	for i := 0; i < n; i++ {
		v := 0.0
		if i == 0 {
			v = 1.0 // size estimation: one node holds 1, the rest 0
		}
		avgs[i] = NewAverager(AveragerConfig{InitialValue: v, Sampler: dir.ViewFor(wire.NodeID(i))})
		net.AddNode(avgs[i], simnet.NodeConfig{})
	}
	net.Run(30 * time.Second)
	for i, a := range avgs {
		size := a.SizeEstimate()
		if size < n*7/10 || size > n*13/10 {
			t.Fatalf("node %d size estimate %.1f, want ~%d (+-30%%)", i, size, n)
		}
	}
}

func TestAveragerMassConservation(t *testing.T) {
	// With no message loss, the sum of values is invariant under completed
	// push-pull exchanges (each moves value symmetrically). Allow a tiny
	// slack for exchanges in flight at the instant we sample.
	const n = 32
	net := simnet.New(simnet.Config{Seed: 9, Latency: simnet.ConstantLatency(5 * time.Millisecond)})
	dir := membership.NewDirectory(n)
	avgs := make([]*Averager, n)
	for i := 0; i < n; i++ {
		avgs[i] = NewAverager(AveragerConfig{InitialValue: float64(i), Sampler: dir.ViewFor(wire.NodeID(i))})
		net.AddNode(avgs[i], simnet.NodeConfig{})
	}
	net.Run(20 * time.Second)
	var sum float64
	for _, a := range avgs {
		sum += a.Value()
	}
	want := float64(n*(n-1)) / 2
	if math.Abs(sum-want)/want > 0.10 {
		t.Fatalf("mass drifted: sum %.1f, want ~%.1f", sum, want)
	}
	// And values must have converged toward the mean.
	mean := want / n
	for i, a := range avgs {
		if math.Abs(a.Value()-mean)/mean > 0.25 {
			t.Fatalf("node %d value %.2f far from mean %.2f", i, a.Value(), mean)
		}
	}
}

func TestNewEstimatorValidation(t *testing.T) {
	dir := membership.NewDirectory(2)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil sampler", func() { NewEstimator(Config{SelfCapKbps: 1}) })
	mustPanic("zero capability", func() { NewEstimator(Config{Sampler: dir.ViewFor(0)}) })
	mustPanic("nil averager sampler", func() { NewAverager(AveragerConfig{}) })
}

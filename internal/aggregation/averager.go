package aggregation

import (
	"time"

	"repro/internal/env"
	"repro/internal/membership"
	"repro/internal/wire"
)

// AveragerConfig parameterizes the push-pull averaging protocol.
type AveragerConfig struct {
	// InitialValue is this node's starting value. For system-size
	// estimation, exactly one node starts at 1 and the rest at 0; the
	// average then converges to 1/n everywhere.
	InitialValue float64
	// Period is the exchange period. Default 200 ms.
	Period time.Duration
	// Sampler provides random exchange partners.
	Sampler membership.Sampler
}

// Averager implements the push-pull epidemic averaging protocol of Jelasity,
// Montresor and Babaoglu (TOCS 2005), which the paper cites ([13]) as the
// way to continuously approximate system size. Every period a node picks a
// random partner; both replace their value with the pair's mean. The
// variance of values across the system decays exponentially, so after a few
// dozen rounds every node holds (almost) the global average.
//
// Averager implements env.Handler for AvgPush/AvgReply messages.
type Averager struct {
	cfg    AveragerConfig
	rt     env.Runtime
	value  float64
	ticker *env.Ticker

	// peerScratch is the per-tick sampling buffer (PeerAppender fast path).
	peerScratch []wire.NodeID

	// Exchanges counts completed (replied) exchanges at this node.
	Exchanges int
}

var _ env.Handler = (*Averager)(nil)

// NewAverager builds an Averager.
func NewAverager(cfg AveragerConfig) *Averager {
	if cfg.Period == 0 {
		cfg.Period = 200 * time.Millisecond
	}
	if cfg.Sampler == nil {
		panic("aggregation: nil sampler")
	}
	return &Averager{cfg: cfg, value: cfg.InitialValue}
}

// Start implements env.Handler.
func (a *Averager) Start(rt env.Runtime) {
	a.rt = rt
	phase := time.Duration(rt.Rand().Int63n(int64(a.cfg.Period)))
	a.ticker = env.NewTicker(rt, phase, a.cfg.Period, a.tick)
}

// Stop implements env.Handler.
func (a *Averager) Stop() {
	if a.ticker != nil {
		a.ticker.Stop()
	}
}

func (a *Averager) tick() {
	var peers []wire.NodeID
	if ap, ok := a.cfg.Sampler.(membership.PeerAppender); ok {
		a.peerScratch = ap.AppendPeers(a.peerScratch[:0], a.rt.Rand(), 1)
		peers = a.peerScratch
	} else {
		peers = a.cfg.Sampler.SelectPeers(a.rt.Rand(), 1)
	}
	if len(peers) == 0 {
		return
	}
	a.rt.Send(peers[0], &wire.AvgPush{Value: a.value, Weight: 1})
}

// Receive implements env.Handler.
func (a *Averager) Receive(from wire.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.AvgPush:
		// Reply with our current value, then both converge to the mean.
		a.rt.Send(from, &wire.AvgReply{Value: a.value, Weight: 1})
		a.value = (a.value + msg.Value) / 2
		a.Exchanges++
	case *wire.AvgReply:
		// Note: if our push was lost, no reply arrives and no state moved;
		// if the reply is lost, the responder moved and we did not — a small
		// transient asymmetry that fresh rounds wash out.
		a.value = (a.value + msg.Value) / 2
		a.Exchanges++
	}
}

// Value returns the node's current estimate of the global average.
func (a *Averager) Value() float64 { return a.value }

// SizeEstimate interprets the value as 1/n and returns the implied system
// size. It returns 0 until the value is meaningfully positive.
func (a *Averager) SizeEstimate() float64 {
	if a.value <= 1e-12 {
		return 0
	}
	return 1 / a.value
}

package simnet

import (
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/netem"
	"repro/internal/wire"
)

// TestNetemDefaultMatchesLossRate pins the zero-config guarantee: a network
// with only LossRate set behaves byte-identically whether the loss comes
// from the legacy path or from an explicitly installed netem.Bernoulli.
func TestNetemDefaultMatchesLossRate(t *testing.T) {
	run := func(model netem.Model) []time.Duration {
		net := New(Config{
			Seed:     9,
			LossRate: 0.2,
			Netem:    model,
			Latency:  NewPairwiseLatency(9, time.Millisecond, 10*time.Millisecond, time.Millisecond),
		})
		b := &recorder{}
		a := &recorder{onStart: func(rt env.Runtime) {
			for i := 0; i < 500; i++ {
				rt.Send(1, ping())
			}
		}}
		net.AddNode(a, NodeConfig{})
		net.AddNode(b, NodeConfig{})
		net.Run(time.Second)
		times := make([]time.Duration, len(b.got))
		for i, g := range b.got {
			times[i] = g.at
		}
		return times
	}
	implicit := run(nil)
	explicit := run(netem.Bernoulli{P: 0.2})
	if len(implicit) != len(explicit) {
		t.Fatalf("delivery counts differ: %d vs %d", len(implicit), len(explicit))
	}
	for i := range implicit {
		if implicit[i] != explicit[i] {
			t.Fatalf("delivery %d at %v vs %v", i, implicit[i], explicit[i])
		}
	}
}

// TestNetemPartitionDropsAndHeals runs a partition window through the
// simulator: sends during the split vanish (counted as MsgsLost), sends
// after the heal arrive.
func TestNetemPartitionDropsAndHeals(t *testing.T) {
	model := netem.NewPartitions(netem.Partition{
		From:   10 * time.Millisecond,
		Until:  30 * time.Millisecond,
		Groups: [][]wire.NodeID{{1}},
	})
	net := New(Config{Seed: 1, Netem: model})
	b := &recorder{}
	var a *recorder
	a = &recorder{onStart: func(rt env.Runtime) {
		for _, at := range []time.Duration{0, 15 * time.Millisecond, 40 * time.Millisecond} {
			rt.AfterFunc(at, func() { a.rt.Send(1, ping()) })
		}
	}}
	net.AddNode(a, NodeConfig{})
	net.AddNode(b, NodeConfig{})
	net.Run(time.Second)
	if len(b.got) != 2 {
		t.Fatalf("received %d messages, want 2 (one eaten by the partition)", len(b.got))
	}
	if st := net.Stats(); st.MsgsLost != 1 {
		t.Fatalf("MsgsLost = %d, want 1", st.MsgsLost)
	}
}

// TestNetemSpikeDelaysDelivery checks that extra netem delay lands on the
// propagation time and is counted.
func TestNetemSpikeDelaysDelivery(t *testing.T) {
	model := netem.NewLatencySpikes(netem.Spike{
		At: 0, Duration: time.Second, Extra: 250 * time.Millisecond,
	})
	net := New(Config{Seed: 1, Netem: model, Latency: ConstantLatency(10 * time.Millisecond)})
	b := &recorder{}
	a := &recorder{onStart: func(rt env.Runtime) { rt.Send(1, ping()) }}
	net.AddNode(a, NodeConfig{})
	net.AddNode(b, NodeConfig{})
	net.Run(time.Second)
	if len(b.got) != 1 {
		t.Fatalf("received %d, want 1", len(b.got))
	}
	if want := 260 * time.Millisecond; b.got[0].at != want {
		t.Fatalf("delivered at %v, want %v", b.got[0].at, want)
	}
	if st := net.Stats(); st.MsgsNetemDelay != 1 {
		t.Fatalf("MsgsNetemDelay = %d, want 1", st.MsgsNetemDelay)
	}
}

// TestSetUploadBps rewrites capacity mid-run and observes the serialization
// change: the same message takes twice as long after capacity halves.
func TestSetUploadBps(t *testing.T) {
	net := New(Config{Seed: 1})
	payload := make([]byte, 1316-18-3)
	msg := &wire.Serve{Events: []wire.Event{{ID: 1, Payload: payload}}}
	ser := time.Duration((1316 + 28) * 8 * int64(time.Second) / 1_000_000)
	b := &recorder{}
	var a *recorder
	a = &recorder{onStart: func(rt env.Runtime) {
		rt.Send(1, msg)
		rt.AfterFunc(100*time.Millisecond, func() { a.rt.Send(1, msg) })
	}}
	ida := net.AddNode(a, NodeConfig{UploadBps: 1_000_000})
	net.AddNode(b, NodeConfig{})
	net.Schedule(50*time.Millisecond, func() { net.SetUploadBps(ida, 500_000) })
	net.Run(time.Second)
	if len(b.got) != 2 {
		t.Fatalf("received %d, want 2", len(b.got))
	}
	if b.got[0].at != ser {
		t.Fatalf("first delivery at %v, want %v", b.got[0].at, ser)
	}
	if want := 100*time.Millisecond + 2*ser; b.got[1].at != want {
		t.Fatalf("second delivery at %v, want %v (halved capacity)", b.got[1].at, want)
	}
	// Negative capacity is a wiring bug.
	defer func() {
		if recover() == nil {
			t.Fatal("negative SetUploadBps did not panic")
		}
	}()
	net.SetUploadBps(ida, -1)
}

// TestPairwiseLatencyValidation pins the constructor's panic on inverted or
// negative parameters, in the style of the loss-rate validation.
func TestPairwiseLatencyValidation(t *testing.T) {
	cases := []struct{ min, max, jitter time.Duration }{
		{-time.Millisecond, time.Millisecond, 0},                    // negative min
		{10 * time.Millisecond, time.Millisecond, 0},                // max < min
		{time.Millisecond, 2 * time.Millisecond, -time.Millisecond}, // negative jitter
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewPairwiseLatency(%v,%v,%v) did not panic", i, c.min, c.max, c.jitter)
				}
			}()
			NewPairwiseLatency(1, c.min, c.max, c.jitter)
		}()
	}
	// The valid degenerate cases still construct.
	if l := NewPairwiseLatency(1, 0, 0, 0); l == nil {
		t.Fatal("zero latency rejected")
	}
	if l := NewPairwiseLatency(1, time.Millisecond, time.Millisecond, 0); l == nil {
		t.Fatal("min == max rejected")
	}
}

package simnet

import (
	"time"

	"repro/internal/wire"
)

// shard is one slice of the simulation: the nodes with id ≡ idx (mod S),
// their pending events in an indexed binary heap, and a private event pool.
// Between exchange barriers a shard runs with no locks and touches only
// state it owns — its heap, its pool, its nodes' mutable rows — plus
// read-only cross-shard node fields (alive, crashedAt, frozen bounds) that
// are written exclusively in the global context while shards are parked.
type shard struct {
	net *Network
	idx int32
	now time.Duration

	events []heapEnt // indexed binary heap ordered by (at, src, srcSeq)
	free   *event    // free list of recycled event slots

	stats Stats

	// outbox buffers cross-shard deliveries created inside a window, one
	// slice per destination shard, merged into the destination heaps at the
	// barrier (exchange). Outside windows — setup, Schedule callbacks —
	// sends push straight into the destination shard instead.
	outbox [][]*event
}

// event kinds
type eventKind uint8

const (
	evDeliver eventKind = iota + 1
	evTimer
)

// event is one scheduled occurrence. Events are pooled: dispatched (or
// canceled) events return to a shard free list and are reused by later sends
// and timers, so the steady-state hot path allocates nothing. The gen
// counter is bumped on every recycle, which lets outstanding timer handles
// detect that their event slot has moved on (see simTimer). Slots follow
// their events across shards: a cross-shard delivery is allocated from the
// sender's pool and recycled into the receiver's.
//
// (at, src, srcSeq) is the canonical total order: src is the node that
// created the event (the sender for deliveries, the owner for timers) and
// srcSeq its private sequence number. The key depends only on the creator's
// own deterministic history, so it is identical at every shard count — the
// invariant the whole sharded design rests on.
type event struct {
	sh      *shard
	at      time.Duration
	src     wire.NodeID // creating node: delivery sender / timer owner
	srcSeq  uint64
	kind    eventKind
	heapIdx int32  // position in shard.events; -1 when not queued
	gen     uint32 // recycle generation, validates timer handles

	// evDeliver
	to       wire.NodeID
	msg      wire.Message
	txFinish time.Duration // when the datagram left the sender's uplink
	size     int           // wire size incl UDP overhead

	// evTimer
	fn func()

	next *event // free-list link
}

// eventBlockSize is how many event slots one pool refill allocates: big
// enough to amortize allocation to noise, small enough not to bloat tiny
// simulations.
const eventBlockSize = 128

// alloc takes an event slot from the shard's free list, refilling it with a
// fresh block when empty.
func (s *shard) alloc() *event {
	if s.free == nil {
		block := make([]event, eventBlockSize)
		for i := range block {
			block[i].heapIdx = -1
			if i+1 < len(block) {
				block[i].next = &block[i+1]
			}
		}
		s.free = &block[0]
	}
	ev := s.free
	s.free = ev.next
	ev.next = nil
	return ev
}

// recycle returns a dispatched or canceled event to the free list, dropping
// references so the pool does not pin messages or closures, and bumping the
// generation so stale timer handles turn inert.
func (s *shard) recycle(ev *event) {
	ev.gen++
	ev.kind = 0
	ev.msg = nil
	ev.fn = nil
	ev.next = s.free
	s.free = ev
}

// runUntil processes every queued event due strictly before w1, in
// canonical order. syncGlobalNow mirrors the shard clock into the network
// clock — only legal in sequential (single-shard) runs, where it keeps
// Network.Now exact for code written against the pre-sharding API.
func (s *shard) runUntil(w1 time.Duration, syncGlobalNow bool) {
	for len(s.events) > 0 && s.events[0].at < w1 {
		ev := s.pop()
		s.now = ev.at
		if syncGlobalNow {
			s.net.now = ev.at
		}
		s.stats.EventsProcessed++
		s.dispatch(ev)
		// dispatch may have re-queued the event (freeze deferral); only
		// events that truly left the schedule go back to the pool.
		if ev.heapIdx < 0 {
			s.recycle(ev)
		}
	}
}

func (s *shard) dispatch(ev *event) {
	switch ev.kind {
	case evTimer:
		node := &s.net.nodes[ev.src]
		if !node.alive {
			return
		}
		if node.frozenUntil > s.now {
			ev.at = node.frozenUntil
			s.push(ev)
			return
		}
		ev.fn()
	case evDeliver:
		s.deliver(ev)
	}
}

func (s *shard) deliver(ev *event) {
	sender := &s.net.nodes[ev.src]
	// A datagram that had not finished leaving the sender's uplink when the
	// sender crashed is lost with it.
	if !sender.alive && sender.crashedAt < ev.txFinish {
		s.stats.MsgsDeadDrop++
		return
	}
	dst := &s.net.nodes[ev.to]
	if !dst.alive {
		s.stats.MsgsDeadDrop++
		return
	}
	if dst.frozenUntil > s.now {
		ev.at = dst.frozenUntil
		s.push(ev)
		return
	}
	s.stats.MsgsDelivered++
	dst.stats.RecvBytes += int64(ev.size)
	dst.stats.RecvMsgs++
	dst.handler.Receive(ev.src, ev.msg)
}

// send implements Runtime.Send for a node. It runs on the sender's shard
// (handler context) or in the global context (Schedule callbacks, setup);
// either way the sender's row, rngs, and sequence are touched only here.
func (n *Network) send(from *simNode, to wire.NodeID, m wire.Message) {
	sh := n.shards[from.shard]
	now := sh.now
	if int(to) < 0 || int(to) >= len(n.nodes) {
		sh.stats.MsgsDeadDrop++
		return
	}
	size := m.WireSize() + wire.UDPOverheadBytes
	sh.stats.MsgsSent++
	sh.stats.BytesSent += int64(size)
	from.stats.SentMsgs++
	from.stats.SentBytes += int64(size)
	if k := int(m.Kind()); k >= 0 && k < len(from.stats.SentByKind) {
		from.stats.SentByKind[k] += int64(size)
	}
	if sm, ok := m.(wire.Streamed); ok {
		slot := int(sm.StreamOf())
		if slot >= streamStatSlots {
			slot = streamStatSlots - 1
		}
		from.stats.SentByStream[slot] += int64(size)
	}
	// Region labels are written only in the global context (AddNode), so the
	// destination row's label is a safe cross-shard read.
	if n.cfg.RegionOf != nil && from.region != n.nodes[to].region {
		from.stats.InterRegionBytes += int64(size)
		from.stats.InterRegionMsgs++
	}

	// Uplink serialization: the message transmits after everything already
	// queued. Zero capacity means unconstrained.
	start := now
	if from.uplinkFreeAt > start {
		start = from.uplinkFreeAt
	}
	var serTime time.Duration
	if from.cfg.UploadBps > 0 {
		bits := int64(size) * 8
		serTime = time.Duration(bits * int64(time.Second) / from.cfg.UploadBps)
		if n.cfg.MaxQueueDelay > 0 && start-now > n.cfg.MaxQueueDelay {
			sh.stats.MsgsTailDrop++
			return
		}
	}
	txFinish := start + serTime
	from.uplinkFreeAt = txFinish
	from.stats.QueueDelay = txFinish - now

	// The netem model rules on the datagram here — after serialization (a
	// dropped datagram still consumed the uplink: it left the sender), before
	// propagation. Schedule-driven models are judged at txFinish, the
	// instant the datagram actually reaches the wire: a backlogged uplink
	// can push a datagram into (or past) a partition or spike window that
	// was not active when it was enqueued. Draws come from the sender's own
	// transmit rng, so the stream is a function of the sender's history
	// alone — independent of shard interleaving.
	verdict := n.netem.Judge(from.id, to, size, txFinish, from.txRng)
	if verdict.Drop {
		sh.stats.MsgsLost++
		return
	}
	stamp := from.seq
	from.seq++
	lat := n.latency.Latency(from.id, to, stamp)
	if verdict.Delay > 0 {
		lat += verdict.Delay
		sh.stats.MsgsNetemDelay++
	}
	ev := sh.alloc()
	ev.at = txFinish + lat
	ev.kind = evDeliver
	ev.src = from.id
	ev.srcSeq = stamp
	ev.to = to
	ev.msg = m
	ev.txFinish = txFinish
	ev.size = size
	dst := n.shards[n.nodes[to].shard]
	if dst == sh || !n.inWindow {
		// Intra-shard delivery never waits for a barrier; global-context
		// sends push directly because every shard is parked.
		dst.push(ev)
		return
	}
	// Cross-shard, mid-window: hand off at the barrier. The lookahead
	// guarantees ev.at >= the window bound, so the receiver cannot need it
	// before then.
	sh.outbox[dst.idx] = append(sh.outbox[dst.idx], ev)
}

// heapEnt is one heap slot: the canonical ordering key inlined next to the
// event pointer. Sift comparisons are the simulator's single hottest
// operation; keeping the key in the contiguous heap slice means they never
// chase the event pointer into cold pool memory.
type heapEnt struct {
	at  time.Duration
	key uint64 // src (20 bits) packed above srcSeq (44 bits)
	ev  *event
}

// entKey packs (src, srcSeq) into one comparable word. Node ids are dense
// and bounded well below 2^20 (a million-node ceiling, matching the rest of
// the codebase); per-node sequence numbers cannot plausibly reach 2^44 in a
// simulated run. Under those bounds uint64 order equals (src, srcSeq)
// lexicographic order.
func entKey(ev *event) uint64 {
	return uint64(uint32(ev.src))<<44 | (ev.srcSeq & (1<<44 - 1))
}

// entLess is the canonical event order: virtual time, then creating node,
// then the creator's private sequence — a total order identical at every
// shard count.
func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

// push queues an event; at, src, and srcSeq must already be set.
func (s *shard) push(ev *event) {
	ev.sh = s
	ev.heapIdx = int32(len(s.events))
	s.events = append(s.events, heapEnt{at: ev.at, key: entKey(ev), ev: ev})
	s.siftUp(len(s.events) - 1)
}

// pop removes and returns the earliest event.
func (s *shard) pop() *event {
	ev := s.events[0].ev
	last := len(s.events) - 1
	moved := s.events[last]
	s.events[last] = heapEnt{}
	s.events = s.events[:last]
	if last > 0 {
		s.events[0] = moved
		moved.ev.heapIdx = 0
		s.siftDown(0)
	}
	ev.heapIdx = -1
	return ev
}

// remove deletes an arbitrary queued event (timer cancellation), restoring
// the heap around the slot it vacated.
func (s *shard) remove(ev *event) {
	i := int(ev.heapIdx)
	last := len(s.events) - 1
	moved := s.events[last]
	s.events[last] = heapEnt{}
	s.events = s.events[:last]
	if i != last {
		s.events[i] = moved
		moved.ev.heapIdx = int32(i)
		s.siftDown(i)
		if int(moved.ev.heapIdx) == i {
			s.siftUp(i)
		}
	}
	ev.heapIdx = -1
}

func (s *shard) siftUp(i int) {
	ent := s.events[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !entLess(ent, s.events[parent]) {
			break
		}
		s.events[i] = s.events[parent]
		s.events[i].ev.heapIdx = int32(i)
		i = parent
	}
	s.events[i] = ent
	ent.ev.heapIdx = int32(i)
}

func (s *shard) siftDown(i int) {
	ent := s.events[i]
	size := len(s.events)
	for {
		child := 2*i + 1
		if child >= size {
			break
		}
		if r := child + 1; r < size && entLess(s.events[r], s.events[child]) {
			child = r
		}
		if !entLess(s.events[child], ent) {
			break
		}
		s.events[i] = s.events[child]
		s.events[i].ev.heapIdx = int32(i)
		i = child
	}
	s.events[i] = ent
	ent.ev.heapIdx = int32(i)
}

package simnet

import (
	"sync"
	"time"

	"repro/internal/wire"
)

// This file is the sharded run loop: conservative-lookahead windows, the
// exchange barrier that merges cross-shard deliveries, and the global event
// queue (Schedule callbacks and node starts) that runs with all shards
// parked.
//
// The loop alternates two phases:
//
//	         T = earliest node event        tG = earliest global event
//	                  │                               │
//	   tG <= T ──► run the global batch at tG (starts, callbacks),
//	               shards parked, clocks synced to tG
//	   tG >  T ──► window [T, W1): every shard processes its own events
//	               with at < W1 in parallel, W1 = min(T+L, tG, until+1)
//	               └─► barrier: merge outboxes into destination heaps
//
// L is the latency model's MinLatency. A datagram sent at s ∈ [T, W1)
// arrives no earlier than s + L >= T + L >= W1, so deliveries created inside
// a window can never be due inside it — the barrier merge is always in time.
// Windows fast-forward: T jumps straight to the next due event, so idle
// stretches cost nothing regardless of L.

// maxTime is beyond any virtual timestamp a run can reach.
const maxTime = time.Duration(1<<62 - 1)

// gkind discriminates global events.
type gkind uint8

const (
	gkindStart gkind = iota + 1
	gkindFunc
)

// gevent is one global-context event: a scheduled callback or a node start.
// Global events are totally ordered by (at, gseq) — scheduling order within
// an instant — and run before any node event at the same instant,
// regardless of shard count. They are rare (setup, churn, probes), so they
// are plain heap-allocated values, not pooled.
type gevent struct {
	at   time.Duration
	gseq uint64
	kind gkind
	node wire.NodeID // gkindStart
	fn   func()      // gkindFunc
}

func (n *Network) pushGlobal(ge gevent) {
	ge.gseq = n.gseq
	n.gseq++
	n.globals = append(n.globals, ge)
	i := len(n.globals) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !gLess(n.globals[i], n.globals[parent]) {
			break
		}
		n.globals[i], n.globals[parent] = n.globals[parent], n.globals[i]
		i = parent
	}
}

func (n *Network) popGlobal() gevent {
	ge := n.globals[0]
	last := len(n.globals) - 1
	n.globals[0] = n.globals[last]
	n.globals[last] = gevent{}
	n.globals = n.globals[:last]
	i, size := 0, last
	for {
		child := 2*i + 1
		if child >= size {
			break
		}
		if r := child + 1; r < size && gLess(n.globals[r], n.globals[child]) {
			child = r
		}
		if !gLess(n.globals[child], n.globals[i]) {
			break
		}
		n.globals[i], n.globals[child] = n.globals[child], n.globals[i]
		i = child
	}
	return ge
}

func gLess(a, b gevent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.gseq < b.gseq
}

// Run processes events until virtual time exceeds until or no events remain.
func (n *Network) Run(until time.Duration) {
	if n.running {
		panic("simnet: re-entrant Run")
	}
	n.running = true
	defer func() { n.running = false }()

	sequential := len(n.shards) == 1
	for {
		tS := maxTime
		for _, sh := range n.shards {
			if len(sh.events) > 0 && sh.events[0].at < tS {
				tS = sh.events[0].at
			}
		}
		tG := maxTime
		if len(n.globals) > 0 {
			tG = n.globals[0].at
		}
		t := tS
		if tG < t {
			t = tG
		}
		if t > until {
			break
		}
		if tG <= tS {
			// Global batch: park the shards (they already are), sync every
			// clock to tG, run same-instant callbacks and starts in
			// scheduling order.
			n.advanceTo(tG)
			n.runGlobalsAt(tG)
			continue
		}
		// Window [tS, w1). Sequential runs need no barrier safety, so they
		// run straight to the next global event (or the horizon).
		w1 := tG
		if !sequential {
			if ahead := tS + n.lookahead; ahead < w1 {
				w1 = ahead
			}
		}
		if u := until + 1; u < w1 {
			w1 = u
		}
		n.runWindow(w1, sequential)
		n.exchange()
	}
	n.advanceTo(until)
}

// RunUntilIdle processes all remaining events.
func (n *Network) RunUntilIdle() {
	n.Run(maxTime - 1)
}

// advanceTo moves the global clock and every idle shard clock forward to t
// (never backward).
func (n *Network) advanceTo(t time.Duration) {
	if t > n.now {
		n.now = t
	}
	for _, sh := range n.shards {
		if sh.now < n.now {
			sh.now = n.now
		}
	}
}

// runGlobalsAt drains every global event due at or before t, in (at, gseq)
// order. Callbacks may push more globals at the same instant (AddNode from a
// join wave, chained Schedules); those join the batch.
func (n *Network) runGlobalsAt(t time.Duration) {
	for len(n.globals) > 0 && n.globals[0].at <= t {
		ge := n.popGlobal()
		n.gstats.EventsProcessed++
		switch ge.kind {
		case gkindStart:
			nd := &n.nodes[ge.node]
			if nd.alive && !nd.started {
				nd.started = true
				nd.handler.Start(&nodeRuntime{net: n, id: nd.id})
			}
		case gkindFunc:
			ge.fn()
		}
	}
}

// runWindow lets every shard with due work process its events with at < w1.
// Sequential runs execute inline and mirror the shard clock into the global
// clock; sharded runs fan out to one goroutine per active shard and join at
// the barrier.
func (n *Network) runWindow(w1 time.Duration, sequential bool) {
	n.inWindow = true
	if sequential {
		n.shards[0].runUntil(w1, true)
		n.inWindow = false
		return
	}
	active := n.active[:0]
	for _, sh := range n.shards {
		if len(sh.events) > 0 && sh.events[0].at < w1 {
			active = append(active, sh)
		}
	}
	n.active = active
	if len(active) == 1 {
		active[0].runUntil(w1, false)
	} else {
		var wg sync.WaitGroup
		wg.Add(len(active))
		for _, sh := range active {
			go func(s *shard) {
				defer wg.Done()
				s.runUntil(w1, false)
			}(sh)
		}
		wg.Wait()
	}
	n.inWindow = false
}

// exchange is the barrier merge: every cross-shard delivery buffered during
// the window moves into its destination shard's heap. Heap order is the
// canonical (at, src, srcSeq) total order, so merge order cannot influence
// dispatch order — it only has to be complete.
func (n *Network) exchange() {
	for _, src := range n.shards {
		for di, box := range src.outbox {
			if len(box) == 0 {
				continue
			}
			dst := n.shards[di]
			for i, ev := range box {
				dst.push(ev)
				box[i] = nil
			}
			src.outbox[di] = box[:0]
		}
	}
}

package simnet

import (
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/wire"
)

// recorder is a Handler that records deliveries.
type recorder struct {
	rt      env.Runtime
	got     []recordedMsg
	started bool
	stopped bool
	onStart func(rt env.Runtime)
	onRecv  func(from wire.NodeID, m wire.Message)
}

type recordedMsg struct {
	from wire.NodeID
	m    wire.Message
	at   time.Duration
}

func (r *recorder) Start(rt env.Runtime) {
	r.rt = rt
	r.started = true
	if r.onStart != nil {
		r.onStart(rt)
	}
}

func (r *recorder) Receive(from wire.NodeID, m wire.Message) {
	r.got = append(r.got, recordedMsg{from: from, m: m, at: r.rt.Now()})
	if r.onRecv != nil {
		r.onRecv(from, m)
	}
}

func (r *recorder) Stop() { r.stopped = true }

func ping() wire.Message { return &wire.Propose{IDs: []wire.PacketID{1}} }

func TestStartAndBasicDelivery(t *testing.T) {
	net := New(Config{Seed: 1, Latency: ConstantLatency(10 * time.Millisecond)})
	a := &recorder{}
	b := &recorder{}
	ida := net.AddNode(a, NodeConfig{})
	idb := net.AddNode(b, NodeConfig{})
	net.Schedule(0, func() {
		net.nodes[ida].handler.(*recorder).rt.Send(idb, ping())
	})
	net.Run(time.Second)
	if !a.started || !b.started {
		t.Fatal("handlers not started")
	}
	if len(b.got) != 1 {
		t.Fatalf("b received %d messages, want 1", len(b.got))
	}
	if b.got[0].from != ida {
		t.Fatalf("from = %d, want %d", b.got[0].from, ida)
	}
	if b.got[0].at != 10*time.Millisecond {
		t.Fatalf("delivery at %v, want 10ms", b.got[0].at)
	}
}

func TestUplinkSerializationDelay(t *testing.T) {
	// 1316+28 bytes at 1 Mbps should take (1344*8)/1e6 s = 10.752 ms, plus
	// zero latency.
	net := New(Config{Seed: 1})
	payload := make([]byte, 1316-18-3) // serve msg with one event sized to 1316 total
	msg := &wire.Serve{Events: []wire.Event{{ID: 1, Payload: payload}}}
	if msg.WireSize() != 1316 {
		t.Fatalf("test message is %d bytes, want 1316", msg.WireSize())
	}
	b := &recorder{}
	var a *recorder
	a = &recorder{onStart: func(rt env.Runtime) {
		rt.Send(1, msg)
		rt.Send(1, msg) // second message queues behind the first
	}}
	net.AddNode(a, NodeConfig{UploadBps: 1_000_000})
	net.AddNode(b, NodeConfig{})
	net.Run(time.Second)
	if len(b.got) != 2 {
		t.Fatalf("received %d, want 2", len(b.got))
	}
	ser := time.Duration((1316 + 28) * 8 * int64(time.Second) / 1_000_000)
	if b.got[0].at != ser {
		t.Fatalf("first delivery at %v, want %v", b.got[0].at, ser)
	}
	if b.got[1].at != 2*ser {
		t.Fatalf("second delivery at %v, want %v (FIFO queueing)", b.got[1].at, 2*ser)
	}
}

func TestUnconstrainedUplinkHasNoSerializationDelay(t *testing.T) {
	net := New(Config{Seed: 1, Latency: ConstantLatency(time.Millisecond)})
	b := &recorder{}
	a := &recorder{onStart: func(rt env.Runtime) {
		for i := 0; i < 10; i++ {
			rt.Send(1, ping())
		}
	}}
	net.AddNode(a, NodeConfig{UploadBps: 0})
	net.AddNode(b, NodeConfig{})
	net.Run(time.Second)
	if len(b.got) != 10 {
		t.Fatalf("received %d, want 10", len(b.got))
	}
	for _, g := range b.got {
		if g.at != time.Millisecond {
			t.Fatalf("delivery at %v, want 1ms for all", g.at)
		}
	}
}

func TestLossRate(t *testing.T) {
	net := New(Config{Seed: 42, LossRate: 0.5})
	b := &recorder{}
	const sent = 2000
	a := &recorder{onStart: func(rt env.Runtime) {
		for i := 0; i < sent; i++ {
			rt.Send(1, ping())
		}
	}}
	net.AddNode(a, NodeConfig{})
	net.AddNode(b, NodeConfig{})
	net.Run(time.Second)
	got := len(b.got)
	if got < sent*4/10 || got > sent*6/10 {
		t.Fatalf("with 50%% loss, received %d of %d; expected ~half", got, sent)
	}
	st := net.Stats()
	if st.MsgsLost+st.MsgsDelivered != sent {
		t.Fatalf("lost(%d)+delivered(%d) != sent(%d)", st.MsgsLost, st.MsgsDelivered, sent)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		net := New(Config{Seed: 7, LossRate: 0.1,
			Latency: NewPairwiseLatency(7, 5*time.Millisecond, 50*time.Millisecond, 2*time.Millisecond)})
		b := &recorder{}
		a := &recorder{onStart: func(rt env.Runtime) {
			for i := 0; i < 100; i++ {
				rt.Send(1, ping())
			}
		}}
		net.AddNode(a, NodeConfig{UploadBps: 500_000})
		net.AddNode(b, NodeConfig{})
		net.Run(time.Minute)
		times := make([]time.Duration, len(b.got))
		for i, g := range b.got {
			times[i] = g.at
		}
		return times
	}
	// PairwiseLatency seeds maphash per construction, so per-pair bases vary
	// between runs; determinism must come from everything else. Use two runs
	// with the same explicit latency to assert full reproducibility.
	runFixed := func() []time.Duration {
		net := New(Config{Seed: 7, LossRate: 0.1, Latency: ConstantLatency(3 * time.Millisecond)})
		b := &recorder{}
		a := &recorder{onStart: func(rt env.Runtime) {
			for i := 0; i < 100; i++ {
				rt.Send(1, ping())
			}
		}}
		net.AddNode(a, NodeConfig{UploadBps: 500_000})
		net.AddNode(b, NodeConfig{})
		net.Run(time.Minute)
		times := make([]time.Duration, len(b.got))
		for i, g := range b.got {
			times[i] = g.at
		}
		return times
	}
	t1, t2 := runFixed(), runFixed()
	if len(t1) != len(t2) {
		t.Fatalf("non-deterministic delivery count: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("non-deterministic delivery time at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
	_ = run // the jittered variant is exercised elsewhere
}

func TestTimerFiresAndStops(t *testing.T) {
	net := New(Config{Seed: 1})
	var fired []time.Duration
	var stoppedFired bool
	a := &recorder{onStart: func(rt env.Runtime) {
		rt.After(10*time.Millisecond, func() { fired = append(fired, rt.Now()) })
		tm := rt.After(20*time.Millisecond, func() { stoppedFired = true })
		rt.After(5*time.Millisecond, func() {
			if !tm.Stop() {
				t.Error("Stop on pending timer returned false")
			}
			if tm.Stop() {
				t.Error("second Stop returned true")
			}
		})
	}}
	net.AddNode(a, NodeConfig{})
	net.Run(time.Second)
	if len(fired) != 1 || fired[0] != 10*time.Millisecond {
		t.Fatalf("timer fired %v, want [10ms]", fired)
	}
	if stoppedFired {
		t.Fatal("stopped timer fired")
	}
}

func TestTickerPeriodAndStop(t *testing.T) {
	net := New(Config{Seed: 1})
	var ticks []time.Duration
	var ticker *env.Ticker
	a := &recorder{onStart: func(rt env.Runtime) {
		ticker = env.NewTicker(rt, 5*time.Millisecond, 10*time.Millisecond, func() {
			ticks = append(ticks, rt.Now())
		})
	}}
	net.AddNode(a, NodeConfig{})
	net.Run(46 * time.Millisecond)
	// ticks at 5, 15, 25, 35, 45 ms
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5: %v", len(ticks), ticks)
	}
	ticker.Stop()
	net.Run(200 * time.Millisecond)
	if len(ticks) != 5 {
		t.Fatalf("ticker fired after Stop: %v", ticks)
	}
}

func TestCrashStopsHandlerAndDropsQueuedMessages(t *testing.T) {
	// Node a (slow uplink) sends 5 large messages at t=0; we crash it at a
	// time when only some have left the uplink. The rest must be lost.
	net := New(Config{Seed: 1})
	payload := make([]byte, 1316-18-3)
	msg := &wire.Serve{Events: []wire.Event{{ID: 1, Payload: payload}}}
	b := &recorder{}
	a := &recorder{onStart: func(rt env.Runtime) {
		for i := 0; i < 5; i++ {
			rt.Send(1, msg)
		}
	}}
	ida := net.AddNode(a, NodeConfig{UploadBps: 1_000_000}) // 10.752ms per msg
	net.AddNode(b, NodeConfig{})
	net.Schedule(25*time.Millisecond, func() { net.Crash(ida) }) // 2 msgs out, 3 queued
	net.RunUntilIdle()
	if len(b.got) != 2 {
		t.Fatalf("received %d messages, want 2 (rest lost in crashed uplink)", len(b.got))
	}
	if !a.stopped {
		t.Fatal("crashed node's handler not stopped")
	}
	if !net.NodeStats(ida).Crashed {
		t.Fatal("crash not recorded in stats")
	}
	if net.Alive(ida) {
		t.Fatal("crashed node still alive")
	}
}

func TestCrashedNodeReceivesNothingAndTimersDie(t *testing.T) {
	net := New(Config{Seed: 1, Latency: ConstantLatency(5 * time.Millisecond)})
	var lateTimer bool
	b := &recorder{onStart: func(rt env.Runtime) {
		rt.After(50*time.Millisecond, func() { lateTimer = true })
	}}
	a := &recorder{}
	ida := net.AddNode(a, NodeConfig{})
	idb := net.AddNode(b, NodeConfig{})
	net.Schedule(10*time.Millisecond, func() { net.Crash(idb) })
	net.Schedule(20*time.Millisecond, func() {
		net.nodes[ida].handler.(*recorder).rt.Send(idb, ping())
	})
	net.RunUntilIdle()
	if len(b.got) != 0 {
		t.Fatal("dead node received a message")
	}
	if lateTimer {
		t.Fatal("dead node's timer fired")
	}
	if net.Stats().MsgsDeadDrop == 0 {
		t.Fatal("dead drop not counted")
	}
}

func TestFreezeDefersDeliveriesAndTimers(t *testing.T) {
	net := New(Config{Seed: 1, Latency: ConstantLatency(time.Millisecond)})
	var timerAt time.Duration
	b := &recorder{onStart: func(rt env.Runtime) {
		rt.After(10*time.Millisecond, func() { timerAt = rt.Now() })
	}}
	a := &recorder{}
	ida := net.AddNode(a, NodeConfig{})
	idb := net.AddNode(b, NodeConfig{})
	net.Schedule(5*time.Millisecond, func() { net.Freeze(idb, 100*time.Millisecond) })
	net.Schedule(6*time.Millisecond, func() {
		net.nodes[ida].handler.(*recorder).rt.Send(idb, ping())
	})
	net.RunUntilIdle()
	if len(b.got) != 1 {
		t.Fatalf("frozen node lost the message: got %d", len(b.got))
	}
	if b.got[0].at != 105*time.Millisecond {
		t.Fatalf("delivery at %v, want 105ms (deferred to unfreeze)", b.got[0].at)
	}
	if timerAt != 105*time.Millisecond {
		t.Fatalf("timer at %v, want 105ms (deferred to unfreeze)", timerAt)
	}
}

func TestTailDropWhenQueueBounded(t *testing.T) {
	net := New(Config{Seed: 1, MaxQueueDelay: 20 * time.Millisecond})
	payload := make([]byte, 1316-18-3)
	msg := &wire.Serve{Events: []wire.Event{{ID: 1, Payload: payload}}}
	b := &recorder{}
	a := &recorder{onStart: func(rt env.Runtime) {
		for i := 0; i < 100; i++ { // ~1s of serialization at 1 Mbps
			rt.Send(1, msg)
		}
	}}
	net.AddNode(a, NodeConfig{UploadBps: 1_000_000})
	net.AddNode(b, NodeConfig{})
	net.RunUntilIdle()
	st := net.Stats()
	if st.MsgsTailDrop == 0 {
		t.Fatal("expected tail drops with bounded queue")
	}
	if len(b.got)+int(st.MsgsTailDrop) != 100 {
		t.Fatalf("delivered %d + dropped %d != 100", len(b.got), st.MsgsTailDrop)
	}
	// ~20ms of queue at 10.752 ms/msg means only the first 2-3 get through.
	if len(b.got) > 5 {
		t.Fatalf("bounded queue delivered %d messages, expected <= 5", len(b.got))
	}
}

func TestPairwiseLatencyStableAndSymmetric(t *testing.T) {
	lm := NewPairwiseLatency(42, 10*time.Millisecond, 100*time.Millisecond, 0)
	ab1 := lm.Latency(1, 2, 0)
	ab2 := lm.Latency(1, 2, 1)
	ba := lm.Latency(2, 1, 7)
	if ab1 != ab2 {
		t.Fatalf("latency not stable: %v vs %v", ab1, ab2)
	}
	if ab1 != ba {
		t.Fatalf("latency not symmetric: %v vs %v", ab1, ba)
	}
	if ab1 < 10*time.Millisecond || ab1 > 100*time.Millisecond {
		t.Fatalf("latency %v outside [10ms, 100ms]", ab1)
	}
	if got := lm.MinLatency(); got != 10*time.Millisecond {
		t.Fatalf("MinLatency = %v, want 10ms", got)
	}
	// Different pairs should (almost surely) differ.
	distinct := map[time.Duration]bool{}
	for i := wire.NodeID(0); i < 20; i++ {
		distinct[lm.Latency(i, i+1, 0)] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("suspiciously uniform pairwise latencies: %d distinct of 20", len(distinct))
	}

	// With jitter the latency must vary per stamp but stay within
	// [base, base+jitter], so MinLatency remains a sound lookahead bound.
	jm := NewPairwiseLatency(42, 10*time.Millisecond, 100*time.Millisecond, 2*time.Millisecond)
	base := lm.Latency(1, 2, 0)
	seen := map[time.Duration]bool{}
	for stamp := uint64(0); stamp < 50; stamp++ {
		d := jm.Latency(1, 2, stamp)
		if d < base || d > base+2*time.Millisecond {
			t.Fatalf("jittered latency %v outside [%v, %v]", d, base, base+2*time.Millisecond)
		}
		if d != jm.Latency(1, 2, stamp) {
			t.Fatal("jittered latency not a pure function of (from, to, stamp)")
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced no variation across stamps")
	}
}

func TestQueueBacklogVisible(t *testing.T) {
	net := New(Config{Seed: 1})
	payload := make([]byte, 1316-18-3)
	msg := &wire.Serve{Events: []wire.Event{{ID: 1, Payload: payload}}}
	a := &recorder{onStart: func(rt env.Runtime) {
		for i := 0; i < 10; i++ {
			rt.Send(1, msg)
		}
	}}
	ida := net.AddNode(a, NodeConfig{UploadBps: 1_000_000})
	net.AddNode(&recorder{}, NodeConfig{})
	net.Schedule(time.Millisecond, func() {
		if net.QueueBacklog(ida) <= 0 {
			t.Error("expected nonzero uplink backlog")
		}
	})
	net.RunUntilIdle()
	if net.QueueBacklog(ida) != 0 {
		t.Fatal("backlog should drain to zero")
	}
}

func TestSendToSelfDelivers(t *testing.T) {
	net := New(Config{Seed: 1})
	var self *recorder
	self = &recorder{onStart: func(rt env.Runtime) {
		rt.Send(rt.ID(), ping())
	}}
	net.AddNode(self, NodeConfig{})
	net.RunUntilIdle()
	if len(self.got) != 1 {
		t.Fatalf("self-send delivered %d, want 1", len(self.got))
	}
}

func TestSendToUnknownNodeDrops(t *testing.T) {
	net := New(Config{Seed: 1})
	a := &recorder{onStart: func(rt env.Runtime) {
		rt.Send(99, ping())
	}}
	net.AddNode(a, NodeConfig{})
	net.RunUntilIdle()
	if net.Stats().MsgsDeadDrop != 1 {
		t.Fatalf("dead drop = %d, want 1", net.Stats().MsgsDeadDrop)
	}
}

func TestNodeStatsCounters(t *testing.T) {
	net := New(Config{Seed: 1})
	b := &recorder{}
	a := &recorder{onStart: func(rt env.Runtime) {
		rt.Send(1, ping())
		rt.Send(1, &wire.Request{IDs: []wire.PacketID{1}})
	}}
	ida := net.AddNode(a, NodeConfig{})
	idb := net.AddNode(b, NodeConfig{})
	net.RunUntilIdle()
	sa := net.NodeStats(ida)
	sb := net.NodeStats(idb)
	if sa.SentMsgs != 2 || sb.RecvMsgs != 2 {
		t.Fatalf("sent=%d recv=%d, want 2/2", sa.SentMsgs, sb.RecvMsgs)
	}
	wantBytes := int64(ping().WireSize() + wire.UDPOverheadBytes +
		(&wire.Request{IDs: []wire.PacketID{1}}).WireSize() + wire.UDPOverheadBytes)
	if sa.SentBytes != wantBytes {
		t.Fatalf("sent bytes = %d, want %d", sa.SentBytes, wantBytes)
	}
	if sa.SentByKind[wire.KindPropose] == 0 || sa.SentByKind[wire.KindRequest] == 0 {
		t.Fatal("per-kind byte accounting missing")
	}
}

func TestScheduleOrderingDeterministic(t *testing.T) {
	net := New(Config{Seed: 1})
	var order []int
	net.AddNode(&recorder{}, NodeConfig{})
	for i := 0; i < 10; i++ {
		i := i
		net.Schedule(5*time.Millisecond, func() { order = append(order, i) })
	}
	net.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestMuxRouting(t *testing.T) {
	net := New(Config{Seed: 1, Latency: ConstantLatency(0)})
	var proposes, aggregates int
	mux := env.NewMux()
	mux.Register(env.HandlerFunc(func(wire.NodeID, wire.Message) { proposes++ }), wire.KindPropose)
	mux.Register(env.HandlerFunc(func(wire.NodeID, wire.Message) { aggregates++ }), wire.KindAggregate)
	idm := net.AddNode(mux, NodeConfig{})
	a := &recorder{onStart: func(rt env.Runtime) {
		rt.Send(idm, ping())
		rt.Send(idm, &wire.Aggregate{})
		rt.Send(idm, &wire.Request{}) // unrouted: dropped
	}}
	net.AddNode(a, NodeConfig{})
	net.RunUntilIdle()
	if proposes != 1 || aggregates != 1 {
		t.Fatalf("mux routed proposes=%d aggregates=%d, want 1/1", proposes, aggregates)
	}
}

func BenchmarkEventLoopThroughput(b *testing.B) {
	net := New(Config{Seed: 1, Latency: ConstantLatency(time.Millisecond)})
	idb := net.AddNode(&recorder{}, NodeConfig{})
	var rt env.Runtime
	a := &recorder{onStart: func(r env.Runtime) { rt = r }}
	net.AddNode(a, NodeConfig{})
	net.Run(0)
	msg := ping()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Send(idb, msg)
		if i%1024 == 0 {
			net.Run(net.Now() + 10*time.Millisecond)
		}
	}
	net.RunUntilIdle()
}

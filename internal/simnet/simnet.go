// Package simnet is a deterministic discrete-event network simulator that
// substitutes for the paper's PlanetLab testbed (see DESIGN.md §2).
//
// The model mirrors the experimental setup of the paper (§3.1):
//
//   - Every node owns one uplink of configurable capacity. A datagram of
//     wire size S occupies the uplink for 8·(S+28)/capacity seconds;
//     datagrams queue FIFO behind it, which is exactly the application-level
//     throttling queue the paper implements above UDP. Congestion therefore
//     manifests as queueing delay, the symptom driving the paper's results.
//   - Propagation latency is a stable per-pair base plus per-message jitter.
//   - Datagrams are lost independently with a configurable probability
//     (and, optionally, tail-dropped when the uplink queue exceeds a delay
//     bound).
//   - Downlinks are unconstrained (the paper constrains upload only).
//   - Nodes can crash (messages still in their uplink queue are lost, as the
//     paper observes in §3.6) and freeze (deliveries and timers are deferred,
//     modelling the overloaded PlanetLab hosts of §3.5).
//
// The simulator runs every node's Handler inside a single event loop with
// virtual time, so runs are deterministic given a seed and much faster than
// real time.
package simnet

import (
	"container/heap"
	"fmt"

	"math/rand"
	"time"

	"repro/internal/env"
	"repro/internal/wire"
)

// LatencyModel produces one-way propagation delays. Implementations must be
// deterministic functions of (from, to) plus draws from rng.
type LatencyModel interface {
	Latency(from, to wire.NodeID, rng *rand.Rand) time.Duration
}

// ConstantLatency applies the same one-way delay to every message.
type ConstantLatency time.Duration

// Latency implements LatencyModel.
func (c ConstantLatency) Latency(_, _ wire.NodeID, _ *rand.Rand) time.Duration {
	return time.Duration(c)
}

// PairwiseLatency assigns each unordered node pair a stable base delay drawn
// uniformly from [Min, Max] (keyed deterministically by Seed) and adds
// per-message jitter drawn uniformly from [0, Jitter]. This approximates a
// wide-area testbed: stable paths of heterogeneous length with small
// per-packet variation.
type PairwiseLatency struct {
	Min, Max time.Duration
	Jitter   time.Duration
	Seed     uint64
}

// NewPairwiseLatency builds a PairwiseLatency keyed by seed, so per-pair
// base latencies are reproducible across runs and processes.
func NewPairwiseLatency(seed int64, min, max, jitter time.Duration) *PairwiseLatency {
	return &PairwiseLatency{Min: min, Max: max, Jitter: jitter, Seed: uint64(seed)}
}

// Latency implements LatencyModel.
func (p *PairwiseLatency) Latency(from, to wire.NodeID, rng *rand.Rand) time.Duration {
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	h := splitmix64(p.Seed ^ (uint64(uint32(lo))<<32 | uint64(uint32(hi))))
	span := int64(p.Max - p.Min)
	base := p.Min
	if span > 0 {
		base += time.Duration(h % uint64(span+1))
	}
	if p.Jitter > 0 {
		base += time.Duration(rng.Int63n(int64(p.Jitter) + 1))
	}
	return base
}

// splitmix64 is a strong 64-bit mixing function (Steele et al.), used for
// stable per-pair latency derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Config parameterizes a simulated network.
type Config struct {
	// Seed drives all randomness (loss, jitter, per-node protocol rngs).
	Seed int64
	// Latency is the propagation model. Nil means ConstantLatency(0).
	Latency LatencyModel
	// LossRate is the independent per-datagram loss probability in [0, 1).
	LossRate float64
	// MaxQueueDelay tail-drops a datagram when the sender's uplink queue
	// already holds more than this much serialization time. Zero means
	// unbounded (the paper's application-level queue is unbounded).
	MaxQueueDelay time.Duration
}

// NodeConfig parameterizes one simulated node.
type NodeConfig struct {
	// UploadBps is the uplink capacity in bits per second. Zero means
	// unconstrained (used for the Figure 1 experiment).
	UploadBps int64
}

// Stats aggregates network-wide counters.
type Stats struct {
	MsgsSent      int64
	MsgsDelivered int64
	MsgsLost      int64 // random datagram loss
	MsgsTailDrop  int64 // uplink queue overflow (only if MaxQueueDelay > 0)
	MsgsDeadDrop  int64 // sender crashed before transmit finished, or dead destination
	BytesSent     int64 // includes UDP/IP overhead
}

// NodeStats aggregates per-node counters; byte counts include the 28-byte
// per-datagram UDP/IP overhead so that utilization can be compared against
// the node's capacity exactly as the paper's rate limiter does.
type NodeStats struct {
	SentBytes  int64
	RecvBytes  int64
	SentByKind [16]int64 // indexed by wire.Kind
	SentMsgs   int64
	RecvMsgs   int64
	QueueDelay time.Duration // instantaneous uplink backlog at last send
	Crashed    bool
	CrashedAt  time.Duration
}

// Network is a simulated network of nodes. It is not safe for concurrent
// use: build it, then call Run from a single goroutine.
type Network struct {
	cfg     Config
	rng     *rand.Rand // network-level randomness: loss, jitter
	latency LatencyModel

	now    time.Duration
	seq    uint64
	events eventHeap

	nodes   []*simNode
	stats   Stats
	running bool
}

type simNode struct {
	id      wire.NodeID
	handler env.Handler
	rng     *rand.Rand
	cfg     NodeConfig

	alive        bool
	started      bool
	frozenUntil  time.Duration
	uplinkFreeAt time.Duration
	crashedAt    time.Duration

	stats NodeStats
}

// event kinds
type eventKind uint8

const (
	evDeliver eventKind = iota + 1
	evTimer
	evFunc
	evStart
)

type event struct {
	at   time.Duration
	seq  uint64
	kind eventKind

	// evDeliver
	from, to wire.NodeID
	msg      wire.Message
	txFinish time.Duration // when the datagram left the sender's uplink
	size     int           // wire size incl UDP overhead

	// evTimer / evFunc / evStart
	node     wire.NodeID // evTimer, evStart: owning node
	fn       func()
	canceled bool
}

// New creates an empty network.
func New(cfg Config) *Network {
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(0)
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		panic(fmt.Sprintf("simnet: loss rate %v outside [0,1)", cfg.LossRate))
	}
	return &Network{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		latency: cfg.Latency,
	}
}

// AddNode registers a node with the given handler and configuration and
// returns its id. The handler's Start runs at the current simulation time
// (time zero if the network has not run yet). AddNode may be called from
// scheduled callbacks to model joins.
func (n *Network) AddNode(h env.Handler, cfg NodeConfig) wire.NodeID {
	if cfg.UploadBps < 0 {
		panic("simnet: negative upload capacity")
	}
	id := wire.NodeID(len(n.nodes))
	node := &simNode{
		id:      id,
		handler: h,
		rng:     rand.New(rand.NewSource(int64(uint64(n.cfg.Seed) ^ (0x9e3779b97f4a7c15 * uint64(id+1))))),
		cfg:     cfg,
		alive:   true,
	}
	n.nodes = append(n.nodes, node)
	n.push(&event{at: n.now, kind: evStart, node: id})
	return id
}

// NumNodes returns the number of nodes ever added.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Stats returns a copy of the network-wide counters.
func (n *Network) Stats() Stats { return n.stats }

// NodeStats returns a copy of the counters for one node.
func (n *Network) NodeStats(id wire.NodeID) NodeStats {
	return n.node(id).stats
}

// Alive reports whether the node is currently up.
func (n *Network) Alive(id wire.NodeID) bool { return n.node(id).alive }

// Schedule runs fn at the given absolute virtual time (or immediately if at
// is in the past). fn runs in the simulation loop and may call Crash,
// Freeze, AddNode, or node-level operations.
func (n *Network) Schedule(at time.Duration, fn func()) {
	if at < n.now {
		at = n.now
	}
	n.push(&event{at: at, kind: evFunc, fn: fn})
}

// Crash kills a node at the current time: its handler is stopped, pending
// timers are discarded, and datagrams still queued on its uplink (transmit
// finish after now) are lost — matching the paper's observation that a
// crash loses everything delivered to the node but not yet forwarded.
func (n *Network) Crash(id wire.NodeID) {
	node := n.node(id)
	if !node.alive {
		return
	}
	node.alive = false
	node.crashedAt = n.now
	node.stats.Crashed = true
	node.stats.CrashedAt = n.now
	node.handler.Stop()
}

// Freeze suspends a node for d: deliveries and timers that would fire while
// frozen are deferred to the unfreeze instant. Models transiently overloaded
// PlanetLab hosts (§3.5).
func (n *Network) Freeze(id wire.NodeID, d time.Duration) {
	node := n.node(id)
	until := n.now + d
	if until > node.frozenUntil {
		node.frozenUntil = until
	}
}

// Run processes events until virtual time exceeds until or no events remain.
func (n *Network) Run(until time.Duration) {
	if n.running {
		panic("simnet: re-entrant Run")
	}
	n.running = true
	defer func() { n.running = false }()
	for len(n.events) > 0 {
		ev := n.events[0]
		if ev.at > until {
			n.now = until
			return
		}
		heap.Pop(&n.events)
		if ev.canceled {
			continue
		}
		n.now = ev.at
		n.dispatch(ev)
	}
	if n.now < until {
		n.now = until
	}
}

// RunUntilIdle processes all remaining events.
func (n *Network) RunUntilIdle() {
	n.Run(1<<62 - 1)
}

func (n *Network) dispatch(ev *event) {
	switch ev.kind {
	case evStart:
		node := n.node(ev.node)
		if node.alive && !node.started {
			node.started = true
			node.handler.Start(&nodeRuntime{net: n, node: node})
		}
	case evFunc:
		ev.fn()
	case evTimer:
		node := n.node(ev.node)
		if !node.alive {
			return
		}
		if node.frozenUntil > n.now {
			ev.at = node.frozenUntil
			n.push(ev)
			return
		}
		ev.fn()
	case evDeliver:
		n.deliver(ev)
	}
}

func (n *Network) deliver(ev *event) {
	sender := n.node(ev.from)
	// A datagram that had not finished leaving the sender's uplink when the
	// sender crashed is lost with it.
	if !sender.alive && sender.crashedAt < ev.txFinish {
		n.stats.MsgsDeadDrop++
		return
	}
	dst := n.node(ev.to)
	if !dst.alive {
		n.stats.MsgsDeadDrop++
		return
	}
	if dst.frozenUntil > n.now {
		ev.at = dst.frozenUntil
		n.push(ev)
		return
	}
	n.stats.MsgsDelivered++
	dst.stats.RecvBytes += int64(ev.size)
	dst.stats.RecvMsgs++
	dst.handler.Receive(ev.from, ev.msg)
}

// send implements Runtime.Send for a node.
func (n *Network) send(from *simNode, to wire.NodeID, m wire.Message) {
	if int(to) < 0 || int(to) >= len(n.nodes) {
		n.stats.MsgsDeadDrop++
		return
	}
	size := m.WireSize() + wire.UDPOverheadBytes
	n.stats.MsgsSent++
	n.stats.BytesSent += int64(size)
	from.stats.SentMsgs++
	from.stats.SentBytes += int64(size)
	if k := int(m.Kind()); k >= 0 && k < len(from.stats.SentByKind) {
		from.stats.SentByKind[k] += int64(size)
	}

	// Uplink serialization: the message transmits after everything already
	// queued. Zero capacity means unconstrained.
	start := n.now
	if from.uplinkFreeAt > start {
		start = from.uplinkFreeAt
	}
	var serTime time.Duration
	if from.cfg.UploadBps > 0 {
		bits := int64(size) * 8
		serTime = time.Duration(bits * int64(time.Second) / from.cfg.UploadBps)
		if n.cfg.MaxQueueDelay > 0 && start-n.now > n.cfg.MaxQueueDelay {
			n.stats.MsgsTailDrop++
			return
		}
	}
	txFinish := start + serTime
	from.uplinkFreeAt = txFinish
	from.stats.QueueDelay = txFinish - n.now

	// Random datagram loss: the bandwidth is still consumed (the datagram
	// left the sender), but it never arrives.
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.stats.MsgsLost++
		return
	}
	lat := n.latency.Latency(from.id, to, n.rng)
	n.push(&event{
		at:       txFinish + lat,
		kind:     evDeliver,
		from:     from.id,
		to:       to,
		msg:      m,
		txFinish: txFinish,
		size:     size,
	})
}

// QueueBacklog returns the current uplink backlog (time until the node's
// uplink drains) — the congestion signal the paper discusses in §3.6.
func (n *Network) QueueBacklog(id wire.NodeID) time.Duration {
	node := n.node(id)
	if node.uplinkFreeAt <= n.now {
		return 0
	}
	return node.uplinkFreeAt - n.now
}

func (n *Network) push(ev *event) {
	ev.seq = n.seq
	n.seq++
	heap.Push(&n.events, ev)
}

func (n *Network) node(id wire.NodeID) *simNode {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: unknown node %d", id))
	}
	return n.nodes[id]
}

// nodeRuntime adapts a simNode to env.Runtime.
type nodeRuntime struct {
	net  *Network
	node *simNode
}

var _ env.Runtime = (*nodeRuntime)(nil)

func (rt *nodeRuntime) ID() wire.NodeID    { return rt.node.id }
func (rt *nodeRuntime) Now() time.Duration { return rt.net.now }
func (rt *nodeRuntime) Rand() *rand.Rand   { return rt.node.rng }

func (rt *nodeRuntime) Send(to wire.NodeID, m wire.Message) {
	if !rt.node.alive {
		return
	}
	rt.net.send(rt.node, to, m)
}

func (rt *nodeRuntime) After(d time.Duration, fn func()) env.Timer {
	if d < 0 {
		d = 0
	}
	ev := &event{at: rt.net.now + d, kind: evTimer, node: rt.node.id, fn: fn}
	rt.net.push(ev)
	return (*simTimer)(ev)
}

// simTimer implements env.Timer by flagging the underlying event.
type simTimer event

func (t *simTimer) Stop() bool {
	if t.canceled {
		return false
	}
	t.canceled = true
	return true
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Package simnet is a deterministic discrete-event network simulator that
// substitutes for the paper's PlanetLab testbed (see DESIGN.md §2).
//
// The model mirrors the experimental setup of the paper (§3.1):
//
//   - Every node owns one uplink of configurable capacity. A datagram of
//     wire size S occupies the uplink for 8·(S+28)/capacity seconds;
//     datagrams queue FIFO behind it, which is exactly the application-level
//     throttling queue the paper implements above UDP. Congestion therefore
//     manifests as queueing delay, the symptom driving the paper's results.
//   - Propagation latency is a stable per-pair base plus per-message jitter.
//   - Datagrams are lost independently with a configurable probability
//     (and, optionally, tail-dropped when the uplink queue exceeds a delay
//     bound). Adverse conditions beyond independent loss — bursty loss,
//     partitions, latency spikes, asymmetric degradation — plug in through
//     Config.Netem (internal/netem), consulted on every transmit.
//   - Downlinks are unconstrained (the paper constrains upload only).
//   - Nodes can crash (messages still in their uplink queue are lost, as the
//     paper observes in §3.6) and freeze (deliveries and timers are deferred,
//     modelling the overloaded PlanetLab hosts of §3.5).
//
// The simulator runs every node's Handler inside a single event loop with
// virtual time, so runs are deterministic given a seed and much faster than
// real time.
//
// The event loop is built for scale: events live in a free-list pool and an
// indexed binary heap, so the steady-state hot path (send, deliver, timer)
// allocates nothing, and canceled timers are removed from the heap outright
// instead of being tombstoned. Timer handles are generation-checked, which
// makes a stale handle's Stop inert after its slot has been recycled.
// Tens-of-thousands-of-node runs are bounded by per-node protocol state,
// not by the simulator core.
package simnet

import (
	"fmt"

	"math/rand"
	"time"

	"repro/internal/env"
	"repro/internal/netem"
	"repro/internal/wire"
)

// LatencyModel produces one-way propagation delays. Implementations must be
// deterministic functions of (from, to) plus draws from rng.
type LatencyModel interface {
	Latency(from, to wire.NodeID, rng *rand.Rand) time.Duration
}

// ConstantLatency applies the same one-way delay to every message.
type ConstantLatency time.Duration

// Latency implements LatencyModel.
func (c ConstantLatency) Latency(_, _ wire.NodeID, _ *rand.Rand) time.Duration {
	return time.Duration(c)
}

// PairwiseLatency assigns each unordered node pair a stable base delay drawn
// uniformly from [Min, Max] (keyed deterministically by Seed) and adds
// per-message jitter drawn uniformly from [0, Jitter]. This approximates a
// wide-area testbed: stable paths of heterogeneous length with small
// per-packet variation.
type PairwiseLatency struct {
	Min, Max time.Duration
	Jitter   time.Duration
	Seed     uint64
}

// NewPairwiseLatency builds a PairwiseLatency keyed by seed, so per-pair
// base latencies are reproducible across runs and processes. An inverted
// range or negative bound panics: that is a wiring bug, not a runtime
// condition (matching the loss-rate validation in New).
func NewPairwiseLatency(seed int64, min, max, jitter time.Duration) *PairwiseLatency {
	if min < 0 || max < min || jitter < 0 {
		panic(fmt.Sprintf("simnet: invalid pairwise latency [%v, %v] jitter %v", min, max, jitter))
	}
	return &PairwiseLatency{Min: min, Max: max, Jitter: jitter, Seed: uint64(seed)}
}

// Latency implements LatencyModel.
func (p *PairwiseLatency) Latency(from, to wire.NodeID, rng *rand.Rand) time.Duration {
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	h := splitmix64(p.Seed ^ (uint64(uint32(lo))<<32 | uint64(uint32(hi))))
	span := int64(p.Max - p.Min)
	base := p.Min
	if span > 0 {
		base += time.Duration(h % uint64(span+1))
	}
	if p.Jitter > 0 {
		base += time.Duration(rng.Int63n(int64(p.Jitter) + 1))
	}
	return base
}

// splitmix64 is a strong 64-bit mixing function (Steele et al.), used for
// stable per-pair latency derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Config parameterizes a simulated network.
type Config struct {
	// Seed drives all randomness (loss, jitter, per-node protocol rngs).
	Seed int64
	// Latency is the propagation model. Nil means ConstantLatency(0).
	Latency LatencyModel
	// LossRate is the independent per-datagram loss probability in [0, 1).
	LossRate float64
	// Netem is the network-condition model consulted on every transmit
	// (after uplink serialization, before propagation). Nil installs
	// netem.Bernoulli{P: LossRate} — the plain independent-loss path, with
	// an identical rng draw sequence. A non-nil model replaces that path
	// entirely, so fold the base loss into the model (netem.Config.Build
	// does this as its "base-loss" stage); LossRate is then ignored.
	Netem netem.Model
	// MaxQueueDelay tail-drops a datagram when the sender's uplink queue
	// already holds more than this much serialization time. Zero means
	// unbounded (the paper's application-level queue is unbounded).
	MaxQueueDelay time.Duration
}

// NodeConfig parameterizes one simulated node.
type NodeConfig struct {
	// UploadBps is the uplink capacity in bits per second. Zero means
	// unconstrained (used for the Figure 1 experiment).
	UploadBps int64
}

// Stats aggregates network-wide counters.
type Stats struct {
	MsgsSent        int64
	MsgsDelivered   int64
	MsgsLost        int64 // dropped by the netem model (loss, bursts, partitions)
	MsgsTailDrop    int64 // uplink queue overflow (only if MaxQueueDelay > 0)
	MsgsDeadDrop    int64 // sender crashed before transmit finished, or dead destination
	MsgsNetemDelay  int64 // delivered with extra netem delay (spikes, asym paths)
	BytesSent       int64 // includes UDP/IP overhead
	EventsProcessed int64 // dispatched simulator events (deliveries, timers, funcs)
}

// streamStatSlots bounds the per-stream sent-byte accounting: streams 0
// through streamStatSlots-2 get their own slot, everything beyond folds into
// the last slot. Matches the handful of concurrent streams multi-source runs
// use in practice.
const streamStatSlots = 8

// NodeStats aggregates per-node counters; byte counts include the 28-byte
// per-datagram UDP/IP overhead so that utilization can be compared against
// the node's capacity exactly as the paper's rate limiter does.
type NodeStats struct {
	SentBytes  int64
	RecvBytes  int64
	SentByKind [16]int64 // indexed by wire.Kind
	// SentByStream breaks dissemination bytes (Propose/Request/Serve) down
	// by stream id; streams >= streamStatSlots-1 share the last slot.
	// Non-dissemination traffic (aggregation, shuffles) is not counted here.
	SentByStream [streamStatSlots]int64
	SentMsgs     int64
	RecvMsgs     int64
	QueueDelay   time.Duration // instantaneous uplink backlog at last send
	Crashed      bool
	CrashedAt    time.Duration
}

// Network is a simulated network of nodes. It is not safe for concurrent
// use: build it, then call Run from a single goroutine.
type Network struct {
	cfg     Config
	rng     *rand.Rand // network-level randomness: loss, jitter
	latency LatencyModel
	netem   netem.Model

	now    time.Duration
	seq    uint64
	events []*event // indexed binary heap ordered by (at, seq)
	free   *event   // free list of recycled event slots

	nodes   []*simNode
	stats   Stats
	running bool
}

type simNode struct {
	id      wire.NodeID
	handler env.Handler
	rng     *rand.Rand
	cfg     NodeConfig

	alive        bool
	started      bool
	frozenUntil  time.Duration
	uplinkFreeAt time.Duration
	crashedAt    time.Duration

	stats NodeStats
}

// event kinds
type eventKind uint8

const (
	evDeliver eventKind = iota + 1
	evTimer
	evFunc
	evStart
)

// event is one scheduled occurrence. Events are pooled: dispatched (or
// canceled) events return to the network's free list and are reused by later
// sends and timers, so the steady-state hot path allocates nothing. The gen
// counter is bumped on every recycle, which lets outstanding timer handles
// detect that their event slot has moved on (see simTimer).
type event struct {
	net     *Network
	at      time.Duration
	seq     uint64
	kind    eventKind
	heapIdx int32  // position in Network.events; -1 when not queued
	gen     uint32 // recycle generation, validates timer handles

	// evDeliver
	from, to wire.NodeID
	msg      wire.Message
	txFinish time.Duration // when the datagram left the sender's uplink
	size     int           // wire size incl UDP overhead

	// evTimer / evFunc / evStart
	node wire.NodeID // evTimer, evStart: owning node
	fn   func()

	next *event // free-list link
}

// eventBlockSize is how many event slots one pool refill allocates: big
// enough to amortize allocation to noise, small enough not to bloat tiny
// simulations.
const eventBlockSize = 128

// alloc takes an event slot from the free list, refilling it with a fresh
// block when empty. Slots keep their identity (net, gen) across reuse.
func (n *Network) alloc() *event {
	if n.free == nil {
		block := make([]event, eventBlockSize)
		for i := range block {
			block[i].net = n
			block[i].heapIdx = -1
			if i+1 < len(block) {
				block[i].next = &block[i+1]
			}
		}
		n.free = &block[0]
	}
	ev := n.free
	n.free = ev.next
	ev.next = nil
	return ev
}

// recycle returns a dispatched or canceled event to the free list, dropping
// references so the pool does not pin messages or closures, and bumping the
// generation so stale timer handles turn inert.
func (n *Network) recycle(ev *event) {
	ev.gen++
	ev.kind = 0
	ev.msg = nil
	ev.fn = nil
	ev.next = n.free
	n.free = ev
}

// New creates an empty network.
func New(cfg Config) *Network {
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(0)
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		panic(fmt.Sprintf("simnet: loss rate %v outside [0,1)", cfg.LossRate))
	}
	if cfg.Netem == nil {
		cfg.Netem = netem.Bernoulli{P: cfg.LossRate}
	}
	return &Network{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		latency: cfg.Latency,
		netem:   cfg.Netem,
	}
}

// AddNode registers a node with the given handler and configuration and
// returns its id. The handler's Start runs at the current simulation time
// (time zero if the network has not run yet). AddNode may be called from
// scheduled callbacks to model joins.
func (n *Network) AddNode(h env.Handler, cfg NodeConfig) wire.NodeID {
	if cfg.UploadBps < 0 {
		panic("simnet: negative upload capacity")
	}
	id := wire.NodeID(len(n.nodes))
	node := &simNode{
		id:      id,
		handler: h,
		rng:     rand.New(rand.NewSource(int64(uint64(n.cfg.Seed) ^ (0x9e3779b97f4a7c15 * uint64(id+1))))),
		cfg:     cfg,
		alive:   true,
	}
	n.nodes = append(n.nodes, node)
	ev := n.alloc()
	ev.at = n.now
	ev.kind = evStart
	ev.node = id
	n.push(ev)
	return id
}

// NumNodes returns the number of nodes ever added.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Stats returns a copy of the network-wide counters.
func (n *Network) Stats() Stats { return n.stats }

// NodeStats returns a copy of the counters for one node.
func (n *Network) NodeStats(id wire.NodeID) NodeStats {
	return n.node(id).stats
}

// Alive reports whether the node is currently up.
func (n *Network) Alive(id wire.NodeID) bool { return n.node(id).alive }

// Schedule runs fn at the given absolute virtual time (or immediately if at
// is in the past). fn runs in the simulation loop and may call Crash,
// Freeze, AddNode, or node-level operations.
func (n *Network) Schedule(at time.Duration, fn func()) {
	if at < n.now {
		at = n.now
	}
	ev := n.alloc()
	ev.at = at
	ev.kind = evFunc
	ev.fn = fn
	n.push(ev)
}

// Crash kills a node at the current time: its handler is stopped, pending
// timers are discarded, and datagrams still queued on its uplink (transmit
// finish after now) are lost — matching the paper's observation that a
// crash loses everything delivered to the node but not yet forwarded.
func (n *Network) Crash(id wire.NodeID) {
	node := n.node(id)
	if !node.alive {
		return
	}
	node.alive = false
	node.crashedAt = n.now
	node.stats.Crashed = true
	node.stats.CrashedAt = n.now
	node.handler.Stop()
}

// Freeze suspends a node for d: deliveries and timers that would fire while
// frozen are deferred to the unfreeze instant. Models transiently overloaded
// PlanetLab hosts (§3.5).
func (n *Network) Freeze(id wire.NodeID, d time.Duration) {
	node := n.node(id)
	until := n.now + d
	if until > node.frozenUntil {
		node.frozenUntil = until
	}
}

// Run processes events until virtual time exceeds until or no events remain.
func (n *Network) Run(until time.Duration) {
	if n.running {
		panic("simnet: re-entrant Run")
	}
	n.running = true
	defer func() { n.running = false }()
	for len(n.events) > 0 {
		ev := n.events[0]
		if ev.at > until {
			n.now = until
			return
		}
		n.pop()
		n.now = ev.at
		n.stats.EventsProcessed++
		n.dispatch(ev)
		// dispatch may have re-queued the event (freeze deferral); only
		// events that truly left the schedule go back to the pool.
		if ev.heapIdx < 0 {
			n.recycle(ev)
		}
	}
	if n.now < until {
		n.now = until
	}
}

// RunUntilIdle processes all remaining events.
func (n *Network) RunUntilIdle() {
	n.Run(1<<62 - 1)
}

func (n *Network) dispatch(ev *event) {
	switch ev.kind {
	case evStart:
		node := n.node(ev.node)
		if node.alive && !node.started {
			node.started = true
			node.handler.Start(&nodeRuntime{net: n, node: node})
		}
	case evFunc:
		ev.fn()
	case evTimer:
		node := n.node(ev.node)
		if !node.alive {
			return
		}
		if node.frozenUntil > n.now {
			ev.at = node.frozenUntil
			n.push(ev)
			return
		}
		ev.fn()
	case evDeliver:
		n.deliver(ev)
	}
}

func (n *Network) deliver(ev *event) {
	sender := n.node(ev.from)
	// A datagram that had not finished leaving the sender's uplink when the
	// sender crashed is lost with it.
	if !sender.alive && sender.crashedAt < ev.txFinish {
		n.stats.MsgsDeadDrop++
		return
	}
	dst := n.node(ev.to)
	if !dst.alive {
		n.stats.MsgsDeadDrop++
		return
	}
	if dst.frozenUntil > n.now {
		ev.at = dst.frozenUntil
		n.push(ev)
		return
	}
	n.stats.MsgsDelivered++
	dst.stats.RecvBytes += int64(ev.size)
	dst.stats.RecvMsgs++
	dst.handler.Receive(ev.from, ev.msg)
}

// send implements Runtime.Send for a node.
func (n *Network) send(from *simNode, to wire.NodeID, m wire.Message) {
	if int(to) < 0 || int(to) >= len(n.nodes) {
		n.stats.MsgsDeadDrop++
		return
	}
	size := m.WireSize() + wire.UDPOverheadBytes
	n.stats.MsgsSent++
	n.stats.BytesSent += int64(size)
	from.stats.SentMsgs++
	from.stats.SentBytes += int64(size)
	if k := int(m.Kind()); k >= 0 && k < len(from.stats.SentByKind) {
		from.stats.SentByKind[k] += int64(size)
	}
	if sm, ok := m.(wire.Streamed); ok {
		slot := int(sm.StreamOf())
		if slot >= streamStatSlots {
			slot = streamStatSlots - 1
		}
		from.stats.SentByStream[slot] += int64(size)
	}

	// Uplink serialization: the message transmits after everything already
	// queued. Zero capacity means unconstrained.
	start := n.now
	if from.uplinkFreeAt > start {
		start = from.uplinkFreeAt
	}
	var serTime time.Duration
	if from.cfg.UploadBps > 0 {
		bits := int64(size) * 8
		serTime = time.Duration(bits * int64(time.Second) / from.cfg.UploadBps)
		if n.cfg.MaxQueueDelay > 0 && start-n.now > n.cfg.MaxQueueDelay {
			n.stats.MsgsTailDrop++
			return
		}
	}
	txFinish := start + serTime
	from.uplinkFreeAt = txFinish
	from.stats.QueueDelay = txFinish - n.now

	// The netem model rules on the datagram here — after serialization (a
	// dropped datagram still consumed the uplink: it left the sender), before
	// propagation. Schedule-driven models are judged at txFinish, the
	// instant the datagram actually reaches the wire: a backlogged uplink
	// can push a datagram into (or past) a partition or spike window that
	// was not active when it was enqueued. The default model is plain
	// independent loss (time-ignoring, so this choice cannot perturb the
	// zero-config rng stream).
	verdict := n.netem.Judge(from.id, to, size, txFinish, n.rng)
	if verdict.Drop {
		n.stats.MsgsLost++
		return
	}
	lat := n.latency.Latency(from.id, to, n.rng)
	if verdict.Delay > 0 {
		lat += verdict.Delay
		n.stats.MsgsNetemDelay++
	}
	ev := n.alloc()
	ev.at = txFinish + lat
	ev.kind = evDeliver
	ev.from = from.id
	ev.to = to
	ev.msg = m
	ev.txFinish = txFinish
	ev.size = size
	n.push(ev)
}

// SetUploadBps rewrites a node's uplink capacity mid-run (netem capability
// traces, measured-capacity drift). The new rate applies to datagrams sent
// after the call; anything already serializing keeps its old schedule.
func (n *Network) SetUploadBps(id wire.NodeID, bps int64) {
	if bps < 0 {
		panic("simnet: negative upload capacity")
	}
	n.node(id).cfg.UploadBps = bps
}

// QueueBacklog returns the current uplink backlog (time until the node's
// uplink drains) — the congestion signal the paper discusses in §3.6.
func (n *Network) QueueBacklog(id wire.NodeID) time.Duration {
	node := n.node(id)
	if node.uplinkFreeAt <= n.now {
		return 0
	}
	return node.uplinkFreeAt - n.now
}

// QueueBacklogBytes returns the bytes currently waiting in the node's uplink
// queue (backlog time times the current capacity). Together with
// NodeStats.SentBytes — which counts at enqueue — this gives the bytes that
// actually left the node: SentBytes − QueueBacklogBytes, the achieved-
// throughput signal the adaptation layer samples. 0 for unconstrained
// uplinks, whose queue never forms.
//
// Caveat: datagrams already scheduled keep their old transmit times across
// SetUploadBps, so a rate rewrite revalues the standing backlog at the new
// rate and the gauge jumps discontinuously for the one observation window
// spanning the step. The adaptation controller bounds that window's
// influence on its own side (the per-decision Beta² guard in
// internal/adapt), which is cheaper than per-datagram byte accounting here.
func (n *Network) QueueBacklogBytes(id wire.NodeID) int64 {
	node := n.node(id)
	if node.uplinkFreeAt <= n.now || node.cfg.UploadBps <= 0 {
		return 0
	}
	backlog := node.uplinkFreeAt - n.now
	return int64(backlog) * node.cfg.UploadBps / (8 * int64(time.Second))
}

func (n *Network) push(ev *event) {
	ev.seq = n.seq
	n.seq++
	ev.heapIdx = int32(len(n.events))
	n.events = append(n.events, ev)
	n.siftUp(len(n.events) - 1)
}

func (n *Network) node(id wire.NodeID) *simNode {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: unknown node %d", id))
	}
	return n.nodes[id]
}

// nodeRuntime adapts a simNode to env.Runtime.
type nodeRuntime struct {
	net  *Network
	node *simNode
}

var _ env.Runtime = (*nodeRuntime)(nil)

func (rt *nodeRuntime) ID() wire.NodeID    { return rt.node.id }
func (rt *nodeRuntime) Now() time.Duration { return rt.net.now }
func (rt *nodeRuntime) Rand() *rand.Rand   { return rt.node.rng }

func (rt *nodeRuntime) Send(to wire.NodeID, m wire.Message) {
	if !rt.node.alive {
		return
	}
	rt.net.send(rt.node, to, m)
}

func (rt *nodeRuntime) After(d time.Duration, fn func()) env.Timer {
	if d < 0 {
		d = 0
	}
	n := rt.net
	ev := n.alloc()
	ev.at = n.now + d
	ev.kind = evTimer
	ev.node = rt.node.id
	ev.fn = fn
	n.push(ev)
	return simTimer{ev: ev, gen: ev.gen}
}

// AfterFunc implements env.Runtime. With no handle to mint, the timer is
// just a pooled event: the call allocates nothing in steady state.
func (rt *nodeRuntime) AfterFunc(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	n := rt.net
	ev := n.alloc()
	ev.at = n.now + d
	ev.kind = evTimer
	ev.node = rt.node.id
	ev.fn = fn
	n.push(ev)
}

// simTimer is a generation-checked handle to a pooled timer event. Stop
// removes the event from the schedule outright (no tombstones) and recycles
// its slot; a handle whose generation no longer matches — the timer fired,
// was stopped, and the slot was reused — is inert.
type simTimer struct {
	ev  *event
	gen uint32
}

func (t simTimer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.heapIdx < 0 {
		return false
	}
	ev.net.remove(ev)
	ev.net.recycle(ev)
	return true
}

// evLess orders events by (time, sequence): virtual-time order with FIFO
// tie-breaking, so same-instant events fire in scheduling order.
func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pop removes and returns the earliest event.
func (n *Network) pop() *event {
	ev := n.events[0]
	last := len(n.events) - 1
	moved := n.events[last]
	n.events[last] = nil
	n.events = n.events[:last]
	if last > 0 {
		n.events[0] = moved
		moved.heapIdx = 0
		n.siftDown(0)
	}
	ev.heapIdx = -1
	return ev
}

// remove deletes an arbitrary queued event (timer cancellation), restoring
// the heap around the slot it vacated.
func (n *Network) remove(ev *event) {
	i := int(ev.heapIdx)
	last := len(n.events) - 1
	moved := n.events[last]
	n.events[last] = nil
	n.events = n.events[:last]
	if i != last {
		n.events[i] = moved
		moved.heapIdx = int32(i)
		n.siftDown(i)
		if int(moved.heapIdx) == i {
			n.siftUp(i)
		}
	}
	ev.heapIdx = -1
}

func (n *Network) siftUp(i int) {
	ev := n.events[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(ev, n.events[parent]) {
			break
		}
		n.events[i] = n.events[parent]
		n.events[i].heapIdx = int32(i)
		i = parent
	}
	n.events[i] = ev
	ev.heapIdx = int32(i)
}

func (n *Network) siftDown(i int) {
	ev := n.events[i]
	size := len(n.events)
	for {
		child := 2*i + 1
		if child >= size {
			break
		}
		if r := child + 1; r < size && evLess(n.events[r], n.events[child]) {
			child = r
		}
		if !evLess(n.events[child], ev) {
			break
		}
		n.events[i] = n.events[child]
		n.events[i].heapIdx = int32(i)
		i = child
	}
	n.events[i] = ev
	ev.heapIdx = int32(i)
}

// Package simnet is a deterministic discrete-event network simulator that
// substitutes for the paper's PlanetLab testbed (see DESIGN.md §2).
//
// The model mirrors the experimental setup of the paper (§3.1):
//
//   - Every node owns one uplink of configurable capacity. A datagram of
//     wire size S occupies the uplink for 8·(S+28)/capacity seconds;
//     datagrams queue FIFO behind it, which is exactly the application-level
//     throttling queue the paper implements above UDP. Congestion therefore
//     manifests as queueing delay, the symptom driving the paper's results.
//   - Propagation latency is a stable per-pair base plus per-message jitter.
//   - Datagrams are lost independently with a configurable probability
//     (and, optionally, tail-dropped when the uplink queue exceeds a delay
//     bound). Adverse conditions beyond independent loss — bursty loss,
//     partitions, latency spikes, asymmetric degradation — plug in through
//     Config.Netem (internal/netem), consulted on every transmit.
//   - Downlinks are unconstrained (the paper constrains upload only).
//   - Nodes can crash (messages still in their uplink queue are lost, as the
//     paper observes in §3.6) and freeze (deliveries and timers are deferred,
//     modelling the overloaded PlanetLab hosts of §3.5).
//
// # Sharded execution
//
// The simulator partitions nodes across Config.Shards shards (node id mod
// S), each with its own indexed event heap, pooled free list, and dense node
// rows. Shards run lock-free between time-bucketed exchange barriers: a
// window [T, T+L) is safe to process in parallel because every cross-shard
// datagram incurs at least L of propagation latency (the latency model's
// MinLatency — the conservative lookahead of classic parallel discrete-event
// simulation), so nothing sent inside a window can be due before the next
// barrier. Cross-shard deliveries are buffered in per-shard outboxes and
// merged at the barrier.
//
// Determinism is shard-count invariant: every event carries a canonical key
// (at, src, srcSeq) — virtual time, the id of the node that created the
// event, and that node's private monotonic sequence number — and each
// shard's heap pops in exactly that total order. Because the key is derived
// only from the creating node's own deterministic history (never from a
// global counter or arrival interleaving), the same seed produces
// byte-identical results at any shard count; the gob-fingerprint determinism
// suite in internal/scenario enforces this at S ∈ {1, 2, 8}. Scheduled
// callbacks (Schedule), node starts, and every mutating control operation
// (Crash, Freeze, AddNode, SetUploadBps) run in the global context at
// barriers, with all shards parked.
//
// All randomness is per-node: each node owns a protocol rng (env.Runtime's
// Rand) and a transmit rng (netem loss draws), both tiny splitmix64 streams
// derived from the run seed and the node id, so draw sequences are
// independent of how shards interleave.
//
// The event loop is built for scale: events live in per-shard free-list
// pools and indexed binary heaps, so the steady-state hot path (send,
// deliver, timer) allocates nothing, and canceled timers are removed from
// the heap outright instead of being tombstoned. Timer handles are
// generation-checked, which makes a stale handle's Stop inert after its slot
// has been recycled. Node state lives in one dense table (a flat slice
// indexed by id), so million-node runs are bounded by per-node protocol
// state, not by the simulator core.
package simnet

import (
	"fmt"

	"math/rand"
	"time"

	"repro/internal/env"
	"repro/internal/netem"
	"repro/internal/wire"
)

// LatencyModel produces one-way propagation delays. Implementations must be
// pure functions of (from, to, stamp): no shared state, no rng — that is
// what keeps latency independent of event interleaving, which both the
// sharded runtime and shard-count-invariant fingerprints rely on. stamp is a
// per-sender monotonic counter (the sender's event sequence number), the key
// for per-message jitter.
type LatencyModel interface {
	Latency(from, to wire.NodeID, stamp uint64) time.Duration
	// MinLatency is a lower bound on Latency over all arguments. It is the
	// sharded runtime's conservative lookahead: shards process one
	// MinLatency-wide window between exchange barriers. A zero bound forces
	// sequential execution (Config.Shards is clamped to 1).
	MinLatency() time.Duration
}

// ConstantLatency applies the same one-way delay to every message.
type ConstantLatency time.Duration

// Latency implements LatencyModel.
func (c ConstantLatency) Latency(_, _ wire.NodeID, _ uint64) time.Duration {
	return time.Duration(c)
}

// MinLatency implements LatencyModel.
func (c ConstantLatency) MinLatency() time.Duration { return time.Duration(c) }

// PairwiseLatency assigns each unordered node pair a stable base delay drawn
// uniformly from [Min, Max] (keyed deterministically by Seed) and adds
// per-message jitter derived by hashing (Seed, pair, sender, stamp) —
// no rng is consumed, so delays are independent of event ordering. This
// approximates a wide-area testbed: stable paths of heterogeneous length
// with small per-packet variation.
type PairwiseLatency struct {
	Min, Max time.Duration
	Jitter   time.Duration
	Seed     uint64
}

// NewPairwiseLatency builds a PairwiseLatency keyed by seed, so per-pair
// base latencies are reproducible across runs and processes. An inverted
// range or negative bound panics: that is a wiring bug, not a runtime
// condition (matching the loss-rate validation in New).
func NewPairwiseLatency(seed int64, min, max, jitter time.Duration) *PairwiseLatency {
	if min < 0 || max < min || jitter < 0 {
		panic(fmt.Sprintf("simnet: invalid pairwise latency [%v, %v] jitter %v", min, max, jitter))
	}
	return &PairwiseLatency{Min: min, Max: max, Jitter: jitter, Seed: uint64(seed)}
}

// Latency implements LatencyModel. The base is symmetric (keyed by the
// unordered pair); jitter is keyed by the directed sender and its stamp, so
// every datagram of a flow gets its own draw.
func (p *PairwiseLatency) Latency(from, to wire.NodeID, stamp uint64) time.Duration {
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	h := splitmix64(p.Seed ^ (uint64(uint32(lo))<<32 | uint64(uint32(hi))))
	span := int64(p.Max - p.Min)
	base := p.Min
	if span > 0 {
		base += time.Duration(h % uint64(span+1))
	}
	if p.Jitter > 0 {
		j := splitmix64(h ^ (uint64(uint32(from)) << 20) ^ stamp)
		base += time.Duration(j % uint64(int64(p.Jitter)+1))
	}
	return base
}

// MinLatency implements LatencyModel.
func (p *PairwiseLatency) MinLatency() time.Duration { return p.Min }

// splitmix64 is a strong 64-bit mixing function (Steele et al.), used for
// stable per-pair latency derivation and the per-node rng streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// splitmixSource is an 8-byte rand.Source64: the splitmix64 generator
// proper (increment by the golden-ratio gamma, then mix). math/rand's
// default source carries a ~5 KB lagged-Fibonacci table, which at two rngs
// per node would cost ~10 GB for a million-node run; this source makes
// per-node rng state free.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

// Config parameterizes a simulated network.
type Config struct {
	// Seed drives all randomness (loss, jitter, per-node protocol rngs).
	Seed int64
	// Latency is the propagation model. Nil means ConstantLatency(0).
	Latency LatencyModel
	// LossRate is the independent per-datagram loss probability in [0, 1).
	LossRate float64
	// Netem is the network-condition model consulted on every transmit
	// (after uplink serialization, before propagation). Nil installs
	// netem.Bernoulli{P: LossRate} — the plain independent-loss path, with
	// an identical rng draw sequence. A non-nil model replaces that path
	// entirely, so fold the base loss into the model (netem.Config.Build
	// does this as its "base-loss" stage); LossRate is then ignored.
	Netem netem.Model
	// MaxQueueDelay tail-drops a datagram when the sender's uplink queue
	// already holds more than this much serialization time. Zero means
	// unbounded (the paper's application-level queue is unbounded).
	MaxQueueDelay time.Duration
	// Shards is how many event-loop shards the simulation runs across
	// (goroutines between exchange barriers). 0 or 1 is sequential. Results
	// are byte-identical at any shard count; pick runtime.GOMAXPROCS(0)
	// for wall-clock speed. Clamped to 1 when the latency model's
	// MinLatency is zero: with no lookahead there is no safe window.
	Shards int
	// RegionOf labels each node with a topology region (cluster) index for
	// traffic accounting: sends whose endpoints carry different labels count
	// into NodeStats.InterRegionBytes/Msgs — the WAN-byte measurement of
	// topology-aware runs. Nil disables the labeling and keeps those
	// counters at zero. Purely observational: delivery, latency, and netem
	// verdicts are unaffected.
	RegionOf func(wire.NodeID) int
}

// NodeConfig parameterizes one simulated node.
type NodeConfig struct {
	// UploadBps is the uplink capacity in bits per second. Zero means
	// unconstrained (used for the Figure 1 experiment).
	UploadBps int64
}

// Stats aggregates network-wide counters.
type Stats struct {
	MsgsSent        int64
	MsgsDelivered   int64
	MsgsLost        int64 // dropped by the netem model (loss, bursts, partitions)
	MsgsTailDrop    int64 // uplink queue overflow (only if MaxQueueDelay > 0)
	MsgsDeadDrop    int64 // sender crashed before transmit finished, or dead destination
	MsgsNetemDelay  int64 // delivered with extra netem delay (spikes, asym paths)
	BytesSent       int64 // includes UDP/IP overhead
	EventsProcessed int64 // dispatched simulator events (deliveries, timers, funcs)
}

func (s *Stats) add(o Stats) {
	s.MsgsSent += o.MsgsSent
	s.MsgsDelivered += o.MsgsDelivered
	s.MsgsLost += o.MsgsLost
	s.MsgsTailDrop += o.MsgsTailDrop
	s.MsgsDeadDrop += o.MsgsDeadDrop
	s.MsgsNetemDelay += o.MsgsNetemDelay
	s.BytesSent += o.BytesSent
	s.EventsProcessed += o.EventsProcessed
}

// streamStatSlots bounds the per-stream sent-byte accounting: streams 0
// through streamStatSlots-2 get their own slot, everything beyond folds into
// the last slot. Matches the handful of concurrent streams multi-source runs
// use in practice.
const streamStatSlots = 8

// NodeStats aggregates per-node counters; byte counts include the 28-byte
// per-datagram UDP/IP overhead so that utilization can be compared against
// the node's capacity exactly as the paper's rate limiter does.
type NodeStats struct {
	SentBytes  int64
	RecvBytes  int64
	SentByKind [16]int64 // indexed by wire.Kind
	// SentByStream breaks dissemination bytes (Propose/Request/Serve) down
	// by stream id; streams >= streamStatSlots-1 share the last slot.
	// Non-dissemination traffic (aggregation, shuffles) is not counted here.
	SentByStream [streamStatSlots]int64
	SentMsgs     int64
	RecvMsgs     int64
	// InterRegionBytes/InterRegionMsgs count sent traffic whose destination
	// carries a different Config.RegionOf label — bytes that crossed a
	// topology cluster boundary. Zero when the run is unlabeled.
	InterRegionBytes int64
	InterRegionMsgs  int64
	QueueDelay       time.Duration // instantaneous uplink backlog at last send
	Crashed          bool
	CrashedAt        time.Duration
}

// Network is a simulated network of nodes. Build it and call Run from a
// single goroutine; Run fans work out to shard goroutines internally.
// Control operations (AddNode, Schedule, Crash, Freeze, SetUploadBps) and
// every read method are global-context operations: call them during setup,
// between Run calls, or from Schedule callbacks — never from handler code
// while a run window is executing.
type Network struct {
	cfg       Config
	latency   LatencyModel
	netem     netem.Model
	lookahead time.Duration

	now      time.Duration
	shards   []*shard
	active   []*shard // per-window scratch: shards with due work
	nodes    []simNode
	globals  []gevent // binary heap ordered by (at, gseq)
	gseq     uint64
	gstats   Stats // events dispatched in global context
	running  bool
	inWindow bool
}

// simNode is one dense node-table row. Rows are addressed by id and
// referenced only transiently (the table may be reallocated by mid-run
// joins, which happen at barriers).
type simNode struct {
	id      wire.NodeID
	shard   int32
	region  int32 // Config.RegionOf label; written at AddNode (global context), read-only after
	alive   bool
	started bool
	handler env.Handler
	rng     *rand.Rand // handler-visible protocol rng (env.Runtime's Rand)
	txRng   *rand.Rand // transmit-side rng: netem draws, one stream per sender
	seq     uint64     // per-node event sequence: canonical tie-break + jitter stamp
	cfg     NodeConfig

	frozenUntil  time.Duration
	uplinkFreeAt time.Duration
	crashedAt    time.Duration

	stats NodeStats
}

// New creates an empty network.
func New(cfg Config) *Network {
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(0)
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		panic(fmt.Sprintf("simnet: loss rate %v outside [0,1)", cfg.LossRate))
	}
	if cfg.Netem == nil {
		cfg.Netem = netem.Bernoulli{P: cfg.LossRate}
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	lookahead := cfg.Latency.MinLatency()
	if lookahead <= 0 {
		shards = 1 // no lookahead, no safe parallel window
	}
	n := &Network{
		cfg:       cfg,
		latency:   cfg.Latency,
		netem:     cfg.Netem,
		lookahead: lookahead,
	}
	n.shards = make([]*shard, shards)
	for i := range n.shards {
		n.shards[i] = &shard{
			net:    n,
			idx:    int32(i),
			outbox: make([][]*event, shards),
		}
	}
	return n
}

// NumShards returns the effective shard count (after clamping).
func (n *Network) NumShards() int { return len(n.shards) }

// AddNode registers a node with the given handler and configuration and
// returns its id. The handler's Start runs at the current simulation time
// (time zero if the network has not run yet). AddNode may be called from
// scheduled callbacks to model joins.
func (n *Network) AddNode(h env.Handler, cfg NodeConfig) wire.NodeID {
	n.assertGlobal("AddNode")
	if cfg.UploadBps < 0 {
		panic("simnet: negative upload capacity")
	}
	id := wire.NodeID(len(n.nodes))
	seed := uint64(n.cfg.Seed)
	var region int32
	if n.cfg.RegionOf != nil {
		region = int32(n.cfg.RegionOf(id))
	}
	n.nodes = append(n.nodes, simNode{
		id:      id,
		shard:   int32(int(id) % len(n.shards)),
		region:  region,
		alive:   true,
		handler: h,
		rng:     rand.New(&splitmixSource{state: seed ^ (0x9e3779b97f4a7c15 * uint64(id+1))}),
		txRng:   rand.New(&splitmixSource{state: splitmix64(seed ^ (0xd1342543de82ef95 * uint64(id+1)))}),
		cfg:     cfg,
	})
	if p, ok := n.netem.(netem.Presizer); ok {
		// Presizing at the barrier keeps per-sender model state (GE chains)
		// growth out of the parallel windows.
		p.Presize(len(n.nodes))
	}
	n.pushGlobal(gevent{at: n.now, kind: gkindStart, node: id})
	return id
}

// NumNodes returns the number of nodes ever added.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Now returns the current virtual time of the global context. Sequential
// runs (one shard) keep it exact per event; sharded runs advance it at
// barriers, which is everywhere global code can observe it. Handler code
// must use its Runtime's Now, which is always exact.
func (n *Network) Now() time.Duration { return n.now }

// Stats returns a copy of the network-wide counters, summed across shards.
func (n *Network) Stats() Stats {
	out := n.gstats
	for _, sh := range n.shards {
		out.add(sh.stats)
	}
	return out
}

// NodeStats returns a copy of the counters for one node.
func (n *Network) NodeStats(id wire.NodeID) NodeStats {
	return n.node(id).stats
}

// Alive reports whether the node is currently up.
func (n *Network) Alive(id wire.NodeID) bool { return n.node(id).alive }

// Schedule runs fn at the given absolute virtual time (or immediately if at
// is in the past). fn runs in the global context — all shards parked at a
// barrier — and may call Crash, Freeze, AddNode, or node-level operations.
// Same-time callbacks run in call order, before any node event at that
// instant.
func (n *Network) Schedule(at time.Duration, fn func()) {
	n.assertGlobal("Schedule")
	if at < n.now {
		at = n.now
	}
	n.pushGlobal(gevent{at: at, kind: gkindFunc, fn: fn})
}

// Crash kills a node at the current time: its handler is stopped, pending
// timers are discarded, and datagrams still queued on its uplink (transmit
// finish after now) are lost — matching the paper's observation that a
// crash loses everything delivered to the node but not yet forwarded.
func (n *Network) Crash(id wire.NodeID) {
	n.assertGlobal("Crash")
	node := n.node(id)
	if !node.alive {
		return
	}
	node.alive = false
	node.crashedAt = n.now
	node.stats.Crashed = true
	node.stats.CrashedAt = n.now
	node.handler.Stop()
}

// Freeze suspends a node for d: deliveries and timers that would fire while
// frozen are deferred to the unfreeze instant. Models transiently overloaded
// PlanetLab hosts (§3.5).
func (n *Network) Freeze(id wire.NodeID, d time.Duration) {
	n.assertGlobal("Freeze")
	node := n.node(id)
	until := n.now + d
	if until > node.frozenUntil {
		node.frozenUntil = until
	}
}

// SetUploadBps rewrites a node's uplink capacity mid-run (netem capability
// traces, measured-capacity drift). The new rate applies to datagrams sent
// after the call; anything already serializing keeps its old schedule.
func (n *Network) SetUploadBps(id wire.NodeID, bps int64) {
	n.assertGlobal("SetUploadBps")
	if bps < 0 {
		panic("simnet: negative upload capacity")
	}
	n.node(id).cfg.UploadBps = bps
}

// QueueBacklog returns the current uplink backlog (time until the node's
// uplink drains) — the congestion signal the paper discusses in §3.6. Safe
// from the global context and from the node's own handler context (the
// adaptation layer samples its own backlog).
func (n *Network) QueueBacklog(id wire.NodeID) time.Duration {
	node := n.node(id)
	now := n.shards[node.shard].now
	if node.uplinkFreeAt <= now {
		return 0
	}
	return node.uplinkFreeAt - now
}

// QueueBacklogBytes returns the bytes currently waiting in the node's uplink
// queue (backlog time times the current capacity). Together with
// NodeStats.SentBytes — which counts at enqueue — this gives the bytes that
// actually left the node: SentBytes − QueueBacklogBytes, the achieved-
// throughput signal the adaptation layer samples. 0 for unconstrained
// uplinks, whose queue never forms.
//
// Caveat: datagrams already scheduled keep their old transmit times across
// SetUploadBps, so a rate rewrite revalues the standing backlog at the new
// rate and the gauge jumps discontinuously for the one observation window
// spanning the step. The adaptation controller bounds that window's
// influence on its own side (the per-decision Beta² guard in
// internal/adapt), which is cheaper than per-datagram byte accounting here.
func (n *Network) QueueBacklogBytes(id wire.NodeID) int64 {
	node := n.node(id)
	now := n.shards[node.shard].now
	if node.uplinkFreeAt <= now || node.cfg.UploadBps <= 0 {
		return 0
	}
	backlog := node.uplinkFreeAt - now
	return int64(backlog) * node.cfg.UploadBps / (8 * int64(time.Second))
}

func (n *Network) node(id wire.NodeID) *simNode {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: unknown node %d", id))
	}
	return &n.nodes[id]
}

// assertGlobal guards the global-context-only control operations against
// being called from handler code inside a run window, where they would race
// with other shards and break shard-count invariance.
func (n *Network) assertGlobal(op string) {
	if n.inWindow {
		panic("simnet: " + op + " called from node context during a run window; use a Schedule callback")
	}
}

// nodeRuntime adapts a simNode to env.Runtime. It holds the node id, not a
// row pointer: the dense node table may be reallocated by mid-run joins.
type nodeRuntime struct {
	net *Network
	id  wire.NodeID
}

var _ env.Runtime = (*nodeRuntime)(nil)

func (rt *nodeRuntime) ID() wire.NodeID { return rt.id }

// Now returns the node's shard-local virtual time: exact during windows,
// equal to the global clock at barriers.
func (rt *nodeRuntime) Now() time.Duration {
	return rt.net.shards[rt.net.nodes[rt.id].shard].now
}

func (rt *nodeRuntime) Rand() *rand.Rand { return rt.net.nodes[rt.id].rng }

func (rt *nodeRuntime) Send(to wire.NodeID, m wire.Message) {
	nd := &rt.net.nodes[rt.id]
	if !nd.alive {
		return
	}
	rt.net.send(nd, to, m)
}

func (rt *nodeRuntime) After(d time.Duration, fn func()) env.Timer {
	ev := rt.net.newTimer(rt.id, d, fn)
	return simTimer{ev: ev, gen: ev.gen}
}

// AfterFunc implements env.Runtime. With no handle to mint, the timer is
// just a pooled event: the call allocates nothing in steady state.
func (rt *nodeRuntime) AfterFunc(d time.Duration, fn func()) {
	rt.net.newTimer(rt.id, d, fn)
}

// newTimer schedules a timer event on the owning node's shard.
func (n *Network) newTimer(id wire.NodeID, d time.Duration, fn func()) *event {
	if d < 0 {
		d = 0
	}
	nd := &n.nodes[id]
	sh := n.shards[nd.shard]
	ev := sh.alloc()
	ev.at = sh.now + d
	ev.kind = evTimer
	ev.src = id
	ev.srcSeq = nd.seq
	nd.seq++
	ev.fn = fn
	sh.push(ev)
	return ev
}

// simTimer is a generation-checked handle to a pooled timer event. Stop
// removes the event from the schedule outright (no tombstones) and recycles
// its slot; a handle whose generation no longer matches — the timer fired,
// was stopped, and the slot was reused — is inert. Timer events live on
// their owning node's shard, so Stop from that node's context touches only
// shard-local state.
type simTimer struct {
	ev  *event
	gen uint32
}

func (t simTimer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.heapIdx < 0 {
		return false
	}
	ev.sh.remove(ev)
	ev.sh.recycle(ev)
	return true
}

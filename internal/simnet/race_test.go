package simnet

import (
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/wire"
)

// TestCrossShardExchangeRace is the race detector's view of the sharded run
// loop: a TTL-forwarding storm across a 4-shard network, so every window has
// several shards live at once, every shard's outbox carries traffic to every
// other shard, and handlers draw from their rngs and re-arm timers
// concurrently. The test asserts behavior too — storm fan-out must
// terminate with exactly the event count the TTL geometry implies — but its
// real job is running under -race (make race / make check), where any
// cross-shard access outside the documented barrier discipline is a failure
// even if the numbers come out right.
func TestCrossShardExchangeRace(t *testing.T) {
	const (
		nodes = 32
		ttl   = 4
		fan   = 3
	)
	net := New(Config{
		Seed:    11,
		Latency: NewPairwiseLatency(11, 5*time.Millisecond, 20*time.Millisecond, time.Millisecond),
		Shards:  4,
	})
	if got := net.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	received := make([]int, nodes)
	forward := func(rt env.Runtime, hops wire.PacketID) {
		for i := 0; i < fan; i++ {
			to := wire.NodeID(rt.Rand().Intn(nodes))
			// A short per-hop timer keeps the timer pool churning alongside
			// the delivery path.
			m := &wire.Propose{IDs: []wire.PacketID{hops}}
			rt.After(time.Duration(rt.Rand().Intn(3))*time.Millisecond, func() {
				rt.Send(to, m)
			})
		}
	}
	for i := 0; i < nodes; i++ {
		id := wire.NodeID(i)
		net.AddNode(&recorder{
			onStart: func(rt env.Runtime) {
				if id == 0 {
					forward(rt, ttl)
				}
			},
			onRecv: func(_ wire.NodeID, m wire.Message) {
				received[id]++
				if hops := m.(*wire.Propose).IDs[0]; hops > 1 {
					forward(net.nodes[id].handler.(*recorder).rt, hops-1)
				}
			},
		}, NodeConfig{UploadBps: 10_000_000})
	}
	net.RunUntilIdle()

	// Each of the ttl generations multiplies the message population by fan:
	// 3 + 9 + 27 + 81 sends; none may be lost (no loss model, no crashes).
	want := 0
	for g, gen := 1, fan; g <= ttl; g, gen = g+1, gen*fan {
		want += gen
	}
	total := 0
	for _, c := range received {
		total += c
	}
	if total != want {
		t.Fatalf("storm delivered %d messages, want %d", total, want)
	}
	st := net.Stats()
	if st.MsgsDelivered != int64(want) || st.MsgsLost != 0 || st.MsgsDeadDrop != 0 {
		t.Fatalf("stats %+v inconsistent with a lossless storm of %d", st, want)
	}
}

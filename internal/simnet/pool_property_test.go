package simnet

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/wire"
)

// Property tests for the pooled-event indexed heaps: random operation
// sequences cross-checked against naive oracles. These guard the hand-rolled
// sift/remove code and the free-list recycling that the whole simulator's
// determinism rests on — including the canonical (at, src, srcSeq) order
// that makes results shard-count invariant.

// evKey mirrors an event's canonical ordering key.
type evKey struct {
	at     time.Duration
	src    wire.NodeID
	srcSeq uint64
}

func keyLess(a, b evKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.srcSeq < b.srcSeq
}

// TestHeapMatchesSortOracle drives push/pop/remove directly against a shard
// heap and checks every pop yields exactly the canonical minimum of a
// mirrored slice oracle — i.e. the heap never yields events out of order.
func TestHeapMatchesSortOracle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := New(Config{Seed: seed})
		sh := n.shards[0]
		var seq uint64
		var oracle []evKey
		oracleMin := func() evKey {
			best := 0
			for i := 1; i < len(oracle); i++ {
				if keyLess(oracle[i], oracle[best]) {
					best = i
				}
			}
			return oracle[best]
		}
		oracleDrop := func(k evKey) {
			for i := range oracle {
				if oracle[i] == k {
					oracle[i] = oracle[len(oracle)-1]
					oracle = oracle[:len(oracle)-1]
					return
				}
			}
			t.Fatalf("seed %d: oracle missing %+v", seed, k)
		}
		for op := 0; op < 3000; op++ {
			switch r := rng.Intn(10); {
			case r < 6 || len(sh.events) == 0:
				ev := sh.alloc()
				ev.at = time.Duration(rng.Intn(50)) * time.Millisecond
				ev.src = wire.NodeID(rng.Intn(5))
				ev.srcSeq = seq
				seq++
				ev.kind = evTimer
				sh.push(ev)
				oracle = append(oracle, evKey{ev.at, ev.src, ev.srcSeq})
			case r < 8:
				ev := sh.pop()
				want := oracleMin()
				got := evKey{ev.at, ev.src, ev.srcSeq}
				if got != want {
					t.Fatalf("seed %d op %d: pop %+v, oracle min %+v", seed, op, got, want)
				}
				oracleDrop(want)
				sh.recycle(ev)
			default:
				// Remove an arbitrary queued event (timer cancellation path).
				victim := sh.events[rng.Intn(len(sh.events))].ev
				k := evKey{victim.at, victim.src, victim.srcSeq}
				sh.remove(victim)
				oracleDrop(k)
				sh.recycle(victim)
			}
			// Structural invariant: every queued event knows its index.
			for i, ent := range sh.events {
				if int(ent.ev.heapIdx) != i {
					t.Fatalf("seed %d op %d: events[%d].heapIdx = %d", seed, op, i, ent.ev.heapIdx)
				}
			}
		}
		// Drain: the remaining events must come out in exact sorted order.
		sort.Slice(oracle, func(i, j int) bool { return keyLess(oracle[i], oracle[j]) })
		for _, want := range oracle {
			ev := sh.pop()
			got := evKey{ev.at, ev.src, ev.srcSeq}
			if got != want {
				t.Fatalf("seed %d drain: got %+v, want %+v", seed, got, want)
			}
			sh.recycle(ev)
		}
	}
}

// TestHeapCancelRescheduleStorm hammers every shard heap of a multi-shard
// network with a randomized cancel/reschedule storm — push, pop, remove, and
// remove-retime-repush (the freeze-deferral move) — against a map oracle
// keyed by slot identity. It checks the two properties dispatch relies on:
// the queued population is exactly the oracle's at every step, and draining
// pops in exact canonical order.
func TestHeapCancelRescheduleStorm(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := New(Config{Seed: seed, Latency: ConstantLatency(time.Millisecond), Shards: 4})
		if len(n.shards) != 4 {
			t.Fatalf("want 4 shards, got %d", len(n.shards))
		}
		for si, sh := range n.shards {
			rng := rand.New(rand.NewSource(seed<<3 | int64(si)))
			var seq uint64
			oracle := map[*event]evKey{}
			for op := 0; op < 4000; op++ {
				switch r := rng.Intn(12); {
				case r < 5 || len(sh.events) == 0:
					ev := sh.alloc()
					ev.at = time.Duration(rng.Intn(64)) * time.Millisecond
					ev.src = wire.NodeID(rng.Intn(7))
					ev.srcSeq = seq
					seq++
					ev.kind = evTimer
					sh.push(ev)
					oracle[ev] = evKey{ev.at, ev.src, ev.srcSeq}
				case r < 8:
					ev := sh.pop()
					want, ok := oracle[ev]
					if !ok {
						t.Fatalf("seed %d shard %d op %d: popped unknown event", seed, si, op)
					}
					got := evKey{ev.at, ev.src, ev.srcSeq}
					if got != want {
						t.Fatalf("seed %d shard %d op %d: pop key %+v, oracle %+v", seed, si, op, got, want)
					}
					// Must be the canonical minimum over the whole oracle.
					for _, k := range oracle {
						if keyLess(k, want) {
							t.Fatalf("seed %d shard %d op %d: popped %+v before %+v", seed, si, op, want, k)
						}
					}
					delete(oracle, ev)
					sh.recycle(ev)
				case r < 10:
					// Cancel: remove an arbitrary queued event.
					victim := sh.events[rng.Intn(len(sh.events))].ev
					sh.remove(victim)
					delete(oracle, victim)
					sh.recycle(victim)
				default:
					// Reschedule: the freeze-deferral move — remove, retime
					// (keeping the canonical identity), repush.
					victim := sh.events[rng.Intn(len(sh.events))].ev
					sh.remove(victim)
					victim.at += time.Duration(rng.Intn(32)) * time.Millisecond
					sh.push(victim)
					oracle[victim] = evKey{victim.at, victim.src, victim.srcSeq}
				}
				if len(sh.events) != len(oracle) {
					t.Fatalf("seed %d shard %d op %d: heap holds %d events, oracle %d",
						seed, si, op, len(sh.events), len(oracle))
				}
				for i, ent := range sh.events {
					if int(ent.ev.heapIdx) != i {
						t.Fatalf("seed %d shard %d op %d: events[%d].heapIdx = %d", seed, si, op, i, ent.ev.heapIdx)
					}
				}
			}
			// Drain in canonical order.
			keys := make([]evKey, 0, len(oracle))
			for _, k := range oracle {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
			for _, want := range keys {
				ev := sh.pop()
				got := evKey{ev.at, ev.src, ev.srcSeq}
				if got != want {
					t.Fatalf("seed %d shard %d drain: got %+v, want %+v", seed, si, got, want)
				}
				sh.recycle(ev)
			}
		}
	}
}

// TestTimerPoolMatchesOracle schedules many timers with random delays and
// random Stop calls, then checks — against a plain map oracle — that every
// timer fired exactly once at its scheduled instant unless it was stopped
// first, across enough churn that event slots are recycled many times over.
func TestTimerPoolMatchesOracle(t *testing.T) {
	type timerState struct {
		due     time.Duration
		stopped bool
		fired   int
		firedAt time.Duration
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x7e57))
		n := New(Config{Seed: seed})
		n.AddNode(env.HandlerFunc(func(wire.NodeID, wire.Message) {}), NodeConfig{})
		// Drive through a runtime handle from the global context: legal
		// because every schedule mutation lands while the shards are parked.
		rt := &nodeRuntime{net: n, id: 0}

		states := make([]*timerState, 0, 400)
		handles := make([]env.Timer, 0, 400)
		now := time.Duration(0)
		for round := 0; round < 40; round++ {
			// Schedule a batch of timers from the current virtual time.
			for j := 0; j < 10; j++ {
				st := &timerState{due: now + time.Duration(rng.Intn(30))*time.Millisecond}
				states = append(states, st)
				idx := len(states) - 1
				handles = append(handles, rt.After(st.due-now, func() {
					states[idx].fired++
					states[idx].firedAt = n.Now()
				}))
			}
			// Randomly stop some timers (past or future).
			for j := 0; j < 4; j++ {
				pick := rng.Intn(len(states))
				if handles[pick].Stop() {
					if states[pick].fired > 0 {
						t.Fatalf("seed %d: Stop claimed success on a fired timer", seed)
					}
					states[pick].stopped = true
				}
			}
			now += time.Duration(rng.Intn(20)) * time.Millisecond
			n.Run(now)
		}
		n.RunUntilIdle()
		for i, st := range states {
			switch {
			case st.stopped && st.fired != 0:
				t.Fatalf("seed %d timer %d: stopped but fired %d times", seed, i, st.fired)
			case !st.stopped && st.fired != 1:
				t.Fatalf("seed %d timer %d: fired %d times, want 1", seed, i, st.fired)
			case !st.stopped && st.firedAt != st.due:
				t.Fatalf("seed %d timer %d: fired at %v, due %v", seed, i, st.firedAt, st.due)
			}
		}
	}
}

// TestStaleTimerHandleIsInert checks the generation guard: once a timer has
// fired and its slot has been recycled into a new timer, the old handle's
// Stop must be a no-op that does not disturb the slot's new occupant.
func TestStaleTimerHandleIsInert(t *testing.T) {
	n := New(Config{})
	n.AddNode(env.HandlerFunc(func(wire.NodeID, wire.Message) {}), NodeConfig{})
	rt := &nodeRuntime{net: n, id: 0}

	var firstFired, secondFired bool
	first := rt.After(time.Millisecond, func() { firstFired = true })
	n.Run(10 * time.Millisecond)
	if !firstFired {
		t.Fatal("first timer did not fire")
	}
	// The fired event slot is back on the free list; the next timer reuses it.
	second := rt.After(time.Millisecond, func() { secondFired = true })
	if first.(simTimer).ev != second.(simTimer).ev {
		t.Skip("allocator did not reuse the slot; generation guard not exercised")
	}
	if first.Stop() {
		t.Fatal("stale handle claimed to stop a timer")
	}
	n.RunUntilIdle()
	if !secondFired {
		t.Fatal("stale handle's Stop canceled the slot's new occupant")
	}
}

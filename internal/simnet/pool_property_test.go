package simnet

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/wire"
)

// Property tests for the pooled-event indexed heap: random operation
// sequences cross-checked against naive oracles. These guard the hand-rolled
// sift/remove code and the free-list recycling that the whole simulator's
// determinism rests on.

// TestHeapMatchesSortOracle drives push/pop/remove directly against the
// heap and checks every pop yields exactly the (at, seq)-minimum of a
// mirrored slice oracle — i.e. the heap never yields events out of order.
func TestHeapMatchesSortOracle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := New(Config{Seed: seed})
		type key struct {
			at  time.Duration
			seq uint64
		}
		var oracle []key
		oracleMin := func() key {
			best := 0
			for i := 1; i < len(oracle); i++ {
				if oracle[i].at < oracle[best].at ||
					(oracle[i].at == oracle[best].at && oracle[i].seq < oracle[best].seq) {
					best = i
				}
			}
			return oracle[best]
		}
		oracleDrop := func(k key) {
			for i := range oracle {
				if oracle[i] == k {
					oracle[i] = oracle[len(oracle)-1]
					oracle = oracle[:len(oracle)-1]
					return
				}
			}
			t.Fatalf("seed %d: oracle missing %+v", seed, k)
		}
		for op := 0; op < 3000; op++ {
			switch r := rng.Intn(10); {
			case r < 6 || len(n.events) == 0:
				ev := n.alloc()
				ev.at = time.Duration(rng.Intn(50)) * time.Millisecond
				ev.kind = evFunc
				n.push(ev)
				oracle = append(oracle, key{ev.at, ev.seq})
			case r < 8:
				ev := n.pop()
				want := oracleMin()
				if ev.at != want.at || ev.seq != want.seq {
					t.Fatalf("seed %d op %d: pop (%v, %d), oracle min (%v, %d)",
						seed, op, ev.at, ev.seq, want.at, want.seq)
				}
				oracleDrop(want)
				n.recycle(ev)
			default:
				// Remove an arbitrary queued event (timer cancellation path).
				victim := n.events[rng.Intn(len(n.events))]
				k := key{victim.at, victim.seq}
				n.remove(victim)
				oracleDrop(k)
				n.recycle(victim)
			}
			// Structural invariant: every queued event knows its index.
			for i, ev := range n.events {
				if int(ev.heapIdx) != i {
					t.Fatalf("seed %d op %d: events[%d].heapIdx = %d", seed, op, i, ev.heapIdx)
				}
			}
		}
		// Drain: the remaining events must come out in exact sorted order.
		sort.Slice(oracle, func(i, j int) bool {
			if oracle[i].at != oracle[j].at {
				return oracle[i].at < oracle[j].at
			}
			return oracle[i].seq < oracle[j].seq
		})
		for _, want := range oracle {
			ev := n.pop()
			if ev.at != want.at || ev.seq != want.seq {
				t.Fatalf("seed %d drain: got (%v, %d), want (%v, %d)", seed, ev.at, ev.seq, want.at, want.seq)
			}
			n.recycle(ev)
		}
	}
}

// TestTimerPoolMatchesOracle schedules many timers with random delays and
// random Stop calls, then checks — against a plain map oracle — that every
// timer fired exactly once at its scheduled instant unless it was stopped
// first, across enough churn that event slots are recycled many times over.
func TestTimerPoolMatchesOracle(t *testing.T) {
	type timerState struct {
		due     time.Duration
		stopped bool
		fired   int
		firedAt time.Duration
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x7e57))
		n := New(Config{Seed: seed})
		var rt env.Runtime
		n.AddNode(env.HandlerFunc(func(wire.NodeID, wire.Message) {}), NodeConfig{})
		// Capture the runtime through a start hook: drive via Schedule so we
		// stay inside the event loop's execution context.
		rt = &nodeRuntime{net: n, node: n.node(0)}

		states := make([]*timerState, 0, 400)
		handles := make([]env.Timer, 0, 400)
		now := time.Duration(0)
		for round := 0; round < 40; round++ {
			// Schedule a batch of timers from the current virtual time.
			for j := 0; j < 10; j++ {
				st := &timerState{due: now + time.Duration(rng.Intn(30))*time.Millisecond}
				states = append(states, st)
				idx := len(states) - 1
				handles = append(handles, rt.After(st.due-now, func() {
					states[idx].fired++
					states[idx].firedAt = n.Now()
				}))
			}
			// Randomly stop some timers (past or future).
			for j := 0; j < 4; j++ {
				pick := rng.Intn(len(states))
				if handles[pick].Stop() {
					if states[pick].fired > 0 {
						t.Fatalf("seed %d: Stop claimed success on a fired timer", seed)
					}
					states[pick].stopped = true
				}
			}
			now += time.Duration(rng.Intn(20)) * time.Millisecond
			n.Run(now)
		}
		n.RunUntilIdle()
		for i, st := range states {
			switch {
			case st.stopped && st.fired != 0:
				t.Fatalf("seed %d timer %d: stopped but fired %d times", seed, i, st.fired)
			case !st.stopped && st.fired != 1:
				t.Fatalf("seed %d timer %d: fired %d times, want 1", seed, i, st.fired)
			case !st.stopped && st.firedAt != st.due:
				t.Fatalf("seed %d timer %d: fired at %v, due %v", seed, i, st.firedAt, st.due)
			}
		}
	}
}

// TestStaleTimerHandleIsInert checks the generation guard: once a timer has
// fired and its slot has been recycled into a new timer, the old handle's
// Stop must be a no-op that does not disturb the slot's new occupant.
func TestStaleTimerHandleIsInert(t *testing.T) {
	n := New(Config{})
	n.AddNode(env.HandlerFunc(func(wire.NodeID, wire.Message) {}), NodeConfig{})
	rt := &nodeRuntime{net: n, node: n.node(0)}

	var firstFired, secondFired bool
	first := rt.After(time.Millisecond, func() { firstFired = true })
	n.Run(10 * time.Millisecond)
	if !firstFired {
		t.Fatal("first timer did not fire")
	}
	// The fired event slot is back on the free list; the next timer reuses it.
	second := rt.After(time.Millisecond, func() { secondFired = true })
	if first.(simTimer).ev != second.(simTimer).ev {
		t.Skip("allocator did not reuse the slot; generation guard not exercised")
	}
	if first.Stop() {
		t.Fatal("stale handle claimed to stop a timer")
	}
	n.RunUntilIdle()
	if !secondFired {
		t.Fatal("stale handle's Stop canceled the slot's new occupant")
	}
}

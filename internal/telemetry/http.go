package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServerConfig describes an introspection HTTP listener.
type ServerConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:9100" or ":0".
	Addr string
	// Registry backs /metrics and the metrics section of /statusz.
	Registry *Registry
	// Healthy, if non-nil, gates /healthz (503 when false).
	Healthy func() bool
	// Status, if non-nil, contributes extra top-level fields to /statusz.
	Status func() map[string]any
}

// Server is a running introspection listener serving Prometheus-text
// /metrics, Go's /debug/pprof endpoints, /healthz, and a /statusz JSON
// snapshot — the scrape surface a fleet coordinator consumes.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer binds the address and serves in a background goroutine.
func StartServer(cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Healthy != nil && !cfg.Healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		obj := make(map[string]any)
		if cfg.Status != nil {
			for k, v := range cfg.Status() {
				obj[k] = v
			}
		}
		metrics := make(map[string]float64)
		for _, s := range cfg.Registry.Snapshot() {
			metrics[s.Name] = s.Value
		}
		obj["metrics"] = metrics
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(obj)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

package telemetry

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/wire"
)

// TraceConfig parameterizes a dissemination tracer.
type TraceConfig struct {
	// SampleEvery samples packet ids where id % SampleEvery == 0 — a
	// deterministic, rng-free rule, so every node of a run traces the same
	// id population and offline hop joins see complete paths. Default 1
	// (trace everything); <= 0 is normalized to 1.
	SampleEvery int
	// RingCap bounds how many hop records the tracer retains; once full the
	// ring overwrites its oldest records (Truncated counts the loss).
	// Default 4096.
	RingCap int
}

func (c *TraceConfig) normalize() {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	if c.RingCap <= 0 {
		c.RingCap = 4096
	}
}

// HopRecord is one traced dissemination step observed at one node: a source
// publish (hop zero of a path) or a delivery via the propose→request→serve
// path. Times are durations since the run epoch (the simulator's virtual
// clock, so records are fingerprint-deterministic).
type HopRecord struct {
	// Node observed the step.
	Node wire.NodeID
	// From is the serving peer (the node itself for a publish).
	From wire.NodeID
	// Stream and ID identify the packet.
	Stream wire.StreamID
	ID     wire.PacketID
	// At is when the packet was delivered locally.
	At time.Duration
	// ReqAt is when this node first requested the packet (equal to At for a
	// publish; -1 when the request predates the tracer's bounded state).
	ReqAt time.Duration
	// Publish marks a source-publish record.
	Publish bool
}

// Tracer records sampled dissemination steps for one node. It implements
// the engine's trace hook (core.TraceSink); like every engine callback it
// runs on the node's execution context and needs no locking. All state is
// bounded: a ring of records plus a pending-request map capped relative to
// the ring.
type Tracer struct {
	cfg   TraceConfig
	self  wire.NodeID
	reqAt map[reqKey]time.Duration

	ring      []HopRecord
	next      int // ring write index once len(ring) == cap
	truncated int // records overwritten by ring wrap
}

type reqKey struct {
	stream wire.StreamID
	id     wire.PacketID
}

// NewTracer builds a tracer for the given node id.
func NewTracer(self wire.NodeID, cfg TraceConfig) *Tracer {
	cfg.normalize()
	return &Tracer{
		cfg:   cfg,
		self:  self,
		reqAt: make(map[reqKey]time.Duration),
		ring:  make([]HopRecord, 0, cfg.RingCap),
	}
}

func (t *Tracer) sampled(id wire.PacketID) bool {
	return t.cfg.SampleEvery == 1 || id%wire.PacketID(t.cfg.SampleEvery) == 0
}

// TracePublish records a source publish (hop zero).
func (t *Tracer) TracePublish(stream wire.StreamID, id wire.PacketID, at time.Duration) {
	if !t.sampled(id) {
		return
	}
	t.push(HopRecord{Node: t.self, From: t.self, Stream: stream, ID: id,
		At: at, ReqAt: at, Publish: true})
}

// TraceRequest records the first request this node sent for a packet.
func (t *Tracer) TraceRequest(stream wire.StreamID, id wire.PacketID, _ wire.NodeID, at time.Duration) {
	if !t.sampled(id) {
		return
	}
	if len(t.reqAt) >= 4*t.cfg.RingCap {
		return // bounded state: the record's ReqAt degrades to -1
	}
	k := reqKey{stream, id}
	if _, ok := t.reqAt[k]; !ok {
		t.reqAt[k] = at
	}
}

// TraceDeliver records a delivery served by a peer.
func (t *Tracer) TraceDeliver(stream wire.StreamID, id wire.PacketID, from wire.NodeID, at time.Duration) {
	if !t.sampled(id) {
		return
	}
	k := reqKey{stream, id}
	reqAt, ok := t.reqAt[k]
	if ok {
		delete(t.reqAt, k)
	} else {
		reqAt = -1
	}
	t.push(HopRecord{Node: t.self, From: from, Stream: stream, ID: id,
		At: at, ReqAt: reqAt})
}

func (t *Tracer) push(rec HopRecord) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
		return
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	t.truncated++
}

// Records returns the retained hop records, oldest first.
func (t *Tracer) Records() []HopRecord {
	out := make([]HopRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Truncated returns how many records the full ring overwrote.
func (t *Tracer) Truncated() int { return t.truncated }

// WriteJSONL exports the retained records as JSON lines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, t.Records())
}

type hopJSON struct {
	Node    int64 `json:"node"`
	From    int64 `json:"from"`
	Stream  int64 `json:"stream"`
	ID      int64 `json:"id"`
	AtNs    int64 `json:"at_ns"`
	ReqNs   int64 `json:"req_ns"`
	Publish bool  `json:"publish,omitempty"`
}

// WriteJSONL writes hop records as one JSON object per line. The encoding
// is byte-deterministic for identical record slices: field order is fixed
// and every value is integral.
func WriteJSONL(w io.Writer, recs []HopRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(hopJSON{
			Node:    int64(r.Node),
			From:    int64(r.From),
			Stream:  int64(r.Stream),
			ID:      int64(r.ID),
			AtNs:    int64(r.At),
			ReqNs:   int64(r.ReqAt),
			Publish: r.Publish,
		}); err != nil {
			return err
		}
	}
	return nil
}

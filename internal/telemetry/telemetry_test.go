package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("requests_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("queue_depth")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	h := r.Histogram("lag_seconds", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.5, 10} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if h.Sum() != 13.5 {
		t.Fatalf("hist sum = %v", h.Sum())
	}

	r.RegisterCollector(func(emit EmitFunc) { emit("external_total", 7) })
	snap := r.Snapshot()
	want := map[string]float64{
		"requests_total":    5,
		"queue_depth":       3.5,
		"lag_seconds_count": 4,
		"lag_seconds_sum":   13.5,
		"external_total":    7,
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d samples: %v", len(snap), snap)
	}
	for i, s := range snap {
		if i > 0 && snap[i-1].Name >= s.Name {
			t.Fatalf("snapshot not sorted: %q >= %q", snap[i-1].Name, s.Name)
		}
		if v, ok := want[s.Name]; !ok || v != s.Value {
			t.Fatalf("sample %q = %v, want %v", s.Name, s.Value, want[s.Name])
		}
	}
	if v, ok := r.Get("external_total"); !ok || v != 7 {
		t.Fatalf("Get(external_total) = %v, %v", v, ok)
	}
	if _, ok := r.Get("absent"); ok {
		t.Fatal("Get found an absent metric")
	}
}

func TestRegistryKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge registration over a counter name did not panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("v", []float64{10, 100})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per || h.Sum() != workers*per {
		t.Fatalf("hist count %d sum %v", h.Count(), h.Sum())
	}
}

// parsePrometheus parses the subset of the text format the registry emits:
// "name value" lines, with histogram buckets keyed as name_bucket{le="x"}.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[fields[0]] = v
	}
	return out
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(1.25)
	h := r.Histogram("lag", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)
	r.RegisterCollector(func(emit EmitFunc) { emit("c_total", 9) })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter", "# TYPE b gauge", "# TYPE lag histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	vals := parsePrometheus(t, text)
	checks := map[string]float64{
		"a_total":               3,
		"b":                     1.25,
		"c_total":               9,
		`lag_bucket{le="1"}`:    1,
		`lag_bucket{le="5"}`:    2,
		`lag_bucket{le="+Inf"}`: 3,
		"lag_sum":               103.5,
		"lag_count":             3,
	}
	for name, want := range checks {
		if got, ok := vals[name]; !ok || got != want {
			t.Fatalf("%s = %v (present %v), want %v\n%s", name, got, ok, want, text)
		}
	}
}

func TestTracerSamplingAndRing(t *testing.T) {
	tr := NewTracer(3, TraceConfig{SampleEvery: 2, RingCap: 4})
	// id 1 is not sampled (1 % 2 != 0); id 2 is.
	tr.TraceDeliver(0, 1, 9, time.Second)
	if len(tr.Records()) != 0 {
		t.Fatal("unsampled id recorded")
	}
	tr.TraceRequest(0, 2, 9, 500*time.Millisecond)
	tr.TraceDeliver(0, 2, 9, time.Second)
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Node != 3 || r.From != 9 || r.ID != 2 || r.At != time.Second ||
		r.ReqAt != 500*time.Millisecond || r.Publish {
		t.Fatalf("record = %+v", r)
	}
	// A delivery with no recorded request degrades ReqAt to -1.
	tr.TraceDeliver(0, 4, 9, 2*time.Second)
	recs = tr.Records()
	if recs[1].ReqAt != -1 {
		t.Fatalf("untracked request ReqAt = %v", recs[1].ReqAt)
	}
	// Ring wrap: capacity 4, oldest overwritten, truncation counted.
	for id := wire.PacketID(6); id <= 14; id += 2 {
		tr.TraceDeliver(0, id, 9, time.Duration(id)*time.Second)
	}
	if tr.Truncated() != 3 {
		t.Fatalf("truncated = %d, want 3", tr.Truncated())
	}
	recs = tr.Records()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].At > recs[i].At {
			t.Fatalf("records not oldest-first: %v then %v", recs[i-1].At, recs[i].At)
		}
	}
	if recs[3].ID != 14 {
		t.Fatalf("newest record id = %d", recs[3].ID)
	}
}

func TestTracerPublish(t *testing.T) {
	tr := NewTracer(0, TraceConfig{})
	tr.TracePublish(2, 8, 3*time.Second)
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if !r.Publish || r.From != 0 || r.Node != 0 || r.Stream != 2 || r.ReqAt != r.At {
		t.Fatalf("publish record = %+v", r)
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	mk := func() *Tracer {
		tr := NewTracer(1, TraceConfig{})
		tr.TracePublish(0, 0, 0)
		tr.TraceRequest(0, 1, 2, time.Second)
		tr.TraceDeliver(0, 1, 2, 2*time.Second)
		return tr
	}
	var a, b bytes.Buffer
	if err := mk().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSONL not byte-identical:\n%s\nvs\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["node"] != float64(1) || obj["from"] != float64(2) || obj["at_ns"] != float64(2e9) {
		t.Fatalf("decoded record = %v", obj)
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(2)
	healthy := true
	srv, err := StartServer(ServerConfig{
		Addr:     "127.0.0.1:0",
		Registry: r,
		Healthy:  func() bool { return healthy },
		Status:   func() map[string]any { return map[string]any{"node": 7} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "hits_total 2") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, _ := get("/healthz"); code != 503 {
		t.Fatalf("unhealthy /healthz = %d, want 503", code)
	}
	code, body := get("/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	var status struct {
		Node    int                `json:"node"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("statusz JSON: %v\n%s", err, body)
	}
	if status.Node != 7 || status.Metrics["hits_total"] != 2 {
		t.Fatalf("statusz = %+v", status)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || len(body) == 0 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

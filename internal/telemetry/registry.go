// Package telemetry is the observability layer: one registry of named
// metrics that every subsystem reports into, dissemination-path tracing
// through the engine's zero-cost hook pattern, and the HTTP introspection
// surface heapnode exposes (Prometheus /metrics, /debug/pprof, /statusz).
//
// Two reporting styles coexist in the registry:
//
//   - Direct instruments — Counter, Gauge, Histogram — are lock-free
//     atomics for hot paths that want to record as they go (heapnode's
//     delivery counters and lag histogram).
//   - Collectors pull from subsystems that already keep their own atomic
//     or serialized state (the paced sender's accounting, the engine's
//     Stats, the adaptation controller, the misbehavior detector): a
//     registered func emits name/value samples at snapshot time, so the
//     subsystems stay telemetry-agnostic and nothing new runs on their
//     hot paths.
//
// A snapshot is conservation-checkable: the paced sender's books are
// emitted together, so after the node closes the scraped values satisfy
// udp_accepted_bytes_total == udp_sent_bytes_total + udp_discarded_bytes_total
// exactly (and udp_queued_bytes is zero).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket lock-free histogram with Prometheus
// cumulative-bucket ("le") semantics: bucket i counts observations
// <= bounds[i], plus an implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many samples were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// EmitFunc receives one named sample during collection.
type EmitFunc func(name string, value float64)

// Sample is one named value of a registry snapshot.
type Sample struct {
	Name  string
	Value float64
}

// Registry holds named metrics and collector callbacks. Instrument updates
// are lock-free; registration and snapshotting take the registry mutex.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func(EmitFunc)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Names should
// be valid Prometheus identifiers ([a-z0-9_], conventionally ending in
// _total). Registering a name twice returns the same instrument; reusing a
// name across metric kinds panics.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (ascending) on first use. Later calls ignore bounds and
// return the existing instrument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFree(name)
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

func (r *Registry) checkFree(name string) {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.hists[name]
	if c || g || h {
		panic(fmt.Sprintf("telemetry: metric %q already registered with a different kind", name))
	}
}

// RegisterCollector adds a callback that emits samples at snapshot time.
// Collectors run in registration order under the registry mutex; they must
// not call back into the registry.
func (r *Registry) RegisterCollector(fn func(EmitFunc)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Snapshot returns every metric as a flat name/value list, sorted by name.
// Histograms contribute name_count and name_sum (buckets appear only in the
// Prometheus exposition). Collector samples are included.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+2*len(r.hists)+16)
	for name, c := range r.counters {
		out = append(out, Sample{name, float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{name, g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, Sample{name + "_count", float64(h.Count())})
		out = append(out, Sample{name + "_sum", h.Sum()})
	}
	for _, fn := range r.collectors {
		fn(func(name string, v float64) { out = append(out, Sample{name, v}) })
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the named sample from a fresh snapshot (false if absent).
func (r *Registry) Get(name string) (float64, bool) {
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): typed counters, gauges and histograms first, then
// collector samples as untyped metrics, all name-sorted.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if c, ok := r.counters[name]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value()); err != nil {
				return err
			}
			continue
		}
		if g, ok := r.gauges[name]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, fmtFloat(g.Value())); err != nil {
				return err
			}
			continue
		}
		h := r.hists[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, cum, name, fmtFloat(h.Sum()), name, h.Count()); err != nil {
			return err
		}
	}
	var samples []Sample
	emit := func(name string, v float64) { samples = append(samples, Sample{name, v}) }
	for _, fn := range r.collectors {
		fn(emit)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, fmtFloat(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

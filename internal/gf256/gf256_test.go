package gf256

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldTables(t *testing.T) {
	f := NewField()
	// exp must cycle with period 255 and never produce zero.
	seen := make(map[byte]bool, Order-1)
	for i := 0; i < Order-1; i++ {
		v := f.exp[i]
		if v == 0 {
			t.Fatalf("exp[%d] = 0; generator powers must be nonzero", i)
		}
		if seen[v] {
			t.Fatalf("exp[%d] = %d repeats before full period", i, v)
		}
		seen[v] = true
	}
	if len(seen) != Order-1 {
		t.Fatalf("generator does not generate the full multiplicative group: %d elements", len(seen))
	}
	// log must be the inverse of exp.
	for i := 0; i < Order-1; i++ {
		if got := f.log[f.exp[i]]; int(got) != i {
			t.Fatalf("log[exp[%d]] = %d, want %d", i, got, i)
		}
	}
}

func TestAddIsXORAndSelfInverse(t *testing.T) {
	f := NewField()
	cases := []struct{ a, b byte }{{0, 0}, {1, 1}, {0x53, 0xca}, {255, 255}, {1, 254}}
	for _, c := range cases {
		if got := f.Add(c.a, c.b); got != c.a^c.b {
			t.Errorf("Add(%d,%d) = %d, want %d", c.a, c.b, got, c.a^c.b)
		}
		if got := f.Add(f.Add(c.a, c.b), c.b); got != c.a {
			t.Errorf("Add is not self-inverse for (%d,%d)", c.a, c.b)
		}
		if f.Sub(c.a, c.b) != f.Add(c.a, c.b) {
			t.Errorf("Sub(%d,%d) != Add(%d,%d)", c.a, c.b, c.a, c.b)
		}
	}
}

func TestMulBasicIdentities(t *testing.T) {
	f := NewField()
	for a := 0; a < Order; a++ {
		ab := byte(a)
		if got := f.Mul(ab, 0); got != 0 {
			t.Fatalf("Mul(%d, 0) = %d, want 0", a, got)
		}
		if got := f.Mul(0, ab); got != 0 {
			t.Fatalf("Mul(0, %d) = %d, want 0", a, got)
		}
		if got := f.Mul(ab, 1); got != ab {
			t.Fatalf("Mul(%d, 1) = %d, want %d", a, got, a)
		}
	}
}

func TestMulMatchesSlowMultiplication(t *testing.T) {
	f := NewField()
	// Carry-less "schoolbook" multiplication with reduction by the
	// primitive polynomial, used as an independent oracle.
	slow := func(a, b byte) byte {
		var p uint16
		av, bv := uint16(a), uint16(b)
		for i := 0; i < 8; i++ {
			if bv&1 != 0 {
				p ^= av
			}
			bv >>= 1
			av <<= 1
			if av&0x100 != 0 {
				av ^= Polynomial
			}
		}
		return byte(p)
	}
	for a := 0; a < Order; a++ {
		for b := 0; b < Order; b++ {
			if got, want := f.Mul(byte(a), byte(b)), slow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMulCommutativeAssociativeDistributive(t *testing.T) {
	f := NewField()
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(func(a, b byte) bool {
		return f.Mul(a, b) == f.Mul(b, a)
	}, cfg); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	if err := quick.Check(func(a, b, c byte) bool {
		return f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
	}, cfg); err != nil {
		t.Errorf("associativity: %v", err)
	}
	if err := quick.Check(func(a, b, c byte) bool {
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}, cfg); err != nil {
		t.Errorf("distributivity: %v", err)
	}
}

func TestDivAndInv(t *testing.T) {
	f := NewField()
	for a := 1; a < Order; a++ {
		inv := f.Inv(byte(a))
		if got := f.Mul(byte(a), inv); got != 1 {
			t.Fatalf("a * Inv(a) = %d for a=%d, want 1", got, a)
		}
		if got := f.Div(1, byte(a)); got != inv {
			t.Fatalf("Div(1, %d) = %d, want Inv = %d", a, got, inv)
		}
	}
	// Div is the inverse of Mul.
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return f.Div(f.Mul(a, b), b) == a
	}, cfg); err != nil {
		t.Errorf("Div(Mul(a,b), b) != a: %v", err)
	}
	if got := f.Div(0, 7); got != 0 {
		t.Errorf("Div(0, 7) = %d, want 0", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	f := NewField()
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	f.Div(3, 0)
}

func TestInvZeroPanics(t *testing.T) {
	f := NewField()
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	f.Inv(0)
}

func TestExp(t *testing.T) {
	f := NewField()
	if got := f.Exp(0); got != 1 {
		t.Errorf("Exp(0) = %d, want 1", got)
	}
	if got := f.Exp(1); got != 2 {
		t.Errorf("Exp(1) = %d, want 2 (generator)", got)
	}
	// Period 255.
	for e := 0; e < 300; e++ {
		if f.Exp(e) != f.Exp(e+255) {
			t.Fatalf("Exp period violated at e=%d", e)
		}
	}
}

func TestMulSliceAndMulAddSlice(t *testing.T) {
	f := NewField()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		src := make([]byte, n)
		rng.Read(src)
		c := byte(rng.Intn(Order))

		dst := make([]byte, n)
		f.MulSlice(c, dst, src)
		for i := range src {
			if want := f.Mul(c, src[i]); dst[i] != want {
				t.Fatalf("MulSlice c=%d idx=%d: got %d want %d", c, i, dst[i], want)
			}
		}

		acc := make([]byte, n)
		rng.Read(acc)
		want := make([]byte, n)
		for i := range acc {
			want[i] = acc[i] ^ f.Mul(c, src[i])
		}
		f.MulAddSlice(c, acc, src)
		for i := range acc {
			if acc[i] != want[i] {
				t.Fatalf("MulAddSlice c=%d idx=%d: got %d want %d", c, i, acc[i], want[i])
			}
		}
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	f := NewField()
	defer func() {
		if recover() == nil {
			t.Fatal("MulSlice with mismatched lengths did not panic")
		}
	}()
	f.MulSlice(2, make([]byte, 3), make([]byte, 4))
}

func TestVandermondeInvertibility(t *testing.T) {
	f := NewField()
	// Any square Vandermonde with distinct row indices is invertible.
	for _, n := range []int{1, 2, 3, 5, 9, 16, 32} {
		v := Vandermonde(f, n, n)
		inv, err := f.Invert(v)
		if err != nil {
			t.Fatalf("Vandermonde %dx%d not invertible: %v", n, n, err)
		}
		prod := f.MatMul(v, inv)
		id := Identity(n)
		for i := range prod.Data {
			if prod.Data[i] != id.Data[i] {
				t.Fatalf("V * V^-1 != I for n=%d", n)
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	f := NewField()
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 5)
	m.Set(1, 0, 3)
	m.Set(1, 1, 5) // duplicate row -> singular
	if _, err := f.Invert(m); err != ErrSingular {
		t.Fatalf("Invert of singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	f := NewField()
	if _, err := f.Invert(NewMatrix(2, 3)); err == nil {
		t.Fatal("Invert of non-square matrix should fail")
	}
}

func TestMatMulIdentity(t *testing.T) {
	f := NewField()
	rng := rand.New(rand.NewSource(4))
	m := NewMatrix(7, 7)
	rng.Read(m.Data)
	id := Identity(7)
	left := f.MatMul(id, m)
	right := f.MatMul(m, id)
	for i := range m.Data {
		if left.Data[i] != m.Data[i] || right.Data[i] != m.Data[i] {
			t.Fatal("identity multiplication changed the matrix")
		}
	}
}

func TestMatrixRandomInvertRoundTrip(t *testing.T) {
	f := NewField()
	rng := rand.New(rand.NewSource(5))
	inverted := 0
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		m := NewMatrix(n, n)
		rng.Read(m.Data)
		inv, err := f.Invert(m)
		if err != nil {
			continue // random matrices can be singular; skip those
		}
		inverted++
		prod := f.MatMul(m, inv)
		id := Identity(n)
		for i := range prod.Data {
			if prod.Data[i] != id.Data[i] {
				t.Fatalf("M * M^-1 != I (n=%d, trial=%d)", n, trial)
			}
		}
	}
	if inverted == 0 {
		t.Fatal("no random matrix was invertible; suspicious")
	}
}

func TestSubMatrix(t *testing.T) {
	f := NewField()
	v := Vandermonde(f, 6, 3)
	sub := v.SubMatrix([]int{0, 2, 5})
	if sub.Rows != 3 || sub.Cols != 3 {
		t.Fatalf("SubMatrix dims = %dx%d, want 3x3", sub.Rows, sub.Cols)
	}
	for i, r := range []int{0, 2, 5} {
		for c := 0; c < 3; c++ {
			if sub.At(i, c) != v.At(r, c) {
				t.Fatalf("SubMatrix[%d][%d] mismatch", i, c)
			}
		}
	}
}

func TestSwapRows(t *testing.T) {
	m := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			m.Set(i, j, byte(10*i+j))
		}
	}
	m.SwapRows(0, 2)
	if m.At(0, 0) != 20 || m.At(2, 0) != 0 {
		t.Fatal("SwapRows did not exchange rows")
	}
	m.SwapRows(1, 1) // no-op must be safe
	if m.At(1, 1) != 11 {
		t.Fatal("SwapRows(i,i) corrupted the row")
	}
}

func BenchmarkMul(b *testing.B) {
	f := NewField()
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= f.Mul(byte(i), byte(i>>8))
	}
	_ = acc
}

func BenchmarkMulAddSlice1316(b *testing.B) {
	f := NewField()
	rng := rand.New(rand.NewSource(6))
	src := make([]byte, 1316)
	dst := make([]byte, 1316)
	rng.Read(src)
	b.SetBytes(1316)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MulAddSlice(byte(i%255+1), dst, src)
	}
}

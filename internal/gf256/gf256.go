// Package gf256 implements arithmetic over the finite field GF(2^8) and the
// small amount of linear algebra needed by systematic Reed–Solomon erasure
// coding (see internal/fec).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by most
// storage-oriented Reed–Solomon implementations. Multiplication and division
// are table-driven (log/exp tables built at construction time), so the hot
// paths used by FEC encoding reduce to two table lookups and an addition.
//
// All operations are pure functions of their inputs; the package holds no
// mutable global state beyond the immutable tables embedded in Field.
package gf256

import (
	"errors"
	"fmt"
)

// Polynomial is the primitive polynomial used to construct the field,
// expressed with the x^8 term included (bit 8 set).
const Polynomial = 0x11d

// Order is the number of elements in GF(2^8).
const Order = 256

// ErrSingular is returned when a matrix that must be inverted (or a linear
// system that must be solved) is rank deficient.
var ErrSingular = errors.New("gf256: matrix is singular")

// Field holds the log/exp tables for GF(2^8) arithmetic. The zero value is
// not usable; obtain one with NewField. Field is immutable after creation
// and safe for concurrent use.
type Field struct {
	exp [2 * Order]byte // exp[i] = g^i, doubled to avoid mod in Mul
	log [Order]byte     // log[x] = i such that g^i = x; log[0] unused
}

// NewField builds the log/exp tables for GF(2^8) with generator 2 under
// Polynomial.
func NewField() *Field {
	f := &Field{}
	x := 1
	for i := 0; i < Order-1; i++ {
		f.exp[i] = byte(x)
		f.log[x] = byte(i)
		x <<= 1
		if x >= Order {
			x ^= Polynomial
		}
	}
	// Double the exp table so Mul can index exp[log a + log b] directly
	// without a modular reduction.
	for i := Order - 1; i < 2*Order; i++ {
		f.exp[i] = f.exp[i-(Order-1)]
	}
	return f
}

// Add returns a+b in GF(2^8). Addition is XOR; it is its own inverse, so Sub
// is identical to Add.
func (f *Field) Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8), which equals Add(a, b).
func (f *Field) Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func (f *Field) Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}

// Div returns a/b in GF(2^8). Dividing by zero panics, mirroring integer
// division: callers must guarantee b != 0 (decode paths check pivots and
// return ErrSingular before dividing).
func (f *Field) Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(f.log[a]) - int(f.log[b])
	if d < 0 {
		d += Order - 1
	}
	return f.exp[d]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func (f *Field) Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return f.exp[(Order-1)-int(f.log[a])]
}

// Exp returns the generator raised to the power e (e may be any non-negative
// integer; it is reduced modulo 255).
func (f *Field) Exp(e int) byte {
	if e < 0 {
		panic("gf256: negative exponent")
	}
	return f.exp[e%(Order-1)]
}

// MulSlice sets dst[i] = c * src[i] for all i. dst and src must have the
// same length; they may alias.
func (f *Field) MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	logC := int(f.log[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = f.exp[logC+int(f.log[s])]
		}
	}
}

// MulAddSlice sets dst[i] ^= c * src[i] for all i; this is the inner loop of
// Reed–Solomon encoding. dst and src must have the same length and must not
// alias unless c is zero.
func (f *Field) MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(f.log[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= f.exp[logC+int(f.log[s])]
		}
	}
}

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       []byte // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf256: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a slice aliasing row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows x cols Vandermonde matrix V[r][c] = r^c
// evaluated in GF(2^8) with row index r taken as the field element r.
// Rows with distinct indices are linearly independent as long as rows <= 256,
// which makes the matrix suitable for constructing MDS erasure codes.
func Vandermonde(f *Field, rows, cols int) *Matrix {
	if rows > Order {
		panic("gf256: Vandermonde rows exceed field order")
	}
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		v := byte(1)
		for c := 0; c < cols; c++ {
			m.Set(r, c, v)
			v = f.Mul(v, byte(r))
		}
		// r == 0 row is [1, 0, 0, ...] which the loop produces since
		// Mul(v, 0) == 0.
	}
	return m
}

// Mul returns the matrix product a*b. It panics if the inner dimensions do
// not agree.
func (f *Field) MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("gf256: MatMul dimension mismatch %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			f.MulAddSlice(av, or, b.Row(k))
		}
	}
	return out
}

// Invert returns the inverse of the square matrix m, computed by
// Gauss–Jordan elimination with partial pivoting (pivoting is by nonzero
// search; in GF(2^8) there is no numeric-stability concern). It returns
// ErrSingular if m is not invertible. m is not modified.
func (f *Field) Invert(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("gf256: cannot invert non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	work := m.Clone()
	out := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot row at or below col.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		work.SwapRows(col, pivot)
		out.SwapRows(col, pivot)
		// Normalize the pivot row.
		if pv := work.At(col, col); pv != 1 {
			inv := f.Inv(pv)
			f.MulSlice(inv, work.Row(col), work.Row(col))
			f.MulSlice(inv, out.Row(col), out.Row(col))
		}
		// Eliminate the column from all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if c := work.At(r, col); c != 0 {
				f.MulAddSlice(c, work.Row(r), work.Row(col))
				f.MulAddSlice(c, out.Row(r), out.Row(col))
			}
		}
	}
	return out, nil
}

// SubMatrix returns a new matrix consisting of the given rows of m.
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Package env defines the execution environment abstraction that separates
// protocol logic from the substrate it runs on.
//
// Protocols (internal/core, internal/aggregation, internal/membership) are
// written as single-threaded reactive state machines implementing Handler.
// A Runtime drives them: the discrete-event simulator (internal/simnet) runs
// every node inside one deterministic event loop with virtual time, while
// the real-UDP runtime (internal/udpnet) drives the same code from socket
// readers and wall-clock timers under a per-node mutex.
//
// The contract that makes this work:
//
//   - A Handler is never invoked concurrently with itself.
//   - All handler callbacks (Start, Receive, timer functions) run in the
//     node's execution context; they may freely mutate node state.
//   - Handlers must not block, sleep, or spawn goroutines; all asynchrony is
//     expressed through Runtime.After.
//   - Messages received through Receive are immutable; handlers must not
//     modify them (the simulator shares one object among all recipients).
package env

import (
	"math/rand"
	"time"

	"repro/internal/wire"
)

// Timer is a cancelable pending callback created by Runtime.After.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// callback from firing. Stopping an already-fired or already-stopped
	// timer is a harmless no-op returning false.
	Stop() bool
}

// Runtime is the node-side interface to the substrate.
type Runtime interface {
	// ID returns this node's identity.
	ID() wire.NodeID

	// Now returns the elapsed time since the run epoch. In the simulator
	// this is virtual time; over UDP it is wall-clock time since start.
	Now() time.Duration

	// Send transmits m to the destination node, asynchronously and
	// unreliably (datagram semantics: messages may be lost, delayed, or
	// reordered, but are never corrupted or duplicated). Sending to an
	// unknown or dead node silently drops the message, like UDP.
	Send(to wire.NodeID, m wire.Message)

	// After schedules fn to run in this node's execution context after
	// delay d. It returns a Timer that can cancel the callback.
	After(d time.Duration, fn func()) Timer

	// AfterFunc is After without a cancel handle: fire-and-forget timers
	// that guard themselves with a state check instead of being stopped.
	// Hot paths prefer it — the simulator can then recycle the timer slot
	// without minting a handle, so the call allocates nothing.
	AfterFunc(d time.Duration, fn func())

	// Rand returns this node's private deterministic random stream. The
	// returned value is only valid for use inside handler callbacks.
	Rand() *rand.Rand
}

// Handler is one protocol instance living on one node.
type Handler interface {
	// Start is invoked exactly once, before any other callback, when the
	// node boots. The runtime is valid until Stop returns.
	Start(rt Runtime)

	// Receive is invoked for every message delivered to this node.
	Receive(from wire.NodeID, m wire.Message)

	// Stop is invoked when the node shuts down (cleanly or by simulated
	// crash). After Stop, no further callbacks occur. Pending timers are
	// discarded by the runtime; Stop does not need to cancel them.
	Stop()
}

// HandlerFunc adapts a plain receive function to the Handler interface, for
// tests and small tools.
type HandlerFunc func(from wire.NodeID, m wire.Message)

// Start implements Handler as a no-op.
func (HandlerFunc) Start(Runtime) {}

// Receive implements Handler by calling the function.
func (f HandlerFunc) Receive(from wire.NodeID, m wire.Message) { f(from, m) }

// Stop implements Handler as a no-op.
func (HandlerFunc) Stop() {}

var _ Handler = (HandlerFunc)(nil)

// Ticker repeatedly invokes a callback with a fixed period using
// Runtime.AfterFunc, the asynchrony primitive available to handlers. The
// first tick fires after an initial phase offset (commonly randomized so
// node periods do not synchronize system-wide). Ticks are fire-and-forget:
// Stop flips a flag rather than canceling the pending timer, so a stopped
// ticker's last timer fires once more as a no-op — and the steady-state
// tick path allocates nothing.
type Ticker struct {
	rt     Runtime
	period time.Duration
	fn     func()
	tickFn func() // t.tick as a func value, bound once so ticks don't allocate
	done   bool
}

// NewTicker starts a ticker that first fires after phase and then every
// period. The callback runs in the node's execution context.
func NewTicker(rt Runtime, phase, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("env: ticker period must be positive")
	}
	t := &Ticker{rt: rt, period: period, fn: fn}
	t.tickFn = t.tick
	rt.AfterFunc(phase, t.tickFn)
	return t
}

func (t *Ticker) tick() {
	if t.done {
		return
	}
	t.rt.AfterFunc(t.period, t.tickFn)
	t.fn()
}

// Stop permanently cancels the ticker.
func (t *Ticker) Stop() {
	t.done = true
}

// Mux fans incoming messages out to multiple handlers by message kind, so a
// node can stack independent protocols (dissemination, aggregation, peer
// sampling) behind one Runtime.
type Mux struct {
	routes   map[wire.Kind]Handler
	handlers []Handler // registration order, for Start/Stop
	fallback Handler
}

// NewMux returns an empty Mux.
func NewMux() *Mux {
	return &Mux{routes: make(map[wire.Kind]Handler)}
}

// Register attaches h to the given message kinds. Registering the same kind
// twice panics: that is a wiring bug, not a runtime condition. Each Register
// call adds one entry to the Start/Stop order, so a handler serving several
// kinds must be registered with a single call listing all of them.
func (m *Mux) Register(h Handler, kinds ...wire.Kind) {
	for _, k := range kinds {
		if _, dup := m.routes[k]; dup {
			panic("env: duplicate mux registration for kind " + k.String())
		}
		m.routes[k] = h
	}
	m.handlers = append(m.handlers, h)
}

// SetFallback installs a handler for kinds with no registration. Without a
// fallback, unroutable messages are silently dropped (datagram semantics).
func (m *Mux) SetFallback(h Handler) { m.fallback = h }

// Start implements Handler, starting sub-handlers in registration order.
func (m *Mux) Start(rt Runtime) {
	for _, h := range m.handlers {
		h.Start(rt)
	}
	if m.fallback != nil {
		m.fallback.Start(rt)
	}
}

// Receive implements Handler.
func (m *Mux) Receive(from wire.NodeID, msg wire.Message) {
	if h, ok := m.routes[msg.Kind()]; ok {
		h.Receive(from, msg)
		return
	}
	if m.fallback != nil {
		m.fallback.Receive(from, msg)
	}
}

// Stop implements Handler, stopping sub-handlers in reverse registration
// order.
func (m *Mux) Stop() {
	if m.fallback != nil {
		m.fallback.Stop()
	}
	for i := len(m.handlers) - 1; i >= 0; i-- {
		m.handlers[i].Stop()
	}
}

var _ Handler = (*Mux)(nil)

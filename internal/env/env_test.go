package env

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/wire"
)

// fakeRuntime drives handlers without a network.
type fakeRuntime struct {
	now    time.Duration
	timers []*fakeTimer
	sent   []wire.NodeID
}

type fakeTimer struct {
	at      time.Duration
	fn      func()
	stopped bool
	fired   bool
}

func (t *fakeTimer) Stop() bool {
	if t.stopped || t.fired {
		return false
	}
	t.stopped = true
	return true
}

var _ Runtime = (*fakeRuntime)(nil)

func (f *fakeRuntime) ID() wire.NodeID    { return 3 }
func (f *fakeRuntime) Now() time.Duration { return f.now }
func (f *fakeRuntime) Rand() *rand.Rand   { return rand.New(rand.NewSource(1)) }
func (f *fakeRuntime) Send(to wire.NodeID, _ wire.Message) {
	f.sent = append(f.sent, to)
}
func (f *fakeRuntime) After(d time.Duration, fn func()) Timer {
	t := &fakeTimer{at: f.now + d, fn: fn}
	f.timers = append(f.timers, t)
	return t
}

func (f *fakeRuntime) AfterFunc(d time.Duration, fn func()) {
	f.After(d, fn)
}

func (f *fakeRuntime) fire() bool {
	var best *fakeTimer
	for _, t := range f.timers {
		if t.stopped || t.fired {
			continue
		}
		if best == nil || t.at < best.at {
			best = t
		}
	}
	if best == nil {
		return false
	}
	best.fired = true
	if best.at > f.now {
		f.now = best.at
	}
	best.fn()
	return true
}

func TestTickerPhaseAndPeriod(t *testing.T) {
	rt := &fakeRuntime{}
	var fires []time.Duration
	NewTicker(rt, 3*time.Millisecond, 10*time.Millisecond, func() {
		fires = append(fires, rt.Now())
	})
	for i := 0; i < 4; i++ {
		if !rt.fire() {
			t.Fatal("no timer pending")
		}
	}
	want := []time.Duration{3 * time.Millisecond, 13 * time.Millisecond, 23 * time.Millisecond, 33 * time.Millisecond}
	for i, w := range want {
		if fires[i] != w {
			t.Fatalf("fire %d at %v, want %v", i, fires[i], w)
		}
	}
}

func TestTickerStopPreventsFutureFires(t *testing.T) {
	rt := &fakeRuntime{}
	count := 0
	tk := NewTicker(rt, 0, time.Millisecond, func() { count++ })
	rt.fire()
	rt.fire()
	tk.Stop()
	for rt.fire() {
	}
	if count != 2 {
		t.Fatalf("ticker fired %d times after Stop, want 2", count)
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	rt := &fakeRuntime{}
	count := 0
	var tk *Ticker
	tk = NewTicker(rt, 0, time.Millisecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	for rt.fire() {
	}
	if count != 3 {
		t.Fatalf("ticker fired %d times, want exactly 3", count)
	}
}

func TestTickerPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero period accepted")
		}
	}()
	NewTicker(&fakeRuntime{}, 0, 0, func() {})
}

func TestHandlerFunc(t *testing.T) {
	var got wire.NodeID
	h := HandlerFunc(func(from wire.NodeID, _ wire.Message) { got = from })
	h.Start(&fakeRuntime{}) // no-op
	h.Receive(42, &wire.Propose{})
	h.Stop() // no-op
	if got != 42 {
		t.Fatalf("handler func got %d", got)
	}
}

type lifecycleHandler struct {
	starts, stops, receives int
}

func (h *lifecycleHandler) Start(Runtime)                     { h.starts++ }
func (h *lifecycleHandler) Receive(wire.NodeID, wire.Message) { h.receives++ }
func (h *lifecycleHandler) Stop()                             { h.stops++ }

func TestMuxLifecycleAndRouting(t *testing.T) {
	mux := NewMux()
	a := &lifecycleHandler{}
	b := &lifecycleHandler{}
	fb := &lifecycleHandler{}
	mux.Register(a, wire.KindPropose, wire.KindRequest)
	mux.Register(b, wire.KindServe)
	mux.SetFallback(fb)

	mux.Start(&fakeRuntime{})
	if a.starts != 1 || b.starts != 1 || fb.starts != 1 {
		t.Fatal("not all handlers started")
	}
	mux.Receive(1, &wire.Propose{})
	mux.Receive(1, &wire.Request{})
	mux.Receive(1, &wire.Serve{})
	mux.Receive(1, &wire.Aggregate{}) // unrouted -> fallback
	if a.receives != 2 || b.receives != 1 || fb.receives != 1 {
		t.Fatalf("routing wrong: a=%d b=%d fb=%d", a.receives, b.receives, fb.receives)
	}
	mux.Stop()
	if a.stops != 1 || b.stops != 1 || fb.stops != 1 {
		t.Fatal("not all handlers stopped")
	}
}

func TestMuxWithoutFallbackDropsUnrouted(t *testing.T) {
	mux := NewMux()
	a := &lifecycleHandler{}
	mux.Register(a, wire.KindPropose)
	mux.Start(&fakeRuntime{})
	mux.Receive(1, &wire.Aggregate{}) // silently dropped
	if a.receives != 0 {
		t.Fatal("unrouted message reached a handler")
	}
}

func TestMuxDuplicateRegistrationPanics(t *testing.T) {
	mux := NewMux()
	mux.Register(&lifecycleHandler{}, wire.KindPropose)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate kind registration accepted")
		}
	}()
	mux.Register(&lifecycleHandler{}, wire.KindPropose)
}

func TestMuxLifecycleOnlyRegistration(t *testing.T) {
	// Registering with no kinds attaches lifecycle (Start/Stop) without
	// routing — used for the stream source.
	mux := NewMux()
	a := &lifecycleHandler{}
	mux.Register(a)
	mux.Start(&fakeRuntime{})
	mux.Stop()
	if a.starts != 1 || a.stops != 1 {
		t.Fatal("lifecycle-only handler not started/stopped")
	}
}

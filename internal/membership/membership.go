// Package membership provides the peer views from which gossip protocols
// draw their uniformly random communication partners.
//
// The paper (like its experimental system) assumes every node can select f
// uniformly random nodes (Algorithm 1, selectNodes). View implements that
// directly over a full membership list, with O(k) sampling without
// replacement and support for removals so that churn scenarios can model
// delayed failure notification (§3.6: survivors learn about a failure an
// average of 10 s after it happened).
//
// As an extension beyond the paper's simplification, Cyclon implements a
// gossip-based peer-sampling service (shuffling partial views) that provides
// the same Sampler interface without any global membership knowledge.
package membership

import (
	"fmt"
	"math/rand"

	"repro/internal/wire"
)

// Sampler yields (approximately) uniformly random peers. Implementations
// must never return the node's own id or duplicates within one call.
type Sampler interface {
	// SelectPeers returns up to k distinct peers chosen uniformly at
	// random. Fewer than k are returned when the view is smaller than k.
	SelectPeers(rng *rand.Rand, k int) []wire.NodeID
	// PeerCount returns the number of peers currently in the view.
	PeerCount() int
}

// PeerAppender is an optional Sampler fast path for hot loops: AppendPeers
// appends up to k distinct peers to dst and returns the extended slice, so
// callers can reuse one scratch buffer per round instead of allocating a
// fresh result per call. Samplers that cannot offer it are used through
// SelectPeers.
type PeerAppender interface {
	AppendPeers(dst []wire.NodeID, rng *rand.Rand, k int) []wire.NodeID
}

// View is a mutable full-membership view for one node. It is not safe for
// concurrent use; in the simulator all accesses happen on the event loop.
type View struct {
	self  wire.NodeID
	peers []wire.NodeID
	index map[wire.NodeID]int // peer -> position in peers
}

var (
	_ Sampler      = (*View)(nil)
	_ PeerAppender = (*View)(nil)
	_ PeerAppender = (*Cyclon)(nil)
)

// NewView builds a view for self containing every node in peers except self
// itself. Duplicate entries are ignored.
func NewView(self wire.NodeID, peers []wire.NodeID) *View {
	v := &View{
		self:  self,
		peers: make([]wire.NodeID, 0, len(peers)),
		index: make(map[wire.NodeID]int, len(peers)),
	}
	for _, p := range peers {
		v.Add(p)
	}
	return v
}

// Self returns the owning node's id.
func (v *View) Self() wire.NodeID { return v.self }

// PeerCount implements Sampler.
func (v *View) PeerCount() int { return len(v.peers) }

// Contains reports whether id is currently in the view.
func (v *View) Contains(id wire.NodeID) bool {
	_, ok := v.index[id]
	return ok
}

// Add inserts a peer. Adding self or an existing peer is a no-op.
func (v *View) Add(id wire.NodeID) {
	if id == v.self {
		return
	}
	if _, ok := v.index[id]; ok {
		return
	}
	v.index[id] = len(v.peers)
	v.peers = append(v.peers, id)
}

// Remove deletes a peer (e.g., on failure notification). Removing an absent
// peer is a no-op.
func (v *View) Remove(id wire.NodeID) {
	pos, ok := v.index[id]
	if !ok {
		return
	}
	last := len(v.peers) - 1
	moved := v.peers[last]
	v.peers[pos] = moved
	v.index[moved] = pos
	v.peers = v.peers[:last]
	delete(v.index, id)
}

// SelectPeers implements Sampler with a partial Fisher–Yates shuffle: O(k)
// time, uniform without replacement.
func (v *View) SelectPeers(rng *rand.Rand, k int) []wire.NodeID {
	return v.AppendPeers(nil, rng, k)
}

// AppendPeers implements PeerAppender: SelectPeers into a caller-owned
// buffer. It consumes exactly the same rng draws as SelectPeers.
func (v *View) AppendPeers(dst []wire.NodeID, rng *rand.Rand, k int) []wire.NodeID {
	n := len(v.peers)
	if k >= n {
		return append(dst, v.peers...)
	}
	if k <= 0 {
		return dst
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		if i != j {
			v.peers[i], v.peers[j] = v.peers[j], v.peers[i]
			v.index[v.peers[i]] = i
			v.index[v.peers[j]] = j
		}
	}
	return append(dst, v.peers[:k]...)
}

// Peers returns a copy of the current peer set (order unspecified).
func (v *View) Peers() []wire.NodeID {
	out := make([]wire.NodeID, len(v.peers))
	copy(out, v.peers)
	return out
}

// Directory is the bootstrap membership of a run: the id set from which
// per-node Views are built.
type Directory struct {
	ids []wire.NodeID
}

// NewDirectory creates a directory over n densely numbered nodes [0, n).
func NewDirectory(n int) *Directory {
	if n <= 0 {
		panic(fmt.Sprintf("membership: directory size %d", n))
	}
	d := &Directory{ids: make([]wire.NodeID, n)}
	for i := range d.ids {
		d.ids[i] = wire.NodeID(i)
	}
	return d
}

// Size returns the number of nodes in the directory.
func (d *Directory) Size() int { return len(d.ids) }

// IDs returns a copy of all node ids.
func (d *Directory) IDs() []wire.NodeID {
	out := make([]wire.NodeID, len(d.ids))
	copy(out, d.ids)
	return out
}

// ViewFor builds a full view for the given node.
func (d *Directory) ViewFor(self wire.NodeID) *View {
	return NewView(self, d.ids)
}

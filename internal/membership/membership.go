// Package membership provides the peer views from which gossip protocols
// draw their uniformly random communication partners.
//
// The paper (like its experimental system) assumes every node can select f
// uniformly random nodes (Algorithm 1, selectNodes). View implements that
// directly over a full membership list, with O(k) sampling without
// replacement and support for removals so that churn scenarios can model
// delayed failure notification (§3.6: survivors learn about a failure an
// average of 10 s after it happened).
//
// As an extension beyond the paper's simplification, Cyclon implements a
// gossip-based peer-sampling service (shuffling partial views) that provides
// the same Sampler interface without any global membership knowledge.
package membership

import (
	"fmt"
	"math/rand"

	"repro/internal/wire"
)

// Sampler yields (approximately) uniformly random peers. Implementations
// must never return the node's own id or duplicates within one call.
type Sampler interface {
	// SelectPeers returns up to k distinct peers chosen uniformly at
	// random. Fewer than k are returned when the view is smaller than k.
	SelectPeers(rng *rand.Rand, k int) []wire.NodeID
	// PeerCount returns the number of peers currently in the view.
	PeerCount() int
}

// PeerAppender is an optional Sampler fast path for hot loops: AppendPeers
// appends up to k distinct peers to dst and returns the extended slice, so
// callers can reuse one scratch buffer per round instead of allocating a
// fresh result per call. Samplers that cannot offer it are used through
// SelectPeers.
type PeerAppender interface {
	AppendPeers(dst []wire.NodeID, rng *rand.Rand, k int) []wire.NodeID
}

// SplitSampler is the locality-aware draw used by hierarchical
// dissemination: up to kIntra distinct peers from the node's own cluster
// and kInter from other clusters, with unfilled budget spilling across the
// boundary so the total matches a uniform draw of kIntra+kInter whenever
// enough peers exist. Views built with NewClusterView implement it.
type SplitSampler interface {
	AppendSplit(dst []wire.NodeID, rng *rand.Rand, kIntra, kInter int) []wire.NodeID
}

// View is a mutable full-membership view for one node. It is not safe for
// concurrent use; in the simulator all accesses happen on the event loop.
//
// A view built with NewClusterView additionally partitions its peers by
// topology cluster and offers AppendSplit; the uniform Sampler/PeerAppender
// paths are unaffected by the partition.
type View struct {
	self  wire.NodeID
	peers []wire.NodeID
	index map[wire.NodeID]int // peer -> position in peers

	// Cluster partition (NewClusterView only; nil clusterOf disables it).
	// intra/inter mirror peers, split by whether a peer shares the owner's
	// cluster; each sub-list keeps its own position index for O(k) partial
	// Fisher-Yates draws.
	clusterOf   func(wire.NodeID) int
	selfCluster int
	intra       []wire.NodeID
	inter       []wire.NodeID
	intraIdx    map[wire.NodeID]int
	interIdx    map[wire.NodeID]int
	exclude     func(wire.NodeID) bool // split-path filter (quarantine hook)
}

var (
	_ Sampler      = (*View)(nil)
	_ PeerAppender = (*View)(nil)
	_ SplitSampler = (*View)(nil)
	_ PeerAppender = (*Cyclon)(nil)
)

// NewView builds a view for self containing every node in peers except self
// itself. Duplicate entries are ignored.
func NewView(self wire.NodeID, peers []wire.NodeID) *View {
	v := &View{
		self:  self,
		peers: make([]wire.NodeID, 0, len(peers)),
		index: make(map[wire.NodeID]int, len(peers)),
	}
	for _, p := range peers {
		v.Add(p)
	}
	return v
}

// NewClusterView builds a full view whose peers are additionally
// partitioned by clusterOf (a pure node -> cluster-index function, e.g.
// topo.Topology.ClusterOf), enabling AppendSplit. Add and Remove keep the
// partition in sync, so churn and join waves work unchanged.
func NewClusterView(self wire.NodeID, peers []wire.NodeID, clusterOf func(wire.NodeID) int) *View {
	v := &View{
		self:        self,
		peers:       make([]wire.NodeID, 0, len(peers)),
		index:       make(map[wire.NodeID]int, len(peers)),
		clusterOf:   clusterOf,
		selfCluster: clusterOf(self),
		intraIdx:    make(map[wire.NodeID]int),
		interIdx:    make(map[wire.NodeID]int),
	}
	for _, p := range peers {
		v.Add(p)
	}
	return v
}

// SetExclude installs a filter on the split path: AppendSplit never returns
// a peer for which fn is true (the quarantine hook). Nil clears the filter.
// The uniform SelectPeers/AppendPeers paths are unaffected; wrap those with
// a filtering sampler instead.
func (v *View) SetExclude(fn func(wire.NodeID) bool) { v.exclude = fn }

// Self returns the owning node's id.
func (v *View) Self() wire.NodeID { return v.self }

// PeerCount implements Sampler.
func (v *View) PeerCount() int { return len(v.peers) }

// Contains reports whether id is currently in the view.
func (v *View) Contains(id wire.NodeID) bool {
	_, ok := v.index[id]
	return ok
}

// Add inserts a peer. Adding self or an existing peer is a no-op.
func (v *View) Add(id wire.NodeID) {
	if id == v.self {
		return
	}
	if _, ok := v.index[id]; ok {
		return
	}
	v.index[id] = len(v.peers)
	v.peers = append(v.peers, id)
	if v.clusterOf != nil {
		if v.clusterOf(id) == v.selfCluster {
			v.intraIdx[id] = len(v.intra)
			v.intra = append(v.intra, id)
		} else {
			v.interIdx[id] = len(v.inter)
			v.inter = append(v.inter, id)
		}
	}
}

// Remove deletes a peer (e.g., on failure notification). Removing an absent
// peer is a no-op.
func (v *View) Remove(id wire.NodeID) {
	pos, ok := v.index[id]
	if !ok {
		return
	}
	last := len(v.peers) - 1
	moved := v.peers[last]
	v.peers[pos] = moved
	v.index[moved] = pos
	v.peers = v.peers[:last]
	delete(v.index, id)
	if v.clusterOf != nil {
		if p, ok := v.intraIdx[id]; ok {
			dropAt(&v.intra, v.intraIdx, p)
			delete(v.intraIdx, id)
		} else if p, ok := v.interIdx[id]; ok {
			dropAt(&v.inter, v.interIdx, p)
			delete(v.interIdx, id)
		}
	}
}

// dropAt removes position p from a sub-list by swapping in the last
// element, mirroring the master-list removal.
func dropAt(list *[]wire.NodeID, idx map[wire.NodeID]int, p int) {
	l := *list
	last := len(l) - 1
	moved := l[last]
	l[p] = moved
	idx[moved] = p
	*list = l[:last]
}

// SelectPeers implements Sampler with a partial Fisher–Yates shuffle: O(k)
// time, uniform without replacement.
func (v *View) SelectPeers(rng *rand.Rand, k int) []wire.NodeID {
	return v.AppendPeers(nil, rng, k)
}

// AppendPeers implements PeerAppender: SelectPeers into a caller-owned
// buffer. It consumes exactly the same rng draws as SelectPeers.
func (v *View) AppendPeers(dst []wire.NodeID, rng *rand.Rand, k int) []wire.NodeID {
	n := len(v.peers)
	if k >= n {
		return append(dst, v.peers...)
	}
	if k <= 0 {
		return dst
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		if i != j {
			v.peers[i], v.peers[j] = v.peers[j], v.peers[i]
			v.index[v.peers[i]] = i
			v.index[v.peers[j]] = j
		}
	}
	return append(dst, v.peers[:k]...)
}

// AppendSplit implements SplitSampler for cluster views: up to kIntra
// distinct peers from the owner's cluster plus kInter from other clusters,
// uniformly without replacement within each side. Budget a side cannot fill
// spills to the other, so degenerate shapes fall back to a uniform draw: a
// single cluster serves everything from intra, a size-1 cluster (no intra
// peers) serves everything from inter. Peers matching the SetExclude filter
// are never returned. On a view built without NewClusterView the call is a
// plain uniform AppendPeers of kIntra+kInter.
func (v *View) AppendSplit(dst []wire.NodeID, rng *rand.Rand, kIntra, kInter int) []wire.NodeID {
	if kIntra < 0 {
		kIntra = 0
	}
	if kInter < 0 {
		kInter = 0
	}
	if v.clusterOf == nil {
		return v.AppendPeers(dst, rng, kIntra+kInter)
	}
	base := len(dst)
	dst, usedIntra := v.drawFrom(v.intra, v.intraIdx, dst, rng, kIntra, 0)
	gotIntra := len(dst) - base
	mark := len(dst)
	// Inter budget plus whatever intra could not fill crosses the boundary.
	dst, _ = v.drawFrom(v.inter, v.interIdx, dst, rng, kInter+(kIntra-gotIntra), 0)
	gotInter := len(dst) - mark
	// Unfilled inter budget spills back into the cluster, continuing the
	// partial shuffle past the peers already drawn or skipped.
	if want := kIntra + kInter - gotIntra - gotInter; want > 0 {
		dst, _ = v.drawFrom(v.intra, v.intraIdx, dst, rng, want, usedIntra)
	}
	return dst
}

// drawFrom draws up to k non-excluded peers from one cluster sub-list with
// a partial Fisher-Yates, continuing from window offset used (positions
// below it were already drawn or skipped this round). Returns the extended
// dst and the new offset.
func (v *View) drawFrom(list []wire.NodeID, idx map[wire.NodeID]int, dst []wire.NodeID, rng *rand.Rand, k, used int) ([]wire.NodeID, int) {
	n := len(list)
	for ; used < n && k > 0; used++ {
		j := used + rng.Intn(n-used)
		if j != used {
			list[used], list[j] = list[j], list[used]
			idx[list[used]] = used
			idx[list[j]] = j
		}
		if v.exclude != nil && v.exclude(list[used]) {
			continue
		}
		dst = append(dst, list[used])
		k--
	}
	return dst, used
}

// Peers returns a copy of the current peer set (order unspecified).
func (v *View) Peers() []wire.NodeID {
	out := make([]wire.NodeID, len(v.peers))
	copy(out, v.peers)
	return out
}

// Directory is the bootstrap membership of a run: the id set from which
// per-node Views are built.
type Directory struct {
	ids []wire.NodeID
}

// NewDirectory creates a directory over n densely numbered nodes [0, n).
func NewDirectory(n int) *Directory {
	if n <= 0 {
		panic(fmt.Sprintf("membership: directory size %d", n))
	}
	d := &Directory{ids: make([]wire.NodeID, n)}
	for i := range d.ids {
		d.ids[i] = wire.NodeID(i)
	}
	return d
}

// Size returns the number of nodes in the directory.
func (d *Directory) Size() int { return len(d.ids) }

// IDs returns a copy of all node ids.
func (d *Directory) IDs() []wire.NodeID {
	out := make([]wire.NodeID, len(d.ids))
	copy(out, d.ids)
	return out
}

// ViewFor builds a full view for the given node.
func (d *Directory) ViewFor(self wire.NodeID) *View {
	return NewView(self, d.ids)
}

package membership

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/wire"
)

// clusterMod assigns node id -> id % m, a transparent oracle-friendly
// cluster function.
func clusterMod(m int) func(wire.NodeID) int {
	return func(id wire.NodeID) int { return int(id) % m }
}

func idRange(n int) []wire.NodeID {
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	return ids
}

// splitOracle computes the exact intra/inter counts AppendSplit must
// produce given the eligible pool sizes: fill each side's budget, spill
// intra leftovers across the boundary, then spill inter leftovers back.
func splitOracle(kIntra, kInter, nIntra, nInter int) (intra, inter int) {
	a1 := kIntra
	if a1 > nIntra {
		a1 = nIntra
	}
	b := kInter + (kIntra - a1)
	if b > nInter {
		b = nInter
	}
	a2 := kIntra + kInter - a1 - b
	if a2 > nIntra-a1 {
		a2 = nIntra - a1
	}
	return a1 + a2, b
}

// TestAppendSplitOracle is the cluster-biased sampler property test: for a
// grid of population shapes, budgets, and quarantine sets, every draw must
// match a brute-force oracle — exact intra/inter split, no duplicates,
// never self, excluded peers never sampled, and degenerate shapes (size-1
// cluster, single cluster) falling back to a uniform draw of the whole
// eligible pool.
func TestAppendSplitOracle(t *testing.T) {
	shapes := []struct {
		name     string
		n, mod   int
		self     wire.NodeID
		excluded []wire.NodeID
	}{
		{"balanced", 60, 3, 0, nil},
		{"balanced-excl", 60, 3, 0, []wire.NodeID{3, 6, 7, 20}},
		{"two-clusters", 40, 2, 5, []wire.NodeID{1, 2}},
		{"size-1-cluster", 31, 31, 17, nil}, // self is alone in its cluster
		{"single-cluster", 25, 1, 4, []wire.NodeID{9}},
		{"tiny", 3, 2, 1, nil},
	}
	budgets := [][2]int{{0, 0}, {1, 0}, {0, 1}, {3, 1}, {6, 2}, {1, 6}, {40, 0}, {0, 40}, {100, 100}, {-2, 3}}
	for _, sh := range shapes {
		clusterOf := clusterMod(sh.mod)
		v := NewClusterView(sh.self, idRange(sh.n), clusterOf)
		quar := make(map[wire.NodeID]bool)
		for _, q := range sh.excluded {
			quar[q] = true
		}
		if len(quar) > 0 {
			v.SetExclude(func(id wire.NodeID) bool { return quar[id] })
		}
		// Eligible pool sizes for the oracle.
		selfC := clusterOf(sh.self)
		nIntra, nInter := 0, 0
		for _, id := range idRange(sh.n) {
			if id == sh.self || quar[id] {
				continue
			}
			if clusterOf(id) == selfC {
				nIntra++
			} else {
				nInter++
			}
		}
		rng := rand.New(rand.NewSource(7))
		for _, b := range budgets {
			kIntra, kInter := b[0], b[1]
			cI, cJ := kIntra, kInter
			if cI < 0 {
				cI = 0
			}
			if cJ < 0 {
				cJ = 0
			}
			wantIntra, wantInter := splitOracle(cI, cJ, nIntra, nInter)
			for trial := 0; trial < 200; trial++ {
				got := v.AppendSplit(nil, rng, kIntra, kInter)
				seen := make(map[wire.NodeID]bool, len(got))
				gotIntra, gotInter := 0, 0
				for _, id := range got {
					if id == sh.self {
						t.Fatalf("%s k=(%d,%d): drew self", sh.name, kIntra, kInter)
					}
					if quar[id] {
						t.Fatalf("%s k=(%d,%d): drew quarantined peer %d", sh.name, kIntra, kInter, id)
					}
					if seen[id] {
						t.Fatalf("%s k=(%d,%d): duplicate peer %d in %v", sh.name, kIntra, kInter, id, got)
					}
					seen[id] = true
					if clusterOf(id) == selfC {
						gotIntra++
					} else {
						gotInter++
					}
				}
				if gotIntra != wantIntra || gotInter != wantInter {
					t.Fatalf("%s k=(%d,%d): split (%d,%d), oracle (%d,%d) over pools (%d,%d)",
						sh.name, kIntra, kInter, gotIntra, gotInter, wantIntra, wantInter, nIntra, nInter)
				}
			}
		}
	}
}

// TestAppendSplitCoverage checks the draws are spread over the whole
// eligible pool: over many trials with small budgets, every eligible peer
// on each side must appear.
func TestAppendSplitCoverage(t *testing.T) {
	v := NewClusterView(0, idRange(48), clusterMod(4))
	rng := rand.New(rand.NewSource(99))
	hit := make(map[wire.NodeID]int)
	for trial := 0; trial < 4000; trial++ {
		for _, id := range v.AppendSplit(nil, rng, 2, 2) {
			hit[id]++
		}
	}
	for _, id := range idRange(48) {
		if id == 0 {
			continue
		}
		if hit[id] == 0 {
			t.Fatalf("eligible peer %d never drawn in 4000 trials", id)
		}
	}
}

// TestAppendSplitUniformFallback pins the non-clustered view's AppendSplit
// to the exact rng draws of AppendPeers, so a plain view passed where a
// SplitSampler is expected behaves like the uniform protocol.
func TestAppendSplitUniformFallback(t *testing.T) {
	a := NewView(0, idRange(30))
	b := NewView(0, idRange(30))
	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		got := a.AppendSplit(nil, rngA, 3, 2)
		want := b.AppendPeers(nil, rngB, 5)
		if len(got) != len(want) {
			t.Fatalf("fallback draw differs: %v vs %v", got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("fallback draw differs at %d: %v vs %v", k, got, want)
			}
		}
	}
}

// TestClusterViewChurn drives Add/Remove over a cluster view and checks the
// partition stays consistent with the master list.
func TestClusterViewChurn(t *testing.T) {
	clusterOf := clusterMod(3)
	v := NewClusterView(1, idRange(30), clusterMod(3))
	rng := rand.New(rand.NewSource(11))
	present := make(map[wire.NodeID]bool)
	for _, id := range idRange(30) {
		if id != 1 {
			present[id] = true
		}
	}
	for step := 0; step < 3000; step++ {
		id := wire.NodeID(rng.Intn(40))
		if rng.Intn(2) == 0 {
			v.Add(id)
			if id != 1 {
				present[id] = true
			}
		} else {
			v.Remove(id)
			delete(present, id)
		}
		if v.PeerCount() != len(present) {
			t.Fatalf("step %d: PeerCount %d, want %d", step, v.PeerCount(), len(present))
		}
		if len(v.intra)+len(v.inter) != len(present) {
			t.Fatalf("step %d: partition %d+%d, want %d", step, len(v.intra), len(v.inter), len(present))
		}
		for _, id := range v.intra {
			if clusterOf(id) != clusterOf(1) || !present[id] {
				t.Fatalf("step %d: %d misplaced in intra", step, id)
			}
		}
		for _, id := range v.inter {
			if clusterOf(id) == clusterOf(1) || !present[id] {
				t.Fatalf("step %d: %d misplaced in inter", step, id)
			}
		}
	}
	// Draws over the churned view still honor the oracle.
	selfC := clusterOf(1)
	nIntra, nInter := len(v.intra), len(v.inter)
	wantIntra, wantInter := splitOracle(4, 2, nIntra, nInter)
	got := v.AppendSplit(nil, rng, 4, 2)
	gotIntra := 0
	for _, id := range got {
		if clusterOf(id) == selfC {
			gotIntra++
		}
	}
	if gotIntra != wantIntra || len(got)-gotIntra != wantInter {
		t.Fatalf("post-churn split (%d,%d), oracle (%d,%d)", gotIntra, len(got)-gotIntra, wantIntra, wantInter)
	}
}

// TestClusterSamplerStorm hammers independent cluster views from many
// goroutines under the race detector: the sampler must keep all state
// per-view (no hidden shared scratch), and every goroutine must see
// oracle-exact splits.
func TestClusterSamplerStorm(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clusterOf := clusterMod(4)
			self := wire.NodeID(w)
			v := NewClusterView(self, idRange(64), clusterOf)
			rng := rand.New(rand.NewSource(int64(w)))
			nIntra, nInter := len(v.intra), len(v.inter)
			buf := make([]wire.NodeID, 0, 16)
			for i := 0; i < 5000; i++ {
				kIntra, kInter := rng.Intn(8), rng.Intn(4)
				buf = v.AppendSplit(buf[:0], rng, kIntra, kInter)
				wantIntra, wantInter := splitOracle(kIntra, kInter, nIntra, nInter)
				gotIntra := 0
				for _, id := range buf {
					if clusterOf(id) == clusterOf(self) {
						gotIntra++
					}
				}
				if gotIntra != wantIntra || len(buf)-gotIntra != wantInter {
					t.Errorf("worker %d iter %d: split (%d,%d), oracle (%d,%d)",
						w, i, gotIntra, len(buf)-gotIntra, wantIntra, wantInter)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

package membership

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/wire"
)

// buildCyclonNetwork wires n Cyclon nodes into a simulated network with a
// ring bootstrap (each node initially knows its few successors).
func buildCyclonNetwork(t *testing.T, n int, cfg CyclonConfig, seed int64) (*simnet.Network, []*Cyclon) {
	t.Helper()
	net := simnet.New(simnet.Config{
		Seed:    seed,
		Latency: simnet.ConstantLatency(10 * time.Millisecond),
	})
	services := make([]*Cyclon, n)
	for i := 0; i < n; i++ {
		bootstrap := []wire.NodeID{
			wire.NodeID((i + 1) % n),
			wire.NodeID((i + 2) % n),
			wire.NodeID((i + 3) % n),
		}
		services[i] = NewCyclon(cfg, bootstrap)
		id := net.AddNode(services[i], simnet.NodeConfig{})
		if int(id) != i {
			t.Fatalf("node id %d, want %d", id, i)
		}
	}
	return net, services
}

func TestCyclonConvergesToWellMixedViews(t *testing.T) {
	const n = 60
	cfg := CyclonConfig{ViewSize: 12, ShuffleLen: 6, Period: 500 * time.Millisecond}
	net, services := buildCyclonNetwork(t, n, cfg, 1)
	net.Run(60 * time.Second)

	// Every view should be full and contain no self or duplicate entries.
	indegree := make([]int, n)
	for i, c := range services {
		view := c.ViewDescriptors()
		// A node with an in-flight shuffle has momentarily removed its
		// target, so the view may be one short of capacity.
		if len(view) < cfg.ViewSize-1 || len(view) > cfg.ViewSize {
			t.Fatalf("node %d view size %d, want %d or %d", i, len(view), cfg.ViewSize-1, cfg.ViewSize)
		}
		seen := map[wire.NodeID]bool{}
		for _, d := range view {
			if d.Node == wire.NodeID(i) {
				t.Fatalf("node %d has itself in its view", i)
			}
			if seen[d.Node] {
				t.Fatalf("node %d has duplicate descriptor for %d", i, d.Node)
			}
			seen[d.Node] = true
			indegree[d.Node]++
		}
	}
	// In-degree should be roughly balanced (random-graph-like), far from the
	// initial ring (where successors of low-index nodes dominate).
	lo, hi := indegree[0], indegree[0]
	for _, d := range indegree {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if lo == 0 {
		t.Fatal("some node vanished from all views")
	}
	if hi > 5*cfg.ViewSize {
		t.Fatalf("in-degree too skewed: max %d for mean %d", hi, cfg.ViewSize)
	}
	if services[0].Shuffles == 0 {
		t.Fatal("no shuffles happened")
	}
}

func TestCyclonGraphConnectivity(t *testing.T) {
	const n = 60
	cfg := CyclonConfig{ViewSize: 10, ShuffleLen: 5, Period: 500 * time.Millisecond}
	net, services := buildCyclonNetwork(t, n, cfg, 2)
	net.Run(30 * time.Second)

	// BFS over the union of directed view edges from node 0.
	adj := make([][]wire.NodeID, n)
	for i, c := range services {
		for _, d := range c.ViewDescriptors() {
			adj[i] = append(adj[i], d.Node)
		}
	}
	visited := make([]bool, n)
	queue := []wire.NodeID{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if !visited[next] {
				visited[next] = true
				count++
				queue = append(queue, next)
			}
		}
	}
	if count != n {
		t.Fatalf("view graph not connected: reached %d of %d", count, n)
	}
}

func TestCyclonEvictsDeadPeers(t *testing.T) {
	const n = 30
	cfg := CyclonConfig{ViewSize: 8, ShuffleLen: 4,
		Period: 500 * time.Millisecond, ReplyTimeout: time.Second}
	net, services := buildCyclonNetwork(t, n, cfg, 3)
	net.Run(20 * time.Second)

	// Kill a third of the nodes.
	for i := 0; i < n/3; i++ {
		net.Crash(wire.NodeID(i))
	}
	net.Run(net.Now() + 2*time.Minute)

	// Dead nodes should have (mostly) disappeared from live views: they can
	// no longer inject fresh descriptors, so aging + eviction removes them.
	deadRefs, totalRefs := 0, 0
	for i := n / 3; i < n; i++ {
		for _, d := range services[i].ViewDescriptors() {
			totalRefs++
			if int(d.Node) < n/3 {
				deadRefs++
			}
		}
	}
	if totalRefs == 0 {
		t.Fatal("live views are empty")
	}
	if frac := float64(deadRefs) / float64(totalRefs); frac > 0.10 {
		t.Fatalf("dead nodes still occupy %.0f%% of live view slots", frac*100)
	}
	evictions := 0
	for i := n / 3; i < n; i++ {
		evictions += services[i].Evictions
	}
	if evictions == 0 {
		t.Fatal("no shuffle-timeout evictions recorded")
	}
}

func TestCyclonSelectPeers(t *testing.T) {
	cfg := CyclonConfig{}
	c := NewCyclon(cfg, []wire.NodeID{1, 2, 3, 4, 5})
	rng := rand.New(rand.NewSource(4))
	sel := c.SelectPeers(rng, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d, want 3", len(sel))
	}
	seen := map[wire.NodeID]bool{}
	for _, id := range sel {
		if seen[id] {
			t.Fatal("duplicate peer")
		}
		seen[id] = true
	}
	if got := c.SelectPeers(rng, 100); len(got) != 5 {
		t.Fatalf("oversized k returned %d, want 5", len(got))
	}
	if got := c.SelectPeers(rng, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestCyclonBootstrapRespectsViewSize(t *testing.T) {
	cfg := CyclonConfig{ViewSize: 3}
	boot := []wire.NodeID{1, 2, 3, 4, 5, 6}
	c := NewCyclon(cfg, boot)
	if c.PeerCount() != 3 {
		t.Fatalf("bootstrap overfilled view: %d", c.PeerCount())
	}
}

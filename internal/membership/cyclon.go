package membership

import (
	"math/rand"
	"time"

	"repro/internal/env"
	"repro/internal/wire"
)

// CyclonConfig parameterizes the gossip-based peer-sampling service.
type CyclonConfig struct {
	// ViewSize is the partial view capacity. Must exceed the largest
	// fanout the dissemination layer will request. Default 20.
	ViewSize int
	// ShuffleLen is the number of descriptors exchanged per shuffle.
	// Default 8.
	ShuffleLen int
	// Period is the shuffle interval. Default 1s.
	Period time.Duration
	// ReplyTimeout evicts the shuffle target if it does not answer in
	// time — Cyclon's failure-detection mechanism. Default 2s.
	ReplyTimeout time.Duration
}

func (c *CyclonConfig) applyDefaults() {
	if c.ViewSize == 0 {
		c.ViewSize = 20
	}
	if c.ShuffleLen == 0 {
		c.ShuffleLen = 8
	}
	if c.Period == 0 {
		c.Period = time.Second
	}
	if c.ReplyTimeout == 0 {
		c.ReplyTimeout = 2 * time.Second
	}
}

// Cyclon is a peer-sampling service in the style of Voulgaris, Gavidia and
// van Steen (JNSM 2005): nodes periodically swap slices of their partial
// views, replacing their oldest descriptor. The emergent communication graph
// is close to a random regular graph, so sampling the view approximates the
// uniform selection HEAP's analysis assumes — without global membership.
//
// Cyclon implements env.Handler for ShuffleReq/ShuffleReply messages and
// Sampler for the dissemination layer.
type Cyclon struct {
	cfg  CyclonConfig
	rt   env.Runtime
	view []wire.PeerDescriptor

	ticker *env.Ticker
	// pending is the in-flight shuffle target awaiting a reply, plus the
	// descriptors we sent it (to use as replacement candidates).
	pendingTarget wire.NodeID
	pendingSent   []wire.PeerDescriptor
	pendingTimer  env.Timer

	// Shuffles counts initiated shuffles (for tests/metrics).
	Shuffles int
	// Evictions counts peers dropped for not answering (failure detection).
	Evictions int
}

var (
	_ env.Handler = (*Cyclon)(nil)
	_ Sampler     = (*Cyclon)(nil)
)

// NewCyclon creates a peer-sampling service seeded with the given bootstrap
// peers (typically a handful of contact nodes).
func NewCyclon(cfg CyclonConfig, bootstrap []wire.NodeID) *Cyclon {
	cfg.applyDefaults()
	c := &Cyclon{cfg: cfg, pendingTarget: wire.NodeNone}
	for _, p := range bootstrap {
		if len(c.view) >= cfg.ViewSize {
			break
		}
		c.addDescriptor(wire.PeerDescriptor{Node: p, Age: 0})
	}
	return c
}

// Start implements env.Handler.
func (c *Cyclon) Start(rt env.Runtime) {
	c.rt = rt
	phase := time.Duration(rt.Rand().Int63n(int64(c.cfg.Period)))
	c.ticker = env.NewTicker(rt, phase, c.cfg.Period, c.shuffle)
}

// Stop implements env.Handler.
func (c *Cyclon) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
	if c.pendingTimer != nil {
		c.pendingTimer.Stop()
	}
}

// PeerCount implements Sampler.
func (c *Cyclon) PeerCount() int { return len(c.view) }

// SelectPeers implements Sampler by sampling the partial view without
// replacement.
func (c *Cyclon) SelectPeers(rng *rand.Rand, k int) []wire.NodeID {
	return c.AppendPeers(nil, rng, k)
}

// AppendPeers implements PeerAppender: SelectPeers into a caller-owned
// buffer, consuming exactly the same rng draws.
func (c *Cyclon) AppendPeers(dst []wire.NodeID, rng *rand.Rand, k int) []wire.NodeID {
	n := len(c.view)
	if k > n {
		k = n
	}
	if k <= 0 {
		return dst
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		c.view[i], c.view[j] = c.view[j], c.view[i]
	}
	for i := 0; i < k; i++ {
		dst = append(dst, c.view[i].Node)
	}
	return dst
}

// ViewDescriptors returns a copy of the current view (for tests).
func (c *Cyclon) ViewDescriptors() []wire.PeerDescriptor {
	out := make([]wire.PeerDescriptor, len(c.view))
	copy(out, c.view)
	return out
}

// shuffle runs one Cyclon round: age the view, pick the oldest peer as the
// target, and swap ShuffleLen descriptors with it.
func (c *Cyclon) shuffle() {
	if len(c.view) == 0 {
		return
	}
	if c.pendingTarget != wire.NodeNone {
		// Previous shuffle still outstanding; its timeout handles eviction.
		return
	}
	oldest := 0
	for i := range c.view {
		c.view[i].Age++
		if c.view[i].Age > c.view[oldest].Age {
			oldest = i
		}
	}
	target := c.view[oldest].Node
	// Remove the target from the view; it is replaced by the exchange.
	c.view[oldest] = c.view[len(c.view)-1]
	c.view = c.view[:len(c.view)-1]

	sent := c.sampleDescriptors(c.cfg.ShuffleLen - 1)
	// Self descriptor with age 0 lets the target learn about us.
	sent = append(sent, wire.PeerDescriptor{Node: c.rt.ID(), Age: 0})

	c.pendingTarget = target
	c.pendingSent = sent
	c.pendingTimer = c.rt.After(c.cfg.ReplyTimeout, func() {
		// No reply: consider the target failed (standard Cyclon eviction).
		if c.pendingTarget == target {
			c.pendingTarget = wire.NodeNone
			c.pendingSent = nil
			c.Evictions++
		}
	})
	c.Shuffles++
	c.rt.Send(target, &wire.ShuffleReq{Descriptors: sent})
}

// Receive implements env.Handler.
func (c *Cyclon) Receive(from wire.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.ShuffleReq:
		reply := c.sampleDescriptors(c.cfg.ShuffleLen)
		c.rt.Send(from, &wire.ShuffleReply{Descriptors: reply})
		c.merge(msg.Descriptors, reply, from)
	case *wire.ShuffleReply:
		if from != c.pendingTarget {
			return // late or stray reply
		}
		sent := c.pendingSent
		c.pendingTarget = wire.NodeNone
		c.pendingSent = nil
		if c.pendingTimer != nil {
			c.pendingTimer.Stop()
			c.pendingTimer = nil
		}
		c.merge(msg.Descriptors, sent, from)
	}
}

// sampleDescriptors returns up to k random descriptors from the view
// (copies, not aliases).
func (c *Cyclon) sampleDescriptors(k int) []wire.PeerDescriptor {
	n := len(c.view)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	rng := c.rt.Rand()
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		c.view[i], c.view[j] = c.view[j], c.view[i]
	}
	out := make([]wire.PeerDescriptor, k)
	copy(out, c.view[:k])
	return out
}

// merge folds received descriptors into the view: skip self and duplicates
// (keeping the fresher copy), fill free slots, then replace entries that
// were shipped to the peer (Cyclon's swap semantics), and finally replace
// the oldest entries.
func (c *Cyclon) merge(received, shipped []wire.PeerDescriptor, from wire.NodeID) {
	// The exchange itself is evidence the peer is alive: (re)admit it fresh.
	received = append(received, wire.PeerDescriptor{Node: from, Age: 0})
	shippedSet := make(map[wire.NodeID]bool, len(shipped))
	for _, d := range shipped {
		shippedSet[d.Node] = true
	}
	for _, d := range received {
		if d.Node == c.rt.ID() {
			continue
		}
		if i := c.find(d.Node); i >= 0 {
			if d.Age < c.view[i].Age {
				c.view[i].Age = d.Age
			}
			continue
		}
		if len(c.view) < c.cfg.ViewSize {
			c.view = append(c.view, d)
			continue
		}
		// Prefer evicting a descriptor we just shipped; else the oldest.
		victim := -1
		for i := range c.view {
			if shippedSet[c.view[i].Node] {
				victim = i
				break
			}
		}
		if victim < 0 {
			victim = 0
			for i := range c.view {
				if c.view[i].Age > c.view[victim].Age {
					victim = i
				}
			}
		}
		c.view[victim] = d
	}
}

func (c *Cyclon) find(id wire.NodeID) int {
	for i := range c.view {
		if c.view[i].Node == id {
			return i
		}
	}
	return -1
}

func (c *Cyclon) addDescriptor(d wire.PeerDescriptor) {
	if c.find(d.Node) >= 0 {
		return
	}
	c.view = append(c.view, d)
}

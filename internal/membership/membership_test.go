package membership

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/wire"
)

func TestViewAddRemoveContains(t *testing.T) {
	v := NewView(0, []wire.NodeID{0, 1, 2, 3}) // self (0) must be excluded
	if v.PeerCount() != 3 {
		t.Fatalf("peer count = %d, want 3 (self excluded)", v.PeerCount())
	}
	if v.Contains(0) {
		t.Fatal("view contains self")
	}
	v.Add(0) // no-op
	if v.PeerCount() != 3 {
		t.Fatal("Add(self) changed the view")
	}
	v.Add(2) // duplicate no-op
	if v.PeerCount() != 3 {
		t.Fatal("duplicate Add changed the view")
	}
	v.Remove(2)
	if v.Contains(2) || v.PeerCount() != 2 {
		t.Fatal("Remove failed")
	}
	v.Remove(2) // absent no-op
	if v.PeerCount() != 2 {
		t.Fatal("Remove of absent peer changed the view")
	}
	v.Add(10)
	if !v.Contains(10) || v.PeerCount() != 3 {
		t.Fatal("Add after Remove failed")
	}
}

func TestViewSelectPeersNoDuplicatesNoSelf(t *testing.T) {
	ids := make([]wire.NodeID, 50)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	v := NewView(7, ids)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(12)
		sel := v.SelectPeers(rng, k)
		if len(sel) != min(k, 49) {
			t.Fatalf("selected %d, want %d", len(sel), k)
		}
		seen := map[wire.NodeID]bool{}
		for _, id := range sel {
			if id == 7 {
				t.Fatal("selected self")
			}
			if seen[id] {
				t.Fatalf("duplicate selection of %d", id)
			}
			seen[id] = true
		}
	}
}

func TestViewSelectPeersWholeViewWhenKTooLarge(t *testing.T) {
	v := NewView(0, []wire.NodeID{1, 2, 3})
	rng := rand.New(rand.NewSource(2))
	sel := v.SelectPeers(rng, 10)
	if len(sel) != 3 {
		t.Fatalf("selected %d, want all 3", len(sel))
	}
	if got := v.SelectPeers(rng, 0); len(got) != 0 {
		t.Fatalf("k=0 returned %d peers", len(got))
	}
	if got := v.SelectPeers(rng, -1); len(got) != 0 {
		t.Fatalf("k=-1 returned %d peers", len(got))
	}
}

func TestViewSamplingIsApproximatelyUniform(t *testing.T) {
	const n = 30
	const trials = 30000
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	v := NewView(wire.NodeID(n), ids) // self outside the peer set
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		for _, id := range v.SelectPeers(rng, 3) {
			counts[id]++
		}
	}
	want := float64(trials*3) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.15 {
			t.Fatalf("peer %d selected %d times, want ~%.0f (+-15%%)", i, c, want)
		}
	}
}

func TestViewSamplingAfterRemovals(t *testing.T) {
	ids := make([]wire.NodeID, 20)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	v := NewView(100, ids)
	for i := 0; i < 10; i++ {
		v.Remove(wire.NodeID(i))
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		for _, id := range v.SelectPeers(rng, 5) {
			if id < 10 {
				t.Fatalf("selected removed peer %d", id)
			}
		}
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory(5)
	if d.Size() != 5 {
		t.Fatalf("size = %d", d.Size())
	}
	v := d.ViewFor(2)
	if v.PeerCount() != 4 || v.Contains(2) {
		t.Fatal("ViewFor built wrong view")
	}
	ids := d.IDs()
	ids[0] = 99 // must not alias internal state
	if d.IDs()[0] == 99 {
		t.Fatal("IDs returned aliased slice")
	}
}

func TestDirectoryPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDirectory(0) did not panic")
		}
	}()
	NewDirectory(0)
}

func TestViewPeersCopy(t *testing.T) {
	v := NewView(0, []wire.NodeID{1, 2, 3})
	p := v.Peers()
	p[0] = 99
	if v.Contains(99) {
		t.Fatal("Peers returned aliased slice")
	}
}

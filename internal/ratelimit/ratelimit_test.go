package ratelimit

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestValidation(t *testing.T) {
	size := func(int) int { return 1 }
	send := func(int) {}
	if _, err := NewSender(0, 0, size, send); err == nil {
		t.Error("zero queue cap accepted")
	}
	if _, err := NewSender[int](0, 1, nil, send); err == nil {
		t.Error("nil sizeOf accepted")
	}
	if _, err := NewSender[int](0, 1, size, nil); err == nil {
		t.Error("nil send accepted")
	}
}

func TestUnlimitedSendsImmediately(t *testing.T) {
	var got atomic.Int64
	s, err := NewSender(0, 100, func(int) int { return 1000 }, func(int) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		if !s.Enqueue(i) {
			t.Fatal("enqueue failed")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 50 {
		t.Fatalf("sent %d of 50", got.Load())
	}
	if s.Bytes() != 50*1000 {
		t.Fatalf("bytes = %d, want 50000", s.Bytes())
	}
}

func TestRatePacing(t *testing.T) {
	// 100 items of 1250 bytes at 1 Mbps = 10ms each = ~1s total. Use a
	// smaller run to keep the test fast: 20 items = ~200ms.
	var got atomic.Int64
	s, err := NewSender(1_000_000, 100, func(int) int { return 1250 }, func(int) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	for i := 0; i < 20; i++ {
		s.Enqueue(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	if got.Load() != 20 {
		t.Fatalf("sent %d of 20", got.Load())
	}
	// 20 * 10ms = 200ms of serialization. Allow generous scheduling slop
	// upward but fail if pacing was absent (much faster than 150ms).
	if elapsed < 150*time.Millisecond {
		t.Fatalf("20 items took %v; pacing absent (want >= ~200ms)", elapsed)
	}
}

func TestTailDropWhenFull(t *testing.T) {
	block := make(chan struct{})
	s, err := NewSender(1, 4, func(int) int { return 1 << 20 }, func(int) { <-block })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		s.Close()
	}()
	// Fill queue (4) + the one the drain loop is stuck on; the rest drop.
	dropped := 0
	for i := 0; i < 20; i++ {
		if !s.Enqueue(i) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no drops despite full queue")
	}
	if s.Dropped() != int64(dropped) {
		t.Fatalf("Dropped() = %d, want %d", s.Dropped(), dropped)
	}
}

func TestCloseStopsAndIsIdempotent(t *testing.T) {
	s, err := NewSender(0, 10, func(int) int { return 1 }, func(int) {})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if s.Enqueue(1) {
		t.Fatal("enqueue succeeded after close")
	}
}

func TestCloseUnblocksPacedWait(t *testing.T) {
	// An item needing a long pacing wait must not block Close.
	s, err := NewSender(8, 10, func(int) int { return 1 << 20 }, func(int) {})
	if err != nil {
		t.Fatal(err)
	}
	s.Enqueue(1)
	s.Enqueue(2) // second item waits ~forever at 1 B/s
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked on paced wait")
	}
}

func TestQueueLen(t *testing.T) {
	block := make(chan struct{})
	s, err := NewSender(0, 10, func(int) int { return 1 }, func(int) { <-block })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		s.Close()
	}()
	for i := 0; i < 5; i++ {
		s.Enqueue(i)
	}
	time.Sleep(10 * time.Millisecond) // drain loop picks up one
	if l := s.QueueLen(); l < 3 || l > 5 {
		t.Fatalf("queue length %d, want ~4", l)
	}
}

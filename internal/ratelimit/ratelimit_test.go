package ratelimit

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestValidation(t *testing.T) {
	size := func(int) int { return 1 }
	send := func(int) {}
	if _, err := NewSender(0, 0, size, send); err == nil {
		t.Error("zero queue cap accepted")
	}
	if _, err := NewSender[int](0, 1, nil, send); err == nil {
		t.Error("nil sizeOf accepted")
	}
	if _, err := NewSender[int](0, 1, size, nil); err == nil {
		t.Error("nil send accepted")
	}
}

func TestUnlimitedSendsImmediately(t *testing.T) {
	var got atomic.Int64
	s, err := NewSender(0, 100, func(int) int { return 1000 }, func(int) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		if !s.Enqueue(i) {
			t.Fatal("enqueue failed")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 50 {
		t.Fatalf("sent %d of 50", got.Load())
	}
	if s.Bytes() != 50*1000 {
		t.Fatalf("bytes = %d, want 50000", s.Bytes())
	}
}

func TestRatePacing(t *testing.T) {
	// 100 items of 1250 bytes at 1 Mbps = 10ms each = ~1s total. Use a
	// smaller run to keep the test fast: 20 items = ~200ms.
	var got atomic.Int64
	s, err := NewSender(1_000_000, 100, func(int) int { return 1250 }, func(int) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	for i := 0; i < 20; i++ {
		s.Enqueue(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	if got.Load() != 20 {
		t.Fatalf("sent %d of 20", got.Load())
	}
	// 20 * 10ms = 200ms of serialization. Allow generous scheduling slop
	// upward but fail if pacing was absent (much faster than 150ms).
	if elapsed < 150*time.Millisecond {
		t.Fatalf("20 items took %v; pacing absent (want >= ~200ms)", elapsed)
	}
}

func TestTailDropWhenFull(t *testing.T) {
	block := make(chan struct{})
	s, err := NewSender(1, 4, func(int) int { return 1 << 20 }, func(int) { <-block })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		s.Close()
	}()
	// Fill queue (4) + the one the drain loop is stuck on; the rest drop.
	dropped := 0
	for i := 0; i < 20; i++ {
		if !s.Enqueue(i) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no drops despite full queue")
	}
	if s.Dropped() != int64(dropped) {
		t.Fatalf("Dropped() = %d, want %d", s.Dropped(), dropped)
	}
}

func TestCloseStopsAndIsIdempotent(t *testing.T) {
	s, err := NewSender(0, 10, func(int) int { return 1 }, func(int) {})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if s.Enqueue(1) {
		t.Fatal("enqueue succeeded after close")
	}
}

func TestCloseUnblocksPacedWait(t *testing.T) {
	// An item needing a long pacing wait must not block Close.
	s, err := NewSender(8, 10, func(int) int { return 1 << 20 }, func(int) {})
	if err != nil {
		t.Fatal(err)
	}
	s.Enqueue(1)
	s.Enqueue(2) // second item waits ~forever at 1 B/s
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked on paced wait")
	}
}

func TestSetRateUnblocksPacedWait(t *testing.T) {
	// An item stuck behind a multi-second wait at 8 bps must be released
	// promptly when a capability-trace rewrite unthrottles the sender —
	// SetRate may not wait for the old pacing deadline.
	var got atomic.Int64
	s, err := NewSender(8, 10, func(int) int { return 1 << 20 }, func(int) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Enqueue(1)
	time.Sleep(20 * time.Millisecond) // the drain loop is now paced on item 1
	s.SetRate(0)                      // unthrottle
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 1 {
		t.Fatal("SetRate(0) did not release the item the loop was pacing")
	}
}

// TestConcurrentSetRateRace is the -race regression test for concurrent
// trace rewrites: SetRate storms from several goroutines race against
// Enqueue, the drain loop, the statistics accessors, and finally Close.
// It passes when the race detector stays silent and every accepted item is
// eventually sent exactly once.
func TestConcurrentSetRateRace(t *testing.T) {
	var sent atomic.Int64
	s, err := NewSender(64_000_000, 1024, func(int) int { return 100 }, func(int) { sent.Add(1) })
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers  = 4
		rewrites = 200
		items    = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rates := []int64{0, 8_000, 1_000_000, 64_000_000, -1}
			for i := 0; i < rewrites; i++ {
				s.SetRate(rates[(w+i)%len(rates)])
			}
		}()
	}
	accepted := int64(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			if s.Enqueue(i) {
				atomic.AddInt64(&accepted, 1)
			}
			if i%16 == 0 {
				_ = s.Sent()
				_ = s.Bytes()
				_ = s.QueueLen()
			}
		}
	}()
	wg.Wait()

	// Leave the sender unthrottled so the queue drains, then require every
	// accepted item to be sent exactly once.
	s.SetRate(0)
	deadline := time.Now().Add(5 * time.Second)
	for sent.Load() < atomic.LoadInt64(&accepted) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got, want := sent.Load(), atomic.LoadInt64(&accepted); got != want {
		t.Fatalf("sent %d of %d accepted items", got, want)
	}
	s.Close()
	if s.Sent() != atomic.LoadInt64(&accepted) {
		t.Fatalf("Sent() = %d after close, want %d", s.Sent(), accepted)
	}
}

// TestThroughputAccounting checks the adaptation-facing accessors against a
// fully drained sender: BytesSent equals the sum of accepted sizes and the
// queued gauge returns to zero.
func TestThroughputAccounting(t *testing.T) {
	var sent atomic.Int64
	s, err := NewSender(0, 64, func(int) int { return 250 }, func(int) { sent.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	accepted := 0
	for i := 0; i < 32; i++ {
		if s.Enqueue(i) {
			accepted++
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for sent.Load() < int64(accepted) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got, want := s.BytesSent(), int64(accepted)*250; got != want {
		t.Fatalf("BytesSent() = %d, want %d", got, want)
	}
	if q := s.QueuedBytes(); q != 0 {
		t.Fatalf("QueuedBytes() = %d after drain, want 0", q)
	}
	if b := s.QueueBacklog(); b != 0 {
		t.Fatalf("QueueBacklog() = %v for an unlimited sender, want 0", b)
	}
}

func TestQueueBacklogReflectsRate(t *testing.T) {
	block := make(chan struct{})
	// 8000 bps = 1000 B/s: each 500-byte item queued is 500 ms of backlog.
	s, err := NewSender(8000, 16, func(int) int { return 500 }, func(int) { <-block })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		s.Close()
	}()
	for i := 0; i < 4; i++ {
		s.Enqueue(i)
	}
	// All four items are queued or pacing: 2000 bytes = 2 s at 1000 B/s.
	if got := s.QueueBacklog(); got != 2*time.Second {
		t.Fatalf("QueueBacklog() = %v, want 2s", got)
	}
	s.SetRate(16000) // doubling the rate halves the drain time
	if got := s.QueueBacklog(); got != time.Second {
		t.Fatalf("QueueBacklog() after SetRate = %v, want 1s", got)
	}
}

// TestConcurrentThroughputPollsRace is the -race regression test for the
// adaptation sampling path: pollers read BytesSent/QueuedBytes/QueueBacklog
// while producers enqueue and SetRate churns — the achieved-throughput
// computation must need no locks and the invariants (monotonic BytesSent,
// non-negative QueuedBytes, conservation of accepted bytes) must hold at
// every interleaving.
func TestConcurrentThroughputPollsRace(t *testing.T) {
	var sent atomic.Int64
	s, err := NewSender(64_000_000, 1024, func(int) int { return 100 }, func(int) { sent.Add(1) })
	if err != nil {
		t.Fatal(err)
	}

	const items = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSent int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := s.BytesSent()
				if b < lastSent {
					t.Error("BytesSent went backwards")
					return
				}
				lastSent = b
				if q := s.QueuedBytes(); q < 0 {
					t.Errorf("QueuedBytes() = %d, want >= 0", q)
					return
				}
				if s.QueueBacklog() < 0 {
					t.Error("negative QueueBacklog")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rates := []int64{8_000, 1_000_000, 0, 64_000_000}
		for i := 0; i < 200; i++ {
			s.SetRate(rates[i%len(rates)])
		}
	}()
	accepted := int64(0)
	for i := 0; i < items; i++ {
		if s.Enqueue(i) {
			accepted++
		}
	}
	s.SetRate(0)
	deadline := time.Now().Add(5 * time.Second)
	for sent.Load() < accepted && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	s.Close()
	// Conservation after Close: every accepted byte was either transmitted
	// or discarded by Close's sweep, and the queued gauge reads zero — a
	// closed sender must not report backlog (on a starved single-core run
	// the 5 s drain window can expire with items still queued, so the sweep
	// is exercised here too).
	if q := s.QueuedBytes(); q != 0 {
		t.Fatalf("QueuedBytes() = %d after Close, want 0", q)
	}
	if got, want := s.BytesSent()+s.DiscardedBytes(), accepted*100; got != want {
		t.Fatalf("BytesSent+DiscardedBytes = %d, want %d accepted bytes", got, want)
	}
}

func TestQueueLen(t *testing.T) {
	block := make(chan struct{})
	s, err := NewSender(0, 10, func(int) int { return 1 }, func(int) { <-block })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		s.Close()
	}()
	for i := 0; i < 5; i++ {
		s.Enqueue(i)
	}
	time.Sleep(10 * time.Millisecond) // drain loop picks up one
	if l := s.QueueLen(); l < 3 || l > 5 {
		t.Fatalf("queue length %d, want ~4", l)
	}
}

// TestConcurrentBacklogPollRace is the heapnode usage pattern: the node's
// engine goroutine enqueues and rewrites the pacing rate (capability drift),
// while a second goroutine — the status line — polls QueueBacklog and the
// queue gauges the whole time. Run under -race, this is a regression test
// that the backlog computation stays on atomic loads only; it must also
// never return a negative or absurd duration while the rate is being
// rewritten underneath it.
func TestConcurrentBacklogPollRace(t *testing.T) {
	s, err := NewSender(1_000_000, 2048, func(int) int { return 200 }, func(int) {})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var bad atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ { // two pollers: status line + adaptation sampler
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := s.QueueBacklog()
				if b < 0 || b > time.Hour {
					bad.Add(1)
				}
				if s.QueuedBytes() < 0 {
					bad.Add(1)
				}
				_ = s.QueueLen()
				_ = s.BytesSent()
				_ = s.AcceptedBytes()
			}
		}()
	}

	rates := []int64{0, 4_000, 250_000, 16_000_000, -1, 1_000_000}
	for i := 0; i < 2000; i++ {
		s.SetRate(rates[i%len(rates)])
		s.Enqueue(i)
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d inconsistent backlog reads", n)
	}
}

// TestCloseZerosQueuedGauge is the regression for Close leaving the queued
// gauge charged for discarded items: a sender closed with items still
// queued must report zero QueuedBytes and QueueBacklog afterwards — the
// gauges feed udpnet's "truthful after Close" backlog accessors — with the
// discarded bytes accounted explicitly.
func TestCloseZerosQueuedGauge(t *testing.T) {
	// 8 bps: the first item paces for ~17 minutes, so everything is still
	// pending when Close lands.
	s, err := NewSender(8, 16, func(int) int { return 1000 }, func(int) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !s.Enqueue(i) {
			t.Fatal("enqueue failed")
		}
	}
	if s.QueuedBytes() == 0 {
		t.Fatal("test setup: nothing queued")
	}
	s.Close()
	if q := s.QueuedBytes(); q != 0 {
		t.Fatalf("QueuedBytes() = %d after Close, want 0", q)
	}
	if b := s.QueueBacklog(); b != 0 {
		t.Fatalf("QueueBacklog() = %v after Close, want 0", b)
	}
	if got, want := s.BytesSent()+s.DiscardedBytes(), int64(5*1000); got != want {
		t.Fatalf("BytesSent+DiscardedBytes = %d, want %d", got, want)
	}
}

// TestEnqueueAfterCloseNotCountedDropped pins the closed-sender rejection
// semantics: Enqueue reports false but must not pollute the tail-drop
// congestion signal the adaptation layer reads, nor touch the gauges.
func TestEnqueueAfterCloseNotCountedDropped(t *testing.T) {
	s, err := NewSender(0, 4, func(int) int { return 10 }, func(int) {})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	for i := 0; i < 3; i++ {
		if s.Enqueue(i) {
			t.Fatal("enqueue succeeded after Close")
		}
	}
	if d := s.Dropped(); d != 0 {
		t.Fatalf("Dropped() = %d after post-Close enqueues, want 0 (shutdown is not congestion)", d)
	}
	if q := s.QueuedBytes(); q != 0 {
		t.Fatalf("QueuedBytes() = %d, want 0", q)
	}
	if a := s.AcceptedBytes(); a != 0 {
		t.Fatalf("AcceptedBytes() = %d, want 0", a)
	}
}

// TestEnqueueCloseRace is the -race regression for the Enqueue-after-Close
// window: the stop check and the channel send used to be non-atomic, so an
// item could slip into the queue after Close's sweep and inflate
// queued/accepted forever. Hammer Enqueue from several goroutines while
// Close lands; afterwards the books must balance exactly with a zero gauge.
func TestEnqueueCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		var sentBytes atomic.Int64
		s, err := NewSender(0, 64, func(int) int { return 7 }, func(int) { sentBytes.Add(7) })
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					s.Enqueue(i)
				}
			}()
		}
		s.Close()
		wg.Wait()
		if q := s.QueuedBytes(); q != 0 {
			t.Fatalf("round %d: QueuedBytes() = %d after Close+Enqueue race, want 0", round, q)
		}
		if got, want := s.BytesSent()+s.DiscardedBytes(), s.AcceptedBytes(); got != want {
			t.Fatalf("round %d: BytesSent+DiscardedBytes = %d, want AcceptedBytes %d (stranded items)",
				round, got, want)
		}
	}
}

// TestBatchDrainFlushesReleasedRuns pins the batch-aware drain: items the
// pacing clock has released together leave in one flush (bounded by
// batchMax), in FIFO order, with exact byte accounting.
func TestBatchDrainFlushesReleasedRuns(t *testing.T) {
	const batchMax = 8
	gate := make(chan struct{})
	var (
		mu      sync.Mutex
		flushes [][]int
		first   = true
	)
	s, err := NewBatchSender(0, 128, batchMax, func(int) int { return 50 }, func(items []int) {
		if first {
			// Block the first flush so the queue fills behind it and the
			// next flushes have released runs to coalesce.
			first = false
			<-gate
		}
		mu.Lock()
		flushes = append(flushes, append([]int(nil), items...))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const items = 60
	accepted := 0
	for i := 0; i < items; i++ {
		if s.Enqueue(i) {
			accepted++
		}
	}
	close(gate)
	deadline := time.Now().Add(2 * time.Second)
	for s.Sent() < int64(accepted) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Sent() != int64(accepted) {
		t.Fatalf("sent %d of %d", s.Sent(), accepted)
	}
	mu.Lock()
	defer mu.Unlock()
	var order []int
	sawBatch := false
	for _, f := range flushes {
		if len(f) > batchMax {
			t.Fatalf("flush of %d items exceeds batchMax %d", len(f), batchMax)
		}
		if len(f) > 1 {
			sawBatch = true
		}
		order = append(order, f...)
	}
	if !sawBatch {
		t.Fatal("no multi-item flush despite a backed-up unlimited queue")
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("FIFO violated: item %d flushed before %d", order[i-1], order[i])
		}
	}
	if got, want := s.BytesSent(), int64(accepted*50); got != want {
		t.Fatalf("BytesSent() = %d, want %d", got, want)
	}
	if q := s.QueuedBytes(); q != 0 {
		t.Fatalf("QueuedBytes() = %d after drain, want 0", q)
	}
}

// TestBatchDrainRespectsPacing: batching coalesces released items only —
// it must never defeat the serialization clock. 20 items of 1250 B at
// 1 Mbps are 10 ms each (~200 ms total) regardless of batchMax.
func TestBatchDrainRespectsPacing(t *testing.T) {
	var got atomic.Int64
	s, err := NewBatchSender(1_000_000, 100, 16, func(int) int { return 1250 }, func(items []int) {
		got.Add(int64(len(items)))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	for i := 0; i < 20; i++ {
		s.Enqueue(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 20 {
		t.Fatalf("sent %d of 20", got.Load())
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("20 items took %v; batching defeated pacing (want >= ~200ms)", elapsed)
	}
}

// TestBatchDrainConcurrentSetRateRace is the -race regression for the
// batch-aware drain: SetRate storms, concurrent enqueuers, and a mid-flight
// Close against a batching sender. Afterwards the conservation invariant
// must hold exactly — accepted = sent-bytes + discarded, queued = 0, no
// item stranded.
func TestBatchDrainConcurrentSetRateRace(t *testing.T) {
	var sentBytes atomic.Int64
	s, err := NewBatchSender(64_000_000, 1024, 32, func(int) int { return 100 }, func(items []int) {
		sentBytes.Add(int64(len(items)) * 100)
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rates := []int64{0, 8_000, 1_000_000, 64_000_000, -1}
			for i := 0; i < 200; i++ {
				s.SetRate(rates[(w+i)%len(rates)])
			}
		}()
	}
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Enqueue(i)
				if i%32 == 0 {
					_ = s.QueueBacklog()
					_ = s.AcceptedBytes()
				}
			}
		}()
	}
	// Close in mid-flight: some items transmit, the rest must be swept.
	time.Sleep(5 * time.Millisecond)
	s.Close()
	wg.Wait()
	if q := s.QueuedBytes(); q != 0 {
		t.Fatalf("QueuedBytes() = %d after Close, want 0", q)
	}
	if b := s.QueueBacklog(); b != 0 {
		t.Fatalf("QueueBacklog() = %v after Close, want 0", b)
	}
	if got, want := s.BytesSent()+s.DiscardedBytes(), s.AcceptedBytes(); got != want {
		t.Fatalf("BytesSent+DiscardedBytes = %d, want AcceptedBytes %d (stranded bytes)", got, want)
	}
	if sb := sentBytes.Load(); sb != s.BytesSent() {
		t.Fatalf("flush saw %d bytes, BytesSent reports %d", sb, s.BytesSent())
	}
}

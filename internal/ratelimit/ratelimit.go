// Package ratelimit implements the paper's application-level bandwidth
// throttling (§3.1): a token-bucket pacer with a FIFO queue in front of it.
// Nodes never push bursts that exceed their upload capacity; excess packets
// wait in the queue and leave as soon as bandwidth allows.
//
// The discrete-event simulator models this behaviour natively
// (internal/simnet); this package provides it for the real-UDP runtime
// (internal/udpnet).
package ratelimit

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Sender paces items of type T through a send function at a fixed bit rate.
// Items queue FIFO; when the queue is full, Enqueue drops (tail drop) —
// a bounded variant of the paper's unbounded application queue.
//
// A batch-aware Sender (NewBatchSender) coalesces items the pacing clock has
// already released into one flush callback — the hook for batched-syscall
// transports (sendmmsg) — without changing the pacing itself: an item leaves
// no earlier than its serialization time allows, batched or not.
type Sender[T any] struct {
	rateBps  atomic.Int64
	sizeOf   func(T) int
	flush    func([]T)
	batchMax int

	queue chan T
	wg    sync.WaitGroup
	stop  chan struct{}
	once  sync.Once
	// stopMu orders Enqueue against Close: Enqueue holds the read side
	// across its stop check and channel send, and Close takes the write
	// side after the drain loop has exited, so no item can slip into the
	// queue between Close's final sweep and the stop flag — every accepted
	// item is either transmitted or accounted as discarded, never stranded.
	stopMu sync.RWMutex
	// rateChanged wakes a drain loop sleeping on the old rate so SetRate
	// takes effect immediately, not after the current item finishes pacing.
	// Buffered with one slot: coalescing rapid rewrites is fine, the loop
	// always reloads the latest rate.
	rateChanged chan struct{}

	sent      atomic.Int64
	dropped   atomic.Int64
	bytes     atomic.Int64
	queued    atomic.Int64 // bytes accepted but not yet transmitted
	accepted  atomic.Int64 // bytes ever accepted (enqueue-counted, monotonic)
	discarded atomic.Int64 // bytes accepted but discarded undelivered by Close
}

// NewSender builds and starts a paced sender. rateBps <= 0 means unlimited.
// sizeOf must return the on-wire size (used for pacing); send performs the
// actual transmission and must not block indefinitely.
func NewSender[T any](rateBps int64, queueCap int, sizeOf func(T) int, send func(T)) (*Sender[T], error) {
	if send == nil {
		return nil, fmt.Errorf("ratelimit: sizeOf and send are required")
	}
	return NewBatchSender(rateBps, queueCap, 1, sizeOf, func(items []T) {
		for _, item := range items {
			send(item)
		}
	})
}

// NewBatchSender builds and starts a paced sender with a batch-aware drain:
// when the pacing clock has released several queued items (or the rate is
// unlimited), up to batchMax of them leave in one flush call instead of one
// call per item. FIFO order, per-item byte accounting, and the SetRate
// re-pacing semantics are identical to the per-item sender; batchMax 1
// degenerates to it exactly.
func NewBatchSender[T any](rateBps int64, queueCap, batchMax int, sizeOf func(T) int, flush func([]T)) (*Sender[T], error) {
	if queueCap <= 0 {
		return nil, fmt.Errorf("ratelimit: queue capacity %d must be positive", queueCap)
	}
	if batchMax <= 0 {
		return nil, fmt.Errorf("ratelimit: batch size %d must be positive", batchMax)
	}
	if sizeOf == nil || flush == nil {
		return nil, fmt.Errorf("ratelimit: sizeOf and send are required")
	}
	s := &Sender[T]{
		sizeOf:      sizeOf,
		flush:       flush,
		batchMax:    batchMax,
		queue:       make(chan T, queueCap),
		stop:        make(chan struct{}),
		rateChanged: make(chan struct{}, 1),
	}
	s.rateBps.Store(rateBps)
	s.wg.Add(1)
	go s.drain()
	return s, nil
}

// SetRate rewrites the pacing rate (bits per second; <= 0 means unlimited)
// — capability drift and netem capability traces on the real-socket path.
// Safe to call concurrently with Enqueue, Close, and the drain loop; the
// new rate applies immediately, re-pacing even an item the loop is currently
// sleeping on (a trace that unthrottles the node must not stay stuck behind
// a multi-second wait computed from the old rate).
func (s *Sender[T]) SetRate(rateBps int64) {
	s.rateBps.Store(rateBps)
	select {
	case s.rateChanged <- struct{}{}:
	default: // a wakeup is already pending; the loop reloads the latest rate
	}
}

// Enqueue submits an item for paced transmission. It reports false when the
// queue is full (the item is dropped) or the sender is closed. Only
// queue-full rejections count into Dropped: a closed sender is not
// congestion, and charging its rejections there would pollute the
// tail-drop signal the adaptation layer reads.
func (s *Sender[T]) Enqueue(item T) bool {
	s.stopMu.RLock()
	defer s.stopMu.RUnlock()
	select {
	case <-s.stop:
		return false
	default:
	}
	// Charge the queue gauge before the channel send: an observer must never
	// see an accepted item missing from QueuedBytes (the drain loop debits
	// only after transmission, so the gauge errs toward over-reporting
	// pressure, never under-reporting it).
	size := int64(s.sizeOf(item))
	s.queued.Add(size)
	select {
	case s.queue <- item:
		s.accepted.Add(size)
		return true
	default:
		s.queued.Add(-size)
		s.dropped.Add(1)
		return false
	}
}

// Close stops the drain loop and waits for it to exit. Queued items are
// discarded — their bytes move from the queued gauge to DiscardedBytes, so
// QueuedBytes and QueueBacklog read zero on a closed sender instead of
// over-reporting forever. Close is idempotent; concurrent callers return
// only once the shutdown (including the discard sweep) has completed.
func (s *Sender[T]) Close() {
	s.once.Do(func() {
		close(s.stop)
		s.wg.Wait()
		// Sweep the queue: the write lock waits out Enqueues already past
		// their stop check, and any later Enqueue observes stop closed, so
		// after the sweep nothing can re-charge the queued gauge.
		s.stopMu.Lock()
		defer s.stopMu.Unlock()
		for {
			select {
			case item := <-s.queue:
				s.discardItem(item)
			default:
				return
			}
		}
	})
}

func (s *Sender[T]) discardItem(item T) {
	size := int64(s.sizeOf(item))
	s.queued.Add(-size)
	s.discarded.Add(size)
}

// Sent returns the number of items transmitted.
func (s *Sender[T]) Sent() int64 { return s.sent.Load() }

// Dropped returns the number of items tail-dropped by the bounded queue.
func (s *Sender[T]) Dropped() int64 { return s.dropped.Load() }

// Bytes returns the total bytes transmitted.
func (s *Sender[T]) Bytes() int64 { return s.bytes.Load() }

// BytesSent is Bytes under an explicit name: a monotonic count of bytes
// that actually left the sender (counted at transmit, not enqueue), so
// ΔBytesSent over a window is achieved throughput directly, without racing
// QueueLen polls. NOT the adapt.Sample.SentBytes signal — that field wants
// the enqueue-counted AcceptedBytes (the controller subtracts ΔQueuedBytes
// itself; feeding it transmit-counted bytes double-counts queue movement).
func (s *Sender[T]) BytesSent() int64 { return s.bytes.Load() }

// AcceptedBytes returns the monotonic count of bytes ever accepted into the
// queue (enqueue-counted; drops excluded). This is the adapt.Sample
// convention for SentBytes — the controller derives the drained bytes as
// ΔAcceptedBytes − ΔQueuedBytes, so the enqueue- and transmit-side counters
// must not be mixed.
func (s *Sender[T]) AcceptedBytes() int64 { return s.accepted.Load() }

// DiscardedBytes returns the bytes of accepted items that Close discarded
// undelivered. Once Close has returned the books balance exactly:
// AcceptedBytes = BytesSent + DiscardedBytes, and QueuedBytes is zero.
func (s *Sender[T]) DiscardedBytes() int64 { return s.discarded.Load() }

// QueueLen returns the instantaneous queue length.
func (s *Sender[T]) QueueLen() int { return len(s.queue) }

// QueuedBytes returns the bytes accepted for transmission but not yet sent
// (the item currently pacing included). Together with BytesSent it gives a
// race-free window-drain signal: bytes drained = ΔBytesSent, backlog =
// QueuedBytes — both single atomic loads. Zero after Close.
func (s *Sender[T]) QueuedBytes() int64 { return s.queued.Load() }

// QueueBacklog converts the queued bytes into drain time at the current
// rate — the paced-sender analogue of the simulator's uplink backlog, the
// congestion signal the adaptation layer watches. 0 when unlimited.
func (s *Sender[T]) QueueBacklog() time.Duration {
	rate := s.rateBps.Load()
	if rate <= 0 {
		return 0
	}
	return time.Duration(s.queued.Load() * 8 * int64(time.Second) / rate)
}

// Collect emits the sender's accounting as named samples — the registration
// surface for a telemetry registry (the sender stays registry-agnostic; the
// caller prefixes the names). Safe from any goroutine. The byte books are
// emitted together so one snapshot is conservation-checkable: after Close
// the values satisfy accepted_bytes_total == sent_bytes_total +
// discarded_bytes_total exactly, with queued_bytes zero; live, queued_bytes
// accounts for the gap.
func (s *Sender[T]) Collect(emit func(name string, value float64)) {
	emit("send_datagrams_total", float64(s.sent.Load()))
	emit("send_tail_dropped_total", float64(s.dropped.Load()))
	emit("sent_bytes_total", float64(s.bytes.Load()))
	emit("discarded_bytes_total", float64(s.discarded.Load()))
	emit("queued_bytes", float64(s.queued.Load()))
	emit("accepted_bytes_total", float64(s.accepted.Load()))
	emit("send_backlog_seconds", s.QueueBacklog().Seconds())
}

// drain is the pacing loop: a virtual transmission clock advances by each
// item's serialization time; the loop sleeps whenever the clock runs ahead
// of real time. This is equivalent to a token bucket with zero burst, which
// is what "never exceed the upload capability" requires. A SetRate during
// the sleep re-paces the item: the waited time counts against the new
// serialization time, so rate increases release the item early and
// decreases extend the wait.
//
// After the clock releases an item, the loop opportunistically pulls every
// further queued item whose serialization time has also already elapsed —
// all of them, when the rate is unlimited — and flushes the run as one
// batch, up to batchMax. An item pulled ahead of its deadline is never sent
// early: it is carried to the next iteration and paced there, preserving
// FIFO order (the channel cannot be peeked).
func (s *Sender[T]) drain() {
	defer s.wg.Done()
	batch := make([]T, 0, s.batchMax)
	var (
		pending    T
		hasPending bool
		txClock    time.Time // when the uplink becomes free
	)
	for {
		var item T
		if hasPending {
			item, hasPending = pending, false
			var zero T
			pending = zero
		} else {
			select {
			case <-s.stop:
				return
			case item = <-s.queue:
			}
		}
		size := s.sizeOf(item)
		now := time.Now()
		if txClock.Before(now) {
			txClock = now
		}
	pace:
		for {
			rate := s.rateBps.Load()
			if rate <= 0 {
				break // unlimited: send immediately
			}
			ser := time.Duration(int64(size) * 8 * int64(time.Second) / rate)
			deadline := txClock.Add(ser)
			wait := time.Until(deadline)
			if wait <= 0 {
				txClock = deadline
				break
			}
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
				txClock = deadline
				break pace
			case <-s.rateChanged:
				timer.Stop()
				// Recompute the deadline from the same clock base with
				// the new rate; time already waited is not re-charged.
			case <-s.stop:
				timer.Stop()
				// The item was popped but never sent: account it as
				// discarded so the queued gauge still balances to zero.
				s.discardItem(item)
				return
			}
		}
		batch = append(batch[:0], item)
		batchBytes := int64(size)
	fill:
		for len(batch) < s.batchMax {
			select {
			case next := <-s.queue:
				nsize := s.sizeOf(next)
				if rate := s.rateBps.Load(); rate > 0 {
					ser := time.Duration(int64(nsize) * 8 * int64(time.Second) / rate)
					deadline := txClock.Add(ser)
					if time.Until(deadline) > 0 {
						// next still owes serialization time: flush what the
						// clock has released, pace next on the coming round.
						pending, hasPending = next, true
						break fill
					}
					txClock = deadline
				}
				batch = append(batch, next)
				batchBytes += int64(nsize)
			default:
				break fill
			}
		}
		s.bytes.Add(batchBytes)
		s.flush(batch)
		s.sent.Add(int64(len(batch)))
		s.queued.Add(-batchBytes)
	}
}

// Package misbehave implements adversarial node classes and a deterministic
// misbehavior detector for the gossip protocols of this repository.
//
// The paper's §5 discussion names freeriding as HEAP's open threat and
// sketches — but never builds — a detection mechanism. This package builds
// one, for three adversary classes:
//
//   - Freeriders consume the stream but under-contribute relative to the
//     capability they advertise: they accept payloads and keep proposing
//     (so they stay attractive gossip partners) while ignoring the Request
//     messages that would make them serve ([Interceptor] dropping inbound
//     requests).
//   - Capability liars over-advertise to the aggregation protocol. Under
//     HEAP an inflated claim buys an inflated fanout — the liar's proposals
//     flood the system and attract serve load its real uplink cannot carry —
//     and simultaneously inflates everyone's bbar estimate, shrinking honest
//     fanouts. Lying happens at the aggregation layer (the scenario wires
//     it), so there is no liar interceptor here.
//   - Message droppers swallow inbound Propose messages: they never pull,
//     never relay, and turn every fanout slot spent on them into dead air.
//
// # The detector
//
// [Detector] is a per-node, deterministic, rng-free state machine fed by the
// per-peer contribution evidence the engine already sees on its hot paths
// (internal/core's Monitor hook): proposals seen and sent, requests seen and
// sent, serve payloads received, and request timeouts attributed to the peer
// that failed to serve. Achieved serve throughput per peer is tracked with
// the same sample-and-delta plumbing as internal/adapt ([adapt.Sample]
// snapshots of cumulative served bytes). Two rules produce verdicts, each
// with a release path so transient congestion cannot latch a false verdict:
//
//   - Serve deficit: once served+timeouts evidence reaches MinServeEvidence,
//     a peer whose served/(served+timeouts) ratio sits below ServeRatioFloor
//     is quarantined. An honest-but-degraded peer serves late — every timed
//     out id still lands, holding its ratio near 0.5 — while a freerider
//     never serves and a saturated liar leaves a growing tail of requests
//     unserved forever. Released when the ratio recovers above ReleaseRatio
//     with fresh serves as evidence.
//   - Unresponsiveness: a peer that was offered MinProposedIDs ids yet never
//     requested anything and never proposed anything is a dropper. The
//     broadcaster is naturally exempt (it proposes constantly); any request
//     or proposal from the peer releases the verdict.
//
// Quarantine responses are wired through the sampler ([QuarantineSampler]
// keeps quarantined peers out of gossip target draws), the engine (proposals
// from quarantined peers are ignored, retry rotation skips them), and the
// capability-weighted fanout budget (aggregation.Config.Exclude expels a
// quarantined peer's claim from bbar — the fanout penalty that hands the
// liar's stolen fanout share back to honest nodes).
//
// Everything here runs in the node's execution context, consumes no
// randomness, and never reads wall clocks: armed runs remain byte-identical
// across repeats, the property the determinism suite pins down.
package misbehave

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/adapt"
	"repro/internal/wire"
)

// Config parameterizes a Detector. The zero value of every threshold selects
// the documented default; the zero value of Armed selects an observe-only
// detector that accumulates evidence (first receipts, per-peer counters,
// achieved-throughput windows) but never issues verdicts — the detector-off
// arm of A/B studies, byte-identical in protocol behavior to no detector.
type Config struct {
	// Armed enables verdicts (quarantine and release). Unarmed detectors
	// only collect evidence.
	Armed bool
	// EvalInterval is how often Tick evaluates verdicts and rolls the
	// achieved-throughput window. Ticks arrive every gossip round; the
	// detector quantizes them. Default 1 s.
	EvalInterval time.Duration
	// MinServeEvidence is the served+timeouts count below which the
	// serve-deficit rule abstains. Per-peer evidence is sparse (a few
	// requests per pair per run at paper scale), so this is deliberately
	// small; the quarantine quorum across detectors supplies the
	// statistical power. Default 5.
	MinServeEvidence int64
	// ServeRatioFloor quarantines a peer whose served/(served+timeouts)
	// falls below it. Must stay below 0.5: an honest peer that serves every
	// request late (one timeout then one serve per id) sits at 0.5 exactly.
	// Default 0.35.
	ServeRatioFloor float64
	// ReleaseRatio releases a serve-deficit quarantine once the ratio
	// recovers above it with at least one fresh serve since the verdict.
	// Must exceed ServeRatioFloor (hysteresis). Default 0.5.
	ReleaseRatio float64
	// MinProposedIDs is how many ids we must have proposed to a peer before
	// total silence (no requests, no proposals from it) reads as dropping
	// rather than sampling noise. Default 15.
	MinProposedIDs int64
	// Alive, when non-nil, exempts dead peers from verdicts: a crashed node
	// is silent for honest reasons. Simulation scenarios wire the
	// simulator's liveness oracle; live deployments leave it nil (falsely
	// quarantining a dead peer is harmless).
	Alive func(wire.NodeID) bool
}

// withDefaults returns a copy with every zero threshold filled in.
func (c Config) withDefaults() Config {
	if c.EvalInterval == 0 {
		c.EvalInterval = time.Second
	}
	if c.MinServeEvidence == 0 {
		c.MinServeEvidence = 5
	}
	if c.ServeRatioFloor == 0 {
		c.ServeRatioFloor = 0.35
	}
	if c.ReleaseRatio == 0 {
		c.ReleaseRatio = 0.5
	}
	if c.MinProposedIDs == 0 {
		c.MinProposedIDs = 15
	}
	return c
}

// Validate checks the configuration after applying defaults (a zero Config
// is always valid).
func (c *Config) Validate() error {
	d := c.withDefaults()
	if d.EvalInterval <= 0 {
		return fmt.Errorf("misbehave: eval interval %v must be positive", d.EvalInterval)
	}
	if d.MinServeEvidence < 1 {
		return fmt.Errorf("misbehave: min serve evidence %d must be at least 1", d.MinServeEvidence)
	}
	if d.ServeRatioFloor <= 0 || d.ServeRatioFloor >= 1 {
		return fmt.Errorf("misbehave: serve ratio floor %v outside (0, 1)", d.ServeRatioFloor)
	}
	if d.ReleaseRatio <= d.ServeRatioFloor || d.ReleaseRatio > 1 {
		return fmt.Errorf("misbehave: release ratio %v must sit in (%v, 1]",
			d.ReleaseRatio, d.ServeRatioFloor)
	}
	if d.MinProposedIDs < 1 {
		return fmt.Errorf("misbehave: min proposed ids %d must be at least 1", d.MinProposedIDs)
	}
	return nil
}

// Evidence is the monotone per-peer contribution record. Every counter only
// ever grows; derived quantities (ratios, windows) are computed from it, so
// arbitrary observation interleavings keep the record consistent.
type Evidence struct {
	// ProposesSeen counts Propose messages received from the peer.
	ProposesSeen int64
	// ProposedIDs counts ids this node proposed to the peer.
	ProposedIDs int64
	// RequestsSeen counts Request messages received from the peer.
	RequestsSeen int64
	// RequestedIDs counts ids this node requested from the peer.
	RequestedIDs int64
	// ServedEvents counts payload events the peer served us.
	ServedEvents int64
	// ServedBytes counts payload bytes the peer served us.
	ServedBytes int64
	// Timeouts counts request timeouts attributed to the peer: it was asked
	// and the serve did not arrive within the retransmission period.
	Timeouts int64
}

// serveRatio returns served/(served+timeouts) and whether enough evidence
// exists to evaluate it against min.
func (e *Evidence) serveRatio(min int64) (float64, bool) {
	total := e.ServedEvents + e.Timeouts
	if total < min || total == 0 {
		return 0, false
	}
	return float64(e.ServedEvents) / float64(total), true
}

// Reason labels why a peer was quarantined.
type Reason uint8

// Quarantine reasons.
const (
	ReasonNone         Reason = iota
	ReasonServeDeficit        // low served/(served+timeouts): freerider or saturated liar
	ReasonUnresponsive        // proposed-to but never requests or proposes: dropper
	ReasonManual              // operator/test decision via Quarantine
)

// String returns the reason's report label.
func (r Reason) String() string {
	switch r {
	case ReasonServeDeficit:
		return "serve-deficit"
	case ReasonUnresponsive:
		return "unresponsive"
	case ReasonManual:
		return "manual"
	default:
		return "none"
	}
}

// EventKind distinguishes quarantine from release entries in the event log.
type EventKind uint8

// Event kinds.
const (
	EventQuarantine EventKind = iota + 1
	EventRelease
)

// Event is one verdict change, for traces and detection-latency accounting.
type Event struct {
	Kind   EventKind
	Peer   wire.NodeID
	Reason Reason
	At     time.Duration
}

// maxEventEntries bounds the retained event log (the true totals survive in
// QuarantineEvents/ReleaseEvents and the per-peer first-quarantine stamps).
// When full, the oldest half is dropped, mirroring adapt's trace bound.
const maxEventEntries = 4096

// maxTrackedPeerID bounds the dense per-peer table against hostile input:
// node ids are dense, so a million-node ceiling is far beyond any deployment
// while capping what wire input can make us allocate (the same guard as
// aggregation's entry table).
const maxTrackedPeerID = 1 << 20

// peerState is one peer's detector-side record.
type peerState struct {
	tracked bool
	ev      Evidence

	quarantined   bool
	reason        Reason
	quarantinedAt time.Duration
	// servedAtQuarantine snapshots ServedEvents at the verdict, so release
	// demands fresh exonerating serves, not a stale ratio.
	servedAtQuarantine int64
	// everQuarantined/firstQuarantinedAt survive event-log trimming; the
	// scenario layer computes detection latency from them.
	everQuarantined    bool
	firstQuarantinedAt time.Duration

	// Achieved serve throughput from this peer, computed with the adapt
	// package's sample-and-delta plumbing: window holds the previous
	// snapshot (At, SentBytes=cumulative ServedBytes).
	window       adapt.Sample
	windowPrimed bool
	achievedKbps float64
	peakKbps     float64
}

// Detector is one node's misbehavior detector. Not safe for concurrent use;
// all access happens on the node's execution context, like every protocol
// handler. It implements internal/core's Monitor hook.
type Detector struct {
	cfg   Config
	peers []peerState // dense by node id

	lastEval  time.Duration
	evalReady bool

	events      []Event
	quarCount   int
	quarEvents  int64
	relEvents   int64
	firstFrom   wire.NodeID
	firstAt     time.Duration
	firstSeen   bool
	totalTicks  int64
	totalEvents int64 // observations, for diagnostics
}

// New builds a Detector. It returns an error for invalid configurations.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg.withDefaults(), firstFrom: wire.NodeNone}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(cfg Config) *Detector {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Armed reports whether the detector issues verdicts.
func (d *Detector) Armed() bool { return d.cfg.Armed }

// peer returns the state slot for id, growing the dense table on demand.
// Returns nil for out-of-range ids (negative or beyond the hostile-input
// bound).
func (d *Detector) peer(id wire.NodeID) *peerState {
	if id < 0 || id >= maxTrackedPeerID {
		return nil
	}
	for int(id) >= len(d.peers) {
		d.peers = append(d.peers, peerState{})
	}
	p := &d.peers[id]
	p.tracked = true
	return p
}

// ObserveProposeSeen records a Propose message from the peer. The first
// observation also pins the node's first-receipt record (the source-anonymity
// probe's raw material).
func (d *Detector) ObserveProposeSeen(from wire.NodeID, ids int, at time.Duration) {
	if ids <= 0 {
		return
	}
	p := d.peer(from)
	if p == nil {
		return
	}
	if !d.firstSeen {
		d.firstSeen = true
		d.firstFrom = from
		d.firstAt = at
	}
	p.ev.ProposesSeen++
	d.totalEvents++
}

// ObserveProposeSent records ids proposed to the peer.
func (d *Detector) ObserveProposeSent(to wire.NodeID, ids int, at time.Duration) {
	if ids <= 0 {
		return
	}
	if p := d.peer(to); p != nil {
		p.ev.ProposedIDs += int64(ids)
		d.totalEvents++
	}
}

// ObserveRequestSeen records a Request message from the peer.
func (d *Detector) ObserveRequestSeen(from wire.NodeID, ids int, at time.Duration) {
	if ids <= 0 {
		return
	}
	if p := d.peer(from); p != nil {
		p.ev.RequestsSeen++
		d.totalEvents++
	}
}

// ObserveRequestSent records ids requested from the peer.
func (d *Detector) ObserveRequestSent(to wire.NodeID, ids int, at time.Duration) {
	if ids <= 0 {
		return
	}
	if p := d.peer(to); p != nil {
		p.ev.RequestedIDs += int64(ids)
		d.totalEvents++
	}
}

// ObserveServeSeen records payloads served by the peer.
func (d *Detector) ObserveServeSeen(from wire.NodeID, events int, bytes int64, at time.Duration) {
	if events <= 0 {
		return
	}
	if p := d.peer(from); p != nil {
		p.ev.ServedEvents += int64(events)
		if bytes > 0 {
			p.ev.ServedBytes += bytes
		}
		d.totalEvents++
	}
}

// ObserveTimeout records request timeouts attributed to the peer.
func (d *Detector) ObserveTimeout(to wire.NodeID, ids int, at time.Duration) {
	if ids <= 0 {
		return
	}
	if p := d.peer(to); p != nil {
		p.ev.Timeouts += int64(ids)
		d.totalEvents++
	}
}

// Tick drives evaluation. The engine calls it every gossip round; the
// detector quantizes to EvalInterval. Each evaluation rolls every tracked
// peer's achieved-throughput window and, when armed, applies the verdict
// rules in ascending peer order (a strict total order, so runs are
// reproducible).
func (d *Detector) Tick(now time.Duration) {
	if d.evalReady && now-d.lastEval < d.cfg.EvalInterval {
		return
	}
	d.evalReady = true
	d.lastEval = now
	d.totalTicks++
	for id := range d.peers {
		p := &d.peers[id]
		if !p.tracked {
			continue
		}
		d.rollWindow(p, now)
		if d.cfg.Armed {
			d.evaluate(wire.NodeID(id), p, now)
		}
	}
}

// rollWindow updates the peer's achieved serve throughput using adapt's
// delta arithmetic over cumulative byte counters.
func (d *Detector) rollWindow(p *peerState, now time.Duration) {
	sample := adapt.Sample{At: now, SentBytes: p.ev.ServedBytes}
	if p.windowPrimed {
		if dt := sample.At - p.window.At; dt > 0 {
			delta := sample.SentBytes - p.window.SentBytes
			p.achievedKbps = float64(delta) * 8 / dt.Seconds() / 1000
			if p.achievedKbps > p.peakKbps {
				p.peakKbps = p.achievedKbps
			}
		}
	}
	p.windowPrimed = true
	p.window = sample
}

// evaluate applies the verdict rules to one peer.
func (d *Detector) evaluate(id wire.NodeID, p *peerState, now time.Duration) {
	if d.cfg.Alive != nil && !d.cfg.Alive(id) {
		return // dead peers are silent for honest reasons
	}
	if p.quarantined {
		switch p.reason {
		case ReasonServeDeficit:
			ratio, ok := p.ev.serveRatio(d.cfg.MinServeEvidence)
			if ok && ratio >= d.cfg.ReleaseRatio && p.ev.ServedEvents > p.servedAtQuarantine {
				d.release(id, p, now)
			}
		case ReasonUnresponsive:
			if p.ev.RequestsSeen > 0 || p.ev.ProposesSeen > 0 {
				d.release(id, p, now)
			}
		}
		return
	}
	if ratio, ok := p.ev.serveRatio(d.cfg.MinServeEvidence); ok && ratio < d.cfg.ServeRatioFloor {
		d.quarantine(id, p, ReasonServeDeficit, now)
		return
	}
	if p.ev.ProposedIDs >= d.cfg.MinProposedIDs && p.ev.RequestsSeen == 0 && p.ev.ProposesSeen == 0 {
		d.quarantine(id, p, ReasonUnresponsive, now)
	}
}

func (d *Detector) quarantine(id wire.NodeID, p *peerState, reason Reason, now time.Duration) {
	p.quarantined = true
	p.reason = reason
	p.quarantinedAt = now
	p.servedAtQuarantine = p.ev.ServedEvents
	if !p.everQuarantined {
		p.everQuarantined = true
		p.firstQuarantinedAt = now
	}
	d.quarCount++
	d.quarEvents++
	d.appendEvent(Event{Kind: EventQuarantine, Peer: id, Reason: reason, At: now})
}

func (d *Detector) release(id wire.NodeID, p *peerState, now time.Duration) {
	reason := p.reason
	p.quarantined = false
	p.reason = ReasonNone
	d.quarCount--
	d.relEvents++
	d.appendEvent(Event{Kind: EventRelease, Peer: id, Reason: reason, At: now})
}

func (d *Detector) appendEvent(ev Event) {
	if len(d.events) >= maxEventEntries {
		n := copy(d.events, d.events[len(d.events)-maxEventEntries/2:])
		d.events = d.events[:n]
	}
	d.events = append(d.events, ev)
}

// Quarantine imposes a manual verdict (operator or test decision).
// Quarantining an already-quarantined peer is a no-op.
func (d *Detector) Quarantine(id wire.NodeID, now time.Duration) {
	p := d.peer(id)
	if p == nil || p.quarantined {
		return
	}
	d.quarantine(id, p, ReasonManual, now)
}

// Release lifts a quarantine regardless of reason. Releasing a peer that is
// not quarantined is a no-op.
func (d *Detector) Release(id wire.NodeID, now time.Duration) {
	if id < 0 || int(id) >= len(d.peers) {
		return
	}
	p := &d.peers[id]
	if !p.quarantined {
		return
	}
	d.release(id, p, now)
}

// Quarantined reports whether the peer is currently quarantined. This is the
// engine's hot-path query; out-of-range ids are never quarantined.
func (d *Detector) Quarantined(id wire.NodeID) bool {
	if id < 0 || int(id) >= len(d.peers) {
		return false
	}
	return d.peers[id].quarantined
}

// QuarantineCount returns how many peers are currently quarantined.
func (d *Detector) QuarantineCount() int { return d.quarCount }

// QuarantineEvents returns the total number of quarantine verdicts issued
// (the true total, even past the event-log bound).
func (d *Detector) QuarantineEvents() int64 { return d.quarEvents }

// ReleaseEvents returns the total number of releases issued.
func (d *Detector) ReleaseEvents() int64 { return d.relEvents }

// Events returns the verdict log, bounded to the most recent maxEventEntries
// changes. The returned slice is owned by the detector.
func (d *Detector) Events() []Event { return d.events }

// QuarantinedPeers returns the currently quarantined peers in ascending id
// order.
func (d *Detector) QuarantinedPeers() []wire.NodeID {
	out := make([]wire.NodeID, 0, d.quarCount)
	for id := range d.peers {
		if d.peers[id].quarantined {
			out = append(out, wire.NodeID(id))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EvidenceOf returns the peer's evidence record and whether the peer has
// ever been observed.
func (d *Detector) EvidenceOf(id wire.NodeID) (Evidence, bool) {
	if id < 0 || int(id) >= len(d.peers) || !d.peers[id].tracked {
		return Evidence{}, false
	}
	return d.peers[id].ev, true
}

// AchievedKbps returns the peer's serve throughput toward this node over the
// last evaluation window, and its peak over the run (0, 0 for unknown peers).
func (d *Detector) AchievedKbps(id wire.NodeID) (last, peak float64) {
	if id < 0 || int(id) >= len(d.peers) {
		return 0, 0
	}
	return d.peers[id].achievedKbps, d.peers[id].peakKbps
}

// FirstQuarantinedAt returns when the peer was first quarantined, if ever.
// The stamp survives releases and event-log trimming (detection-latency
// accounting).
func (d *Detector) FirstQuarantinedAt(id wire.NodeID) (time.Duration, bool) {
	if id < 0 || int(id) >= len(d.peers) || !d.peers[id].everQuarantined {
		return 0, false
	}
	return d.peers[id].firstQuarantinedAt, true
}

// FirstReceipt returns the first Propose this node ever received: the peer
// it came from and when. The observer-coalition source-anonymity probe ranks
// broadcaster candidates by exactly this order.
func (d *Detector) FirstReceipt() (from wire.NodeID, at time.Duration, ok bool) {
	return d.firstFrom, d.firstAt, d.firstSeen
}

// TrackedPeers returns how many distinct peers have evidence records.
func (d *Detector) TrackedPeers() int {
	n := 0
	for i := range d.peers {
		if d.peers[i].tracked {
			n++
		}
	}
	return n
}

// Collect emits the detector's state as named samples — the registration
// surface for a telemetry registry. Must run on the node's execution
// context (or after shutdown), like the other accessors.
func (d *Detector) Collect(emit func(name string, value float64)) {
	armed := 0.0
	if d.cfg.Armed {
		armed = 1
	}
	emit("misbehave_armed", armed)
	emit("misbehave_quarantined_peers", float64(d.QuarantineCount()))
	emit("misbehave_quarantine_events_total", float64(d.quarEvents))
	emit("misbehave_release_events_total", float64(d.relEvents))
	emit("misbehave_tracked_peers", float64(d.TrackedPeers()))
}

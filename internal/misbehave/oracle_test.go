package misbehave_test

// The property pass for the detection path: a brute-force oracle reimplements
// the verdict rules as the straightest possible map-based interpretation of
// the documented semantics, with none of the Detector's incremental state
// (dense tables, cached counts, event-log trimming). Randomized observation
// histories are applied to both; after every tick the full quarantine map and
// the derived counters must agree exactly. Any divergence means one of the
// two implementations drifted from the documented rules.

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/misbehave"
	"repro/internal/wire"
)

// oraclePeer mirrors Evidence plus the verdict state the rules need.
type oraclePeer struct {
	proposesSeen, proposedIDs int64
	requestsSeen              int64
	servedEvents              int64
	timeouts                  int64

	quarantined        bool
	reason             misbehave.Reason
	servedAtQuarantine int64
}

// oracle is the reference detector. Maps and recomputation everywhere: the
// opposite implementation strategy from the real one.
type oracle struct {
	cfg   misbehave.Config
	peers map[wire.NodeID]*oraclePeer

	lastEval   time.Duration
	everTicked bool

	quarEvents, relEvents int64
}

func newOracle(cfg misbehave.Config) *oracle {
	// Mirror withDefaults by hand (the real detector fills these in New).
	if cfg.EvalInterval == 0 {
		cfg.EvalInterval = time.Second
	}
	if cfg.MinServeEvidence == 0 {
		cfg.MinServeEvidence = 5
	}
	if cfg.ServeRatioFloor == 0 {
		cfg.ServeRatioFloor = 0.35
	}
	if cfg.ReleaseRatio == 0 {
		cfg.ReleaseRatio = 0.5
	}
	if cfg.MinProposedIDs == 0 {
		cfg.MinProposedIDs = 15
	}
	return &oracle{cfg: cfg, peers: make(map[wire.NodeID]*oraclePeer)}
}

func (o *oracle) peer(id wire.NodeID) *oraclePeer {
	if id < 0 || id >= 1<<20 {
		return nil
	}
	p := o.peers[id]
	if p == nil {
		p = &oraclePeer{}
		o.peers[id] = p
	}
	return p
}

func (o *oracle) tick(now time.Duration) {
	if o.everTicked && now-o.lastEval < o.cfg.EvalInterval {
		return
	}
	o.everTicked = true
	o.lastEval = now
	if !o.cfg.Armed {
		return
	}
	for id, p := range o.peers {
		if o.cfg.Alive != nil && !o.cfg.Alive(id) {
			continue
		}
		total := p.servedEvents + p.timeouts
		ratio, enough := 0.0, false
		if total >= o.cfg.MinServeEvidence && total > 0 {
			ratio, enough = float64(p.servedEvents)/float64(total), true
		}
		if p.quarantined {
			switch p.reason {
			case misbehave.ReasonServeDeficit:
				if enough && ratio >= o.cfg.ReleaseRatio && p.servedEvents > p.servedAtQuarantine {
					p.quarantined, p.reason = false, misbehave.ReasonNone
					o.relEvents++
				}
			case misbehave.ReasonUnresponsive:
				if p.requestsSeen > 0 || p.proposesSeen > 0 {
					p.quarantined, p.reason = false, misbehave.ReasonNone
					o.relEvents++
				}
			}
			continue
		}
		switch {
		case enough && ratio < o.cfg.ServeRatioFloor:
			p.quarantined, p.reason = true, misbehave.ReasonServeDeficit
			p.servedAtQuarantine = p.servedEvents
			o.quarEvents++
		case p.proposedIDs >= o.cfg.MinProposedIDs && p.requestsSeen == 0 && p.proposesSeen == 0:
			p.quarantined, p.reason = true, misbehave.ReasonUnresponsive
			o.quarEvents++
		}
	}
}

func (o *oracle) quarantinedPeers() []wire.NodeID {
	var out []wire.NodeID
	for id, p := range o.peers {
		if p.quarantined {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// compare asserts the detector and oracle agree on the complete verdict state.
func compare(t *testing.T, step int, d *misbehave.Detector, o *oracle, peerSpace int) {
	t.Helper()
	got := d.QuarantinedPeers()
	want := o.quarantinedPeers()
	if len(got) != len(want) {
		t.Fatalf("step %d: quarantined %v, oracle %v", step, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: quarantined %v, oracle %v", step, got, want)
		}
	}
	if d.QuarantineCount() != len(want) {
		t.Fatalf("step %d: count %d, set %v", step, d.QuarantineCount(), want)
	}
	if d.QuarantineEvents() != o.quarEvents || d.ReleaseEvents() != o.relEvents {
		t.Fatalf("step %d: events %d/%d, oracle %d/%d", step,
			d.QuarantineEvents(), d.ReleaseEvents(), o.quarEvents, o.relEvents)
	}
	for id := 0; id < peerSpace; id++ {
		if d.Quarantined(wire.NodeID(id)) != o.peers[wire.NodeID(id)].isQuarantined() {
			t.Fatalf("step %d: peer %d verdict diverges", step, id)
		}
	}
}

func (p *oraclePeer) isQuarantined() bool { return p != nil && p.quarantined }

// TestDetectorAgainstOracle drives randomized observation histories through
// both implementations. Peers 0..peerSpace-1; operations weighted toward the
// serve/timeout pair so both rules get exercised.
func TestDetectorAgainstOracle(t *testing.T) {
	const (
		sequences = 60
		steps     = 400
		peerSpace = 12
	)
	for seq := 0; seq < sequences; seq++ {
		rng := rand.New(rand.NewSource(int64(1000 + seq)))
		cfg := misbehave.Config{Armed: true}
		// A third of the sequences shrink the eval interval so tick
		// quantization boundaries get hammered too.
		if seq%3 == 1 {
			cfg.EvalInterval = 250 * time.Millisecond
		}
		d := misbehave.MustNew(cfg)
		o := newOracle(cfg)
		now := time.Duration(0)
		for step := 0; step < steps; step++ {
			id := wire.NodeID(rng.Intn(peerSpace))
			switch op := rng.Intn(10); op {
			case 0:
				d.ObserveProposeSeen(id, 1, now)
				if p := o.peer(id); p != nil {
					p.proposesSeen++
				}
			case 1, 2:
				n := 1 + rng.Intn(8)
				d.ObserveProposeSent(id, n, now)
				if p := o.peer(id); p != nil {
					p.proposedIDs += int64(n)
				}
			case 3:
				d.ObserveRequestSeen(id, 1, now)
				if p := o.peer(id); p != nil {
					p.requestsSeen++
				}
			case 4:
				d.ObserveRequestSent(id, 1+rng.Intn(4), now)
				o.peer(id) // tracked on both sides; no rule reads it
			case 5, 6:
				n := 1 + rng.Intn(3)
				d.ObserveServeSeen(id, n, int64(n)*1200, now)
				if p := o.peer(id); p != nil {
					p.servedEvents += int64(n)
				}
			case 7, 8:
				n := 1 + rng.Intn(3)
				d.ObserveTimeout(id, n, now)
				if p := o.peer(id); p != nil {
					p.timeouts += int64(n)
				}
			case 9:
				now += time.Duration(rng.Intn(700)) * time.Millisecond
				d.Tick(now)
				o.tick(now)
				compare(t, step, d, o, peerSpace)
			}
		}
		now += 10 * time.Second
		d.Tick(now)
		o.tick(now)
		compare(t, steps, d, o, peerSpace)
	}
}

// TestDetectorOracleHonestNeverQuarantined is the false-positive property on
// clean histories: whatever the interleaving, a cohort with no timeouts and
// at least one request seen per peer gives neither rule a foothold.
func TestDetectorOracleHonestNeverQuarantined(t *testing.T) {
	const peerSpace = 10
	for seq := 0; seq < 40; seq++ {
		rng := rand.New(rand.NewSource(int64(7000 + seq)))
		d := misbehave.MustNew(misbehave.Config{Armed: true})
		now := time.Duration(0)
		for id := 0; id < peerSpace; id++ {
			d.ObserveRequestSeen(wire.NodeID(id), 1, now)
		}
		for step := 0; step < 300; step++ {
			id := wire.NodeID(rng.Intn(peerSpace))
			switch rng.Intn(6) {
			case 0:
				d.ObserveProposeSeen(id, 1, now)
			case 1:
				d.ObserveProposeSent(id, 1+rng.Intn(10), now)
			case 2:
				d.ObserveRequestSeen(id, 1, now)
			case 3:
				d.ObserveServeSeen(id, 1, 1500, now)
			case 4:
				d.ObserveRequestSent(id, 1, now)
			case 5:
				now += time.Duration(rng.Intn(1500)) * time.Millisecond
				d.Tick(now)
			}
			if d.QuarantineEvents() != 0 {
				t.Fatalf("seq %d step %d: clean history quarantined %v",
					seq, step, d.QuarantinedPeers())
			}
		}
	}
}

// TestDetectorOracleLateServers extends the honest property to degraded
// cohorts: every peer serves each requested id late (timeout then serve,
// ratio pinned at 0.5), under randomized interleaving with benign traffic.
// No history of this shape may ever be quarantined at stock thresholds once
// the serve catches up before the next evaluation.
func TestDetectorOracleLateServers(t *testing.T) {
	const peerSpace = 8
	for seq := 0; seq < 40; seq++ {
		rng := rand.New(rand.NewSource(int64(9000 + seq)))
		d := misbehave.MustNew(misbehave.Config{Armed: true})
		now := time.Duration(0)
		for round := 0; round < 80; round++ {
			id := wire.NodeID(rng.Intn(peerSpace))
			// The late-serve pair lands atomically between evaluations.
			d.ObserveTimeout(id, 1, now)
			d.ObserveServeSeen(id, 1, 1400, now)
			if rng.Intn(3) == 0 {
				d.ObserveProposeSeen(id, 1, now)
				d.ObserveProposeSent(id, 1+rng.Intn(6), now)
			}
			now += time.Duration(500+rng.Intn(1500)) * time.Millisecond
			d.Tick(now)
			if d.QuarantineEvents() != 0 {
				t.Fatalf("seq %d round %d: late server quarantined", seq, round)
			}
		}
	}
}

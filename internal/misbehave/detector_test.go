package misbehave_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/misbehave"
	"repro/internal/wire"
)

// armed returns a verdict-issuing detector with the stock thresholds.
func armed(t *testing.T) *misbehave.Detector {
	t.Helper()
	return misbehave.MustNew(misbehave.Config{Armed: true})
}

func TestDetectorConfigValidation(t *testing.T) {
	bad := []misbehave.Config{
		{EvalInterval: -time.Second},
		{MinServeEvidence: -1},
		{ServeRatioFloor: 1.5},
		{ServeRatioFloor: -0.1},
		{ReleaseRatio: 0.2}, // below the default floor of 0.35
		{ServeRatioFloor: 0.6, ReleaseRatio: 0.5},
		{MinProposedIDs: -3},
	}
	for i, cfg := range bad {
		if _, err := misbehave.New(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	if _, err := misbehave.New(misbehave.Config{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	misbehave.MustNew(misbehave.Config{ServeRatioFloor: 2})
}

func TestDetectorServeDeficitQuarantineAndRelease(t *testing.T) {
	d := armed(t)
	const peer = wire.NodeID(3)

	// Five unserved requests: enough evidence, ratio 0.
	for i := 0; i < 5; i++ {
		d.ObserveTimeout(peer, 1, time.Duration(i)*100*time.Millisecond)
	}
	d.Tick(1 * time.Second)
	if !d.Quarantined(peer) {
		t.Fatal("freerider evidence did not quarantine")
	}
	if got := d.QuarantinedPeers(); len(got) != 1 || got[0] != peer {
		t.Fatalf("QuarantinedPeers = %v, want [%d]", got, peer)
	}
	evs := d.Events()
	if len(evs) != 1 || evs[0].Kind != misbehave.EventQuarantine ||
		evs[0].Reason != misbehave.ReasonServeDeficit || evs[0].Peer != peer {
		t.Fatalf("event log = %+v", evs)
	}
	first, ok := d.FirstQuarantinedAt(peer)
	if !ok || first != 1*time.Second {
		t.Fatalf("FirstQuarantinedAt = %v, %v", first, ok)
	}

	// Recovery: the peer starts serving. Ratio needs to climb back to the
	// release threshold (0.5) with serves issued after the verdict.
	for i := 0; i < 4; i++ {
		d.ObserveServeSeen(peer, 1, 1000, 2*time.Second)
	}
	d.Tick(2 * time.Second) // 4/9 < 0.5: still quarantined
	if !d.Quarantined(peer) {
		t.Fatal("released below the release ratio")
	}
	d.ObserveServeSeen(peer, 1, 1000, 3*time.Second)
	d.Tick(3 * time.Second) // 5/10 = 0.5 with fresh serves: released
	if d.Quarantined(peer) {
		t.Fatal("not released after recovery")
	}
	if d.QuarantineEvents() != 1 || d.ReleaseEvents() != 1 || d.QuarantineCount() != 0 {
		t.Fatalf("counters = %d quarantines, %d releases, %d current",
			d.QuarantineEvents(), d.ReleaseEvents(), d.QuarantineCount())
	}
	// The first-quarantine stamp survives the release.
	if again, ok := d.FirstQuarantinedAt(peer); !ok || again != first {
		t.Fatalf("first-quarantine stamp moved: %v, %v", again, ok)
	}
}

// TestDetectorLateServerBoundary pins the design constraint documented on
// ServeRatioFloor: an honest peer on a degraded link serves every id late —
// one timeout then one serve per id, ratio exactly 0.5 — and must never be
// quarantined by the stock thresholds.
func TestDetectorLateServerBoundary(t *testing.T) {
	d := armed(t)
	const peer = wire.NodeID(9)
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * time.Second
		d.ObserveTimeout(peer, 1, at)
		d.Tick(at)
		if d.Quarantined(peer) && i < 2 {
			// With one lone timeout the evidence floor protects the peer;
			// from evidence 5 on, the serve below restores 0.5 before the
			// next tick, so any quarantine here would be a detector bug.
			t.Fatalf("quarantined on sparse evidence at step %d", i)
		}
		d.ObserveServeSeen(peer, 1, 1000, at+500*time.Millisecond)
		d.Tick(at + 500*time.Millisecond)
	}
	if d.QuarantineEvents() != 0 {
		t.Fatalf("late server drew %d quarantines, want 0", d.QuarantineEvents())
	}
	ev, ok := d.EvidenceOf(peer)
	if !ok || ev.ServedEvents != 40 || ev.Timeouts != 40 {
		t.Fatalf("evidence = %+v, %v", ev, ok)
	}
}

func TestDetectorUnresponsiveQuarantineAndRelease(t *testing.T) {
	d := armed(t)
	const peer = wire.NodeID(4)

	d.ObserveProposeSent(peer, 14, 0)
	d.Tick(1 * time.Second)
	if d.Quarantined(peer) {
		t.Fatal("quarantined below MinProposedIDs")
	}
	d.ObserveProposeSent(peer, 1, 1*time.Second)
	d.Tick(2 * time.Second)
	if !d.Quarantined(peer) {
		t.Fatal("silent peer not quarantined at MinProposedIDs")
	}
	if evs := d.Events(); evs[len(evs)-1].Reason != misbehave.ReasonUnresponsive {
		t.Fatalf("reason = %v, want unresponsive", evs[len(evs)-1].Reason)
	}

	// A single request from the peer exonerates it.
	d.ObserveRequestSeen(peer, 1, 3*time.Second)
	d.Tick(3 * time.Second)
	if d.Quarantined(peer) {
		t.Fatal("not released after the peer requested")
	}
}

// TestDetectorSourceExempt checks the broadcaster exemption: a peer we have
// proposed plenty to but that also proposes to us (the source proposes
// constantly) is responsive by definition.
func TestDetectorSourceExempt(t *testing.T) {
	d := armed(t)
	const source = wire.NodeID(0)
	d.ObserveProposeSeen(source, 3, 100*time.Millisecond)
	d.ObserveProposeSent(source, 50, 200*time.Millisecond)
	d.Tick(1 * time.Second)
	if d.Quarantined(source) {
		t.Fatal("proposing peer quarantined as unresponsive")
	}
}

func TestDetectorUnarmedObservesOnly(t *testing.T) {
	d := misbehave.MustNew(misbehave.Config{})
	if d.Armed() {
		t.Fatal("zero config should be unarmed")
	}
	const peer = wire.NodeID(7)
	d.ObserveProposeSeen(peer, 2, 50*time.Millisecond)
	for i := 0; i < 10; i++ {
		d.ObserveTimeout(peer, 1, time.Duration(i)*time.Second)
		d.ObserveProposeSent(peer, 5, time.Duration(i)*time.Second)
		d.Tick(time.Duration(i) * time.Second)
	}
	if d.QuarantineEvents() != 0 || d.Quarantined(peer) {
		t.Fatal("unarmed detector issued a verdict")
	}
	// Evidence and first receipts still accumulate for the A/B off arm.
	if ev, ok := d.EvidenceOf(peer); !ok || ev.Timeouts != 10 || ev.ProposedIDs != 50 {
		t.Fatalf("evidence = %+v, %v", ev, ok)
	}
	if from, at, ok := d.FirstReceipt(); !ok || from != peer || at != 50*time.Millisecond {
		t.Fatalf("first receipt = %v at %v, %v", from, at, ok)
	}
}

func TestDetectorAliveGate(t *testing.T) {
	alive := false
	d := misbehave.MustNew(misbehave.Config{
		Armed: true,
		Alive: func(wire.NodeID) bool { return alive },
	})
	const peer = wire.NodeID(2)
	for i := 0; i < 8; i++ {
		d.ObserveTimeout(peer, 1, 0)
	}
	d.Tick(1 * time.Second)
	if d.Quarantined(peer) {
		t.Fatal("dead peer quarantined")
	}
	alive = true
	d.Tick(2 * time.Second)
	if !d.Quarantined(peer) {
		t.Fatal("live peer with damning evidence not quarantined")
	}
}

func TestDetectorManualOps(t *testing.T) {
	d := armed(t)
	const peer = wire.NodeID(5)
	d.Quarantine(peer, 1*time.Second)
	if !d.Quarantined(peer) || d.QuarantineCount() != 1 {
		t.Fatal("manual quarantine did not stick")
	}
	d.Quarantine(peer, 2*time.Second) // double quarantine is a no-op
	if d.QuarantineEvents() != 1 {
		t.Fatalf("double quarantine logged: %d events", d.QuarantineEvents())
	}
	// Manual verdicts have no rule-based release path: ticks leave them.
	d.ObserveRequestSeen(peer, 1, 2*time.Second)
	d.Tick(3 * time.Second)
	if !d.Quarantined(peer) {
		t.Fatal("tick released a manual quarantine")
	}
	d.Release(peer, 4*time.Second)
	if d.Quarantined(peer) || d.QuarantineCount() != 0 {
		t.Fatal("manual release did not stick")
	}
	d.Release(peer, 5*time.Second) // double release is a no-op
	if d.ReleaseEvents() != 1 {
		t.Fatalf("double release logged: %d events", d.ReleaseEvents())
	}
}

func TestDetectorAchievedThroughputWindow(t *testing.T) {
	d := misbehave.MustNew(misbehave.Config{})
	const peer = wire.NodeID(6)
	d.ObserveServeSeen(peer, 1, 0, 0) // track the peer; zero bytes
	d.Tick(0)                         // primes the window
	// 125000 bytes over one second is exactly 1000 kbps.
	d.ObserveServeSeen(peer, 1, 125000, 500*time.Millisecond)
	d.Tick(1 * time.Second)
	last, peak := d.AchievedKbps(peer)
	if math.Abs(last-1000) > 1e-9 || math.Abs(peak-1000) > 1e-9 {
		t.Fatalf("achieved = %v last, %v peak, want 1000", last, peak)
	}
	// An idle window decays the instantaneous rate but not the peak.
	d.Tick(2 * time.Second)
	last, peak = d.AchievedKbps(peer)
	if last != 0 || math.Abs(peak-1000) > 1e-9 {
		t.Fatalf("after idle window: %v last, %v peak", last, peak)
	}
}

func TestDetectorEvalIntervalQuantization(t *testing.T) {
	d := armed(t) // default EvalInterval 1 s
	const peer = wire.NodeID(1)
	d.Tick(0) // first tick always evaluates and anchors the interval
	for i := 0; i < 6; i++ {
		d.ObserveTimeout(peer, 1, 100*time.Millisecond)
	}
	d.Tick(400 * time.Millisecond) // within the interval: no evaluation
	if d.Quarantined(peer) {
		t.Fatal("evaluated inside the quantization interval")
	}
	d.Tick(1 * time.Second)
	if !d.Quarantined(peer) {
		t.Fatal("not evaluated at the interval boundary")
	}
	if evs := d.Events(); evs[0].At != 1*time.Second {
		t.Fatalf("verdict at %v, want 1s", evs[0].At)
	}
}

func TestDetectorHostileIDs(t *testing.T) {
	d := armed(t)
	hostile := []wire.NodeID{-1, -50, 1 << 20, 1<<20 + 7, 1 << 30}
	for _, id := range hostile {
		d.ObserveProposeSeen(id, 1, 0)
		d.ObserveProposeSent(id, 5, 0)
		d.ObserveRequestSeen(id, 1, 0)
		d.ObserveRequestSent(id, 5, 0)
		d.ObserveServeSeen(id, 1, 100, 0)
		d.ObserveTimeout(id, 10, 0)
		d.Quarantine(id, 0)
		d.Release(id, 0)
	}
	d.Tick(1 * time.Second)
	for _, id := range hostile {
		if d.Quarantined(id) {
			t.Fatalf("out-of-range id %d quarantined", id)
		}
		if _, ok := d.EvidenceOf(id); ok {
			t.Fatalf("out-of-range id %d tracked", id)
		}
	}
	if d.TrackedPeers() != 0 || d.QuarantineEvents() != 0 {
		t.Fatalf("hostile ids left state: %d tracked, %d events",
			d.TrackedPeers(), d.QuarantineEvents())
	}
	// Non-positive counts are ignored too.
	d.ObserveProposeSent(3, 0, 0)
	d.ObserveTimeout(3, -2, 0)
	if _, ok := d.EvidenceOf(3); ok {
		t.Fatal("zero-count observation tracked a peer")
	}
}

// TestDetectorEventLogBound drives enough verdict churn to overflow the
// bounded event log and checks the true totals survive the trim.
func TestDetectorEventLogBound(t *testing.T) {
	d := armed(t)
	var flips int64
	for i := 0; len(d.Events()) < 4096 || flips < 5000; i++ {
		id := wire.NodeID(i % 64)
		at := time.Duration(i) * time.Second
		d.Quarantine(id, at)
		d.Release(id, at)
		flips += 2
	}
	if got := len(d.Events()); got > 4096 {
		t.Fatalf("event log grew to %d entries", got)
	}
	if d.QuarantineEvents()+d.ReleaseEvents() != flips {
		t.Fatalf("true totals lost: %d+%d != %d",
			d.QuarantineEvents(), d.ReleaseEvents(), flips)
	}
	if d.QuarantineCount() != 0 {
		t.Fatalf("count drifted to %d", d.QuarantineCount())
	}
}

// --- Interceptor ---

// fakeTimer and fakeRuntime satisfy env's interfaces for handler-level tests
// without a simulator.
type fakeTimer struct{}

func (fakeTimer) Stop() bool { return false }

type fakeRuntime struct {
	id  wire.NodeID
	now time.Duration
	rng *rand.Rand
}

func (r *fakeRuntime) ID() wire.NodeID                       { return r.id }
func (r *fakeRuntime) Now() time.Duration                    { return r.now }
func (r *fakeRuntime) Send(wire.NodeID, wire.Message)        {}
func (r *fakeRuntime) After(time.Duration, func()) env.Timer { return fakeTimer{} }
func (r *fakeRuntime) AfterFunc(time.Duration, func())       {}
func (r *fakeRuntime) Rand() *rand.Rand {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(1))
	}
	return r.rng
}

// recordingHandler captures what survives the interceptor.
type recordingHandler struct {
	started, stopped bool
	msgs             []wire.Message
}

func (h *recordingHandler) Start(env.Runtime)                     { h.started = true }
func (h *recordingHandler) Receive(_ wire.NodeID, m wire.Message) { h.msgs = append(h.msgs, m) }
func (h *recordingHandler) Stop()                                 { h.stopped = true }

func TestInterceptorClassLabels(t *testing.T) {
	labels := map[misbehave.Class]string{
		misbehave.ClassHonest:    "honest",
		misbehave.ClassFreerider: "freerider",
		misbehave.ClassLiar:      "liar",
		misbehave.ClassDropper:   "dropper",
	}
	for c, want := range labels {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestInterceptorFreeriderDropsRequests(t *testing.T) {
	inner := &recordingHandler{}
	ic := &misbehave.Interceptor{Inner: inner, DropRequests: 1}
	ic.Start(&fakeRuntime{id: 9})
	if !inner.started {
		t.Fatal("Start not forwarded")
	}
	ic.Receive(1, &wire.Request{IDs: []wire.PacketID{1}})
	ic.Receive(1, &wire.Propose{IDs: []wire.PacketID{2}})
	ic.Receive(1, &wire.Serve{Events: []wire.Event{{}}})
	if ic.DroppedRequests != 1 || len(inner.msgs) != 2 {
		t.Fatalf("dropped %d requests, forwarded %d messages",
			ic.DroppedRequests, len(inner.msgs))
	}
	if _, isReq := inner.msgs[0].(*wire.Request); isReq {
		t.Fatal("a request leaked through a full-intensity freerider")
	}
	ic.Stop()
	if !inner.stopped {
		t.Fatal("Stop not forwarded")
	}
}

func TestInterceptorDropperDropsProposes(t *testing.T) {
	inner := &recordingHandler{}
	ic := &misbehave.Interceptor{Inner: inner, DropProposes: 1}
	ic.Start(&fakeRuntime{})
	ic.Receive(1, &wire.Propose{IDs: []wire.PacketID{1}})
	ic.Receive(1, &wire.Request{IDs: []wire.PacketID{1}})
	if ic.DroppedProposes != 1 || len(inner.msgs) != 1 {
		t.Fatalf("dropped %d proposes, forwarded %d", ic.DroppedProposes, len(inner.msgs))
	}
}

// TestInterceptorThinningExact pins the deterministic fractional accumulator:
// intensity p drops exactly ⌊p·n⌋ or ⌈p·n⌉ of every n messages, evenly spread,
// with no randomness involved.
func TestInterceptorThinningExact(t *testing.T) {
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75} {
		inner := &recordingHandler{}
		ic := &misbehave.Interceptor{Inner: inner, DropRequests: p}
		ic.Start(&fakeRuntime{})
		const n = 1000
		for i := 0; i < n; i++ {
			ic.Receive(1, &wire.Request{IDs: []wire.PacketID{wire.PacketID(i)}})
		}
		want := int64(p * n)
		// One count of float slack: the accumulator sums p in binary
		// floating point, so 1000 × 0.1 lands a hair under 100.
		if ic.DroppedRequests < want-1 || ic.DroppedRequests > want+1 {
			t.Errorf("intensity %v dropped %d of %d, want ~%d",
				p, ic.DroppedRequests, n, want)
		}
		if int64(len(inner.msgs))+ic.DroppedRequests != n {
			t.Errorf("intensity %v lost messages: %d forwarded + %d dropped != %d",
				p, len(inner.msgs), ic.DroppedRequests, n)
		}
	}
}

func TestInterceptorOnset(t *testing.T) {
	inner := &recordingHandler{}
	rt := &fakeRuntime{}
	ic := &misbehave.Interceptor{Inner: inner, DropRequests: 1, Onset: 10 * time.Second}
	ic.Start(rt)
	rt.now = 9 * time.Second
	ic.Receive(1, &wire.Request{IDs: []wire.PacketID{1}})
	if ic.DroppedRequests != 0 || len(inner.msgs) != 1 {
		t.Fatal("sleeper misbehaved before onset")
	}
	rt.now = 10 * time.Second
	ic.Receive(1, &wire.Request{IDs: []wire.PacketID{2}})
	if ic.DroppedRequests != 1 || len(inner.msgs) != 1 {
		t.Fatal("sleeper stayed honest at onset")
	}
}

// --- QuarantineSampler ---

// scriptSampler replays a fixed script of draws, recording how often it was
// consulted.
type scriptSampler struct {
	script [][]wire.NodeID
	calls  int
	count  int
}

func (s *scriptSampler) SelectPeers(_ *rand.Rand, k int) []wire.NodeID {
	if s.calls >= len(s.script) {
		s.calls++
		return nil
	}
	out := s.script[s.calls]
	s.calls++
	if len(out) > k {
		out = out[:k]
	}
	return append([]wire.NodeID(nil), out...)
}

func (s *scriptSampler) PeerCount() int { return s.count }

func TestQuarantineSamplerPassThrough(t *testing.T) {
	d := armed(t)
	inner := &scriptSampler{script: [][]wire.NodeID{{1, 2, 3}}, count: 8}
	qs := &misbehave.QuarantineSampler{Inner: inner, Detector: d}
	got := qs.SelectPeers(rand.New(rand.NewSource(1)), 3)
	if len(got) != 3 || inner.calls != 1 {
		t.Fatalf("clean draw: %v in %d calls, want one untouched draw", got, inner.calls)
	}
	if qs.PeerCount() != 8 {
		t.Fatalf("PeerCount = %d, want inner's 8", qs.PeerCount())
	}
}

func TestQuarantineSamplerFiltersAndRedraws(t *testing.T) {
	d := armed(t)
	d.Quarantine(2, 0)
	d.Quarantine(5, 0)
	inner := &scriptSampler{script: [][]wire.NodeID{
		{1, 2, 3}, // 2 is quarantined and filtered
		{4},       // redraw fills the freed slot
	}, count: 8}
	qs := &misbehave.QuarantineSampler{Inner: inner, Detector: d}
	got := qs.SelectPeers(rand.New(rand.NewSource(1)), 3)
	want := []wire.NodeID{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("draw = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw = %v, want %v", got, want)
		}
	}
}

// TestQuarantineSamplerRedrawDedup checks a redraw that only re-offers peers
// already kept makes no progress and terminates the redraw loop early.
func TestQuarantineSamplerRedrawDedup(t *testing.T) {
	d := armed(t)
	d.Quarantine(2, 0)
	inner := &scriptSampler{script: [][]wire.NodeID{
		{1, 2, 3},
		{1}, // duplicate of a kept peer: no growth, loop breaks
		{4}, // must never be consulted
	}, count: 8}
	qs := &misbehave.QuarantineSampler{Inner: inner, Detector: d}
	got := qs.SelectPeers(rand.New(rand.NewSource(1)), 3)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("draw = %v, want [1 3]", got)
	}
	if inner.calls != 2 {
		t.Fatalf("sampler consulted %d times, want 2 (break on no growth)", inner.calls)
	}
}

// TestQuarantineSamplerMassQuarantine checks the redraw bound: when most of
// the view is convicted, the sampler gives up after redrawRounds instead of
// spinning, and a short draw is returned.
func TestQuarantineSamplerMassQuarantine(t *testing.T) {
	d := armed(t)
	for id := wire.NodeID(1); id <= 6; id++ {
		d.Quarantine(id, 0)
	}
	inner := &scriptSampler{script: [][]wire.NodeID{
		{1, 2, 3}, {4, 5, 6}, {1, 2, 3}, {4, 5, 6}, {1, 2, 3},
	}, count: 6}
	qs := &misbehave.QuarantineSampler{Inner: inner, Detector: d}
	got := qs.SelectPeers(rand.New(rand.NewSource(1)), 3)
	if len(got) != 0 {
		t.Fatalf("mass quarantine drew %v, want empty", got)
	}
	if inner.calls > 3 { // initial draw + at most redrawRounds
		t.Fatalf("sampler consulted %d times, want ≤ 3", inner.calls)
	}
}

package misbehave

import (
	"time"

	"repro/internal/env"
	"repro/internal/wire"
)

// Class enumerates the adversarial node classes of this package. The zero
// value means honest.
type Class uint8

// Adversary classes.
const (
	ClassHonest    Class = iota
	ClassFreerider       // consumes but refuses to serve: drops inbound Requests
	ClassLiar            // over-advertises capability at the aggregation layer
	ClassDropper         // swallows inbound Proposes: never pulls, never relays
)

// String returns the class's report label.
func (c Class) String() string {
	switch c {
	case ClassFreerider:
		return "freerider"
	case ClassLiar:
		return "liar"
	case ClassDropper:
		return "dropper"
	default:
		return "honest"
	}
}

// Interceptor implements adversarial message handling by wrapping an honest
// protocol handler and deterministically discarding a configured fraction of
// selected inbound message kinds. A freerider drops Requests (it never
// serves); a dropper drops Proposes (it never pulls or relays). Everything
// else — including the Serves that carry the payloads the adversary wants —
// passes through, so the adversary stays a full consumer of the stream.
//
// Thinning is deterministic and rng-free: a fractional accumulator drops
// exactly ⌈fraction·n⌉ of every n messages, evenly spread, so adversarial
// runs stay byte-identical per seed. Intensity 1 drops everything.
type Interceptor struct {
	// Inner is the honest handler (the gossip engine).
	Inner env.Handler
	// DropRequests is the fraction of inbound Request messages discarded.
	DropRequests float64
	// DropProposes is the fraction of inbound Propose messages discarded.
	DropProposes float64
	// Onset delays misbehavior: before it, the node is honest. Sleeper
	// adversaries that turn after the detector's evidence windows are primed
	// are the harder detection case.
	Onset time.Duration

	rt      env.Runtime
	reqAcc  float64
	propAcc float64

	// DroppedRequests and DroppedProposes count discarded messages.
	DroppedRequests int64
	DroppedProposes int64
}

// Start passes through to the honest handler.
func (ic *Interceptor) Start(rt env.Runtime) {
	ic.rt = rt
	ic.Inner.Start(rt)
}

// Receive applies the drop policy, forwarding survivors to the honest
// handler.
func (ic *Interceptor) Receive(from wire.NodeID, msg wire.Message) {
	if ic.rt != nil && ic.rt.Now() >= ic.Onset {
		switch msg.(type) {
		case *wire.Request:
			if ic.thin(&ic.reqAcc, ic.DropRequests) {
				ic.DroppedRequests++
				return
			}
		case *wire.Propose:
			if ic.thin(&ic.propAcc, ic.DropProposes) {
				ic.DroppedProposes++
				return
			}
		}
	}
	ic.Inner.Receive(from, msg)
}

// Stop passes through to the honest handler.
func (ic *Interceptor) Stop() { ic.Inner.Stop() }

// thin advances the fractional accumulator and reports whether this message
// is discarded.
func (ic *Interceptor) thin(acc *float64, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	*acc += fraction
	if *acc >= 1 {
		*acc--
		return true
	}
	return false
}

package misbehave

import (
	"math/rand"

	"repro/internal/membership"
	"repro/internal/wire"
)

// QuarantineSampler wires the detector's verdicts through the membership
// sampler: gossip target draws exclude currently quarantined peers, so a
// convicted freerider stops receiving this node's proposals — and with them
// the payloads it was freeriding on. Filtered slots are redrawn (bounded)
// so honest fanout is preserved.
//
// When nothing is quarantined the wrapper draws exactly once and consumes
// exactly the inner sampler's randomness, so an unarmed detector leaves the
// peer-selection stream untouched.
type QuarantineSampler struct {
	// Inner is the wrapped sampler (static view or PSS).
	Inner membership.Sampler
	// Detector supplies the quarantine verdicts.
	Detector *Detector
}

// redrawRounds bounds the extra draws replacing filtered slots. Two rounds
// recover full fanout except under mass quarantine, where a short draw is
// the correct outcome anyway (most of the view is convicted).
const redrawRounds = 2

// SelectPeers draws up to k non-quarantined peers.
func (s *QuarantineSampler) SelectPeers(rng *rand.Rand, k int) []wire.NodeID {
	peers := s.Inner.SelectPeers(rng, k)
	kept := peers[:0]
	for _, p := range peers {
		if !s.Detector.Quarantined(p) {
			kept = append(kept, p)
		}
	}
	if len(kept) == len(peers) {
		return kept
	}
	for round := 0; round < redrawRounds && len(kept) < k; round++ {
		extra := s.Inner.SelectPeers(rng, k-len(kept))
		grew := false
		for _, p := range extra {
			if s.Detector.Quarantined(p) || contains(kept, p) {
				continue
			}
			kept = append(kept, p)
			grew = true
		}
		if !grew {
			break
		}
	}
	return kept
}

// PeerCount returns the inner sampler's population size (quarantined peers
// included: the count sizes fanout budgets, and quarantine is a routing
// decision, not a membership one).
func (s *QuarantineSampler) PeerCount() int { return s.Inner.PeerCount() }

// contains reports whether id is already drawn; fanouts are small, so a
// linear scan beats building a set.
func contains(peers []wire.NodeID, id wire.NodeID) bool {
	for _, p := range peers {
		if p == id {
			return true
		}
	}
	return false
}

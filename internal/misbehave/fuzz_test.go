package misbehave_test

// FuzzDetectorEvidence feeds the detector arbitrary observation
// interleavings: hostile peer ids, zero and negative counts, clocks that
// stall or jump backward, manual verdicts racing rule verdicts. Whatever the
// history, the detector must not panic or divide by zero, evidence counters
// must stay monotone, throughput figures finite, and the quarantine
// bookkeeping (current set, count, event totals) internally consistent.
//
// The seed corpus includes a trace distilled from an actual adversarial
// scenario run (the AdversaryStats evidence dump), so the fuzzer starts from
// realistic histories rather than pure noise.

import (
	"math"
	"testing"
	"time"

	"repro/internal/misbehave"
	"repro/internal/scenario"
	"repro/internal/wire"
)

// fuzzOps decodes the fuzz input as a stream of 4-byte operations
// [opcode, peer, a, b] and applies them to d, returning false from check on
// the first invariant violation.
func fuzzPeerID(b byte) wire.NodeID {
	switch {
	case b >= 253:
		return wire.NodeID(1<<20 + int32(b)) // beyond the hostile-input bound
	case b >= 248:
		return wire.NodeID(247 - int32(b)) // negative ids
	default:
		return wire.NodeID(b)
	}
}

// evidenceKey flattens an Evidence record for monotonicity comparison.
func evidenceKey(ev misbehave.Evidence) [7]int64 {
	return [7]int64{ev.ProposesSeen, ev.ProposedIDs, ev.RequestsSeen,
		ev.RequestedIDs, ev.ServedEvents, ev.ServedBytes, ev.Timeouts}
}

// encodeEvidence turns one peer's evidence record back into fuzz operations,
// capped so scenario-scale counters do not explode the corpus entry.
func encodeEvidence(dst []byte, peer byte, ev misbehave.Evidence) []byte {
	emit := func(op byte, n int64, a, b byte) []byte {
		if n > 12 {
			n = 12
		}
		for i := int64(0); i < n; i++ {
			dst = append(dst, op, peer, a, b)
		}
		return dst
	}
	dst = emit(0, ev.ProposesSeen, 1, 0)
	dst = emit(1, ev.ProposedIDs, 1, 0)
	dst = emit(2, ev.RequestsSeen, 1, 0)
	dst = emit(3, ev.RequestedIDs, 1, 0)
	dst = emit(4, ev.ServedEvents, 8, 0) // a scales served bytes
	dst = emit(5, ev.Timeouts, 1, 0)
	dst = append(dst, 6, 0, 200, 0) // tick, +200ms
	return dst
}

// scenarioCorpus runs one small adversarial scenario and distills its
// evidence dump into a corpus entry. Returns nil if the run fails (the fuzz
// target still has the synthetic seeds).
func scenarioCorpus() []byte {
	res, err := scenario.Run(scenario.Config{
		Nodes:    24,
		Protocol: scenario.HEAP,
		Dist:     scenario.MS691,
		Windows:  2,
		Seed:     11,
		Drain:    10 * time.Second,
		Adversary: &scenario.AdversarySpec{
			FreeriderFraction: 0.15,
			DropperFraction:   0.1,
			Detect:            &misbehave.Config{},
		},
	})
	if err != nil || res.AdversaryStats == nil {
		return nil
	}
	var out []byte
	for i, pe := range res.AdversaryStats.Evidence {
		if i >= 16 {
			break
		}
		out = encodeEvidence(out, byte(pe.Peer), pe.Ev)
	}
	return out
}

func FuzzDetectorEvidence(f *testing.F) {
	// Synthetic seeds: one of each opcode, hostile ids, backward clock,
	// manual verdict churn, and an empty input.
	f.Add([]byte{})
	f.Add([]byte{
		0, 1, 1, 0, // propose seen from peer 1
		1, 1, 5, 0, // 5 ids proposed to peer 1
		2, 2, 1, 0, // request seen from peer 2
		3, 2, 3, 0, // 3 ids requested from peer 2
		4, 3, 9, 1, // serve from peer 3
		5, 3, 2, 0, // timeouts attributed to peer 3
		6, 0, 250, 0, // tick +250ms
		7, 3, 0, 0, // manual quarantine peer 3
		8, 3, 0, 0, // manual release peer 3
		9, 1, 80, 0, // backward tick
	})
	f.Add([]byte{
		5, 4, 3, 0, 5, 4, 3, 0, // enough timeouts to convict peer 4
		6, 0, 255, 4, // tick
		4, 4, 200, 3, // serves begin
		6, 0, 255, 4,
		4, 4, 200, 3, 4, 4, 200, 3, 4, 4, 200, 3,
		6, 0, 255, 4, // release path
	})
	f.Add([]byte{0, 254, 1, 0, 5, 250, 9, 0, 4, 255, 0, 0, 6, 0, 0, 0}) // hostile ids
	if trace := scenarioCorpus(); len(trace) > 0 {
		f.Add(trace)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		d := misbehave.MustNew(misbehave.Config{Armed: true})
		prev := make(map[wire.NodeID][7]int64)
		now := time.Duration(0)
		for off := 0; off+4 <= len(data) && off < 4096*4; off += 4 {
			op, pb, a, b := data[off]%10, data[off+1], data[off+2], data[off+3]
			id := fuzzPeerID(pb)
			n := int(a)%16 - 2 // includes zero and negative counts
			switch op {
			case 0:
				d.ObserveProposeSeen(id, n, now)
			case 1:
				d.ObserveProposeSent(id, n, now)
			case 2:
				d.ObserveRequestSeen(id, n, now)
			case 3:
				d.ObserveRequestSent(id, n, now)
			case 4:
				d.ObserveServeSeen(id, n, int64(a)*int64(b)-64, now)
			case 5:
				d.ObserveTimeout(id, n, now)
			case 6:
				now += time.Duration(a) * 10 * time.Millisecond
				d.Tick(now)
			case 7:
				d.Quarantine(id, now)
			case 8:
				d.Release(id, now)
			case 9:
				// A tick with a stalled or backward clock must be harmless.
				d.Tick(now - time.Duration(a)*time.Millisecond)
			}

			// Monotone counters for every peer touched so far.
			for seen, last := range prev {
				ev, ok := d.EvidenceOf(seen)
				if !ok {
					t.Fatalf("tracked peer %d lost its record", seen)
				}
				cur := evidenceKey(ev)
				for i := range cur {
					if cur[i] < last[i] {
						t.Fatalf("peer %d counter %d shrank: %d -> %d",
							seen, i, last[i], cur[i])
					}
				}
				prev[seen] = cur
			}
			if ev, ok := d.EvidenceOf(id); ok {
				prev[id] = evidenceKey(ev)
			}
		}

		// Closing consistency: set, count, and totals agree; rates finite.
		qp := d.QuarantinedPeers()
		if len(qp) != d.QuarantineCount() {
			t.Fatalf("count %d, set %v", d.QuarantineCount(), qp)
		}
		for _, id := range qp {
			if !d.Quarantined(id) {
				t.Fatalf("peer %d in set but not quarantined", id)
			}
		}
		if got := d.QuarantineEvents() - d.ReleaseEvents(); got != int64(len(qp)) {
			t.Fatalf("event totals %d-%d disagree with %d quarantined",
				d.QuarantineEvents(), d.ReleaseEvents(), len(qp))
		}
		for id := range prev {
			last, peak := d.AchievedKbps(id)
			if math.IsNaN(last) || math.IsInf(last, 0) || math.IsNaN(peak) || math.IsInf(peak, 0) {
				t.Fatalf("peer %d throughput not finite: %v, %v", id, last, peak)
			}
			if last < 0 || peak < 0 {
				t.Fatalf("peer %d throughput negative: %v, %v", id, last, peak)
			}
		}
	})
}

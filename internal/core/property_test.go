package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/env"
	"repro/internal/wire"
)

// TestBitsetMatchesMapOracle drives the bitset with random operation
// sequences and compares against a map-based oracle.
func TestBitsetMatchesMapOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b bitset
		oracle := map[uint64]bool{}
		for op := 0; op < 500; op++ {
			key := uint64(rng.Intn(2048))
			switch rng.Intn(3) {
			case 0:
				b.add(key)
				oracle[key] = true
			case 1:
				b.remove(key)
				delete(oracle, key)
			case 2:
				if b.contains(key) != oracle[key] {
					return false
				}
			}
		}
		for key := uint64(0); key < 2048; key++ {
			if b.contains(key) != oracle[key] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestFanoutExpectationProperty checks the stochastic-rounding invariant for
// arbitrary relative capabilities: E[fanout] ~= min(fbar*rel, MaxFanout),
// floored at 1.
func TestFanoutExpectationProperty(t *testing.T) {
	rt := &propRuntime{rng: rand.New(rand.NewSource(2))}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}
	err := quick.Check(func(relRaw uint8) bool {
		rel := 0.05 + float64(relRaw)/64 // 0.05 .. ~4
		e := MustNew(Config{
			Fanout:       7,
			Adaptive:     true,
			Capabilities: fixedRel(rel),
			MaxFanout:    64,
			Sampler:      noopSampler{},
		})
		e.rt = rt
		const rounds = 8000
		sum := 0
		for i := 0; i < rounds; i++ {
			f := e.fanout()
			if f < 1 || f > 64 {
				return false
			}
			sum += f
		}
		want := 7 * rel
		if want > 64 {
			want = 64
		}
		if want < 1 {
			want = 1
		}
		mean := float64(sum) / rounds
		// 5% relative tolerance plus slack for the floor-at-1 region.
		return mean >= want*0.93-0.1 && mean <= want*1.07+0.1
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// propRuntime is the minimal runtime needed by Engine.fanout.
type propRuntime struct {
	rng *rand.Rand
}

var _ env.Runtime = (*propRuntime)(nil)

func (p *propRuntime) ID() wire.NodeID                { return 0 }
func (p *propRuntime) Rand() *rand.Rand               { return p.rng }
func (p *propRuntime) Now() time.Duration             { return 0 }
func (p *propRuntime) Send(wire.NodeID, wire.Message) {}
func (p *propRuntime) After(time.Duration, func()) env.Timer {
	return noopTimer{}
}

func (p *propRuntime) AfterFunc(time.Duration, func()) {}

type noopTimer struct{}

func (noopTimer) Stop() bool { return false }

type noopSampler struct{}

func (noopSampler) SelectPeers(*rand.Rand, int) []wire.NodeID { return nil }
func (noopSampler) PeerCount() int                            { return 0 }

package core

import (
	"math/bits"

	"repro/internal/wire"
)

// Packet ids are assigned densely in publish order (internal/stream), so the
// engine's per-packet bookkeeping — delivered flags, outstanding requests,
// the serve buffer — lives in flat slices indexed by id instead of maps.
// This file holds those structures. They are sized once from the stream
// geometry (Config.ExpectedPackets) and grow transparently past it, so the
// steady-state hot path neither hashes nor allocates.

// bitset is a growable bitmap over dense uint64 keys.
type bitset struct {
	words []uint64
}

// presize reserves capacity for keys [0, n) without setting any bit.
func (b *bitset) presize(n int) {
	if want := (n + 63) / 64; want > len(b.words) {
		words := make([]uint64, want)
		copy(words, b.words)
		b.words = words
	}
}

func (b *bitset) add(i uint64) {
	w := i >> 6
	for uint64(len(b.words)) <= w {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (i & 63)
}

func (b *bitset) remove(i uint64) {
	w := i >> 6
	if w < uint64(len(b.words)) {
		b.words[w] &^= 1 << (i & 63)
	}
}

func (b *bitset) contains(i uint64) bool {
	w := i >> 6
	return w < uint64(len(b.words)) && b.words[w]&(1<<(i&63)) != 0
}

// denseTable is a presence bitset plus a dense slot array indexed by packet
// id: the map replacement shared by the outstanding-request table and the
// serve buffer.
type denseTable[T any] struct {
	present bitset
	slots   []T
	count   int
}

func (t *denseTable[T]) presize(n int) {
	t.present.presize(n)
	if n > len(t.slots) {
		slots := make([]T, n)
		copy(slots, t.slots)
		t.slots = slots
	}
}

func (t *denseTable[T]) len() int { return t.count }

func (t *denseTable[T]) contains(id wire.PacketID) bool {
	return t.present.contains(uint64(id))
}

// get returns the slot for a present id, or nil.
func (t *denseTable[T]) get(id wire.PacketID) *T {
	if !t.present.contains(uint64(id)) {
		return nil
	}
	return &t.slots[id]
}

// insert marks id present and returns its zeroed slot. Inserting an
// already-present id resets its slot.
func (t *denseTable[T]) insert(id wire.PacketID) *T {
	if !t.present.contains(uint64(id)) {
		t.count++
		t.present.add(uint64(id))
	}
	var zero T
	for uint64(len(t.slots)) <= uint64(id) {
		t.slots = append(t.slots, zero)
	}
	slot := &t.slots[id]
	*slot = zero
	return slot
}

// remove clears a present id. Removing an absent id is a no-op.
func (t *denseTable[T]) remove(id wire.PacketID) {
	if !t.present.contains(uint64(id)) {
		return
	}
	var zero T
	t.present.remove(uint64(id))
	t.slots[id] = zero
	t.count--
}

// prune drops every slot for which drop returns true, walking the presence
// bitset word by word (deterministic ascending-id order, unlike the map
// iteration it replaced).
func (t *denseTable[T]) prune(drop func(*T) bool) {
	var zero T
	for w, word := range t.present.words {
		for word != 0 {
			bit := uint(bits.TrailingZeros64(word))
			word &^= 1 << bit
			id := uint64(w)*64 + uint64(bit)
			if drop(&t.slots[id]) {
				t.present.words[w] &^= 1 << bit
				t.slots[id] = zero
				t.count--
			}
		}
	}
}

// pendingSlot tracks one outstanding id: who proposed it and how often we
// asked. Proposers live in a fixed-size array (maxProposersTracked) so slots
// are plain values with no per-id allocation.
type pendingSlot struct {
	proposers    [maxProposersTracked]wire.NodeID
	numProposers uint8
	attempts     uint16
}

// pendingTable is the outstanding-request table.
type pendingTable = denseTable[pendingSlot]

// bufferTable is the serve buffer: delivered events kept for serving late
// requests.
type bufferTable = denseTable[bufferedEvent]

package core

import (
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/membership"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// advertRecorder is a CapabilityEstimator that also records SetSelfCapKbps
// calls, standing in for aggregation.Estimator in adaptation tests.
type advertRecorder struct {
	rel   float64
	calls []uint32
}

func (a *advertRecorder) RelativeCapability() float64 { return a.rel }
func (a *advertRecorder) SetSelfCapKbps(kbps uint32)  { a.calls = append(a.calls, kbps) }

// adaptEngine builds one engine on a tiny simnet with a scripted pressure
// signal and two budget-weighted streams (so budgetScale is live).
func adaptEngine(t *testing.T, signal func() adapt.Sample) (*Engine, *advertRecorder, *simnet.Network) {
	t.Helper()
	ctrl, err := adapt.NewController(adapt.Config{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rec := &advertRecorder{rel: 1}
	dir := membership.NewDirectory(4)
	e := MustNew(Config{
		Fanout:       7,
		Adaptive:     true,
		Capabilities: rec,
		UploadKbps:   1000,
		Sampler:      dir.ViewFor(0),
		Adapt:        ctrl,
		AdaptSignal:  signal,
	})
	for _, id := range []wire.StreamID{0, 1} {
		if err := e.OpenStream(id, StreamConfig{RateKbps: 600}); err != nil {
			t.Fatal(err)
		}
	}
	net := simnet.New(simnet.Config{Seed: 77})
	net.AddNode(e, simnet.NodeConfig{})
	for i := 1; i < 4; i++ {
		net.AddNode(silentHandler{}, simnet.NodeConfig{})
	}
	return e, rec, net
}

func TestAdaptValidation(t *testing.T) {
	ctrl, err := adapt.NewController(adapt.Config{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	dir := membership.NewDirectory(2)
	if _, err := New(Config{Fanout: 7, Sampler: dir.ViewFor(0), Adapt: ctrl}); err == nil {
		t.Error("Adapt without AdaptSignal accepted")
	}
	if _, err := New(Config{Fanout: 7, Sampler: dir.ViewFor(0),
		AdaptSignal: func() adapt.Sample { return adapt.Sample{} }}); err == nil {
		t.Error("AdaptSignal without Adapt accepted")
	}
}

// TestAdaptTickReadvertisesAndShrinksBudget drives the engine under a
// scripted saturation signal: the controller must cut the advertisement
// through the estimator hook and the fanout-budget allocator must rebalance
// off the adapted (not the configured) capability.
func TestAdaptTickReadvertisesAndShrinksBudget(t *testing.T) {
	var sent int64
	congested := true
	e, rec, net := adaptEngine(t, func() adapt.Sample {
		// Enqueue-side bytes grow at ~1000 kbps while only ~400 kbps drain:
		// a saturated uplink with a standing queue.
		sent += 62_500 // 1000 kbps * 500 ms / 8
		s := adapt.Sample{SentBytes: sent, QueuedBytes: sent * 6 / 10}
		if congested {
			s.Backlog = 2 * time.Second
		}
		return s
	})
	baseline := e.BudgetScale()
	// predicted 1200 > budget 0.8*1000: the allocator is already active.
	if baseline >= 1 {
		t.Fatalf("setup: budget scale %v, want < 1", baseline)
	}
	net.Run(10 * time.Second)
	if len(rec.calls) == 0 {
		t.Fatal("sustained congestion never re-advertised")
	}
	for _, v := range rec.calls {
		if v >= 1000 {
			t.Fatalf("re-advertised %d, want below the configured 1000", v)
		}
		if v < e.cfg.Adapt.FloorKbps() {
			t.Fatalf("re-advertised %d below the floor %d", v, e.cfg.Adapt.FloorKbps())
		}
	}
	if got := e.BudgetScale(); got >= baseline {
		t.Fatalf("budget scale %v did not shrink below the configured-capability scale %v", got, baseline)
	}
	if e.effUploadKbps != e.cfg.Adapt.EffectiveKbps() {
		t.Fatalf("budget capability %d does not track the controller's %d",
			e.effUploadKbps, e.cfg.Adapt.EffectiveKbps())
	}

	// Recovery: a drained signal must probe the advertisement back up and
	// restore the budget toward the configured value.
	congested = false
	low := e.cfg.Adapt.EffectiveKbps()
	net.Run(60 * time.Second)
	if got := e.cfg.Adapt.EffectiveKbps(); got <= low {
		t.Fatalf("drained uplink never probed upward (stuck at %d)", got)
	}
}

// TestAdaptDisabledIsInert pins the inertness contract: without Adapt the
// engine performs no sampling and the budget uses the configured capability.
func TestAdaptDisabledIsInert(t *testing.T) {
	dir := membership.NewDirectory(2)
	e := MustNew(Config{Fanout: 7, UploadKbps: 1000, Sampler: dir.ViewFor(0)})
	net := simnet.New(simnet.Config{Seed: 78})
	net.AddNode(e, simnet.NodeConfig{})
	net.AddNode(silentHandler{}, simnet.NodeConfig{})
	net.Run(5 * time.Second)
	if e.effUploadKbps != 1000 {
		t.Fatalf("effective budget %d drifted without an adapt controller", e.effUploadKbps)
	}
}

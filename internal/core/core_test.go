package core

import (
	"testing"
	"time"

	"repro/internal/env"
	"repro/internal/membership"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func TestNewValidation(t *testing.T) {
	dir := membership.NewDirectory(4)
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid standard", Config{Fanout: 7, Sampler: dir.ViewFor(0)}, false},
		{"zero fanout", Config{Sampler: dir.ViewFor(0)}, true},
		{"negative fanout", Config{Fanout: -1, Sampler: dir.ViewFor(0)}, true},
		{"nil sampler", Config{Fanout: 7}, true},
		{"adaptive without estimator", Config{Fanout: 7, Adaptive: true, Sampler: dir.ViewFor(0)}, true},
		{"adaptive with estimator", Config{Fanout: 7, Adaptive: true,
			Capabilities: fixedRel(2), Sampler: dir.ViewFor(0)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

// fixedRel is a CapabilityEstimator returning a constant ratio.
type fixedRel float64

func (f fixedRel) RelativeCapability() float64 { return float64(f) }

func TestBitset(t *testing.T) {
	var b bitset
	if b.contains(0) || b.contains(1000) {
		t.Fatal("empty bitset contains elements")
	}
	b.add(0)
	b.add(63)
	b.add(64)
	b.add(1000)
	for _, i := range []uint64{0, 63, 64, 1000} {
		if !b.contains(i) {
			t.Fatalf("missing %d", i)
		}
	}
	if b.contains(1) || b.contains(999) {
		t.Fatal("false positive")
	}
	b.remove(64)
	if b.contains(64) {
		t.Fatal("remove failed")
	}
	b.remove(100000) // out of range: no-op
	b.add(64)
	if !b.contains(64) {
		t.Fatal("re-add failed")
	}
}

// testCluster wires n engines over a simulated network. Node 0 is the
// source. Returns per-node delivery logs.
type testCluster struct {
	net     *simnet.Network
	engines []*Engine
	deliver [][]wire.PacketID
}

type clusterOpts struct {
	n         int
	fanout    float64
	adaptive  bool
	rel       []float64 // per-node relative capability (adaptive only)
	loss      float64
	uploadBps []int64
	retMax    int
	seed      int64
}

func newTestCluster(t *testing.T, o clusterOpts) *testCluster {
	t.Helper()
	if o.fanout == 0 {
		o.fanout = 6
	}
	net := simnet.New(simnet.Config{
		Seed:     o.seed,
		Latency:  simnet.ConstantLatency(10 * time.Millisecond),
		LossRate: o.loss,
	})
	dir := membership.NewDirectory(o.n)
	c := &testCluster{
		net:     net,
		engines: make([]*Engine, o.n),
		deliver: make([][]wire.PacketID, o.n),
	}
	for i := 0; i < o.n; i++ {
		i := i
		cfg := Config{
			Fanout:         o.fanout,
			GossipPeriod:   200 * time.Millisecond,
			RetMaxAttempts: o.retMax,
			Sampler:        dir.ViewFor(wire.NodeID(i)),
			OnDeliver: func(ev wire.Event, _ time.Duration) {
				c.deliver[i] = append(c.deliver[i], ev.ID)
			},
		}
		if o.adaptive {
			cfg.Adaptive = true
			rel := 1.0
			if o.rel != nil {
				rel = o.rel[i]
			}
			cfg.Capabilities = fixedRel(rel)
		}
		c.engines[i] = MustNew(cfg)
		var nc simnet.NodeConfig
		if o.uploadBps != nil {
			nc.UploadBps = o.uploadBps[i]
		}
		net.AddNode(c.engines[i], nc)
	}
	return c
}

func (c *testCluster) publish(at time.Duration, ev wire.Event) {
	c.net.Schedule(at, func() { c.engines[0].Publish(ev) })
}

func payload(n int) []byte { return make([]byte, n) }

func TestSingleEventReachesAllNodes(t *testing.T) {
	c := newTestCluster(t, clusterOpts{n: 50, seed: 1})
	c.publish(0, wire.Event{ID: 1, Stamp: 0, Payload: payload(100)})
	c.net.Run(time.Minute)
	for i, got := range c.deliver {
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("node %d delivered %v, want [1]", i, got)
		}
	}
}

func TestDeliveryIsExactlyOnce(t *testing.T) {
	c := newTestCluster(t, clusterOpts{n: 40, seed: 2, loss: 0.05, retMax: 4})
	for i := 0; i < 20; i++ {
		c.publish(time.Duration(i)*50*time.Millisecond,
			wire.Event{ID: wire.PacketID(i), Payload: payload(200)})
	}
	c.net.Run(2 * time.Minute)
	for node, got := range c.deliver {
		seen := map[wire.PacketID]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("node %d delivered %d twice via upcall", node, id)
			}
			seen[id] = true
		}
	}
}

func TestStreamOfEventsNearFullDelivery(t *testing.T) {
	// Gossip with fanout f misses a (node, event) pair with probability
	// ~e^-f (that residual is what the paper's FEC masks), so assert
	// near-full rather than perfect delivery.
	const n, events = 60, 100
	c := newTestCluster(t, clusterOpts{n: n, fanout: 8, seed: 3})
	for i := 0; i < events; i++ {
		c.publish(time.Duration(i)*20*time.Millisecond,
			wire.Event{ID: wire.PacketID(i), Payload: payload(500)})
	}
	c.net.Run(3 * time.Minute)
	total := 0
	for node, got := range c.deliver {
		if len(got) < events*97/100 {
			t.Fatalf("node %d delivered %d of %d events", node, len(got), events)
		}
		total += len(got)
	}
	if total < n*events*99/100 {
		t.Fatalf("system-wide delivery %d of %d below 99%%", total, n*events)
	}
}

func TestInfectAndDieEachIDProposedOncePerNode(t *testing.T) {
	// With infect-and-die, each node proposes each id in exactly one round
	// (to f peers). Total proposes per id across the system is therefore
	// <= n*f. Verify the aggregate bound.
	const n = 30
	fanout := 5.0
	c := newTestCluster(t, clusterOpts{n: n, fanout: fanout, seed: 4})
	c.publish(0, wire.Event{ID: 1, Payload: payload(100)})
	c.net.Run(time.Minute)
	var proposes int64
	for _, e := range c.engines {
		proposes += e.Stats().ProposesSent
	}
	if proposes > int64(n*int(fanout)) {
		t.Fatalf("%d proposes for one id exceeds n*f = %d (infect-and-die violated)", proposes, n*int(fanout))
	}
	if proposes < int64(n) {
		t.Fatalf("implausibly few proposes: %d", proposes)
	}
}

func TestRequestDedupOnlyOneRequestPerID(t *testing.T) {
	// Without loss and without retransmission, each node must request each
	// id at most once, no matter how many proposals it receives.
	const n, events = 30, 10
	c := newTestCluster(t, clusterOpts{n: n, seed: 5, retMax: 1})
	for i := 0; i < events; i++ {
		c.publish(time.Duration(i)*20*time.Millisecond,
			wire.Event{ID: wire.PacketID(i), Payload: payload(100)})
	}
	c.net.Run(time.Minute)
	var served, delivered int64
	for _, e := range c.engines {
		st := e.Stats()
		served += st.EventsServed
		delivered += st.EventsDelivered
	}
	// Exactly-once invariant: every remote delivery corresponds to exactly
	// one serve (the source's own `events` deliveries are local publishes).
	if served != delivered-events {
		t.Fatalf("served %d events for %d remote deliveries; duplicates or losses without retransmission", served, delivered-events)
	}
	if delivered < int64(n*events*97/100) {
		t.Fatalf("delivered %d, want >= 97%% of %d", delivered, n*events)
	}
	var dups int64
	for _, e := range c.engines {
		dups += e.Stats().DuplicateEvents
	}
	if dups != 0 {
		t.Fatalf("duplicate events %d, want 0 without loss/retransmission", dups)
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	const n, events = 40, 50
	// 15% datagram loss, no FEC at this layer: only retransmission can
	// recover. With 4 attempts across alternates, delivery should be ~full.
	with := newTestCluster(t, clusterOpts{n: n, seed: 6, loss: 0.15, retMax: 4})
	without := newTestCluster(t, clusterOpts{n: n, seed: 6, loss: 0.15, retMax: 1})
	for _, c := range []*testCluster{with, without} {
		for i := 0; i < events; i++ {
			c.publish(time.Duration(i)*20*time.Millisecond,
				wire.Event{ID: wire.PacketID(i), Payload: payload(300)})
		}
		c.net.Run(3 * time.Minute)
	}
	count := func(c *testCluster) (total int) {
		for _, got := range c.deliver {
			total += len(got)
		}
		return total
	}
	withCount, withoutCount := count(with), count(without)
	if withCount <= withoutCount {
		t.Fatalf("retransmission did not help: with=%d without=%d", withCount, withoutCount)
	}
	// Lost proposes shrink the effective fanout (~e^-(0.85·f) residual miss
	// rate); retransmission recovers lost requests/serves only.
	if float64(withCount) < 0.975*float64(n*events) {
		t.Fatalf("with retransmission delivered %d of %d", withCount, n*events)
	}
	var retx int64
	for _, e := range with.engines {
		retx += e.Stats().Retransmissions
	}
	if retx == 0 {
		t.Fatal("no retransmissions despite loss")
	}
}

func TestAdaptiveFanoutShiftsLoadToRichNodes(t *testing.T) {
	// 10 rich nodes (rel 4.0) and 30 poor ones (rel 0.25·30/30... chosen so
	// the mean is 1): rich nodes should send ~16x the proposes of poor ones
	// and consequently serve much more.
	const n = 40
	rel := make([]float64, n)
	for i := range rel {
		if i < 10 {
			rel[i] = 2.8
		} else {
			rel[i] = 0.4
		}
	}
	c := newTestCluster(t, clusterOpts{n: n, seed: 7, adaptive: true, rel: rel})
	for i := 0; i < 60; i++ {
		c.publish(time.Duration(i)*20*time.Millisecond,
			wire.Event{ID: wire.PacketID(i), Payload: payload(400)})
	}
	c.net.Run(2 * time.Minute)
	var richProposes, poorProposes, richServed, poorServed int64
	for i, e := range c.engines {
		if i == 0 {
			continue // source's immediate publishes skew its propose count
		}
		st := e.Stats()
		if i < 10 {
			richProposes += st.ProposesSent
			richServed += st.EventsServed
		} else {
			poorProposes += st.ProposesSent
			poorServed += st.EventsServed
		}
	}
	// Per-node averages (9 rich after skipping the source, 30 poor).
	richP, poorP := float64(richProposes)/9, float64(poorProposes)/30
	if richP < 4*poorP {
		t.Fatalf("rich nodes propose %.1f vs poor %.1f; want >= 4x", richP, poorP)
	}
	richS, poorS := float64(richServed)/9, float64(poorServed)/30
	if richS < 2*poorS {
		t.Fatalf("rich nodes served %.1f vs poor %.1f; want >= 2x", richS, poorS)
	}
}

func TestFanoutStochasticRoundingPreservesMean(t *testing.T) {
	dir := membership.NewDirectory(100)
	e := MustNew(Config{Fanout: 6.99, Sampler: dir.ViewFor(0)})
	net := simnet.New(simnet.Config{Seed: 8})
	net.AddNode(e, simnet.NodeConfig{})
	net.Run(time.Millisecond)
	var sum int
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		sum += e.fanout()
	}
	mean := float64(sum) / rounds
	if mean < 6.9 || mean > 7.08 {
		t.Fatalf("mean fanout %.3f, want ~6.99", mean)
	}
}

func TestFanoutClampedToMax(t *testing.T) {
	dir := membership.NewDirectory(100)
	e := MustNew(Config{Fanout: 7, Adaptive: true, Capabilities: fixedRel(1000),
		MaxFanout: 16, Sampler: dir.ViewFor(0)})
	net := simnet.New(simnet.Config{Seed: 9})
	net.AddNode(e, simnet.NodeConfig{})
	net.Run(time.Millisecond)
	for i := 0; i < 100; i++ {
		if f := e.fanout(); f > 16 {
			t.Fatalf("fanout %d exceeds MaxFanout 16", f)
		}
	}
}

func TestFanoutFloorOne(t *testing.T) {
	dir := membership.NewDirectory(100)
	e := MustNew(Config{Fanout: 7, Adaptive: true, Capabilities: fixedRel(0.001),
		Sampler: dir.ViewFor(0)})
	net := simnet.New(simnet.Config{Seed: 10})
	net.AddNode(e, simnet.NodeConfig{})
	net.Run(time.Millisecond)
	for i := 0; i < 100; i++ {
		if f := e.fanout(); f < 1 {
			t.Fatalf("fanout %d below floor 1", f)
		}
	}
}

func TestServeBufferPruning(t *testing.T) {
	c := newTestCluster(t, clusterOpts{n: 10, seed: 11})
	// Short buffer for the test.
	for _, e := range c.engines {
		e.cfg.ServeBuffer = 2 * time.Second
	}
	c.publish(0, wire.Event{ID: 1, Payload: payload(100)})
	c.net.Run(30 * time.Second)
	for i, e := range c.engines {
		if e.BufferedEvents() != 0 {
			t.Fatalf("node %d still buffers %d events after prune horizon", i, e.BufferedEvents())
		}
		if !e.Delivered(1) {
			t.Fatalf("node %d lost delivery record", i)
		}
	}
}

func TestPublishDuplicateIgnored(t *testing.T) {
	c := newTestCluster(t, clusterOpts{n: 5, seed: 12})
	c.publish(0, wire.Event{ID: 1, Payload: payload(10)})
	c.publish(time.Millisecond, wire.Event{ID: 1, Payload: payload(10)})
	c.net.Run(10 * time.Second)
	src := c.deliver[0]
	if len(src) != 1 {
		t.Fatalf("source delivered %v, want exactly one", src)
	}
}

func TestGiveUpAfterMaxAttempts(t *testing.T) {
	// One proposer that never serves: a node should give up after
	// RetMaxAttempts and count it.
	dir := membership.NewDirectory(2)
	net := simnet.New(simnet.Config{Seed: 13})
	e := MustNew(Config{Fanout: 1, RetMaxAttempts: 3, RetPeriod: 100 * time.Millisecond,
		Sampler: dir.ViewFor(0)})
	net.AddNode(e, simnet.NodeConfig{})
	// Node 1 proposes but drops requests (HandlerFunc ignoring everything).
	net.AddNode(silentHandler{}, simnet.NodeConfig{})
	net.Schedule(0, func() {
		e.Receive(1, &wire.Propose{IDs: []wire.PacketID{42}})
	})
	net.Run(5 * time.Second)
	st := e.Stats()
	if st.GiveUps != 1 {
		t.Fatalf("give-ups = %d, want 1", st.GiveUps)
	}
	if e.PendingRequests() != 0 {
		t.Fatalf("pending requests = %d after give-up", e.PendingRequests())
	}
	if st.Retransmissions != 2 {
		t.Fatalf("retransmissions = %d, want 2 (attempts 2 and 3)", st.Retransmissions)
	}
	// A fresh propose must be able to re-trigger a request.
	net.Schedule(net.Now(), func() {
		e.Receive(1, &wire.Propose{IDs: []wire.PacketID{42}})
	})
	net.Run(net.Now() + 50*time.Millisecond)
	if e.PendingRequests() != 1 {
		t.Fatal("fresh propose after give-up did not re-request")
	}
}

type silentHandler struct{}

func (silentHandler) Start(env.Runtime)                 {}
func (silentHandler) Receive(wire.NodeID, wire.Message) {}
func (silentHandler) Stop()                             {}

func TestCrashMidStreamOthersStillDeliver(t *testing.T) {
	const n, events = 40, 80
	c := newTestCluster(t, clusterOpts{n: n, seed: 14, retMax: 4})
	for i := 0; i < events; i++ {
		c.publish(time.Duration(i)*20*time.Millisecond,
			wire.Event{ID: wire.PacketID(i), Payload: payload(300)})
	}
	// Crash a third of the nodes (not the source) at t=500ms and remove
	// them from views 200ms later (failure notification delay).
	dir := membership.NewDirectory(n)
	_ = dir
	for i := 1; i <= n/3; i++ {
		id := wire.NodeID(i)
		c.net.Schedule(500*time.Millisecond, func() { c.net.Crash(id) })
	}
	c.net.Run(3 * time.Minute)
	// Proposals to dead nodes are wasted (views are not updated in this
	// test), shrinking the effective fanout by a third; some packets held
	// only by crashed nodes are also gone. Expect degraded but substantial
	// delivery.
	for i := n/3 + 1; i < n; i++ {
		if len(c.deliver[i]) < events*85/100 {
			t.Fatalf("survivor %d delivered only %d of %d", i, len(c.deliver[i]), events)
		}
	}
}

func TestUnservableRequestsCounted(t *testing.T) {
	dir := membership.NewDirectory(2)
	net := simnet.New(simnet.Config{Seed: 15})
	e := MustNew(Config{Fanout: 1, Sampler: dir.ViewFor(0)})
	net.AddNode(e, simnet.NodeConfig{})
	net.Schedule(0, func() {
		e.Receive(1, &wire.Request{IDs: []wire.PacketID{7}})
	})
	net.Run(time.Second)
	if e.Stats().UnservableIDs != 1 {
		t.Fatalf("unservable = %d, want 1", e.Stats().UnservableIDs)
	}
}

// Package core implements the paper's dissemination protocols: the standard
// three-phase gossip protocol (Algorithm 1) and HEAP, its
// heterogeneity-aware extension (Algorithm 2).
//
// # Three-phase gossip (Algorithm 1)
//
// Content spreads in a push-request-push pattern. Every gossip period a node
// sends the identifiers of the events it received during the last period
// ([Propose]) to f random peers, then forgets them (infect-and-die: each id
// is proposed exactly once per node). A peer receiving a proposal requests
// the ids it has not yet requested ([Request]); the proposer answers with
// the payloads ([Serve]). Requesting each id at most once keeps the average
// per-node upload at or below the stream rate.
//
// # HEAP (Algorithm 2)
//
// HEAP keeps the protocol identical but makes the fanout a per-node,
// per-round quantity:
//
//	f_i = fbar · b_i / bbar
//
// where bbar comes from the capability aggregation protocol
// (internal/aggregation). Since every proposal has roughly the same
// acceptance probability, a node's serve load is proportional to its fanout,
// so contribution tracks capability while the system-wide average fanout
// stays at the reliability threshold fbar = ln(n) + c.
//
// Retransmission (Algorithm 2, lines 6-10) re-requests ids whose [Serve] did
// not arrive within a timeout, falling back to alternate proposers. Per the
// paper's evaluation methodology (§3.1), retransmission is part of both
// protocols, so it lives here in the shared engine.
//
// # Multi-source streams
//
// One engine disseminates any number of concurrent streams over a single
// membership view and capability aggregation layer. Per-stream state
// (delivered flags, pending/buffer tables, the retransmit queue) lives in a
// streamState per stream id (streams.go); the estimator, sampler, tickers
// and period adaptation are engine-global. When several streams compete for
// the node's uplink, the fanout-budget allocator (budgetScale) divides the
// node's upload capability across them, weighted by stream rate, so
// aggregate sends never exceed Config.UploadKbps.
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/adapt"
	"repro/internal/env"
	"repro/internal/membership"
	"repro/internal/wire"
)

// CapabilityEstimator supplies HEAP's relative capability b_i/bbar. The
// aggregation package's Estimator implements it.
type CapabilityEstimator interface {
	RelativeCapability() float64
}

// CapabilityAdvertiser rewrites the capability a node advertises to the
// aggregation protocol. The aggregation package's Estimator implements it;
// the engine discovers it by type assertion on Config.Capabilities, so the
// adaptation loop needs no extra wiring on HEAP nodes.
type CapabilityAdvertiser interface {
	SetSelfCapKbps(kbps uint32)
}

// DeliverFunc is the application upcall for newly delivered events. Events
// are delivered exactly once per stream, in arrival (not publish) order; the
// event's Stream field identifies which stream it belongs to.
type DeliverFunc func(ev wire.Event, at time.Duration)

// Monitor observes per-peer protocol evidence and answers quarantine
// queries — the hook through which a misbehavior detector
// (internal/misbehave) plugs into the engine. The engine feeds it from the
// protocol hot paths: proposals seen and sent, requests seen and sent, serve
// payloads received, and request timeouts attributed to the peer that failed
// to serve. Quarantined peers have their proposals ignored and are skipped
// by the retransmission rotation; target-draw filtering is the sampler's job
// (misbehave.QuarantineSampler). All methods run on the node's execution
// context; implementations must be deterministic and rng-free so monitored
// runs keep every reproducibility guarantee. A nil Monitor leaves the engine
// byte-identical to a build without the hook.
type Monitor interface {
	// ObserveProposeSeen records a Propose carrying ids, received from a peer.
	ObserveProposeSeen(from wire.NodeID, ids int, at time.Duration)
	// ObserveProposeSent records ids proposed to a peer.
	ObserveProposeSent(to wire.NodeID, ids int, at time.Duration)
	// ObserveRequestSeen records a Request carrying ids, received from a peer.
	ObserveRequestSeen(from wire.NodeID, ids int, at time.Duration)
	// ObserveRequestSent records ids requested from a peer.
	ObserveRequestSent(to wire.NodeID, ids int, at time.Duration)
	// ObserveServeSeen records payloads served by a peer.
	ObserveServeSeen(from wire.NodeID, events int, bytes int64, at time.Duration)
	// ObserveTimeout records request timeouts attributed to a peer.
	ObserveTimeout(to wire.NodeID, ids int, at time.Duration)
	// Quarantined reports whether the peer is currently quarantined.
	Quarantined(id wire.NodeID) bool
	// Tick drives evaluation; called once per gossip round.
	Tick(now time.Duration)
}

// TraceSink observes the dissemination path of each packet at this node —
// the hook through which a telemetry tracer (internal/telemetry) plugs into
// the engine, following the Monitor pattern exactly: all methods run on the
// node's execution context, implementations must be deterministic and
// rng-free, and a nil sink leaves the engine byte-identical to a build
// without the hook. Hop counts are not carried on the wire (that would
// perturb the fingerprinted encodings); they are joined offline from the
// per-node records, since From names the peer whose own delivery precedes
// this one.
type TraceSink interface {
	// TracePublish records a locally published packet — hop zero of its
	// dissemination path.
	TracePublish(stream wire.StreamID, id wire.PacketID, at time.Duration)
	// TraceRequest records the first request this node issued for a packet,
	// to the proposer it chose.
	TraceRequest(stream wire.StreamID, id wire.PacketID, from wire.NodeID, at time.Duration)
	// TraceDeliver records a packet delivered via a peer's Serve.
	TraceDeliver(stream wire.StreamID, id wire.PacketID, from wire.NodeID, at time.Duration)
}

// Config parameterizes a gossip engine.
type Config struct {
	// Fanout is fbar, the system-wide average fanout (ln(n)+c). In
	// standard mode every round uses exactly this value (stochastically
	// rounded if fractional); in adaptive mode it is scaled by the node's
	// relative capability.
	Fanout float64
	// FanoutFn, when non-nil, supplies fbar dynamically — e.g. ln(n̂)+c
	// from a continuous system-size estimator, removing the paper's
	// "n known in advance" simplification (§2.2). Non-positive returns
	// fall back to Fanout.
	FanoutFn func() float64
	// Adaptive enables HEAP's capability adaptation. Requires Capabilities.
	Adaptive bool
	// AdaptPeriod switches the adaptation knob from the fanout to the
	// gossip period (a §5 alternative): the fanout stays at Fanout while
	// the round period becomes GossipPeriod/(b_i/bbar), clamped to
	// [GossipPeriod/8, GossipPeriod*8]. Requires Adaptive.
	AdaptPeriod bool
	// Capabilities provides b_i/bbar for adaptive mode. Ignored otherwise.
	Capabilities CapabilityEstimator
	// MaxFanout clamps the adapted fanout. Default 64.
	MaxFanout int
	// GossipPeriod is the propose batching period. Default 200 ms (§3.1).
	GossipPeriod time.Duration
	// RetPeriod is the retransmission timeout: how long to wait for a
	// [Serve] before re-requesting. It must sit outside the tail of normal
	// congestion transients, not just outside the mean serve time: when the
	// timer fires on ordinary queueing delay, the duplicate serves it
	// triggers add load exactly where the system is already tight, a
	// positive feedback that collapses runs at CSR ~1.15 (measured: a 2 s
	// timeout turned a perfectly stable uniform-691 run into 48% duplicate
	// traffic and full collapse). Default 5 s.
	RetPeriod time.Duration
	// RetMaxAttempts bounds request attempts per id (first request
	// included). 0 disables retransmission; 1 means a single request and
	// no retries. Default 2 (one retry): retransmission exists to recover
	// rare datagram loss, and every additional attempt raises the
	// worst-case duplicate-traffic ceiling under congestion.
	RetMaxAttempts int
	// RetSameProposer re-requests timed-out ids from the original proposer
	// only (a literal reading of Algorithm 2, which re-injects the original
	// proposal on timeout). That policy lands every retransmission on
	// exactly the node that is already too congested to serve, amplifying
	// its load ~RetMaxAttempts-fold and collapsing both protocols under
	// tight capability supply; the default (false) therefore cycles retries
	// through alternate proposers of the same id — under HEAP those are
	// capability-weighted, since proposers appear in proportion to their
	// fanout. The same-proposer mode is kept as an ablation.
	RetSameProposer bool
	// ServeBuffer is how long delivered events stay available for serving
	// late requests. Default 120 s.
	ServeBuffer time.Duration
	// ExpectedPackets presizes the per-packet tables (delivered flags,
	// outstanding requests, serve buffer) of the default stream 0 — callers
	// that know the stream geometry pass TotalPackets so the hot path never
	// reallocates. 0 means grow on demand. Ids are dense per stream, so
	// this is a slice length, not a hash-table hint. Additional streams are
	// presized through OpenStream.
	ExpectedPackets int
	// StreamRateKbps is stream 0's effective data rate for the fanout-budget
	// allocator, used when stream 0 is opened lazily rather than through
	// OpenStream. 0 means unknown (excluded from budget weighting).
	StreamRateKbps float64
	// UploadKbps is the node's upload capability in kilobits per second,
	// the budget the fanout allocator divides across concurrent streams
	// (see budgetScale in streams.go). 0 disables budgeting. With a single
	// stream the budget is inert: the allocator only arbitrates competition
	// between streams, never the paper's single-stream protocol.
	UploadKbps uint32
	// BudgetHeadroom is the fraction of UploadKbps handed to serve traffic
	// by the fanout-budget allocator; the remainder absorbs control traffic
	// (proposes, requests, aggregation) and retransmission duplicates.
	// Default 0.8.
	BudgetHeadroom float64
	// Sampler provides uniform random peers (Algorithm 1, selectNodes).
	Sampler membership.Sampler
	// FanoutIntra/FanoutInter split the gossip fanout budget by topology
	// locality: each round proposes to FanoutIntra peers of the node's own
	// cluster and FanoutInter peers across cluster boundaries, both scaled
	// by the same multipliers as the flat fanout (relative capability under
	// HEAP, the multi-stream budget allocator). Requires Split. Both zero
	// with Split nil (the default) keeps the paper's flat fanout
	// byte-identical — the hierarchical path is never consulted.
	FanoutIntra float64
	FanoutInter float64
	// Split supplies the locality-aware draws for the hierarchical budgets
	// (membership.NewClusterView). Uniform paths (request fanout, sampler
	// aggregation) keep using Sampler.
	Split membership.SplitSampler
	// OnDeliver, if non-nil, receives every newly delivered event.
	OnDeliver DeliverFunc

	// Adapt, when non-nil, closes the congestion feedback loop: the engine
	// samples AdaptSignal on its gossip rounds (quantized to the
	// controller's interval) and, when the controller re-estimates the
	// node's effective capability, re-advertises it through Capabilities
	// (when that implements CapabilityAdvertiser — HEAP's estimator does)
	// and rebalances the fanout-budget allocator off the adapted value.
	// Nil keeps the engine byte-identical to a build without adaptation.
	// Requires AdaptSignal.
	Adapt *adapt.Controller
	// AdaptSignal supplies the transmit-pressure sample for Adapt: uplink
	// backlog, monotonic sent bytes, queued bytes, tail drops. The substrate
	// provides it (simnet queue probes, ratelimit.Sender accessors); the
	// engine fills in the sample time. Required with Adapt, ignored without.
	AdaptSignal func() adapt.Sample
	// OnAdapt, if non-nil, observes every effective-capability change the
	// controller makes (after it is advertised) — deployment surfaces keep
	// their own advertised-value mirrors current through it.
	OnAdapt func(effKbps uint32)

	// Monitor, when non-nil, receives per-peer contribution evidence and
	// supplies quarantine verdicts (misbehavior detection). Nil keeps every
	// code path byte-identical to a build without the hook.
	Monitor Monitor

	// Trace, when non-nil, receives dissemination-path events (publish,
	// first request, delivery) for offline hop analysis. Like Monitor, nil
	// keeps every code path byte-identical to a build without the hook;
	// implementations must be deterministic (no randomness, no wall clock)
	// to preserve the simulator's fingerprint guarantees.
	Trace TraceSink
}

func (c *Config) applyDefaults() error {
	if c.Fanout <= 0 {
		return fmt.Errorf("core: fanout %v must be positive", c.Fanout)
	}
	if c.Sampler == nil {
		return fmt.Errorf("core: sampler is required")
	}
	if c.FanoutIntra < 0 || c.FanoutInter < 0 {
		return fmt.Errorf("core: negative hierarchical fanout (%v intra, %v inter)", c.FanoutIntra, c.FanoutInter)
	}
	if (c.FanoutIntra > 0 || c.FanoutInter > 0) && c.Split == nil {
		return fmt.Errorf("core: hierarchical fanout requires a Split sampler")
	}
	if c.Split != nil && c.FanoutIntra+c.FanoutInter <= 0 {
		return fmt.Errorf("core: Split sampler requires a positive FanoutIntra+FanoutInter budget")
	}
	if c.Adaptive && c.Capabilities == nil {
		return fmt.Errorf("core: adaptive mode requires a capability estimator")
	}
	if c.AdaptPeriod && !c.Adaptive {
		return fmt.Errorf("core: AdaptPeriod requires Adaptive")
	}
	if c.MaxFanout == 0 {
		c.MaxFanout = 64
	}
	if c.GossipPeriod == 0 {
		c.GossipPeriod = 200 * time.Millisecond
	}
	if c.RetPeriod == 0 {
		c.RetPeriod = 5 * time.Second
	}
	if c.RetMaxAttempts == 0 {
		c.RetMaxAttempts = 2
	}
	if c.RetMaxAttempts > math.MaxUint16 {
		return fmt.Errorf("core: RetMaxAttempts %d exceeds %d", c.RetMaxAttempts, math.MaxUint16)
	}
	if c.ServeBuffer == 0 {
		c.ServeBuffer = 120 * time.Second
	}
	if c.BudgetHeadroom < 0 || c.BudgetHeadroom > 1 {
		return fmt.Errorf("core: budget headroom %v outside [0, 1]", c.BudgetHeadroom)
	}
	if c.BudgetHeadroom == 0 {
		c.BudgetHeadroom = 0.8
	}
	if c.StreamRateKbps < 0 {
		return fmt.Errorf("core: stream rate %v must not be negative", c.StreamRateKbps)
	}
	if (c.Adapt == nil) != (c.AdaptSignal == nil) {
		return fmt.Errorf("core: Adapt and AdaptSignal must be set together")
	}
	return nil
}

// Stats counts protocol activity at one node, aggregated over all streams.
type Stats struct {
	ProposesSent     int64
	ProposesReceived int64
	RequestsSent     int64
	RequestsReceived int64
	ServesSent       int64
	EventsServed     int64
	EventsDelivered  int64
	DuplicateEvents  int64
	Retransmissions  int64 // re-sent requests (attempts beyond the first)
	GiveUps          int64 // ids abandoned after RetMaxAttempts
	UnservableIDs    int64 // requested ids we no longer buffer
	ProposesIgnored  int64 // proposals discarded because the proposer is quarantined
}

// maxProposersTracked bounds the alternate-proposer list per outstanding id.
const maxProposersTracked = 4

// maxTrackedPacketID bounds the dense per-packet tables against hostile or
// corrupt wire input: ids are assigned densely in publish order, so a
// legitimate id beyond this (~90 days of continuous stream) cannot occur,
// while an attacker-supplied huge id would otherwise force the dense slot
// arrays to allocate unboundedly. Ids past the bound are simply ignored.
const maxTrackedPacketID = 1 << 22

// bufferedEvent is a delivered event kept for serving, with its receive time
// for age-based pruning.
type bufferedEvent struct {
	ev     wire.Event
	recvAt time.Duration
}

// retEntry is one armed retransmission batch: the ids requested together and
// when their timeout expires. RetPeriod is constant, so entries are enqueued
// in deadline order and the queue drains FIFO off a single timer per stream.
type retEntry struct {
	due time.Duration
	ids []wire.PacketID
}

// Engine is one node's dissemination protocol instance: engine-global
// machinery (sampler, capability estimator, tickers, fanout budget) over one
// streamState per active stream. It implements env.Handler for
// Propose/Request/Serve messages. Not safe for concurrent use; all access
// happens on the node's execution context.
type Engine struct {
	cfg Config
	rt  env.Runtime

	// streams holds the per-stream dissemination state, in open order (the
	// deterministic gossip-round iteration order). totalRateKbps caches the
	// sum of the streams' rates for the budget allocator.
	streams       []*streamState
	totalRateKbps float64

	// retTargets/retGroups are retransmit's grouping scratch (the group id
	// slices themselves escape into Request messages and stay fresh).
	retTargets []wire.NodeID
	retGroups  [][]wire.PacketID

	// appendSampler is the Sampler's optional zero-alloc fast path, with
	// peerScratch the per-round target buffer it fills.
	appendSampler membership.PeerAppender
	peerScratch   []wire.NodeID

	gossipTicker *env.Ticker
	adaptiveFn   func() // cached adaptiveRound closure (period-adaptation mode)
	pruneTicker  *env.Ticker
	stopped      bool

	// Congestion-driven capability re-estimation (Config.Adapt): the budget
	// allocator divides effUploadKbps — the configured budget, lowered to
	// the controller's estimate while congestion persists — and advertiser
	// is Capabilities' optional re-advertisement hook.
	effUploadKbps uint32
	advertiser    CapabilityAdvertiser
	lastAdaptAt   time.Duration

	stats Stats
}

var _ env.Handler = (*Engine)(nil)

// New builds an Engine. It returns an error for invalid configurations.
// Streams are opened through OpenStream or lazily on first contact; the
// default stream 0 inherits ExpectedPackets/StreamRateKbps when opened
// lazily.
func New(cfg Config) (*Engine, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, effUploadKbps: cfg.UploadKbps}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Stats returns a copy of the node's protocol counters.
func (e *Engine) Stats() Stats { return e.stats }

// Collect emits the engine's counters and live state as named samples — the
// registration surface for a telemetry registry (the engine itself stays
// registry-agnostic). Like Stats, it must run on the node's execution
// context (or after shutdown).
func (e *Engine) Collect(emit func(name string, value float64)) {
	st := e.stats
	emit("engine_proposes_sent_total", float64(st.ProposesSent))
	emit("engine_proposes_received_total", float64(st.ProposesReceived))
	emit("engine_proposes_ignored_total", float64(st.ProposesIgnored))
	emit("engine_requests_sent_total", float64(st.RequestsSent))
	emit("engine_requests_received_total", float64(st.RequestsReceived))
	emit("engine_serves_sent_total", float64(st.ServesSent))
	emit("engine_events_served_total", float64(st.EventsServed))
	emit("engine_events_delivered_total", float64(st.EventsDelivered))
	emit("engine_duplicate_events_total", float64(st.DuplicateEvents))
	emit("engine_retransmissions_total", float64(st.Retransmissions))
	emit("engine_giveups_total", float64(st.GiveUps))
	emit("engine_unservable_ids_total", float64(st.UnservableIDs))
	emit("engine_open_streams", float64(len(e.streams)))
	emit("engine_pending_requests", float64(e.PendingRequests()))
	emit("engine_buffered_events", float64(e.BufferedEvents()))
}

// Start implements env.Handler.
func (e *Engine) Start(rt env.Runtime) {
	e.rt = rt
	e.appendSampler, _ = e.cfg.Sampler.(membership.PeerAppender)
	if e.cfg.Adapt != nil {
		e.advertiser, _ = e.cfg.Capabilities.(CapabilityAdvertiser)
	}
	phase := time.Duration(rt.Rand().Int63n(int64(e.cfg.GossipPeriod)))
	if e.cfg.AdaptPeriod {
		e.adaptiveFn = e.adaptiveRound
		rt.AfterFunc(phase, e.adaptiveFn)
	} else {
		e.gossipTicker = env.NewTicker(rt, phase, e.cfg.GossipPeriod, e.gossipRound)
	}
	e.pruneTicker = env.NewTicker(rt, e.cfg.ServeBuffer, e.cfg.ServeBuffer/4+1, e.pruneBuffer)
}

// Stop implements env.Handler.
func (e *Engine) Stop() {
	e.stopped = true
	if e.gossipTicker != nil {
		e.gossipTicker.Stop()
	}
	if e.pruneTicker != nil {
		e.pruneTicker.Stop()
	}
}

// adaptiveRound runs one gossip round and reschedules itself with a period
// scaled inversely to the node's relative capability (period adaptation).
// The period is engine-global: all streams share one round schedule.
func (e *Engine) adaptiveRound() {
	if e.stopped {
		return
	}
	e.gossipRound()
	period := e.cfg.GossipPeriod
	if rel := e.cfg.Capabilities.RelativeCapability(); rel > 0 {
		scaled := time.Duration(float64(period) / rel)
		switch {
		case scaled < period/8:
			scaled = period / 8
		case scaled > period*8:
			scaled = period * 8
		}
		period = scaled
	}
	e.rt.AfterFunc(period, e.adaptiveFn)
}

// Publish injects a locally produced event (the broadcaster path of
// Algorithm 1: deliver locally, then gossip the id immediately, without
// waiting for the next period). The event's Stream field selects the
// stream; sources of additional streams open them first via OpenStream.
func (e *Engine) Publish(ev wire.Event) {
	st := e.streamFor(ev.Stream, true)
	if st == nil || st.delivered.contains(uint64(ev.ID)) {
		return
	}
	e.deliverLocal(st, ev, false)
	if e.cfg.Trace != nil {
		e.cfg.Trace.TracePublish(st.id, ev.ID, e.rt.Now())
	}
	e.gossip(st, []wire.PacketID{ev.ID})
}

// Receive implements env.Handler.
func (e *Engine) Receive(from wire.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.Propose:
		e.onPropose(from, msg)
	case *wire.Request:
		e.onRequest(from, msg)
	case *wire.Serve:
		e.onServe(from, msg)
	}
}

// gossipRound flushes every stream's infect-and-die batch (Algorithm 1,
// lines 6-7). Streams flush in open order — deterministic, and each with its
// own budget-scaled fanout draw. The adaptation controller piggybacks on
// this ticker: it observes transmit pressure before the round's fanout
// draws, so a re-estimate takes effect in the very round that detected it.
func (e *Engine) gossipRound() {
	e.adaptTick()
	if e.cfg.Monitor != nil {
		e.cfg.Monitor.Tick(e.rt.Now())
	}
	for _, st := range e.streams {
		if len(st.toPropose) == 0 {
			continue
		}
		ids := st.toPropose
		st.toPropose = nil
		e.gossip(st, ids)
	}
}

// gossip sends a [Propose] for ids to fanout() random peers — or, when a
// Split sampler is configured, to splitFanout() peers drawn per locality.
func (e *Engine) gossip(st *streamState, ids []wire.PacketID) {
	var peers []wire.NodeID
	if e.cfg.Split != nil {
		fIntra, fInter := e.splitFanout()
		if fIntra+fInter <= 0 {
			return
		}
		e.peerScratch = e.cfg.Split.AppendSplit(e.peerScratch[:0], e.rt.Rand(), fIntra, fInter)
		peers = e.peerScratch
	} else if f := e.fanout(); f <= 0 {
		return
	} else if e.appendSampler != nil {
		e.peerScratch = e.appendSampler.AppendPeers(e.peerScratch[:0], e.rt.Rand(), f)
		peers = e.peerScratch
	} else {
		peers = e.cfg.Sampler.SelectPeers(e.rt.Rand(), f)
	}
	if len(peers) == 0 {
		return
	}
	msg := &wire.Propose{Stream: st.id, IDs: ids}
	for _, p := range peers {
		e.rt.Send(p, msg)
		e.stats.ProposesSent++
		if e.cfg.Monitor != nil {
			e.cfg.Monitor.ObserveProposeSent(p, len(ids), e.rt.Now())
		}
	}
}

// adaptTick runs the congestion-feedback loop on the engine's existing round
// schedule: every Adapt.Interval (quantized to gossip rounds) it feeds one
// pressure sample to the controller; on a re-estimate it shrinks or restores
// the budget allocator's upload budget and re-advertises through the
// capability estimator, which propagates the new value by the normal
// freshness gossip — fanout sheds load before the queue sheds packets. The
// controller is deterministic and rng-free, so adapt-enabled runs keep every
// reproducibility guarantee; with Adapt nil this is a single branch.
func (e *Engine) adaptTick() {
	ctrl := e.cfg.Adapt
	if ctrl == nil {
		return
	}
	now := e.rt.Now()
	if now-e.lastAdaptAt < ctrl.Interval() {
		return
	}
	e.lastAdaptAt = now
	s := e.cfg.AdaptSignal()
	s.At = now
	eff, changed := ctrl.Observe(s)
	if !changed {
		return
	}
	if e.cfg.UploadKbps > 0 {
		// The budget never exceeds the configured physical capability: the
		// controller's ceiling is the *advertised* value, which freeriders
		// and degraded nodes set apart from the real uplink.
		if eff < e.cfg.UploadKbps {
			e.effUploadKbps = eff
		} else {
			e.effUploadKbps = e.cfg.UploadKbps
		}
	}
	if e.advertiser != nil {
		e.advertiser.SetSelfCapKbps(eff)
	}
	if e.cfg.OnAdapt != nil {
		e.cfg.OnAdapt(eff)
	}
}

// fanout implements getFanout() of Algorithms 1 and 2: the configured fbar,
// scaled by relative capability in adaptive mode and by the multi-stream
// budget allocator, stochastically rounded so the expected value is
// preserved, clamped to [0 or 1, MaxFanout].
func (e *Engine) fanout() int {
	f := e.cfg.Fanout
	if e.cfg.FanoutFn != nil {
		if v := e.cfg.FanoutFn(); v > 0 {
			f = v
		}
	}
	if e.cfg.Adaptive && !e.cfg.AdaptPeriod {
		f *= e.cfg.Capabilities.RelativeCapability()
	}
	f *= e.budgetScale()
	if f > float64(e.cfg.MaxFanout) {
		f = float64(e.cfg.MaxFanout)
	}
	floor := math.Floor(f)
	n := int(floor)
	if e.rt.Rand().Float64() < f-floor {
		n++
	}
	// Every node must keep gossiping to stay part of the dissemination
	// graph: clamp adapted fanouts below 1 up to 1 (the paper requires the
	// source to have fanout >= 1; we apply the same floor everywhere —
	// stochastic rounding already yields >=1 most rounds for any f >= 0.5).
	if n < 1 && f > 0 {
		n = 1
	}
	return n
}

// splitFanout is fanout() for hierarchical dissemination: each locality
// budget is scaled by the same multipliers as the flat fanout (relative
// capability in adaptive mode, the multi-stream budget allocator) and
// stochastically rounded on its own, so the expected intra/inter mix is
// preserved at every capability level. The pair is clamped so the total
// never exceeds MaxFanout, and a node whose combined budget rounds to zero
// keeps one draw on its larger configured side — the same stay-in-the-graph
// floor fanout() applies.
func (e *Engine) splitFanout() (intra, inter int) {
	m := 1.0
	if e.cfg.Adaptive && !e.cfg.AdaptPeriod {
		m *= e.cfg.Capabilities.RelativeCapability()
	}
	m *= e.budgetScale()
	intra = e.stochRound(e.cfg.FanoutIntra * m)
	inter = e.stochRound(e.cfg.FanoutInter * m)
	if intra > e.cfg.MaxFanout {
		intra = e.cfg.MaxFanout
	}
	if intra+inter > e.cfg.MaxFanout {
		inter = e.cfg.MaxFanout - intra
	}
	if intra+inter < 1 && (e.cfg.FanoutIntra+e.cfg.FanoutInter)*m > 0 {
		if e.cfg.FanoutIntra >= e.cfg.FanoutInter {
			intra = 1
		} else {
			inter = 1
		}
	}
	return intra, inter
}

// stochRound rounds f to an integer whose expected value is f.
func (e *Engine) stochRound(f float64) int {
	floor := math.Floor(f)
	n := int(floor)
	if e.rt.Rand().Float64() < f-floor {
		n++
	}
	return n
}

// onPropose handles phase 2 (Algorithm 1, lines 8-13) plus retransmission
// bookkeeping: ids already outstanding gain an alternate proposer.
func (e *Engine) onPropose(from wire.NodeID, msg *wire.Propose) {
	e.stats.ProposesReceived++
	if e.cfg.Monitor != nil {
		e.cfg.Monitor.ObserveProposeSeen(from, len(msg.IDs), e.rt.Now())
		if e.cfg.Monitor.Quarantined(from) {
			// A quarantined peer's proposals are not acted on: requesting
			// from it would hand it serve credit, and under HEAP a liar's
			// inflated fanout makes its proposals reach everywhere first.
			e.stats.ProposesIgnored++
			return
		}
	}
	st := e.streamFor(msg.Stream, true)
	if st == nil {
		return // stream bound reached, see maxTrackedStreams
	}
	var wanted []wire.PacketID
	for _, id := range msg.IDs {
		if id >= maxTrackedPacketID {
			continue // wire-robustness bound, see maxTrackedPacketID
		}
		if st.delivered.contains(uint64(id)) {
			continue
		}
		if p := st.pending.get(id); p != nil {
			// Already outstanding: remember the alternate proposer.
			if int(p.numProposers) < maxProposersTracked {
				seen := false
				for _, q := range p.proposers[:p.numProposers] {
					if q == from {
						seen = true
						break
					}
				}
				if !seen {
					p.proposers[p.numProposers] = from
					p.numProposers++
				}
			}
			continue
		}
		wanted = append(wanted, id)
		slot := st.pending.insert(id)
		slot.proposers[0] = from
		slot.numProposers = 1
		slot.attempts = 1
	}
	if len(wanted) == 0 {
		return
	}
	if e.cfg.Trace != nil {
		now := e.rt.Now()
		for _, id := range wanted {
			e.cfg.Trace.TraceRequest(st.id, id, from, now)
		}
	}
	e.sendRequest(st, from, wanted)
	e.armRetransmit(st, wanted)
}

func (e *Engine) sendRequest(st *streamState, to wire.NodeID, ids []wire.PacketID) {
	e.rt.Send(to, &wire.Request{Stream: st.id, IDs: ids})
	e.stats.RequestsSent++
	if e.cfg.Monitor != nil {
		e.cfg.Monitor.ObserveRequestSent(to, len(ids), e.rt.Now())
	}
}

// armRetransmit schedules a timeout for a batch of just-requested ids. On
// expiry, ids still undelivered are re-requested from alternate proposers
// (Algorithm 2 re-injects the proposal on RetTimer expiry). Batches share
// one timer per stream: RetPeriod is constant, so the deadline queue is FIFO
// and the timer only ever needs to cover its head.
func (e *Engine) armRetransmit(st *streamState, ids []wire.PacketID) {
	if e.cfg.RetMaxAttempts <= 1 || len(ids) == 0 {
		return
	}
	// The batch slice is owned by the wire.Request we just sent; receivers
	// must not mutate it, and neither may we — iterate read-only.
	st.retQueue = append(st.retQueue, retEntry{due: e.rt.Now() + e.cfg.RetPeriod, ids: ids})
	if !st.retArmed && !st.retFiring {
		st.retArmed = true
		e.rt.AfterFunc(e.cfg.RetPeriod, st.retFireFn)
	}
}

// retFire drains every due retransmission batch of one stream, then re-arms
// the stream's timer for the next deadline (if any).
func (e *Engine) retFire(st *streamState) {
	st.retArmed = false
	if e.stopped {
		return
	}
	st.retFiring = true
	now := e.rt.Now()
	for st.retHead < len(st.retQueue) && st.retQueue[st.retHead].due <= now {
		ids := st.retQueue[st.retHead].ids
		st.retQueue[st.retHead] = retEntry{} // release the batch reference
		st.retHead++
		e.retransmit(st, ids)
	}
	st.retFiring = false
	if st.retHead == len(st.retQueue) {
		st.retQueue = st.retQueue[:0]
		st.retHead = 0
	} else {
		// Under a steady request stream the queue never fully drains, so
		// compact the consumed prefix once it dominates — otherwise the
		// backing array grows for the lifetime of the node.
		if st.retHead > 64 && st.retHead*2 >= len(st.retQueue) {
			n := copy(st.retQueue, st.retQueue[st.retHead:])
			for i := n; i < len(st.retQueue); i++ {
				st.retQueue[i] = retEntry{}
			}
			st.retQueue = st.retQueue[:n]
			st.retHead = 0
		}
		st.retArmed = true
		e.rt.AfterFunc(st.retQueue[st.retHead].due-now, st.retFireFn)
	}
}

func (e *Engine) retransmit(st *streamState, ids []wire.PacketID) {
	// Group still-missing ids by the proposer to ask next. Grouping is
	// insertion-ordered (a linear scan over the few distinct targets, not a
	// map) so runs stay deterministic and the scratch slices are reusable.
	targets, groups := e.retTargets[:0], e.retGroups[:0]
	now := e.rt.Now()
	for _, id := range ids {
		p := st.pending.get(id)
		if p == nil {
			continue // delivered (or already abandoned) meanwhile
		}
		if e.cfg.Monitor != nil {
			// The id is still missing, so the peer last asked for it — the
			// original proposer for attempt 1, otherwise the rotation target
			// of the previous attempt — failed to serve within RetPeriod.
			// That timeout is the detector's negative serve evidence.
			prev := p.proposers[0]
			if !e.cfg.RetSameProposer && p.attempts > 1 {
				prev = p.proposers[int(p.attempts-1)%int(p.numProposers)]
			}
			e.cfg.Monitor.ObserveTimeout(prev, 1, now)
		}
		if int(p.attempts) >= e.cfg.RetMaxAttempts {
			// Abandon: clear the outstanding flag so a future propose can
			// trigger a fresh request (FEC may also mask the loss).
			st.pending.remove(id)
			e.stats.GiveUps++
			continue
		}
		target := p.proposers[0]
		if !e.cfg.RetSameProposer {
			target = p.proposers[int(p.attempts)%int(p.numProposers)]
			if e.cfg.Monitor != nil && e.cfg.Monitor.Quarantined(target) {
				// Skip quarantined alternates in the rotation; if every
				// proposer of the id is quarantined, keep the rotation
				// target — a doomed retry beats silently dropping the id.
				for off := int32(1); off < int32(p.numProposers); off++ {
					cand := p.proposers[(int(p.attempts)+int(off))%int(p.numProposers)]
					if !e.cfg.Monitor.Quarantined(cand) {
						target = cand
						break
					}
				}
			}
		}
		p.attempts++
		slot := -1
		for i, t := range targets {
			if t == target {
				slot = i
				break
			}
		}
		if slot < 0 {
			targets = append(targets, target)
			groups = append(groups, nil)
			slot = len(targets) - 1
		}
		groups[slot] = append(groups[slot], id)
	}
	for i, target := range targets {
		batch := groups[i]
		e.sendRequest(st, target, batch)
		e.stats.Retransmissions++
		e.armRetransmit(st, batch)
		groups[i] = nil // the batch escaped into a Request; drop our ref
	}
	e.retTargets, e.retGroups = targets[:0], groups[:0]
}

// onRequest handles phase 3, server side (Algorithm 1, lines 14-17).
func (e *Engine) onRequest(from wire.NodeID, msg *wire.Request) {
	e.stats.RequestsReceived++
	if e.cfg.Monitor != nil {
		e.cfg.Monitor.ObserveRequestSeen(from, len(msg.IDs), e.rt.Now())
	}
	st := e.lookupStream(msg.Stream)
	if st == nil {
		// Requests never open streams: nothing of this stream is buffered.
		e.stats.UnservableIDs += int64(len(msg.IDs))
		return
	}
	events := make([]wire.Event, 0, len(msg.IDs))
	for _, id := range msg.IDs {
		if be := st.buffer.get(id); be != nil {
			events = append(events, be.ev)
		} else {
			e.stats.UnservableIDs++
		}
	}
	if len(events) == 0 {
		return
	}
	e.rt.Send(from, &wire.Serve{Stream: st.id, Events: events})
	e.stats.ServesSent++
	e.stats.EventsServed += int64(len(events))
}

// onServe handles phase 3, client side (Algorithm 1, lines 18-22).
func (e *Engine) onServe(from wire.NodeID, msg *wire.Serve) {
	if e.cfg.Monitor != nil && len(msg.Events) > 0 {
		var bytes int64
		for i := range msg.Events {
			bytes += int64(len(msg.Events[i].Payload))
		}
		e.cfg.Monitor.ObserveServeSeen(from, len(msg.Events), bytes, e.rt.Now())
	}
	st := e.streamFor(msg.Stream, true)
	if st == nil {
		return // stream bound reached, see maxTrackedStreams
	}
	for _, ev := range msg.Events {
		if ev.ID >= maxTrackedPacketID {
			continue // wire-robustness bound, see maxTrackedPacketID
		}
		if st.delivered.contains(uint64(ev.ID)) {
			e.stats.DuplicateEvents++
			continue
		}
		if e.cfg.Trace != nil {
			e.cfg.Trace.TraceDeliver(st.id, ev.ID, from, e.rt.Now())
		}
		e.deliverLocal(st, ev, true)
	}
}

// deliverLocal marks ev delivered, buffers it for serving, and fires the
// application upcall. With propose set, the id joins the next infect-and-die
// batch (Publish gossips immediately instead).
func (e *Engine) deliverLocal(st *streamState, ev wire.Event, propose bool) {
	ev.Stream = st.id // normalize: the stream state is authoritative
	id := uint64(ev.ID)
	st.delivered.add(id)
	st.pending.remove(ev.ID)
	now := e.rt.Now()
	*st.buffer.insert(ev.ID) = bufferedEvent{ev: ev, recvAt: now}
	if propose {
		st.toPropose = append(st.toPropose, ev.ID)
	}
	e.stats.EventsDelivered++
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(ev, now)
	}
}

// pruneBuffer drops served payloads older than ServeBuffer (bounds memory;
// late requests for pruned ids count as UnservableIDs).
func (e *Engine) pruneBuffer() {
	cutoff := e.rt.Now() - e.cfg.ServeBuffer
	for _, st := range e.streams {
		st.buffer.prune(func(be *bufferedEvent) bool { return be.recvAt < cutoff })
	}
}

// Delivered reports whether the engine has delivered the given id on the
// default stream 0.
func (e *Engine) Delivered(id wire.PacketID) bool {
	return e.StreamDelivered(0, id)
}

// StreamDelivered reports whether the engine has delivered the given id on
// the given stream.
func (e *Engine) StreamDelivered(stream wire.StreamID, id wire.PacketID) bool {
	st := e.lookupStream(stream)
	return st != nil && st.delivered.contains(uint64(id))
}

// PendingRequests returns the number of outstanding requested ids across all
// streams.
func (e *Engine) PendingRequests() int {
	n := 0
	for _, st := range e.streams {
		n += st.pending.len()
	}
	return n
}

// BufferedEvents returns the number of payloads currently buffered across
// all streams.
func (e *Engine) BufferedEvents() int {
	n := 0
	for _, st := range e.streams {
		n += st.buffer.len()
	}
	return n
}

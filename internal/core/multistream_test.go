package core

import (
	"sort"
	"testing"
	"time"

	"repro/internal/membership"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// multiCluster wires n engines over a simulated network with several
// concurrent streams. Node k (k < streams) publishes stream k.
type multiCluster struct {
	net     *simnet.Network
	engines []*Engine
	// deliver[node][stream] collects delivered ids.
	deliver []map[wire.StreamID][]wire.PacketID
}

func newMultiCluster(t *testing.T, n int, streamCfgs map[wire.StreamID]StreamConfig, mutate func(i int, cfg *Config)) *multiCluster {
	t.Helper()
	net := simnet.New(simnet.Config{
		Seed:    21,
		Latency: simnet.ConstantLatency(10 * time.Millisecond),
	})
	dir := membership.NewDirectory(n)
	c := &multiCluster{
		net:     net,
		engines: make([]*Engine, n),
		deliver: make([]map[wire.StreamID][]wire.PacketID, n),
	}
	for i := 0; i < n; i++ {
		i := i
		c.deliver[i] = make(map[wire.StreamID][]wire.PacketID)
		cfg := Config{
			Fanout:       6,
			GossipPeriod: 100 * time.Millisecond,
			Sampler:      dir.ViewFor(wire.NodeID(i)),
			OnDeliver: func(ev wire.Event, _ time.Duration) {
				c.deliver[i][ev.Stream] = append(c.deliver[i][ev.Stream], ev.ID)
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		c.engines[i] = MustNew(cfg)
		// Open in sorted id order: the open order is the gossip-round flush
		// order, and the test must be deterministic across runs.
		ids := make([]wire.StreamID, 0, len(streamCfgs))
		for id := range streamCfgs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			if err := c.engines[i].OpenStream(id, streamCfgs[id]); err != nil {
				t.Fatal(err)
			}
		}
		net.AddNode(c.engines[i], simnet.NodeConfig{})
	}
	return c
}

// TestMultiStreamIsolation publishes the SAME packet ids on two streams and
// requires every node to deliver both copies — near-fully (gossip misses a
// (node, event) pair with probability ~e^-f; that residual is what the
// paper's FEC masks) and exactly once per stream: per-stream state must not
// collide on the shared id space.
func TestMultiStreamIsolation(t *testing.T) {
	streams := map[wire.StreamID]StreamConfig{3: {}, 7: {}}
	c := newMultiCluster(t, 40, streams, func(_ int, cfg *Config) { cfg.Fanout = 8 })
	const events = 10
	for i := 0; i < events; i++ {
		i := i
		c.net.Schedule(time.Duration(i)*30*time.Millisecond, func() {
			c.engines[0].Publish(wire.Event{ID: wire.PacketID(i), Stream: 3, Payload: make([]byte, 100)})
			c.engines[1].Publish(wire.Event{ID: wire.PacketID(i), Stream: 7, Payload: make([]byte, 100)})
		})
	}
	c.net.Run(time.Minute)
	total := 0
	for i, byStream := range c.deliver {
		for _, sid := range []wire.StreamID{3, 7} {
			got := byStream[sid]
			if len(got) < events-1 {
				t.Fatalf("node %d delivered %d of %d events on stream %d", i, len(got), events, sid)
			}
			total += len(got)
			seen := map[wire.PacketID]bool{}
			for _, id := range got {
				if seen[id] {
					t.Fatalf("node %d delivered id %d twice on stream %d", i, id, sid)
				}
				seen[id] = true
			}
		}
	}
	if want := 40 * events * 2; total < want*99/100 {
		t.Fatalf("system-wide delivery %d of %d below 99%%", total, want)
	}
	// Cross-check the query API: id 0 is delivered on both streams but the
	// engines never opened (or saw) stream 0.
	e := c.engines[5]
	if !e.StreamDelivered(3, 0) || !e.StreamDelivered(7, 0) {
		t.Fatal("StreamDelivered misses delivered ids")
	}
	if e.Delivered(0) {
		t.Fatal("Delivered(0) true although stream 0 never existed")
	}
}

// TestLazyStreamOpen checks that a receiver with no stream configuration
// tracks a new stream on first contact.
func TestLazyStreamOpen(t *testing.T) {
	c := newMultiCluster(t, 20, nil, nil) // nobody opens anything
	c.net.Schedule(0, func() {
		c.engines[0].Publish(wire.Event{ID: 1, Stream: 9, Payload: make([]byte, 50)})
	})
	c.net.Run(30 * time.Second)
	for i, byStream := range c.deliver {
		if len(byStream[9]) != 1 {
			t.Fatalf("node %d delivered %v on lazily opened stream 9", i, byStream[9])
		}
	}
}

// TestStreamLimitBoundsState verifies the hostile-input bound: streams past
// maxTrackedStreams are ignored rather than allocating state.
func TestStreamLimitBoundsState(t *testing.T) {
	dir := membership.NewDirectory(2)
	net := simnet.New(simnet.Config{Seed: 3})
	e := MustNew(Config{Fanout: 1, Sampler: dir.ViewFor(0)})
	net.AddNode(e, simnet.NodeConfig{})
	net.Schedule(0, func() {
		for s := 0; s < 4*maxTrackedStreams; s++ {
			e.Receive(1, &wire.Propose{Stream: wire.StreamID(s + 1), IDs: []wire.PacketID{1}})
		}
	})
	net.Run(time.Second)
	if got := len(e.Streams()); got != maxTrackedStreams {
		t.Fatalf("engine tracks %d streams, want the %d bound", got, maxTrackedStreams)
	}
}

// TestOpenStreamValidation pins OpenStream's error cases.
func TestOpenStreamValidation(t *testing.T) {
	dir := membership.NewDirectory(2)
	e := MustNew(Config{Fanout: 1, Sampler: dir.ViewFor(0)})
	if err := e.OpenStream(1, StreamConfig{RateKbps: 600}); err != nil {
		t.Fatal(err)
	}
	if err := e.OpenStream(1, StreamConfig{}); err == nil {
		t.Fatal("duplicate OpenStream accepted")
	}
	if err := e.OpenStream(2, StreamConfig{RateKbps: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

// TestBudgetScale pins the fanout-budget allocator's arithmetic: inert for
// single streams and uncapped nodes, rate-weighted division once several
// streams exceed the budget.
func TestBudgetScale(t *testing.T) {
	dir := membership.NewDirectory(2)
	mk := func(uploadKbps uint32, rel float64) *Engine {
		cfg := Config{Fanout: 7, UploadKbps: uploadKbps, BudgetHeadroom: 0.8, Sampler: dir.ViewFor(0)}
		if rel > 0 {
			cfg.Adaptive = true
			cfg.Capabilities = fixedRel(rel)
		}
		return MustNew(cfg)
	}

	// Single stream: always scale 1, however overloaded.
	e := mk(100, 0)
	if err := e.OpenStream(0, StreamConfig{RateKbps: 600}); err != nil {
		t.Fatal(err)
	}
	if got := e.BudgetScale(); got != 1 {
		t.Fatalf("single-stream scale = %v, want 1 (allocator arbitrates competition only)", got)
	}

	// Two streams over budget: scale = budget / (rel * sum rates).
	e = mk(512, 0.75)
	for sid, rate := range map[wire.StreamID]float64{0: 600, 1: 600} {
		if err := e.OpenStream(sid, StreamConfig{RateKbps: rate}); err != nil {
			t.Fatal(err)
		}
	}
	want := 0.8 * 512 / (0.75 * 1200)
	if got := e.BudgetScale(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("scale = %v, want %v", got, want)
	}

	// Plenty of budget: scale stays 1.
	e = mk(10_000, 0)
	for sid, rate := range map[wire.StreamID]float64{0: 600, 1: 600} {
		if err := e.OpenStream(sid, StreamConfig{RateKbps: rate}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.BudgetScale(); got != 1 {
		t.Fatalf("under-budget scale = %v, want 1", got)
	}

	// No budget configured: allocator disabled.
	e = mk(0, 0)
	for sid, rate := range map[wire.StreamID]float64{0: 600, 1: 600} {
		if err := e.OpenStream(sid, StreamConfig{RateKbps: rate}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.BudgetScale(); got != 1 {
		t.Fatalf("unbudgeted scale = %v, want 1", got)
	}
}

// TestRetireStreamReleasesBudget: retiring a finished stream returns its
// rate weight to the remaining streams, while its dissemination state (the
// serve buffer for stragglers) stays intact.
func TestRetireStreamReleasesBudget(t *testing.T) {
	dir := membership.NewDirectory(2)
	e := MustNew(Config{Fanout: 7, UploadKbps: 600, BudgetHeadroom: 1, Sampler: dir.ViewFor(0)})
	for _, sid := range []wire.StreamID{0, 1} {
		if err := e.OpenStream(sid, StreamConfig{RateKbps: 600}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.BudgetScale(); got != 0.5 {
		t.Fatalf("contended scale = %v, want 0.5", got)
	}
	net := simnet.New(simnet.Config{Seed: 6})
	net.AddNode(e, simnet.NodeConfig{})
	net.Schedule(0, func() {
		e.Publish(wire.Event{ID: 1, Stream: 0, Payload: make([]byte, 10)})
	})
	net.Run(time.Second)
	e.RetireStream(0)
	if got := e.BudgetScale(); got != 1 {
		t.Fatalf("scale after retire = %v, want 1 (stream 1 alone is within budget)", got)
	}
	if !e.StreamDelivered(0, 1) || e.BufferedEvents() != 1 {
		t.Fatal("retiring dropped the stream's dissemination state")
	}
	e.RetireStream(0)  // idempotent
	e.RetireStream(42) // unknown: no-op
	if got := e.BudgetScale(); got != 1 {
		t.Fatalf("scale after redundant retires = %v, want 1", got)
	}
}

// TestBudgetScaleShrinksFanout verifies the allocator actually reaches the
// wire: with two streams over budget, mean fanout per round drops by the
// scale factor (stochastic rounding preserving the mean).
func TestBudgetScaleShrinksFanout(t *testing.T) {
	dir := membership.NewDirectory(100)
	e := MustNew(Config{Fanout: 7, UploadKbps: 600, BudgetHeadroom: 1, Sampler: dir.ViewFor(0)})
	for sid, rate := range map[wire.StreamID]float64{0: 600, 1: 600} {
		if err := e.OpenStream(sid, StreamConfig{RateKbps: rate}); err != nil {
			t.Fatal(err)
		}
	}
	net := simnet.New(simnet.Config{Seed: 4})
	net.AddNode(e, simnet.NodeConfig{})
	net.Run(time.Millisecond)
	var sum int
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		sum += e.fanout()
	}
	mean := float64(sum) / rounds
	want := 7 * 0.5 // scale = 600/(600+600)
	if mean < want-0.15 || mean > want+0.15 {
		t.Fatalf("mean budgeted fanout %.3f, want ~%.2f", mean, want)
	}
}

package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/wire"
)

// Property tests for the dense slice/bitset tables that replaced the
// engine's maps: random operation sequences cross-checked against map-based
// oracles over the same id space.

const propIDSpace = 700 // > one bitset word, forces growth past any presize

func TestPendingTableMatchesMapOracle(t *testing.T) {
	type oracleSlot struct {
		proposers    [maxProposersTracked]wire.NodeID
		numProposers uint8
		attempts     uint16
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var tab pendingTable
		if seed%2 == 0 {
			tab.presize(64) // half the runs start presized, half grow from zero
		}
		oracle := map[wire.PacketID]*oracleSlot{}
		for op := 0; op < 2000; op++ {
			id := wire.PacketID(rng.Intn(propIDSpace))
			switch rng.Intn(5) {
			case 0: // insert
				slot := tab.insert(id)
				slot.proposers[0] = wire.NodeID(rng.Intn(100))
				slot.numProposers = 1
				slot.attempts = 1
				oracle[id] = &oracleSlot{
					proposers:    slot.proposers,
					numProposers: 1,
					attempts:     1,
				}
			case 1: // remove
				tab.remove(id)
				delete(oracle, id)
			case 2: // mutate through get, as onPropose/retransmit do
				slot := tab.get(id)
				o := oracle[id]
				if (slot == nil) != (o == nil) {
					t.Fatalf("seed %d op %d: get(%d) presence %v, oracle %v",
						seed, op, id, slot != nil, o != nil)
				}
				if slot != nil {
					if int(slot.numProposers) < maxProposersTracked {
						p := wire.NodeID(rng.Intn(100))
						slot.proposers[slot.numProposers] = p
						slot.numProposers++
						o.proposers[o.numProposers] = p
						o.numProposers++
					}
					slot.attempts++
					o.attempts++
				}
			case 3: // contains
				if tab.contains(id) != (oracle[id] != nil) {
					t.Fatalf("seed %d op %d: contains(%d) mismatch", seed, op, id)
				}
			case 4: // full-state audit
				if tab.len() != len(oracle) {
					t.Fatalf("seed %d op %d: len %d, oracle %d", seed, op, tab.len(), len(oracle))
				}
			}
		}
		for id := wire.PacketID(0); id < propIDSpace; id++ {
			slot, o := tab.get(id), oracle[id]
			if (slot == nil) != (o == nil) {
				t.Fatalf("seed %d final: presence mismatch at %d", seed, id)
			}
			if slot != nil && (slot.proposers != o.proposers ||
				slot.numProposers != o.numProposers || slot.attempts != o.attempts) {
				t.Fatalf("seed %d final: slot %d differs: %+v vs %+v", seed, id, *slot, *o)
			}
		}
	}
}

func TestBufferTableMatchesMapOracle(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0xbeef))
		var tab bufferTable
		if seed%2 == 0 {
			tab.presize(64)
		}
		oracle := map[wire.PacketID]bufferedEvent{}
		for op := 0; op < 2000; op++ {
			id := wire.PacketID(rng.Intn(propIDSpace))
			switch rng.Intn(5) {
			case 0: // insert
				be := bufferedEvent{
					ev:     wire.Event{ID: id, Stamp: rng.Int63()},
					recvAt: time.Duration(rng.Intn(1000)) * time.Millisecond,
				}
				*tab.insert(id) = be
				oracle[id] = be
			case 1: // remove
				tab.remove(id)
				delete(oracle, id)
			case 2: // get
				be := tab.get(id)
				obe, ook := oracle[id]
				if (be != nil) != ook {
					t.Fatalf("seed %d op %d: get(%d) presence %v, oracle %v", seed, op, id, be != nil, ook)
				}
				if be != nil && (be.ev.ID != obe.ev.ID || be.ev.Stamp != obe.ev.Stamp || be.recvAt != obe.recvAt) {
					t.Fatalf("seed %d op %d: get(%d) value mismatch", seed, op, id)
				}
			case 3: // age-based prune, exactly as pruneBuffer applies it
				cutoff := time.Duration(rng.Intn(1000)) * time.Millisecond
				tab.prune(func(be *bufferedEvent) bool { return be.recvAt < cutoff })
				for k, v := range oracle {
					if v.recvAt < cutoff {
						delete(oracle, k)
					}
				}
			case 4:
				if tab.len() != len(oracle) {
					t.Fatalf("seed %d op %d: len %d, oracle %d", seed, op, tab.len(), len(oracle))
				}
			}
		}
		for id := wire.PacketID(0); id < propIDSpace; id++ {
			be := tab.get(id)
			obe, ook := oracle[id]
			if (be != nil) != ook || (be != nil && be.recvAt != obe.recvAt) {
				t.Fatalf("seed %d final: mismatch at %d", seed, id)
			}
		}
	}
}

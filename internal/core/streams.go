package core

import (
	"fmt"

	"repro/internal/wire"
)

// This file holds the per-stream half of the engine split: everything keyed
// by packet id — delivered flags, the outstanding-request table, the serve
// buffer, the infect-and-die batch, the retransmission queue — lives in one
// streamState per dissemination stream, while the capability estimator, the
// peer sampler, the gossip/period tickers, and the fanout budget stay
// engine-global (one membership and aggregation layer shared by N streams).

// maxTrackedStreams bounds how many streams one engine will track. Streams
// are opened explicitly by configuration or lazily on first contact; the
// bound keeps hostile wire input from forcing unbounded per-stream state
// (mirroring maxTrackedPacketID for packet ids). Messages for streams past
// the bound are ignored.
const maxTrackedStreams = 64

// StreamConfig parameterizes one dissemination stream on an engine.
type StreamConfig struct {
	// ExpectedPackets presizes the stream's per-packet tables (see
	// Config.ExpectedPackets). 0 means grow on demand.
	ExpectedPackets int
	// RateKbps is the stream's effective data rate (parity included) in
	// kilobits per second, the weight the fanout-budget allocator uses to
	// divide the node's upload capability across concurrent streams. 0 means
	// unknown: the stream is disseminated but does not participate in the
	// budget weighting.
	RateKbps float64
}

// streamState is the per-stream dissemination state: one instance per stream
// id, owned by the engine and touched only from the node's execution context.
type streamState struct {
	id       wire.StreamID
	rateKbps float64

	delivered bitset          // ids delivered (exactly-once upcall)
	pending   pendingTable    // outstanding request state (dense by id)
	buffer    bufferTable     // deliverable payloads (dense by id)
	toPropose []wire.PacketID // infect-and-die batch

	// Retransmission runs off one fire-and-forget timer per stream and a
	// FIFO deadline queue: armRetransmit appends, retFire drains everything
	// due and re-arms for the next head.
	retQueue  []retEntry
	retHead   int
	retArmed  bool   // a wakeup is pending
	retFireFn func() // cached retFire closure, allocated once per stream
	retFiring bool   // suppresses re-arming from inside retFire
}

// OpenStream registers a stream on the engine before traffic flows —
// sources open their stream with its rate; receivers in configured
// deployments open every stream so tables are presized and the budget
// allocator knows the full competing rate. Streams not opened explicitly are
// opened lazily (unsized, rate 0) on first contact. Opening an already-open
// stream is an error.
func (e *Engine) OpenStream(id wire.StreamID, sc StreamConfig) error {
	if e.lookupStream(id) != nil {
		return fmt.Errorf("core: stream %d already open", id)
	}
	if len(e.streams) >= maxTrackedStreams {
		return fmt.Errorf("core: stream limit %d reached", maxTrackedStreams)
	}
	if sc.RateKbps < 0 {
		return fmt.Errorf("core: stream %d rate %v must not be negative", id, sc.RateKbps)
	}
	e.addStream(id, sc)
	return nil
}

// addStream builds and registers a streamState.
func (e *Engine) addStream(id wire.StreamID, sc StreamConfig) *streamState {
	st := &streamState{id: id, rateKbps: sc.RateKbps}
	st.retFireFn = func() { e.retFire(st) }
	if n := sc.ExpectedPackets; n > 0 {
		st.delivered.presize(n)
		st.pending.presize(n)
		st.buffer.presize(n)
	}
	e.streams = append(e.streams, st)
	e.totalRateKbps += sc.RateKbps
	return st
}

// lookupStream finds an open stream. Stream counts are small (bounded by
// maxTrackedStreams, typically 1-4), so a linear scan beats a map and keeps
// the hot path allocation-free.
func (e *Engine) lookupStream(id wire.StreamID) *streamState {
	for _, st := range e.streams {
		if st.id == id {
			return st
		}
	}
	return nil
}

// streamFor returns the state for id, lazily opening it when create is set.
// Stream 0 — the legacy single stream — inherits the engine-level
// ExpectedPackets/StreamRateKbps configuration; other lazily opened streams
// start unsized with unknown rate. Returns nil past the stream bound.
func (e *Engine) streamFor(id wire.StreamID, create bool) *streamState {
	if st := e.lookupStream(id); st != nil {
		return st
	}
	if !create || len(e.streams) >= maxTrackedStreams {
		return nil
	}
	sc := StreamConfig{}
	if id == 0 {
		sc = StreamConfig{ExpectedPackets: e.cfg.ExpectedPackets, RateKbps: e.cfg.StreamRateKbps}
	}
	return e.addStream(id, sc)
}

// RetireStream removes a stream from the fanout-budget competition: its
// rate weight is released so the remaining streams reclaim the node's
// upload capability. The stream's dissemination state stays — stragglers
// are still proposed to, served from the buffer, and retransmitted — only
// its claim on future budget ends. Long-lived nodes that broadcast streams
// sequentially must retire each one when its production finishes, or every
// past stream keeps throttling all future ones (Node.OpenStream wires this
// to the source's completion automatically). Retiring an unknown or
// already-retired stream is a no-op.
func (e *Engine) RetireStream(id wire.StreamID) {
	st := e.lookupStream(id)
	if st == nil {
		return
	}
	e.totalRateKbps -= st.rateKbps
	st.rateKbps = 0
}

// Streams returns the ids of the engine's open streams, in open order.
func (e *Engine) Streams() []wire.StreamID {
	out := make([]wire.StreamID, len(e.streams))
	for i, st := range e.streams {
		out[i] = st.id
	}
	return out
}

// budgetScale is the fanout-budget allocator: it returns the factor by which
// every stream's fanout is scaled so that the node's expected aggregate
// serve load stays within its upload capability.
//
// With HEAP's fanout f_i = fbar·b_i/bbar per stream, node i's expected
// upload for stream k is (f_i/fbar)·r_k, so the aggregate over streams is
// rel_i·Σr_k. When that exceeds the node's budget, every fanout is scaled by
// budget/(rel_i·Σr_k) — which is exactly the rate-weighted division of the
// node's capability across streams: stream k's upload share becomes
// budget·r_k/Σr, and reliability degrades uniformly instead of by
// whichever stream's queue happens to overflow first. The scaled fanouts are
// stochastically rounded per stream like any other fanout.
//
// The allocator only arbitrates *competition*: with a single stream (or no
// known budget or rates) the scale is 1 and the protocol is exactly the
// paper's — a lone overloaded stream behaves as the paper's CSR accounting
// describes, it is several broadcasters that must share the uplink fairly.
func (e *Engine) budgetScale() float64 {
	// effUploadKbps is the configured budget, lowered to the adaptation
	// controller's estimate while congestion persists (adaptTick): a node
	// whose real capacity fell below its configured value rebalances its
	// streams off what it can actually push.
	if e.effUploadKbps == 0 || len(e.streams) < 2 || e.totalRateKbps <= 0 {
		return 1
	}
	rel := 1.0
	if e.cfg.Adaptive {
		if r := e.cfg.Capabilities.RelativeCapability(); r > 0 {
			rel = r
		}
	}
	predicted := rel * e.totalRateKbps
	budget := float64(e.effUploadKbps) * e.cfg.BudgetHeadroom
	if predicted <= budget {
		return 1
	}
	return budget / predicted
}

// BudgetScale exposes the current fanout-budget scale (1 when the allocator
// is inactive), for tests and diagnostics.
func (e *Engine) BudgetScale() float64 { return e.budgetScale() }

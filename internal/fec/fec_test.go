package fec

import (
	"bytes"
	"math/rand"
	"testing"
)

func makeWindow(t testing.TB, rng *rand.Rand, k, size int) [][]byte {
	t.Helper()
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	return data
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		k, r    int
		wantErr bool
	}{
		{"paper geometry", 101, 9, false},
		{"tiny", 1, 1, false},
		{"max field", 200, 56, false},
		{"zero data", 0, 3, true},
		{"zero parity", 3, 0, true},
		{"negative", -1, 2, true},
		{"exceeds field", 250, 7, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.k, tc.r)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(%d,%d) err = %v, wantErr = %v", tc.k, tc.r, err, tc.wantErr)
			}
		})
	}
}

func TestSystematicProperty(t *testing.T) {
	// The code must be systematic: encoding must not alter data shards, and
	// parity must be a pure function of the data.
	c, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := makeWindow(t, rng, 5, 64)
	orig := make([][]byte, len(data))
	for i := range data {
		orig[i] = append([]byte(nil), data[i]...)
	}
	p1, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(data[i], orig[i]) {
			t.Fatalf("Encode mutated data shard %d", i)
		}
	}
	p2, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if !bytes.Equal(p1[i], p2[i]) {
			t.Fatalf("Encode is not deterministic (parity %d differs)", i)
		}
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	// For a small geometry, exhaustively test every erasure pattern that
	// leaves at least k shards: all must reconstruct the data exactly.
	const k, r, size = 4, 3, 32
	c, err := New(k, r)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	data := makeWindow(t, rng, k, size)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := make([][]byte, k+r)
	copy(full, data)
	copy(full[k:], parity)

	n := k + r
	for mask := 0; mask < 1<<n; mask++ {
		presentCount := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				presentCount++
			}
		}
		shards := make([][]byte, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				shards[i] = append([]byte(nil), full[i]...)
			}
		}
		err := c.Reconstruct(shards)
		if presentCount < k {
			// Only an error is acceptable, unless no data shard is missing
			// (impossible here when presentCount < k... it IS possible:
			// e.g. all k data shards present is presentCount >= k).
			if err == nil {
				// Acceptable only if no data shards were missing.
				missing := false
				for i := 0; i < k; i++ {
					if mask&(1<<i) == 0 {
						missing = true
					}
				}
				if missing {
					t.Fatalf("mask %b: reconstruct succeeded with %d < %d shards", mask, presentCount, k)
				}
			}
			continue
		}
		if err != nil {
			t.Fatalf("mask %b: reconstruct failed with %d shards: %v", mask, presentCount, err)
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shards[i], full[i]) {
				t.Fatalf("mask %b: data shard %d mismatch", mask, i)
			}
		}
	}
}

func TestReconstructPaperGeometry(t *testing.T) {
	c, err := NewPaper()
	if err != nil {
		t.Fatal(err)
	}
	if c.DataShards() != 101 || c.ParityShards() != 9 || c.TotalShards() != 110 {
		t.Fatalf("paper geometry wrong: %d+%d", c.DataShards(), c.ParityShards())
	}
	rng := rand.New(rand.NewSource(3))
	data := makeWindow(t, rng, 101, PaperShardSize)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := make([][]byte, 110)
	copy(full, data)
	copy(full[101:], parity)

	for trial := 0; trial < 25; trial++ {
		// Erase exactly 9 random shards: still decodable.
		shards := make([][]byte, 110)
		for i := range full {
			shards[i] = append([]byte(nil), full[i]...)
		}
		perm := rng.Perm(110)
		for _, i := range perm[:9] {
			shards[i] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("trial %d: reconstruct with 9 erasures failed: %v", trial, err)
		}
		for i := 0; i < 101; i++ {
			if !bytes.Equal(shards[i], full[i]) {
				t.Fatalf("trial %d: data shard %d mismatch after reconstruct", trial, i)
			}
		}
	}

	// 10 erasures: must fail when a data shard is among them.
	shards := make([][]byte, 110)
	for i := range full {
		shards[i] = append([]byte(nil), full[i]...)
	}
	for i := 0; i < 10; i++ {
		shards[i] = nil
	}
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("reconstruct with 10 erasures should fail")
	}
}

func TestReconstructNoMissingData(t *testing.T) {
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	data := makeWindow(t, rng, 3, 16)
	shards := make([][]byte, 5)
	copy(shards, data)
	// Parity entirely missing but all data present: no-op success.
	if err := c.Reconstruct(shards); err != nil {
		t.Fatalf("reconstruct with full data failed: %v", err)
	}
}

func TestReconstructErrors(t *testing.T) {
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reconstruct(make([][]byte, 4)); err == nil {
		t.Error("wrong shard count should fail")
	}
	shards := make([][]byte, 5)
	shards[0] = make([]byte, 8)
	shards[1] = make([]byte, 9) // inconsistent size
	shards[2] = make([]byte, 8)
	shards[3] = make([]byte, 8)
	if err := c.Reconstruct(shards); err == nil {
		t.Error("inconsistent shard sizes should fail")
	}
}

func TestEncodeErrors(t *testing.T) {
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encode(make([][]byte, 2)); err == nil {
		t.Error("wrong data shard count should fail")
	}
	bad := [][]byte{make([]byte, 4), make([]byte, 5), make([]byte, 4)}
	if _, err := c.Encode(bad); err == nil {
		t.Error("inconsistent data shard sizes should fail")
	}
	empty := [][]byte{{}, {}, {}}
	if _, err := c.Encode(empty); err == nil {
		t.Error("empty shards should fail")
	}
}

func TestVerify(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := makeWindow(t, rng, 4, 24)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(data, parity)
	if err != nil || !ok {
		t.Fatalf("Verify of valid window: ok=%v err=%v", ok, err)
	}
	parity[1][3] ^= 0xff
	ok, err = c.Verify(data, parity)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Verify accepted corrupted parity")
	}
}

func TestDecodable(t *testing.T) {
	c, err := New(101, 9)
	if err != nil {
		t.Fatal(err)
	}
	if c.Decodable(100) {
		t.Error("100 shards should not be decodable")
	}
	if !c.Decodable(101) || !c.Decodable(110) {
		t.Error("101 and 110 shards should be decodable")
	}
}

// TestRandomErasureProperty is a randomized property test across geometries:
// erase up to r random shards, reconstruct, compare.
func TestRandomErasureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	geoms := []struct{ k, r int }{{2, 2}, {5, 3}, {10, 4}, {20, 10}, {50, 6}}
	for _, g := range geoms {
		c, err := New(g.k, g.r)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			size := 1 + rng.Intn(200)
			data := makeWindow(t, rng, g.k, size)
			parity, err := c.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			full := make([][]byte, g.k+g.r)
			copy(full, data)
			copy(full[g.k:], parity)
			shards := make([][]byte, len(full))
			for i := range full {
				shards[i] = append([]byte(nil), full[i]...)
			}
			erase := rng.Intn(g.r + 1)
			perm := rng.Perm(len(shards))
			for _, i := range perm[:erase] {
				shards[i] = nil
			}
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("k=%d r=%d erase=%d: %v", g.k, g.r, erase, err)
			}
			for i := 0; i < g.k; i++ {
				if !bytes.Equal(shards[i], full[i]) {
					t.Fatalf("k=%d r=%d: data shard %d mismatch", g.k, g.r, i)
				}
			}
		}
	}
}

func BenchmarkEncodePaperWindow(b *testing.B) {
	c, err := NewPaper()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	data := make([][]byte, c.DataShards())
	for i := range data {
		data[i] = make([]byte, PaperShardSize)
		rng.Read(data[i])
	}
	b.SetBytes(int64(c.DataShards() * PaperShardSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructPaperWindow(b *testing.B) {
	c, err := NewPaper()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	data := make([][]byte, c.DataShards())
	for i := range data {
		data[i] = make([]byte, PaperShardSize)
		rng.Read(data[i])
	}
	parity, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	full := make([][]byte, c.TotalShards())
	copy(full, data)
	copy(full[c.DataShards():], parity)
	b.SetBytes(int64(c.DataShards() * PaperShardSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(full))
		copy(shards, full)
		// Erase 9 data shards; reconstruction does real matrix work.
		for j := 0; j < 9; j++ {
			shards[(i+j*11)%101] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

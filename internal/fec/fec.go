// Package fec implements the systematic forward-error-correction code used
// by the streaming application evaluated in the HEAP paper (Middleware 2009,
// §3.1): every window of k = 101 stream packets is extended with r = 9
// parity packets, and the window can be fully decoded from any k of the
// k+r = 110 packets.
//
// The code is a systematic Reed–Solomon erasure code over GF(2^8) built on a
// Vandermonde generator matrix: the first k rows of the (k+r) x k generator
// are turned into the identity (so source packets are transmitted verbatim —
// "systematic coding" in the paper's terms, which is what makes partial
// delivery ratios inside jittered windows meaningful), and the remaining r
// rows produce parity packets. Any k rows of the generator form an
// invertible matrix, giving the MDS property: any k received packets
// reconstruct the window.
package fec

import (
	"errors"
	"fmt"

	"repro/internal/gf256"
)

// Paper parameters (§3.1): windows of 101 source packets plus 9 FEC packets,
// each packet 1316 bytes, raising a 551 kbps stream to 600 kbps effective.
const (
	PaperDataShards   = 101
	PaperParityShards = 9
	PaperShardSize    = 1316
)

// Common error conditions.
var (
	ErrTooFewShards   = errors.New("fec: not enough shards to reconstruct")
	ErrShardSize      = errors.New("fec: inconsistent shard sizes")
	ErrInvalidCounts  = errors.New("fec: invalid shard counts")
	ErrShardIndex     = errors.New("fec: shard index out of range")
	ErrTooManyShards  = errors.New("fec: data+parity shards exceed field order")
	ErrNothingToDo    = errors.New("fec: no missing data shards")
	ErrWrongShardSets = errors.New("fec: shards slice has wrong length")
)

// Code is a systematic Reed–Solomon erasure code with a fixed geometry of
// DataShards source shards and ParityShards parity shards. A Code is
// immutable after construction and safe for concurrent use.
type Code struct {
	dataShards   int
	parityShards int
	field        *gf256.Field
	// gen is the (dataShards+parityShards) x dataShards generator matrix
	// whose top dataShards x dataShards block is the identity.
	gen *gf256.Matrix
}

// New constructs a Code with the given geometry. dataShards and parityShards
// must be positive and their sum must not exceed 256 (the field order).
func New(dataShards, parityShards int) (*Code, error) {
	if dataShards <= 0 || parityShards <= 0 {
		return nil, fmt.Errorf("%w: data=%d parity=%d", ErrInvalidCounts, dataShards, parityShards)
	}
	if dataShards+parityShards > gf256.Order {
		return nil, fmt.Errorf("%w: data=%d parity=%d", ErrTooManyShards, dataShards, parityShards)
	}
	f := gf256.NewField()
	n := dataShards + parityShards
	// Build a systematic generator: start from an n x k Vandermonde matrix
	// (any k rows independent), then right-multiply by the inverse of its
	// top k x k block so the top block becomes the identity. The result
	// retains the any-k-rows-invertible property.
	v := gf256.Vandermonde(f, n, dataShards)
	topRows := make([]int, dataShards)
	for i := range topRows {
		topRows[i] = i
	}
	top := v.SubMatrix(topRows)
	topInv, err := f.Invert(top)
	if err != nil {
		// Cannot happen: a square Vandermonde block with distinct row
		// indices is always invertible.
		return nil, fmt.Errorf("fec: internal generator construction failed: %w", err)
	}
	gen := f.MatMul(v, topInv)
	return &Code{
		dataShards:   dataShards,
		parityShards: parityShards,
		field:        f,
		gen:          gen,
	}, nil
}

// NewPaper returns the 101+9 code used throughout the paper's evaluation.
func NewPaper() (*Code, error) { return New(PaperDataShards, PaperParityShards) }

// DataShards returns the number of source shards per window.
func (c *Code) DataShards() int { return c.dataShards }

// ParityShards returns the number of parity shards per window.
func (c *Code) ParityShards() int { return c.parityShards }

// TotalShards returns DataShards + ParityShards.
func (c *Code) TotalShards() int { return c.dataShards + c.parityShards }

// Encode computes the parity shards for the given data shards. data must
// contain exactly DataShards equally sized slices. The returned slice holds
// ParityShards newly allocated parity shards of the same size.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.dataShards {
		return nil, fmt.Errorf("%w: got %d data shards, want %d", ErrWrongShardSets, len(data), c.dataShards)
	}
	size, err := shardSize(data)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, c.parityShards)
	for p := 0; p < c.parityShards; p++ {
		out := make([]byte, size)
		row := c.gen.Row(c.dataShards + p)
		for d, coef := range row {
			c.field.MulAddSlice(coef, out, data[d])
		}
		parity[p] = out
	}
	return parity, nil
}

// Reconstruct fills in the missing shards of a window in place. shards must
// have length TotalShards; present shards are non-nil and equally sized,
// missing shards are nil. On success every entry of shards is non-nil and
// the data shards contain the original content. It fails with
// ErrTooFewShards when fewer than DataShards shards are present.
//
// Only data shards are reconstructed (parity entries are left nil if they
// were missing): receivers in the streaming application only need the source
// packets back.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.TotalShards() {
		return fmt.Errorf("%w: got %d, want %d", ErrWrongShardSets, len(shards), c.TotalShards())
	}
	present := make([]int, 0, c.TotalShards())
	var size int
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == 0 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, others %d", ErrShardSize, i, len(s), size)
		}
		present = append(present, i)
	}
	missingData := make([]int, 0, c.dataShards)
	for i := 0; i < c.dataShards; i++ {
		if shards[i] == nil {
			missingData = append(missingData, i)
		}
	}
	if len(missingData) == 0 {
		return nil
	}
	if len(present) < c.dataShards {
		return fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(present), c.dataShards)
	}
	// Use the first dataShards present shards as the decoding basis.
	basis := present[:c.dataShards]
	sub := c.gen.SubMatrix(basis)
	inv, err := c.field.Invert(sub)
	if err != nil {
		// Cannot happen for a correctly constructed MDS generator.
		return fmt.Errorf("fec: decode matrix singular: %w", err)
	}
	// dataRow(d) = sum over basis b of inv[d][b] * shards[basis[b]].
	for _, d := range missingData {
		out := make([]byte, size)
		row := inv.Row(d)
		for b, coef := range row {
			c.field.MulAddSlice(coef, out, shards[basis[b]])
		}
		shards[d] = out
	}
	return nil
}

// Decodable reports whether a window with the given number of present shards
// can be fully reconstructed.
func (c *Code) Decodable(presentShards int) bool {
	return presentShards >= c.dataShards
}

// Verify re-encodes the data shards and reports whether the provided parity
// shards match. All shards must be present and equally sized.
func (c *Code) Verify(data, parity [][]byte) (bool, error) {
	if len(data) != c.dataShards || len(parity) != c.parityShards {
		return false, ErrWrongShardSets
	}
	want, err := c.Encode(data)
	if err != nil {
		return false, err
	}
	for i := range want {
		if len(parity[i]) != len(want[i]) {
			return false, ErrShardSize
		}
		for j := range want[i] {
			if parity[i][j] != want[i][j] {
				return false, nil
			}
		}
	}
	return true, nil
}

func shardSize(shards [][]byte) (int, error) {
	if len(shards) == 0 {
		return 0, ErrInvalidCounts
	}
	size := len(shards[0])
	if size == 0 {
		return 0, fmt.Errorf("%w: empty shard", ErrShardSize)
	}
	for i, s := range shards {
		if len(s) != size {
			return 0, fmt.Errorf("%w: shard %d has %d bytes, shard 0 has %d", ErrShardSize, i, len(s), size)
		}
	}
	return size, nil
}

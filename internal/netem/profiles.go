package netem

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/wire"
)

// Stock adverse profiles, keyed by the names the -netem flags accept. All
// are n-independent data (fraction-based node selections materialize at
// Build time), with event schedules placed shortly after the scenarios'
// default 5 s stream start so they land mid-stream at every scale the repo
// runs — the paper's 270x93 grid down to the test suite's scaled-down runs.
//
//   - bursty: Gilbert-Elliott loss with ~4-datagram bursts and a ~7% bad
//     share (~2% average loss, arriving in clumps instead of independently).
//   - partition: a random quarter of the system is cut off from the rest for
//     15 s mid-stream, then the partition heals.
//   - spike: a 400 ms latency spike ramping in and out over 3 s, followed by
//     a smaller square 150 ms bump — spike and drift in one schedule.
//   - asym: a fifth of the nodes degrade asymmetrically — 5% extra loss on
//     everything they receive, 150 ms extra delay on everything they send.
//   - captrace: 30% of the nodes lose ~2/3 of their upload capability 10 s
//     into the run and recover 20 s later; with HEAP the drop is advertised,
//     so adaptive fanout should reroute load around it.
//   - captrace-silent: the same capacity schedule, but the traced nodes keep
//     advertising full capability — the unnoticed-degradation knife-edge
//     that only the adaptation layer (Scenario.Adapt, internal/adapt) can
//     neutralize by measuring the real throughput and re-advertising it.
//   - mixed: mild bursty loss, the partition, and the spike together.
var profiles = map[string]Config{
	"bursty": {
		Name: "bursty",
		GE:   &GEParams{PGoodBad: 0.02, PBadGood: 0.25, LossGood: 0.0005, LossBad: 0.3},
	},
	"partition": {
		Name: "partition",
		Partitions: []PartitionSpec{
			{From: 10 * time.Second, Until: 25 * time.Second, SplitFractions: []float64{0.25}},
		},
	},
	"spike": {
		Name: "spike",
		Spikes: []Spike{
			{At: 8 * time.Second, Duration: 12 * time.Second, Extra: 400 * time.Millisecond, Ramp: 3 * time.Second},
			{At: 30 * time.Second, Duration: 10 * time.Second, Extra: 150 * time.Millisecond},
		},
	},
	"asym": {
		Name: "asym",
		Asym: &AsymSpec{Fraction: 0.2, RxLoss: 0.05, TxDelay: 150 * time.Millisecond},
	},
	"captrace": {
		Name: "captrace",
		CapTraces: []CapTraceSpec{
			{Fraction: 0.3, Steps: []CapStep{
				{At: 10 * time.Second, Factor: 0.35},
				{At: 30 * time.Second, Factor: 1},
			}},
		},
	},
	"captrace-silent": {
		Name: "captrace-silent",
		CapTraces: []CapTraceSpec{
			{Fraction: 0.3, Silent: true, Steps: []CapStep{
				{At: 10 * time.Second, Factor: 0.35},
				{At: 30 * time.Second, Factor: 1},
			}},
		},
	},
	"mixed": {
		Name: "mixed",
		GE:   &GEParams{PGoodBad: 0.01, PBadGood: 0.3, LossGood: 0.0005, LossBad: 0.2},
		Partitions: []PartitionSpec{
			{From: 10 * time.Second, Until: 25 * time.Second, SplitFractions: []float64{0.25}},
		},
		Spikes: []Spike{
			{At: 8 * time.Second, Duration: 12 * time.Second, Extra: 400 * time.Millisecond, Ramp: 3 * time.Second},
		},
	},
}

// ProfileNames lists the stock profile names, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Profile returns a deep copy of the named stock profile, so callers may
// customize the result (the schedules, the fractions) without corrupting
// the registry for later calls in the same process.
func Profile(name string) (Config, error) {
	c, ok := profiles[name]
	if !ok {
		return Config{}, fmt.Errorf("netem: unknown profile %q (known: %v)", name, ProfileNames())
	}
	return c.clone(), nil
}

// clone deep-copies a Config, including every nested slice.
func (c Config) clone() Config {
	if c.GE != nil {
		ge := *c.GE
		c.GE = &ge
	}
	if c.Asym != nil {
		a := *c.Asym
		a.Nodes = append([]wire.NodeID(nil), a.Nodes...)
		c.Asym = &a
	}
	if c.Partitions != nil {
		parts := make([]PartitionSpec, len(c.Partitions))
		for i, p := range c.Partitions {
			p.SplitFractions = append([]float64(nil), p.SplitFractions...)
			p.Groups = append([][]wire.NodeID(nil), p.Groups...)
			for g := range p.Groups {
				p.Groups[g] = append([]wire.NodeID(nil), p.Groups[g]...)
			}
			parts[i] = p
		}
		c.Partitions = parts
	}
	c.Spikes = append([]Spike(nil), c.Spikes...)
	if c.CapTraces != nil {
		traces := make([]CapTraceSpec, len(c.CapTraces))
		for i, tr := range c.CapTraces {
			tr.Nodes = append([]wire.NodeID(nil), tr.Nodes...)
			tr.Steps = append([]CapStep(nil), tr.Steps...)
			traces[i] = tr
		}
		c.CapTraces = traces
	}
	return c
}

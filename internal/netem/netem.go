// Package netem is a deterministic, composable network-condition engine:
// the adverse counterpart to the near-ideal network both substrates model by
// default. A Model passes a per-datagram verdict — deliver, drop, or deliver
// with extra delay — as a deterministic function of (endpoints, size, time)
// plus draws from the run's seeded rng. The same models drive the
// discrete-event simulator (internal/simnet) and the real-UDP runtime
// (internal/udpnet), so an adverse profile exercised in simulation
// reproduces on sockets.
//
// Both substrates consult the model at transmit time, with one placement
// difference: the simulator judges at the instant the datagram reaches the
// wire (after uplink serialization — drop verdicts spend the uplink but
// never arrive, delay verdicts extend propagation), while the real-UDP
// runtime judges as the datagram enters its paced sender, like a tc-netem
// qdisc in front of the device. The substrates therefore agree exactly for
// time-invariant models (loss rates, chains) and for schedule-driven models
// whenever the pacer backlog is small against the schedule's windows; a
// deeply backlogged sender straddling a window boundary can receive
// different verdicts for the queued tail, and delayed datagrams vacate
// pacing slots on sockets where the simulator charges serialization first.
//
// Stock models:
//
//   - Bernoulli: independent per-datagram loss (the substrates' default).
//   - GilbertElliott: the classic 2-state bursty-loss chain, stepped per
//     datagram with independent state per sender (its uplink), the
//     semantics of a tc-netem loss model on the sender's interface.
//   - Partitions: scheduled arbitrary node-set splits that heal — datagrams
//     crossing a split are dropped while it lasts.
//   - LatencySpikes: windows of extra one-way delay with linear ramps, for
//     spike and drift events.
//   - Directional: applies an inner model to one traffic direction only
//     (asymmetric degradation).
//   - FixedDelay, Stack: composition primitives.
//
// Models compose through an Engine, which consults them in order, counts
// per-model drops and delays, and carries the run's capability traces
// (time-varying advertised-capability rewrites, applied by the substrate).
// Engines are built from a data-only Config, so a profile travels through
// scenario configs, sweep variants, and command-line flags as plain data and
// materializes per-run state (rng-chosen node sets, chain state, counters)
// only at Build time — identical (Config, n, seed) build identical engines.
package netem

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Verdict is one datagram's fate: dropped, or delivered after Delay of
// extra one-way latency on top of the substrate's propagation model.
type Verdict struct {
	Drop  bool
	Delay time.Duration
}

// Model judges datagrams. Implementations must be deterministic functions of
// their own state, the arguments, and draws from rng. The sharded simulator
// judges concurrently — one call per in-flight sender, each with that
// sender's own rng — so any per-sender mutable state must be confined to
// the sending node's slot (GilbertElliott's chains are the template), and
// anything shared across senders must be read-only after Build or atomic.
// The real-UDP runtime judges under a node's mutex.
type Model interface {
	// Judge decides the fate of one datagram of the given wire size sent
	// from -> to at time now. rng is the substrate's seeded random stream.
	Judge(from, to wire.NodeID, size int, now time.Duration, rng *rand.Rand) Verdict
}

// Bernoulli drops each datagram independently with probability P. It is the
// substrates' default model (simnet builds one from Config.LossRate), and
// draws from rng only when P > 0 so the zero-config rng stream is unchanged.
type Bernoulli struct {
	P float64
}

// Judge implements Model.
func (b Bernoulli) Judge(_, _ wire.NodeID, _ int, _ time.Duration, rng *rand.Rand) Verdict {
	if b.P > 0 && rng.Float64() < b.P {
		return Verdict{Drop: true}
	}
	return Verdict{}
}

// FixedDelay adds a constant extra one-way delay to every datagram. Mostly
// useful inside Directional or Stack compositions.
type FixedDelay time.Duration

// Judge implements Model.
func (d FixedDelay) Judge(_, _ wire.NodeID, _ int, _ time.Duration, _ *rand.Rand) Verdict {
	return Verdict{Delay: time.Duration(d)}
}

// GEParams parameterizes a Gilbert-Elliott bursty-loss chain: a 2-state
// Markov chain stepped once per datagram, losing with LossGood in the good
// state and LossBad in the bad one. Mean burst length is 1/PBadGood
// datagrams; the steady-state bad share is PGoodBad/(PGoodBad+PBadGood).
type GEParams struct {
	PGoodBad float64 // per-datagram probability good -> bad
	PBadGood float64 // per-datagram probability bad -> good
	LossGood float64 // loss probability in the good state
	LossBad  float64 // loss probability in the bad state
}

// Validate checks the chain parameters.
func (p GEParams) Validate() error {
	for _, v := range []struct {
		name string
		v    float64
	}{
		{"PGoodBad", p.PGoodBad}, {"PBadGood", p.PBadGood},
		{"LossGood", p.LossGood}, {"LossBad", p.LossBad},
	} {
		if v.v < 0 || v.v > 1 {
			return fmt.Errorf("netem: gilbert-elliott %s %v outside [0,1]", v.name, v.v)
		}
	}
	return nil
}

// GilbertElliott is the bursty-loss model: each *sender* runs its own chain,
// stepped once per datagram it emits — the semantics of a `tc netem` loss
// model on the sender's interface, and the right shape for this repo's
// uplink-centric network model (a burst hits the access link, so it
// correlates across that node's receivers but not across senders). Chains
// start in the good state and live in a dense slice indexed by sender id,
// so steady-state judging allocates nothing and memory is O(nodes), not
// O(links) — per-directed-link chains would grow toward n² entries under
// gossip's ever-changing target sets.
type GilbertElliott struct {
	p        GEParams
	bad      []bool // chain state per sender, dense by id, grown lazily
	overflow bool   // shared chain for out-of-range sender ids (hostile input)
}

// maxTrackedSender bounds the dense chain slice against hostile wire input
// on the real-UDP path, mirroring aggregation's maxTrackedNodeID: node ids
// are dense, so anything past this is a forged sender id and shares one
// overflow chain instead of growing the slice on a peer's say-so.
const maxTrackedSender = 1 << 20

// NewGilbertElliott builds the model, panicking on invalid parameters (a
// wiring bug, matching the substrates' config validation style).
func NewGilbertElliott(p GEParams) *GilbertElliott {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	return &GilbertElliott{p: p}
}

// Presizer is implemented by models (and compositions) whose per-sender
// state can be grown ahead of need. The simulator presizes at every AddNode
// — a barrier-time operation — so that chain slots never grow inside a
// parallel window, where concurrent senders would race on the append.
type Presizer interface {
	// Presize guarantees slots for sender ids < n (capped internally
	// against hostile sizes).
	Presize(n int)
}

// Presize implements Presizer: grows the dense chain slice so senders below
// n never append on the Judge path.
func (g *GilbertElliott) Presize(n int) {
	if n > maxTrackedSender {
		n = maxTrackedSender
	}
	for len(g.bad) < n {
		g.bad = append(g.bad, false)
	}
}

// Judge implements Model: step the sender's chain, then lose with the
// state's probability. Exactly two rng draws per datagram, so the stream
// stays reproducible regardless of who talks to whom.
func (g *GilbertElliott) Judge(from, _ wire.NodeID, _ int, _ time.Duration, rng *rand.Rand) Verdict {
	slot := &g.overflow
	if from >= 0 && int64(from) < maxTrackedSender {
		for int(from) >= len(g.bad) {
			g.bad = append(g.bad, false)
		}
		slot = &g.bad[from]
	}
	step := rng.Float64()
	if *slot {
		if step < g.p.PBadGood {
			*slot = false
		}
	} else if step < g.p.PGoodBad {
		*slot = true
	}
	loss := g.p.LossGood
	if *slot {
		loss = g.p.LossBad
	}
	if rng.Float64() < loss {
		return Verdict{Drop: true}
	}
	return Verdict{}
}

// Partition is one scheduled split: from From (inclusive) to Until
// (exclusive), datagrams crossing group boundaries are dropped. Nodes listed
// in Groups belong to their group; unlisted nodes form one implicit extra
// group — so a single listed group isolates it from the rest of the system,
// and multiple groups express arbitrary node-set splits. At Until the
// partition heals and traffic flows again.
type Partition struct {
	From, Until time.Duration
	Groups      [][]wire.NodeID
}

// Partitions is the schedule-driven partition model.
type Partitions struct {
	parts []partState
}

// partState keeps group membership in a dense slice indexed by node id
// (-1 = the implicit group), so the per-datagram lookup on the simulator's
// transmit hot path is hash-free — consistent with the repo's dense-table
// design. Listed ids are bounded by the materialization pool, so the slice
// is O(n); judged ids beyond it (hostile wire input) read as implicit.
type partState struct {
	from, until time.Duration
	group       []int32
}

func (st *partState) groupOf(id wire.NodeID) int32 {
	if id >= 0 && int(id) < len(st.group) {
		return st.group[id]
	}
	return -1
}

// NewPartitions builds the model, panicking on an empty or unordered window
// or an empty group list.
func NewPartitions(parts ...Partition) *Partitions {
	p := &Partitions{parts: make([]partState, 0, len(parts))}
	for i, part := range parts {
		if part.Until <= part.From || part.From < 0 {
			panic(fmt.Sprintf("netem: partition %d window [%v,%v) is empty or negative", i, part.From, part.Until))
		}
		if len(part.Groups) == 0 {
			panic(fmt.Sprintf("netem: partition %d has no groups", i))
		}
		maxID := wire.NodeID(-1)
		for _, ids := range part.Groups {
			for _, id := range ids {
				if id < 0 {
					panic(fmt.Sprintf("netem: partition %d lists negative node id %d", i, id))
				}
				if id > maxID {
					maxID = id
				}
			}
		}
		st := partState{from: part.From, until: part.Until, group: make([]int32, maxID+1)}
		for j := range st.group {
			st.group[j] = -1
		}
		for g, ids := range part.Groups {
			for _, id := range ids {
				st.group[id] = int32(g)
			}
		}
		p.parts = append(p.parts, st)
	}
	return p
}

// Judge implements Model: drop when any active partition separates the
// endpoints. No rng draws.
func (p *Partitions) Judge(from, to wire.NodeID, _ int, now time.Duration, _ *rand.Rand) Verdict {
	for i := range p.parts {
		st := &p.parts[i]
		if now < st.from || now >= st.until {
			continue
		}
		if st.groupOf(from) != st.groupOf(to) {
			return Verdict{Drop: true}
		}
	}
	return Verdict{}
}

// Spike is one window of extra one-way delay: Extra at the plateau, with a
// linear ramp of Ramp on the way in and out (drift), or a square pulse when
// Ramp is zero. Windows may overlap; their extras add.
type Spike struct {
	At       time.Duration
	Duration time.Duration
	Extra    time.Duration
	Ramp     time.Duration
}

// LatencySpikes is the schedule-driven delay model.
type LatencySpikes struct {
	spikes []Spike
}

// NewLatencySpikes builds the model, panicking on non-positive windows or
// negative parameters.
func NewLatencySpikes(spikes ...Spike) *LatencySpikes {
	for i, s := range spikes {
		if s.At < 0 || s.Duration <= 0 || s.Extra < 0 || s.Ramp < 0 {
			panic(fmt.Sprintf("netem: spike %d has a non-positive window or negative parameters", i))
		}
	}
	return &LatencySpikes{spikes: spikes}
}

// Judge implements Model. No rng draws.
func (l *LatencySpikes) Judge(_, _ wire.NodeID, _ int, now time.Duration, _ *rand.Rand) Verdict {
	var extra time.Duration
	for _, s := range l.spikes {
		if now < s.At || now >= s.At+s.Duration {
			continue
		}
		frac := 1.0
		if s.Ramp > 0 {
			if in := now - s.At; in < s.Ramp {
				frac = float64(in) / float64(s.Ramp)
			}
			if out := s.At + s.Duration - now; out < s.Ramp {
				if f := float64(out) / float64(s.Ramp); f < frac {
					frac = f
				}
			}
		}
		extra += time.Duration(float64(s.Extra) * frac)
	}
	return Verdict{Delay: extra}
}

// NodeSet is a set of node ids used to scope Directional models, stored as
// a dense membership slice so the per-datagram check on the transmit hot
// path is hash-free (listed ids are bounded by the materialization pool).
// The zero NodeSet is "unset" and matches every node; NewNodeSet() with no
// ids is an empty set matching none.
type NodeSet struct {
	dense []bool
}

// NewNodeSet builds a NodeSet from ids (negative ids are ignored).
func NewNodeSet(ids ...wire.NodeID) NodeSet {
	max := -1
	for _, id := range ids {
		if int(id) > max {
			max = int(id)
		}
	}
	s := NodeSet{dense: make([]bool, max+1)}
	for _, id := range ids {
		if id >= 0 {
			s.dense[id] = true
		}
	}
	return s
}

// Contains reports set membership; ids beyond the dense range (including
// hostile wire input) are not members.
func (s NodeSet) Contains(id wire.NodeID) bool {
	return id >= 0 && int(id) < len(s.dense) && s.dense[id]
}

// Directional applies Inner only to datagrams whose sender is in From and
// whose receiver is in To (an unset zero-value set matches every node) —
// per-direction asymmetric degradation. Datagrams outside the scope pass
// untouched and consume none of Inner's rng draws.
type Directional struct {
	Inner    Model
	From, To NodeSet
}

// Judge implements Model.
func (d Directional) Judge(from, to wire.NodeID, size int, now time.Duration, rng *rand.Rand) Verdict {
	if d.From.dense != nil && !d.From.Contains(from) {
		return Verdict{}
	}
	if d.To.dense != nil && !d.To.Contains(to) {
		return Verdict{}
	}
	return d.Inner.Judge(from, to, size, now, rng)
}

// Boundary applies Inner only to datagrams that cross the boundary of Set:
// exactly one endpoint inside it. Region-targeted degradations (a flaky WAN
// link between one cluster and the rest of the world) compose from it at
// Build time. Datagrams that do not cross pass untouched and consume none
// of Inner's rng draws.
type Boundary struct {
	Inner Model
	Set   NodeSet
}

// Judge implements Model.
func (b Boundary) Judge(from, to wire.NodeID, size int, now time.Duration, rng *rand.Rand) Verdict {
	if b.Set.Contains(from) == b.Set.Contains(to) {
		return Verdict{}
	}
	return b.Inner.Judge(from, to, size, now, rng)
}

// Stack composes models: consulted in order, extra delays add, and the first
// drop wins (later models are then not consulted, so their rng draws are
// skipped — fine for same-seed reproducibility, which is all we promise).
type Stack []Model

// Judge implements Model.
func (s Stack) Judge(from, to wire.NodeID, size int, now time.Duration, rng *rand.Rand) Verdict {
	var out Verdict
	for _, m := range s {
		v := m.Judge(from, to, size, now, rng)
		if v.Drop {
			return Verdict{Drop: true}
		}
		out.Delay += v.Delay
	}
	return out
}

// ModelStats counts one model's verdicts inside an Engine.
type ModelStats struct {
	// Name labels the model in reports ("base-loss", "gilbert-elliott", ...).
	Name string
	// Judged counts datagrams this model ruled on.
	Judged int64
	// Drops counts drop verdicts.
	Drops int64
	// Delayed counts non-zero extra-delay verdicts; DelaySum totals them.
	Delayed  int64
	DelaySum time.Duration
}

// CapStep is one point of a capability trace: at At, the node's advertised
// upload capability becomes Factor times its base value.
type CapStep struct {
	At     time.Duration
	Factor float64
}

// CapTrace is a materialized time-varying capability trace: every node in
// Nodes walks the same Steps (relative to its own base capability). The
// substrate applies it — the simulator rewrites the uplink capacity and the
// HEAP estimator's advertised value; heapnode rewrites its advertisement.
// Silent traces touch only the real capacity and leave the advertisement
// alone (see CapTraceSpec.Silent).
type CapTrace struct {
	Nodes  []wire.NodeID
	Steps  []CapStep
	Silent bool
}

// Engine is a per-run composition of named models with verdict counters,
// plus the run's capability traces. It implements Model; build one from a
// Config, or assemble directly with NewEngine/Add for tests. The counters
// are atomic — concurrent shards judging different senders bump them
// without locks, and because counter sums are order-independent, the
// reported stats stay byte-identical at every shard count.
type Engine struct {
	models    []Model
	names     []string
	counts    []modelCounters
	capTraces []CapTrace
}

// modelCounters is one model's verdict tally, atomically updated.
type modelCounters struct {
	judged   atomic.Int64
	drops    atomic.Int64
	delayed  atomic.Int64
	delaySum atomic.Int64
}

// NewEngine returns an empty engine (every datagram delivered untouched).
func NewEngine() *Engine { return &Engine{} }

// Add appends a named model; consultation follows insertion order. Returns
// the engine for chaining.
func (e *Engine) Add(name string, m Model) *Engine {
	e.models = append(e.models, m)
	e.names = append(e.names, name)
	e.counts = append(e.counts, modelCounters{})
	return e
}

// Presize implements Presizer, forwarding to every composed model that
// keeps per-sender state (one composition level deep, matching how Build
// assembles engines).
func (e *Engine) Presize(n int) {
	for _, m := range e.models {
		presizeModel(m, n)
	}
}

func presizeModel(m Model, n int) {
	switch mm := m.(type) {
	case Presizer:
		mm.Presize(n)
	case Directional:
		presizeModel(mm.Inner, n)
	case Stack:
		for _, inner := range mm {
			presizeModel(inner, n)
		}
	}
}

// AddCapTrace appends a materialized capability trace.
func (e *Engine) AddCapTrace(t CapTrace) { e.capTraces = append(e.capTraces, t) }

// CapTraces returns the engine's capability traces for the substrate to
// apply.
func (e *Engine) CapTraces() []CapTrace { return e.capTraces }

// Judge implements Model: models are consulted in order, delays add, the
// first drop wins and short-circuits (drop verdicts discard accumulated
// delay — the datagram never arrives). Delay counters commit only for
// datagrams that actually fly, so Delayed/DelaySum agree with the
// substrate's delivered-with-delay accounting (simnet's MsgsNetemDelay)
// instead of crediting delays to datagrams a later model dropped.
func (e *Engine) Judge(from, to wire.NodeID, size int, now time.Duration, rng *rand.Rand) Verdict {
	// Per-call delay scratch on the stack: Judge runs concurrently across
	// shards, so nothing mutable may live on the engine itself. Eight slots
	// cover every profile Build can assemble; larger hand-built engines
	// spill to an allocation.
	var delayBuf [8]time.Duration
	delays := delayBuf[:0]
	var out Verdict
	for i, m := range e.models {
		c := &e.counts[i]
		c.judged.Add(1)
		v := m.Judge(from, to, size, now, rng)
		if v.Drop {
			c.drops.Add(1)
			return Verdict{Drop: true}
		}
		delays = append(delays, v.Delay)
		out.Delay += v.Delay
	}
	for i, d := range delays {
		if d > 0 {
			e.counts[i].delayed.Add(1)
			e.counts[i].delaySum.Add(int64(d))
		}
	}
	return out
}

// Stats returns a copy of the per-model counters in consultation order.
func (e *Engine) Stats() []ModelStats {
	out := make([]ModelStats, len(e.counts))
	for i := range e.counts {
		c := &e.counts[i]
		out[i] = ModelStats{
			Name:     e.names[i],
			Judged:   c.judged.Load(),
			Drops:    c.drops.Load(),
			Delayed:  c.delayed.Load(),
			DelaySum: time.Duration(c.delaySum.Load()),
		}
	}
	return out
}

var _ Model = (*Engine)(nil)
var _ Model = Bernoulli{}
var _ Model = (*GilbertElliott)(nil)
var _ Model = (*Partitions)(nil)
var _ Model = (*LatencySpikes)(nil)
var _ Model = Directional{}
var _ Model = Stack(nil)
var _ Model = FixedDelay(0)

package netem

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/wire"
)

func judgeN(t *testing.T, m Model, n int, from, to wire.NodeID, now time.Duration, seed int64) (drops, delayed int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		v := m.Judge(from, to, 1000, now, rng)
		if v.Drop {
			drops++
		}
		if v.Delay > 0 {
			delayed++
		}
	}
	return drops, delayed
}

func TestBernoulliRates(t *testing.T) {
	if d, _ := judgeN(t, Bernoulli{P: 0}, 1000, 1, 2, 0, 1); d != 0 {
		t.Fatalf("p=0 dropped %d", d)
	}
	d, _ := judgeN(t, Bernoulli{P: 0.3}, 10000, 1, 2, 0, 1)
	if d < 2500 || d > 3500 {
		t.Fatalf("p=0.3 dropped %d of 10000", d)
	}
	// P=0 must not consume rng draws: the zero-config stream is sacred.
	rng := rand.New(rand.NewSource(7))
	want := rng.Float64()
	rng = rand.New(rand.NewSource(7))
	Bernoulli{}.Judge(1, 2, 0, 0, rng)
	if got := rng.Float64(); got != want {
		t.Fatal("Bernoulli{0} consumed an rng draw")
	}
}

func TestGilbertElliottBurstsAndDeterminism(t *testing.T) {
	p := GEParams{PGoodBad: 0.05, PBadGood: 0.2, LossGood: 0, LossBad: 1}
	// Loss arrives in runs: count transitions between loss/no-loss outcomes;
	// independent loss at the same rate would alternate far more often.
	outcomes := make([]bool, 0, 20000)
	rng := rand.New(rand.NewSource(3))
	ge := NewGilbertElliott(p)
	for i := 0; i < 20000; i++ {
		outcomes = append(outcomes, ge.Judge(1, 2, 0, 0, rng).Drop)
	}
	losses, switches := 0, 0
	for i, o := range outcomes {
		if o {
			losses++
		}
		if i > 0 && o != outcomes[i-1] {
			switches++
		}
	}
	if losses == 0 {
		t.Fatal("no losses at all")
	}
	// Steady-state bad share is 0.05/0.25 = 20%; mean burst is 5 datagrams,
	// so the number of runs is far below 2*losses (independent-loss regime).
	if switches >= losses {
		t.Fatalf("loss not bursty: %d losses, %d switches", losses, switches)
	}
	// Same seed, same sender: identical verdict streams, and the receiver
	// plays no part in the chain (per-sender uplink semantics) — so memory
	// stays O(senders) even when gossip targets churn constantly.
	geA, geB := NewGilbertElliott(p), NewGilbertElliott(p)
	rngA, rngB := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		a := geA.Judge(1, wire.NodeID(2+i%50), 0, 0, rngA)
		b := geB.Judge(1, wire.NodeID(2+(i*13)%50), 0, 0, rngB)
		if a != b {
			t.Fatalf("same seed, same sender: verdicts diverge at %d", i)
		}
	}
	if len(geA.bad) != 2 {
		t.Fatalf("chain state grew to %d entries for one sender, want O(senders)", len(geA.bad))
	}
	// A forged out-of-range sender id must not grow the dense slice.
	geA.Judge(wire.NodeID(maxTrackedSender), 1, 0, 0, rngA)
	geA.Judge(-5, 1, 0, 0, rngA)
	if len(geA.bad) != 2 {
		t.Fatalf("hostile sender id grew the chain slice to %d entries", len(geA.bad))
	}
}

func TestPartitionsSplitAndHeal(t *testing.T) {
	p := NewPartitions(Partition{
		From:   10 * time.Second,
		Until:  20 * time.Second,
		Groups: [][]wire.NodeID{{3, 4}},
	})
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		from, to wire.NodeID
		at       time.Duration
		drop     bool
	}{
		{1, 3, 5 * time.Second, false},  // before the split
		{1, 3, 10 * time.Second, true},  // across the split
		{3, 1, 15 * time.Second, true},  // both directions
		{3, 4, 15 * time.Second, false}, // inside the listed group
		{1, 2, 15 * time.Second, false}, // inside the implicit group
		{1, 3, 20 * time.Second, false}, // healed (Until exclusive)
	}
	for _, c := range cases {
		if got := p.Judge(c.from, c.to, 0, c.at, rng).Drop; got != c.drop {
			t.Errorf("%d->%d at %v: drop=%v, want %v", c.from, c.to, c.at, got, c.drop)
		}
	}
}

func TestLatencySpikesRamp(t *testing.T) {
	l := NewLatencySpikes(Spike{
		At: 10 * time.Second, Duration: 10 * time.Second,
		Extra: 400 * time.Millisecond, Ramp: 2 * time.Second,
	})
	rng := rand.New(rand.NewSource(1))
	at := func(d time.Duration) time.Duration { return l.Judge(1, 2, 0, d, rng).Delay }
	if v := at(9 * time.Second); v != 0 {
		t.Fatalf("before spike: %v", v)
	}
	if v := at(11 * time.Second); v != 200*time.Millisecond {
		t.Fatalf("mid ramp-in: %v, want 200ms", v)
	}
	if v := at(15 * time.Second); v != 400*time.Millisecond {
		t.Fatalf("plateau: %v, want 400ms", v)
	}
	if v := at(19 * time.Second); v != 200*time.Millisecond {
		t.Fatalf("mid ramp-out: %v, want 200ms", v)
	}
	if v := at(20 * time.Second); v != 0 {
		t.Fatalf("after spike: %v", v)
	}
}

func TestDirectionalScopes(t *testing.T) {
	inner := FixedDelay(time.Millisecond)
	d := Directional{Inner: inner, To: NewNodeSet(5)}
	rng := rand.New(rand.NewSource(1))
	if v := d.Judge(1, 5, 0, 0, rng); v.Delay != time.Millisecond {
		t.Fatalf("to degraded node: %+v", v)
	}
	if v := d.Judge(5, 1, 0, 0, rng); v.Delay != 0 {
		t.Fatalf("from degraded node must be untouched: %+v", v)
	}
	tx := Directional{Inner: inner, From: NewNodeSet(5)}
	if v := tx.Judge(5, 1, 0, 0, rng); v.Delay != time.Millisecond {
		t.Fatalf("tx direction: %+v", v)
	}
	// Out-of-scope judging must not consume the inner model's rng draws.
	loss := Directional{Inner: Bernoulli{P: 0.5}, To: NewNodeSet(5)}
	r1 := rand.New(rand.NewSource(4))
	want := r1.Float64()
	r2 := rand.New(rand.NewSource(4))
	loss.Judge(1, 2, 0, 0, r2)
	if got := r2.Float64(); got != want {
		t.Fatal("out-of-scope Directional consumed rng draws")
	}
}

func TestEngineCountersAndShortCircuit(t *testing.T) {
	e := NewEngine().
		Add("drop-all", Bernoulli{P: 0.999999999}).
		Add("delay", FixedDelay(time.Millisecond))
	rng := rand.New(rand.NewSource(1))
	v := e.Judge(1, 2, 100, 0, rng)
	if !v.Drop || v.Delay != 0 {
		t.Fatalf("verdict %+v, want pure drop", v)
	}
	st := e.Stats()
	if st[0].Drops != 1 || st[0].Judged != 1 {
		t.Fatalf("first model stats %+v", st[0])
	}
	if st[1].Judged != 0 {
		t.Fatalf("second model consulted after a drop: %+v", st[1])
	}

	e2 := NewEngine().
		Add("a", FixedDelay(time.Millisecond)).
		Add("b", FixedDelay(2*time.Millisecond))
	v = e2.Judge(1, 2, 100, 0, rng)
	if v.Drop || v.Delay != 3*time.Millisecond {
		t.Fatalf("delays must add: %+v", v)
	}
	st = e2.Stats()
	if st[0].Delayed != 1 || st[1].DelaySum != 2*time.Millisecond {
		t.Fatalf("delay counters wrong: %+v", st)
	}

	// A delay verdict followed by a drop must not be counted as a delayed
	// delivery: the datagram never flew, and the per-model counters must
	// agree with the substrate's delivered-with-delay accounting.
	e3 := NewEngine().
		Add("delay", FixedDelay(time.Millisecond)).
		Add("drop-all", Bernoulli{P: 0.999999999})
	if v := e3.Judge(1, 2, 100, 0, rng); !v.Drop {
		t.Fatalf("verdict %+v, want drop", v)
	}
	st = e3.Stats()
	if st[0].Delayed != 0 || st[0].DelaySum != 0 {
		t.Fatalf("dropped datagram credited with delay: %+v", st[0])
	}
	if st[1].Drops != 1 {
		t.Fatalf("drop not counted: %+v", st[1])
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Bernoulli: 1.5},
		{GE: &GEParams{PGoodBad: -1}},
		{Partitions: []PartitionSpec{{From: 5 * time.Second, Until: 2 * time.Second, SplitFractions: []float64{0.5}}}},
		{Partitions: []PartitionSpec{{From: 1, Until: 2}}}, // neither Groups nor fractions
		{Partitions: []PartitionSpec{{From: 1, Until: 2, SplitFractions: []float64{0.7, 0.7}}}},
		{Spikes: []Spike{{At: time.Second, Duration: 0, Extra: time.Millisecond}}},
		{Asym: &AsymSpec{Fraction: 0.2}},                                                                                 // no effect
		{Asym: &AsymSpec{RxLoss: 0.1}},                                                                                   // no nodes
		{CapTraces: []CapTraceSpec{{Fraction: 0.2}}},                                                                     // no steps
		{CapTraces: []CapTraceSpec{{Fraction: 0.2, Steps: []CapStep{{}}}}},                                               // zero factor
		{CapTraces: []CapTraceSpec{{Nodes: []wire.NodeID{1}, Steps: []CapStep{{At: 2, Factor: 1}, {At: 1, Factor: 1}}}}}, // unsorted
		{Partitions: []PartitionSpec{{From: 1, Until: 2, Groups: [][]wire.NodeID{{-1}}}}},                                // negative id
		{Partitions: []PartitionSpec{{From: 1, Until: 2, Groups: [][]wire.NodeID{{1 << 30}}}}},                           // absurd id (would size a dense slice)
		{Asym: &AsymSpec{Nodes: []wire.NodeID{1 << 30}, RxLoss: 0.1}},                                                    // absurd id
		{CapTraces: []CapTraceSpec{{Nodes: []wire.NodeID{-2}, Steps: []CapStep{{At: 1, Factor: 1}}}}},                    // negative id
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	for _, name := range ProfileNames() {
		p, err := Profile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("stock profile %s invalid: %v", name, err)
		}
	}
	if _, err := Profile("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestBuildDeterministicMaterialization(t *testing.T) {
	cfg := Config{
		Partitions: []PartitionSpec{{From: time.Second, Until: 2 * time.Second, SplitFractions: []float64{0.3}}},
		Asym:       &AsymSpec{Fraction: 0.25, RxLoss: 0.1},
		CapTraces:  []CapTraceSpec{{Fraction: 0.4, Steps: []CapStep{{At: time.Second, Factor: 0.5}}}},
	}
	a := cfg.MustBuild(100, 42, 0.001)
	b := cfg.MustBuild(100, 42, 0.001)
	// Same (config, n, seed): identical node selections...
	ta, tb := a.CapTraces(), b.CapTraces()
	if len(ta) != 1 || len(tb) != 1 {
		t.Fatalf("cap traces: %d / %d", len(ta), len(tb))
	}
	if len(ta[0].Nodes) != 40 {
		t.Fatalf("picked %d nodes, want 40", len(ta[0].Nodes))
	}
	for i := range ta[0].Nodes {
		if ta[0].Nodes[i] != tb[0].Nodes[i] {
			t.Fatal("materialization not deterministic")
		}
		if ta[0].Nodes[i] == 0 {
			t.Fatal("fraction-based selection picked node 0 (the source)")
		}
	}
	// ...and identical verdict streams.
	rngA, rngB := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		from, to := wire.NodeID(i%100), wire.NodeID((i*7)%100)
		va := a.Judge(from, to, 1000, time.Duration(i)*time.Millisecond, rngA)
		vb := b.Judge(from, to, 1000, time.Duration(i)*time.Millisecond, rngB)
		if va != vb {
			t.Fatalf("verdicts diverge at %d: %+v vs %+v", i, va, vb)
		}
	}
	// Tiny deployments must not round fraction-based selections to nothing:
	// every stock profile has to materialize a real effect even at n=2.
	tiny := Config{
		Partitions: []PartitionSpec{{From: time.Second, Until: 2 * time.Second, SplitFractions: []float64{0.25}}},
		CapTraces:  []CapTraceSpec{{Fraction: 0.3, Steps: []CapStep{{At: time.Second, Factor: 0.5}}}},
	}
	te := tiny.MustBuild(2, 1, 0)
	if got := len(te.CapTraces()[0].Nodes); got != 1 {
		t.Fatalf("fraction 0.3 of a 1-node pool picked %d nodes, want 1", got)
	}
	rngT := rand.New(rand.NewSource(1))
	if v := te.Judge(0, 1, 100, 1500*time.Millisecond, rngT); !v.Drop {
		t.Fatal("25% split of a 2-node system materialized no partition")
	}

	// A different seed picks different nodes (or the rng is not wired in).
	c := cfg.MustBuild(100, 43, 0.001)
	same := true
	for i, id := range c.CapTraces()[0].Nodes {
		if ta[0].Nodes[i] != id {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds picked identical node sets")
	}
}

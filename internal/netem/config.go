package netem

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/wire"
)

// Config is a declarative, data-only description of adverse network
// conditions. It travels through scenario configs, sweep variants, and
// command-line flags as plain data; Build materializes the per-run state
// (rng-chosen node sets, Gilbert-Elliott chains, counters) into an Engine.
// Fraction-based specs choose among nodes 1..n-1 (Build), or among the
// actual deployment ids (BuildForNodes) — node 0, by the repo-wide
// convention the stream source, is never selected implicitly; list it in an
// explicit node slice to include it.
type Config struct {
	// Name labels the profile in reports and cell keys.
	Name string

	// Bernoulli is extra independent per-datagram loss in [0,1), on top of
	// the substrate's base loss rate.
	Bernoulli float64

	// GE enables Gilbert-Elliott bursty loss.
	GE *GEParams

	// Partitions schedules node-set splits with heal.
	Partitions []PartitionSpec

	// Spikes schedules extra-latency windows (spike and drift events).
	Spikes []Spike

	// RegionSpikes schedules extra-latency windows that hit only datagrams
	// crossing a topology-region boundary — a degrading WAN link, while
	// intra-cluster traffic stays clean. Requires a region-resolving build
	// (BuildWithRegions; scenario supplies it when Config.Topology is set).
	RegionSpikes []RegionSpike

	// Asym degrades a set of nodes asymmetrically, per traffic direction.
	Asym *AsymSpec

	// CapTraces rewrite advertised upload capabilities mid-run.
	CapTraces []CapTraceSpec
}

// PartitionSpec describes one scheduled partition. Exactly one of Groups
// (explicit node sets), SplitFractions (random sets materialized at Build),
// or Regions (topology-cluster sets, resolved by a region-resolving build)
// must be set: SplitFractions lists the size of each rng-chosen group as a
// fraction of the system; the remainder forms the implicit last group. Each
// Regions entry lists the cluster indices forming one group, so the
// partition falls along a real topology cut instead of a random node set.
type PartitionSpec struct {
	From, Until    time.Duration
	Groups         [][]wire.NodeID
	SplitFractions []float64
	Regions        [][]int
}

// RegionSpike scopes one latency spike to the boundary of a region set: the
// extra delay applies exactly when one endpoint's cluster is in Regions and
// the other's is not.
type RegionSpike struct {
	Spike   Spike
	Regions []int
}

// AsymSpec degrades the listed nodes (or an rng-chosen Fraction of the
// system) per direction: Rx* applies to datagrams they receive, Tx* to
// datagrams they send. Zero-valued knobs are inactive.
type AsymSpec struct {
	Nodes    []wire.NodeID
	Fraction float64
	RxLoss   float64
	TxLoss   float64
	RxDelay  time.Duration
	TxDelay  time.Duration
}

// CapTraceSpec describes one capability trace applied to the listed nodes
// (or an rng-chosen Fraction of the system). Steps must be sorted by At and
// carry positive factors; a final Factor of 1 models recovery. A Silent
// trace rewrites only the node's *real* capacity, not its advertised
// capability: the node keeps claiming full capability while delivering a
// fraction of it — the unnoticed-degradation regime whose discovery is the
// adaptation layer's job (internal/adapt). Non-silent traces model a node
// that re-measures and honestly re-advertises.
type CapTraceSpec struct {
	Nodes    []wire.NodeID
	Fraction float64
	Steps    []CapStep
	Silent   bool
}

// Validate checks the whole description without materializing it.
func (c *Config) Validate() error {
	// Explicit node ids must be sane before Build turns them into dense
	// membership slices: a negative id would panic mid-Build, and an absurd
	// id would size a slice from a config field's say-so.
	checkIDs := func(what string, ids []wire.NodeID) error {
		for _, id := range ids {
			if id < 0 || id >= maxTrackedSender {
				return fmt.Errorf("netem: %s lists node id %d outside [0, %d)", what, id, maxTrackedSender)
			}
		}
		return nil
	}
	if c.Bernoulli < 0 || c.Bernoulli >= 1 {
		return fmt.Errorf("netem: bernoulli loss %v outside [0,1)", c.Bernoulli)
	}
	if c.GE != nil {
		if err := c.GE.Validate(); err != nil {
			return err
		}
	}
	for i, p := range c.Partitions {
		if p.Until <= p.From || p.From < 0 {
			return fmt.Errorf("netem: partition %d window [%v,%v) is empty or negative", i, p.From, p.Until)
		}
		set := 0
		for _, present := range []bool{len(p.Groups) > 0, len(p.SplitFractions) > 0, len(p.Regions) > 0} {
			if present {
				set++
			}
		}
		if set != 1 {
			return fmt.Errorf("netem: partition %d needs exactly one of Groups, SplitFractions, or Regions", i)
		}
		for j, g := range p.Regions {
			if len(g) == 0 {
				return fmt.Errorf("netem: partition %d region group %d is empty", i, j)
			}
			for _, r := range g {
				if r < 0 {
					return fmt.Errorf("netem: partition %d lists negative region %d", i, r)
				}
			}
		}
		for _, g := range p.Groups {
			if err := checkIDs(fmt.Sprintf("partition %d", i), g); err != nil {
				return err
			}
		}
		var sum float64
		for _, f := range p.SplitFractions {
			if f <= 0 || f >= 1 {
				return fmt.Errorf("netem: partition %d split fraction %v outside (0,1)", i, f)
			}
			sum += f
		}
		if sum >= 1 {
			return fmt.Errorf("netem: partition %d split fractions sum to %v, want < 1 (the remainder is the implicit group)", i, sum)
		}
	}
	for i, s := range c.Spikes {
		if s.At < 0 || s.Duration <= 0 || s.Extra < 0 || s.Ramp < 0 {
			return fmt.Errorf("netem: spike %d has a non-positive window or negative parameters", i)
		}
	}
	for i, rs := range c.RegionSpikes {
		s := rs.Spike
		if s.At < 0 || s.Duration <= 0 || s.Extra < 0 || s.Ramp < 0 {
			return fmt.Errorf("netem: region spike %d has a non-positive window or negative parameters", i)
		}
		if len(rs.Regions) == 0 {
			return fmt.Errorf("netem: region spike %d lists no regions", i)
		}
		for _, r := range rs.Regions {
			if r < 0 {
				return fmt.Errorf("netem: region spike %d lists negative region %d", i, r)
			}
		}
	}
	if a := c.Asym; a != nil {
		if a.Fraction < 0 || a.Fraction >= 1 {
			return fmt.Errorf("netem: asym fraction %v outside [0,1)", a.Fraction)
		}
		if a.RxLoss < 0 || a.RxLoss >= 1 || a.TxLoss < 0 || a.TxLoss >= 1 {
			return fmt.Errorf("netem: asym loss outside [0,1)")
		}
		if a.RxDelay < 0 || a.TxDelay < 0 {
			return fmt.Errorf("netem: negative asym delay")
		}
		if len(a.Nodes) == 0 && a.Fraction == 0 {
			return fmt.Errorf("netem: asym spec selects no nodes")
		}
		if err := checkIDs("asym spec", a.Nodes); err != nil {
			return err
		}
		if a.RxLoss == 0 && a.TxLoss == 0 && a.RxDelay == 0 && a.TxDelay == 0 {
			return fmt.Errorf("netem: asym spec has no effect")
		}
	}
	for i, tr := range c.CapTraces {
		if tr.Fraction < 0 || tr.Fraction >= 1 {
			return fmt.Errorf("netem: cap trace %d fraction %v outside [0,1)", i, tr.Fraction)
		}
		if len(tr.Nodes) == 0 && tr.Fraction == 0 {
			return fmt.Errorf("netem: cap trace %d selects no nodes", i)
		}
		if len(tr.Steps) == 0 {
			return fmt.Errorf("netem: cap trace %d has no steps", i)
		}
		if err := checkIDs(fmt.Sprintf("cap trace %d", i), tr.Nodes); err != nil {
			return err
		}
		var prev time.Duration
		for j, st := range tr.Steps {
			if st.At < prev {
				return fmt.Errorf("netem: cap trace %d steps not sorted by time", i)
			}
			if st.Factor <= 0 {
				return fmt.Errorf("netem: cap trace %d step %d factor %v must be positive", i, j, st.Factor)
			}
			prev = st.At
		}
	}
	return nil
}

// Build materializes the description for a system of n nodes into an Engine.
// The substrate's base independent loss is consulted first (as model
// "base-loss", preserving the rng draw order of the plain loss-rate path),
// then the adverse models in a fixed order. Node-set materialization draws
// from an rng derived from seed, so identical (Config, n, seed) build
// identical engines — the property that keeps sweeps worker-count
// independent and same-seed runs byte-identical.
func (c *Config) Build(n int, seed int64, baseLoss float64) (*Engine, error) {
	pool := make([]wire.NodeID, 0, n)
	for id := 1; id < n; id++ {
		pool = append(pool, wire.NodeID(id))
	}
	return c.buildPool(pool, seed, baseLoss, nil)
}

// BuildWithRegions is Build for runs embedded in a clustered topology:
// regionOf maps each node to its cluster index (topo.Topology.ClusterOf),
// letting region-targeted specs (PartitionSpec.Regions, RegionSpikes)
// resolve to concrete node sets along the topology's real cuts. Unlike
// fraction-based picks, region resolution includes node 0 — a cut isolates
// whatever region the source lives in too.
func (c *Config) BuildWithRegions(n int, seed int64, baseLoss float64, regionOf func(wire.NodeID) int) (*Engine, error) {
	if regionOf == nil {
		return nil, fmt.Errorf("netem: BuildWithRegions needs a region resolver")
	}
	pool := make([]wire.NodeID, 0, n)
	for id := 1; id < n; id++ {
		pool = append(pool, wire.NodeID(id))
	}
	return c.buildPool(pool, seed, baseLoss, regionOf)
}

// usesRegions reports whether any spec needs a region resolver.
func (c *Config) usesRegions() bool {
	if len(c.RegionSpikes) > 0 {
		return true
	}
	for _, p := range c.Partitions {
		if len(p.Regions) > 0 {
			return true
		}
	}
	return false
}

// regionMembers resolves a cluster-index set to the node ids in it, scanning
// the pool plus node 0 (the source convention excludes 0 only from random
// picks, not from topology cuts).
func regionMembers(pool []wire.NodeID, regionOf func(wire.NodeID) int, regions []int) []wire.NodeID {
	want := make(map[int]bool, len(regions))
	for _, r := range regions {
		want[r] = true
	}
	var out []wire.NodeID
	if want[regionOf(0)] {
		out = append(out, 0)
	}
	for _, id := range pool {
		if id != 0 && want[regionOf(id)] {
			out = append(out, id)
		}
	}
	return out
}

// BuildForNodes is Build for deployments whose node ids are not dense
// 0..n-1 (real peers files may use any ids): fraction-based specs
// materialize over the given id list instead, minus id 0 when present (the
// source convention). Every node of a deployment must pass the same id set
// and seed — order does not matter, ids are sorted — to materialize
// identical partitions and traces.
func (c *Config) BuildForNodes(ids []wire.NodeID, seed int64, baseLoss float64) (*Engine, error) {
	pool := make([]wire.NodeID, 0, len(ids))
	for _, id := range ids {
		if id > 0 {
			pool = append(pool, id)
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	return c.buildPool(pool, seed, baseLoss, nil)
}

// buildPool does the materialization over the candidate pool for
// fraction-based node selections; regionOf (nil outside BuildWithRegions)
// resolves region-targeted specs.
func (c *Config) buildPool(pool []wire.NodeID, seed int64, baseLoss float64, regionOf func(wire.NodeID) int) (*Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.usesRegions() && regionOf == nil {
		return nil, fmt.Errorf("netem: config %q targets topology regions; build it with a topology (scenario: set Config.Topology)", c.Name)
	}
	if baseLoss < 0 || baseLoss >= 1 {
		return nil, fmt.Errorf("netem: base loss %v outside [0,1)", baseLoss)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x6e65746d)) // "netm"
	e := NewEngine()
	e.Add("base-loss", Bernoulli{P: baseLoss})
	if c.Bernoulli > 0 {
		e.Add("bernoulli", Bernoulli{P: c.Bernoulli})
	}
	if c.GE != nil {
		ge := NewGilbertElliott(*c.GE)
		ge.Presize(len(pool) + 1) // chains ready before any parallel Judge
		e.Add("gilbert-elliott", ge)
	}
	if len(c.Partitions) > 0 {
		parts := make([]Partition, 0, len(c.Partitions))
		for _, spec := range c.Partitions {
			groups := spec.Groups
			if len(groups) == 0 && len(spec.Regions) > 0 {
				groups = make([][]wire.NodeID, 0, len(spec.Regions))
				for _, rg := range spec.Regions {
					groups = append(groups, regionMembers(pool, regionOf, rg))
				}
			}
			if len(groups) == 0 {
				groups = splitGroups(rng, pool, spec.SplitFractions)
			}
			parts = append(parts, Partition{From: spec.From, Until: spec.Until, Groups: groups})
		}
		e.Add("partition", NewPartitions(parts...))
	}
	if len(c.Spikes) > 0 {
		e.Add("spike", NewLatencySpikes(c.Spikes...))
	}
	for i, rs := range c.RegionSpikes {
		set := NewNodeSet(regionMembers(pool, regionOf, rs.Regions)...)
		e.Add(fmt.Sprintf("region-spike-%d", i), Boundary{Inner: NewLatencySpikes(rs.Spike), Set: set})
	}
	if a := c.Asym; a != nil {
		set := NewNodeSet(pickNodes(rng, pool, a.Nodes, a.Fraction)...)
		if a.RxLoss > 0 || a.RxDelay > 0 {
			e.Add("asym-rx", Directional{Inner: lossDelay(a.RxLoss, a.RxDelay), To: set})
		}
		if a.TxLoss > 0 || a.TxDelay > 0 {
			e.Add("asym-tx", Directional{Inner: lossDelay(a.TxLoss, a.TxDelay), From: set})
		}
	}
	for _, spec := range c.CapTraces {
		steps := make([]CapStep, len(spec.Steps))
		copy(steps, spec.Steps)
		e.AddCapTrace(CapTrace{
			Nodes:  pickNodes(rng, pool, spec.Nodes, spec.Fraction),
			Steps:  steps,
			Silent: spec.Silent,
		})
	}
	return e, nil
}

// MustBuild is Build for static configs known to be valid (profiles, tests).
func (c *Config) MustBuild(n int, seed int64, baseLoss float64) *Engine {
	e, err := c.Build(n, seed, baseLoss)
	if err != nil {
		panic(err.Error())
	}
	return e
}

// lossDelay composes a one-direction degradation from its active parts.
func lossDelay(loss float64, delay time.Duration) Model {
	var s Stack
	if loss > 0 {
		s = append(s, Bernoulli{P: loss})
	}
	if delay > 0 {
		s = append(s, FixedDelay(delay))
	}
	return s
}

// fractionCount turns a positive fraction of a pool into a node count,
// never rounding below one: on a tiny deployment a 25% split must still
// partition somebody, not silently materialize an empty set.
func fractionCount(fraction float64, pool int) int {
	k := int(math.Round(fraction * float64(pool)))
	if k == 0 && fraction > 0 && pool > 0 {
		k = 1
	}
	if k > pool {
		k = pool
	}
	return k
}

// pickNodes resolves a node selection: the explicit list if given, otherwise
// a uniformly chosen fraction of the candidate pool in ascending id order.
func pickNodes(rng *rand.Rand, pool []wire.NodeID, explicit []wire.NodeID, fraction float64) []wire.NodeID {
	if len(explicit) > 0 {
		out := make([]wire.NodeID, len(explicit))
		copy(out, explicit)
		return out
	}
	if len(pool) == 0 {
		return nil
	}
	perm := rng.Perm(len(pool))
	k := fractionCount(fraction, len(pool))
	out := make([]wire.NodeID, 0, k)
	for _, p := range perm[:k] {
		out = append(out, pool[p])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// splitGroups materializes SplitFractions into explicit groups over the
// candidate pool; the unassigned remainder (node 0 included) stays in the
// implicit group.
func splitGroups(rng *rand.Rand, pool []wire.NodeID, fractions []float64) [][]wire.NodeID {
	if len(pool) == 0 {
		return [][]wire.NodeID{nil}
	}
	perm := rng.Perm(len(pool))
	groups := make([][]wire.NodeID, 0, len(fractions))
	next := 0
	for _, f := range fractions {
		k := fractionCount(f, len(pool))
		if k > len(perm)-next {
			k = len(perm) - next
		}
		g := make([]wire.NodeID, 0, k)
		for _, p := range perm[next : next+k] {
			g = append(g, pool[p])
		}
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		groups = append(groups, g)
		next += k
	}
	return groups
}

package netem

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// regionMod maps node id -> id % m, standing in for a topology's ClusterOf.
func regionMod(m int) func(wire.NodeID) int {
	return func(id wire.NodeID) int { return int(id) % m }
}

func TestBoundaryModel(t *testing.T) {
	b := Boundary{Inner: FixedDelay(5 * time.Millisecond), Set: NewNodeSet(1, 3)}
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		from, to wire.NodeID
		want     time.Duration
	}{
		{1, 3, 0},                    // both inside: no crossing
		{2, 4, 0},                    // both outside: no crossing
		{1, 2, 5 * time.Millisecond}, // egress crossing
		{4, 3, 5 * time.Millisecond}, // ingress crossing
	}
	for _, tc := range cases {
		got := b.Judge(tc.from, tc.to, 100, 0, rng)
		if got.Delay != tc.want || got.Drop {
			t.Fatalf("Boundary %d->%d: %+v, want delay %v", tc.from, tc.to, got, tc.want)
		}
	}
}

// TestRegionPartitionBuild checks that a Regions partition materializes the
// cluster's actual members (including node 0) and blocks cross-cut traffic
// during its window.
func TestRegionPartitionBuild(t *testing.T) {
	cfg := Config{Partitions: []PartitionSpec{{
		From: time.Second, Until: 2 * time.Second,
		Regions: [][]int{{0}}, // cluster 0 = ids {0, 3, 6, 9} under mod 3
	}}}
	eng, err := cfg.BuildWithRegions(10, 7, 0, regionMod(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	judge := func(from, to wire.NodeID, now time.Duration) bool {
		return eng.Judge(from, to, 100, now, rng).Drop
	}
	mid := 1500 * time.Millisecond
	if !judge(0, 1, mid) || !judge(1, 9, mid) {
		t.Fatal("cross-cut datagram survived an active region partition")
	}
	if judge(0, 3, mid) || judge(1, 2, mid) {
		t.Fatal("same-side datagram dropped by region partition")
	}
	if judge(0, 1, 500*time.Millisecond) || judge(0, 1, 2500*time.Millisecond) {
		t.Fatal("region partition active outside its window")
	}
}

// TestRegionSpikeBuild checks that a region spike delays only boundary
// crossings of the listed clusters during its window.
func TestRegionSpikeBuild(t *testing.T) {
	cfg := Config{RegionSpikes: []RegionSpike{{
		Spike:   Spike{At: time.Second, Duration: time.Second, Extra: 40 * time.Millisecond},
		Regions: []int{1}, // cluster 1 = ids {1, 3} under mod 2
	}}}
	eng, err := cfg.BuildWithRegions(4, 7, 0, regionMod(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	delay := func(from, to wire.NodeID, now time.Duration) time.Duration {
		return eng.Judge(from, to, 100, now, rng).Delay
	}
	mid := 1500 * time.Millisecond
	if d := delay(1, 0, mid); d != 40*time.Millisecond {
		t.Fatalf("boundary crossing delayed %v, want 40ms", d)
	}
	if d := delay(2, 1, mid); d != 40*time.Millisecond {
		t.Fatalf("reverse crossing delayed %v, want 40ms", d)
	}
	if d := delay(1, 3, mid); d != 0 {
		t.Fatalf("intra-region datagram delayed %v", d)
	}
	if d := delay(0, 2, mid); d != 0 {
		t.Fatalf("outside-region datagram delayed %v", d)
	}
	if d := delay(1, 0, 100*time.Millisecond); d != 0 {
		t.Fatalf("spike active outside its window: %v", d)
	}
}

// TestRegionSpecsNeedResolver pins the error path: region-targeted configs
// must refuse a plain Build instead of silently ignoring the specs.
func TestRegionSpecsNeedResolver(t *testing.T) {
	cfgs := []Config{
		{Partitions: []PartitionSpec{{From: 0, Until: time.Second, Regions: [][]int{{0}}}}},
		{RegionSpikes: []RegionSpike{{Spike: Spike{Duration: time.Second, Extra: time.Millisecond}, Regions: []int{0}}}},
	}
	for i, cfg := range cfgs {
		if _, err := cfg.Build(10, 1, 0); err == nil || !strings.Contains(err.Error(), "topology") {
			t.Fatalf("config %d: plain Build of region spec did not fail usefully: %v", i, err)
		}
		if _, err := cfg.BuildWithRegions(10, 1, 0, nil); err == nil {
			t.Fatalf("config %d: nil resolver accepted", i)
		}
		if _, err := cfg.BuildWithRegions(10, 1, 0, regionMod(2)); err != nil {
			t.Fatalf("config %d: resolver build failed: %v", i, err)
		}
	}
}

func TestRegionValidation(t *testing.T) {
	bad := []Config{
		{Partitions: []PartitionSpec{{From: 0, Until: time.Second}}},                                                        // no selector
		{Partitions: []PartitionSpec{{From: 0, Until: time.Second, Regions: [][]int{{0}}, SplitFractions: []float64{0.5}}}}, // two selectors
		{Partitions: []PartitionSpec{{From: 0, Until: time.Second, Regions: [][]int{{}}}}},                                  // empty group
		{Partitions: []PartitionSpec{{From: 0, Until: time.Second, Regions: [][]int{{-1}}}}},                                // negative region
		{RegionSpikes: []RegionSpike{{Spike: Spike{Duration: time.Second}, Regions: nil}}},                                  // no regions
		{RegionSpikes: []RegionSpike{{Spike: Spike{Duration: time.Second, Extra: time.Millisecond}, Regions: []int{-2}}}},   // negative region
		{RegionSpikes: []RegionSpike{{Spike: Spike{Duration: 0, Extra: time.Millisecond}, Regions: []int{0}}}},              // empty window
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/aggregation"
	"repro/internal/env"
	"repro/internal/metrics"
	"repro/internal/misbehave"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// This file wires internal/misbehave into the scenario layer: adversarial
// node classes materialized deterministically from the run seed (like netem
// node sets), per-node detectors on the honest cohort, detection statistics,
// and the observer-coalition source-anonymity probe.

// AdversarySpec configures adversarial node classes and the misbehavior
// detector for a run. Adversaries are drawn deterministically from the run
// seed out of the non-source population; the three classes are disjoint.
// Class semantics live in internal/misbehave (freeriders drop inbound
// Requests, droppers drop inbound Proposes, liars over-advertise to the
// aggregation protocol). Distinct from the legacy Config.FreeriderFraction
// knob, which under-advertises while behaving honestly — these adversaries
// advertise honestly (or over-advertise) and misbehave; where the node sets
// overlap, the adversary's advertisement wins.
type AdversarySpec struct {
	// FreeriderFraction of non-source nodes consume without serving.
	FreeriderFraction float64
	// LiarFraction of non-source nodes advertise LiarFactor times their
	// real capability. Requires the HEAP protocol (standard gossip ignores
	// advertisements entirely).
	LiarFraction float64
	// DropperFraction of non-source nodes swallow inbound proposals.
	DropperFraction float64
	// Intensity is the fraction of targeted messages actually dropped by
	// freeriders and droppers (partial misbehavior hides better).
	// Default 1.
	Intensity float64
	// LiarFactor is the liars' advertisement multiplier. Default 4.
	LiarFactor float64
	// Onset delays all misbehavior: before it, every adversary is honest
	// (sleeper adversaries, the harder detection case). Default 0.
	Onset time.Duration
	// Detect arms the misbehavior detector on every honest non-source node
	// with the given thresholds (the zero misbehave.Config selects the
	// stock policy; Armed is implied). Nil leaves detectors in observe-only
	// mode: evidence and first receipts are still collected — the anonymity
	// probe and evidence dumps work — but no verdicts are issued and the
	// protocol runs untouched. This is the detector-off arm of A/B studies.
	Detect *misbehave.Config
	// DetectQuorum is the fraction of honest detectors that must quarantine
	// a node before it counts as detected in AdversaryStats (a single
	// detector's verdict is per-pair noise; system-level detection is a
	// quorum property). Default 0.1.
	DetectQuorum float64
	// CoalitionSizes are the observer-coalition sizes probed by the
	// source-anonymity estimator. Default 1, 2, 4, 8, 16, 32 (clipped to
	// the honest population).
	CoalitionSizes []int
	// CoalitionTrials is how many random coalitions are drawn per size.
	// Default 64.
	CoalitionTrials int
}

// withDefaults returns a copy with every zero knob filled in.
func (a AdversarySpec) withDefaults() AdversarySpec {
	if a.Intensity == 0 {
		a.Intensity = 1
	}
	if a.LiarFactor == 0 {
		a.LiarFactor = 4
	}
	if a.DetectQuorum == 0 {
		a.DetectQuorum = 0.1
	}
	if len(a.CoalitionSizes) == 0 {
		a.CoalitionSizes = []int{1, 2, 4, 8, 16, 32}
	}
	if a.CoalitionTrials == 0 {
		a.CoalitionTrials = 64
	}
	return a
}

// validateAdversary checks Config.Adversary; called from applyDefaults.
func (c *Config) validateAdversary() error {
	a := c.Adversary
	if a == nil {
		return nil
	}
	if c.Protocol == StaticTree {
		return fmt.Errorf("scenario: adversarial nodes require a gossip protocol (the static tree has no contribution evidence to collect)")
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"freerider", a.FreeriderFraction},
		{"liar", a.LiarFraction},
		{"dropper", a.DropperFraction},
	} {
		if f.v < 0 || f.v >= 1 {
			return fmt.Errorf("scenario: adversary %s fraction %v outside [0,1)", f.name, f.v)
		}
	}
	if sum := a.FreeriderFraction + a.LiarFraction + a.DropperFraction; sum >= 1 {
		return fmt.Errorf("scenario: adversary fractions sum to %v; the honest cohort must not be empty", sum)
	}
	if a.LiarFraction > 0 && c.Protocol != HEAP {
		return fmt.Errorf("scenario: capability liars require the HEAP protocol (standard gossip ignores advertisements)")
	}
	if a.Intensity < 0 || a.Intensity > 1 {
		return fmt.Errorf("scenario: adversary intensity %v outside [0,1]", a.Intensity)
	}
	if a.LiarFactor < 0 || (a.LiarFactor > 0 && a.LiarFactor <= 1) {
		return fmt.Errorf("scenario: liar factor %v must exceed 1 (or 0 for the default)", a.LiarFactor)
	}
	if a.Onset < 0 {
		return fmt.Errorf("scenario: adversary onset %v must not be negative", a.Onset)
	}
	if a.DetectQuorum < 0 || a.DetectQuorum > 1 {
		return fmt.Errorf("scenario: detect quorum %v outside [0,1]", a.DetectQuorum)
	}
	if a.CoalitionTrials < 0 {
		return fmt.Errorf("scenario: negative coalition trials")
	}
	for _, s := range a.CoalitionSizes {
		if s < 1 {
			return fmt.Errorf("scenario: coalition size %d must be at least 1", s)
		}
	}
	if a.Detect != nil {
		if err := a.Detect.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// adversaryState is one run's materialized adversary assignment plus the
// per-node detectors and interceptors built alongside the nodes.
type adversaryState struct {
	spec  AdversarySpec
	class []misbehave.Class // dense by node id; ClassHonest for the rest

	freeriders, liars, droppers []wire.NodeID

	detectors    []*misbehave.Detector    // honest non-source nodes
	interceptors []*misbehave.Interceptor // freeriders and droppers
}

// newAdversaryState draws the adversary node sets from the run seed — one
// permutation of the non-source population, split into disjoint class
// prefixes, each sorted ascending — mirroring how netem materializes its
// node sets. Returns nil when the config has no adversary.
func newAdversaryState(cfg *Config, total int, sourceNode []bool) *adversaryState {
	if cfg.Adversary == nil {
		return nil
	}
	a := &adversaryState{
		spec:         cfg.Adversary.withDefaults(),
		class:        make([]misbehave.Class, total),
		detectors:    make([]*misbehave.Detector, total),
		interceptors: make([]*misbehave.Interceptor, total),
	}
	pool := make([]wire.NodeID, 0, total)
	for i := 0; i < total; i++ {
		if !sourceNode[i] {
			pool = append(pool, wire.NodeID(i))
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x61647672))
	perm := rng.Perm(len(pool))
	next := 0
	take := func(fraction float64, class misbehave.Class) []wire.NodeID {
		n := advFractionCount(fraction, len(pool))
		if n > len(pool)-next {
			n = len(pool) - next
		}
		if n == 0 {
			return nil
		}
		out := make([]wire.NodeID, 0, n)
		for _, pi := range perm[next : next+n] {
			id := pool[pi]
			a.class[id] = class
			out = append(out, id)
		}
		next += n
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	a.freeriders = take(a.spec.FreeriderFraction, misbehave.ClassFreerider)
	a.liars = take(a.spec.LiarFraction, misbehave.ClassLiar)
	a.droppers = take(a.spec.DropperFraction, misbehave.ClassDropper)
	return a
}

// advFractionCount converts a node fraction to a count over pool size n:
// rounded, at least 1 for any positive fraction, capped at n (the same
// semantics as netem's node-set materialization).
func advFractionCount(f float64, n int) int {
	if f <= 0 || n == 0 {
		return 0
	}
	c := int(math.Round(f * float64(n)))
	if c == 0 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// armed reports whether the detectors issue verdicts.
func (a *adversaryState) armed() bool { return a.spec.Detect != nil }

// detectorConfig builds one honest node's detector configuration: the
// spec's thresholds (armed) or an observe-only zero config, plus the
// simulator's liveness oracle so crashed peers are never convicted for
// their silence. Nodes not yet joined (flash-crowd waves) read as alive.
func (a *adversaryState) detectorConfig(net *simnet.Network) misbehave.Config {
	cfg := misbehave.Config{}
	if a.spec.Detect != nil {
		cfg = *a.spec.Detect
		cfg.Armed = true
	}
	cfg.Alive = func(p wire.NodeID) bool {
		return int(p) >= net.NumNodes() || net.Alive(p)
	}
	return cfg
}

// liarAdvertised returns what a liar with real capability c advertises.
func (a *adversaryState) liarAdvertised(c uint32) uint32 {
	v := float64(c) * a.spec.LiarFactor
	if v > math.MaxUint32 {
		v = math.MaxUint32
	}
	adv := uint32(v)
	if adv <= c {
		adv = c + 1
	}
	return adv
}

// interceptorFor wraps the engine of adversarial node i with its class's
// message-drop policy; honest nodes and liars (whose misbehavior lives at
// the aggregation layer) get the engine unwrapped.
func (a *adversaryState) interceptorFor(i int, inner env.Handler) env.Handler {
	var ic *misbehave.Interceptor
	switch a.class[i] {
	case misbehave.ClassFreerider:
		ic = &misbehave.Interceptor{Inner: inner, DropRequests: a.spec.Intensity, Onset: a.spec.Onset}
	case misbehave.ClassDropper:
		ic = &misbehave.Interceptor{Inner: inner, DropProposes: a.spec.Intensity, Onset: a.spec.Onset}
	default:
		return inner
	}
	a.interceptors[i] = ic
	return ic
}

// scheduleLiars arms delayed-onset lying: at Onset, each liar rewrites its
// advertised capability through the same SetSelfCapKbps path netem's
// capability traces use. Onset-zero liars advertise the inflated value from
// the start (wired in Run before estimators are built).
func (a *adversaryState) scheduleLiars(net *simnet.Network, caps []uint32,
	estimators []*aggregation.Estimator) {
	if a.spec.Onset <= 0 {
		return
	}
	for _, id := range a.liars {
		id := id
		adv := a.liarAdvertised(caps[id])
		net.Schedule(a.spec.Onset, func() {
			if est := estimators[id]; est != nil {
				est.SetSelfCapKbps(adv)
			}
		})
	}
}

// ClassDetectionStats summarizes detection of one adversary class.
type ClassDetectionStats struct {
	// Class is the misbehave.Class label.
	Class string
	// Nodes is the class's population.
	Nodes int
	// Detected counts members quarantined by at least the detector quorum
	// at run end; FalseNegatives is the rest.
	Detected       int
	FalseNegatives int
	// DetectedEver counts members that reached the quorum at any point
	// (a release after the stream ends does not undo detection).
	DetectedEver int
	// DetectionRate is Detected / Nodes (0 for an empty class).
	DetectionRate float64
	// MeanLatencySec / MaxLatencySec measure, over ever-detected members,
	// the time from when misbehavior could first be observed (the later of
	// adversary onset and stream start) to quorum.
	MeanLatencySec float64
	MaxLatencySec  float64
}

// CoalitionPoint is one observer-coalition size's source-localization
// result.
type CoalitionPoint struct {
	// Size is the effective coalition size (requested size clipped to the
	// honest population).
	Size int
	// Trials is how many random coalitions were drawn.
	Trials int
	// Hits counts trials whose estimate named the true broadcaster;
	// Probability is Hits / Trials.
	Hits        int
	Probability float64
}

// PeerEvidence pairs a peer id with one detector's evidence record.
type PeerEvidence struct {
	Peer wire.NodeID
	Ev   misbehave.Evidence
}

// AdversaryStats carries everything measured about an adversarial run: who
// the adversaries were, what the detectors concluded and how fast, the
// false-positive record on the honest cohort, and the source-anonymity
// probe. All fields are slices and scalars in deterministic order — the
// struct is part of the run fingerprint in the determinism suite, which gob
// encoding forbids maps in.
type AdversaryStats struct {
	// Freeriders/Liars/Droppers list the materialized adversary node sets
	// in ascending id order.
	Freeriders []wire.NodeID
	Liars      []wire.NodeID
	Droppers   []wire.NodeID

	// DetectorArmed records whether verdicts were enabled (the A/B switch).
	DetectorArmed bool
	// HonestDetectors is how many nodes ran detectors (honest non-sources).
	HonestDetectors int
	// Quorum is the detector count a node must be quarantined by to count
	// as detected (ceil(DetectQuorum · HonestDetectors), at least 1).
	Quorum int

	// Classes holds per-class detection summaries in freerider, liar,
	// dropper order.
	Classes []ClassDetectionStats

	// FalsePositives counts honest, non-source, non-crashed nodes
	// quarantined by at least Quorum detectors at run end (releases heal
	// transient verdicts before they ever land here); FalsePositiveIDs
	// lists them.
	FalsePositives   int
	FalsePositiveIDs []wire.NodeID

	// DetectedBy[i] is how many detectors hold node i quarantined at run
	// end. FirstQuorumSec[i] is when node i first reached the quorum
	// (seconds of virtual time; -1 never).
	DetectedBy     []int
	FirstQuorumSec []float64

	// QuarantineEvents / ReleaseEvents total verdict changes across all
	// detectors. ProposesIgnored totals proposals discarded engine-side
	// because the proposer was quarantined; DroppedRequests and
	// DroppedProposes total the adversaries' own discards.
	QuarantineEvents int64
	ReleaseEvents    int64
	ProposesIgnored  int64
	DroppedRequests  int64
	DroppedProposes  int64

	// Localization is the source-anonymity probe: for each observer-
	// coalition size, the probability that ranking candidates by
	// first-receipt order names the true broadcaster.
	Localization []CoalitionPoint

	// Evidence dumps one honest detector's per-peer evidence table
	// (EvidenceNode says whose) — diagnostics, and the fuzz corpus's seed
	// material.
	EvidenceNode wire.NodeID
	Evidence     []PeerEvidence
}

// collectStats assembles AdversaryStats after the run. res must already
// hold the delivery records (crash flags come from them).
func (a *adversaryState) collectStats(cfg *Config, res *Result) *AdversaryStats {
	total := cfg.totalNodes()
	stats := &AdversaryStats{
		Freeriders:     a.freeriders,
		Liars:          a.liars,
		Droppers:       a.droppers,
		DetectorArmed:  a.armed(),
		DetectedBy:     make([]int, total),
		FirstQuorumSec: make([]float64, total),
	}
	detectors := 0
	for _, d := range a.detectors {
		if d != nil {
			detectors++
		}
	}
	stats.HonestDetectors = detectors
	quorum := int(math.Ceil(a.spec.DetectQuorum * float64(detectors)))
	if quorum < 1 {
		quorum = 1
	}
	stats.Quorum = quorum

	// Per-target first-quarantine times across detectors; the quorum-th
	// smallest is when the system as a whole detected the node.
	times := make([][]time.Duration, total)
	for _, d := range a.detectors {
		if d == nil {
			continue
		}
		for j := 0; j < total; j++ {
			id := wire.NodeID(j)
			if d.Quarantined(id) {
				stats.DetectedBy[j]++
			}
			if t, ok := d.FirstQuarantinedAt(id); ok {
				times[j] = append(times[j], t)
			}
		}
		stats.QuarantineEvents += d.QuarantineEvents()
		stats.ReleaseEvents += d.ReleaseEvents()
	}
	for j := range stats.FirstQuorumSec {
		stats.FirstQuorumSec[j] = -1
		ts := times[j]
		if len(ts) >= quorum {
			sort.Slice(ts, func(x, y int) bool { return ts[x] < ts[y] })
			stats.FirstQuorumSec[j] = ts[quorum-1].Seconds()
		}
	}

	// Detection latency counts from when misbehavior became observable.
	base := a.spec.Onset
	if start, _ := cfg.streamsSpan(); start > base {
		base = start
	}
	stats.Classes = []ClassDetectionStats{
		classStats(misbehave.ClassFreerider.String(), a.freeriders, stats, quorum, base),
		classStats(misbehave.ClassLiar.String(), a.liars, stats, quorum, base),
		classStats(misbehave.ClassDropper.String(), a.droppers, stats, quorum, base),
	}

	// False positives: honest non-source survivors held at quorum at end.
	for j := 0; j < total; j++ {
		if a.class[j] != misbehave.ClassHonest || a.detectors[j] == nil {
			continue // adversaries and sources are not false positives
		}
		if res.Run.Nodes[j].Crashed {
			continue
		}
		if stats.DetectedBy[j] >= quorum {
			stats.FalsePositives++
			stats.FalsePositiveIDs = append(stats.FalsePositiveIDs, wire.NodeID(j))
		}
	}

	for _, ic := range a.interceptors {
		if ic != nil {
			stats.DroppedRequests += ic.DroppedRequests
			stats.DroppedProposes += ic.DroppedProposes
		}
	}
	for i := range res.CoreStats {
		stats.ProposesIgnored += res.CoreStats[i].ProposesIgnored
	}

	a.probeLocalization(cfg, stats)

	// One honest detector's evidence table, for diagnostics and the fuzz
	// corpus; the lowest-id detector keeps the choice deterministic.
	for j, d := range a.detectors {
		if d == nil {
			continue
		}
		stats.EvidenceNode = wire.NodeID(j)
		for p := 0; p < total; p++ {
			if ev, ok := d.EvidenceOf(wire.NodeID(p)); ok {
				stats.Evidence = append(stats.Evidence, PeerEvidence{Peer: wire.NodeID(p), Ev: ev})
			}
		}
		break
	}
	return stats
}

// classStats summarizes one adversary class's detection record.
func classStats(name string, members []wire.NodeID, stats *AdversaryStats,
	quorum int, base time.Duration) ClassDetectionStats {
	cs := ClassDetectionStats{Class: name, Nodes: len(members)}
	var latSum float64
	for _, id := range members {
		if stats.DetectedBy[id] >= quorum {
			cs.Detected++
		}
		if at := stats.FirstQuorumSec[id]; at >= 0 {
			cs.DetectedEver++
			lat := at - base.Seconds()
			if lat < 0 {
				lat = 0
			}
			latSum += lat
			if lat > cs.MaxLatencySec {
				cs.MaxLatencySec = lat
			}
		}
	}
	cs.FalseNegatives = cs.Nodes - cs.Detected
	if cs.Nodes > 0 {
		cs.DetectionRate = float64(cs.Detected) / float64(cs.Nodes)
	}
	if cs.DetectedEver > 0 {
		cs.MeanLatencySec = latSum / float64(cs.DetectedEver)
	}
	return cs
}

// probeLocalization runs the observer-coalition source-anonymity estimator
// (the gossip-privacy line of PAPERS.md): a coalition of C honest observers
// pools first-receipt records and names the earliest receipt's sender as
// the broadcaster — the strongest estimate order-only observers have. The
// probe is pure post-run analysis on its own rng stream: it perturbs
// nothing, so it runs identically with the detector armed or off.
func (a *adversaryState) probeLocalization(cfg *Config, stats *AdversaryStats) {
	if a.spec.CoalitionTrials == 0 {
		return
	}
	pool := make([]wire.NodeID, 0, len(a.detectors))
	for j, d := range a.detectors {
		if d == nil {
			continue
		}
		if _, _, ok := d.FirstReceipt(); ok {
			pool = append(pool, wire.NodeID(j))
		}
	}
	if len(pool) == 0 {
		return
	}
	target := cfg.effectiveStreams()[0].Source
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x0b5c0a1))
	for _, size := range a.spec.CoalitionSizes {
		if size > len(pool) {
			size = len(pool)
		}
		if len(stats.Localization) > 0 && stats.Localization[len(stats.Localization)-1].Size == size {
			continue // several requested sizes clipped to the same pool
		}
		point := CoalitionPoint{Size: size, Trials: a.spec.CoalitionTrials}
		for t := 0; t < point.Trials; t++ {
			perm := rng.Perm(len(pool))
			best := wire.NodeNone
			var bestAt time.Duration
			var estimate wire.NodeID
			for _, pi := range perm[:size] {
				obs := pool[pi]
				from, at, _ := a.detectors[obs].FirstReceipt()
				// Strict (time, observer id) order keeps the winner unique
				// regardless of draw order.
				if best == wire.NodeNone || at < bestAt || (at == bestAt && obs < best) {
					best, bestAt, estimate = obs, at, from
				}
			}
			if estimate == target {
				point.Hits++
			}
		}
		point.Probability = float64(point.Hits) / float64(point.Trials)
		stats.Localization = append(stats.Localization, point)
	}
}

// HonestJitterFree returns the mean jitter-free window share at the given
// playback lag over the honest cohort only: adversarial nodes are excluded
// along with the usual source and crashed exclusions. In a run without
// Adversary it equals the plain mean. The A/B acceptance question — does
// the detector give honest nodes their stream back — is about exactly this
// number.
func (r *Result) HonestJitterFree(lag time.Duration) float64 {
	adversarial := make([]bool, len(r.CapsKbps))
	if r.AdversaryStats != nil {
		for _, set := range [][]wire.NodeID{
			r.AdversaryStats.Freeriders, r.AdversaryStats.Liars, r.AdversaryStats.Droppers,
		} {
			for _, id := range set {
				adversarial[id] = true
			}
		}
	}
	run := r.Run
	vals := make([]float64, 0, len(run.Nodes))
	for i := range run.Nodes {
		n := &run.Nodes[i]
		if n.Excluded || n.Crashed || adversarial[n.Node] {
			continue
		}
		vals = append(vals, run.JitterFreeShare(n, lag))
	}
	return metrics.Mean(vals)
}

// AdversaryVariants returns the three-way axis of adversary sweeps: the
// honest baseline, the adversary mix with detectors in observe-only mode,
// and the same mix with detectors armed (stock thresholds unless the spec
// carries its own). See cmd/heapsweep's -adversary flag.
func AdversaryVariants(spec AdversarySpec) []Variant {
	off := spec
	off.Detect = nil
	on := spec
	if on.Detect == nil {
		on.Detect = &misbehave.Config{}
	}
	return []Variant{
		{Name: "honest"},
		{Name: "adv-detector-off", Mutate: func(c *Config) { s := off; c.Adversary = &s }},
		{Name: "adv-detector-on", Mutate: func(c *Config) { s := on; c.Adversary = &s }},
	}
}

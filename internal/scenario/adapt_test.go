package scenario

import (
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/netem"
)

func TestAdaptConfigValidation(t *testing.T) {
	base := func() Config {
		cfg := deterministicBase(1)
		cfg.Adapt = &adapt.Config{}
		return cfg
	}
	cfg := base()
	cfg.Unconstrained, cfg.Dist = true, nil
	if _, err := Run(cfg); err == nil {
		t.Error("Adapt with unconstrained uploads accepted")
	}
	cfg = base()
	cfg.Protocol = StaticTree
	if _, err := Run(cfg); err == nil {
		t.Error("Adapt with the static tree accepted")
	}
	cfg = base()
	cfg.Adapt = &adapt.Config{Beta: 2}
	if _, err := Run(cfg); err == nil {
		t.Error("invalid adapt policy accepted")
	}
}

// adaptDegradedBase is the reduced-scale knife-edge configuration: HEAP on
// the most skewed distribution with a fifth of the nodes silently
// delivering just 35% of their advertised capability. (The full-scale
// version of this A/B is the `adapt` report artifact; at 120 nodes the
// symptom is queue creep and jitter, not outright collapse.)
func adaptDegradedBase(seed int64) Config {
	return Config{
		Nodes:              120,
		Protocol:           HEAP,
		Dist:               MS691,
		Windows:            24,
		Seed:               seed,
		Drain:              40 * time.Second,
		DegradedFraction:   0.2,
		DegradedFactor:     0.35,
		BacklogProbePeriod: time.Second,
	}
}

// maxDegradedBacklog returns the worst probe of the degraded cohort's mean
// uplink backlog, in seconds.
func maxDegradedBacklog(res *Result) float64 {
	worst := 0.0
	for _, s := range res.BacklogSamples {
		if b := s.MeanByClass["degraded"]; b > worst {
			worst = b
		}
	}
	return worst
}

func meanDelivery(res *Result) float64 {
	return res.StreamSummaries(10 * time.Second)[0].DeliveryMean
}

// TestAdaptNeutralizesDegradedKnifeEdge is the scenario-level acceptance
// check (the committed artifact repeats it at paper scale): with adaptation
// on, the degraded cohort's send queues stay bounded where the trusting
// baseline lets them creep, and overall delivery does not get worse.
func TestAdaptNeutralizesDegradedKnifeEdge(t *testing.T) {
	off, err := Run(adaptDegradedBase(3))
	if err != nil {
		t.Fatal(err)
	}
	cfgOn := adaptDegradedBase(3)
	cfgOn.Adapt = &adapt.Config{}
	on, err := Run(cfgOn)
	if err != nil {
		t.Fatal(err)
	}

	offWorst, onWorst := maxDegradedBacklog(off), maxDegradedBacklog(on)
	if onWorst > 3 {
		t.Errorf("adapt on: degraded-cohort backlog peaked at %.1fs, want <= 3s", onWorst)
	}
	if onWorst >= offWorst {
		t.Errorf("adapt on backlog %.1fs did not improve on baseline %.1fs", onWorst, offWorst)
	}
	// Shedding fanout trades a sliver of raw delivery for timeliness: the
	// jitter-free share must not get worse, and raw delivery must stay
	// within noise of the baseline.
	offJF := off.StreamSummaries(10 * time.Second)[0].JFMean
	onJF := on.StreamSummaries(10 * time.Second)[0].JFMean
	if onJF < offJF {
		t.Errorf("adapt on jitter-free share %.4f fell below baseline %.4f", onJF, offJF)
	}
	if offDel, onDel := meanDelivery(off), meanDelivery(on); onDel < offDel-0.005 {
		t.Errorf("adapt on delivery %.4f fell more than noise below baseline %.4f", onDel, offDel)
	}

	stats := on.AdaptStats
	if stats == nil {
		t.Fatal("adapt-enabled run returned no AdaptStats")
	}
	if stats.Readvertisements == 0 {
		t.Error("no re-advertisements despite degraded nodes riding their capacity limit")
	}
	if off.AdaptStats != nil {
		t.Error("adapt-off run returned AdaptStats")
	}
	// Some degraded node must actually have shed advertisement mid-run (it
	// may have probed back to the ceiling by run end, so check the traces).
	shed := false
	for i, tr := range stats.Traces {
		for _, re := range tr {
			if re.EffKbps < stats.ConfiguredKbps[i] {
				shed = true
			}
		}
	}
	if !shed {
		t.Error("no controller ever held a node below its configured advertisement")
	}
}

// TestAdaptPropertyEstimateBounds runs adaptation under the silent
// capability trace (real capacity drops, advertisement does not follow) and
// asserts the satellite's invariant end to end: every controller's final
// estimate sits within [floor, configured], and every trace entry does too.
func TestAdaptPropertyEstimateBounds(t *testing.T) {
	// ms-691 with a mid-length stream, so the 10-30 s trace window overlaps
	// real traffic and the traced nodes genuinely saturate.
	cfg := adaptDegradedBase(11)
	cfg.DegradedFraction = 0
	cfg.Windows = 12
	p, err := netem.Profile("captrace-silent")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Netem = &p
	cfg.Adapt = &adapt.Config{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := res.AdaptStats
	if stats == nil {
		t.Fatal("no AdaptStats")
	}
	if stats.AdaptedNodes() == 0 {
		t.Fatal("no node ran a controller")
	}
	const floorFraction = 0.1 // the stock policy's FloorFraction
	for i, eff := range stats.EffectiveKbps {
		if eff == 0 {
			continue
		}
		configured := stats.ConfiguredKbps[i]
		floor := uint32(floorFraction * float64(configured))
		if floor == 0 {
			floor = 1
		}
		if eff > configured || eff < floor {
			t.Fatalf("node %d: final estimate %d outside [%d, %d]", i, eff, floor, configured)
		}
		for _, re := range stats.Traces[i] {
			if re.EffKbps > configured || re.EffKbps < floor {
				t.Fatalf("node %d: trace entry %d kbps outside [%d, %d]", i, re.EffKbps, floor, configured)
			}
		}
	}
	// The silent trace must actually provoke adaptation on the traced nodes.
	if stats.Readvertisements == 0 {
		t.Error("silent capability trace provoked no re-advertisements")
	}
}

// TestAdaptSweepTravel pins that the adapt axis travels through the sweep
// engine: an adapt-enabled grid runs, keeps its Results, and every cell's
// runs carry AdaptStats.
func TestAdaptSweepTravel(t *testing.T) {
	cfg := adaptDegradedBase(5)
	cfg.Adapt = &adapt.Config{}
	sw := Sweep{Base: cfg, BaseSeed: cfg.Seed, Workers: 2,
		Variants: []Variant{
			{Name: "adapt-off", Mutate: func(c *Config) { c.Adapt = nil }},
			{Name: "adapt-on"},
		}}
	res, err := RunSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(res.Cells))
	}
	offRun := res.CellByVariant("adapt-off").Runs[0]
	onRun := res.CellByVariant("adapt-on").Runs[0]
	if offRun.AdaptStats != nil {
		t.Error("adapt-off cell carries AdaptStats")
	}
	if onRun.AdaptStats == nil || onRun.AdaptStats.AdaptedNodes() == 0 {
		t.Error("adapt-on cell missing AdaptStats")
	}
}

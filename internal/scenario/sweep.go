package scenario

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/churn"
	"repro/internal/metrics"
	"repro/internal/topo"
	"repro/internal/wire"
)

// Sweep describes a grid of scenarios: the cross product of the axis slices
// below applied on top of Base, each cell replicated Replicas times with
// deterministically derived seeds. RunSweep executes the grid on a bounded
// worker pool; results are identical for any worker count because every
// run's seed is derived from its grid position before scheduling.
//
// An empty axis slice means "keep Base's value" (one implicit element), so
// the zero Sweep with only Base set describes a single run.
type Sweep struct {
	// Base is the configuration every cell starts from.
	Base Config

	// Protocols, Dists, Nodes, Fanouts and ChurnFractions are the grid
	// axes; each non-empty slice multiplies the cell count. A churn
	// fraction > 0 injects a catastrophic failure of that fraction of the
	// nodes halfway through the stream.
	Protocols      []Protocol
	Dists          []Distribution
	Nodes          []int
	Fanouts        []float64
	ChurnFractions []float64

	// Variants is the escape hatch for axes the named slices cannot
	// express: each Variant mutates the cell's config arbitrarily (after
	// the named axes are applied, before the seed is derived).
	Variants []Variant

	// Replicas runs each cell that many times with distinct derived seeds.
	// Default 1.
	Replicas int
	// PairedSeeds makes replica r of *every* cell share one derived seed
	// (common random numbers): controlled A/B comparisons across cells —
	// e.g. the same run with and without freeze injection — then differ
	// only in the axis under study. Default off: each (cell, replica)
	// gets its own seed, the right choice for independent statistics.
	PairedSeeds bool
	// BaseSeed roots the per-run seed derivation. Default Base.Seed.
	BaseSeed int64
	// Workers bounds the worker pool. Default runtime.GOMAXPROCS(0).
	Workers int
	// SummaryLag is the playback lag used by the per-cell stream-quality
	// summary statistics. Default 10 s.
	SummaryLag time.Duration
	// DropRuns discards each full Result after it is folded into its
	// cell's summary, bounding memory on large sweeps.
	DropRuns bool
	// Progress, if non-nil, is called (serialized) after every run.
	Progress func(cell string, replica int, elapsed time.Duration)
}

// Variant is a named arbitrary config mutation used as a sweep axis.
type Variant struct {
	Name   string
	Mutate func(*Config)
}

// TopologyVariants builds the canonical A/B axis for a clustered topology:
// "topo-blind" embeds the run in the clustered network but keeps the flat
// (locality-oblivious) fanout, "topo-aware" additionally splits the fanout
// budget into intra and inter draws. Both cells see the identical topology,
// so the comparison isolates the protocol's cluster awareness.
func TopologyVariants(tc topo.Config, intra, inter float64) []Variant {
	blind := tc
	aware := tc
	return []Variant{
		{Name: "topo-blind", Mutate: func(c *Config) {
			c.Topology = &blind
			c.FanoutIntra, c.FanoutInter = 0, 0
		}},
		{Name: "topo-aware", Mutate: func(c *Config) {
			c.Topology = &aware
			c.FanoutIntra, c.FanoutInter = intra, inter
		}},
	}
}

// CellKey identifies one cell of the sweep grid.
type CellKey struct {
	Protocol      Protocol
	Dist          string // distribution name, "unconstrained" if none
	Nodes         int
	Fanout        float64
	ChurnFraction float64
	Variant       string
}

// String renders the key as a stable, readable cell name.
func (k CellKey) String() string {
	s := fmt.Sprintf("%s/%s/n%d/f%g", k.Protocol, k.Dist, k.Nodes, k.Fanout)
	if k.ChurnFraction > 0 {
		s += fmt.Sprintf("/churn%g", k.ChurnFraction)
	}
	if k.Variant != "" {
		s += "/" + k.Variant
	}
	return s
}

// CellSummary aggregates one cell's replicas into the headline statistics of
// the paper's evaluation. Node-level samples are pooled across replicas.
type CellSummary struct {
	// Replicas is the number of runs folded in.
	Replicas int
	// MeasuredNodes counts the pooled node samples (excluded and crashed
	// nodes are skipped, as everywhere in internal/metrics).
	MeasuredNodes int
	// JFMean / JFP10 are the mean and 10th percentile over nodes of the
	// jitter-free window share at the sweep's SummaryLag.
	JFMean, JFP10 float64
	// LagCDF is the pooled distribution over nodes of the minimum lag to
	// receive 99% of the stream (seconds; +Inf for never) — the merged
	// Figures 1-3 curve for this cell.
	LagCDF metrics.CDF
	// LagP50 / LagP90 are percentiles of LagCDF.
	LagP50, LagP90 float64
	// NeverFrac is the fraction of nodes that never reach 99% delivery.
	NeverFrac float64
	// MinLagJFMean is the mean (finite samples only) of the minimum
	// playback lag for a fully jitter-free stream.
	MinLagJFMean float64
	// UsageMean is the mean upload utilization across nodes and replicas
	// (0 for unconstrained cells).
	UsageMean float64
	// MsgsPerRun is the mean number of network messages per run.
	MsgsPerRun float64
	// Elapsed sums the replicas' wall-clock run times.
	Elapsed time.Duration
}

// CellResult is one grid cell's outcome.
type CellResult struct {
	Key CellKey
	// Seeds holds the derived per-replica seeds, in replica order.
	Seeds []int64
	// Runs holds the full per-replica results (nil when Sweep.DropRuns).
	Runs []*Result
	// Summary aggregates the replicas.
	Summary CellSummary
}

// SweepResult is the outcome of a full sweep, cells in grid order
// (protocol, dist, nodes, fanout, churn, variant — slowest to fastest).
type SweepResult struct {
	Cells      []CellResult
	SummaryLag time.Duration
	// Workers and Elapsed record how the sweep actually executed; they do
	// not affect the measurements.
	Workers int
	Elapsed time.Duration
}

// Find returns the first cell matching the predicate, or nil.
func (r *SweepResult) Find(match func(CellKey) bool) *CellResult {
	for i := range r.Cells {
		if match(r.Cells[i].Key) {
			return &r.Cells[i]
		}
	}
	return nil
}

// CellByVariant returns the first cell with the given variant name, or nil.
func (r *SweepResult) CellByVariant(name string) *CellResult {
	return r.Find(func(k CellKey) bool { return k.Variant == name })
}

// sweepCSVHeader is the stable column set of WriteCSV. Wall-clock and worker
// fields are deliberately excluded so that the bytes depend only on the
// sweep definition and seeds, never on scheduling.
var sweepCSVHeader = []string{
	"protocol", "dist", "nodes", "fanout", "churn", "variant",
	"replicas", "measured_nodes", "jf_mean", "jf_p10",
	"lag_p50_s", "lag_p90_s", "never_frac", "minlag_jf_mean_s",
	"usage_mean", "msgs_per_run",
}

// WriteCSV writes one row per cell in grid order. For a fixed sweep
// definition the output is byte-identical regardless of worker count.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(sweepCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for i := range r.Cells {
		c := &r.Cells[i]
		s := &c.Summary
		rec := []string{
			string(c.Key.Protocol),
			c.Key.Dist,
			strconv.Itoa(c.Key.Nodes),
			strconv.FormatFloat(c.Key.Fanout, 'g', -1, 64),
			strconv.FormatFloat(c.Key.ChurnFraction, 'g', -1, 64),
			c.Key.Variant,
			strconv.Itoa(s.Replicas),
			strconv.Itoa(s.MeasuredNodes),
			f(s.JFMean), f(s.JFP10),
			f(s.LagP50), f(s.LagP90),
			f(s.NeverFrac), f(s.MinLagJFMean),
			f(s.UsageMean), f(s.MsgsPerRun),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders the per-cell summaries as an aligned text table.
func (r *SweepResult) Table() *metrics.Table {
	tbl := &metrics.Table{Headers: []string{"cell", "reps",
		fmt.Sprintf("jitter-free@%s", r.SummaryLag), "lag P50 (s)", "lag P90 (s)",
		"never @99%", "usage", "run time"}}
	for i := range r.Cells {
		c := &r.Cells[i]
		s := &c.Summary
		tbl.AddRow(c.Key.String(),
			strconv.Itoa(s.Replicas),
			fmt.Sprintf("%.1f%%", 100*s.JFMean),
			fmt.Sprintf("%.1f", s.LagP50),
			fmt.Sprintf("%.1f", s.LagP90),
			fmt.Sprintf("%.0f%%", 100*s.NeverFrac),
			fmt.Sprintf("%.0f%%", 100*s.UsageMean),
			fmt.Sprintf("%.1fs", s.Elapsed.Seconds()))
	}
	return tbl
}

// runSpec is one scheduled run: a grid position with its fully built config.
type runSpec struct {
	cell    int
	replica int
	cfg     Config
}

// orDefault returns axis if non-empty, else a one-element slice of base, so
// nested grid loops always execute.
func orDefault[T any](axis []T, base T) []T {
	if len(axis) == 0 {
		return []T{base}
	}
	return axis
}

// expand materializes the grid: cells in deterministic order, every run's
// config (including its derived seed) fully built and validated up front.
func (sw *Sweep) expand() ([]CellResult, []runSpec, error) {
	replicas := sw.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	baseSeed := sw.BaseSeed
	if baseSeed == 0 {
		baseSeed = sw.Base.Seed
	}
	protocols := orDefault(sw.Protocols, sw.Base.Protocol)
	dists := orDefault(sw.Dists, sw.Base.Dist)
	nodes := orDefault(sw.Nodes, sw.Base.Nodes)
	fanouts := orDefault(sw.Fanouts, sw.Base.Fanout)
	churns := orDefault(sw.ChurnFractions, 0)
	variants := orDefault(sw.Variants, Variant{})

	var cells []CellResult
	var specs []runSpec
	for _, proto := range protocols {
		for _, dist := range dists {
			for _, n := range nodes {
				for _, fanout := range fanouts {
					for _, churnFrac := range churns {
						for _, variant := range variants {
							cfg := sw.Base
							cfg.Protocol = proto
							cfg.Dist = dist
							cfg.Nodes = n
							cfg.Fanout = fanout
							if dist == nil {
								cfg.Unconstrained = true
							}
							if variant.Mutate != nil {
								variant.Mutate(&cfg)
							}
							// Validate once per cell, on a copy so the real
							// runs still apply their own defaults; the key
							// records the *effective* values (defaults
							// filled in), and the probe places churn
							// mid-stream.
							probe := cfg
							if err := probe.applyDefaults(); err != nil {
								distName := "unconstrained"
								if cfg.Dist != nil {
									distName = cfg.Dist.Name()
								}
								return nil, nil, fmt.Errorf("sweep cell %s/%s/n%d (variant %q): %w",
									cfg.Protocol, distName, cfg.Nodes, variant.Name, err)
							}
							if churnFrac > 0 {
								cfg.Churn = &churn.Catastrophic{
									At:         probe.StreamStart + probe.StreamDuration()/2,
									Fraction:   churnFrac,
									NotifyMean: 10 * time.Second,
								}
							}
							if cfg.Churn != nil {
								// Run only validates churn at apply time,
								// halfway into the run; fail the whole grid
								// before burning CPU on its other cells.
								if err := cfg.Churn.Validate(); err != nil {
									return nil, nil, fmt.Errorf("sweep cell %s/n%d churn %g: %w",
										cfg.Protocol, cfg.Nodes, churnFrac, err)
								}
							}
							key := CellKey{
								Protocol:      probe.Protocol,
								Dist:          "unconstrained",
								Nodes:         probe.Nodes,
								Fanout:        probe.Fanout,
								ChurnFraction: churnFrac,
								Variant:       variant.Name,
							}
							if churnFrac == 0 && cfg.Churn != nil {
								// Churn supplied via Base/variant rather
								// than the axis still labels the cell.
								key.ChurnFraction = cfg.Churn.Fraction
							}
							if probe.Dist != nil {
								key.Dist = probe.Dist.Name()
							}
							cellIdx := len(cells)
							seedCell := cellIdx
							if sw.PairedSeeds {
								seedCell = 0
							}
							cell := CellResult{Key: key, Seeds: make([]int64, replicas)}
							for rep := 0; rep < replicas; rep++ {
								runCfg := cfg
								runCfg.Seed = deriveSeed(baseSeed, seedCell, rep)
								runCfg.Name = fmt.Sprintf("%s#%d", key, rep)
								cell.Seeds[rep] = runCfg.Seed
								specs = append(specs, runSpec{cell: cellIdx, replica: rep, cfg: runCfg})
							}
							cells = append(cells, cell)
						}
					}
				}
			}
		}
	}
	return cells, specs, nil
}

// deriveSeed maps a grid position to a run seed with a splitmix64-style
// mixer: well-spread, collision-free in practice, and — crucially — a pure
// function of (baseSeed, cell, replica), never of scheduling order.
func deriveSeed(base int64, cell, replica int) int64 {
	z := uint64(base) ^ 0x9e3779b97f4a7c15
	z += uint64(cell)*0xbf58476d1ce4e5b9 + uint64(replica)*0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1) // keep it positive for friendlier -seed flags
}

// RunSweep executes the sweep grid on a bounded worker pool and aggregates
// per-cell summary statistics. Results are independent of Workers.
func RunSweep(sw Sweep) (*SweepResult, error) {
	cells, specs, err := sw.expand()
	if err != nil {
		return nil, err
	}
	workers := sw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	summaryLag := sw.SummaryLag
	if summaryLag == 0 {
		summaryLag = 10 * time.Second
	}

	start := time.Now()
	results := make([]*Result, len(specs))

	// Cell c's specs are contiguous in grid order; track them so a cell can
	// be folded — and, with DropRuns, its Results freed — the moment its
	// last replica completes, instead of retaining every run until the end.
	cellSpecs := make([][]int, len(cells))
	for i := range specs {
		cellSpecs[specs[i].cell] = append(cellSpecs[specs[i].cell], i)
	}
	remaining := make([]int, len(cells))
	for c := range cellSpecs {
		remaining[c] = len(cellSpecs[c])
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex // guards cells, remaining, runErr and Progress
		aborted atomic.Bool
		runErr  error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if aborted.Load() {
					continue
				}
				spec := &specs[idx]
				runStart := time.Now()
				res, err := Run(spec.cfg)
				elapsed := time.Since(runStart)
				mu.Lock()
				if err != nil {
					aborted.Store(true)
					if runErr == nil {
						runErr = fmt.Errorf("sweep run %s: %w", spec.cfg.Name, err)
					}
					mu.Unlock()
					continue
				}
				results[idx] = res
				cell := &cells[spec.cell]
				cell.Summary.Elapsed += elapsed
				remaining[spec.cell]--
				if remaining[spec.cell] == 0 {
					// Fold in replica order (spec order), not completion
					// order, so aggregation is scheduling-independent.
					runs := make([]*Result, 0, len(cellSpecs[spec.cell]))
					for _, si := range cellSpecs[spec.cell] {
						runs = append(runs, results[si])
					}
					summarizeCell(&cell.Summary, runs, summaryLag)
					if sw.DropRuns {
						for _, si := range cellSpecs[spec.cell] {
							results[si] = nil
						}
					} else {
						cell.Runs = runs
					}
				}
				if sw.Progress != nil {
					sw.Progress(cell.Key.String(), spec.replica, elapsed)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	return &SweepResult{
		Cells:      cells,
		SummaryLag: summaryLag,
		Workers:    workers,
		Elapsed:    time.Since(start),
	}, nil
}

// summarizeCell pools node-level samples across a cell's replicas and fills
// in the summary statistics (Elapsed is accumulated by the caller).
func summarizeCell(s *CellSummary, runs []*Result, lag time.Duration) {
	s.Replicas = len(runs)
	var jf, minLags []float64
	lagCDFs := make([]metrics.CDF, 0, len(runs))
	var usageSum float64
	var usageN int
	var msgs float64
	for _, res := range runs {
		// Multi-source cells pool node samples across their streams, so the
		// summary reflects every stream's dissemination (single-stream runs
		// have exactly one entry aliasing res.Run).
		streamRuns := res.StreamRuns
		if len(streamRuns) == 0 {
			streamRuns = []*metrics.Run{res.Run}
		}
		for _, run := range streamRuns {
			jf = append(jf, run.PerNode(func(n *metrics.NodeRecord) float64 {
				return run.JitterFreeShare(n, lag)
			})...)
			lagCDFs = append(lagCDFs, metrics.NewCDF(run.PerNode(func(n *metrics.NodeRecord) float64 {
				return metrics.Seconds(run.LagForDeliveryRatio(n, 0.99))
			})))
			minLags = append(minLags, run.PerNode(func(n *metrics.NodeRecord) float64 {
				return metrics.Seconds(run.MinLagForJitterFree(n, 0))
			})...)
		}
		if !res.Config.Unconstrained {
			// Skip crashed nodes, as every other pooled statistic does:
			// their Usage is pre-crash bytes over the full stream span,
			// which would drag churned cells' utilization down. Skip every
			// broadcaster too (single-stream cells skip node 0; multi-source
			// cells have K well-provisioned sources whose 10 Mbps caps would
			// dilute the mean).
			sources := make(map[wire.NodeID]bool)
			for _, sp := range res.Config.effectiveStreams() {
				sources[sp.Source] = true
			}
			for i := 1; i < len(res.Usage); i++ {
				if res.Run.Nodes[i].Crashed || sources[wire.NodeID(i)] {
					continue
				}
				usageSum += res.Usage[i]
				usageN++
			}
		}
		msgs += float64(res.NetStats.MsgsSent)
	}
	s.MeasuredNodes = len(jf)
	jfCDF := metrics.NewCDF(jf)
	s.JFMean = metrics.Mean(jf)
	s.JFP10 = jfCDF.ValueAtPercentile(10)
	s.LagCDF = metrics.MergeCDFs(lagCDFs...)
	s.LagP50 = s.LagCDF.ValueAtPercentile(50)
	s.LagP90 = s.LagCDF.ValueAtPercentile(90)
	s.NeverFrac = 1 - s.LagCDF.FractionAtOrBelow(1e12)
	s.MinLagJFMean = metrics.Mean(minLags)
	if usageN > 0 {
		s.UsageMean = usageSum / float64(usageN)
	}
	if len(runs) > 0 {
		s.MsgsPerRun = msgs / float64(len(runs))
	}
}

package scenario

import (
	"fmt"
	"time"

	"repro/internal/aggregation"
	"repro/internal/netem"
	"repro/internal/simnet"
)

// This file wires internal/netem into the scenario layer: capability-trace
// application, and the Adverse* variant axis that puts the stock adverse
// profiles into sweep grids (`heapsweep -netem`) and the LargeScale family.

// applyCapTraces schedules the engine's materialized capability traces:
// at each step, the node's uplink capacity (unless the run is
// unconstrained) and its advertised capability (HEAP) are rewritten to
// Factor times their base values. The base is captured before any step
// fires, so factors never compound; a final factor of 1 restores the
// original capability exactly. Silent traces skip the advertisement — the
// node's claim goes stale against its real capacity, the regime the
// adaptation layer (Config.Adapt) exists to detect.
func applyCapTraces(net *simnet.Network, eng *netem.Engine, unconstrained bool,
	effective []int64, advertised []uint32, estimators []*aggregation.Estimator) {
	for _, tr := range eng.CapTraces() {
		for _, id := range tr.Nodes {
			if int(id) <= 0 || int(id) >= len(effective) {
				continue // the source (0) and out-of-range ids are never traced
			}
			baseBps := effective[id]
			baseAdv := advertised[id]
			silent := tr.Silent
			for _, step := range tr.Steps {
				id, step := id, step
				net.Schedule(step.At, func() {
					if int(id) >= net.NumNodes() {
						return // a wave node traced before its wave landed
					}
					// Unconstrained runs have no uplink caps to degrade,
					// and a tiny factor must not round a capped uplink
					// down to 0 — simnet reads 0 as "unconstrained", the
					// inverse of degradation.
					if !unconstrained && baseBps > 0 {
						bps := int64(float64(baseBps) * step.Factor)
						if bps == 0 {
							bps = 1
						}
						net.SetUploadBps(id, bps)
					}
					if est := estimators[id]; est != nil && !silent {
						adv := uint32(float64(baseAdv) * step.Factor)
						if adv == 0 {
							adv = 1
						}
						est.SetSelfCapKbps(adv)
					}
				})
			}
		}
	}
}

// AdverseVariants returns one sweep variant per named netem profile (all
// stock profiles when names is empty): each cell runs with that profile's
// adverse conditions on top of the base config. Combine with a leading
// baseline variant for A/B tables — see cmd/heapsweep's -netem flag.
func AdverseVariants(names ...string) ([]Variant, error) {
	if len(names) == 0 {
		names = netem.ProfileNames()
	}
	out := make([]Variant, 0, len(names))
	for _, name := range names {
		p, err := netem.Profile(name)
		if err != nil {
			return nil, err
		}
		profile := p
		out = append(out, Variant{
			Name:   "adv-" + name,
			Mutate: func(c *Config) { c.Netem = &profile },
		})
	}
	return out, nil
}

// LargeScaleAdverseVariants extends the LargeScale variant axis with the
// named adverse profiles on top of the steady baseline (size-derived fanout
// included), so `heapsweep -largescale -netem` sweeps system size against
// network adversity in one grid.
func LargeScaleAdverseVariants(names ...string) ([]Variant, error) {
	adv, err := AdverseVariants(names...)
	if err != nil {
		return nil, err
	}
	out := make([]Variant, 0, len(adv))
	for _, v := range adv {
		inner := v.Mutate
		out = append(out, Variant{
			Name:   v.Name,
			Mutate: func(c *Config) { largeScaleSizeFanout(c); inner(c) },
		})
	}
	return out, nil
}

// NetemSummary renders one run's per-model netem counters as a compact
// single-line summary for progress output and reports; empty without netem.
func NetemSummary(stats []netem.ModelStats) string {
	if len(stats) == 0 {
		return ""
	}
	out := ""
	for _, st := range stats {
		if st.Drops == 0 && st.Delayed == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d dropped", st.Name, st.Drops)
		if st.Delayed > 0 {
			out += fmt.Sprintf("/%d delayed (mean %s)", st.Delayed,
				(st.DelaySum / time.Duration(st.Delayed)).Round(time.Millisecond))
		}
	}
	if out == "" {
		return "no drops or delays"
	}
	return out
}

package scenario

import (
	"testing"
	"time"

	"repro/internal/stream"
)

// Small-scale functional tests for the LargeScale dynamics: the physics the
// family exists to measure must actually occur (joins join, bursts crash),
// independent of system size.

func TestJoinWaveNodesJoinAndCatchUp(t *testing.T) {
	cfg := Config{
		Nodes:     100,
		Protocol:  StandardGossip,
		Dist:      Ref691,
		Windows:   4,
		Seed:      11,
		Drain:     25 * time.Second,
		JoinWaves: []JoinWave{{At: 7 * time.Second, Count: 25}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Run.Nodes); got != 125 {
		t.Fatalf("collected %d node records, want 125", got)
	}
	// The joiners (ids 100..124) must have received a meaningful share of
	// the stream published after they joined — they are live participants,
	// not dead weight.
	total := cfg.Geometry.TotalPackets(cfg.Windows)
	caught := 0
	for i := 100; i < 125; i++ {
		recv := 0
		for _, at := range res.Run.Nodes[i].Recv {
			if at != stream.NotReceived {
				recv++
			}
		}
		if recv > total/4 {
			caught++
		}
	}
	if caught < 20 {
		t.Fatalf("only %d of 25 joiners caught a meaningful share of the stream", caught)
	}
	// And nobody received anything before their wave landed.
	for i := 100; i < 125; i++ {
		for pkt, at := range res.Run.Nodes[i].Recv {
			if at != stream.NotReceived && at < 7*time.Second {
				t.Fatalf("joiner %d received packet %d at %v, before its join at 7s", i, pkt, at)
			}
		}
	}
}

func TestChurnBurstCrashesExpectedFraction(t *testing.T) {
	cfg := Config{
		Nodes:       120,
		Protocol:    StandardGossip,
		Dist:        Ref691,
		Windows:     4,
		Seed:        3,
		Drain:       25 * time.Second,
		ChurnBursts: []ChurnBurst{{At: 8 * time.Second, Fraction: 0.2}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crashed := 0
	for i, st := range res.NodeNetStats {
		if st.Crashed {
			crashed++
			if i == 0 {
				t.Fatal("the source crashed; bursts must spare node 0")
			}
			if !res.Run.Nodes[i].Crashed {
				t.Fatalf("node %d crashed but its record is not marked", i)
			}
		}
	}
	want := int(0.2 * float64(cfg.Nodes-1))
	if crashed != want {
		t.Fatalf("burst crashed %d nodes, want %d", crashed, want)
	}
	if len(res.Victims) != crashed {
		t.Fatalf("Victims lists %d nodes, %d crashed", len(res.Victims), crashed)
	}
}

func TestLargeScaleSweepGridShape(t *testing.T) {
	sw := LargeScaleSweep([]int{60}, 1, 5, 1)
	sw.Base.Windows = 2
	sw.Base.Drain = 15 * time.Second
	res, err := RunSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells, want 4 (steady/flashcrowd/churnbursts/mixed)", len(res.Cells))
	}
	wantVariants := []string{"steady", "flashcrowd", "churnbursts", "mixed"}
	for i, c := range res.Cells {
		if c.Key.Variant != wantVariants[i] {
			t.Fatalf("cell %d variant %q, want %q", i, c.Key.Variant, wantVariants[i])
		}
		if c.Key.Dist != "bimodal-700" || c.Key.Protocol != HEAP {
			t.Fatalf("cell %d key %v: want HEAP on bimodal-700", i, c.Key)
		}
		if c.Summary.MeasuredNodes == 0 {
			t.Fatalf("cell %s measured no nodes", c.Key)
		}
	}
}

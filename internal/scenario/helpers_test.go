package scenario

import (
	"testing"

	"repro/internal/membership"
	"repro/internal/wire"
)

// viewForTest builds a full view over n nodes for the given self id.
func viewForTest(t *testing.T, self wire.NodeID, n int) *membership.View {
	t.Helper()
	return membership.NewDirectory(n).ViewFor(self)
}

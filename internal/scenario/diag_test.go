package scenario

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestDiagnostics prints per-class protocol behavior for manual inspection.
// Run with: go test ./internal/scenario/ -run TestDiagnostics -v
func TestDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	for _, proto := range []Protocol{StandardGossip, HEAP} {
		cfg := Config{
			Name:        "diag-" + string(proto),
			Nodes:       180,
			Dist:        MS691,
			Protocol:    proto,
			Windows:     15,
			Seed:        3,
			StreamStart: 5 * time.Second,
			Drain:       30 * time.Second,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		type agg struct {
			n                                  int
			served, proposed, retx, dups, unsv int64
			usage, backlog                     float64
			jf                                 float64
		}
		classes := map[string]*agg{}
		for i := 1; i < cfg.Nodes; i++ {
			cl := cfg.Dist.ClassOf(res.CapsKbps[i])
			a := classes[cl]
			if a == nil {
				a = &agg{}
				classes[cl] = a
			}
			a.n++
			st := res.CoreStats[i]
			a.served += st.EventsServed
			a.proposed += st.ProposesSent
			a.retx += st.Retransmissions
			a.dups += st.DuplicateEvents
			a.unsv += st.UnservableIDs
			a.usage += res.Usage[i]
			a.backlog += res.NodeNetStats[i].QueueDelay.Seconds()
			a.jf += res.Run.JitterFreeShare(&res.Run.Nodes[i], 10*time.Second)
		}
		t.Logf("=== %s ===", proto)
		streamSecs := res.Config.StreamDuration().Seconds()
		for cl, a := range classes {
			nf := float64(a.n)
			t.Logf("%8s n=%2d servedMbps=%.2f proposes/s=%.0f retx=%.0f dups=%.0f unsv=%.0f usage=%.2f backlog=%.1fs jf@10s=%.2f",
				cl, a.n,
				float64(a.served)/nf*1365*8/streamSecs/1e6,
				float64(a.proposed)/nf/streamSecs,
				float64(a.retx)/nf, float64(a.dups)/nf, float64(a.unsv)/nf,
				a.usage/nf, a.backlog/nf, a.jf/nf)
		}
		var lagSum float64
		for i := 1; i < cfg.Nodes; i++ {
			lagSum += metrics.Seconds(res.Run.MinLagForJitterFree(&res.Run.Nodes[i], 0.01))
		}
		t.Logf("mean min-lag(<=1%% jitter) = %.1fs; giveups: see above", lagSum/float64(cfg.Nodes-1))
	}
}

package scenario

import (
	"testing"
	"time"

	"repro/internal/misbehave"
	"repro/internal/netem"
	"repro/internal/wire"
)

func TestAdversaryConfigValidation(t *testing.T) {
	base := func() Config {
		cfg := deterministicBase(1)
		cfg.Adversary = &AdversarySpec{FreeriderFraction: 0.1}
		return cfg
	}
	cfg := base()
	cfg.Protocol = StaticTree
	if _, err := Run(cfg); err == nil {
		t.Error("adversary with the static tree accepted")
	}
	cfg = base()
	cfg.Protocol = StandardGossip
	cfg.Adversary.LiarFraction = 0.1
	if _, err := Run(cfg); err == nil {
		t.Error("capability liars without HEAP accepted")
	}
	cfg = base()
	cfg.Adversary.FreeriderFraction = 1.2
	if _, err := Run(cfg); err == nil {
		t.Error("freerider fraction above 1 accepted")
	}
	cfg = base()
	cfg.Adversary.FreeriderFraction = 0.5
	cfg.Adversary.DropperFraction = 0.6
	if _, err := Run(cfg); err == nil {
		t.Error("adversary fractions summing past 1 accepted")
	}
	cfg = base()
	cfg.Adversary.Intensity = 1.5
	if _, err := Run(cfg); err == nil {
		t.Error("intensity above 1 accepted")
	}
	cfg = base()
	cfg.Adversary.LiarFactor = 0.5
	if _, err := Run(cfg); err == nil {
		t.Error("liar factor below 1 accepted")
	}
	cfg = base()
	cfg.Adversary.Detect = &misbehave.Config{ServeRatioFloor: 0.9, ReleaseRatio: 0.8}
	if _, err := Run(cfg); err == nil {
		t.Error("release ratio below the quarantine floor accepted")
	}
}

// adversaryBase is the reduced-scale adversarial configuration: HEAP on the
// paper's most skewed distribution, mid-length stream. (The full-scale A/B
// is the `adversary` report artifact.)
func adversaryBase(seed int64) Config {
	return Config{
		Nodes:    120,
		Protocol: HEAP,
		Dist:     MS691,
		Windows:  24,
		Seed:     seed,
		Drain:    40 * time.Second,
	}
}

// TestAdversaryFreeriderDetection is the scenario-level acceptance check
// (repeated at paper scale in the committed artifact): with 10% freeriders,
// armed detectors quarantine at least 90% of them within the run, convict
// no honest node, and hand honest nodes their jitter-free delivery back to
// within 2 points of the no-adversary baseline.
func TestAdversaryFreeriderDetection(t *testing.T) {
	honest, err := Run(adversaryBase(7))
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := adversaryBase(7)
	cfgOff.Adversary = &AdversarySpec{FreeriderFraction: 0.1}
	off, err := Run(cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	cfgOn := adversaryBase(7)
	cfgOn.Adversary = &AdversarySpec{FreeriderFraction: 0.1, Detect: &misbehave.Config{}}
	on, err := Run(cfgOn)
	if err != nil {
		t.Fatal(err)
	}

	stats := on.AdversaryStats
	if stats == nil {
		t.Fatal("adversarial run returned no AdversaryStats")
	}
	if !stats.DetectorArmed || stats.HonestDetectors == 0 {
		t.Fatalf("detectors not armed: %+v", stats)
	}
	fr := stats.Classes[0]
	if fr.Class != "freerider" || fr.Nodes == 0 {
		t.Fatalf("freerider class stats missing: %+v", stats.Classes)
	}
	if fr.DetectionRate < 0.9 {
		t.Errorf("freerider detection rate %.2f (%d/%d), want >= 0.9",
			fr.DetectionRate, fr.Detected, fr.Nodes)
	}
	if stats.FalsePositives != 0 {
		t.Errorf("%d false positives on the honest cohort: %v",
			stats.FalsePositives, stats.FalsePositiveIDs)
	}
	for _, id := range stats.Freeriders {
		if at := stats.FirstQuorumSec[id]; at >= 0 && fr.MeanLatencySec < 0 {
			t.Errorf("freerider %d detected at %.1fs but mean latency is negative", id, at)
		}
	}

	// The detector-off arm must measure the damage, not fix it; armed
	// detectors must recover honest delivery to near the honest baseline.
	lag := 10 * time.Second
	hJF, offJF, onJF := honest.HonestJitterFree(lag), off.HonestJitterFree(lag), on.HonestJitterFree(lag)
	if off.AdversaryStats == nil || off.AdversaryStats.DetectorArmed {
		t.Fatal("detector-off arm is mislabeled")
	}
	if off.AdversaryStats.QuarantineEvents != 0 {
		t.Errorf("observe-only detectors issued %d quarantines", off.AdversaryStats.QuarantineEvents)
	}
	if onJF < hJF-0.02 {
		t.Errorf("honest jitter-free share with detector on = %.4f, want within 0.02 of honest baseline %.4f (detector off: %.4f)",
			onJF, hJF, offJF)
	}
	if stats.DroppedRequests == 0 {
		t.Error("freeriders dropped no requests; the adversary never engaged")
	}
}

// TestAdversaryDropperDetection checks the unresponsiveness rule: full
// droppers never request and never propose, so the honest cohort convicts
// them, again with a clean honest cohort.
func TestAdversaryDropperDetection(t *testing.T) {
	cfg := adversaryBase(13)
	cfg.Adversary = &AdversarySpec{DropperFraction: 0.1, Detect: &misbehave.Config{}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := res.AdversaryStats
	dr := stats.Classes[2]
	if dr.Class != "dropper" || dr.Nodes == 0 {
		t.Fatalf("dropper class stats missing: %+v", stats.Classes)
	}
	if dr.DetectionRate < 0.9 {
		t.Errorf("dropper detection rate %.2f (%d/%d), want >= 0.9",
			dr.DetectionRate, dr.Detected, dr.Nodes)
	}
	if stats.FalsePositives != 0 {
		t.Errorf("%d false positives: %v", stats.FalsePositives, stats.FalsePositiveIDs)
	}
	if stats.DroppedProposes == 0 {
		t.Error("droppers dropped no proposals; the adversary never engaged")
	}
}

// TestAdversaryLiarPenalty checks the liar path end to end: liars
// over-advertise (visible in Result.AdvertisedKbps), and armed detectors
// convict a meaningful share of them through the serve-deficit rule — a
// liar's real uplink cannot carry the serve load its inflated fanout
// attracts, so requests to it time out.
func TestAdversaryLiarPenalty(t *testing.T) {
	cfg := adversaryBase(17)
	cfg.Adversary = &AdversarySpec{LiarFraction: 0.1, Detect: &misbehave.Config{}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := res.AdversaryStats
	if len(stats.Liars) == 0 {
		t.Fatal("no liars materialized")
	}
	for _, id := range stats.Liars {
		if res.AdvertisedKbps[id] <= res.CapsKbps[id] {
			t.Fatalf("liar %d advertises %d <= real %d", id, res.AdvertisedKbps[id], res.CapsKbps[id])
		}
	}
	if stats.FalsePositives != 0 {
		t.Errorf("%d false positives: %v", stats.FalsePositives, stats.FalsePositiveIDs)
	}
}

// TestAdversaryObserveOnly pins the detector-off contract: evidence and the
// anonymity probe work, but no verdicts are ever issued and the protocol
// statistics carry no quarantine side effects.
func TestAdversaryObserveOnly(t *testing.T) {
	cfg := adversaryBase(19)
	cfg.Windows = 8
	cfg.Adversary = &AdversarySpec{FreeriderFraction: 0.1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := res.AdversaryStats
	if stats.DetectorArmed {
		t.Fatal("nil Detect armed the detector")
	}
	if stats.QuarantineEvents != 0 || stats.ReleaseEvents != 0 || stats.ProposesIgnored != 0 {
		t.Errorf("observe-only run has verdict side effects: %+v", stats)
	}
	for i, at := range stats.FirstQuorumSec {
		if at != -1 {
			t.Fatalf("node %d reached quorum in an observe-only run", i)
		}
	}
	if len(stats.Localization) == 0 {
		t.Error("observe-only run lost the anonymity probe")
	}
	if len(stats.Evidence) == 0 {
		t.Error("observe-only run collected no evidence")
	}
}

// TestAdversaryHonestDegradedFalsePositives is the satellite's FP bound on
// an honest-but-degraded cohort: no adversaries at all, but the
// captrace-silent profile drops real capacity out from under a fifth of
// the nodes mid-run. Late serves must exonerate them — the armed detector
// must convict no one.
func TestAdversaryHonestDegradedFalsePositives(t *testing.T) {
	cfg := adversaryBase(23)
	p, err := netem.Profile("captrace-silent")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Netem = &p
	cfg.DegradedFraction = 0.2
	cfg.DegradedFactor = 0.35
	cfg.Adversary = &AdversarySpec{Detect: &misbehave.Config{}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := res.AdversaryStats
	if stats.FalsePositives != 0 {
		t.Errorf("honest-but-degraded cohort produced %d false positives: %v",
			stats.FalsePositives, stats.FalsePositiveIDs)
	}
	for _, cs := range stats.Classes {
		if cs.Nodes != 0 {
			t.Fatalf("adversary class %s materialized without a fraction", cs.Class)
		}
	}
}

// TestAdversaryLocalizationProbe checks the observer-coalition estimator's
// basic shape: probabilities are well-formed, the largest coalition
// localizes at least as well as the smallest (within trial noise), and the
// probe is a pure function of the seed.
func TestAdversaryLocalizationProbe(t *testing.T) {
	cfg := adversaryBase(29)
	cfg.Windows = 8
	cfg.Adversary = &AdversarySpec{FreeriderFraction: 0.05,
		CoalitionSizes: []int{1, 4, 16, 64}, CoalitionTrials: 100}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loc := res.AdversaryStats.Localization
	if len(loc) != 4 {
		t.Fatalf("%d localization points, want 4", len(loc))
	}
	for _, pt := range loc {
		if pt.Probability < 0 || pt.Probability > 1 || pt.Hits > pt.Trials {
			t.Fatalf("malformed localization point %+v", pt)
		}
	}
	if loc[len(loc)-1].Probability < loc[0].Probability-0.05 {
		t.Errorf("localization got worse with more observers: %v", loc)
	}
	if loc[len(loc)-1].Probability == 0 {
		t.Error("a 64-observer coalition never localized the source; the probe looks inert")
	}

	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range loc {
		if *(&loc[i]) != again.AdversaryStats.Localization[i] {
			t.Fatalf("localization probe is not deterministic: %+v vs %+v",
				loc[i], again.AdversaryStats.Localization[i])
		}
	}
}

// TestAdversarySleeperOnset checks onset gating: adversaries that turn
// mid-run are honest before onset (no drops, no verdicts) and detected
// after it.
func TestAdversarySleeperOnset(t *testing.T) {
	cfg := adversaryBase(31)
	cfg.Adversary = &AdversarySpec{FreeriderFraction: 0.1, Onset: 20 * time.Second,
		Detect: &misbehave.Config{}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := res.AdversaryStats
	for _, id := range stats.Freeriders {
		if at := stats.FirstQuorumSec[id]; at >= 0 && at < 20 {
			t.Fatalf("freerider %d reached quorum at %.1fs, before its %.0fs onset", id, at, 20.0)
		}
	}
	fr := stats.Classes[0]
	if fr.DetectedEver == 0 {
		t.Error("no sleeper freerider was ever detected after onset")
	}
	if stats.FalsePositives != 0 {
		t.Errorf("%d false positives: %v", stats.FalsePositives, stats.FalsePositiveIDs)
	}
}

// TestAdversaryMaterializationDeterminism pins that the class assignment is
// a pure function of the seed, disjoint across classes, sorted, and never
// touches a source.
func TestAdversaryMaterializationDeterminism(t *testing.T) {
	cfg := adversaryBase(37)
	cfg.Windows = 2
	cfg.Adversary = &AdversarySpec{FreeriderFraction: 0.1, LiarFraction: 0.1, DropperFraction: 0.1}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[wire.NodeID]bool{}
	for si, set := range [][]wire.NodeID{
		a.AdversaryStats.Freeriders, a.AdversaryStats.Liars, a.AdversaryStats.Droppers,
	} {
		bSet := [][]wire.NodeID{
			b.AdversaryStats.Freeriders, b.AdversaryStats.Liars, b.AdversaryStats.Droppers,
		}[si]
		if len(set) != len(bSet) {
			t.Fatalf("class %d sizes differ across repeats", si)
		}
		for i, id := range set {
			if id != bSet[i] {
				t.Fatalf("class %d differs across repeats: %v vs %v", si, set, bSet)
			}
			if i > 0 && set[i-1] >= id {
				t.Fatalf("class %d not sorted ascending: %v", si, set)
			}
			if seen[id] {
				t.Fatalf("node %d in two adversary classes", id)
			}
			seen[id] = true
			if id == 0 {
				t.Fatal("the source was made adversarial")
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no adversaries materialized")
	}
}

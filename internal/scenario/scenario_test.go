package scenario

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/churn"
	"repro/internal/metrics"
	"repro/internal/stream"
)

func TestDistributionFractionsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []*ClassDistribution{Ref691, Ref724, MS691} {
		for _, n := range []int{269, 100, 40, 7} {
			caps := d.Assign(n, rng)
			if len(caps) != n {
				t.Fatalf("%s: assigned %d, want %d", d.Name(), len(caps), n)
			}
			counts := map[uint32]int{}
			for _, c := range caps {
				counts[c]++
			}
			for _, cl := range d.Classes {
				want := cl.Fraction * float64(n)
				got := float64(counts[cl.Kbps])
				if math.Abs(got-want) > 1.0 {
					t.Fatalf("%s n=%d class %s: %v nodes, want ~%.1f",
						d.Name(), n, cl.Name, got, want)
				}
			}
		}
	}
}

func TestDistributionMeans(t *testing.T) {
	// Table 1: ref-691 and ms-691 average 691 kbps, ref-724 averages 724.
	// The paper's class fractions yield means a few kbps below the stated
	// averages (686.4, 717.3, 685.2) — paper rounding; allow +-8 kbps.
	if m := Ref691.MeanKbps(); math.Abs(m-691) > 8 {
		t.Errorf("ref-691 mean %.1f, want ~691", m)
	}
	if m := Ref724.MeanKbps(); math.Abs(m-724) > 8 {
		t.Errorf("ref-724 mean %.1f, want ~724", m)
	}
	if m := MS691.MeanKbps(); math.Abs(m-691) > 8 {
		t.Errorf("ms-691 mean %.1f, want ~691", m)
	}
	if m := Uniform691.MeanKbps(); math.Abs(m-691) > 1 {
		t.Errorf("uniform-691 mean %.1f, want 691", m)
	}
	// CSR (capability supply ratio) over the 600 kbps effective rate.
	g := stream.PaperGeometry()
	eff := float64(g.EffectiveRateBps()) / 1000
	if csr := Ref691.MeanKbps() / eff; math.Abs(csr-1.15) > 0.01 {
		t.Errorf("ref-691 CSR %.3f, want 1.15", csr)
	}
	if csr := Ref724.MeanKbps() / eff; math.Abs(csr-1.20) > 0.01 {
		t.Errorf("ref-724 CSR %.3f, want 1.20", csr)
	}
}

func TestDistributionClassOf(t *testing.T) {
	if got := MS691.ClassOf(512); got != "512kbps" {
		t.Errorf("ClassOf(512) = %q", got)
	}
	if got := MS691.ClassOf(9999); got == "" {
		t.Errorf("unknown capability got empty label")
	}
	if got := Uniform691.ClassOf(700); got != "uniform" {
		t.Errorf("uniform ClassOf = %q", got)
	}
}

func TestUniformAssignBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	caps := Uniform691.Assign(1000, rng)
	var sum float64
	for _, c := range caps {
		if c < Uniform691.MinKbps || c > Uniform691.MaxKbps {
			t.Fatalf("capability %d outside [%d,%d]", c, Uniform691.MinKbps, Uniform691.MaxKbps)
		}
		sum += float64(c)
	}
	mean := sum / float64(len(caps))
	if math.Abs(mean-691)/691 > 0.05 {
		t.Fatalf("uniform sample mean %.1f, want ~691", mean)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Nodes: 2, Dist: Ref691}); err == nil {
		t.Error("2 nodes accepted")
	}
	if _, err := Run(Config{Nodes: 10}); err == nil {
		t.Error("missing distribution accepted")
	}
	if _, err := Run(Config{Nodes: 10, Dist: Ref691, Protocol: "bogus"}); err == nil {
		t.Error("bogus protocol accepted")
	}
	// An inverted latency range is an error, not a simnet panic.
	if _, err := Run(Config{Nodes: 10, Dist: Ref691,
		LatencyMin: 100 * time.Millisecond, LatencyMax: 10 * time.Millisecond}); err == nil {
		t.Error("inverted latency range accepted")
	}
	// Min alone is the historical "constant base latency" config and must
	// keep working (Max defaults to Min).
	cfg := Config{Nodes: 10, Dist: Ref691, LatencyMin: 50 * time.Millisecond}
	if err := cfg.applyDefaults(); err != nil {
		t.Errorf("Min-only latency rejected: %v", err)
	}
	if cfg.LatencyMax != 50*time.Millisecond {
		t.Errorf("Min-only latency: Max = %v, want 50ms", cfg.LatencyMax)
	}
}

// smallGeometry shrinks windows (and thus stream duration per window) for
// cheap functional tests. Congestion tests must NOT use it: a ~3 s stream
// never builds up queue backlog — use the paper geometry with several
// windows instead.
func smallGeometry() stream.Geometry {
	g := stream.PaperGeometry()
	g.DataPerWindow = 20
	g.ParityPerWindow = 2
	return g
}

func TestUnconstrainedRunDeliversQuickly(t *testing.T) {
	res, err := Run(Config{
		Name:          "unconstrained",
		Nodes:         60,
		Unconstrained: true,
		Windows:       10,
		Geometry:      smallGeometry(),
		Seed:          1,
		StreamStart:   time.Second,
		Drain:         20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	lags := res.Run.PerNode(func(n *metrics.NodeRecord) float64 {
		return metrics.Seconds(res.Run.LagForDeliveryRatio(n, 0.99))
	})
	cdf := metrics.NewCDF(lags)
	// Without bandwidth constraints gossip delivers 99% of the stream to
	// the median node within a couple of seconds (Figure 1's shape).
	if p50 := cdf.ValueAtPercentile(50); p50 > 3 {
		t.Fatalf("median lag@99%% = %.2fs, want < 3s unconstrained", p50)
	}
	if p90 := cdf.ValueAtPercentile(90); math.IsInf(p90, 1) {
		t.Fatalf("10%% of nodes never reached 99%% delivery unconstrained")
	}
}

func TestVerifyPayloadsEndToEnd(t *testing.T) {
	// Full pipeline incl. FEC reconstruction and payload verification.
	res, err := Run(Config{
		Name:           "verify",
		Nodes:          30,
		Unconstrained:  true,
		Windows:        5,
		Geometry:       smallGeometry(),
		Seed:           2,
		StreamStart:    time.Second,
		Drain:          20 * time.Second,
		VerifyPayloads: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyFailures != 0 {
		t.Fatalf("%d payload verification failures", res.VerifyFailures)
	}
	// 29 receivers x 5 windows, minus the handful a node may miss.
	if res.DecodedWindows < 25*5 {
		t.Fatalf("only %d windows decoded end-to-end", res.DecodedWindows)
	}
}

func TestHEAPEqualizesBandwidthUsage(t *testing.T) {
	// Figure 4b: standard gossip leaves 3 Mbps nodes underused while HEAP
	// pushes their utilization close to the rest. The two runs go through
	// the sweep engine — parallel on multi-core machines, and a controlled
	// comparison thanks to PairedSeeds (both protocols see the same seed).
	if testing.Short() {
		t.Skip("two 180-node runs (~4 s serial)")
	}
	sweep, err := RunSweep(Sweep{
		Base: Config{
			Nodes:       180,
			Dist:        MS691,
			Windows:     15,
			StreamStart: 5 * time.Second,
			Drain:       20 * time.Second,
		},
		Protocols:   []Protocol{StandardGossip, HEAP},
		BaseSeed:    4,
		PairedSeeds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stdRes := sweep.Cells[0].Runs[0]
	heapRes := sweep.Cells[1].Runs[0]
	usageByClass := func(res *Result, class string) float64 {
		var sum float64
		var n int
		for i := 1; i < len(res.CapsKbps); i++ {
			if res.Config.Dist.ClassOf(res.CapsKbps[i]) == class {
				sum += res.Usage[i]
				n++
			}
		}
		return sum / float64(n)
	}
	stdRich := usageByClass(stdRes, "3Mbps")
	heapRich := usageByClass(heapRes, "3Mbps")
	t.Logf("3Mbps-class utilization: std=%.3f heap=%.3f", stdRich, heapRich)
	if heapRich < stdRich*1.3 {
		t.Fatalf("HEAP rich utilization %.3f not clearly above standard %.3f", heapRich, stdRich)
	}
}

func TestHEAPFinalEstimatesAccurate(t *testing.T) {
	res, err := Run(Config{
		Nodes:       90,
		Dist:        MS691,
		Protocol:    HEAP,
		Windows:     4,
		Geometry:    smallGeometry(),
		Seed:        5,
		StreamStart: 5 * time.Second,
		Drain:       10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := MS691.MeanKbps()
	for i := 1; i < len(res.EstimatesKbps); i++ {
		got := res.EstimatesKbps[i]
		if math.Abs(got-want)/want > 0.25 {
			t.Fatalf("node %d bbar estimate %.0f, true mean %.0f", i, got, want)
		}
	}
}

func TestChurnRunSurvivorsRecover(t *testing.T) {
	res, err := Run(Config{
		Nodes:    80,
		Dist:     Ref691,
		Protocol: HEAP,
		Windows:  12,
		Geometry: smallGeometry(),
		Seed:     6,
		Churn: &churn.Catastrophic{
			At:         20 * time.Second,
			Fraction:   0.2,
			NotifyMean: 5 * time.Second,
		},
		StreamStart: 5 * time.Second,
		Drain:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Victims), 16; got != want {
		t.Fatalf("victims = %d, want %d", got, want)
	}
	cov := res.Run.PerWindowCoverage(15 * time.Second)
	// Late windows (published well after the failure) should be decodable
	// by ~all survivors: coverage ~ (1 - fraction).
	last := cov[len(cov)-1]
	if last < 0.70 {
		t.Fatalf("last-window coverage %.3f, want >= 0.70 (80%% survivors)", last)
	}
	// And the source must never be a victim.
	for _, v := range res.Victims {
		if v == 0 {
			t.Fatal("source was killed despite protection")
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := Config{
		Nodes:       40,
		Dist:        Ref691,
		Protocol:    HEAP,
		Windows:     3,
		Geometry:    smallGeometry(),
		Seed:        7,
		StreamStart: 2 * time.Second,
		Drain:       10 * time.Second,
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.NetStats != r2.NetStats {
		t.Fatalf("network stats differ between identical runs:\n%+v\n%+v", r1.NetStats, r2.NetStats)
	}
	for i := range r1.Run.Nodes {
		a, b := r1.Run.Nodes[i].Recv, r2.Run.Nodes[i].Recv
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("node %d packet %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestSourceBiasSampler(t *testing.T) {
	caps := []uint32{0, 3000, 3000, 100, 100, 100, 100, 100, 100, 100}
	dirView := viewForTest(t, 0, 10)
	s := newBiasedSampler(dirView, caps)
	rng := rand.New(rand.NewSource(8))
	counts := map[int]int{}
	for trial := 0; trial < 3000; trial++ {
		for _, p := range s.SelectPeers(rng, 2) {
			counts[int(p)]++
		}
	}
	// Rich nodes (1,2) must be selected far more often than poor ones.
	richMean := float64(counts[1]+counts[2]) / 2
	poorMean := float64(counts[3]+counts[4]+counts[5]) / 3
	if richMean < 4*poorMean {
		t.Fatalf("bias too weak: rich %.0f vs poor %.0f", richMean, poorMean)
	}
	// Oversized k returns the whole view.
	if got := s.SelectPeers(rng, 100); len(got) != 9 {
		t.Fatalf("oversized k returned %d peers", len(got))
	}
}

func TestStreamDurationMatchesGeometry(t *testing.T) {
	cfg := Config{Nodes: 10, Dist: Ref691, Windows: 3, Geometry: smallGeometry()}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	g := cfg.Geometry
	want := time.Duration(3*g.DataPerWindow-1) * g.Interval()
	if got := cfg.StreamDuration(); got != want {
		t.Fatalf("stream duration %v, want %v", got, want)
	}
}

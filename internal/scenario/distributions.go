// Package scenario assembles full experiment runs: the upload-capability
// distributions of Table 1, the node/protocol wiring, churn injection, and
// the collection of every measurement the paper's figures and tables need.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"
)

// Class is one capability class of a Table 1 distribution.
type Class struct {
	Name     string
	Kbps     uint32
	Fraction float64
}

// Distribution assigns upload capabilities to nodes.
type Distribution interface {
	// Name identifies the distribution (e.g. "ref-691").
	Name() string
	// Assign returns per-node capabilities in kbps, shuffled with rng.
	Assign(n int, rng *rand.Rand) []uint32
	// ClassOf labels a capability for per-class reporting.
	ClassOf(kbps uint32) string
	// MeanKbps returns the distribution's expected mean capability.
	MeanKbps() float64
}

// ClassDistribution is a discrete distribution over capability classes.
type ClassDistribution struct {
	DistName string
	Classes  []Class
}

var _ Distribution = (*ClassDistribution)(nil)

// Name implements Distribution.
func (d *ClassDistribution) Name() string { return d.DistName }

// Assign implements Distribution using largest-remainder apportionment, so
// class fractions are hit exactly (up to integer rounding) for any n, then a
// shuffle assigns classes to node ids.
func (d *ClassDistribution) Assign(n int, rng *rand.Rand) []uint32 {
	counts := make([]int, len(d.Classes))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(d.Classes))
	total := 0
	for i, c := range d.Classes {
		exact := c.Fraction * float64(n)
		counts[i] = int(exact)
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
		total += counts[i]
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].idx < rems[j].idx
	})
	for k := 0; total < n; k++ {
		counts[rems[k%len(rems)].idx]++
		total++
	}
	out := make([]uint32, 0, n)
	for i, c := range d.Classes {
		for j := 0; j < counts[i]; j++ {
			out = append(out, c.Kbps)
		}
	}
	out = out[:n]
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ClassOf implements Distribution.
func (d *ClassDistribution) ClassOf(kbps uint32) string {
	for _, c := range d.Classes {
		if c.Kbps == kbps {
			return c.Name
		}
	}
	return fmt.Sprintf("%dkbps", kbps)
}

// MeanKbps implements Distribution.
func (d *ClassDistribution) MeanKbps() float64 {
	var m float64
	for _, c := range d.Classes {
		m += c.Fraction * float64(c.Kbps)
	}
	return m
}

// UniformDistribution draws capabilities uniformly from [MinKbps, MaxKbps]
// (dist2 of Figure 2: a uniform distribution with the same 691 kbps mean as
// ms-691; the paper does not give its bounds, we use 256-1126 kbps).
type UniformDistribution struct {
	DistName         string
	MinKbps, MaxKbps uint32
}

var _ Distribution = (*UniformDistribution)(nil)

// Name implements Distribution.
func (d *UniformDistribution) Name() string { return d.DistName }

// Assign implements Distribution.
func (d *UniformDistribution) Assign(n int, rng *rand.Rand) []uint32 {
	out := make([]uint32, n)
	span := int64(d.MaxKbps - d.MinKbps)
	for i := range out {
		out[i] = d.MinKbps + uint32(rng.Int63n(span+1))
	}
	return out
}

// ClassOf implements Distribution: uniform draws share one reporting bucket.
func (d *UniformDistribution) ClassOf(uint32) string { return "uniform" }

// MeanKbps implements Distribution.
func (d *UniformDistribution) MeanKbps() float64 {
	return (float64(d.MinKbps) + float64(d.MaxKbps)) / 2
}

// Table 1 distributions plus the unconstrained and uniform settings used in
// Figures 1 and 2.
var (
	// Ref691 is ref-691: CSR 1.15, mean 691 kbps.
	Ref691 = &ClassDistribution{DistName: "ref-691", Classes: []Class{
		{Name: "2Mbps", Kbps: 2000, Fraction: 0.10},
		{Name: "768kbps", Kbps: 768, Fraction: 0.50},
		{Name: "256kbps", Kbps: 256, Fraction: 0.40},
	}}
	// Ref724 is ref-724: CSR 1.20, mean 724 kbps.
	Ref724 = &ClassDistribution{DistName: "ref-724", Classes: []Class{
		{Name: "2Mbps", Kbps: 2000, Fraction: 0.15},
		{Name: "768kbps", Kbps: 768, Fraction: 0.39},
		{Name: "256kbps", Kbps: 256, Fraction: 0.46},
	}}
	// MS691 is ms-691 (dist1 of the introduction): CSR 1.15, mean 691 kbps,
	// most skewed — 85% of nodes below the stream rate.
	MS691 = &ClassDistribution{DistName: "ms-691", Classes: []Class{
		{Name: "3Mbps", Kbps: 3000, Fraction: 0.05},
		{Name: "1Mbps", Kbps: 1000, Fraction: 0.10},
		{Name: "512kbps", Kbps: 512, Fraction: 0.85},
	}}
	// Uniform691 is dist2 of Figure 2: uniform with the same 691 kbps mean.
	Uniform691 = &UniformDistribution{DistName: "uniform-691", MinKbps: 256, MaxKbps: 1126}
)

// Distributions indexes the named distributions.
var Distributions = map[string]Distribution{
	Ref691.Name():     Ref691,
	Ref724.Name():     Ref724,
	MS691.Name():      MS691,
	Uniform691.Name(): Uniform691,
}

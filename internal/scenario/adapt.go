package scenario

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/metrics"
)

// This file wires internal/adapt into the scenario layer: per-node
// controller construction during node build (scenario.go), result
// collection (AdaptStats), and the config validation shared by runs and
// sweeps. The controller itself lives in internal/adapt and the engine-side
// sampling in internal/core; here we only decide *who* adapts (every
// constrained non-source node) and *what* each controller observes (the
// simulator's per-node uplink queue).

// AdaptStats carries the adaptation outcomes of one run (nil when
// Config.Adapt is unset). Slices are indexed by node id; nodes without a
// controller (sources, unconstrained nodes) have zero entries and nil
// traces.
type AdaptStats struct {
	// ConfiguredKbps is each controller's ceiling: the capability the node
	// advertised at start (freeriders' under-claims included).
	ConfiguredKbps []uint32
	// EffectiveKbps is each controller's final effective capability.
	EffectiveKbps []uint32
	// Traces holds each node's re-advertisement history in time order.
	Traces [][]adapt.Readvertisement
	// Readvertisements totals the re-advertisement events across all nodes.
	Readvertisements int
}

// CapRatioCDF returns the distribution over adapted nodes of the final
// effective-to-configured capability ratio — 1.0 for nodes that never shed
// (or fully recovered) their advertisement, lower for nodes the controller
// is still holding below their claim at run end.
func (a *AdaptStats) CapRatioCDF() metrics.CDF {
	vals := make([]float64, 0, len(a.EffectiveKbps))
	for i, eff := range a.EffectiveKbps {
		if eff == 0 || a.ConfiguredKbps[i] == 0 {
			continue
		}
		vals = append(vals, float64(eff)/float64(a.ConfiguredKbps[i]))
	}
	return metrics.NewCDF(vals)
}

// AdaptedNodes counts the nodes that ran a controller.
func (a *AdaptStats) AdaptedNodes() int {
	n := 0
	for _, eff := range a.EffectiveKbps {
		if eff != 0 {
			n++
		}
	}
	return n
}

// validateAdapt checks the adaptation knobs against the rest of the config.
// Called from applyDefaults.
func (c *Config) validateAdapt() error {
	if c.Adapt == nil {
		return nil
	}
	if err := c.Adapt.Validate(); err != nil {
		return err
	}
	if c.Unconstrained {
		return fmt.Errorf("scenario: Adapt requires constrained uploads (there is no uplink queue to observe)")
	}
	if c.Protocol == StaticTree {
		return fmt.Errorf("scenario: Adapt requires a gossip protocol (the static tree has no engine)")
	}
	return nil
}

// collectAdaptStats folds the per-node controllers into the result record.
func collectAdaptStats(controllers []*adapt.Controller) *AdaptStats {
	stats := &AdaptStats{
		ConfiguredKbps: make([]uint32, len(controllers)),
		EffectiveKbps:  make([]uint32, len(controllers)),
		Traces:         make([][]adapt.Readvertisement, len(controllers)),
	}
	for i, ctrl := range controllers {
		if ctrl == nil {
			continue
		}
		stats.ConfiguredKbps[i] = ctrl.ConfiguredKbps()
		stats.EffectiveKbps[i] = ctrl.EffectiveKbps()
		stats.Traces[i] = ctrl.Trace()
		stats.Readvertisements += ctrl.Readvertisements()
	}
	return stats
}

package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/adapt"
	"repro/internal/aggregation"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/misbehave"
	"repro/internal/netem"
	"repro/internal/simnet"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/tree"
	"repro/internal/wire"
)

// Protocol selects the dissemination protocol under test.
type Protocol string

// The protocols under evaluation: the paper's two gossip protocols plus
// the static-tree baseline its introduction dismisses.
const (
	StandardGossip Protocol = "standard" // Algorithm 1, fixed fanout
	HEAP           Protocol = "heap"     // Algorithm 2, capability-adaptive fanout
	StaticTree     Protocol = "tree"     // k-ary push tree, no repair (intro baseline)
)

// Config fully describes one experiment run. The zero value of most fields
// selects the paper's §3.1 parameters.
type Config struct {
	// Name labels the run in reports.
	Name string
	// Nodes is the system size including the source. Default 270.
	Nodes int
	// Protocol selects standard gossip or HEAP. Default StandardGossip.
	Protocol Protocol
	// Fanout is fbar. Default 7 (§3.1).
	Fanout float64
	// MaxFanout clamps HEAP's adapted fanout. Default 64.
	MaxFanout int
	// Dist assigns upload capabilities. Required unless Unconstrained.
	Dist Distribution
	// Unconstrained disables upload caps entirely (Figure 1).
	Unconstrained bool
	// Windows is the stream length in FEC windows. Default 31 (~60 s).
	Windows int
	// Geometry is the stream geometry. Default stream.PaperGeometry().
	Geometry stream.Geometry
	// Streams configures multi-source operation: K concurrent broadcasters
	// sharing one membership view, one capability aggregation layer, and
	// each node's upload budget. Empty (the default) runs the paper's
	// single stream (stream 0 from node 0). See StreamSpec for per-stream
	// defaults; Windows/Geometry/StreamStart act as the specs' fallbacks.
	// Source nodes get SourceCapKbps and do not adapt their fanout (they
	// are the paper's well-provisioned broadcasters). Incompatible with
	// StaticTree.
	Streams []StreamSpec
	// Seed drives all randomness.
	Seed int64
	// StreamStart delays the source, letting aggregation warm up.
	// Default 5 s.
	StreamStart time.Duration
	// Drain keeps the run going after the last packet so that stragglers
	// and offline metrics settle. Default 60 s.
	Drain time.Duration

	// GossipPeriod is Algorithm 1's round period. Default 200 ms.
	GossipPeriod time.Duration
	// RetPeriod is the retransmission timeout. Default 5 s (see
	// core.Config.RetPeriod for why it must exceed congestion transients).
	RetPeriod time.Duration
	// RetMaxAttempts bounds request attempts per id. Default 2.
	RetMaxAttempts int
	// RetSameProposer switches retransmission to the paper-literal
	// same-proposer policy (ablation; see core.Config.RetSameProposer).
	RetSameProposer bool

	// AggPeriod / AggFanout / AggFreshestK parameterize the aggregation
	// protocol (HEAP only). Defaults: 200 ms, 1 peer, 10 entries (§3.1).
	AggPeriod    time.Duration
	AggFanout    int
	AggFreshestK int
	// AggTrackLimit caps each estimator's dense capability table to node
	// ids below the limit (see aggregation.Config.TrackLimit). Capabilities
	// are rng-assigned, so the tracked prefix is an unbiased sample and
	// bbar converges to the same mean; without a limit the per-node tables
	// make aggregation O(n²) system-wide, which is what kept the LargeScale
	// family at 10k. Zero tracks everything.
	AggTrackLimit int

	// LossRate is the per-datagram loss probability. Default 0.1%.
	LossRate float64
	// Netem describes adverse network conditions beyond independent loss:
	// bursty (Gilbert-Elliott) loss, scheduled partitions with heal,
	// latency spikes, asymmetric per-direction degradation, and
	// time-varying capability traces. Nil (the default) keeps the plain
	// LossRate path — run metrics are then byte-identical to a build
	// without netem at all. Stock profiles come from netem.Profile and
	// the Adverse* sweep variants.
	Netem *netem.Config
	// LatencyMin/LatencyMax/LatencyJitter parameterize per-pair one-way
	// delays. Defaults 10 ms / 100 ms / 5 ms. Ignored when Topology is set.
	LatencyMin, LatencyMax, LatencyJitter time.Duration

	// Topology embeds the run in a clustered WAN/LAN geometry
	// (internal/topo): a hash-pure cluster assignment drawn from Seed, with
	// split intra-/inter-cluster latency bands replacing the uniform
	// LatencyMin/Max draw. Inter-cluster traffic is accounted per node
	// (Result.TopoStats), and a configured Netem may target regions
	// (PartitionSpec.Regions, RegionSpikes) so failures fall along the
	// topology's real cuts. Nil (the default) keeps the paper's uniform
	// pairwise latency model — runs are then byte-identical to a build
	// without the topo package.
	Topology *topo.Config
	// FanoutIntra/FanoutInter split each node's gossip fanout budget by
	// locality: every round proposes to FanoutIntra peers of the node's own
	// cluster and FanoutInter peers across cluster boundaries (HEAP still
	// scales both by relative capability). Both zero (the default) keeps
	// the topology-blind protocol even when Topology is set — the knob that
	// separates "clustered network" from "cluster-aware protocol". Requires
	// Topology, full-view membership (not UsePSS), and a gossip protocol.
	FanoutIntra float64
	FanoutInter float64

	// SourceCapKbps is the source's upload capacity; the source must
	// sustain roughly Fanout times the stream rate (every first-hop
	// proposal is pulled). Default 10000 (10 Mbps), mimicking the paper's
	// well-provisioned PlanetLab source.
	SourceCapKbps uint32
	// SourceBias enables the §5 extension: the source's first-hop targets
	// are drawn with probability proportional to advertised capability
	// (oracle knowledge; this is an ablation, not part of HEAP).
	SourceBias bool

	// DegradedFraction of nodes deliver only DegradedFactor of their
	// advertised capability (the overloaded PlanetLab hosts of §3.1; 5-7%
	// in the paper). Defaults 0 / 0.5.
	DegradedFraction float64
	DegradedFactor   float64

	// FreeriderFraction of nodes advertise only FreeriderFactor of their
	// true capability to the aggregation protocol while keeping their full
	// capacity — the §5 freeriding threat: HEAP assigns them a small fanout
	// and they contribute less than their share. Defaults 0 / 0.25.
	FreeriderFraction float64
	FreeriderFactor   float64

	// AdaptPeriod switches HEAP's knob from fanout to gossip period
	// (§5 alternative; ablation). Requires Protocol == HEAP.
	AdaptPeriod bool

	// Adversary injects adversarial node classes — freeriders, capability
	// liars, message droppers — and optionally arms the misbehavior
	// detector on the honest cohort (internal/misbehave). Node sets are
	// drawn deterministically from Seed, like netem's. Nil (the default)
	// runs are byte-identical to a build without the misbehave package.
	// Requires a gossip protocol; liars require HEAP. Results land in
	// Result.AdversaryStats.
	Adversary *AdversarySpec

	// Adapt enables congestion-driven capability re-estimation
	// (internal/adapt): every constrained non-source node runs a controller
	// that observes its real uplink pressure — queue backlog and achieved
	// throughput — and re-advertises an effective capability with
	// hysteresis, closing the loop that netem capability traces only script
	// from the outside. The zero adapt.Config selects the stock policy.
	// Under HEAP the re-advertisement reshapes fanout through the normal
	// aggregation gossip; under standard gossip it only rebalances the
	// multi-stream fanout budget (there is no advertisement to adapt). Nil
	// disables adaptation entirely — runs are then byte-identical to a
	// build without the adapt package. Requires constrained uploads and a
	// gossip protocol. Results land in Result.AdaptStats.
	Adapt *adapt.Config

	// Trace enables dissemination-path tracing (internal/telemetry): every
	// node records sampled per-packet hop events — publish, first request,
	// delivery — through the engine's zero-cost trace hook, rng-free and
	// byte-deterministic under the virtual clock. Hop counts are joined
	// offline from the per-node records (nothing is added to the wire
	// format, so fingerprints of untraced runs are untouched). Requires a
	// gossip protocol (the static tree has no propose/request/serve path).
	// Results land in Result.TraceStats.
	Trace *telemetry.TraceConfig

	// AutoFanout removes the paper's "n known in advance" simplification:
	// every node runs the push-pull averaging protocol ([13], §2.2) to
	// continuously estimate the system size n̂ and derives its fanout base
	// as ln(n̂) + FanoutC instead of the static Fanout.
	AutoFanout bool
	// FanoutC is the additive reliability margin c. Default 1.4 (which
	// gives ln(270)+1.4 ~= 7, the paper's fanout at its scale).
	FanoutC float64

	// TreeDegree is the static tree's arity (StaticTree only). Default 4.
	TreeDegree int
	// TreeCapacityOrder places high-capability nodes near the root
	// (StaticTree only) instead of arbitrary id order.
	TreeCapacityOrder bool

	// UsePSS replaces the full-membership view with a Cyclon-style
	// peer-sampling service (extension): nodes bootstrap from a few random
	// contacts and sample gossip targets from shuffled partial views.
	UsePSS bool
	// PSSViewSize is the partial view size (default 24).
	PSSViewSize int

	// Churn optionally injects a catastrophic failure (§3.6).
	Churn *churn.Catastrophic

	// JoinWaves injects flash-crowd joins (LargeScale family): at each
	// wave's At, Count fresh nodes join the running system and start
	// catching up on the stream. Waves must be sorted by At and finish
	// before the run ends. Nodes is the size at time zero; capability
	// assignment covers initial and wave nodes alike. Incompatible with
	// StaticTree (the tree is built once, up front).
	JoinWaves []JoinWave

	// ChurnBursts injects correlated failure bursts (LargeScale family):
	// at each burst's At, a fraction of the then-alive non-source nodes
	// crash within a short spread. Unlike Churn (one catastrophic event
	// with per-pair notification), bursts notify each survivor once per
	// burst — a failure-detector sweep — which keeps the event count O(n)
	// per burst and therefore viable at tens of thousands of nodes.
	ChurnBursts []ChurnBurst

	// VerifyPayloads makes receivers run full FEC reconstruction and check
	// payload contents (slow; used by integration tests).
	VerifyPayloads bool

	// BacklogProbePeriod samples every node's uplink queue depth at this
	// interval (0 disables). The resulting time series is the paper's
	// §3.6 congestion symptom: "upload queues tend to grow larger".
	BacklogProbePeriod time.Duration

	// Shards is the simulator's shard count (simnet.Config.Shards): the
	// event loop splits across that many cores, exchanging cross-shard
	// traffic at latency-lookahead barriers. Results are byte-identical at
	// every shard count; this is purely a wall-clock knob for the
	// LargeScale family. Default 1 (sequential).
	Shards int

	// FreezesPerNode injects that many random freezes per node across the
	// run (the paper's §3.5 "sporadically, some PlanetLab nodes seem
	// temporarily frozen"); during a freeze, deliveries and timers are
	// deferred. Each freeze lasts uniformly 0.5-1.5x FreezeMeanDuration
	// (default 2 s). 0 disables.
	FreezesPerNode     float64
	FreezeMeanDuration time.Duration
}

func (c *Config) applyDefaults() error {
	if c.Nodes == 0 {
		c.Nodes = 270
	}
	if c.Nodes < 3 {
		return fmt.Errorf("scenario: need at least 3 nodes, got %d", c.Nodes)
	}
	if c.Protocol == "" {
		c.Protocol = StandardGossip
	}
	if c.Protocol != StandardGossip && c.Protocol != HEAP && c.Protocol != StaticTree {
		return fmt.Errorf("scenario: unknown protocol %q", c.Protocol)
	}
	if c.Fanout == 0 {
		c.Fanout = 7
	}
	if c.MaxFanout == 0 {
		c.MaxFanout = 64
	}
	if c.Dist == nil && !c.Unconstrained {
		return fmt.Errorf("scenario: a distribution is required unless Unconstrained")
	}
	if c.Windows == 0 {
		c.Windows = 31
	}
	if c.Geometry == (stream.Geometry{}) {
		c.Geometry = stream.PaperGeometry()
	}
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.StreamStart == 0 {
		c.StreamStart = 5 * time.Second
	}
	if c.Drain == 0 {
		c.Drain = 60 * time.Second
	}
	if c.GossipPeriod == 0 {
		c.GossipPeriod = 200 * time.Millisecond
	}
	if c.RetPeriod == 0 {
		c.RetPeriod = 5 * time.Second
	}
	if c.RetMaxAttempts == 0 {
		c.RetMaxAttempts = 2
	}
	if c.AggPeriod == 0 {
		c.AggPeriod = 200 * time.Millisecond
	}
	if c.AggFanout == 0 {
		c.AggFanout = 1
	}
	if c.AggFreshestK == 0 {
		c.AggFreshestK = 10
	}
	if c.LossRate == 0 {
		c.LossRate = 0.001
	}
	if c.LatencyMin == 0 && c.LatencyMax == 0 {
		c.LatencyMin, c.LatencyMax = 10*time.Millisecond, 100*time.Millisecond
	}
	if c.LatencyMax == 0 {
		// Only Min set: a constant base latency (the behaviour this config
		// always had, now made explicit so it passes simnet's validation).
		c.LatencyMax = c.LatencyMin
	}
	if c.LatencyMin < 0 || c.LatencyMax < c.LatencyMin || c.LatencyJitter < 0 {
		return fmt.Errorf("scenario: invalid latency range [%v, %v] jitter %v",
			c.LatencyMin, c.LatencyMax, c.LatencyJitter)
	}
	if c.LatencyJitter == 0 {
		c.LatencyJitter = 5 * time.Millisecond
	}
	if c.SourceCapKbps == 0 {
		c.SourceCapKbps = 10_000
	}
	if c.DegradedFactor == 0 {
		c.DegradedFactor = 0.5
	}
	if c.FreeriderFactor == 0 {
		c.FreeriderFactor = 0.25
	}
	if c.FreeriderFraction < 0 || c.FreeriderFraction >= 1 {
		return fmt.Errorf("scenario: freerider fraction %v outside [0,1)", c.FreeriderFraction)
	}
	if c.AdaptPeriod && c.Protocol != HEAP {
		return fmt.Errorf("scenario: AdaptPeriod requires the HEAP protocol")
	}
	if c.PSSViewSize == 0 {
		c.PSSViewSize = 24
	}
	if c.TreeDegree == 0 {
		c.TreeDegree = 4
	}
	if c.FanoutC == 0 {
		c.FanoutC = 1.4
	}
	if c.FreezeMeanDuration == 0 {
		c.FreezeMeanDuration = 2 * time.Second
	}
	if c.FreezesPerNode < 0 {
		return fmt.Errorf("scenario: negative freezes per node")
	}
	if c.Netem != nil {
		if err := c.Netem.Validate(); err != nil {
			return err
		}
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
	}
	if c.FanoutIntra < 0 || c.FanoutInter < 0 {
		return fmt.Errorf("scenario: negative split fanout (%v intra, %v inter)",
			c.FanoutIntra, c.FanoutInter)
	}
	if c.FanoutIntra > 0 || c.FanoutInter > 0 {
		if c.Topology == nil {
			return fmt.Errorf("scenario: FanoutIntra/FanoutInter require a Topology")
		}
		if c.UsePSS {
			return fmt.Errorf("scenario: hierarchical fanout requires full-view membership (disable UsePSS)")
		}
		if c.Protocol == StaticTree {
			return fmt.Errorf("scenario: hierarchical fanout requires a gossip protocol")
		}
		if c.SourceBias {
			return fmt.Errorf("scenario: hierarchical fanout is incompatible with SourceBias")
		}
	}
	if c.Trace != nil && c.Protocol == StaticTree {
		return fmt.Errorf("scenario: Trace requires a gossip protocol (the static tree has no propose/request/serve path)")
	}
	if err := c.validateAdapt(); err != nil {
		return err
	}
	if err := c.validateAdversary(); err != nil {
		return err
	}
	if err := c.applyStreamDefaults(); err != nil {
		return err
	}
	return c.validateDynamics()
}

// StreamDuration returns the stream's on-air time.
func (c *Config) StreamDuration() time.Duration {
	last := wire.PacketID(c.Geometry.TotalPackets(c.Windows) - 1)
	return c.Geometry.PublishOffset(last)
}

// Result carries everything measured during one run.
type Result struct {
	Config Config
	// Run holds the delivery records that feed every paper metric; in
	// multi-source runs it is the first stream's record (Run aliases
	// StreamRuns[0]).
	Run *metrics.Run
	// StreamRuns holds one measurement record per stream, in
	// Config.Streams order. Single-stream runs have exactly one entry.
	StreamRuns []*metrics.Run
	// CapsKbps is the true capability per node (source included).
	CapsKbps []uint32
	// AdvertisedKbps is what each node told the aggregation protocol; it
	// differs from CapsKbps only for freeriders.
	AdvertisedKbps []uint32
	// Freeriders marks nodes that under-advertised their capability.
	Freeriders []bool
	// Usage is each node's upload utilization during the streaming phase:
	// bytes actually sent (incl. UDP overhead) over capability (Fig 4).
	// Unconstrained runs report zeros.
	Usage []float64
	// Victims lists nodes killed by churn.
	Victims []wire.NodeID
	// NodeNetStats are final per-node network counters.
	NodeNetStats []simnet.NodeStats
	// CoreStats are final per-node protocol counters.
	CoreStats []core.Stats
	// NetStats are network-wide counters.
	NetStats simnet.Stats
	// EstimatesKbps holds each HEAP node's final bbar estimate (nil for
	// standard gossip).
	EstimatesKbps []float64
	// SizeEstimates holds each node's final n̂ estimate (AutoFanout runs
	// only; nil otherwise).
	SizeEstimates []float64
	// VerifyFailures counts payload verification failures (verify mode).
	VerifyFailures int
	// DecodedWindows counts fully reconstructed windows (verify mode).
	DecodedWindows int
	// BacklogSamples holds the uplink-backlog time series when
	// BacklogProbePeriod is set.
	BacklogSamples []BacklogSample
	// NetemStats holds the per-model drop/delay counters of the run's
	// adverse-network engine (nil when Netem is unset).
	NetemStats []netem.ModelStats
	// AdaptStats holds the re-advertisement traces and final effective
	// capabilities of the adaptation controllers (nil when Adapt is unset).
	AdaptStats *AdaptStats
	// AdversaryStats holds the adversary node sets, detection statistics,
	// and the source-anonymity probe (nil when Adversary is unset).
	AdversaryStats *AdversaryStats
	// TraceStats holds the merged dissemination-path records and their
	// offline hop analysis (nil when Trace is unset).
	TraceStats *TraceStats
	// TopoStats holds the materialized cluster layout and the run's
	// inter-cluster (WAN) traffic accounting (nil when Topology is unset).
	TopoStats *TopoStats
}

// TopoStats summarizes a topology-embedded run: how the seed materialized
// the clusters and how much of the run's traffic crossed them. WAN bytes are
// the cost a clustered deployment actually pays for — the quantity
// hierarchical fanout (FanoutIntra/FanoutInter) exists to reduce.
type TopoStats struct {
	// Clusters is the configured cluster count; Sizes[c] is how many of the
	// run's nodes (including join-wave nodes) the seed assigned to c.
	Clusters int
	Sizes    []int
	// TotalBytes sums every node's sent bytes; InterBytes/InterMsgs count
	// the subset whose destination lay in another cluster.
	TotalBytes int64
	InterBytes int64
	InterMsgs  int64
}

// InterShare is the fraction of sent bytes that crossed a cluster boundary.
func (t *TopoStats) InterShare() float64 {
	if t.TotalBytes == 0 {
		return 0
	}
	return float64(t.InterBytes) / float64(t.TotalBytes)
}

// BacklogSample is one probe of the system's uplink queues.
type BacklogSample struct {
	// At is the sample's virtual time.
	At time.Duration
	// MeanByClass maps capability class to the mean uplink backlog
	// (seconds of queued serialization time) across that class's nodes.
	MeanByClass map[string]float64
	// Max is the largest backlog in the system (seconds).
	Max float64
}

// Run executes the scenario and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	setupRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5ca1ab1e))

	// total counts every node that will ever exist: the initial system plus
	// all flash-crowd join waves. Capability assignment, views, and metric
	// collection cover them all; wave nodes simply enter the simulation
	// later. cfg.Nodes remains the size at time zero.
	total := cfg.totalNodes()

	// Stream layout: the configured multi-source specs, or the implicit
	// single stream 0 broadcast by node 0. Source nodes are the paper's
	// well-provisioned broadcasters: they get SourceCapKbps, never degrade,
	// freeride, or adapt their fanout.
	specs := cfg.effectiveStreams()
	sourceNode := make([]bool, total)
	numSources := 0
	for _, sp := range specs {
		if !sourceNode[sp.Source] {
			sourceNode[sp.Source] = true
			numSources++
		}
	}

	// Capability assignment.
	caps := make([]uint32, total)
	if cfg.Dist != nil {
		assigned := cfg.Dist.Assign(total-numSources, setupRng)
		j := 0
		for i := range caps {
			if sourceNode[i] {
				continue
			}
			caps[i] = assigned[j]
			j++
		}
	}
	for i := range caps {
		if sourceNode[i] {
			caps[i] = cfg.SourceCapKbps
		}
	}
	// Degraded nodes deliver less than they advertise.
	effective := make([]int64, total)
	for i, c := range caps {
		effective[i] = int64(c) * 1000
	}
	if cfg.DegradedFraction > 0 {
		for i := 1; i < total; i++ {
			if sourceNode[i] {
				continue
			}
			if setupRng.Float64() < cfg.DegradedFraction {
				effective[i] = int64(float64(effective[i]) * cfg.DegradedFactor)
			}
		}
	}
	// Freeriders advertise less than they have (keeping full capacity).
	advertised := make([]uint32, total)
	copy(advertised, caps)
	freerider := make([]bool, total)
	if cfg.FreeriderFraction > 0 {
		for i := 1; i < total; i++ {
			if sourceNode[i] {
				continue
			}
			if setupRng.Float64() < cfg.FreeriderFraction {
				freerider[i] = true
				advertised[i] = uint32(float64(caps[i]) * cfg.FreeriderFactor)
				if advertised[i] == 0 {
					advertised[i] = 1
				}
			}
		}
	}

	// Adversarial nodes: the class assignment draws from its own seeded rng
	// (like netem's node sets). Onset-zero liars over-advertise from the
	// first aggregation exchange — their estimators are built on the
	// inflated value; delayed liars are rescheduled after the network
	// exists (scheduleLiars). Where a liar overlaps a legacy freerider
	// pick, the liar's advertisement wins.
	adv := newAdversaryState(&cfg, total, sourceNode)
	if adv != nil && adv.spec.Onset == 0 {
		for _, id := range adv.liars {
			advertised[id] = adv.liarAdvertised(caps[id])
		}
	}

	// Adverse network conditions: a configured netem spec materializes into
	// a per-run engine that absorbs the base loss rate as its first model
	// (same rng draw order, so the zero-config path is untouched).
	var netemEngine *netem.Engine
	netCfg := simnet.Config{
		Seed:     cfg.Seed,
		Latency:  simnet.NewPairwiseLatency(cfg.Seed, cfg.LatencyMin, cfg.LatencyMax, cfg.LatencyJitter),
		LossRate: cfg.LossRate,
		Shards:   cfg.Shards,
	}
	// A configured topology replaces the uniform latency draw with the
	// clustered model (hash-pure, so sharded runs stay exact) and labels
	// every node with its cluster for WAN-byte accounting.
	var topol *topo.Topology
	if cfg.Topology != nil {
		var err error
		if topol, err = cfg.Topology.Build(cfg.Seed); err != nil {
			return nil, err
		}
		netCfg.Latency = topol
		netCfg.RegionOf = topol.ClusterOf
	}
	if cfg.Netem != nil {
		var err error
		if topol != nil {
			netemEngine, err = cfg.Netem.BuildWithRegions(total, cfg.Seed, cfg.LossRate, topol.ClusterOf)
		} else {
			netemEngine, err = cfg.Netem.Build(total, cfg.Seed, cfg.LossRate)
		}
		if err != nil {
			return nil, err
		}
		netCfg.Netem = netemEngine
	}
	net := simnet.New(netCfg)
	dir := membership.NewDirectory(total)
	allIDs := dir.IDs()

	views := make([]*membership.View, total)
	engines := make([]*core.Engine, total)
	receivers := make([][]*stream.Receiver, total) // [node][spec index]
	estimators := make([]*aggregation.Estimator, total)
	averagers := make([]*aggregation.Averager, total)
	controllers := make([]*adapt.Controller, total)
	tracers := make([]*telemetry.Tracer, total)

	// specIdx maps wire-level stream ids to spec indices for the per-node
	// delivery dispatch; singleStream keeps the legacy direct upcall (and
	// its zero indirection) when there is nothing to dispatch between.
	specIdx := make(map[wire.StreamID]int, len(specs))
	for k, sp := range specs {
		specIdx[sp.ID] = k
	}
	singleStream := len(specs) == 1 && specs[0].ID == 0

	// The static-tree baseline has a fixed topology instead of sampling.
	var treeTopo *tree.Topology
	if cfg.Protocol == StaticTree {
		order := tree.ByID
		if cfg.TreeCapacityOrder {
			order = tree.ByCapacityDesc
		}
		var err error
		treeTopo, err = tree.BuildKAry(dir.IDs(), 0, cfg.TreeDegree, order, caps)
		if err != nil {
			return nil, err
		}
	}

	pssRng := rand.New(rand.NewSource(cfg.Seed ^ 0x9551))

	// Hierarchical dissemination: cluster-partitioned views feed the split
	// fanout. Topology alone (both split fanouts zero) keeps plain views —
	// the topology-blind baseline samples exactly as before.
	hierarchical := topol != nil && (cfg.FanoutIntra > 0 || cfg.FanoutInter > 0)

	// buildNode constructs and registers node i. present is the system size
	// the node boots into: initial nodes see the whole time-zero membership,
	// flash-crowd joiners see everyone present when their wave lands (their
	// own wave included).
	buildNode := func(i, present int) error {
		id := wire.NodeID(i)

		rcvs := make([]*stream.Receiver, len(specs))
		for k, sp := range specs {
			rcv, err := stream.NewReceiver(sp.Geometry, sp.Windows, cfg.VerifyPayloads)
			if err != nil {
				return err
			}
			rcvs[k] = rcv
		}
		receivers[i] = rcvs
		onDeliver := rcvs[0].OnDeliver
		if !singleStream {
			onDeliver = func(ev wire.Event, at time.Duration) {
				if k, ok := specIdx[ev.Stream]; ok {
					rcvs[k].OnDeliver(ev, at)
				}
			}
		}

		if cfg.Protocol == StaticTree {
			eng := tree.NewEngine(treeTopo, tree.DeliverFunc(onDeliver))
			mux := env.NewMux()
			mux.Register(eng, wire.KindServe)
			if i == 0 {
				src, err := stream.NewSource(stream.SourceConfig{
					Geometry:  cfg.Geometry,
					Windows:   cfg.Windows,
					StartAt:   cfg.StreamStart,
					Publisher: eng,
				})
				if err != nil {
					return err
				}
				mux.Register(src)
			}
			nodeCfg := simnet.NodeConfig{}
			if !cfg.Unconstrained {
				nodeCfg.UploadBps = effective[i]
			}
			if got := net.AddNode(mux, nodeCfg); got != id {
				return fmt.Errorf("scenario: node id mismatch: %d != %d", got, id)
			}
			return nil
		}

		// Peer sampling: full view by default, Cyclon PSS as an extension.
		var sampler membership.Sampler
		mux := env.NewMux()
		if cfg.UsePSS {
			bootstrap := make([]wire.NodeID, 0, 5)
			for len(bootstrap) < 5 {
				p := wire.NodeID(pssRng.Intn(present))
				if p != id {
					bootstrap = append(bootstrap, p)
				}
			}
			pss := membership.NewCyclon(membership.CyclonConfig{
				ViewSize: cfg.PSSViewSize,
			}, bootstrap)
			mux.Register(pss, wire.KindShuffleReq, wire.KindShuffleReply)
			sampler = pss
			// views[i] stays nil: churn notification is organic (shuffle
			// timeouts evict dead peers).
		} else {
			// The bootstrap directory hands out current membership: nodes
			// already crashed (earlier churn) are excluded, so flash-crowd
			// joiners do not waste fanout on peers that died before they
			// arrived. Ids at or past NumNodes are fellow wave members
			// being built in this same callback — alive by construction.
			peers := make([]wire.NodeID, 0, present)
			for _, p := range allIDs[:present] {
				if int(p) >= net.NumNodes() || net.Alive(p) {
					peers = append(peers, p)
				}
			}
			if hierarchical {
				views[i] = membership.NewClusterView(id, peers, topol.ClusterOf)
			} else {
				views[i] = membership.NewView(id, peers)
			}
			sampler = views[i]
		}

		// Adversarial wiring, honest side: every honest non-source node runs
		// a misbehavior detector (armed or observe-only per the spec), and
		// its verdicts filter this node's gossip target draws through the
		// sampler wrapper. Adversaries and sources run no detector.
		var det *misbehave.Detector
		if adv != nil && adv.class[i] == misbehave.ClassHonest && !sourceNode[i] {
			det = misbehave.MustNew(adv.detectorConfig(net))
			adv.detectors[i] = det
			sampler = &misbehave.QuarantineSampler{Inner: sampler, Detector: det}
			if hierarchical {
				// The split path draws from the view directly, bypassing the
				// wrapper; the view's own exclusion filter closes the gap.
				views[i].SetExclude(det.Quarantined)
			}
		}

		engCfg := core.Config{
			Fanout:          cfg.Fanout,
			MaxFanout:       cfg.MaxFanout,
			GossipPeriod:    cfg.GossipPeriod,
			RetPeriod:       cfg.RetPeriod,
			RetMaxAttempts:  cfg.RetMaxAttempts,
			RetSameProposer: cfg.RetSameProposer,
			ExpectedPackets: cfg.Geometry.TotalPackets(cfg.Windows),
			Sampler:         sampler,
			OnDeliver:       onDeliver,
			Monitor:         monitorOrNil(det),
		}
		if hierarchical {
			engCfg.FanoutIntra = cfg.FanoutIntra
			engCfg.FanoutInter = cfg.FanoutInter
			engCfg.Split = views[i]
		}
		if cfg.Trace != nil {
			tr := telemetry.NewTracer(id, *cfg.Trace)
			tracers[i] = tr
			engCfg.Trace = tr
		}
		if !cfg.Unconstrained {
			// The fanout-budget allocator's upload budget; inert with a
			// single stream (see core.Config.UploadKbps). Degraded nodes
			// budget what they actually deliver, not what they advertise.
			engCfg.UploadKbps = uint32(effective[i] / 1000)
		}
		isSource := sourceNode[i]
		if cfg.AutoFanout {
			// Continuous size estimation: the first stream's source seeds
			// the average at 1, everyone else at 0; the mean converges
			// to 1/n.
			initial := 0.0
			if id == specs[0].Source {
				initial = 1.0
			}
			avg := aggregation.NewAverager(aggregation.AveragerConfig{
				InitialValue: initial,
				Sampler:      sampler,
			})
			averagers[i] = avg
			mux.Register(avg, wire.KindAvgPush, wire.KindAvgReply)
			fallback := cfg.Fanout
			fanoutC := cfg.FanoutC
			engCfg.FanoutFn = func() float64 {
				nHat := avg.SizeEstimate()
				if nHat < 2 {
					return fallback
				}
				return math.Log(nHat) + fanoutC
			}
		}
		if cfg.Protocol == HEAP && !isSource {
			aggCfg := aggregation.Config{
				SelfCapKbps: advertised[i],
				Period:      cfg.AggPeriod,
				Fanout:      cfg.AggFanout,
				FreshestK:   cfg.AggFreshestK,
				Sampler:     sampler,
				TrackLimit:  cfg.AggTrackLimit,
			}
			if det != nil {
				// The fanout penalty: a quarantined peer's capability claim
				// leaves this node's bbar, so a liar's inflated claim stops
				// taxing honest fanouts once convicted.
				aggCfg.Exclude = det.Quarantined
			}
			est := aggregation.NewEstimator(aggCfg)
			estimators[i] = est
			engCfg.Adaptive = true
			engCfg.AdaptPeriod = cfg.AdaptPeriod
			engCfg.Capabilities = est
			mux.Register(est, wire.KindAggregate)
		}
		if isSource && cfg.SourceBias && views[i] != nil {
			// §5 extension: bias the source's first hop toward rich nodes.
			engCfg.Sampler = newBiasedSampler(views[i], caps)
		}
		if cfg.Adapt != nil && !isSource {
			// Congestion feedback: the controller's ceiling is the node's
			// *advertised* capability (its claim), and its signal is the real
			// uplink queue the simulator maintains — backlog, enqueue-side
			// bytes, queued bytes. Sources never adapt: they are the paper's
			// well-provisioned broadcasters, like every other knob here.
			ctrl, err := adapt.NewController(*cfg.Adapt, advertised[i])
			if err != nil {
				return err
			}
			controllers[i] = ctrl
			engCfg.Adapt = ctrl
			engCfg.AdaptSignal = func() adapt.Sample {
				return adapt.Sample{
					Backlog:     net.QueueBacklog(id),
					SentBytes:   net.NodeStats(id).SentBytes,
					QueuedBytes: net.QueueBacklogBytes(id),
				}
			}
		}
		eng, err := core.New(engCfg)
		if err != nil {
			return err
		}
		// Every node opens every configured stream up front: tables are
		// presized and the budget allocator sees the full competing rate
		// from the first round.
		for _, sp := range specs {
			if err := eng.OpenStream(sp.ID, core.StreamConfig{
				ExpectedPackets: sp.Geometry.TotalPackets(sp.Windows),
				RateKbps:        float64(sp.Geometry.EffectiveRateBps()) / 1000,
			}); err != nil {
				return err
			}
		}
		engines[i] = eng
		// Adversarial wiring, adversary side: freeriders and droppers
		// receive the protocol through their class's message-drop
		// interceptor; everyone else registers the engine directly.
		var handler env.Handler = eng
		if adv != nil {
			handler = adv.interceptorFor(i, eng)
		}
		mux.Register(handler, wire.KindPropose, wire.KindRequest, wire.KindServe)

		for _, sp := range specs {
			if sp.Source != id {
				continue
			}
			src, err := stream.NewSource(stream.SourceConfig{
				Stream:    sp.ID,
				Geometry:  sp.Geometry,
				Windows:   sp.Windows,
				StartAt:   sp.Start,
				Publisher: eng,
			})
			if err != nil {
				return err
			}
			mux.Register(src) // lifecycle only
		}

		nodeCfg := simnet.NodeConfig{}
		if !cfg.Unconstrained {
			nodeCfg.UploadBps = effective[i]
		}
		if got := net.AddNode(mux, nodeCfg); got != id {
			return fmt.Errorf("scenario: node id mismatch: %d != %d", got, id)
		}
		return nil
	}

	for i := 0; i < cfg.Nodes; i++ {
		if err := buildNode(i, cfg.Nodes); err != nil {
			return nil, err
		}
	}

	// Flash-crowd join waves: each wave's nodes are built inside one
	// scheduled callback, in id order (waves are sorted by time and ids are
	// assigned by arrival, so the id ranges are deterministic). Newcomers
	// boot with a view over everyone present; existing full-membership
	// views learn the newcomers instantly (the bootstrap directory model);
	// PSS views learn them organically through shuffles.
	var buildErr error
	nextID := cfg.Nodes
	for _, wave := range cfg.JoinWaves {
		wave := wave
		first, count := nextID, wave.Count
		nextID += wave.Count
		net.Schedule(wave.At, func() {
			if buildErr != nil {
				return
			}
			present := first + count
			for i := first; i < first+count; i++ {
				if err := buildNode(i, present); err != nil {
					buildErr = err
					return
				}
			}
			for j := 0; j < first; j++ {
				if views[j] == nil {
					continue
				}
				for i := first; i < first+count; i++ {
					views[j].Add(wire.NodeID(i))
				}
			}
		})
	}

	// Churn injection.
	var victims []wire.NodeID
	if cfg.Churn != nil {
		ch := *cfg.Churn
		// Never kill a broadcaster.
		ch.Protect = append([]wire.NodeID{}, ch.Protect...)
		for _, sp := range specs {
			ch.Protect = append(ch.Protect, sp.Source)
		}
		var err error
		victims, err = ch.Apply(net, views, rand.New(rand.NewSource(cfg.Seed^0x0ddba11)))
		if err != nil {
			return nil, err
		}
	}
	applyChurnBursts(net, &cfg, views, &victims)
	if netemEngine != nil {
		applyCapTraces(net, netemEngine, cfg.Unconstrained, effective, advertised, estimators)
	}
	if adv != nil {
		adv.scheduleLiars(net, caps, estimators)
	}

	// Bandwidth-usage sampling during the streaming phase (Fig 4).
	// SentBytes counts at enqueue time, so bytes still sitting in a
	// congested uplink queue would inflate utilization past 1; subtract the
	// backlog (backlog duration × capacity) at each snapshot to obtain
	// bytes actually transmitted. The sampling window spans all streams
	// (earliest start to latest last packet).
	streamsStart, streamEnd := cfg.streamsSpan()
	startBytes := make([]int64, total)
	endBytes := make([]int64, total)
	snapshot := func(dst []int64) func() {
		return func() {
			// Wave nodes that have not joined yet stay at zero.
			for i := 0; i < net.NumNodes(); i++ {
				id := wire.NodeID(i)
				sent := net.NodeStats(id).SentBytes
				if eff := effective[i]; eff > 0 {
					backlogBytes := int64(net.QueueBacklog(id).Seconds() * float64(eff) / 8)
					sent -= backlogBytes
				}
				dst[i] = sent
			}
		}
	}
	net.Schedule(streamsStart, snapshot(startBytes))
	net.Schedule(streamEnd, snapshot(endBytes))

	// Sporadic freezes (§3.5 PlanetLab noise).
	if cfg.FreezesPerNode > 0 {
		freezeRng := rand.New(rand.NewSource(cfg.Seed ^ 0xf0f0))
		runSpan := int64(streamEnd + cfg.Drain/2)
		for i := 1; i < cfg.Nodes; i++ {
			id := wire.NodeID(i)
			count := int(cfg.FreezesPerNode)
			if freezeRng.Float64() < cfg.FreezesPerNode-float64(count) {
				count++
			}
			for k := 0; k < count; k++ {
				at := time.Duration(freezeRng.Int63n(runSpan))
				mean := float64(cfg.FreezeMeanDuration)
				dur := time.Duration(mean * (0.5 + freezeRng.Float64()))
				net.Schedule(at, func() { net.Freeze(id, dur) })
			}
		}
	}

	// Optional uplink-backlog probing (the §3.6 congestion symptom).
	var backlogSamples []BacklogSample
	if cfg.BacklogProbePeriod > 0 {
		var probe func()
		probe = func() {
			sample := BacklogSample{At: net.Now(), MeanByClass: make(map[string]float64)}
			counts := make(map[string]int)
			for i := 1; i < net.NumNodes(); i++ {
				backlog := net.QueueBacklog(wire.NodeID(i)).Seconds()
				class := "all"
				if cfg.Dist != nil {
					class = cfg.Dist.ClassOf(caps[i])
				}
				sample.MeanByClass[class] += backlog
				counts[class]++
				if effective[i] < int64(caps[i])*1000 {
					// Degraded nodes additionally pool under the "degraded"
					// pseudo-class: the knife-edge studies (sens-degraded,
					// the adaptation artifact) track exactly this cohort's
					// queues, which the capability classes average away.
					sample.MeanByClass["degraded"] += backlog
					counts["degraded"]++
				}
				if backlog > sample.Max {
					sample.Max = backlog
				}
			}
			for class, sum := range sample.MeanByClass {
				sample.MeanByClass[class] = sum / float64(counts[class])
			}
			backlogSamples = append(backlogSamples, sample)
			if net.Now() < streamEnd+cfg.Drain {
				net.Schedule(net.Now()+cfg.BacklogProbePeriod, probe)
			}
		}
		net.Schedule(streamsStart, probe)
	}

	net.Run(streamEnd + cfg.Drain)
	if buildErr != nil {
		return nil, buildErr
	}
	if net.NumNodes() != total {
		return nil, fmt.Errorf("scenario: %d of %d nodes joined (a wave fell outside the run)",
			net.NumNodes(), total)
	}

	res, err := collect(collectArgs{
		cfg: cfg, net: net, caps: caps, advertised: advertised,
		freerider: freerider, victims: victims, engines: engines,
		receivers: receivers, estimators: estimators, averagers: averagers,
		startBytes: startBytes, endBytes: endBytes,
	})
	if err != nil {
		return nil, err
	}
	res.BacklogSamples = backlogSamples
	if netemEngine != nil {
		res.NetemStats = netemEngine.Stats()
	}
	if cfg.Adapt != nil {
		res.AdaptStats = collectAdaptStats(controllers)
	}
	if adv != nil {
		res.AdversaryStats = adv.collectStats(&cfg, res)
	}
	if cfg.Trace != nil {
		res.TraceStats = collectTraceStats(tracers)
	}
	if topol != nil {
		ts := &TopoStats{Clusters: topol.Clusters(), Sizes: make([]int, topol.Clusters())}
		for i := 0; i < total; i++ {
			ts.Sizes[topol.ClusterOf(wire.NodeID(i))]++
			ns := &res.NodeNetStats[i]
			ts.TotalBytes += ns.SentBytes
			ts.InterBytes += ns.InterRegionBytes
			ts.InterMsgs += ns.InterRegionMsgs
		}
		res.TopoStats = ts
	}
	return res, nil
}

// monitorOrNil converts a possibly-nil detector into core's Monitor hook
// without tripping the typed-nil-in-interface trap.
func monitorOrNil(det *misbehave.Detector) core.Monitor {
	if det == nil {
		return nil
	}
	return det
}

type collectArgs struct {
	cfg                  Config
	net                  *simnet.Network
	caps, advertised     []uint32
	freerider            []bool
	victims              []wire.NodeID
	engines              []*core.Engine
	receivers            [][]*stream.Receiver // [node][spec index]
	estimators           []*aggregation.Estimator
	averagers            []*aggregation.Averager
	startBytes, endBytes []int64
}

func collect(a collectArgs) (*Result, error) {
	cfg, net, caps, victims := a.cfg, a.net, a.caps, a.victims
	engines, receivers, estimators := a.engines, a.receivers, a.estimators
	startBytes, endBytes := a.startBytes, a.endBytes
	nodes := cfg.totalNodes()
	specs := cfg.effectiveStreams()

	victimSet := make(map[wire.NodeID]bool, len(victims))
	for _, v := range victims {
		victimSet[v] = true
	}

	res := &Result{
		Config:         cfg,
		CapsKbps:       caps,
		AdvertisedKbps: a.advertised,
		Freeriders:     a.freerider,
		Usage:          make([]float64, nodes),
		Victims:        victims,
		NodeNetStats:   make([]simnet.NodeStats, nodes),
		CoreStats:      make([]core.Stats, nodes),
		NetStats:       net.Stats(),
	}
	if cfg.Protocol == HEAP {
		res.EstimatesKbps = make([]float64, nodes)
	}
	if cfg.AutoFanout {
		res.SizeEstimates = make([]float64, nodes)
	}

	streamsStart, streamsEnd := cfg.streamsSpan()
	streamSecs := (streamsEnd - streamsStart).Seconds()
	for i := 0; i < nodes; i++ {
		id := wire.NodeID(i)
		res.NodeNetStats[i] = net.NodeStats(id)
		if engines[i] != nil {
			res.CoreStats[i] = engines[i].Stats()
		}
		if estimators[i] != nil {
			res.EstimatesKbps[i] = estimators[i].EstimateKbps()
		}
		if a.averagers[i] != nil {
			res.SizeEstimates[i] = a.averagers[i].SizeEstimate()
		}
		if !cfg.Unconstrained && streamSecs > 0 && caps[i] > 0 {
			sentBits := float64(endBytes[i]-startBytes[i]) * 8
			res.Usage[i] = sentBits / (float64(caps[i]) * 1000 * streamSecs)
		}
		for _, rcv := range receivers[i] {
			res.VerifyFailures += rcv.VerifyFailures
			res.DecodedWindows += rcv.DecodedWindows
		}
	}

	// One measurement record per stream; each stream excludes its own
	// broadcaster (which trivially has the whole stream) and includes every
	// other node, other streams' sources included.
	for k, sp := range specs {
		totalPkts := sp.Geometry.TotalPackets(sp.Windows)
		publishAt := make([]time.Duration, totalPkts)
		for id := 0; id < totalPkts; id++ {
			publishAt[id] = sp.Start + sp.Geometry.PublishOffset(wire.PacketID(id))
		}
		run := &metrics.Run{
			Geometry:  sp.Geometry,
			Windows:   sp.Windows,
			PublishAt: publishAt,
		}
		for i := 0; i < nodes; i++ {
			id := wire.NodeID(i)
			className := "all"
			if cfg.Dist != nil {
				className = cfg.Dist.ClassOf(caps[i])
			}
			run.Nodes = append(run.Nodes, metrics.NodeRecord{
				Node:     id,
				Class:    className,
				CapKbps:  caps[i],
				Recv:     receivers[i][k].Records(),
				Excluded: id == sp.Source,
				Crashed:  victimSet[id] || res.NodeNetStats[i].Crashed,
			})
		}
		if err := run.Validate(); err != nil {
			return nil, err
		}
		res.StreamRuns = append(res.StreamRuns, run)
	}
	res.Run = res.StreamRuns[0]
	return res, nil
}

// biasedSampler draws peers with probability proportional to advertised
// capability (oracle weights), for the SourceBias extension.
type biasedSampler struct {
	view *membership.View
	caps []uint32
}

var _ membership.Sampler = (*biasedSampler)(nil)

func newBiasedSampler(view *membership.View, caps []uint32) *biasedSampler {
	return &biasedSampler{view: view, caps: caps}
}

// PeerCount implements membership.Sampler.
func (b *biasedSampler) PeerCount() int { return b.view.PeerCount() }

// SelectPeers implements membership.Sampler with weighted sampling without
// replacement (repeated weighted draws, skipping duplicates).
func (b *biasedSampler) SelectPeers(rng *rand.Rand, k int) []wire.NodeID {
	peers := b.view.Peers()
	if k >= len(peers) {
		return peers
	}
	var totalWeight int64
	for _, p := range peers {
		totalWeight += int64(b.caps[p])
	}
	chosen := make(map[wire.NodeID]bool, k)
	out := make([]wire.NodeID, 0, k)
	for len(out) < k && totalWeight > 0 {
		target := rng.Int63n(totalWeight)
		var acc int64
		for _, p := range peers {
			if chosen[p] {
				continue
			}
			acc += int64(b.caps[p])
			if acc > target {
				chosen[p] = true
				out = append(out, p)
				totalWeight -= int64(b.caps[p])
				break
			}
		}
	}
	return out
}

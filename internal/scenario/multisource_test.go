package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/wire"
)

// lowRateGeometry is a stream geometry light enough that two concurrent
// streams fit comfortably under the Table 1 capability means, so sanity
// tests can expect near-full delivery.
func lowRateGeometry() stream.Geometry {
	return stream.Geometry{
		RateBps:         150_000,
		PacketBytes:     1316,
		DataPerWindow:   20,
		ParityPerWindow: 4,
	}
}

func TestMultiSourceConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Nodes: 50, Protocol: HEAP, Dist: Ref691, Windows: 2, Seed: 1}
	}
	t.Run("duplicate stream ids", func(t *testing.T) {
		cfg := base()
		cfg.Streams = []StreamSpec{{ID: 4}, {ID: 4, Source: 1}}
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "duplicate stream id") {
			t.Fatalf("err = %v, want duplicate stream id error", err)
		}
	})
	t.Run("zero-rate source", func(t *testing.T) {
		cfg := base()
		cfg.Streams = []StreamSpec{
			{},
			{Geometry: stream.Geometry{PacketBytes: 1316, DataPerWindow: 10, ParityPerWindow: 2}},
		}
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "zero-rate source") {
			t.Fatalf("err = %v, want zero-rate source error", err)
		}
	})
	t.Run("source outside system", func(t *testing.T) {
		cfg := base()
		cfg.Streams = []StreamSpec{{}, {Source: 50}}
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "outside the initial system") {
			t.Fatalf("err = %v, want source-range error", err)
		}
	})
	t.Run("static tree is single-stream", func(t *testing.T) {
		cfg := base()
		cfg.Protocol = StaticTree
		cfg.Streams = []StreamSpec{{}, {}}
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "single-stream") {
			t.Fatalf("err = %v, want static-tree error", err)
		}
	})
	t.Run("defaults fill ids sources and starts", func(t *testing.T) {
		cfg := base()
		cfg.Streams = []StreamSpec{{}, {}, {Start: 9 * time.Second}}
		if err := cfg.applyDefaults(); err != nil {
			t.Fatal(err)
		}
		want := []struct {
			id  wire.StreamID
			src wire.NodeID
		}{{0, 0}, {1, 1}, {2, 2}}
		for i, w := range want {
			if cfg.Streams[i].ID != w.id || cfg.Streams[i].Source != w.src {
				t.Fatalf("spec %d = id %d src %d, want id %d src %d",
					i, cfg.Streams[i].ID, cfg.Streams[i].Source, w.id, w.src)
			}
		}
		if cfg.Streams[0].Start != cfg.StreamStart || cfg.Streams[2].Start != 9*time.Second {
			t.Fatalf("starts = %v, %v", cfg.Streams[0].Start, cfg.Streams[2].Start)
		}
	})
}

// TestMultiSourceTwoStreamsDeliver runs two staggered low-rate streams from
// two broadcasters and requires both to disseminate: per-stream records,
// per-stream summaries, and the source-exclusion bookkeeping.
func TestMultiSourceTwoStreamsDeliver(t *testing.T) {
	cfg := Config{
		Nodes:    60,
		Protocol: HEAP,
		Dist:     Ref691,
		Seed:     5,
		Geometry: lowRateGeometry(),
		Windows:  3,
		Streams: []StreamSpec{
			{},
			{Start: 8 * time.Second},
		},
		Drain: 30 * time.Second,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StreamRuns) != 2 {
		t.Fatalf("StreamRuns = %d, want 2", len(res.StreamRuns))
	}
	if res.Run != res.StreamRuns[0] {
		t.Fatal("Run must alias StreamRuns[0]")
	}
	for k, run := range res.StreamRuns {
		// Offline (lag = Never) jitter-free share: both streams must be
		// near-fully decodable across the system.
		vals := run.PerNode(func(n *metrics.NodeRecord) float64 {
			return run.JitterFreeShare(n, 1<<62)
		})
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if mean := sum / float64(len(vals)); mean < 0.95 {
			t.Fatalf("stream %d offline jitter-free mean %.3f, want >= 0.95", k, mean)
		}
		// The stream's own source is excluded, the other source is not.
		src := cfg.Streams[k].Source
		for i := range run.Nodes {
			want := run.Nodes[i].Node == src
			if run.Nodes[i].Excluded != want {
				t.Fatalf("stream %d node %d excluded=%v, want %v", k, i, run.Nodes[i].Excluded, want)
			}
		}
	}
	sums := res.StreamSummaries(10 * time.Second)
	if len(sums) != 2 {
		t.Fatalf("StreamSummaries = %d entries", len(sums))
	}
	for _, s := range sums {
		if s.MeasuredNodes != cfg.Nodes-1 {
			t.Fatalf("stream %d measured %d nodes, want %d", s.Spec.ID, s.MeasuredNodes, cfg.Nodes-1)
		}
		if s.NeverFrac > 0.1 {
			t.Fatalf("stream %d never-frac %.2f too high for an uncontended run", s.Spec.ID, s.NeverFrac)
		}
	}
	// Per-stream byte accounting: both streams moved real traffic on every
	// relaying node's uplink.
	counted := 0
	for i, ns := range res.NodeNetStats {
		if ns.SentByStream[0] > 0 && ns.SentByStream[1] > 0 {
			counted++
		}
		_ = i
	}
	if counted < cfg.Nodes/2 {
		t.Fatalf("only %d of %d nodes sent traffic on both streams", counted, cfg.Nodes)
	}
}

// TestMultiSourceBudgetPaperScale is the acceptance check for the
// fanout-budget allocator: a 4-source HEAP run at paper scale (ms-691,
// 270 nodes) where the aggregate stream rate (4 x 600 kbps effective) far
// exceeds the mean capability (691 kbps). Every node's aggregate send rate
// must stay within its UploadKbps: transmitted utilization <= 1 and no
// uplink queue diverging (bounded backlog), which together bound the
// offered rate. Without the allocator, 512 kbps nodes are offered ~1.8 Mbps
// and their queues grow by seconds per second.
func TestMultiSourceBudgetPaperScale(t *testing.T) {
	cfg := Config{
		Nodes:    270,
		Protocol: HEAP,
		Dist:     MS691,
		Seed:     11,
		Windows:  4,
		Streams: []StreamSpec{
			{},
			{Start: 6 * time.Second},
			{Start: 7 * time.Second},
			{Start: 8 * time.Second},
		},
		Drain:              30 * time.Second,
		BacklogProbePeriod: time.Second,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StreamRuns) != 4 {
		t.Fatalf("StreamRuns = %d, want 4", len(res.StreamRuns))
	}
	// Aggregate send rate <= UploadKbps for every node (sources included):
	// Usage measures transmitted bits over capability across the streaming
	// span; the pacing model cannot transmit past capacity, so a node that
	// tried to exceed its budget shows up as Usage pinned at ~1 *and* a
	// diverging backlog. Require both margins.
	for i, u := range res.Usage {
		if u > 1.02 {
			t.Fatalf("node %d (cap %d kbps) utilization %.3f exceeds its upload capability",
				i, res.CapsKbps[i], u)
		}
	}
	maxBacklog := 0.0
	for _, s := range res.BacklogSamples {
		if s.Max > maxBacklog {
			maxBacklog = s.Max
		}
	}
	if maxBacklog > 3.0 {
		t.Fatalf("max uplink backlog %.1fs: some node is being offered more than its upload capability", maxBacklog)
	}
	// Fair sharing, not starvation: the rate-weighted budget division gives
	// every stream the same scaled fanout, so the four streams' mean
	// delivery ratios must come out close (measured ~0.67-0.69 each — with
	// Σr ≈ 3.5x bbar the system *cannot* deliver fully; the allocator's job
	// is to degrade all streams uniformly within the upload budget instead
	// of letting queues collapse).
	minRatio, maxRatio := 1.0, 0.0
	for k, run := range res.StreamRuns {
		total := run.Geometry.TotalPackets(run.Windows)
		var sum float64
		var n int
		for i := range run.Nodes {
			if run.Nodes[i].Excluded {
				continue
			}
			got := 0
			for _, at := range run.Nodes[i].Recv {
				if at != stream.NotReceived {
					got++
				}
			}
			sum += float64(got) / float64(total)
			n++
		}
		mean := sum / float64(n)
		if mean < 0.4 {
			t.Fatalf("stream %d mean delivery ratio %.3f: starved under budget sharing", k, mean)
		}
		if mean < minRatio {
			minRatio = mean
		}
		if mean > maxRatio {
			maxRatio = mean
		}
	}
	if maxRatio > 1.5*minRatio {
		t.Fatalf("per-stream delivery ratios spread [%.3f, %.3f]: budget division is not rate-fair",
			minRatio, maxRatio)
	}
	// Per-stream lag summaries must be computable and ordered by start.
	sums := res.StreamSummaries(20 * time.Second)
	if len(sums) != 4 {
		t.Fatalf("StreamSummaries = %d entries, want 4", len(sums))
	}
}

package scenario

import (
	"testing"
	"time"

	"repro/internal/stream"
)

// TestPublishTimesMatchSourceStamps validates the analysis pipeline's core
// assumption: the publish times the metrics layer derives from the stream
// geometry equal the stamps the source actually wrote into the events.
func TestPublishTimesMatchSourceStamps(t *testing.T) {
	cfg := Config{
		Nodes:         20,
		Unconstrained: true,
		Windows:       3,
		Geometry: stream.Geometry{
			RateBps: 551_000, PacketBytes: 1316,
			DataPerWindow: 25, ParityPerWindow: 3,
		},
		Seed:        21,
		StreamStart: 2 * time.Second,
		Drain:       15 * time.Second,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Config.Geometry.TotalPackets(res.Config.Windows)
	checked := 0
	for i := 1; i < len(res.Run.Nodes); i++ {
		node := &res.Run.Nodes[i]
		// Receiver i recorded each packet's stamp on delivery; compare with
		// the PublishAt array built from the geometry formula.
		for id := 0; id < total; id++ {
			at := node.Recv[id]
			if at == stream.NotReceived {
				continue
			}
			// Find the receiver that owns this record via the Run; stamps
			// live in the receivers, which the scenario exposes indirectly —
			// use lag non-negativity as the cross-check here.
			if at < res.Run.PublishAt[id] {
				t.Fatalf("node %d received packet %d at %v before its derived publish time %v",
					i, id, at, res.Run.PublishAt[id])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no deliveries to check")
	}
	// The source's own record delivers each packet exactly at publish time,
	// which pins the formula exactly (zero lag for every packet).
	src := &res.Run.Nodes[0]
	for id := 0; id < total; id++ {
		if src.Recv[id] != res.Run.PublishAt[id] {
			t.Fatalf("source record for packet %d: delivered %v, derived publish %v",
				id, src.Recv[id], res.Run.PublishAt[id])
		}
	}
}

package scenario

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestFullScaleHeadline reproduces the paper's central result at the
// paper's own scale (270 nodes, ~180 s of 600 kbps stream, ms-691: 85% of
// nodes below the stream rate) and checks every headline claim at once:
//
//  1. Standard gossip congests: the 512 kbps majority saturates, the 3 Mbps
//     minority idles, upload queues grow over the stream, and stream quality
//     collapses (§3.3, §3.4, Table 3 reports 0% jitter-free nodes).
//  2. HEAP equalizes utilization and delivers a clean stream with seconds of
//     lag (§3.3-§3.5).
//  3. Period adaptation (§5's alternative knob) is far weaker than fanout
//     adaptation: infect-and-die proposes each id to exactly f peers no
//     matter how often rounds fire, so a faster period only wins more
//     first-proposer races.
//
// Collapse accumulates over minutes of stream, so this test cannot be
// scaled down in time; its three full-scale runs go through the sweep
// engine (parallel on multi-core machines, ~1 min serial) and it is
// skipped with -short.
func TestFullScaleHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment (~1 min serial, 3 parallel runs)")
	}
	base := Config{
		Nodes:              270,
		Dist:               MS691,
		Windows:            93,
		StreamStart:        5 * time.Second,
		Drain:              45 * time.Second,
		BacklogProbePeriod: 10 * time.Second,
	}
	sweep, err := RunSweep(Sweep{
		Base: base,
		Variants: []Variant{
			{Name: "std", Mutate: func(c *Config) { c.Protocol = StandardGossip }},
			{Name: "heap", Mutate: func(c *Config) { c.Protocol = HEAP }},
			{Name: "period", Mutate: func(c *Config) { c.Protocol = HEAP; c.AdaptPeriod = true }},
		},
		BaseSeed:    1,
		PairedSeeds: true, // all three protocols face the same network draw
	})
	if err != nil {
		t.Fatal(err)
	}
	stdRes := sweep.CellByVariant("std").Runs[0]
	heapRes := sweep.CellByVariant("heap").Runs[0]
	periodRes := sweep.CellByVariant("period").Runs[0]

	lag := 20 * time.Second
	jf := func(res *Result) float64 {
		return metrics.Mean(res.Run.PerNode(func(n *metrics.NodeRecord) float64 {
			return res.Run.JitterFreeShare(n, lag)
		}))
	}
	usage := func(res *Result, class string) float64 {
		var sum float64
		var n int
		for i := 1; i < len(res.CapsKbps); i++ {
			if res.Config.Dist.ClassOf(res.CapsKbps[i]) == class {
				sum += res.Usage[i]
				n++
			}
		}
		return sum / float64(n)
	}

	stdJF, heapJF, periodJF := jf(stdRes), jf(heapRes), jf(periodRes)
	t.Logf("jitter-free@%v: std=%.3f heap=%.3f period=%.3f", lag, stdJF, heapJF, periodJF)

	// (1) Standard gossip collapses on the skewed distribution.
	if stdJF > 0.7 {
		t.Errorf("standard gossip jitter-free %.3f; paper shows collapse (<0.5)", stdJF)
	}
	stdPoor, stdRich := usage(stdRes, "512kbps"), usage(stdRes, "3Mbps")
	t.Logf("std usage: 512kbps=%.2f 3Mbps=%.2f", stdPoor, stdRich)
	if stdPoor < 0.9 {
		t.Errorf("std poor-class usage %.2f; paper shows saturation (~0.88+)", stdPoor)
	}
	if stdRich > 0.75 {
		t.Errorf("std rich-class usage %.2f; paper shows under-use (~0.41)", stdRich)
	}
	// Queue growth (§3.6 symptom): compare an early and a late probe.
	early, late := backlogAt(stdRes, base.StreamStart+15*time.Second),
		backlogAt(stdRes, base.StreamStart+170*time.Second)
	t.Logf("std 512kbps backlog: early=%.1fs late=%.1fs", early, late)
	if late < early+2 {
		t.Errorf("std backlog did not grow (early %.1fs late %.1fs)", early, late)
	}

	// (2) HEAP equalizes and delivers.
	if heapJF < 0.95 {
		t.Errorf("HEAP jitter-free %.3f; paper shows ~clean streams", heapJF)
	}
	if heapJF < stdJF+0.3 {
		t.Errorf("HEAP (%.3f) does not clearly beat standard (%.3f)", heapJF, stdJF)
	}
	heapPoor, heapRich := usage(heapRes, "512kbps"), usage(heapRes, "3Mbps")
	t.Logf("heap usage: 512kbps=%.2f 3Mbps=%.2f", heapPoor, heapRich)
	if heapRich < stdRich+0.2 {
		t.Errorf("HEAP rich usage %.2f not clearly above std %.2f", heapRich, stdRich)
	}
	if heapRich < 0.8*heapPoor {
		t.Errorf("HEAP utilization not equalized: poor %.2f rich %.2f", heapPoor, heapRich)
	}
	heapLate := backlogAt(heapRes, base.StreamStart+170*time.Second)
	if heapLate > late/3 {
		t.Errorf("HEAP late backlog %.1fs not clearly below std %.1fs", heapLate, late)
	}
	// HEAP's stream lag is a few seconds (paper: 13-20 s on PlanetLab; our
	// simulator has no background noise, so lower is expected).
	heapLag := metrics.Mean(heapRes.Run.PerNode(func(n *metrics.NodeRecord) float64 {
		return metrics.Seconds(heapRes.Run.MinLagForJitterFree(n, 0))
	}))
	t.Logf("HEAP mean min-lag for jitter-free stream: %.1fs", heapLag)
	if heapLag > 15 {
		t.Errorf("HEAP mean min-lag %.1fs; expected seconds", heapLag)
	}

	// (3) Period adaptation is the weaker knob.
	if periodJF < stdJF-0.05 {
		t.Errorf("period adaptation (%.3f) worse than standard (%.3f)", periodJF, stdJF)
	}
	if heapJF < periodJF+0.15 {
		t.Errorf("fanout adaptation (%.3f) should clearly beat period adaptation (%.3f)",
			heapJF, periodJF)
	}
}

// backlogAt returns the 512kbps-class mean backlog of the sample closest to
// the given time.
func backlogAt(res *Result, at time.Duration) float64 {
	best := -1
	for i, s := range res.BacklogSamples {
		if best < 0 || abs64(s.At-at) < abs64(res.BacklogSamples[best].At-at) {
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	return res.BacklogSamples[best].MeanByClass["512kbps"]
}

func abs64(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
